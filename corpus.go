package morrigan

import (
	"io"

	"morrigan/internal/trace"
	"morrigan/internal/tracestore"
)

// Trace corpus types (see internal/tracestore): materialised, chunked,
// compressed workload containers with an indexed on-disk format, pipelined
// parallel decode, and a shared decoded-chunk cache so concurrent
// simulations on the same workload decode each chunk once.
type (
	// CorpusStore manages a directory of corpus containers with
	// build-on-miss materialisation keyed by workload parameter hashes.
	CorpusStore = tracestore.Store
	// CorpusOptions configures a corpus store.
	CorpusOptions = tracestore.Options
	// Corpus is one open container; NewReader starts a pipelined stream.
	Corpus = tracestore.Corpus
	// CorpusReader streams a corpus with decode-ahead; it implements
	// TraceReader, TraceBatchReader and io.Closer (Close releases cached
	// chunks the reader still pins).
	CorpusReader = tracestore.Reader
	// CorpusCacheStats snapshots the shared decoded-chunk cache.
	CorpusCacheStats = tracestore.CacheStats
	// CorpusBuildOptions configures a standalone container build.
	CorpusBuildOptions = tracestore.BuildOptions
	// CorpusBuildInfo summarises a finished container build.
	CorpusBuildInfo = tracestore.BuildInfo
	// CorpusManifest is a store directory's durable index.
	CorpusManifest = tracestore.Manifest
	// CorpusChunkInfo describes one chunk of an open container.
	CorpusChunkInfo = tracestore.ChunkInfo
	// TraceBatchReader is a TraceReader that also delivers records in
	// batches; the simulator's instruction loop uses it when available.
	TraceBatchReader = trace.BatchReader
)

// OpenCorpusStore opens (creating if necessary) a corpus directory.
func OpenCorpusStore(opt CorpusOptions) (*CorpusStore, error) { return tracestore.Open(opt) }

// OpenCorpusFile opens a single corpus container outside any store.
func OpenCorpusFile(path string) (*Corpus, error) { return tracestore.OpenFile(path) }

// BuildCorpus materialises up to records records from src into a corpus
// container on w, fanning chunk compression out over a worker pool.
func BuildCorpus(w io.Writer, src TraceReader, records uint64, opt CorpusBuildOptions) (CorpusBuildInfo, error) {
	return tracestore.Build(w, src, records, opt)
}

// ReadCorpusManifest loads a corpus directory's manifest for inspection.
func ReadCorpusManifest(dir string) (CorpusManifest, error) { return tracestore.ReadManifest(dir) }
