package morrigan

import (
	"io"

	"morrigan/internal/spans"
)

// Distributed job tracing (see internal/spans): a campaign-wide recorder of
// per-job lifecycle spans — lease wait, corpus fetch, sampling phases, timed
// simulation, submit — keyed by canonical job key, exportable as JSONL or
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing). Tracing
// is purely observational: attach a recorder to CampaignOptions.Spans (and,
// for distributed campaigns, FabricCoordinatorOptions.Spans and
// FabricWorkerOptions.Spans) and results stay bit-identical to an untraced
// run; a nil recorder costs one nil check per phase.
type (
	// TraceRecorder accumulates spans on one monotonic clock. Safe for
	// concurrent use; share one recorder across the campaign runner, an
	// observability server, and a fabric coordinator to assemble a single
	// campaign trace.
	TraceRecorder = spans.Recorder
	// TraceSpan is one recorded lifecycle phase.
	TraceSpan = spans.Span
	// TracePhaseTotal is one row of a per-phase time breakdown (see
	// TraceBreakdown and CampaignBench.Phases).
	TracePhaseTotal = spans.PhaseTotal
)

// NewTraceRecorder returns an empty recorder whose clock starts now. The
// worker label tags every span recorded through it (use "" for local runs).
func NewTraceRecorder(worker string) *TraceRecorder { return spans.NewRecorder(worker) }

// WriteTraceFile exports spans to path: JSONL when the path ends in .jsonl,
// Chrome trace-event JSON otherwise. The file is written atomically.
func WriteTraceFile(path string, ss []TraceSpan) error { return spans.WriteFile(path, ss) }

// WriteChromeTrace writes spans as a Chrome trace-event JSON document
// (Perfetto- and chrome://tracing-loadable) to w.
func WriteChromeTrace(w io.Writer, ss []TraceSpan) error { return spans.WriteChromeTrace(w, ss) }

// TraceBreakdown aggregates spans into per-phase totals, largest first — the
// breakdown CampaignBench.Phases carries in BENCH_*.json.
func TraceBreakdown(ss []TraceSpan) []TracePhaseTotal { return spans.Breakdown(ss) }
