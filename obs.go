package morrigan

import (
	"morrigan/internal/obs"
	"morrigan/internal/runner"
)

// Live campaign observability (see internal/obs). An ObservabilityServer is a
// CampaignObserver: attach it to CampaignOptions.Observer (or
// ExperimentOptions.Observer) and it serves live Prometheus metrics, campaign
// status JSON, a Server-Sent-Events stream of telemetry samples, and pprof —
// all without perturbing results.
type (
	// CampaignObserver receives campaign lifecycle notifications:
	// CampaignStarted, then per job JobStarted (on the worker goroutine,
	// before the simulation constructs) and JobFinished. Implementations
	// must be safe for concurrent use across workers.
	CampaignObserver = runner.Observer
	// ObservabilityServer is the HTTP observability server. Construct with
	// NewObservabilityServer, attach as a CampaignObserver, then either
	// Start(addr) a real listener or mount Handler() yourself.
	ObservabilityServer = obs.Server
	// MetricGauge is one externally sourced /metrics gauge sample; register
	// gauge sources with ObservabilityServer.AddGaugeSource.
	MetricGauge = obs.Gauge
)

// NewObservabilityServer returns an unstarted observability server.
func NewObservabilityServer() *ObservabilityServer { return obs.New() }

// Campaign throughput summaries (the BENCH_*.json artifact; see
// internal/runner).
type (
	// CampaignBench is a campaign's simulation-throughput summary.
	CampaignBench = runner.Bench
	// CampaignBenchEntry is one job's line in the summary.
	CampaignBenchEntry = runner.BenchEntry
	// CampaignTraceSupply records a campaign's corpus-backed trace supply
	// (corpus directory plus shared decode-cache accounting) in the summary.
	CampaignTraceSupply = runner.TraceSupply
)

// CampaignBenchSchemaVersion identifies the BENCH_*.json schema.
const CampaignBenchSchemaVersion = runner.BenchSchemaVersion

// NewCampaignBench summarises a campaign's records into the throughput
// artifact written as BENCH_*.json.
func NewCampaignBench(c Campaign) CampaignBench { return runner.NewBench(c) }
