package tracestore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"morrigan/internal/workloads"
)

// ManifestSchemaVersion identifies the manifest.json schema.
const ManifestSchemaVersion = 1

// manifestName is the store's index file inside the corpus directory.
const manifestName = "manifest.json"

// Manifest maps workload parameter hashes to their corpus containers. It is
// the store's durable index: an entry whose hash no longer matches the
// requested workload's parameters is simply never found, so parameter
// changes invalidate corpora without any version bookkeeping.
type Manifest struct {
	Schema  int                      `json:"schema"`
	Entries map[string]ManifestEntry `json:"entries"`
}

// ManifestEntry describes one materialised workload.
type ManifestEntry struct {
	// Workload is the workload name the corpus was built from (informational;
	// identity is the entry's key, the parameter hash).
	Workload string `json:"workload"`
	// File is the container's filename within the corpus directory.
	File string `json:"file"`
	// Records is the container's record count.
	Records uint64 `json:"records"`
	// ChunkRecords is the container's fixed chunk size.
	ChunkRecords int `json:"chunk_records"`
	// CreatedUnix is the build time.
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Options configures a corpus store.
type Options struct {
	// Dir is the corpus directory (created if missing). Required.
	Dir string
	// ChunkRecords is the chunk size for new builds (0 = DefaultChunkRecords).
	ChunkRecords int
	// CacheBytes budgets the shared decoded-chunk LRU (0 = DefaultCacheBytes).
	CacheBytes int64
	// BuildWorkers bounds parallel chunk encoding during builds
	// (0 = GOMAXPROCS).
	BuildWorkers int
}

// Store manages a directory of corpus containers: build-on-miss
// materialisation keyed by workloads.Spec.Hash, and a shared decoded-chunk
// cache every corpus it opens plugs into, so jobs across one campaign — or
// across concurrently running campaigns on the same store — share decode
// work. All methods are safe for concurrent use.
type Store struct {
	opt   Options
	cache *Cache

	mu       sync.Mutex
	manifest Manifest
	open     map[string]*Corpus    // hash -> opened container
	building map[string]*buildWait // hash -> in-flight build
	nextID   uint64
}

// buildWait is the rendezvous for concurrent Materialize calls on one hash.
type buildWait struct {
	done chan struct{}
	c    *Corpus
	err  error
}

// Open opens (creating if necessary) the corpus directory and loads its
// manifest.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("tracestore: Options.Dir is required")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		opt:      opt,
		cache:    NewCache(opt.CacheBytes),
		open:     make(map[string]*Corpus),
		building: make(map[string]*buildWait),
		manifest: Manifest{Schema: ManifestSchemaVersion, Entries: make(map[string]ManifestEntry)},
	}
	raw, err := os.ReadFile(filepath.Join(opt.Dir, manifestName))
	switch {
	case os.IsNotExist(err):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("tracestore: reading manifest: %w", err)
	default:
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("tracestore: parsing manifest: %w", err)
		}
		if m.Schema != ManifestSchemaVersion {
			return nil, fmt.Errorf("tracestore: manifest schema %d, want %d", m.Schema, ManifestSchemaVersion)
		}
		if m.Entries != nil {
			s.manifest.Entries = m.Entries
		}
	}
	return s, nil
}

// Dir returns the store's corpus directory.
func (s *Store) Dir() string { return s.opt.Dir }

// CacheStats snapshots the shared decoded-chunk cache accounting.
func (s *Store) CacheStats() CacheStats { return s.cache.Stats() }

// Manifest returns a copy of the store's manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Manifest{Schema: s.manifest.Schema, Entries: make(map[string]ManifestEntry, len(s.manifest.Entries))}
	for k, v := range s.manifest.Entries {
		m.Entries[k] = v
	}
	return m
}

// ReadManifest loads the manifest of a corpus directory without opening a
// store (for inspection tools).
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("tracestore: parsing manifest: %w", err)
	}
	return m, nil
}

// Materialize returns an open corpus holding at least `records` records of
// the workload, building the container first if the store has none (or only
// a shorter one) for the workload's parameter hash. Concurrent calls for the
// same workload share one build; calls for different workloads build
// independently. The returned corpus is shared — do not Close it; use
// Store.Close.
func (s *Store) Materialize(spec workloads.Spec, records uint64) (*Corpus, error) {
	key := spec.Hash()
	for {
		s.mu.Lock()
		if c, ok := s.open[key]; ok && c.records >= records {
			s.mu.Unlock()
			return c, nil
		}
		if bw, ok := s.building[key]; ok {
			s.mu.Unlock()
			<-bw.done
			if bw.err != nil {
				return nil, bw.err
			}
			if bw.c.records >= records {
				return bw.c, nil
			}
			continue // built shorter than this call needs; rebuild
		}
		if e, ok := s.manifest.Entries[key]; ok && e.Records >= records {
			c, err := s.openEntry(key, e)
			if err == nil {
				s.mu.Unlock()
				return c, nil
			}
			// A stale or damaged container invalidates the entry; fall
			// through to rebuild it.
			delete(s.manifest.Entries, key)
		}
		bw := &buildWait{done: make(chan struct{})}
		s.building[key] = bw
		s.mu.Unlock()

		c, err := s.build(spec, key, records)

		s.mu.Lock()
		delete(s.building, key)
		if err == nil {
			// A previously opened, shorter corpus for this key stays alive
			// for its existing readers; new readers get the longer one.
			s.open[key] = c
		}
		s.mu.Unlock()
		bw.c, bw.err = c, err
		close(bw.done)
		return c, err
	}
}

// openEntry opens a manifest entry's container and registers it. Caller
// holds s.mu.
func (s *Store) openEntry(key string, e ManifestEntry) (*Corpus, error) {
	c, err := OpenFile(filepath.Join(s.opt.Dir, e.File))
	if err != nil {
		return nil, err
	}
	if c.records != e.Records {
		c.Close()
		return nil, corrupt("%s: container holds %d records, manifest says %d", e.File, c.records, e.Records)
	}
	s.adoptLocked(key, e.Workload, c)
	return c, nil
}

// adoptLocked wires a freshly opened container into the store's shared
// cache. Caller holds s.mu.
func (s *Store) adoptLocked(key, workload string, c *Corpus) {
	s.nextID++
	c.id = s.nextID
	c.cache = s.cache
	c.workload = workload
	s.open[key] = c
}

// build materialises the workload into a new container and updates the
// manifest, both atomically (write to temp, rename).
func (s *Store) build(spec workloads.Spec, key string, records uint64) (*Corpus, error) {
	tmp, err := os.CreateTemp(s.opt.Dir, ".build-*")
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	_, err = Build(tmp, spec.NewReader(), records, BuildOptions{
		ChunkRecords: s.opt.ChunkRecords,
		Workers:      s.opt.BuildWorkers,
	})
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: building %s: %w", spec.Name, err)
	}
	file := fmt.Sprintf("%s-%s.mtc", sanitizeName(spec.Name), key[:12])
	if err := os.Rename(tmp.Name(), filepath.Join(s.opt.Dir, file)); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	c, err := OpenFile(filepath.Join(s.opt.Dir, file))
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.adoptLocked(key, spec.Name, c)
	s.manifest.Entries[key] = ManifestEntry{
		Workload:     spec.Name,
		File:         file,
		Records:      c.records,
		ChunkRecords: c.chunkRecords,
		CreatedUnix:  time.Now().Unix(),
	}
	err = s.writeManifestLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Ingest adopts an externally produced container for spec — the fabric
// worker's fetch-by-hash path: a worker whose local store misses a workload
// streams the coordinator's container here instead of re-generating it. The
// bytes are written to a temp file, fully verified (index parse plus every
// chunk's CRC and decode — the transport is untrusted), then atomically
// renamed into the store and registered in the manifest under spec's
// parameter hash. An existing shorter container for the same hash is
// superseded, exactly as a rebuild would.
func (s *Store) Ingest(spec workloads.Spec, r io.Reader) (*Corpus, error) {
	key := spec.Hash()
	tmp, err := os.CreateTemp(s.opt.Dir, ".ingest-*")
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	_, err = io.Copy(tmp, r)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("tracestore: ingesting %s: %w", spec.Name, err)
	}
	c, err := OpenFile(tmp.Name())
	if err != nil {
		return nil, fmt.Errorf("tracestore: ingesting %s: %w", spec.Name, err)
	}
	if err := c.Verify(); err != nil {
		c.Close()
		return nil, fmt.Errorf("tracestore: ingesting %s: %w", spec.Name, err)
	}
	c.Close()
	file := fmt.Sprintf("%s-%s.mtc", sanitizeName(spec.Name), key[:12])
	if err := os.Rename(tmp.Name(), filepath.Join(s.opt.Dir, file)); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	c, err = OpenFile(filepath.Join(s.opt.Dir, file))
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.adoptLocked(key, spec.Name, c)
	s.manifest.Entries[key] = ManifestEntry{
		Workload:     spec.Name,
		File:         file,
		Records:      c.records,
		ChunkRecords: c.chunkRecords,
		CreatedUnix:  time.Now().Unix(),
	}
	err = s.writeManifestLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// ContainerPath returns the on-disk path of the container materialised for
// the given parameter hash, if the manifest has one — the coordinator's
// fetch-by-hash surface.
func (s *Store) ContainerPath(hash string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.manifest.Entries[hash]
	if !ok {
		return "", false
	}
	return filepath.Join(s.opt.Dir, e.File), true
}

// writeManifestLocked persists the manifest atomically. Caller holds s.mu.
func (s *Store) writeManifestLocked() error {
	raw, err := json.MarshalIndent(s.manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmp, err := os.CreateTemp(s.opt.Dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	defer os.Remove(tmp.Name())
	_, err = tmp.Write(append(raw, '\n'))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("tracestore: writing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.opt.Dir, manifestName)); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}

// Close closes every container the store opened. Callers must have drained
// or closed their readers first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, c := range s.open {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.open = make(map[string]*Corpus)
	return first
}

// sanitizeName makes a workload name filesystem-safe.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, name)
}
