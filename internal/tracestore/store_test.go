package tracestore

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"morrigan/internal/workloads"
)

// testSpec returns a small-footprint workload with a distinct seed so
// per-test corpora do not collide on content.
func testSpec(seed int64) workloads.Spec {
	s := workloads.QMM()[0]
	s.Params.Seed = seed
	return s
}

// containerFiles lists the .mtc files in dir.
func containerFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".mtc") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestStoreMaterializeAndReuse checks build-on-miss, in-process reuse, and
// reuse from the manifest by a later store on the same directory.
func TestStoreMaterializeAndReuse(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(101)
	s, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	c1, err := s.Materialize(spec, 3000)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if c1.Records() != 3000 {
		t.Fatalf("Records = %d, want 3000", c1.Records())
	}
	if c1.Workload() != spec.Name {
		t.Fatalf("Workload = %q, want %q", c1.Workload(), spec.Name)
	}
	c2, err := s.Materialize(spec, 2000)
	if err != nil {
		t.Fatalf("second Materialize: %v", err)
	}
	if c1 != c2 {
		t.Fatalf("second Materialize returned a different corpus")
	}
	files := containerFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store holds %d containers, want 1: %v", len(files), files)
	}
	before, err := os.Stat(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh store on the same directory must reuse the container via the
	// manifest, not rebuild it.
	s2, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	c3, err := s2.Materialize(spec, 3000)
	if err != nil {
		t.Fatalf("Materialize after reopen: %v", err)
	}
	if c3.Records() != 3000 {
		t.Fatalf("reopened Records = %d, want 3000", c3.Records())
	}
	after, err := os.Stat(filepath.Join(dir, files[0]))
	if err != nil {
		t.Fatalf("Stat after reopen: %v", err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatalf("container rebuilt on reopen (mtime %v -> %v)", before.ModTime(), after.ModTime())
	}
}

// TestStoreRebuildOnLongerRequest checks a request exceeding the stored
// record count triggers a rebuild at the new length.
func TestStoreRebuildOnLongerRequest(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(202)
	s, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if _, err := s.Materialize(spec, 1000); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	c, err := s.Materialize(spec, 4000)
	if err != nil {
		t.Fatalf("longer Materialize: %v", err)
	}
	if c.Records() != 4000 {
		t.Fatalf("Records after rebuild = %d, want 4000", c.Records())
	}
	e, ok := s.Manifest().Entries[spec.Hash()]
	if !ok || e.Records != 4000 {
		t.Fatalf("manifest entry = %+v, want 4000 records", e)
	}
}

// TestStoreParameterInvalidation checks that changing a generator parameter
// produces a distinct corpus instead of reusing the stale one.
func TestStoreParameterInvalidation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	a := testSpec(303)
	b := a
	b.Params.SeqFrac += 0.01
	if a.Hash() == b.Hash() {
		t.Fatalf("parameter change did not change the hash")
	}
	ca, err := s.Materialize(a, 1000)
	if err != nil {
		t.Fatalf("Materialize(a): %v", err)
	}
	cb, err := s.Materialize(b, 1000)
	if err != nil {
		t.Fatalf("Materialize(b): %v", err)
	}
	if ca == cb {
		t.Fatalf("different parameters shared a corpus")
	}
	if got := containerFiles(t, dir); len(got) != 2 {
		t.Fatalf("store holds %d containers, want 2: %v", len(got), got)
	}
	// The name is display-only: a renamed spec with identical parameters
	// shares the container.
	renamed := a
	renamed.Name = "renamed"
	cr, err := s.Materialize(renamed, 1000)
	if err != nil {
		t.Fatalf("Materialize(renamed): %v", err)
	}
	if cr != ca {
		t.Fatalf("identical parameters under a new name rebuilt the corpus")
	}
}

// TestStoreConcurrentMaterialize checks concurrent calls for one workload
// share a single build.
func TestStoreConcurrentMaterialize(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(404)
	s, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	const goroutines = 8
	got := make([]*Corpus, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			got[g], errs[g] = s.Materialize(spec, 3000)
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got[g] != got[0] {
			t.Fatalf("goroutine %d got a different corpus", g)
		}
	}
	if files := containerFiles(t, dir); len(files) != 1 {
		t.Fatalf("concurrent Materialize built %d containers, want 1: %v", len(files), files)
	}
}

// TestStoreDamagedContainerRebuilds checks a manifest entry pointing at a
// corrupt container is invalidated and rebuilt instead of failing forever.
func TestStoreDamagedContainerRebuilds(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(505)
	s, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := s.Materialize(spec, 1000); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	s.Close()
	files := containerFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want 1 container, got %v", files)
	}
	// Truncate the container.
	path := filepath.Join(dir, files[0])
	if err := os.Truncate(path, 10); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	s2, err := Open(Options{Dir: dir, ChunkRecords: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	c, err := s2.Materialize(spec, 1000)
	if err != nil {
		t.Fatalf("Materialize over damaged container: %v", err)
	}
	if c.Records() != 1000 {
		t.Fatalf("rebuilt Records = %d, want 1000", c.Records())
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("rebuilt container Verify: %v", err)
	}
}
