package tracestore

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// genRecords draws n deterministic records from a real workload generator so
// containers carry realistic delta/address distributions.
func genRecords(t testing.TB, n int) []trace.Record {
	t.Helper()
	recs, err := trace.Slice(workloads.QMM()[0].NewReader(), n)
	if err != nil {
		t.Fatalf("generating %d records: %v", n, err)
	}
	if len(recs) != n {
		t.Fatalf("generated %d records, want %d", len(recs), n)
	}
	return recs
}

// buildContainer materialises recs into an in-memory container.
func buildContainer(t testing.TB, recs []trace.Record, chunkRecords int) []byte {
	t.Helper()
	var buf bytes.Buffer
	info, err := Build(&buf, &trace.SliceReader{Records: recs}, uint64(len(recs)), BuildOptions{ChunkRecords: chunkRecords})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if info.Records != uint64(len(recs)) {
		t.Fatalf("Build reported %d records, want %d", info.Records, len(recs))
	}
	return buf.Bytes()
}

// TestBuildRoundTrip checks that a container whose record count does not
// divide the chunk size (short last chunk) replays bit-identically through
// both the record-at-a-time and batch read paths.
func TestBuildRoundTrip(t *testing.T) {
	const chunk = 1024
	recs := genRecords(t, 3*chunk+500)
	data := buildContainer(t, recs, chunk)

	c, err := OpenBytes(data)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	if c.Records() != uint64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", c.Records(), len(recs))
	}
	if c.Chunks() != 4 || c.ChunkRecords() != chunk {
		t.Fatalf("geometry = %d chunks of %d, want 4 of %d", c.Chunks(), c.ChunkRecords(), chunk)
	}
	if last := c.Chunk(3); last.Records != 500 {
		t.Fatalf("last chunk holds %d records, want 500", last.Records)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	r := c.NewReader()
	defer r.Close()
	var rec trace.Record
	for i := range recs {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("Next at record %d: %v", i, err)
		}
		if rec != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}

	br := c.NewReader()
	defer br.Close()
	got := make([]trace.Record, 0, len(recs))
	buf := make([]trace.Record, 700) // does not divide the chunk size either
	for {
		n, err := br.NextBatch(buf)
		if n > 0 && err != nil {
			t.Fatalf("NextBatch mixed %d records with error %v", n, err)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(recs) {
		t.Fatalf("batch path read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("batch record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestBuildEarlyEOF checks that a source shorter than the requested record
// count yields a correspondingly shorter (still valid) container.
func TestBuildEarlyEOF(t *testing.T) {
	recs := genRecords(t, 300)
	var buf bytes.Buffer
	info, err := Build(&buf, &trace.SliceReader{Records: recs}, 10_000, BuildOptions{ChunkRecords: 128})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if info.Records != 300 || info.Chunks != 3 {
		t.Fatalf("info = %d records in %d chunks, want 300 in 3", info.Records, info.Chunks)
	}
	c, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestBuildEmpty checks the zero-record container round-trips.
func TestBuildEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Build(&buf, &trace.SliceReader{}, 0, BuildOptions{ChunkRecords: 64}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	c, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	r := c.NewReader()
	defer r.Close()
	var rec trace.Record
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("Next on empty corpus = %v, want io.EOF", err)
	}
}

// TestReaderClose checks that a closed reader stops producing records and
// that closing twice is harmless.
func TestReaderClose(t *testing.T) {
	recs := genRecords(t, 2000)
	c, err := OpenBytes(buildContainer(t, recs, 256))
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	r := c.NewReader()
	var rec trace.Record
	for i := 0; i < 10; i++ {
		if err := r.Next(&rec); err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Next(&rec); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestLimitPreservesBatching checks trace.Limit keeps the corpus reader's
// batch path and cuts the stream at exactly n records.
func TestLimitPreservesBatching(t *testing.T) {
	recs := genRecords(t, 1000)
	c, err := OpenBytes(buildContainer(t, recs, 256))
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	r := c.NewReader()
	defer r.Close()
	limited := trace.Limit(r, 600)
	br, ok := limited.(trace.BatchReader)
	if !ok {
		t.Fatalf("Limit dropped the BatchReader interface")
	}
	got := 0
	buf := make([]trace.Record, 128)
	for {
		n, err := br.NextBatch(buf)
		got += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("NextBatch: %v", err)
		}
	}
	if got != 600 {
		t.Fatalf("limited batch read %d records, want 600", got)
	}
}

// TestCorruptContainer checks targeted corruptions fail with ErrCorrupt at
// open, verify, or read time — never a panic.
func TestCorruptContainer(t *testing.T) {
	recs := genRecords(t, 700)
	data := buildContainer(t, recs, 256)

	mustFailOpen := func(name string, mutate func([]byte)) {
		t.Helper()
		cp := append([]byte(nil), data...)
		mutate(cp)
		if _, err := OpenBytes(cp); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: OpenBytes error = %v, want ErrCorrupt", name, err)
		}
	}
	mustFailOpen("header magic", func(b []byte) { b[0] ^= 0xff })
	mustFailOpen("version", func(b []byte) { b[4] = 99 })
	mustFailOpen("codec", func(b []byte) { b[5] = 7 })
	mustFailOpen("chunk size zero", func(b []byte) { b[6], b[7], b[8], b[9] = 0, 0, 0, 0 })
	mustFailOpen("tail magic", func(b []byte) { b[len(b)-1] ^= 0xff })
	mustFailOpen("index crc", func(b []byte) { b[len(b)-8] ^= 0xff })
	mustFailOpen("total records", func(b []byte) { b[len(b)-16] ^= 0xff })

	// Every truncation must fail cleanly: either the tail is gone or the
	// index offset no longer matches the bytes.
	for cut := 1; cut <= len(data); cut += 97 {
		if _, err := OpenBytes(data[:len(data)-cut]); err == nil {
			t.Fatalf("truncation by %d bytes opened successfully", cut)
		}
	}

	// A damaged frame passes open (only the index is validated there) but
	// fails verification and reading.
	cp := append([]byte(nil), data...)
	for i := headerSize; i < headerSize+32; i++ {
		cp[i] = 0
	}
	c, err := OpenBytes(cp)
	if err != nil {
		t.Fatalf("OpenBytes with damaged frame: %v", err)
	}
	if err := c.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify error = %v, want ErrCorrupt", err)
	}
	r := c.NewReader()
	defer r.Close()
	var rec trace.Record
	for i := 0; ; i++ {
		if err := r.Next(&rec); err != nil {
			if err == io.EOF {
				t.Fatalf("damaged frame read to EOF without error")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("read error = %v, want ErrCorrupt", err)
			}
			break
		}
		if i > len(recs) {
			t.Fatalf("read more records than the container holds")
		}
	}
}
