package tracestore

import (
	"io"
	"sync"
	"testing"

	"morrigan/internal/trace"
)

// streamAll drains a reader and checks every record against want, in order.
func streamAll(t *testing.T, r *Reader, want []trace.Record) {
	t.Helper()
	defer r.Close()
	buf := make([]trace.Record, 333)
	pos := 0
	for {
		n, err := r.NextBatch(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Errorf("NextBatch at record %d: %v", pos, err)
			return
		}
		for i := 0; i < n; i++ {
			if buf[i] != want[pos+i] {
				t.Errorf("record %d out of order or corrupted", pos+i)
				return
			}
		}
		pos += n
	}
	if pos != len(want) {
		t.Errorf("streamed %d records, want %d", pos, len(want))
	}
}

// runConcurrentReaders streams one corpus from `readers` goroutines sharing
// a cache with the given budget, and returns the cache stats afterwards.
func runConcurrentReaders(t *testing.T, readers, chunk, chunks int, budget int64) CacheStats {
	t.Helper()
	recs := genRecords(t, chunk*chunks)
	c, cache := cachedCorpus(t, recs, chunk, budget)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			streamAll(t, c.NewReader(), recs)
		}()
	}
	wg.Wait()
	st := cache.Stats()
	if st.Gets != st.Hits+st.Misses {
		t.Fatalf("Gets (%d) != Hits (%d) + Misses (%d)", st.Gets, st.Hits, st.Misses)
	}
	if st.Decodes != st.Misses {
		t.Fatalf("Decodes (%d) != Misses (%d)", st.Decodes, st.Misses)
	}
	if want := uint64(readers * chunks); st.Gets != want {
		t.Fatalf("Gets = %d, want %d (each reader acquires each chunk once)", st.Gets, want)
	}
	return st
}

// TestConcurrentReadersSmallBudget runs many readers over a corpus whose
// decoded size exceeds the cache budget several times over: eviction and
// re-decode churn must never violate record ordering or the accounting
// invariants. Run under -race this is the cross-job sharing stress test.
func TestConcurrentReadersSmallBudget(t *testing.T) {
	const (
		readers = 8
		chunk   = 512
		chunks  = 12
	)
	// Budget of three decoded chunks; readers stay pinned on at most
	// 1 + DefaultReadAhead chunks each, so eviction churns constantly.
	st := runConcurrentReaders(t, readers, chunk, chunks, 3*chunkBytes(chunk))
	if st.Evictions == 0 {
		t.Fatalf("budget smaller than corpus produced no evictions")
	}
	if st.Decodes < chunks {
		t.Fatalf("Decodes = %d, below chunk count %d", st.Decodes, chunks)
	}
}

// TestConcurrentReadersSingleDecode gives the cache room for the whole
// corpus: no matter how the readers interleave, every chunk is decoded
// exactly once and shared.
func TestConcurrentReadersSingleDecode(t *testing.T) {
	const (
		readers = 8
		chunk   = 512
		chunks  = 12
	)
	st := runConcurrentReaders(t, readers, chunk, chunks, int64(chunks+1)*chunkBytes(chunk))
	if st.Decodes != chunks {
		t.Fatalf("Decodes = %d, want %d (one per chunk)", st.Decodes, chunks)
	}
	if st.Evictions != 0 {
		t.Fatalf("Evictions = %d with a corpus-sized budget, want 0", st.Evictions)
	}
}
