package tracestore

import (
	"io"

	"morrigan/internal/trace"
)

// DefaultReadAhead is the reader's decode-ahead depth: how many chunks are
// in flight (being fetched from disk, decompressed, or waiting decoded)
// beyond the one being consumed. Depth 3 keeps several decodes running
// concurrently, so the consuming simulation thread almost never waits on
// decompression.
const DefaultReadAhead = 3

// Reader streams a corpus in record order. It implements trace.Reader and
// trace.BatchReader; the batch path hands out runs of records straight from
// the decoded chunk, amortising the per-record interface call the simulator
// hot loop would otherwise pay.
//
// A Reader pipelines: up to DefaultReadAhead chunk acquisitions run on
// worker goroutines feeding an ordered queue, so decode (or cache lookup)
// overlaps with consumption. A Reader is not safe for concurrent use — each
// simulation thread owns its own — but any number of Readers may stream the
// same Corpus concurrently, sharing decoded chunks through the store cache.
//
// A Reader that will not be drained to io.EOF should be Closed to unpin its
// in-flight chunks from the shared cache; the campaign runner closes the
// readers of every finished job.
type Reader struct {
	c *Corpus

	cur    []trace.Record
	pos    int
	relCur func()

	pending []chan fetched // FIFO of in-flight chunk acquisitions
	issued  int            // next chunk index to schedule
	err     error          // sticky decode error
	closed  bool
}

type fetched struct {
	recs    []trace.Record
	release func()
	err     error
}

var (
	_ trace.Reader      = (*Reader)(nil)
	_ trace.BatchReader = (*Reader)(nil)
	_ io.Closer         = (*Reader)(nil)
)

// NewReader returns a fresh reader positioned at the first record.
func (c *Corpus) NewReader() *Reader {
	r := &Reader{c: c}
	r.fill()
	return r
}

// fill tops the pipeline up to the decode-ahead depth.
func (r *Reader) fill() {
	for r.issued < len(r.c.chunks) && len(r.pending) < DefaultReadAhead {
		i := r.issued
		r.issued++
		ch := make(chan fetched, 1)
		go func() {
			recs, release, err := r.c.acquire(i)
			ch <- fetched{recs: recs, release: release, err: err}
		}()
		r.pending = append(r.pending, ch)
	}
}

// advance releases the consumed chunk and takes the next one off the
// pipeline, returning io.EOF past the last chunk.
func (r *Reader) advance() error {
	if r.relCur != nil {
		r.relCur()
		r.relCur = nil
	}
	r.cur, r.pos = nil, 0
	if len(r.pending) == 0 {
		return io.EOF
	}
	f := <-r.pending[0]
	r.pending = r.pending[1:]
	if f.err != nil {
		r.err = f.err
		return f.err
	}
	r.cur, r.relCur = f.recs, f.release
	r.fill()
	return nil
}

// ready ensures at least one unconsumed record is at hand.
func (r *Reader) ready() error {
	if r.err != nil {
		return r.err
	}
	if r.closed {
		return io.EOF
	}
	for r.pos >= len(r.cur) {
		if err := r.advance(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements trace.Reader.
func (r *Reader) Next(rec *trace.Record) error {
	if err := r.ready(); err != nil {
		return err
	}
	*rec = r.cur[r.pos]
	r.pos++
	return nil
}

// NextBatch implements trace.BatchReader: it copies up to len(dst) records
// and returns how many, never mixing records with an error. One call spans
// at most one chunk, so a full dst is the common case and the tail of a
// chunk the rare short read.
func (r *Reader) NextBatch(dst []trace.Record) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if err := r.ready(); err != nil {
		return 0, err
	}
	n := copy(dst, r.cur[r.pos:])
	r.pos += n
	return n, nil
}

// Close releases the current chunk and drains the pipeline, unpinning every
// in-flight chunk from the shared cache. Further reads return io.EOF.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.relCur != nil {
		r.relCur()
		r.relCur = nil
	}
	r.cur = nil
	for _, ch := range r.pending {
		f := <-ch
		if f.release != nil {
			f.release()
		}
	}
	r.pending = nil
	return nil
}
