package tracestore

import (
	"container/list"
	"sync"

	"morrigan/internal/trace"
)

// DefaultCacheBytes is the default decoded-chunk budget: enough to keep a
// campaign's hot workloads resident without letting a 45-workload sweep pin
// gigabytes of decoded records.
const DefaultCacheBytes int64 = 512 << 20

// Cache is a ref-counted, byte-budgeted LRU of decoded chunks shared by
// every reader of a store. Concurrent jobs streaming the same workload
// acquire the same entry, so each chunk is decompressed once per residency:
// the first acquirer decodes while later acquirers wait on the in-flight
// decode (single-flight), and an acquired chunk is pinned — never evicted —
// until every holder releases it. Only unpinned chunks count against the
// byte budget's eviction scan, so the budget bounds resident-but-idle bytes
// while letting however many chunks are actively being simulated stay alive.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	resident int64 // decoded bytes of all entries, pinned included
	entries  map[cacheKey]*centry
	lru      *list.List // unpinned entries only; front = most recent
	stats    CacheStats
}

type cacheKey struct {
	corpus uint64
	chunk  int
}

type centry struct {
	key   cacheKey
	recs  []trace.Record
	size  int64
	refs  int
	elem  *list.Element // non-nil iff refs == 0 (entry is evictable)
	ready chan struct{} // closed when the decode finishes
	err   error
}

// CacheStats is a snapshot of the cache's accounting. Decodes equals Misses
// by construction — every miss decodes exactly once, and concurrent
// acquirers of an in-flight decode count as hits — which is what the
// cross-job sharing tests assert.
type CacheStats struct {
	// Gets counts acquire calls; Gets = Hits + Misses.
	Gets, Hits, Misses uint64
	// Decodes counts chunk decompressions (== Misses).
	Decodes uint64
	// Evictions counts entries dropped to stay inside the byte budget.
	Evictions uint64
	// ResidentBytes is the decoded bytes currently held, pinned included.
	ResidentBytes int64
}

// NewCache returns a cache bounded to budget decoded bytes (<= 0 means
// DefaultCacheBytes).
func NewCache(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	return &Cache{
		budget:  budget,
		entries: make(map[cacheKey]*centry),
		lru:     list.New(),
	}
}

// Stats snapshots the accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.ResidentBytes = c.resident
	return s
}

// acquire returns chunk i of co, decoding it if no resident or in-flight
// copy exists, and pins it until the returned release function is called.
// release is idempotent.
func (c *Cache) acquire(co *Corpus, i int) ([]trace.Record, func(), error) {
	key := cacheKey{corpus: co.id, chunk: i}
	c.mu.Lock()
	c.stats.Gets++
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		e.refs++
		if e.elem != nil {
			c.lru.Remove(e.elem)
			e.elem = nil
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The decode failed; the decoder already removed the entry, so
			// the waiter's ref dies with it.
			return nil, nil, e.err
		}
		return e.recs, c.releaseFunc(e), nil
	}
	e := &centry{key: key, refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.stats.Decodes++
	c.mu.Unlock()

	recs, err := co.decode(i)

	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, key)
		c.mu.Unlock()
		close(e.ready)
		return nil, nil, err
	}
	e.recs = recs
	e.size = int64(len(recs)) * recordMemBytes
	c.resident += e.size
	c.evictLocked()
	c.mu.Unlock()
	close(e.ready)
	return recs, c.releaseFunc(e), nil
}

// releaseFunc builds the idempotent unpin closure for e.
func (c *Cache) releaseFunc(e *centry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			e.refs--
			if e.refs == 0 {
				// Most-recently used: the chunk was just streamed, and a
				// concurrent job on the same workload is the likeliest next
				// acquirer.
				e.elem = c.lru.PushFront(e)
				c.evictLocked()
			}
			c.mu.Unlock()
		})
	}
}

// evictLocked drops least-recently-used unpinned entries until the resident
// bytes fit the budget (or nothing unpinned remains).
func (c *Cache) evictLocked() {
	for c.resident > c.budget {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*centry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.resident -= e.size
		c.stats.Evictions++
	}
}
