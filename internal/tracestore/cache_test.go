package tracestore

import (
	"errors"
	"sync"
	"testing"

	"morrigan/internal/trace"
)

// cachedCorpus opens an in-memory container wired to a private cache, the
// way a Store would wire it.
func cachedCorpus(t testing.TB, recs []trace.Record, chunkRecords int, budget int64) (*Corpus, *Cache) {
	t.Helper()
	c, err := OpenBytes(buildContainer(t, recs, chunkRecords))
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	cache := NewCache(budget)
	c.id = 1
	c.cache = cache
	return c, cache
}

// chunkBytes is the decoded in-memory size of one full chunk.
func chunkBytes(chunkRecords int) int64 { return int64(chunkRecords) * recordMemBytes }

// TestCacheSingleFlight checks concurrent acquirers of one chunk share a
// single decode: one miss, everyone else a hit on the in-flight entry.
func TestCacheSingleFlight(t *testing.T) {
	const goroutines = 16
	recs := genRecords(t, 512)
	c, cache := cachedCorpus(t, recs, 512, 1<<30)

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			got, release, err := c.acquire(0)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if len(got) != len(recs) {
				t.Errorf("acquired %d records, want %d", len(got), len(recs))
			}
			release()
		}()
	}
	close(start)
	wg.Wait()

	st := cache.Stats()
	if st.Decodes != 1 {
		t.Fatalf("Decodes = %d, want 1 (single-flight)", st.Decodes)
	}
	if st.Gets != goroutines || st.Hits != goroutines-1 || st.Misses != 1 {
		t.Fatalf("Gets/Hits/Misses = %d/%d/%d, want %d/%d/1", st.Gets, st.Hits, st.Misses, goroutines, goroutines-1)
	}
}

// TestCacheEviction checks released chunks are evicted LRU-first once the
// byte budget is exceeded, and that re-acquiring an evicted chunk re-decodes.
func TestCacheEviction(t *testing.T) {
	const chunk = 256
	recs := genRecords(t, 4*chunk)
	// Budget holds exactly two decoded chunks.
	c, cache := cachedCorpus(t, recs, chunk, 2*chunkBytes(chunk))

	for i := 0; i < 4; i++ {
		_, release, err := c.acquire(i)
		if err != nil {
			t.Fatalf("acquire(%d): %v", i, err)
		}
		release()
	}
	st := cache.Stats()
	if st.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", st.Evictions)
	}
	if st.ResidentBytes > 2*chunkBytes(chunk) {
		t.Fatalf("ResidentBytes = %d exceeds budget %d", st.ResidentBytes, 2*chunkBytes(chunk))
	}

	// Chunks 2 and 3 are resident; chunk 0 was evicted and must re-decode.
	_, release, err := c.acquire(3)
	if err != nil {
		t.Fatalf("acquire(3): %v", err)
	}
	release()
	if got := cache.Stats().Decodes; got != 4 {
		t.Fatalf("Decodes after resident re-acquire = %d, want 4", got)
	}
	_, release, err = c.acquire(0)
	if err != nil {
		t.Fatalf("acquire(0): %v", err)
	}
	release()
	if got := cache.Stats().Decodes; got != 5 {
		t.Fatalf("Decodes after evicted re-acquire = %d, want 5", got)
	}
}

// TestCachePinnedNotEvicted checks acquired (unreleased) chunks survive even
// when the budget is far exceeded, and are only evicted once released.
func TestCachePinnedNotEvicted(t *testing.T) {
	const chunk = 128
	recs := genRecords(t, 3*chunk)
	c, cache := cachedCorpus(t, recs, chunk, 1) // budget smaller than any chunk

	var releases []func()
	var pinned [][]trace.Record
	for i := 0; i < 3; i++ {
		got, release, err := c.acquire(i)
		if err != nil {
			t.Fatalf("acquire(%d): %v", i, err)
		}
		pinned = append(pinned, got)
		releases = append(releases, release)
	}
	st := cache.Stats()
	if st.Evictions != 0 {
		t.Fatalf("Evictions = %d while all chunks pinned, want 0", st.Evictions)
	}
	if st.ResidentBytes != 3*chunkBytes(chunk) {
		t.Fatalf("ResidentBytes = %d, want %d", st.ResidentBytes, 3*chunkBytes(chunk))
	}
	// The pinned records must stay valid.
	for i, got := range pinned {
		if got[0] != recs[i*chunk] {
			t.Fatalf("pinned chunk %d first record = %+v, want %+v", i, got[0], recs[i*chunk])
		}
	}
	for _, release := range releases {
		release()
	}
	st = cache.Stats()
	if st.Evictions != 3 || st.ResidentBytes != 0 {
		t.Fatalf("after release: Evictions = %d, ResidentBytes = %d, want 3 and 0", st.Evictions, st.ResidentBytes)
	}
}

// TestCacheReleaseIdempotent checks double-release cannot drive refcounts
// negative (which would evict a chunk out from under a holder).
func TestCacheReleaseIdempotent(t *testing.T) {
	const chunk = 128
	recs := genRecords(t, 2*chunk)
	c, cache := cachedCorpus(t, recs, chunk, 1<<30)

	_, r1, err := c.acquire(0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	got, r2, err := c.acquire(0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	r1()
	r1() // duplicate: must not release the second holder's pin
	if got[0] != recs[0] {
		t.Fatalf("records invalidated by duplicate release")
	}
	// The entry is still pinned by r2; the budget cannot evict it, and a
	// third acquire must hit.
	before := cache.Stats().Decodes
	_, r3, err := c.acquire(0)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if cache.Stats().Decodes != before {
		t.Fatalf("re-acquire of pinned chunk decoded again")
	}
	r2()
	r3()
}

// TestCacheDecodeError checks a failing decode reports the error to every
// waiter, leaves no entry behind, and lets a later acquire retry.
func TestCacheDecodeError(t *testing.T) {
	const chunk = 256
	recs := genRecords(t, chunk)
	data := buildContainer(t, recs, chunk)
	// Zero the frame so decode fails (the index itself stays valid).
	for i := headerSize; i < headerSize+16; i++ {
		data[i] = 0
	}
	c, err := OpenBytes(data)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	cache := NewCache(1 << 30)
	c.id = 1
	c.cache = cache

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.acquire(0); !errors.Is(err, ErrCorrupt) {
				t.Errorf("acquire error = %v, want ErrCorrupt", err)
			}
		}()
	}
	wg.Wait()
	if got := cache.Stats().ResidentBytes; got != 0 {
		t.Fatalf("ResidentBytes = %d after failed decodes, want 0", got)
	}
	// The failed entry must not be cached: a fresh acquire decodes again.
	before := cache.Stats().Decodes
	if _, _, err := c.acquire(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("retry acquire error = %v, want ErrCorrupt", err)
	}
	if got := cache.Stats().Decodes; got != before+1 {
		t.Fatalf("retry did not re-attempt the decode (Decodes %d -> %d)", before, got)
	}
}
