// Package tracestore materialises synthetic workloads into chunked,
// compressed, footer-indexed corpus containers built once and then served to
// every simulation job that wants the workload — turning trace supply from a
// per-job regeneration cost into a shared, cached decode.
//
// A campaign of W workloads × N configurations needs each instruction stream
// N times; the live generator (trace.NewServerGenerator) resynthesises it per
// job. A corpus container stores the stream on disk in independently
// decodable chunks, so jobs stream it back through a pipelined reader
// (reader.go) while a ref-counted, byte-budgeted LRU of decoded chunks
// (cache.go) lets concurrent jobs on the same workload decode each chunk
// once. Containers are built in parallel (build.go) and tracked in a
// manifest keyed by the workload's stable parameter hash (store.go), so a
// parameter change invalidates the corpus automatically.
//
// # Container format
//
// One container holds one workload's record stream:
//
//	header:  magic "MTC1" | uint8 version (1) | uint8 codec (1 = flate)
//	         | uint32 LE chunkRecords
//	chunks:  back-to-back flate frames; each frame holds exactly
//	         chunkRecords records (the final frame may hold fewer),
//	         encoded as in the trace file format — uint8 kind, zig-zag
//	         varint PC delta, absolute varint load/store — with the PC
//	         delta base reset to zero at every chunk boundary, so chunks
//	         decode independently and in parallel
//	index:   magic "MTCI" | uvarint chunkCount | per chunk:
//	         uvarint recordCount | uvarint compressedLen
//	         | uvarint uncompressedLen | uint32 LE CRC-32C of the frame
//	tail:    uint64 LE indexOffset | uint64 LE totalRecords
//	         | uint32 LE CRC-32C of the index bytes | magic "MTCX"
//
// Chunk offsets are not stored: they accumulate from the header end in index
// order and must land exactly on the index offset, which (with the two CRCs)
// makes truncation and splices detectable. All decode paths return
// ErrCorrupt-wrapped errors on malformed input, never panic; FuzzChunkReader
// holds that property.
package tracestore

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"morrigan/internal/arch"
	"morrigan/internal/trace"
)

const (
	headerMagic = "MTC1"
	indexMagic  = "MTCI"
	tailMagic   = "MTCX"

	formatVersion = 1
	codecFlate    = 1

	headerSize = 10 // magic(4) + version(1) + codec(1) + chunkRecords(4)
	tailSize   = 24 // indexOffset(8) + totalRecords(8) + indexCRC(4) + magic(4)

	recHasLoad  = 1 << 0
	recHasStore = 1 << 1
	recKindMax  = recHasLoad | recHasStore

	// maxRecordBytes bounds one encoded record: kind byte plus three varints.
	maxRecordBytes = 1 + 3*binary.MaxVarintLen64
	// minRecordBytes is the smallest encoding: kind byte plus a 1-byte delta.
	minRecordBytes = 2

	// recordMemBytes is the in-memory size of one decoded trace.Record
	// (three 64-bit addresses), the unit of the cache's byte budget.
	recordMemBytes = 24

	// DefaultChunkRecords is the default fixed chunk size. 64 Ki records is
	// ~1.5 MB decoded — large enough to amortise frame overhead, small
	// enough that a byte-budgeted cache holds many chunks.
	DefaultChunkRecords = 1 << 16
	// maxChunkRecords caps the header's chunk size so a corrupt header
	// cannot demand absurd allocations.
	maxChunkRecords = 1 << 24
)

// ErrCorrupt reports a malformed corpus container.
var ErrCorrupt = errors.New("tracestore: corrupt corpus container")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func corrupt(format string, args ...any) error {
	return fmt.Errorf("tracestore: "+format+": %w", append(args, ErrCorrupt)...)
}

// zigzag and unzigzag mirror the trace file format's signed-delta encoding.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// chunkInfo is one chunk's index entry; offset is reconstructed from the
// running sum at open time.
type chunkInfo struct {
	offset  int64
	records uint64
	clen    uint64
	ulen    uint64
	crc     uint32
}

// ChunkInfo describes one chunk of an open corpus (for cmd/traceinfo).
type ChunkInfo struct {
	// Offset is the frame's byte offset within the container.
	Offset int64
	// Records is the number of records in the chunk.
	Records uint64
	// CompressedLen and UncompressedLen are the frame sizes in bytes.
	CompressedLen, UncompressedLen uint64
	// CRC32C is the Castagnoli checksum of the compressed frame.
	CRC32C uint32
}

// encodeChunk serialises records with the per-chunk delta encoding and
// compresses the frame. It returns the compressed frame, the uncompressed
// byte length, and the frame's CRC-32C.
func encodeChunk(recs []trace.Record) (frame []byte, ulen int, crc uint32, err error) {
	var raw bytes.Buffer
	raw.Grow(len(recs) * 8)
	var buf [maxRecordBytes]byte
	var lastPC arch.VAddr
	for i := range recs {
		r := &recs[i]
		var kind byte
		if r.HasLoad() {
			kind |= recHasLoad
		}
		if r.HasStore() {
			kind |= recHasStore
		}
		n := 0
		buf[n] = kind
		n++
		n += binary.PutUvarint(buf[n:], zigzag(int64(r.PC)-int64(lastPC)))
		if r.HasLoad() {
			n += binary.PutUvarint(buf[n:], uint64(r.Load))
		}
		if r.HasStore() {
			n += binary.PutUvarint(buf[n:], uint64(r.Store))
		}
		lastPC = r.PC
		raw.Write(buf[:n])
	}
	var comp bytes.Buffer
	comp.Grow(raw.Len() / 2)
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, 0, 0, err
	}
	if err := fw.Close(); err != nil {
		return nil, 0, 0, err
	}
	frame = comp.Bytes()
	return frame, raw.Len(), crc32.Checksum(frame, castagnoli), nil
}

// decodeChunk decompresses and decodes one frame, appending exactly `want`
// records to dst. The decode is streaming (no uncompressed-length-sized
// allocation, so a corrupt index cannot demand one), and the declared
// uncompressed length is verified against the bytes actually produced.
func decodeChunk(frame []byte, want, ulen uint64, dst []trace.Record) ([]trace.Record, error) {
	cr := &countingReader{r: flate.NewReader(bytes.NewReader(frame))}
	br := bufio.NewReaderSize(cr, 32<<10)
	var lastPC arch.VAddr
	for n := uint64(0); n < want; n++ {
		kind, err := br.ReadByte()
		if err != nil {
			return dst, corrupt("chunk truncated at record %d of %d", n, want)
		}
		if kind > recKindMax {
			return dst, corrupt("chunk record kind %#x", kind)
		}
		du, err := binary.ReadUvarint(br)
		if err != nil {
			return dst, corrupt("chunk pc delta at record %d", n)
		}
		lastPC = arch.VAddr(int64(lastPC) + unzigzag(du))
		rec := trace.Record{PC: lastPC}
		if kind&recHasLoad != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return dst, corrupt("chunk load address at record %d", n)
			}
			rec.Load = arch.VAddr(v)
		}
		if kind&recHasStore != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return dst, corrupt("chunk store address at record %d", n)
			}
			rec.Store = arch.VAddr(v)
		}
		dst = append(dst, rec)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return dst, corrupt("chunk has trailing bytes after %d records", want)
	}
	if cr.n != int64(ulen) {
		return dst, corrupt("chunk uncompressed length %d, index says %d", cr.n, ulen)
	}
	return dst, nil
}

// countingReader counts the bytes produced by the decompressor so the
// index's declared uncompressed length can be verified without trusting it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// containerWriter appends frames to a container and finishes it with the
// index and tail. It is driven by Build.
type containerWriter struct {
	w            io.Writer
	chunkRecords int
	off          int64
	total        uint64
	chunks       []chunkInfo
}

func newContainerWriter(w io.Writer, chunkRecords int) (*containerWriter, error) {
	cw := &containerWriter{w: w, chunkRecords: chunkRecords}
	var head [headerSize]byte
	copy(head[:], headerMagic)
	head[4] = formatVersion
	head[5] = codecFlate
	binary.LittleEndian.PutUint32(head[6:], uint32(chunkRecords))
	if _, err := w.Write(head[:]); err != nil {
		return nil, err
	}
	cw.off = headerSize
	return cw, nil
}

// writeFrame appends one compressed chunk frame and records its index entry.
func (cw *containerWriter) writeFrame(frame []byte, records, ulen int, crc uint32) error {
	if _, err := cw.w.Write(frame); err != nil {
		return err
	}
	cw.chunks = append(cw.chunks, chunkInfo{
		offset:  cw.off,
		records: uint64(records),
		clen:    uint64(len(frame)),
		ulen:    uint64(ulen),
		crc:     crc,
	})
	cw.off += int64(len(frame))
	cw.total += uint64(records)
	return nil
}

// finish writes the footer index and tail.
func (cw *containerWriter) finish() error {
	var idx bytes.Buffer
	idx.WriteString(indexMagic)
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		idx.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	putUvarint(uint64(len(cw.chunks)))
	for _, c := range cw.chunks {
		putUvarint(c.records)
		putUvarint(c.clen)
		putUvarint(c.ulen)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], c.crc)
		idx.Write(crc[:])
	}
	indexOff := cw.off
	if _, err := cw.w.Write(idx.Bytes()); err != nil {
		return err
	}
	var tail [tailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(tail[8:], cw.total)
	binary.LittleEndian.PutUint32(tail[16:], crc32.Checksum(idx.Bytes(), castagnoli))
	copy(tail[20:], tailMagic)
	_, err := cw.w.Write(tail[:])
	return err
}

// parseContainer validates the header, tail and index of a container of the
// given size and returns its geometry. Every length and offset is
// cross-checked so corrupt input fails with ErrCorrupt instead of demanding
// absurd allocations or panicking downstream.
func parseContainer(src io.ReaderAt, size int64) (chunkRecords int, total uint64, chunks []chunkInfo, err error) {
	if size < headerSize+tailSize {
		return 0, 0, nil, corrupt("container too small (%d bytes)", size)
	}
	var head [headerSize]byte
	if _, err := src.ReadAt(head[:], 0); err != nil {
		return 0, 0, nil, corrupt("reading header: %v", err)
	}
	if string(head[:4]) != headerMagic {
		return 0, 0, nil, corrupt("bad magic %q", head[:4])
	}
	if head[4] != formatVersion {
		return 0, 0, nil, corrupt("unsupported version %d", head[4])
	}
	if head[5] != codecFlate {
		return 0, 0, nil, corrupt("unsupported codec %d", head[5])
	}
	cr := binary.LittleEndian.Uint32(head[6:])
	if cr == 0 || cr > maxChunkRecords {
		return 0, 0, nil, corrupt("chunk size %d out of range", cr)
	}
	chunkRecords = int(cr)

	var tail [tailSize]byte
	if _, err := src.ReadAt(tail[:], size-tailSize); err != nil {
		return 0, 0, nil, corrupt("reading tail: %v", err)
	}
	if string(tail[20:24]) != tailMagic {
		return 0, 0, nil, corrupt("bad tail magic %q", tail[20:24])
	}
	indexOff := int64(binary.LittleEndian.Uint64(tail[0:]))
	total = binary.LittleEndian.Uint64(tail[8:])
	indexCRC := binary.LittleEndian.Uint32(tail[16:])
	if indexOff < headerSize || indexOff > size-tailSize {
		return 0, 0, nil, corrupt("index offset %d out of range", indexOff)
	}
	idx := make([]byte, size-tailSize-indexOff)
	if _, err := src.ReadAt(idx, indexOff); err != nil {
		return 0, 0, nil, corrupt("reading index: %v", err)
	}
	if crc32.Checksum(idx, castagnoli) != indexCRC {
		return 0, 0, nil, corrupt("index checksum mismatch")
	}
	if len(idx) < len(indexMagic) || string(idx[:len(indexMagic)]) != indexMagic {
		return 0, 0, nil, corrupt("bad index magic")
	}
	idx = idx[len(indexMagic):]
	nChunks, n := binary.Uvarint(idx)
	if n <= 0 {
		return 0, 0, nil, corrupt("index chunk count")
	}
	idx = idx[n:]
	// Each entry is at least three 1-byte varints plus the 4-byte CRC.
	if nChunks > uint64(len(idx))/7+1 {
		return 0, 0, nil, corrupt("index claims %d chunks in %d bytes", nChunks, len(idx))
	}
	chunks = make([]chunkInfo, 0, nChunks)
	off := int64(headerSize)
	var sum uint64
	for i := uint64(0); i < nChunks; i++ {
		var c chunkInfo
		var fields [3]uint64
		for f := range fields {
			v, n := binary.Uvarint(idx)
			if n <= 0 {
				return 0, 0, nil, corrupt("index entry %d truncated", i)
			}
			fields[f] = v
			idx = idx[n:]
		}
		c.records, c.clen, c.ulen = fields[0], fields[1], fields[2]
		if len(idx) < 4 {
			return 0, 0, nil, corrupt("index entry %d truncated", i)
		}
		c.crc = binary.LittleEndian.Uint32(idx)
		idx = idx[4:]
		if c.records == 0 || c.records > uint64(chunkRecords) {
			return 0, 0, nil, corrupt("chunk %d holds %d records, chunk size is %d", i, c.records, chunkRecords)
		}
		if i+1 < nChunks && c.records != uint64(chunkRecords) {
			return 0, 0, nil, corrupt("interior chunk %d holds %d records, want %d", i, c.records, chunkRecords)
		}
		if c.clen == 0 || int64(c.clen) > indexOff-off {
			return 0, 0, nil, corrupt("chunk %d frame length %d exceeds data region", i, c.clen)
		}
		if c.ulen < c.records*minRecordBytes || c.ulen > c.records*maxRecordBytes {
			return 0, 0, nil, corrupt("chunk %d uncompressed length %d implausible for %d records", i, c.ulen, c.records)
		}
		c.offset = off
		off += int64(c.clen)
		sum += c.records
		chunks = append(chunks, c)
	}
	if len(idx) != 0 {
		return 0, 0, nil, corrupt("index has %d trailing bytes", len(idx))
	}
	if off != indexOff {
		return 0, 0, nil, corrupt("chunk frames end at %d, index starts at %d", off, indexOff)
	}
	if sum != total {
		return 0, 0, nil, corrupt("chunks hold %d records, tail says %d", sum, total)
	}
	return chunkRecords, total, chunks, nil
}
