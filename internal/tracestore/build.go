package tracestore

import (
	"io"
	"runtime"
	"sync"

	"morrigan/internal/trace"
)

// BuildOptions configures a container build.
type BuildOptions struct {
	// ChunkRecords is the fixed records-per-chunk (0 = DefaultChunkRecords).
	ChunkRecords int
	// Workers bounds the parallel chunk encoders (0 = GOMAXPROCS).
	Workers int
}

func (o BuildOptions) chunkRecords() int {
	if o.ChunkRecords <= 0 {
		return DefaultChunkRecords
	}
	if o.ChunkRecords > maxChunkRecords {
		return maxChunkRecords
	}
	return o.ChunkRecords
}

func (o BuildOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// BuildInfo summarises a finished build.
type BuildInfo struct {
	// Records and Chunks are the container's final counts (Records can fall
	// short of the request if the source reader hit io.EOF first).
	Records uint64
	Chunks  int
	// CompressedBytes and UncompressedBytes measure the record stream before
	// the index and framing.
	CompressedBytes, UncompressedBytes int64
}

// Build drains up to `records` records from src into a corpus container on
// w. The source is stepped sequentially (generators are inherently serial),
// but chunk encoding — the dominant cost — is fanned out over a worker pool
// and the compressed frames are written back in chunk order, so build
// throughput scales with cores until the generator itself is the bottleneck.
func Build(w io.Writer, src trace.Reader, records uint64, opt BuildOptions) (BuildInfo, error) {
	chunkRecords := opt.chunkRecords()
	workers := opt.workers()

	type encJob struct {
		seq  int
		recs []trace.Record
	}
	type encRes struct {
		seq     int
		frame   []byte
		records int
		ulen    int
		crc     uint32
		err     error
	}
	jobs := make(chan encJob, workers)
	results := make(chan encRes, workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				frame, ulen, crc, err := encodeChunk(j.recs)
				results <- encRes{seq: j.seq, frame: frame, records: len(j.recs), ulen: ulen, crc: crc, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Producer: step the source into fixed-size chunks. Bounded by the jobs
	// channel, at most ~3× workers chunks are in memory at once.
	prodErr := make(chan error, 1)
	go func() {
		defer close(jobs)
		seq := 0
		var emitted uint64
		var rec trace.Record
		for emitted < records {
			n := uint64(chunkRecords)
			if left := records - emitted; left < n {
				n = left
			}
			recs := make([]trace.Record, 0, n)
			for uint64(len(recs)) < n {
				err := src.Next(&rec)
				if err == io.EOF {
					break
				}
				if err != nil {
					if len(recs) > 0 {
						jobs <- encJob{seq: seq, recs: recs}
					}
					prodErr <- err
					return
				}
				recs = append(recs, rec)
			}
			if len(recs) == 0 {
				break
			}
			jobs <- encJob{seq: seq, recs: recs}
			seq++
			emitted += uint64(len(recs))
			if uint64(len(recs)) < n {
				break // source ended early
			}
		}
		prodErr <- nil
	}()

	cw, err := newContainerWriter(w, chunkRecords)
	var info BuildInfo
	pending := make(map[int]encRes)
	nextSeq := 0
	for r := range results {
		if err != nil {
			continue // drain after a write/encode error
		}
		if r.err != nil {
			err = r.err
			continue
		}
		pending[r.seq] = r
		for {
			rr, ok := pending[nextSeq]
			if !ok {
				break
			}
			delete(pending, nextSeq)
			if werr := cw.writeFrame(rr.frame, rr.records, rr.ulen, rr.crc); werr != nil {
				err = werr
				break
			}
			info.CompressedBytes += int64(len(rr.frame))
			info.UncompressedBytes += int64(rr.ulen)
			nextSeq++
		}
	}
	if perr := <-prodErr; err == nil {
		err = perr
	}
	if err != nil {
		return info, err
	}
	if len(pending) != 0 {
		// Unreachable unless a worker died without reporting; keep the
		// container unfinished rather than emit a hole.
		return info, corrupt("build lost %d chunks", len(pending))
	}
	if err := cw.finish(); err != nil {
		return info, err
	}
	info.Records = cw.total
	info.Chunks = len(cw.chunks)
	return info, nil
}
