package tracestore

import (
	"bytes"
	"io"
	"testing"

	"morrigan/internal/trace"
)

// FuzzChunkReader holds the package's decode-safety property: arbitrary
// bytes fed to the container parser and chunk decoder must produce an error
// or a valid stream — never a panic, unbounded allocation, or hang. Seeds
// are round-trip containers of several geometries plus their truncations,
// so the fuzzer starts inside the format.
func FuzzChunkReader(f *testing.F) {
	recs := genRecords(f, 1500)
	for _, geometry := range []struct{ n, chunk int }{
		{0, 64},    // empty container
		{50, 64},   // single short chunk
		{1500, 64}, // many chunks, short tail
		{512, 256}, // exact multiple
	} {
		var buf bytes.Buffer
		if _, err := Build(&buf, &trace.SliceReader{Records: recs[:geometry.n]}, uint64(geometry.n), BuildOptions{ChunkRecords: geometry.chunk}); err != nil {
			f.Fatal(err)
		}
		data := buf.Bytes()
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:headerSize])
	}
	f.Add([]byte("MTC1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := OpenBytes(data)
		if err != nil {
			return
		}
		// Bound the work per input: a well-formed giant index would
		// otherwise make the fuzzer decode for seconds.
		if c.Records() > 1<<20 {
			return
		}
		r := c.NewReader()
		defer r.Close()
		var rec trace.Record
		n := uint64(0)
		for {
			err := r.Next(&rec)
			if err == io.EOF {
				if n != c.Records() {
					t.Fatalf("stream ended after %d records, index says %d", n, c.Records())
				}
				return
			}
			if err != nil {
				return // corrupt input detected mid-stream: fine
			}
			n++
			if n > c.Records() {
				t.Fatalf("stream produced more records than the index declares")
			}
		}
	})
}
