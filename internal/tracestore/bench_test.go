package tracestore

import (
	"io"
	"testing"

	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// benchRecords is the stream length per benchmark iteration: enough chunks
// that the pipelined reader's steady state dominates setup.
const benchRecords = 1 << 19

// benchCorpus materialises the benchmark workload once per process, wired
// to a shared chunk cache the way a Store wires every corpus it opens. The
// first iteration decodes; steady state streams cache-resident chunks,
// which is the regime campaign jobs run in.
func benchCorpus(b *testing.B) *Corpus {
	b.Helper()
	if benchCorpusCached == nil {
		c, err := OpenBytes(buildContainer(b, benchGenRecords(b), DefaultChunkRecords>>2))
		if err != nil {
			b.Fatalf("OpenBytes: %v", err)
		}
		c.id = 1
		c.cache = NewCache(DefaultCacheBytes)
		benchCorpusCached = c
	}
	return benchCorpusCached
}

var (
	benchCorpusCached  *Corpus
	benchRecordsCached []trace.Record
)

func benchGenRecords(b *testing.B) []trace.Record {
	b.Helper()
	if benchRecordsCached == nil {
		benchRecordsCached = genRecords(b, benchRecords)
	}
	return benchRecordsCached
}

// BenchmarkGeneratorRead is the baseline: the cost of producing the record
// stream by stepping the synthetic generator live, as every simulation job
// paid before corpora existed.
func BenchmarkGeneratorRead(b *testing.B) {
	w := workloads.QMM()[0]
	b.SetBytes(benchRecords * recordMemBytes)
	for i := 0; i < b.N; i++ {
		r := w.NewReader()
		var rec trace.Record
		for n := 0; n < benchRecords; n++ {
			if err := r.Next(&rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCorpusRead streams a materialised corpus record-at-a-time
// through the pipelined reader.
func BenchmarkCorpusRead(b *testing.B) {
	c := benchCorpus(b)
	b.SetBytes(benchRecords * recordMemBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.NewReader()
		var rec trace.Record
		for {
			if err := r.Next(&rec); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
	}
}

// BenchmarkCorpusNextBatch streams the corpus through the batch path the
// simulator hot loop uses.
func BenchmarkCorpusNextBatch(b *testing.B) {
	c := benchCorpus(b)
	buf := make([]trace.Record, 512)
	b.SetBytes(benchRecords * recordMemBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.NewReader()
		for {
			if _, err := r.NextBatch(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		r.Close()
	}
}
