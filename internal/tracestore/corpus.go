package tracestore

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"morrigan/internal/trace"
)

// Corpus is one open container: the parsed index plus the byte source the
// chunk frames are fetched from. A Corpus is safe for concurrent use — every
// method reads immutable geometry and fetches frames with positioned reads —
// so one Corpus is shared by every job streaming the workload.
type Corpus struct {
	id     uint64
	src    io.ReaderAt
	closer io.Closer

	workload     string
	chunkRecords int
	records      uint64
	chunks       []chunkInfo

	// cache, when non-nil, interposes the shared decoded-chunk LRU between
	// readers and decodeChunk (set by Store; standalone opens decode
	// privately).
	cache *Cache
}

// OpenFile opens a standalone corpus container (no store, no shared cache),
// primarily for inspection tools.
func OpenFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	c, err := openCorpus(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c.closer = f
	return c, nil
}

// OpenBytes opens a corpus container held in memory (tests and fuzzing).
func OpenBytes(data []byte) (*Corpus, error) {
	return openCorpus(bytes.NewReader(data), int64(len(data)))
}

func openCorpus(src io.ReaderAt, size int64) (*Corpus, error) {
	chunkRecords, total, chunks, err := parseContainer(src, size)
	if err != nil {
		return nil, err
	}
	return &Corpus{src: src, chunkRecords: chunkRecords, records: total, chunks: chunks}, nil
}

// Records returns the total record count.
func (c *Corpus) Records() uint64 { return c.records }

// Chunks returns the chunk count.
func (c *Corpus) Chunks() int { return len(c.chunks) }

// ChunkRecords returns the fixed per-chunk record count.
func (c *Corpus) ChunkRecords() int { return c.chunkRecords }

// Workload returns the workload name the store recorded for this corpus
// (empty for standalone opens).
func (c *Corpus) Workload() string { return c.workload }

// Chunk describes chunk i.
func (c *Corpus) Chunk(i int) ChunkInfo {
	ci := c.chunks[i]
	return ChunkInfo{
		Offset:          ci.offset,
		Records:         ci.records,
		CompressedLen:   ci.clen,
		UncompressedLen: ci.ulen,
		CRC32C:          ci.crc,
	}
}

// Close releases the underlying file, if the corpus owns one. Readers must
// be drained or closed first.
func (c *Corpus) Close() error {
	if c.closer != nil {
		return c.closer.Close()
	}
	return nil
}

// readFrame fetches chunk i's compressed frame.
func (c *Corpus) readFrame(i int) ([]byte, error) {
	ci := c.chunks[i]
	frame := make([]byte, ci.clen)
	if _, err := c.src.ReadAt(frame, ci.offset); err != nil {
		return nil, corrupt("chunk %d: reading frame: %v", i, err)
	}
	return frame, nil
}

// decode fetches and decodes chunk i, bypassing any cache.
func (c *Corpus) decode(i int) ([]trace.Record, error) {
	frame, err := c.readFrame(i)
	if err != nil {
		return nil, err
	}
	ci := c.chunks[i]
	recs, err := decodeChunk(frame, ci.records, ci.ulen, make([]trace.Record, 0, decodeCap(ci.records)))
	if err != nil {
		return nil, fmt.Errorf("chunk %d: %w", i, err)
	}
	return recs, nil
}

// decodeCap bounds the decode buffer's preallocation: the index's record
// count is untrusted until the frame actually produces that many records, so
// a corrupt index may only demand a modest upfront allocation — append
// growth covers legitimately huge chunks.
func decodeCap(records uint64) uint64 {
	const max = 1 << 18
	if records > max {
		return max
	}
	return records
}

// acquire returns chunk i's decoded records and a release function, going
// through the shared cache when the corpus has one.
func (c *Corpus) acquire(i int) ([]trace.Record, func(), error) {
	if c.cache != nil {
		return c.cache.acquire(c, i)
	}
	recs, err := c.decode(i)
	if err != nil {
		return nil, nil, err
	}
	return recs, func() {}, nil
}

// VerifyChunk checks chunk i's frame checksum and decodes it, verifying the
// record count and uncompressed length against the index.
func (c *Corpus) VerifyChunk(i int) error {
	frame, err := c.readFrame(i)
	if err != nil {
		return err
	}
	ci := c.chunks[i]
	if got := crc32.Checksum(frame, castagnoli); got != ci.crc {
		return corrupt("chunk %d: frame checksum %#08x, index says %#08x", i, got, ci.crc)
	}
	if _, err := decodeChunk(frame, ci.records, ci.ulen, make([]trace.Record, 0, decodeCap(ci.records))); err != nil {
		return fmt.Errorf("chunk %d: %w", i, err)
	}
	return nil
}

// Verify checks every chunk against the index (see VerifyChunk).
func (c *Corpus) Verify() error {
	for i := range c.chunks {
		if err := c.VerifyChunk(i); err != nil {
			return err
		}
	}
	return nil
}
