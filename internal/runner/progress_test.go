package runner

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestWriterProgressNilWriter(t *testing.T) {
	if fn := WriterProgress(nil); fn != nil {
		t.Fatal("nil writer should disable progress")
	}
}

func TestWriterProgressLineFormat(t *testing.T) {
	var sb strings.Builder
	fn := WriterProgress(&sb)
	fn(Event{
		Done: 3, Total: 45,
		Job:     Job{Experiment: "fig15", Config: "Morrigan", Workload: "qmm-srv-07"},
		Elapsed: 1200 * time.Millisecond,
		ETA:     18 * time.Second,
	})
	got := sb.String()
	want := "[ 3/45] fig15/Morrigan/qmm-srv-07 ok (1.2s, eta 18s)\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestWriterProgressFailedAndNoETA(t *testing.T) {
	var sb strings.Builder
	fn := WriterProgress(&sb)
	fn(Event{
		Done: 1, Total: 2,
		Job:     Job{Workload: "qmm-srv-01"},
		Err:     errors.New("boom"),
		Elapsed: 500 * time.Millisecond,
	})
	got := sb.String()
	if !strings.Contains(got, "FAILED") {
		t.Fatalf("failed job not marked: %q", got)
	}
	if strings.Contains(got, "eta") {
		t.Fatalf("zero ETA should be omitted: %q", got)
	}
	if !strings.HasPrefix(got, "[1/2] ") {
		t.Fatalf("counter misaligned: %q", got)
	}
}

func TestNumWidth(t *testing.T) {
	for _, c := range []struct{ n, w int }{
		{0, 1}, {9, 1}, {10, 2}, {45, 2}, {99, 2}, {100, 3}, {12345, 5},
	} {
		if got := numWidth(c.n); got != c.w {
			t.Errorf("numWidth(%d) = %d, want %d", c.n, got, c.w)
		}
	}
}

// TestProgressTrackerETA: the tracker estimates remaining time from the
// observed completion rate and emits zero ETA once everything is done.
func TestProgressTrackerETA(t *testing.T) {
	var events []Event
	p := newProgressTracker(4, func(e Event) { events = append(events, e) })
	// Pretend the campaign started 8 seconds ago: after 2 of 4 jobs the
	// completed-throughput estimate is 8s/2*2 = 8s remaining.
	p.started = time.Now().Add(-8 * time.Second)

	p.done(Result{Job: Job{Workload: "a"}})
	p.done(Result{Job: Job{Workload: "b"}})
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	e := events[1]
	if e.Done != 2 || e.Total != 4 {
		t.Fatalf("counter %d/%d", e.Done, e.Total)
	}
	if e.ETA < 7*time.Second || e.ETA > 9*time.Second {
		t.Fatalf("ETA = %v, want ~8s", e.ETA)
	}
	if e.Campaign < 8*time.Second {
		t.Fatalf("campaign elapsed = %v", e.Campaign)
	}

	p.done(Result{Job: Job{Workload: "c"}})
	p.done(Result{Job: Job{Workload: "d"}})
	if last := events[len(events)-1]; last.ETA != 0 {
		t.Fatalf("final ETA = %v, want 0", last.ETA)
	}
}

// TestProgressTrackerNilFunc: counting still works with no callback.
func TestProgressTrackerNilFunc(t *testing.T) {
	p := newProgressTracker(2, nil)
	p.done(Result{})
	p.done(Result{})
	if p.completed != 2 {
		t.Fatalf("completed = %d", p.completed)
	}
}
