package runner

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"morrigan/internal/machine"
	"morrigan/internal/sim"
	"morrigan/internal/workloads"
)

// updateGolden regenerates testdata/golden_stats.json from the current
// simulator. The committed file was captured before sampling existed, so a
// passing TestFullRunStatsGolden proves full (non-sampled) runs still produce
// bit-identical Stats.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenJob is the fixed job both golden tests pin: the default Table 1
// machine on qmm-srv-01 at a small, fast scale.
func goldenJob(t *testing.T) Job {
	t.Helper()
	w, ok := workloads.ByName("qmm-srv-01")
	if !ok {
		t.Fatal("workload qmm-srv-01 not found")
	}
	return Job{
		Workload:  "qmm-srv-01",
		Machine:   machine.Default(),
		Workloads: []workloads.Spec{w},
		Warmup:    50_000,
		Measure:   200_000,
	}
}

// goldenJobKey is goldenJob's canonical key as derived before the sampling
// subsystem landed. Job.Key for full (non-sampled) jobs must never drift:
// every persisted journal, result store and fabric campaign identifies
// results by it.
const goldenJobKey = "1700cc429492e6e54d072a516759a0c971e8763077ba39e3e3c6b4020aafb5b7"

func TestJobKeyGolden(t *testing.T) {
	key, keyed := goldenJob(t).Key()
	if !keyed {
		t.Fatal("golden job is unkeyed")
	}
	if key != goldenJobKey {
		t.Errorf("canonical job key drifted:\n got  %s\n want %s\n"+
			"full-run keys must be bit-identical across releases (persisted journals and stores depend on it)",
			key, goldenJobKey)
	}
}

// TestFullRunStatsGolden locks the full (non-sampled) execution path to the
// pre-sampling Stats, bit for bit.
func TestFullRunStatsGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden_stats.json")
	results, err := Run(context.Background(), []Job{goldenJob(t)}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := results[0].Stats

	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want sim.Stats
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("full-run Stats drifted from the pre-sampling golden:\n got  %+v\n want %+v", got, want)
	}
}
