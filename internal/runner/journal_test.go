package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"morrigan/internal/sim"
)

// runJournaled runs jobs with a journal at path and returns the results.
func runJournaled(t *testing.T, path string, jobs []Job, resume bool, workers int) []Result {
	t.Helper()
	jn, err := OpenJournal(path, resume)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	results, err := Run(context.Background(), jobs, Options{Workers: workers, Journal: jn})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// TestJournalResume: a second run over the same jobs with -resume semantics
// must simulate nothing and return the first run's stats bit for bit.
func TestJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := testJobs(4)
	first := runJournaled(t, path, jobs, false, 2)

	second := runJournaled(t, path, jobs, true, 2)
	for i := range jobs {
		if second[i].Reused != ReusedJournal {
			t.Errorf("job %d: Reused = %q, want %q", i, second[i].Reused, ReusedJournal)
		}
		if !reflect.DeepEqual(first[i].Stats, second[i].Stats) {
			t.Errorf("job %d: resumed stats differ from the original run", i)
		}
	}
}

// TestJournalPartialResume is the interrupted-campaign scenario: journal only
// a prefix of the jobs, then resume over the full set — already-journaled
// jobs are served, the rest simulate, and the merged results are bit-identical
// to an uninterrupted run's.
func TestJournalPartialResume(t *testing.T) {
	jobs := testJobs(4)
	uninterrupted, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.journal")
	runJournaled(t, path, jobs[:2], false, 1) // the "killed at 50%" run

	merged := runJournaled(t, path, jobs, true, 2)
	for i := range jobs {
		wantReused := ""
		if i < 2 {
			wantReused = ReusedJournal
		}
		if merged[i].Reused != wantReused {
			t.Errorf("job %d: Reused = %q, want %q", i, merged[i].Reused, wantReused)
		}
		if !reflect.DeepEqual(merged[i].Stats, uninterrupted[i].Stats) {
			t.Errorf("job %d: merged stats differ from the uninterrupted run", i)
		}
	}
}

// TestJournalTornTail: a crash mid-append leaves a torn final line; resume
// must truncate it, keep every whole record, and re-run only the torn job.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := testJobs(3)
	runJournaled(t, path, jobs, false, 1)

	// Tear the final record in half, as a kill mid-write would.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(b), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	jn, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if jn.Len() != len(jobs)-1 {
		t.Fatalf("after tearing the tail, journal holds %d records, want %d", jn.Len(), len(jobs)-1)
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 1, Journal: jn})
	if err != nil {
		t.Fatal(err)
	}
	jn.Close()
	reused := 0
	for _, r := range results {
		if r.Reused == ReusedJournal {
			reused++
		}
	}
	if reused != len(jobs)-1 {
		t.Errorf("reused %d jobs, want %d", reused, len(jobs)-1)
	}

	// The re-run appended the torn job again: a third open sees all records
	// and a well-formed file.
	jn2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	if jn2.Len() != len(jobs) {
		t.Errorf("after recovery run, journal holds %d records, want %d", jn2.Len(), len(jobs))
	}
}

// TestJournalKeyVerification: a record whose stored key no longer derives
// from its stored components (hand-edited file, stale hash version) is
// discarded on load so the job re-runs instead of reusing a wrong result.
func TestJournalKeyVerification(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := testJobs(2)
	runJournaled(t, path, jobs, false, 1)

	// Corrupt record 0's machine hash (keeping valid JSON and a valid key
	// string), simulating a hash-version bump.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	rec["machine"] = strings.Repeat("ab", 32)
	edited, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[1] = string(edited)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	jn, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	if jn.Len() != 1 {
		t.Errorf("journal kept %d records, want 1 (the unedited one)", jn.Len())
	}
	key0, _ := jobs[0].Key()
	if _, hit := jn.Lookup(key0); hit {
		t.Error("edited record should have been discarded")
	}
	key1, _ := jobs[1].Key()
	if _, hit := jn.Lookup(key1); !hit {
		t.Error("untouched record should have survived")
	}
}

// TestJournalSchemaMismatch: an incompatible journal must fail loudly rather
// than resume against records whose format this binary cannot trust.
func TestJournalSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	if err := os.WriteFile(path, []byte(`{"kind":"header","schema":999}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, true); err == nil || !strings.Contains(err.Error(), "schema 999") {
		t.Errorf("OpenJournal on schema 999 = %v, want schema error", err)
	}
}

// TestJournalFreshTruncates: without resume, an existing journal is
// truncated — a new campaign starts from nothing.
func TestJournalFreshTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := testJobs(2)
	runJournaled(t, path, jobs, false, 1)

	results := runJournaled(t, path, jobs, false, 1)
	for i, r := range results {
		if r.Reused != "" {
			t.Errorf("job %d reused %q from a truncated journal", i, r.Reused)
		}
	}
}

// TestJournalSkipsUnkeyedAndFailed: instrumented (unkeyed) jobs and failed
// jobs must never be journaled — resuming over them would be wrong.
func TestJournalSkipsUnkeyedAndFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := testJobs(3)
	jobs[1].Instrument = func(*sim.Config) {}
	jobs[2].Machine.STLBEntries = 7 // invalid geometry: the job fails

	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 1, Journal: jn})
	if err == nil {
		t.Error("campaign with a failing job returned nil error")
	}
	jn.Close()
	if results[1].Err != nil {
		t.Errorf("instrumented job failed: %v", results[1].Err)
	}
	if results[2].Err == nil {
		t.Error("invalid-geometry job did not fail")
	}

	jn2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	if jn2.Len() != 1 {
		t.Errorf("journal holds %d records, want 1 (only the keyed, succeeded job)", jn2.Len())
	}
}
