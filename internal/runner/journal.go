package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"morrigan/internal/sim"
)

// JournalSchemaVersion identifies the checkpoint-journal file format.
const JournalSchemaVersion = 1

// Journal is the crash-safe campaign checkpoint: an append-only JSONL file
// of completed JobKey → Stats records. Every append is a single line
// followed by an fsync, so at any kill point the file is a valid journal
// plus at most one torn trailing line, which resume tolerates by truncating
// it. Keys are re-derived from each record's stored components on load, so a
// record whose key no longer matches (a spec-hash or key-derivation version
// bump, or hand-edited components) is discarded and its job simply re-runs.
//
// A Journal only ever stores succeeded, data-identified jobs: failed jobs,
// instrumented jobs and NewThreads jobs are skipped (see Job.Key). It is
// safe for concurrent use by the campaign worker pool.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	seen map[string]sim.Stats
}

// journalHeader is the file's first line.
type journalHeader struct {
	Kind   string `json:"kind"`
	Schema int    `json:"schema"`
}

// journalRecord is one completed job. The key's components (machine hash,
// workload hashes, scale) are stored alongside the key so load can verify
// the key still derives from them; the display fields are informational.
type journalRecord struct {
	Kind       string    `json:"kind"`
	Key        string    `json:"key"`
	Machine    string    `json:"machine"`
	Workloads  []string  `json:"workloads"`
	Warmup     uint64    `json:"warmup"`
	Measure    uint64    `json:"measure"`
	Experiment string    `json:"experiment,omitempty"`
	Config     string    `json:"config,omitempty"`
	Workload   string    `json:"workload,omitempty"`
	Stats      sim.Stats `json:"stats"`
}

// OpenJournal opens the checkpoint journal at path. With resume false the
// file is truncated and a fresh header written — the campaign starts from
// nothing. With resume true, existing records are loaded (after key
// verification) so the campaign skips already-completed jobs; a torn final
// line from a killed run is cut off before appending resumes.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path, seen: make(map[string]sim.Stats)}
	if !resume {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("runner: journal: %w", err)
		}
		j.f = f
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j.f = f
	valid, err := j.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Cut the torn tail (or any trailing corruption) so appends extend a
	// well-formed journal, then continue from there.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: truncating tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	if valid == 0 {
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// writeHeader emits and fsyncs the header line.
func (j *Journal) writeHeader() error {
	b, err := json.Marshal(journalHeader{Kind: "header", Schema: JournalSchemaVersion})
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	return nil
}

// load scans the journal from the start, filling seen from verified records,
// and returns the byte offset of the end of the last well-formed line.
// Scanning stops at the first incomplete or unparsable line — everything
// after a corruption point is abandoned, which for the expected failure mode
// (a kill mid-append) is exactly the torn final line.
func (j *Journal) load() (validOffset int64, err error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("runner: journal: %w", err)
	}
	r := bufio.NewReader(j.f)
	var offset int64
	first := true
	for {
		line, rerr := r.ReadString('\n')
		if rerr != nil {
			// EOF with a partial line: the torn tail — stop before it.
			return offset, nil
		}
		if first {
			var h journalHeader
			if json.Unmarshal([]byte(line), &h) != nil || h.Kind != "header" {
				return offset, nil
			}
			if h.Schema != JournalSchemaVersion {
				return 0, fmt.Errorf("runner: journal %s: schema %d, want %d — delete it or run without -resume",
					j.path, h.Schema, JournalSchemaVersion)
			}
			first = false
			offset += int64(len(line))
			continue
		}
		var rec journalRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Kind != "result" {
			return offset, nil
		}
		// Verify the stored key still derives from the stored components;
		// a mismatch (stale hash version, edited file) discards the record
		// so the job re-runs rather than reusing a wrong result.
		if jobKey(rec.Machine, rec.Workloads, rec.Warmup, rec.Measure) == rec.Key {
			j.seen[rec.Key] = rec.Stats
		}
		offset += int64(len(line))
	}
}

// Append journals one completed job: no-op for failed jobs, jobs without a
// data-only identity, and keys already journaled. The record is fsynced
// before Append returns, so a later crash cannot lose it.
func (j *Journal) Append(res Result) error {
	key, ok := res.Job.Key()
	if !ok || res.Err != nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.seen[key]; dup {
		return nil
	}
	hashes := make([]string, len(res.Job.Workloads))
	for i, w := range res.Job.Workloads {
		hashes[i] = w.Hash()
	}
	rec := journalRecord{
		Kind:       "result",
		Key:        key,
		Machine:    res.Job.Machine.Hash(),
		Workloads:  hashes,
		Warmup:     res.Job.Warmup,
		Measure:    res.Job.Measure,
		Experiment: res.Job.Experiment,
		Config:     res.Job.Config,
		Workload:   res.Job.Workload,
		Stats:      res.Stats,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	j.seen[key] = res.Stats
	return nil
}

// Lookup returns the journaled stats for key, if present.
func (j *Journal) Lookup(key string) (sim.Stats, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st, ok := j.seen[key]
	return st, ok
}

// Len reports how many completed jobs the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Close releases the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
