package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"morrigan/internal/sampling"
	"morrigan/internal/sim"
)

// JournalSchemaVersion identifies the checkpoint-journal file format.
const JournalSchemaVersion = 1

// syncWriter is the journal's durable byte sink: an *os.File in production,
// an injected failing implementation in the write/sync error-path tests.
type syncWriter interface {
	io.Writer
	Sync() error
}

// Journal is the crash-safe campaign checkpoint: an append-only JSONL file
// of completed JobKey → Stats records. Every append is durable before Append
// returns — the record's bytes are written and fsynced — so at any kill
// point the file is a valid journal plus at most one torn trailing line,
// which resume tolerates by truncating it. Keys are re-derived from each
// record's stored components on load, so a record whose key no longer
// matches (a spec-hash or key-derivation version bump, or hand-edited
// components) is discarded and its job simply re-runs.
//
// Concurrent appends group-commit: each caller marshals and dedup-checks its
// own record under the index lock, stages the bytes into the open batch, and
// the first caller to reach the commit lock writes and fsyncs the whole
// batch with a single write+sync. A campaign's worker pool therefore pays
// ~one fsync per batch of concurrently finishing jobs instead of one fsync
// per job, without weakening durability: Append still does not return until
// the batch holding its record has been synced.
//
// A Journal only ever stores succeeded, data-identified jobs: failed jobs,
// instrumented jobs and NewThreads jobs are skipped (see Job.Key). It is
// safe for concurrent use by the campaign worker pool.
type Journal struct {
	// mu guards seen, batch and err. It is never held across file I/O.
	mu    sync.Mutex
	seen  map[string]Stored
	batch *journalBatch
	err   error // sticky first write/sync failure, for Writable

	// commitMu serializes batch commits; the holder is the only goroutine
	// writing to w.
	commitMu sync.Mutex

	w    syncWriter
	f    *os.File // same object as w in production; kept for Close/Truncate
	path string
}

// journalBatch is one group-commit unit: the staged bytes of one or more
// records plus the keys they cover, resolved all-or-nothing by the first
// staging goroutine to reach the commit lock.
type journalBatch struct {
	buf  []byte
	keys []string
	done chan struct{}
	err  error
}

// journalHeader is the file's first line.
type journalHeader struct {
	Kind   string `json:"kind"`
	Schema int    `json:"schema"`
}

// journalRecord is one completed job. The key's components (machine hash,
// workload hashes, scale) are stored alongside the key so load can verify
// the key still derives from them; the display fields are informational.
type journalRecord struct {
	Kind       string    `json:"kind"`
	Key        string    `json:"key"`
	Machine    string    `json:"machine"`
	Workloads  []string  `json:"workloads"`
	Warmup     uint64    `json:"warmup"`
	Measure    uint64    `json:"measure"`
	Experiment string    `json:"experiment,omitempty"`
	Config     string    `json:"config,omitempty"`
	Workload   string    `json:"workload,omitempty"`
	Stats      sim.Stats `json:"stats"`
	// Sampling marks sampled results; its policy participates in key
	// re-derivation on load. Absent for full runs, so pre-sampling journals
	// load unchanged — and a sampled record read by a pre-sampling binary
	// fails its key check and is discarded rather than misread.
	Sampling *sampling.Outcome `json:"sampling,omitempty"`
}

// OpenJournal opens the checkpoint journal at path. With resume false the
// file is truncated and a fresh header written — the campaign starts from
// nothing. With resume true, existing records are loaded (after key
// verification) so the campaign skips already-completed jobs; a torn final
// line from a killed run is cut off before appending resumes.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{path: path, seen: make(map[string]Stored)}
	if !resume {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, fmt.Errorf("runner: journal: %w", err)
		}
		j.f, j.w = f, f
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j.f, j.w = f, f
	valid, err := j.load()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Cut the torn tail (or any trailing corruption) so appends extend a
	// well-formed journal, then continue from there.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: truncating tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	if valid == 0 {
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// writeHeader emits and fsyncs the header line.
func (j *Journal) writeHeader() error {
	b, err := json.Marshal(journalHeader{Kind: "header", Schema: JournalSchemaVersion})
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if err := j.w.Sync(); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	return nil
}

// load scans the journal from the start, filling seen from verified records,
// and returns the byte offset of the end of the last well-formed line.
// Scanning stops at the first incomplete or unparsable line — everything
// after a corruption point is abandoned, which for the expected failure mode
// (a kill mid-append) is exactly the torn final line.
func (j *Journal) load() (validOffset int64, err error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("runner: journal: %w", err)
	}
	r := bufio.NewReader(j.f)
	var offset int64
	first := true
	for {
		line, rerr := r.ReadString('\n')
		if rerr != nil {
			// EOF with a partial line: the torn tail — stop before it.
			return offset, nil
		}
		if first {
			var h journalHeader
			if json.Unmarshal([]byte(line), &h) != nil || h.Kind != "header" {
				return offset, nil
			}
			if h.Schema != JournalSchemaVersion {
				return 0, fmt.Errorf("runner: journal %s: schema %d, want %d — delete it or run without -resume",
					j.path, h.Schema, JournalSchemaVersion)
			}
			first = false
			offset += int64(len(line))
			continue
		}
		var rec journalRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Kind != "result" {
			return offset, nil
		}
		// Verify the stored key still derives from the stored components
		// (including the sampling policy for sampled records); a mismatch
		// (stale hash version, edited file) discards the record so the job
		// re-runs rather than reusing a wrong result.
		if jobKey(rec.Machine, rec.Workloads, rec.Warmup, rec.Measure, recordPolicy(rec.Sampling)) == rec.Key {
			j.seen[rec.Key] = Stored{Stats: rec.Stats, Sampling: rec.Sampling}
		}
		offset += int64(len(line))
	}
}

// Append journals one completed job: no-op for failed jobs, jobs without a
// data-only identity, and keys already journaled. The record is durable —
// written and fsynced, possibly as part of a batch with other concurrently
// appended records — before Append returns, so a later crash cannot lose it.
func (j *Journal) Append(res Result) error {
	key, ok := res.Job.Key()
	if !ok || res.Err != nil {
		return nil
	}
	hashes := make([]string, len(res.Job.Workloads))
	for i, w := range res.Job.Workloads {
		hashes[i] = w.Hash()
	}
	rec := journalRecord{
		Kind:       "result",
		Key:        key,
		Machine:    res.Job.Machine.Hash(),
		Workloads:  hashes,
		Warmup:     res.Job.Warmup,
		Measure:    res.Job.Measure,
		Experiment: res.Job.Experiment,
		Config:     res.Job.Config,
		Workload:   res.Job.Workload,
		Stats:      res.Stats,
		Sampling:   res.Sampling,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}

	// Stage: dedup-check and claim the key, then add the line to the open
	// batch, all under the index lock — never across I/O.
	j.mu.Lock()
	if _, dup := j.seen[key]; dup {
		j.mu.Unlock()
		return nil
	}
	j.seen[key] = Stored{Stats: res.Stats, Sampling: res.Sampling}
	batch := j.batch
	if batch == nil {
		batch = &journalBatch{done: make(chan struct{})}
		j.batch = batch
	}
	batch.buf = append(batch.buf, b...)
	batch.buf = append(batch.buf, '\n')
	batch.keys = append(batch.keys, key)
	j.mu.Unlock()

	// Commit: the first stager through commitMu writes and syncs the whole
	// batch (including records staged by others while it waited); later
	// stagers of the same batch find it already resolved and just return
	// its verdict.
	j.commitMu.Lock()
	select {
	case <-batch.done:
		j.commitMu.Unlock()
		return batch.err
	default:
	}
	j.mu.Lock()
	if j.batch == batch {
		j.batch = nil // detach: records staged from here on open a new batch
	}
	j.mu.Unlock()
	_, werr := j.w.Write(batch.buf)
	serr := j.w.Sync()
	err = werr
	if err == nil {
		err = serr
	}
	if err != nil {
		err = fmt.Errorf("runner: journal: %w", err)
		// The batch's records are not durably journaled: un-claim their keys
		// so a retry (or a resumed run) does not believe them checkpointed,
		// and record the failure for Writable.
		j.mu.Lock()
		for _, k := range batch.keys {
			delete(j.seen, k)
		}
		if j.err == nil {
			j.err = err
		}
		j.mu.Unlock()
	}
	batch.err = err
	close(batch.done)
	j.commitMu.Unlock()
	return err
}

// Lookup returns the journaled payload for key, if present.
func (j *Journal) Lookup(key string) (Stored, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st, ok := j.seen[key]
	return st, ok
}

// recordPolicy extracts the sampling policy from a stored outcome, nil-safe.
func recordPolicy(o *sampling.Outcome) *sampling.Policy {
	if o == nil {
		return nil
	}
	return &o.Policy
}

// Len reports how many completed jobs the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Writable reports whether the journal can still take checkpoints: nil when
// healthy, the first write/sync failure (or a stat failure on the underlying
// file) otherwise. It is the journal's readiness probe — a campaign whose
// journal has gone read-only is up but should not take on work it cannot
// checkpoint.
func (j *Journal) Writable() error {
	j.mu.Lock()
	err := j.err
	f := j.f
	j.mu.Unlock()
	if err != nil {
		return err
	}
	if f != nil {
		if _, serr := f.Stat(); serr != nil {
			return fmt.Errorf("runner: journal: %w", serr)
		}
	}
	return nil
}

// Close releases the underlying file.
func (j *Journal) Close() error {
	j.commitMu.Lock()
	defer j.commitMu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}
