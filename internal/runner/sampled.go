package runner

import (
	"context"
	"fmt"
	"io"

	"morrigan/internal/sampling"
	"morrigan/internal/sim"
	"morrigan/internal/trace"
)

// executeSampled runs one job in sampled-execution mode: a functional
// profiling pass (served from Options.Profiles when attached), deterministic
// clustering into representative intervals, then fast-forward-and-measure
// over each representative on a fresh simulator, extrapolating the weighted
// Stats with confidence intervals.
//
// The built simulator is published through sp so the caller's deferred
// accounting (SimInstructions via Executed, which fast-forwarded
// instructions never enter) sees it even on a mid-run failure.
func executeSampled(ctx context.Context, sp **sim.Simulator, cfg sim.Config, j Job, opt Options, traceID string) (sim.Stats, *sampling.Outcome, error) {
	if j.NewThreads != nil {
		return sim.Stats{}, nil, fmt.Errorf("sampled execution requires workload-described threads (NewThreads is set)")
	}
	if len(j.Workloads) != 1 {
		return sim.Stats{}, nil, fmt.Errorf("sampled execution supports exactly one thread, got %d workloads", len(j.Workloads))
	}
	pol := *j.Sampling
	if err := pol.Validate(j.Measure); err != nil {
		return sim.Stats{}, nil, err
	}

	w := j.Workloads[0]
	newReader := func() (trace.Reader, error) {
		if opt.NewReader != nil {
			return opt.NewReader(w)
		}
		return w.NewReader(), nil
	}

	var prof *sampling.Profile
	var err error
	profSpan := opt.Spans.Start(traceID, "sample.profile")
	switch {
	case opt.Profiles != nil:
		prof, err = opt.Profiles.Profile(w.Hash(), j.Warmup, j.Measure, pol.Interval, newReader)
	case opt.memProfiles != nil:
		prof, err = opt.memProfiles.Profile(w.Hash(), j.Warmup, j.Measure, pol.Interval, newReader)
	default:
		var r trace.Reader
		if r, err = newReader(); err == nil {
			prof, err = sampling.BuildProfile(r, w.Hash(), j.Warmup, j.Measure, pol.Interval)
			if c, ok := r.(io.Closer); ok {
				c.Close()
			}
		}
	}
	profSpan.End()
	if err != nil {
		return sim.Stats{}, nil, err
	}
	plan, err := sampling.Cluster(prof, pol)
	if err != nil {
		return sim.Stats{}, nil, err
	}

	// Fresh readers for the execution pass — the profiling pass consumed its
	// own stream.
	threadSpan := opt.Spans.Start(traceID, "threads")
	threads, err := buildThreads(j, opt)
	threadSpan.End()
	if err != nil {
		return sim.Stats{}, nil, err
	}
	defer closeThreadReaders(threads)
	s, err := sim.New(cfg, threads)
	if err != nil {
		return sim.Stats{}, nil, err
	}
	*sp = s

	var hook sampling.SpanHook
	if opt.Spans != nil {
		hook = func(phase string) func() {
			a := opt.Spans.Start(traceID, "sample."+phase)
			return a.End
		}
	}
	st, outcome, err := sampling.ExecuteTraced(ctx, s, j.Warmup, plan, pol, hook)
	if err != nil {
		return sim.Stats{}, nil, err
	}
	sampling.RecordOutcome(outcome)
	return st, outcome, nil
}
