package runner

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"

	"morrigan/internal/spans"
)

// BenchSchemaVersion identifies the BENCH_*.json throughput-summary schema.
const BenchSchemaVersion = 1

// Bench is the campaign throughput summary stamped into BENCH_*.json files:
// the perf-trajectory artifact that makes simulation speed comparable across
// machines, worker counts and PRs. It aggregates the per-job throughput
// accounting (Result.InstrPerSec) into campaign-level figures plus a
// per-workload breakdown.
type Bench struct {
	// Schema is BenchSchemaVersion at emission time.
	Schema int `json:"schema"`
	// GoMaxProcs and NumCPU describe the machine the numbers came from.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Jobs and Failed count campaign jobs; failed jobs still contribute
	// their partial instruction counts and elapsed time.
	Jobs   int `json:"jobs"`
	Failed int `json:"failed"`
	// ReusedJobs counts jobs served from the result cache or checkpoint
	// journal instead of simulating — the campaign's dedup win. Always
	// emitted, so a sweep that should have deduplicated but did not shows
	// an explicit zero.
	ReusedJobs int `json:"reused_jobs"`
	// SampledJobs counts jobs executed in sampled mode; their instruction
	// counts cover only timing-simulated work, so sampled-mode throughput
	// figures are not comparable to full-run ones job-for-job.
	SampledJobs int `json:"sampled_jobs"`
	// TotalInstructions is the sum of every job's executed instructions
	// (warmup included).
	TotalInstructions uint64 `json:"total_instructions"`
	// TotalElapsedMS is the sum of per-job wall-clock times — CPU-seconds of
	// simulation, not campaign wall time, so it is worker-count independent.
	TotalElapsedMS float64 `json:"total_elapsed_ms"`
	// InstrPerSec is the aggregate per-core simulation throughput:
	// TotalInstructions over TotalElapsed.
	InstrPerSec float64 `json:"instr_per_sec"`
	// PeakHeapBytes is the largest per-job heap high-water mark.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Entries break throughput down per job, in deterministic key order.
	Entries []BenchEntry `json:"entries"`
	// TraceSupply, when present, records how job instruction streams were fed
	// (corpus store + shared decode-cache accounting instead of live
	// generation). Set by the caller after the campaign; nil for
	// generator-backed runs.
	TraceSupply *TraceSupply `json:"trace_supply,omitempty"`
	// Phases, when present, is the campaign's per-phase wall-clock breakdown
	// aggregated from the distributed-tracing span stream (internal/spans):
	// where the campaign's CPU-seconds actually went — lookups, corpus
	// ingest, fast-forward, timed simulation, persistence. Set by the caller
	// after the campaign when tracing was enabled; nil otherwise.
	Phases []spans.PhaseTotal `json:"phases,omitempty"`
}

// TraceSupply summarises a campaign's corpus-backed trace supply: where the
// containers live and what the shared decoded-chunk LRU did across all jobs.
// CacheDecodes < CacheGets is the amortisation win — chunks decoded once and
// served to multiple jobs.
type TraceSupply struct {
	CorpusDir      string `json:"corpus_dir"`
	CacheGets      uint64 `json:"cache_gets"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheDecodes   uint64 `json:"cache_decodes"`
	CacheEvictions uint64 `json:"cache_evictions"`
	// ResidentBytes is the decoded-record memory still cached at snapshot time.
	ResidentBytes int64 `json:"resident_bytes"`
}

// BenchEntry is one job's line in the throughput summary.
type BenchEntry struct {
	// Key is the job's "experiment/config/workload" identity.
	Key string `json:"key"`
	// Instructions, ElapsedMS and InstrPerSec echo the job's accounting.
	Instructions uint64  `json:"instructions"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	InstrPerSec  float64 `json:"instr_per_sec"`
	// IPC is the job's simulated IPC (zero for failed jobs).
	IPC float64 `json:"ipc"`
	// Failed marks jobs that did not complete.
	Failed bool `json:"failed,omitempty"`
}

// NewBench summarises a campaign's records into the throughput artifact.
func NewBench(c Campaign) Bench {
	b := Bench{
		Schema:     BenchSchemaVersion,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Jobs:       len(c.Records),
	}
	for _, r := range c.Records {
		key := recordKey(r)
		e := BenchEntry{
			Key:          key,
			Instructions: r.SimInstructions,
			ElapsedMS:    r.ElapsedMS,
			InstrPerSec:  r.InstrPerSec,
			Failed:       r.Error != "",
		}
		if r.Stats != nil {
			e.IPC = r.Stats.IPC
		}
		if e.Failed {
			b.Failed++
		}
		if r.Reused != "" {
			b.ReusedJobs++
		}
		if r.Sampling != nil {
			b.SampledJobs++
		}
		b.TotalInstructions += r.SimInstructions
		b.TotalElapsedMS += r.ElapsedMS
		b.PeakHeapBytes = max(b.PeakHeapBytes, r.PeakHeapBytes)
		b.Entries = append(b.Entries, e)
	}
	sort.SliceStable(b.Entries, func(i, j int) bool { return b.Entries[i].Key < b.Entries[j].Key })
	if b.TotalElapsedMS > 0 {
		b.InstrPerSec = float64(b.TotalInstructions) / (b.TotalElapsedMS / 1000)
	}
	return b
}

// recordKey is a record's "experiment/config/workload" identity, eliding
// empty parts — the same shape Job.Name produces.
func recordKey(r Record) string {
	return Job{Experiment: r.Experiment, Config: r.Config, Workload: r.Workload}.Name()
}

// WriteJSON emits the summary as indented JSON.
func (b Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
