package runner

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"morrigan/internal/telemetry"
)

// TestCampaignTelemetryFiles: a campaign with telemetry attached writes one
// parseable JSONL file per job, records the path in Result and Record, and
// leaves simulation statistics bit-identical to a run without telemetry.
func TestCampaignTelemetryFiles(t *testing.T) {
	jobs := testJobs(4)
	dir := t.TempDir()
	plain, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), jobs, Options{
		Workers: 2,
		Telemetry: &TelemetryOptions{
			Dir:    dir,
			Config: telemetry.Config{Interval: 5_000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for i, res := range results {
		if res.TelemetryPath == "" {
			t.Fatalf("job %d: no telemetry path", i)
		}
		f, err := os.Open(res.TelemetryPath)
		if err != nil {
			t.Fatal(err)
		}
		lines, perr := telemetry.ParseJSONL(f)
		f.Close()
		if perr != nil {
			t.Fatalf("job %d: %v", i, perr)
		}
		samples := 0
		for _, l := range lines {
			if l["kind"] == telemetry.KindSample {
				samples++
			}
		}
		if samples < 4 { // 20k measured instructions at 5k interval
			t.Fatalf("job %d: %d samples", i, samples)
		}
		if res.Stats != plain[i].Stats {
			t.Fatalf("job %d: stats diverge under telemetry", i)
		}
		if rec := NewRecord(res); rec.Telemetry != res.TelemetryPath {
			t.Fatalf("job %d: record telemetry %q", i, rec.Telemetry)
		}
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(jobs) {
		t.Fatalf("%d telemetry files for %d jobs", len(ents), len(jobs))
	}
}

// TestTelemetryPathNaming: file names are job-ordered, sanitized, and
// collision-free even for identically named jobs.
func TestTelemetryPathNaming(t *testing.T) {
	topt := &TelemetryOptions{Dir: "out"}
	j := Job{Experiment: "fig15", Config: "Morrigan 2x", Workload: "qmm/srv:07"}
	got := topt.telemetryPath(3, j)
	want := filepath.Join("out", "003-fig15_Morrigan_2x_qmm_srv_07.jsonl")
	if got != want {
		t.Fatalf("path = %q, want %q", got, want)
	}
	if a, b := topt.telemetryPath(0, j), topt.telemetryPath(1, j); a == b {
		t.Fatal("same-name jobs collide")
	}
}
