package runner

import (
	"context"
	"reflect"
	"testing"

	"morrigan/internal/sim"
)

// TestCacheDedupWithinCampaign: duplicate jobs in one campaign simulate once;
// the duplicates carry the first run's stats, marked ReusedCache.
func TestCacheDedupWithinCampaign(t *testing.T) {
	base := testJobs(2)
	// Three copies of job 0 (differing only in display fields) plus job 1.
	dup := base[0]
	dup.Config = "same-machine-different-label"
	jobs := []Job{base[0], dup, base[0], base[1]}

	cache := NewResultCache()
	results, err := Run(context.Background(), jobs, Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Hits(); got != 2 {
		t.Errorf("Hits() = %d, want 2", got)
	}
	reused := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Reused == ReusedCache {
			reused++
		}
		if !reflect.DeepEqual(r.Stats, results[0].Stats) && i < 3 {
			t.Errorf("job %d: duplicate stats differ from the original", i)
		}
	}
	if reused != 2 {
		t.Errorf("%d results marked %q, want 2", reused, ReusedCache)
	}
	if results[3].Reused != "" {
		t.Errorf("distinct job 3 marked reused %q", results[3].Reused)
	}
}

// TestCacheDedupAcrossCampaigns: one cache shared by two Run calls serves the
// second campaign's duplicates without simulating — the cross-experiment
// sweep scenario where many figures share the baseline column.
func TestCacheDedupAcrossCampaigns(t *testing.T) {
	jobs := testJobs(2)
	cache := NewResultCache()
	first, err := Run(context.Background(), jobs, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 {
		t.Fatalf("first campaign hit the cache %d times", cache.Hits())
	}
	second, err := Run(context.Background(), jobs, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != len(jobs) {
		t.Errorf("Hits() = %d, want %d", cache.Hits(), len(jobs))
	}
	for i := range jobs {
		if second[i].Reused != ReusedCache {
			t.Errorf("job %d: Reused = %q, want %q", i, second[i].Reused, ReusedCache)
		}
		if !reflect.DeepEqual(first[i].Stats, second[i].Stats) {
			t.Errorf("job %d: cached stats differ from the original run", i)
		}
	}
}

// TestCacheAbortReelects: a failed leader must not poison its key — followers
// run live, and a later job with the same key becomes a fresh leader and
// caches successfully.
func TestCacheAbortReelects(t *testing.T) {
	cache := NewResultCache()

	broken := testJobs(1)
	broken[0].Machine.STLBEntries = 7 // invalid geometry: leader fails
	if _, err := Run(context.Background(), broken, Options{Workers: 1, Cache: cache}); err == nil {
		t.Fatal("broken job did not fail")
	}
	if cache.Hits() != 0 {
		t.Fatalf("failed leader produced %d hits", cache.Hits())
	}

	// Same key, now valid? No — the broken machine IS the key. Run the valid
	// job twice instead: first run re-elects nothing (different key), but a
	// second identical pair proves the aborted entry did not linger: the
	// valid key caches normally and the broken key stays vacant.
	good := testJobs(1)
	jobs := []Job{good[0], good[0]}
	results, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Reused != ReusedCache {
		t.Errorf("second good job Reused = %q, want %q", results[1].Reused, ReusedCache)
	}

	// The broken key was vacated: acquiring it again elects a new leader
	// rather than returning a follower stuck on a dead entry.
	key, ok := broken[0].Key()
	if !ok {
		t.Fatal("broken job should still be keyed (it fails at Build, not at Key)")
	}
	if _, leader := cache.acquire(key); !leader {
		t.Error("aborted key did not re-elect a leader")
	}
}

// TestCacheSingleFlight: concurrent duplicates of one key simulate exactly
// once — followers block on the leader instead of racing it.
func TestCacheSingleFlight(t *testing.T) {
	job := testJobs(1)[0]
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = job
	}
	cache := NewResultCache()
	results, err := Run(context.Background(), jobs, Options{Workers: 6, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	simulated := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Reused == "" {
			simulated++
		}
		if !reflect.DeepEqual(r.Stats, results[0].Stats) {
			t.Errorf("job %d: stats differ across duplicates", i)
		}
	}
	if simulated != 1 {
		t.Errorf("%d jobs simulated, want exactly 1", simulated)
	}
	if cache.Hits() != len(jobs)-1 {
		t.Errorf("Hits() = %d, want %d", cache.Hits(), len(jobs)-1)
	}
}

// TestCachePublishFromJournal: a journal hit is published into the cache, so
// later duplicates are served in-process (marked ReusedCache) without
// touching the journal map again.
func TestCachePublishFromJournal(t *testing.T) {
	cache := NewResultCache()
	job := testJobs(1)[0]
	key, _ := job.Key()
	want := Stored{Stats: sim.Stats{Instructions: 42}}
	cache.publish(key, want)
	cache.publish(key, Stored{Stats: sim.Stats{Instructions: 999}}) // present: left alone

	e, leader := cache.acquire(key)
	if leader {
		t.Fatal("published key elected a leader")
	}
	<-e.done
	if !e.ok || e.stored.Stats.Instructions != 42 {
		t.Errorf("published entry = ok=%v stats=%+v, want the first publish", e.ok, e.stored.Stats)
	}
}

// TestCacheUnkeyedBypass: jobs without a data identity never touch the cache.
func TestCacheUnkeyedBypass(t *testing.T) {
	job := testJobs(1)[0]
	job.Instrument = func(*sim.Config) {}
	jobs := []Job{job, job}
	cache := NewResultCache()
	results, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 0 {
		t.Errorf("unkeyed jobs produced %d cache hits", cache.Hits())
	}
	for i, r := range results {
		if r.Reused != "" {
			t.Errorf("unkeyed job %d marked reused %q", i, r.Reused)
		}
	}
}
