package runner

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"morrigan/internal/sampling"
	"morrigan/internal/spans"
)

// TestTracingDoesNotChangeStats is the tracing purity check: attaching a span
// recorder must leave every job's statistics bit-identical. Tracing is an
// inert observer, exactly like Options.Observer.
func TestTracingDoesNotChangeStats(t *testing.T) {
	jobs := testJobs(4)
	plain, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := spans.NewRecorder("")
	traced, err := Run(context.Background(), jobs, Options{Workers: 2, Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(plain[i].Stats, traced[i].Stats) {
			t.Errorf("job %d: stats differ with tracing attached", i)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestTraceSpansCoverLifecycle runs a traced campaign and checks every job
// contributes an execute span (keyed by its canonical JobKey) plus the
// phase spans underneath it, all with sane clocks.
func TestTraceSpansCoverLifecycle(t *testing.T) {
	jobs := testJobs(3)
	rec := spans.NewRecorder("local")
	if _, err := Run(context.Background(), jobs, Options{Workers: 2, Spans: rec}); err != nil {
		t.Fatal(err)
	}

	byTrace := map[string]map[string]spans.Span{}
	for _, sp := range rec.Spans() {
		if sp.StartNS < 0 || sp.DurNS < 0 {
			t.Errorf("span %s/%s has negative clock: start=%d dur=%d", sp.TraceID, sp.Name, sp.StartNS, sp.DurNS)
		}
		if sp.Worker != "local" {
			t.Errorf("span %s/%s worker = %q, want recorder's", sp.TraceID, sp.Name, sp.Worker)
		}
		m := byTrace[sp.TraceID]
		if m == nil {
			m = map[string]spans.Span{}
			byTrace[sp.TraceID] = m
		}
		m[sp.Name] = sp
	}

	for i, j := range jobs {
		key, keyed := j.Key()
		if !keyed {
			t.Fatalf("job %d unexpectedly unkeyed", i)
		}
		phases, ok := byTrace[key]
		if !ok {
			t.Errorf("job %d: no spans under trace id %s", i, key)
			continue
		}
		for _, name := range []string{"execute", "build", "threads", "simulate"} {
			if _, ok := phases[name]; !ok {
				t.Errorf("job %d: missing %q span (have %v)", i, name, spanNames(phases))
			}
		}
		exec := phases["execute"]
		if exec.Attrs["ok"] != "true" {
			t.Errorf("job %d: execute span ok attr = %q", i, exec.Attrs["ok"])
		}
		for _, name := range []string{"build", "simulate"} {
			sp := phases[name]
			if sp.StartNS < exec.StartNS || sp.End() > exec.End() {
				t.Errorf("job %d: %s span [%d,%d] escapes execute [%d,%d]",
					i, name, sp.StartNS, sp.End(), exec.StartNS, exec.End())
			}
		}
	}
}

// TestTraceSampledJob checks sampled executions carry the sample.* phase spans
// and the execute span reports the sampled slice count.
func TestTraceSampledJob(t *testing.T) {
	jobs := testJobs(1)
	jobs[0].Measure = 200_000
	jobs[0].Sampling = &sampling.Policy{Interval: 50_000, Clusters: 2, SliceWarmup: 10_000, Seed: 1}
	rec := spans.NewRecorder("")
	if _, err := Run(context.Background(), jobs, Options{Workers: 1, Spans: rec}); err != nil {
		t.Fatal(err)
	}

	var sawExec, sawMeasure bool
	for _, sp := range rec.Spans() {
		switch {
		case sp.Name == "execute":
			sawExec = true
			if sp.Attrs["sampled_slices"] == "" || sp.Attrs["sampled_slices"] == "0" {
				t.Errorf("execute span sampled_slices = %q, want > 0", sp.Attrs["sampled_slices"])
			}
		case strings.HasPrefix(sp.Name, "sample."):
			if sp.Name == "sample.measure" {
				sawMeasure = true
			}
		}
	}
	if !sawExec {
		t.Error("no execute span in sampled run")
	}
	if !sawMeasure {
		t.Errorf("no sample.measure span in sampled run (have %v)", allNames(rec))
	}
}

// TestBenchPhases checks the per-phase breakdown survives into the bench
// artifact's JSON.
func TestBenchPhases(t *testing.T) {
	c := Campaign{Schema: SchemaVersion, Records: []Record{{Workload: "a", ElapsedMS: 1}}}
	b := NewBench(c)
	b.Phases = []spans.PhaseTotal{{Phase: "simulate", Count: 2, TotalMS: 12.5}}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"phases"`) || !strings.Contains(string(data), `"simulate"`) {
		t.Errorf("bench JSON missing phases breakdown: %s", data)
	}
}

func spanNames(m map[string]spans.Span) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	return names
}

func allNames(rec *spans.Recorder) []string {
	var names []string
	for _, sp := range rec.Spans() {
		names = append(names, sp.Name)
	}
	return names
}
