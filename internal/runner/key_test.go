package runner

import (
	"testing"

	"morrigan/internal/machine"
	"morrigan/internal/sim"
	"morrigan/internal/workloads"
)

// keyedJob returns a minimal data-identified job.
func keyedJob() Job {
	qmm := workloads.QMM()
	return Job{
		Experiment: "exp",
		Config:     "cfg",
		Workload:   qmm[0].Name,
		Machine:    machine.Default(),
		Workloads:  []workloads.Spec{qmm[0]},
		Warmup:     1_000,
		Measure:    5_000,
	}
}

// TestJobKeyIdentity: the key depends on machine, workloads and scale — and
// on nothing else. Display fields must not influence it.
func TestJobKeyIdentity(t *testing.T) {
	base := keyedJob()
	k0, ok := base.Key()
	if !ok || k0 == "" {
		t.Fatalf("Key() = %q, %v; want a keyed job", k0, ok)
	}

	renamed := base
	renamed.Experiment, renamed.Config, renamed.Workload = "other", "other", "other"
	if k, _ := renamed.Key(); k != k0 {
		t.Error("display fields changed the key")
	}

	qmm := workloads.QMM()
	for name, mutate := range map[string]func(*Job){
		"machine":        func(j *Job) { j.Machine.STLBEntries *= 2 },
		"workload":       func(j *Job) { j.Workloads = []workloads.Spec{qmm[1]} },
		"workload-count": func(j *Job) { j.Workloads = append(j.Workloads, qmm[1]) },
		"warmup":         func(j *Job) { j.Warmup++ },
		"measure":        func(j *Job) { j.Measure++ },
	} {
		j := keyedJob()
		mutate(&j)
		if k, ok := j.Key(); !ok || k == k0 {
			t.Errorf("mutating %s did not change the key (ok=%v)", name, ok)
		}
	}

	// Thread order matters: an SMT pair (a,b) is not the pair (b,a).
	ab, ba := keyedJob(), keyedJob()
	ab.Workloads = []workloads.Spec{qmm[0], qmm[1]}
	ba.Workloads = []workloads.Spec{qmm[1], qmm[0]}
	ka, _ := ab.Key()
	kb, _ := ba.Key()
	if ka == kb {
		t.Error("workload order did not change the key")
	}
}

// TestJobKeyEscapeHatches: jobs with run-observing or stream-overriding
// closures have no data identity and must never be journaled or cached.
func TestJobKeyEscapeHatches(t *testing.T) {
	instrumented := keyedJob()
	instrumented.Instrument = func(*sim.Config) {}
	if _, ok := instrumented.Key(); ok {
		t.Error("instrumented job should not be keyed")
	}

	threaded := keyedJob()
	threaded.NewThreads = func() []sim.ThreadSpec { return nil }
	if _, ok := threaded.Key(); ok {
		t.Error("NewThreads job should not be keyed")
	}

	empty := keyedJob()
	empty.Workloads = nil
	if _, ok := empty.Key(); ok {
		t.Error("job without workloads should not be keyed")
	}
}
