package runner

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"morrigan/internal/machine"
	"morrigan/internal/sampling"
	"morrigan/internal/workloads"
)

// sampledTestJob builds one small single-workload job in sampled mode.
func sampledTestJob() Job {
	w := workloads.QMM()[0]
	return Job{
		Experiment: "test",
		Config:     "sampled",
		Workload:   w.Name,
		Machine:    machine.Default(),
		Workloads:  []workloads.Spec{w},
		Warmup:     5_000,
		Measure:    20_000,
		Sampling:   &sampling.Policy{Interval: 2_000, Clusters: 4, SliceWarmup: 500, Seed: 1},
	}
}

func TestSampledKeyDivergesFromFull(t *testing.T) {
	j := sampledTestJob()
	sampled, ok := j.Key()
	if !ok {
		t.Fatal("sampled job unkeyed")
	}
	full := j
	full.Sampling = nil
	fullKey, ok := full.Key()
	if !ok {
		t.Fatal("full job unkeyed")
	}
	if sampled == fullKey {
		t.Fatal("sampled and full jobs share a key — a full-run result could satisfy a sampled job")
	}

	// Every policy field is identity: changing it must change the key.
	for name, mutate := range map[string]func(*sampling.Policy){
		"interval":    func(p *sampling.Policy) { p.Interval = 4_000 },
		"clusters":    func(p *sampling.Policy) { p.Clusters = 2 },
		"slicewarmup": func(p *sampling.Policy) { p.SliceWarmup = 1_000 },
		"seed":        func(p *sampling.Policy) { p.Seed = 2 },
	} {
		mutated := sampledTestJob()
		mutate(mutated.Sampling)
		k, _ := mutated.Key()
		if k == sampled {
			t.Errorf("changing policy %s did not change the job key", name)
		}
	}

	if k2, _ := sampledTestJob().Key(); k2 != sampled {
		t.Error("sampled key not deterministic")
	}
	if DeriveSampledJobKey(j.Machine.Hash(), []string{j.Workloads[0].Hash()}, j.Warmup, j.Measure, j.Sampling) != sampled {
		t.Error("DeriveSampledJobKey disagrees with Job.Key")
	}
	if DeriveSampledJobKey(j.Machine.Hash(), []string{j.Workloads[0].Hash()}, j.Warmup, j.Measure, nil) != fullKey {
		t.Error("DeriveSampledJobKey(nil policy) disagrees with the full-run key")
	}
}

// TestSampledRunEndToEnd: a sampled job through Run() produces an outcome
// whose bookkeeping is internally consistent, and the extrapolated Stats
// cover the full measurement window.
func TestSampledRunEndToEnd(t *testing.T) {
	j := sampledTestJob()
	results, err := Run(context.Background(), []Job{j}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	o := res.Sampling
	if o == nil {
		t.Fatal("sampled result carries no outcome")
	}
	if o.Policy != *j.Sampling {
		t.Errorf("outcome policy %+v, want %+v", o.Policy, *j.Sampling)
	}
	if want := int(j.Measure / j.Sampling.Interval); o.Intervals != want {
		t.Errorf("intervals = %d, want %d", o.Intervals, want)
	}
	if o.Slices <= 0 || o.Slices > j.Sampling.Clusters {
		t.Errorf("slices = %d, want 1..%d", o.Slices, j.Sampling.Clusters)
	}
	maxTimed := uint64(o.Slices) * (j.Sampling.Interval + j.Sampling.SliceWarmup)
	if o.TimedInstructions == 0 || o.TimedInstructions > maxTimed {
		t.Errorf("timed = %d, want 1..%d", o.TimedInstructions, maxTimed)
	}
	if res.Stats.Instructions != j.Measure {
		t.Errorf("extrapolated Instructions = %d, want the %d-instruction window", res.Stats.Instructions, j.Measure)
	}
	if res.Stats.IPC <= 0 {
		t.Errorf("extrapolated IPC = %g", res.Stats.IPC)
	}
	// SimInstructions must reflect only timed work, so sampled throughput
	// figures are not inflated by fast-forwarding.
	if res.SimInstructions != o.TimedInstructions {
		t.Errorf("SimInstructions = %d, want timed %d", res.SimInstructions, o.TimedInstructions)
	}
}

func TestSampledRunDeterministic(t *testing.T) {
	jobs := []Job{sampledTestJob()}
	a, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a[0].Stats, b[0].Stats) {
		t.Error("sampled stats differ across identical runs")
	}
	if !reflect.DeepEqual(a[0].Sampling, b[0].Sampling) {
		t.Error("sampled outcomes differ across identical runs")
	}
}

// TestSampledJournalRoundTrip: a journaled sampled result resumes with its
// outcome intact, keyed by the sampled (not the full-run) identity.
func TestSampledJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := []Job{sampledTestJob()}
	first := runJournaled(t, path, jobs, false, 1)
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}

	second := runJournaled(t, path, jobs, true, 1)
	if second[0].Reused != ReusedJournal {
		t.Fatalf("Reused = %q, want %q", second[0].Reused, ReusedJournal)
	}
	if !reflect.DeepEqual(first[0].Stats, second[0].Stats) {
		t.Error("resumed sampled stats differ")
	}
	if second[0].Sampling == nil || !reflect.DeepEqual(first[0].Sampling, second[0].Sampling) {
		t.Error("sampled outcome lost or changed across the journal round trip")
	}

	// The journal entry must NOT satisfy the same job run unsampled.
	full := jobs[0]
	full.Sampling = nil
	fullRes := runJournaled(t, path, []Job{full}, true, 1)
	if fullRes[0].Reused == ReusedJournal {
		t.Error("full-run job served from a sampled journal entry")
	}
	if fullRes[0].Sampling != nil {
		t.Error("full-run result carries a sampling outcome")
	}
}

func TestSampledRejectsIneligibleJobs(t *testing.T) {
	qmm := workloads.QMM()
	j := sampledTestJob()
	j.Workloads = []workloads.Spec{qmm[0], qmm[1]} // SMT pair
	results, err := Run(context.Background(), []Job{j}, Options{Workers: 1})
	if err == nil {
		t.Fatal("multi-workload sampled job accepted")
	}
	if results[0].Err == nil {
		t.Fatal("job error not reported")
	}
}

// TestSampledAccuracy is the acceptance harness: on a paper-suite workload at
// harness scale, the sampled run's 95% confidence intervals must contain the
// full run's IPC and instruction-STLB MPKI while timing at least 10x fewer
// instructions.
func TestSampledAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-instruction accuracy harness")
	}
	w, _ := workloads.ByName("qmm-srv-01")
	full := Job{
		Experiment: "accuracy", Config: "full", Workload: w.Name,
		Machine:   machine.Default(),
		Workloads: []workloads.Spec{w},
		Warmup:    100_000,
		Measure:   4_000_000,
	}
	sampled := full
	sampled.Config = "sampled"
	sampled.Sampling = &sampling.Policy{Interval: 40_000, Clusters: 8, SliceWarmup: 10_000, Seed: 1}

	results, err := Run(context.Background(), []Job{full, sampled}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f, s := results[0], results[1]
	o := s.Sampling
	if o == nil {
		t.Fatal("no sampling outcome")
	}

	if d := math.Abs(f.Stats.IPC - s.Stats.IPC); d > o.CI95.IPC {
		t.Errorf("full IPC %.4f outside sampled %.4f ± %.4f", f.Stats.IPC, s.Stats.IPC, o.CI95.IPC)
	}
	if d := math.Abs(f.Stats.ISTLBMPKI - s.Stats.ISTLBMPKI); d > o.CI95.ISTLBMPKI {
		t.Errorf("full iSTLB MPKI %.4f outside sampled %.4f ± %.4f", f.Stats.ISTLBMPKI, s.Stats.ISTLBMPKI, o.CI95.ISTLBMPKI)
	}
	if o.TimedInstructions*10 > f.SimInstructions {
		t.Errorf("timed %d instructions — less than 10x below the full run's %d", o.TimedInstructions, f.SimInstructions)
	}
	t.Logf("full IPC %.4f vs sampled %.4f ± %.4f; full iSTLB %.4f vs %.4f ± %.4f; timed %d of %d (%.1fx)",
		f.Stats.IPC, s.Stats.IPC, o.CI95.IPC,
		f.Stats.ISTLBMPKI, s.Stats.ISTLBMPKI, o.CI95.ISTLBMPKI,
		o.TimedInstructions, f.SimInstructions, float64(f.SimInstructions)/float64(o.TimedInstructions))
}

// TestProgressTrackerETAWarmStore is the warm-store ETA regression test: jobs
// served from the journal or result store finish instantly and must not enter
// the throughput estimate, or a mostly-warm campaign's ETA collapses toward
// zero while the remaining cold jobs still run in full.
func TestProgressTrackerETAWarmStore(t *testing.T) {
	var events []Event
	p := newProgressTracker(4, func(e Event) { events = append(events, e) })
	p.started = time.Now().Add(-8 * time.Second)

	// Two warm hits (free) and one executed job in the first 8 seconds.
	p.done(Result{Job: Job{Workload: "a"}, Reused: ReusedStore})
	p.done(Result{Job: Job{Workload: "b"}, Reused: ReusedJournal})
	p.done(Result{Job: Job{Workload: "c"}})

	// One job remains; the only executed job took ~8s, so the honest ETA is
	// ~8s. Counting the two free jobs would report ~2.7s.
	e := events[len(events)-1]
	if e.ETA < 7*time.Second || e.ETA > 9*time.Second {
		t.Fatalf("warm-store ETA = %v, want ~8s (reused jobs leaked into the throughput estimate)", e.ETA)
	}

	// All-reused prefix: no executed job yet means no estimate, not a zero
	// division or a nonsense value.
	var events2 []Event
	p2 := newProgressTracker(3, func(e Event) { events2 = append(events2, e) })
	p2.started = time.Now().Add(-4 * time.Second)
	p2.done(Result{Job: Job{Workload: "a"}, Reused: ReusedCache})
	p2.done(Result{Job: Job{Workload: "b"}, Reused: ReusedStore})
	for _, e := range events2 {
		if e.ETA != 0 {
			t.Fatalf("ETA = %v with no executed jobs, want 0 (unknown)", e.ETA)
		}
	}
}
