package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sync"

	"morrigan/internal/sampling"
	"morrigan/internal/sim"
)

// SchemaVersion identifies the campaign result schema. It is bumped whenever
// the JSON/CSV shape changes incompatibly, so trajectory-tracking consumers
// (e.g. BENCH_*.json) can detect mismatches instead of misreading fields.
//
// v2 added sampled-execution results: Record.Sampling in JSON and the
// trailing ci95_* columns in CSV (empty for full runs). Consumers that read
// schema-1 files still can — v2 is a strict superset.
const SchemaVersion = 2

// Record is one job's machine-readable result.
type Record struct {
	// Experiment, Config and Workload echo the job identity.
	Experiment string `json:"experiment,omitempty"`
	Config     string `json:"config,omitempty"`
	Workload   string `json:"workload"`
	// Warmup and Measure are the job's instruction counts.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// ElapsedMS is the job's wall-clock time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// SimInstructions is the total instructions executed, warmup included.
	SimInstructions uint64 `json:"sim_instructions"`
	// InstrPerSec is the job's simulation throughput (simulated instructions
	// per wall-clock second) — the machine-comparable perf figure.
	InstrPerSec float64 `json:"instr_per_sec"`
	// PeakHeapBytes is the process heap high-water mark observed around the
	// job (shared across concurrent jobs; see runner.Result).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Error is the job's failure, if any; Stats is nil in that case.
	Error string `json:"error,omitempty"`
	// Telemetry is the job's JSONL telemetry file, when collection was on.
	// (JSON only — the CSV column set is unchanged so existing consumers
	// and diffs are unaffected.)
	Telemetry string `json:"telemetry,omitempty"`
	// Reused marks results served without simulating: "cache" (in-process
	// result cache), "journal" (checkpoint resume) or "store" (on-disk
	// cross-run result store). Stats are the original run's; the throughput
	// fields are zero, since this job cost nothing. (JSON only — the CSV
	// column set is unchanged.)
	Reused string `json:"reused,omitempty"`
	// Sampling, when present, marks a sampled result: Stats are a weighted
	// extrapolation from representative intervals, and the outcome carries
	// the policy, slice accounting and per-metric 95% confidence intervals.
	Sampling *sampling.Outcome `json:"sampling,omitempty"`
	// Stats is the full measurement snapshot.
	Stats *sim.Stats `json:"stats,omitempty"`
}

// Campaign is the schema-versioned collection of job results.
type Campaign struct {
	// Schema is SchemaVersion at emission time.
	Schema int `json:"schema"`
	// Records lists job results in deterministic job order.
	Records []Record `json:"records"`
}

// NewRecord converts one Result into its machine-readable form.
func NewRecord(res Result) Record {
	r := Record{
		Experiment:      res.Job.Experiment,
		Config:          res.Job.Config,
		Workload:        res.Job.Workload,
		Warmup:          res.Job.Warmup,
		Measure:         res.Job.Measure,
		ElapsedMS:       float64(res.Elapsed.Microseconds()) / 1000,
		SimInstructions: res.SimInstructions,
		InstrPerSec:     res.InstrPerSec,
		PeakHeapBytes:   res.PeakHeapBytes,
		Telemetry:       res.TelemetryPath,
		Reused:          res.Reused,
		Sampling:        res.Sampling,
	}
	if res.Err != nil {
		r.Error = res.Err.Error()
	} else {
		st := res.Stats
		r.Stats = &st
	}
	return r
}

// WriteJSON emits the campaign as indented JSON.
func (c *Campaign) WriteJSON(w io.Writer) error {
	c.Schema = SchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ciColumns are the trailing CSV columns carrying a sampled record's 95%
// confidence half-widths, in sampling.CI field order. Full-run records leave
// them empty.
var ciColumns = []string{"ci95_ipc", "ci95_l1i_mpki", "ci95_itlb_mpki", "ci95_istlb_mpki", "ci95_dstlb_mpki"}

// ciValues renders one sampled record's confidence columns.
func ciValues(ci sampling.CI) []string {
	return []string{
		fmt.Sprintf("%g", ci.IPC),
		fmt.Sprintf("%g", ci.L1IMPKI),
		fmt.Sprintf("%g", ci.ITLBMPKI),
		fmt.Sprintf("%g", ci.ISTLBMPKI),
		fmt.Sprintf("%g", ci.DSTLBMPKI),
	}
}

// WriteCSV emits the campaign as CSV: one header row (job identity columns
// followed by every sim.Stats field, flattening fixed-size arrays, then the
// ci95_* confidence columns), then one row per record. Failed jobs leave the
// stat columns empty; full (non-sampled) runs leave the ci95_* columns empty.
func (c *Campaign) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{
		"experiment", "config", "workload", "warmup", "measure", "elapsed_ms",
		"sim_instructions", "instr_per_sec", "peak_heap_bytes", "error",
	}, statColumns()...)
	header = append(header, ciColumns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range c.Records {
		row := []string{
			r.Experiment, r.Config, r.Workload,
			fmt.Sprintf("%d", r.Warmup), fmt.Sprintf("%d", r.Measure),
			fmt.Sprintf("%.3f", r.ElapsedMS),
			fmt.Sprintf("%d", r.SimInstructions),
			fmt.Sprintf("%.0f", r.InstrPerSec),
			fmt.Sprintf("%d", r.PeakHeapBytes),
			r.Error,
		}
		if r.Stats != nil {
			row = append(row, statValues(*r.Stats)...)
		}
		if r.Sampling != nil {
			row = append(row, make([]string, len(header)-len(ciColumns)-len(row))...)
			row = append(row, ciValues(r.Sampling.CI95)...)
		} else {
			row = append(row, make([]string, len(header)-len(row))...)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// statColumns derives the CSV stat column names from sim.Stats by reflection,
// in struct order, flattening array fields as name_0, name_1, ...
func statColumns() []string {
	var cols []string
	t := reflect.TypeOf(sim.Stats{})
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() == reflect.Array {
			for j := 0; j < f.Type.Len(); j++ {
				cols = append(cols, fmt.Sprintf("%s_%d", f.Name, j))
			}
			continue
		}
		cols = append(cols, f.Name)
	}
	return cols
}

// statValues renders one snapshot's fields in statColumns order.
func statValues(st sim.Stats) []string {
	var vals []string
	v := reflect.ValueOf(st)
	var render func(fv reflect.Value)
	render = func(fv reflect.Value) {
		switch fv.Kind() {
		case reflect.Array:
			for j := 0; j < fv.Len(); j++ {
				render(fv.Index(j))
			}
		case reflect.Float64, reflect.Float32:
			vals = append(vals, fmt.Sprintf("%g", fv.Float()))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			vals = append(vals, fmt.Sprintf("%d", fv.Uint()))
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			vals = append(vals, fmt.Sprintf("%d", fv.Int()))
		default:
			vals = append(vals, fmt.Sprint(fv.Interface()))
		}
	}
	for i := 0; i < v.NumField(); i++ {
		render(v.Field(i))
	}
	return vals
}

// Recorder is a thread-safe campaign collector. Batches of results are
// appended in the order the caller presents them, so recording each
// campaign's ordered results keeps the file deterministic.
type Recorder struct {
	mu      sync.Mutex
	records []Record
}

// Add appends the results, preserving their order.
func (r *Recorder) Add(results []Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, res := range results {
		r.records = append(r.records, NewRecord(res))
	}
}

// Len reports the number of recorded results.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.records)
}

// Campaign snapshots the recorded results.
func (r *Recorder) Campaign() Campaign {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Campaign{Schema: SchemaVersion, Records: append([]Record(nil), r.records...)}
}
