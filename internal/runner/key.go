package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// jobKeyVersion is folded into every job key so a deliberate change to the
// key derivation (or to either underlying spec hash version) invalidates
// persisted checkpoint journals instead of silently matching stale results.
const jobKeyVersion = "morrigan/runner.JobKey/v1"

// Key returns the job's canonical identity: the SHA-256 (as lowercase hex)
// of the machine spec hash, the workload spec hashes in thread order, and
// the warmup/measure scale — H(machine ‖ workloads ‖ scale). Two jobs with
// equal keys simulate the identical (config, workload, scale) triple and
// produce bit-identical Stats, which is what the checkpoint journal and the
// cross-experiment result cache rely on.
//
// The second return is false for jobs that have no data-only identity:
// jobs with an Instrument hook (the capture closure observes the run, so a
// cached result would silently skip it) or a NewThreads factory (the
// instruction streams are not described by workload specs), and jobs with
// no Workloads at all. Such jobs always execute.
func (j Job) Key() (string, bool) {
	if j.Instrument != nil || j.NewThreads != nil || len(j.Workloads) == 0 {
		return "", false
	}
	hashes := make([]string, len(j.Workloads))
	for i, w := range j.Workloads {
		hashes[i] = w.Hash()
	}
	return jobKey(j.Machine.Hash(), hashes, j.Warmup, j.Measure), true
}

// jobKey derives the canonical key from already-computed component hashes.
// Journal loading re-derives keys through this same function to verify that
// a journaled record still matches what its components hash to today.
func jobKey(machineHash string, workloadHashes []string, warmup, measure uint64) string {
	h := sha256.New()
	h.Write([]byte(jobKeyVersion))
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	ws(machineHash)
	wu(uint64(len(workloadHashes)))
	for _, wh := range workloadHashes {
		ws(wh)
	}
	wu(warmup)
	wu(measure)
	return hex.EncodeToString(h.Sum(nil))
}
