package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"morrigan/internal/sampling"
)

// jobKeyVersion is folded into every job key so a deliberate change to the
// key derivation (or to either underlying spec hash version) invalidates
// persisted checkpoint journals instead of silently matching stale results.
const jobKeyVersion = "morrigan/runner.JobKey/v1"

// samplingKeyTag separates the sampled-key domain. It is appended — together
// with the policy fields — only for sampled jobs, so every full-run key is
// byte-identical to what pre-sampling releases derived: persisted journals,
// result stores and fabric campaigns keep matching.
const samplingKeyTag = "sampled"

// Key returns the job's canonical identity: the SHA-256 (as lowercase hex)
// of the machine spec hash, the workload spec hashes in thread order, the
// warmup/measure scale, and — for sampled jobs only — the sampling policy:
// H(machine ‖ workloads ‖ scale [‖ policy]). Two jobs with equal keys
// simulate the identical (config, workload, scale, policy) tuple and produce
// bit-identical Stats, which is what the checkpoint journal and the
// cross-experiment result cache rely on. A sampled job measures different
// instruction slices than its full-run twin, so the two hash differently.
//
// The second return is false for jobs that have no data-only identity:
// jobs with an Instrument hook (the capture closure observes the run, so a
// cached result would silently skip it) or a NewThreads factory (the
// instruction streams are not described by workload specs), and jobs with
// no Workloads at all. Such jobs always execute.
func (j Job) Key() (string, bool) {
	if j.Instrument != nil || j.NewThreads != nil || len(j.Workloads) == 0 {
		return "", false
	}
	hashes := make([]string, len(j.Workloads))
	for i, w := range j.Workloads {
		hashes[i] = w.Hash()
	}
	return jobKey(j.Machine.Hash(), hashes, j.Warmup, j.Measure, j.Sampling), true
}

// DeriveJobKey derives the canonical full-run job key from already-computed
// component hashes — the same derivation Job.Key performs for non-sampled
// jobs. Persistence layers that store keys next to their components (the
// checkpoint journal, the on-disk result store) re-derive keys through this
// function on load to verify that a stored record still matches what its
// components hash to today; a mismatch (stale hash version, hand-edited
// record) means the record must be discarded so the job re-runs rather than
// reusing a wrong result.
func DeriveJobKey(machineHash string, workloadHashes []string, warmup, measure uint64) string {
	return jobKey(machineHash, workloadHashes, warmup, measure, nil)
}

// DeriveSampledJobKey is DeriveJobKey for sampled records: pol nil degrades
// to the full-run derivation, so persistence layers can re-derive either kind
// from one call site.
func DeriveSampledJobKey(machineHash string, workloadHashes []string, warmup, measure uint64, pol *sampling.Policy) string {
	return jobKey(machineHash, workloadHashes, warmup, measure, pol)
}

// Describe renders the job's enumeration line for -dry-run output: display
// name, canonical key (or "unkeyed" with the reason), machine hash, workload
// hashes and scale — everything the checkpoint journal, result store and
// fabric coordinator would identify the job by, without simulating it.
func (j Job) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  ", j.Name())
	if key, ok := j.Key(); ok {
		fmt.Fprintf(&b, "key=%s", key)
	} else {
		reason := "no-workloads"
		switch {
		case j.Instrument != nil:
			reason = "instrumented"
		case j.NewThreads != nil:
			reason = "newthreads"
		}
		fmt.Fprintf(&b, "key=unkeyed(%s)", reason)
	}
	fmt.Fprintf(&b, " machine=%s workloads=", j.Machine.Hash())
	for i, w := range j.Workloads {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(w.Hash())
	}
	if len(j.Workloads) == 0 {
		b.WriteByte('-')
	}
	fmt.Fprintf(&b, " warmup=%d measure=%d", j.Warmup, j.Measure)
	if j.Sampling != nil {
		fmt.Fprintf(&b, " sampled=interval:%d,clusters:%d,slicewarmup:%d,seed:%d",
			j.Sampling.Interval, j.Sampling.Clusters, j.Sampling.SliceWarmup, j.Sampling.Seed)
	}
	return b.String()
}

// jobKey derives the canonical key from already-computed component hashes.
// Journal loading re-derives keys through this same function to verify that
// a journaled record still matches what its components hash to today. The
// sampling policy is folded in only when present — full-run keys are
// unchanged from every prior release.
func jobKey(machineHash string, workloadHashes []string, warmup, measure uint64, pol *sampling.Policy) string {
	h := sha256.New()
	h.Write([]byte(jobKeyVersion))
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	ws(machineHash)
	wu(uint64(len(workloadHashes)))
	for _, wh := range workloadHashes {
		ws(wh)
	}
	wu(warmup)
	wu(measure)
	if pol != nil {
		ws(samplingKeyTag)
		wu(pol.Interval)
		wu(uint64(pol.Clusters))
		wu(pol.SliceWarmup)
		wu(pol.Seed)
	}
	return hex.EncodeToString(h.Sum(nil))
}
