package runner

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"morrigan/internal/core"
	"morrigan/internal/machine"
	"morrigan/internal/sim"
	"morrigan/internal/workloads"
)

// testJobs enumerates n small simulations over distinct workloads and
// configurations, as pure data (machine spec + workload specs) so each job
// carries a canonical identity.
func testJobs(n int) []Job {
	qmm := workloads.QMM()
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		w := qmm[i%len(qmm)]
		m := machine.Default()
		if i%2 == 1 {
			m.Prefetcher = machine.Morrigan(core.DefaultConfig())
		}
		jobs[i] = Job{
			Experiment: "test",
			Config:     fmt.Sprintf("cfg%d", i%2),
			Workload:   w.Name,
			Machine:    m,
			Workloads:  []workloads.Spec{w},
			Warmup:     5_000,
			Measure:    20_000,
		}
	}
	return jobs
}

// TestRunDeterministicAcrossWorkers is the campaign-level determinism and
// concurrency-safety check: the same jobs run serially and over a pool of
// four workers (concurrent simulations, exercised under -race) must produce
// bit-identical statistics in the same order.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	jobs := testJobs(6)
	serial, err := Run(context.Background(), jobs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(jobs) || len(parallel) != len(jobs) {
		t.Fatalf("result counts: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range jobs {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errs: serial %v, parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Stats, parallel[i].Stats) {
			t.Errorf("job %d: stats differ between serial and parallel runs", i)
		}
	}
}

func TestRunPanicIsolation(t *testing.T) {
	jobs := testJobs(3)
	jobs[1].Config = "boom"
	jobs[1].Instrument = func(*sim.Config) { panic("synthetic failure") }
	results, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("campaign err = %v, want the panicking job's error", err)
	}
	if !strings.Contains(results[1].Err.Error(), "synthetic failure") {
		t.Errorf("job 1 err = %v, want captured panic", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "runner_test.go") {
		t.Errorf("job 1 err lacks a stack trace: %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("job %d failed alongside the panic: %v", i, results[i].Err)
		}
		if results[i].Stats.Instructions == 0 {
			t.Errorf("job %d has empty stats", i)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := testJobs(4)
	results, err := Run(ctx, jobs, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign err = %v, want context.Canceled", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled", i, res.Err)
		}
	}
}

func TestRunPerJobTimeout(t *testing.T) {
	jobs := testJobs(1)
	jobs[0].Measure = 50_000_000 // far beyond what 1ns allows
	results, err := Run(context.Background(), jobs, Options{Workers: 1, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("campaign err = %v, want context.DeadlineExceeded", err)
	}
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("job err = %v, want context.DeadlineExceeded", results[0].Err)
	}
}

func TestRunEmptyAndNilContext(t *testing.T) {
	//lint:ignore SA1012 nil ctx is part of Run's documented contract
	results, err := Run(nil, nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty campaign = %v, %v", results, err)
	}
}

func TestJobName(t *testing.T) {
	cases := []struct {
		job  Job
		want string
	}{
		{Job{Experiment: "fig15", Config: "Morrigan", Workload: "qmm-srv-07"}, "fig15/Morrigan/qmm-srv-07"},
		{Job{Experiment: "fig2", Workload: "cassandra"}, "fig2/cassandra"},
		{Job{Experiment: "table1"}, "table1"},
	}
	for _, c := range cases {
		if got := c.job.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestWriterProgress(t *testing.T) {
	if WriterProgress(nil) != nil {
		t.Error("WriterProgress(nil) should disable progress")
	}
	var buf bytes.Buffer
	jobs := testJobs(3)
	if _, err := Run(context.Background(), jobs, Options{Workers: 2, Progress: WriterProgress(&buf)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(jobs) {
		t.Fatalf("got %d progress lines, want %d:\n%s", len(lines), len(jobs), buf.String())
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "[") || !strings.Contains(line, "/3] test/") || !strings.Contains(line, " ok (") {
			t.Errorf("malformed progress line %q", line)
		}
	}
	if !strings.Contains(buf.String(), "[3/3]") {
		t.Errorf("final line should report 3/3:\n%s", buf.String())
	}
}

func TestCampaignJSON(t *testing.T) {
	jobs := testJobs(2)
	jobs[1].Instrument = func(*sim.Config) { panic("broken") }
	results, _ := Run(context.Background(), jobs, Options{Workers: 1})

	var rec Recorder
	rec.Add(results)
	if rec.Len() != 2 {
		t.Fatalf("Len = %d", rec.Len())
	}
	var buf bytes.Buffer
	c := rec.Campaign()
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Campaign
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", decoded.Schema, SchemaVersion)
	}
	if len(decoded.Records) != 2 {
		t.Fatalf("records = %d", len(decoded.Records))
	}
	ok, failed := decoded.Records[0], decoded.Records[1]
	if ok.Error != "" || ok.Stats == nil || ok.Stats.Instructions != jobs[0].Measure {
		t.Errorf("ok record = %+v", ok)
	}
	if failed.Error == "" || failed.Stats != nil {
		t.Errorf("failed record should carry the error and no stats: %+v", failed)
	}
	if ok.Experiment != "test" || ok.Workload != jobs[0].Workload || ok.Measure != jobs[0].Measure {
		t.Errorf("record identity = %+v", ok)
	}
}

func TestCampaignCSV(t *testing.T) {
	jobs := testJobs(2)
	jobs[1].Instrument = func(*sim.Config) { panic("broken") }
	results, _ := Run(context.Background(), jobs, Options{Workers: 1})

	var rec Recorder
	rec.Add(results)
	var buf bytes.Buffer
	c := rec.Campaign()
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d CSV rows, want header + 2", len(rows))
	}
	header := rows[0]
	for _, want := range []string{"experiment", "workload", "elapsed_ms", "Instructions", "Cycles", "PBHits"} {
		found := false
		for _, h := range header {
			if h == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("CSV header missing %q", want)
		}
	}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			t.Errorf("row %d has %d cells, header has %d", i, len(row), len(header))
		}
	}
	if rows[2][6] == "" { // error column of the failed job
		t.Error("failed job's error column is empty")
	}
}
