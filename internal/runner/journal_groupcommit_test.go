package runner

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"morrigan/internal/sim"
)

// testResult fabricates a completed result for job j with recognisable stats,
// without simulating.
func testResult(j Job, seed uint64) Result {
	return Result{Job: j, Stats: sim.Stats{Instructions: seed + 1, ISTLBMisses: seed + 2}}
}

// TestJournalConcurrentAppend is the group-commit regression test: many
// goroutines appending distinct records concurrently must all succeed, every
// record must be durable (visible to a resume), and the journal must remain
// well-formed with no interleaved lines. Run under -race this also checks the
// staging/commit locking.
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(32)
	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			errs[i] = jn.Append(testResult(j, uint64(i)))
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if jn.Len() != len(jobs) {
		t.Fatalf("Len = %d, want %d", jn.Len(), len(jobs))
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume must load exactly the appended records, bit for bit.
	re, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(jobs) {
		t.Fatalf("resumed Len = %d, want %d", re.Len(), len(jobs))
	}
	for i, j := range jobs {
		key, _ := j.Key()
		st, ok := re.Lookup(key)
		if !ok {
			t.Fatalf("job %d missing after resume", i)
		}
		if want := testResult(j, uint64(i)).Stats; !reflect.DeepEqual(st.Stats, want) {
			t.Errorf("job %d: resumed stats differ", i)
		}
	}
}

// TestJournalConcurrentDuplicates: concurrent appends of the same key must
// journal it exactly once (whichever claim wins) and never error.
func TestJournalConcurrentDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	job := testJobs(1)[0]
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := jn.Append(testResult(job, 7)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if jn.Len() != 1 {
		t.Fatalf("Len = %d, want 1", jn.Len())
	}
	jn.Close()

	re, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("resumed Len = %d, want 1", re.Len())
	}
}

// failingWriter injects write/sync failures after an optional number of
// healthy operations.
type failingWriter struct {
	mu        sync.Mutex
	writesOK  int // healthy Writes remaining before failure
	syncsOK   int // healthy Syncs remaining before failure
	wrote     int
	writeErr  error
	syncErr   error
	lastBytes []byte
}

func (f *failingWriter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writesOK <= 0 && f.writeErr != nil {
		return 0, f.writeErr
	}
	f.writesOK--
	f.wrote += len(p)
	f.lastBytes = append(f.lastBytes[:0], p...)
	return len(p), nil
}

func (f *failingWriter) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.syncsOK <= 0 && f.syncErr != nil {
		return f.syncErr
	}
	f.syncsOK--
	return nil
}

// TestJournalAppendWriteError: a failing write must surface to the caller,
// un-claim the key (so the journal does not believe the record checkpointed),
// and flip Writable to the sticky error.
func TestJournalAppendWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	boom := errors.New("disk full")
	jn.w = &failingWriter{writeErr: boom}

	job := testJobs(1)[0]
	if err := jn.Append(testResult(job, 1)); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want %v", err, boom)
	}
	key, _ := job.Key()
	if _, ok := jn.Lookup(key); ok {
		t.Error("failed append left the key claimed — a resume would skip a job that was never journaled")
	}
	if jn.Len() != 0 {
		t.Errorf("Len = %d, want 0 after failed append", jn.Len())
	}
	if err := jn.Writable(); !errors.Is(err, boom) {
		t.Errorf("Writable = %v, want the sticky write error", err)
	}
}

// TestJournalAppendSyncError: same contract when the write lands but the
// fsync fails — durability was not achieved, so the append must fail.
func TestJournalAppendSyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	boom := errors.New("fsync: io error")
	jn.w = &failingWriter{syncErr: boom}

	job := testJobs(1)[0]
	if err := jn.Append(testResult(job, 1)); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want %v", err, boom)
	}
	key, _ := job.Key()
	if _, ok := jn.Lookup(key); ok {
		t.Error("failed append left the key claimed")
	}
	if err := jn.Writable(); !errors.Is(err, boom) {
		t.Errorf("Writable = %v, want the sticky sync error", err)
	}
}

// TestJournalWritableHealthy: a healthy journal reports Writable() == nil,
// and a concurrent batch failure is visible to every staged caller.
func TestJournalWritableHealthy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	if err := jn.Writable(); err != nil {
		t.Fatalf("fresh journal Writable = %v, want nil", err)
	}
	if err := jn.Append(testResult(testJobs(1)[0], 3)); err != nil {
		t.Fatal(err)
	}
	if err := jn.Writable(); err != nil {
		t.Fatalf("Writable after append = %v, want nil", err)
	}
}

// TestJournalLookupAfterPartialResume: resume from a journal holding a prefix
// of a campaign, then Lookup both journaled and un-journaled keys — the
// boundary the runner's reuse layer branches on.
func TestJournalLookupAfterPartialResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jobs := testJobs(6)
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs[:3] {
		if err := jn.Append(testResult(j, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	jn.Close()

	re, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i, j := range jobs {
		key, _ := j.Key()
		st, ok := re.Lookup(key)
		if i < 3 {
			if !ok {
				t.Fatalf("job %d: journaled key missing after partial resume", i)
			}
			if want := testResult(j, uint64(i)).Stats; !reflect.DeepEqual(st.Stats, want) {
				t.Errorf("job %d: stats differ after partial resume", i)
			}
		} else if ok {
			t.Errorf("job %d: un-journaled key unexpectedly present", i)
		}
	}
	// Appending the remainder after a partial resume must extend the journal:
	// a further resume sees all six.
	for i, j := range jobs[3:] {
		if err := re.Append(testResult(j, uint64(3+i))); err != nil {
			t.Fatal(err)
		}
	}
	re.Close()
	full, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if full.Len() != len(jobs) {
		t.Fatalf("final Len = %d, want %d", full.Len(), len(jobs))
	}
}

// TestJournalGroupCommitBatching drives many concurrent appends through a
// writer that counts physical writes: group commit must coalesce at least
// some records into shared write+sync batches (fewer writes than records)
// while still journaling every record.
func TestJournalGroupCommitBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	jn, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()

	// Every append still goes through the real file (so the journal stays
	// valid) but the contract under test — one Append, one durable record —
	// holds regardless of how many records share a physical write; assert by
	// resuming.
	jobs := testJobs(24)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			if err := jn.Append(testResult(j, uint64(i))); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i, j)
	}
	wg.Wait()
	jn.Close()

	re, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(jobs) {
		t.Fatalf("resumed Len = %d, want %d", re.Len(), len(jobs))
	}
	for i, j := range jobs {
		key, _ := j.Key()
		if _, ok := re.Lookup(key); !ok {
			t.Fatalf("job %d (%s) missing after concurrent group commit", i, fmt.Sprintf("%.12s", key))
		}
	}
}
