package runner

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"morrigan/internal/telemetry"
)

// recordingObserver captures the hook sequence under the race detector.
type recordingObserver struct {
	mu       sync.Mutex
	total    int
	started  map[int]string
	probes   map[int]*telemetry.Probe
	finished map[int]Result
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{
		started:  map[int]string{},
		probes:   map[int]*telemetry.Probe{},
		finished: map[int]Result{},
	}
}

func (o *recordingObserver) CampaignStarted(total int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.total = total
}

func (o *recordingObserver) JobStarted(index int, job Job, probe *telemetry.Probe) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started[index] = job.Name()
	o.probes[index] = probe
}

func (o *recordingObserver) JobFinished(index int, res Result) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished[index] = res
}

// TestObserverHooks checks the Observer sees every job exactly once, with a
// live probe even when telemetry collection is off, and that an observer-only
// campaign still fills the throughput accounting.
func TestObserverHooks(t *testing.T) {
	jobs := testJobs(4)
	obs := newRecordingObserver()
	results, err := Run(context.Background(), jobs, Options{Workers: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}

	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.total != len(jobs) {
		t.Errorf("CampaignStarted(%d), want %d", obs.total, len(jobs))
	}
	for i, j := range jobs {
		if obs.started[i] != j.Name() {
			t.Errorf("job %d: started as %q, want %q", i, obs.started[i], j.Name())
		}
		if obs.probes[i] == nil {
			t.Errorf("job %d: JobStarted got a nil probe", i)
		}
		fin, ok := obs.finished[i]
		if !ok {
			t.Errorf("job %d: JobFinished never fired", i)
			continue
		}
		if fin.Err != nil {
			t.Errorf("job %d: finished with error %v", i, fin.Err)
		}
		if want := j.Warmup + j.Measure; fin.SimInstructions != want {
			t.Errorf("job %d: SimInstructions %d, want %d", i, fin.SimInstructions, want)
		}
		if fin.InstrPerSec <= 0 {
			t.Errorf("job %d: InstrPerSec %g, want > 0", i, fin.InstrPerSec)
		}
		if fin.PeakHeapBytes == 0 {
			t.Errorf("job %d: PeakHeapBytes 0", i)
		}
		if res := results[i]; res.SimInstructions != fin.SimInstructions {
			t.Errorf("job %d: result/observer instruction mismatch: %d vs %d",
				i, res.SimInstructions, fin.SimInstructions)
		}
	}
}

// TestObserverDoesNotChangeStats is the runner-level purity check: attaching
// an observer must leave every job's statistics bit-identical.
func TestObserverDoesNotChangeStats(t *testing.T) {
	jobs := testJobs(4)
	plain, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Run(context.Background(), jobs, Options{Workers: 2, Observer: newRecordingObserver()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(plain[i].Stats, observed[i].Stats) {
			t.Errorf("job %d: stats differ with an observer attached", i)
		}
	}
}

// TestRecordCarriesThroughput checks the satellite fields survive into the
// JSON and CSV result schemas.
func TestRecordCarriesThroughput(t *testing.T) {
	res := Result{
		Job:             Job{Experiment: "e", Config: "c", Workload: "w", Warmup: 1, Measure: 2},
		SimInstructions: 12345,
		InstrPerSec:     678.9,
		PeakHeapBytes:   4096,
	}
	rec := NewRecord(res)
	if rec.SimInstructions != 12345 || rec.InstrPerSec != 678.9 || rec.PeakHeapBytes != 4096 {
		t.Errorf("record dropped throughput fields: %+v", rec)
	}

	c := Campaign{Schema: SchemaVersion, Records: []Record{rec}}
	var csvBuf strings.Builder
	if err := c.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines: %d", len(lines))
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	for want, val := range map[string]string{
		"sim_instructions": "12345",
		"instr_per_sec":    "679",
		"peak_heap_bytes":  "4096",
	} {
		col := -1
		for i, h := range header {
			if h == want {
				col = i
				break
			}
		}
		if col < 0 {
			t.Errorf("csv header missing %q: %v", want, header)
			continue
		}
		if row[col] != val {
			t.Errorf("csv %s = %q, want %q", want, row[col], val)
		}
	}
}

// TestNewBench checks campaign aggregation into the BENCH_*.json artifact.
func TestNewBench(t *testing.T) {
	c := Campaign{Schema: SchemaVersion, Records: []Record{
		{Workload: "b", ElapsedMS: 500, SimInstructions: 1_000_000, InstrPerSec: 2_000_000, PeakHeapBytes: 100},
		{Workload: "a", ElapsedMS: 500, SimInstructions: 3_000_000, InstrPerSec: 6_000_000, PeakHeapBytes: 300},
		{Workload: "c", Error: "boom"},
	}}
	b := NewBench(c)
	if b.Schema != BenchSchemaVersion || b.Jobs != 3 || b.Failed != 1 {
		t.Errorf("bench header: %+v", b)
	}
	if b.TotalInstructions != 4_000_000 || b.TotalElapsedMS != 1000 {
		t.Errorf("bench totals: instr %d elapsed %g", b.TotalInstructions, b.TotalElapsedMS)
	}
	if b.InstrPerSec != 4_000_000 {
		t.Errorf("bench throughput: %g, want 4e6", b.InstrPerSec)
	}
	if b.PeakHeapBytes != 300 {
		t.Errorf("bench peak heap: %d", b.PeakHeapBytes)
	}
	if len(b.Entries) != 3 || b.Entries[0].Key != "a" || b.Entries[1].Key != "b" || b.Entries[2].Key != "c" {
		t.Errorf("bench entries out of order: %+v", b.Entries)
	}
	if !b.Entries[2].Failed {
		t.Error("failed job not marked in entries")
	}
}
