package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"morrigan/internal/telemetry"
)

// TelemetryOptions attaches per-job telemetry collection to a campaign: each
// job gets its own probe (interval time-series, event trace, histograms; see
// internal/telemetry) and writes one JSONL file into Dir next to the
// campaign's JSON/CSV results.
type TelemetryOptions struct {
	// Config parameterises every job's probe; the zero value means the
	// telemetry defaults (100k-instruction interval, 4096-event ring).
	Config telemetry.Config
	// Dir receives one "<index>-<job name>.jsonl" file per job. It is
	// created (with parents) if missing.
	Dir string
}

// telemetryPath names job i's output file. The zero-padded campaign index
// keeps names unique and listable in job order even when jobs share a name.
func (t *TelemetryOptions) telemetryPath(i int, j Job) string {
	return filepath.Join(t.Dir, fmt.Sprintf("%03d-%s.jsonl", i, sanitizeName(j.Name())))
}

// sanitizeName maps a job's "experiment/config/workload" display name to a
// filesystem-safe file stem.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '.' || r == '_' || r == '+':
			return r
		default:
			return '_'
		}
	}, name)
}

// writeTelemetry flushes one job's probe to its JSONL file and returns the
// path. Partial collections (failed or cancelled jobs) are written too —
// they are exactly the diagnostics a failed job needs.
func (t *TelemetryOptions) writeTelemetry(i int, j Job, probe *telemetry.Probe) (string, error) {
	path := t.telemetryPath(i, j)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("runner: %s: telemetry: %w", j.Name(), err)
	}
	werr := probe.WriteJSONL(f)
	cerr := f.Close()
	if werr != nil {
		return "", fmt.Errorf("runner: %s: telemetry: %w", j.Name(), werr)
	}
	if cerr != nil {
		return "", fmt.Errorf("runner: %s: telemetry: %w", j.Name(), cerr)
	}
	return path, nil
}
