package runner

import (
	"fmt"
	"io"
	"time"
)

// Event describes one completed job, for live progress reporting.
type Event struct {
	// Done and Total count completed and scheduled jobs.
	Done, Total int
	// Job is the job that just finished.
	Job Job
	// Err is the job's error, if it failed.
	Err error
	// Reused marks jobs served from the result cache or checkpoint journal.
	Reused string
	// Elapsed is the job's own execution time.
	Elapsed time.Duration
	// Campaign is the wall-clock time since the campaign started.
	Campaign time.Duration
	// ETA estimates the remaining campaign time from the mean job time and
	// the observed completion rate; zero until one job has finished.
	ETA time.Duration
}

// ProgressFunc receives an Event after every job completion.
type ProgressFunc func(Event)

// WriterProgress returns a ProgressFunc that writes one line per completed
// job to w, e.g.
//
//	[ 3/45] fig15/Morrigan/qmm-srv-07 ok (1.2s, eta 18s)
//
// A nil w yields a nil ProgressFunc (progress disabled).
func WriterProgress(w io.Writer) ProgressFunc {
	if w == nil {
		return nil
	}
	return func(e Event) {
		status := "ok"
		switch {
		case e.Err != nil:
			status = "FAILED"
		case e.Reused != "":
			status = "reused (" + e.Reused + ")"
		}
		line := fmt.Sprintf("[%*d/%d] %s %s (%s",
			numWidth(e.Total), e.Done, e.Total, e.Job.Name(), status,
			e.Elapsed.Round(time.Millisecond))
		if e.ETA > 0 {
			line += fmt.Sprintf(", eta %s", e.ETA.Round(time.Second))
		}
		fmt.Fprintln(w, line+")")
	}
}

// numWidth returns the decimal width of n, for aligned counters.
func numWidth(n int) int {
	w := 1
	for n >= 10 {
		n /= 10
		w++
	}
	return w
}

// progressTracker accumulates completion state; its methods are called with
// the pool's mutex held.
type progressTracker struct {
	total     int
	completed int
	executed  int // completed jobs that actually simulated (Reused == "")
	started   time.Time
	fn        ProgressFunc
}

func newProgressTracker(total int, fn ProgressFunc) *progressTracker {
	return &progressTracker{total: total, started: time.Now(), fn: fn}
}

// done records one finished job and emits a progress event.
func (p *progressTracker) done(res Result) {
	p.completed++
	if res.Reused == "" {
		p.executed++
	}
	if p.fn == nil {
		return
	}
	elapsed := time.Since(p.started)
	var eta time.Duration
	if rem := p.total - p.completed; rem > 0 && p.executed > 0 {
		// Completed-throughput estimate: remaining work at the observed
		// aggregate rate. With W workers the rate already reflects W-way
		// parallelism, so no worker-count correction is needed. Only jobs
		// that actually simulated enter the denominator — journal/store/
		// cache hits complete instantly, and counting them would divide the
		// elapsed time across jobs that cost nothing, collapsing the ETA on
		// warm-store campaigns where the remaining jobs still run in full.
		eta = time.Duration(float64(elapsed) / float64(p.executed) * float64(rem))
	}
	p.fn(Event{
		Done:     p.completed,
		Total:    p.total,
		Job:      res.Job,
		Err:      res.Err,
		Reused:   res.Reused,
		Elapsed:  res.Elapsed,
		Campaign: elapsed,
		ETA:      eta,
	})
}
