package runner

import (
	"sync"
)

// ResultCache is the in-process cross-experiment result cache: campaign jobs
// with equal canonical keys (Job.Key) simulate the identical (config,
// workload, scale) triple, so one ResultCache shared across every campaign
// of a sweep makes each distinct triple simulate exactly once. Duplicate
// jobs — the baseline column shared by many figures, or repeated baselines
// within one experiment — receive the first run's Stats and are marked
// Reused in their Result.
//
// The cache single-flights concurrent duplicates: the first job to claim a
// key becomes its leader and simulates; followers block until the leader
// finishes. A failed leader aborts the entry, so followers (and later jobs)
// run live instead of caching an error. Stats are safe to share — they are
// plain value snapshots.
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
}

// cacheEntry is one key's slot; done is closed when the leader completes or
// aborts, with ok reporting whether the stored payload is valid.
type cacheEntry struct {
	done   chan struct{}
	stored Stored
	ok     bool
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: make(map[string]*cacheEntry)}
}

// acquire claims key. The first caller becomes the leader (second return
// true) and must later call complete or abort; everyone else gets the
// existing entry to wait on.
func (c *ResultCache) acquire(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// complete publishes the leader's result and releases its followers.
func (c *ResultCache) complete(e *cacheEntry, st Stored) {
	e.stored = st
	e.ok = true
	close(e.done)
}

// abort removes the failed leader's entry so future acquires elect a new
// leader, then releases the current followers with ok=false — they run live.
func (c *ResultCache) abort(key string, e *cacheEntry) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
	close(e.done)
}

// publish inserts an already-completed result (a journal hit) so subsequent
// jobs with the same key reuse it without touching the journal again. A key
// that is already present is left alone.
func (c *ResultCache) publish(key string, st Stored) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &cacheEntry{stored: st, ok: true, done: make(chan struct{})}
	close(e.done)
	c.entries[key] = e
}

// hit counts one reuse, for campaign accounting.
func (c *ResultCache) hit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

// Hits reports how many jobs were served from the cache so far.
func (c *ResultCache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
