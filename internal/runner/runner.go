// Package runner is the simulation-campaign orchestrator: it takes a set of
// independent simulation jobs (workload × sim.Config × warmup/measure),
// schedules them over a bounded worker pool, and returns results in
// deterministic job order, so campaign output is byte-identical regardless of
// how many workers ran it.
//
// The orchestrator provides the campaign-level machinery the experiment
// harness needs but individual simulations do not know about:
//
//   - fan-out over a worker pool sized by Options.Workers (default
//     GOMAXPROCS), with results merged back in submission order;
//   - per-job panic isolation — a crashing simulation fails that job with a
//     captured stack trace instead of tearing down the whole campaign;
//   - context.Context cancellation and optional per-job timeouts, checked
//     inside the simulator's instruction loop;
//   - live progress and ETA reporting through a ProgressFunc;
//   - a typed, schema-versioned result model with JSON and CSV emitters
//     (results.go) suitable for benchmark trajectory tracking.
package runner

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"morrigan/internal/arch"
	"morrigan/internal/machine"
	"morrigan/internal/sampling"
	"morrigan/internal/sim"
	"morrigan/internal/spans"
	"morrigan/internal/telemetry"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// SMTVAOffset is the per-thread virtual-address-space offset: thread i's
// stream is shifted by i*SMTVAOffset so colocated SMT workloads behave as
// distinct processes.
const SMTVAOffset arch.VAddr = 1 << 40

// Job is one independent simulation in a campaign, described as data: a
// declarative machine spec plus the workload specs feeding its threads (1,
// or 2 for SMT). The machine and its trace readers are constructed on the
// worker goroutine that executes the job, so every piece of mutable
// simulation state (prefetcher tables, trace generators, RNGs) is built and
// used by exactly one goroutine.
//
// Because both halves are data with stable hashes, a job has a canonical
// identity (Key) that the checkpoint journal and cross-experiment result
// cache key on. The two escape hatches — Instrument and NewThreads — opt a
// job out of that identity: such jobs always execute (see Key).
type Job struct {
	// Experiment, Config and Workload identify the job in results
	// (e.g. "fig15", "Morrigan", "qmm-srv-07"). Config may be empty for
	// baseline runs. Display-only: they do not influence Key.
	Experiment, Config, Workload string

	// Machine describes the simulated machine as data; it is Built on the
	// worker goroutine.
	Machine machine.Spec
	// Workloads feed the job's threads in order; thread i's address space is
	// offset by i*SMTVAOffset. Ignored when NewThreads is set.
	Workloads []workloads.Spec

	// Warmup and Measure are instruction counts for sim.Run.
	Warmup, Measure uint64

	// Instrument, when set, mutates the built config before the simulation
	// starts — the hook for run-observing closures (e.g. OnISTLBMiss
	// capture). Instrumented jobs have no data-only identity and are never
	// journaled or served from the result cache.
	Instrument func(*sim.Config)
	// NewThreads, when set, overrides Workloads as the instruction-stream
	// source (e.g. trace files). Such jobs also forgo a data-only identity.
	NewThreads func() []sim.ThreadSpec

	// Sampling, when non-nil, switches the job to sampled execution:
	// profile the workload functionally, cluster its intervals, simulate
	// only representative slices in timing detail and extrapolate Stats
	// with confidence intervals (internal/sampling). The policy is part of
	// the job's canonical identity — a sampled job and its full-run twin
	// hash to different keys. Requires exactly one workload-described
	// thread (no NewThreads, no SMT pair).
	Sampling *sampling.Policy
}

// Name returns the job's "experiment/config/workload" display label, eliding
// empty parts.
func (j Job) Name() string {
	parts := make([]string, 0, 3)
	for _, p := range []string{j.Experiment, j.Config, j.Workload} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, "/")
}

// Result is the outcome of one job.
type Result struct {
	// Job echoes the job this result belongs to.
	Job Job
	// Stats is the measurement snapshot; zero when Err is non-nil.
	Stats sim.Stats
	// Err reports a failed, panicked, cancelled or timed-out job.
	Err error
	// Elapsed is the job's wall-clock execution time (zero if never started).
	Elapsed time.Duration
	// SimInstructions is the total instructions the job executed, warmup
	// included (partial counts survive failed or cancelled jobs).
	SimInstructions uint64
	// InstrPerSec is the job's simulation throughput: SimInstructions per
	// wall-clock second. It is the machine-comparable performance figure the
	// BENCH_* trajectory tracks.
	InstrPerSec float64
	// PeakHeapBytes is the larger of the process heap (runtime.MemStats
	// HeapAlloc) observed at job start and end. The heap is shared by every
	// concurrent job, so this is an upper bound on the job's own footprint,
	// comparable across runs at a fixed worker count.
	PeakHeapBytes uint64
	// TelemetryPath is the job's JSONL telemetry file, when
	// Options.Telemetry was set and the job ran.
	TelemetryPath string
	// Reused marks results that were not simulated by this job: ReusedCache
	// for in-process result-cache hits, ReusedJournal for checkpoint-journal
	// hits. Empty for jobs that actually ran.
	Reused string
	// Sampling, when non-nil, marks a sampled result and carries how it was
	// produced (policy, slice counts, per-metric 95% confidence intervals).
	// Stats then hold the weighted extrapolation, not a direct measurement.
	Sampling *sampling.Outcome
}

// Stored is the payload the reuse layers (journal, result store, in-process
// cache) carry per canonical key: the stats plus, for sampled jobs, the
// sampling outcome — so a reused sampled result keeps its confidence
// intervals and is never mistaken for a full measurement.
type Stored struct {
	Stats    sim.Stats
	Sampling *sampling.Outcome
}

// Reused markers.
const (
	ReusedCache   = "cache"
	ReusedJournal = "journal"
	ReusedStore   = "store"
)

// ResultStore is the durable cross-run result layer: a persistent map from
// canonical job keys (Job.Key) to completed results, shared across processes
// and machines. internal/resultstore implements it as an on-disk
// content-addressed store. Jobs whose key the store already holds are served
// without simulating (Result.Reused = ReusedStore); completed jobs are put
// back so later runs — on any machine sharing the store — reuse them.
// Implementations must be safe for concurrent use.
type ResultStore interface {
	// Lookup returns the stored payload for key, if present.
	Lookup(key string) (Stored, bool)
	// Put persists one completed result under key. Duplicate puts resolve
	// first-write-wins: a put whose stats equal the stored record is a
	// no-op, and one whose stats differ is an error — a stored result must
	// never change underneath consumers that already merged it.
	Put(key string, res Result) error
}

// RemoteExecutor executes keyed jobs somewhere other than this process — the
// attach surface of the distributed campaign fabric (internal/fabric), whose
// coordinator hands jobs to pull-based workers over HTTP. Only jobs with a
// data-only identity are delegated; instrumented and NewThreads jobs (whose
// closures cannot cross a process boundary) always execute locally.
type RemoteExecutor interface {
	// ExecuteRemote runs the job elsewhere and returns its result. The
	// returned error reports delegation failures (coordinator shut down,
	// context cancelled); a job that executed remotely and failed comes
	// back as (Result{Err: ...}, nil) just as local execution would.
	ExecuteRemote(ctx context.Context, job Job, key string) (Result, error)
}

// Options configures a campaign run.
type Options struct {
	// Workers bounds the number of simulations in flight; 0 or negative
	// means GOMAXPROCS. 1 reproduces serial execution exactly.
	Workers int
	// Timeout, when positive, bounds each job's execution time.
	Timeout time.Duration
	// Progress, when non-nil, is called after every job completes (from a
	// single goroutine at a time; it need not be re-entrant).
	Progress ProgressFunc
	// Telemetry, when non-nil, attaches a telemetry probe to every job and
	// writes one JSONL file per job into Telemetry.Dir.
	Telemetry *TelemetryOptions
	// Observer, when non-nil, receives campaign lifecycle callbacks (see
	// Observer); it also forces a telemetry probe onto every job so live
	// counters are scrapeable, even when Telemetry is nil.
	Observer Observer
	// NewReader, when non-nil, builds each workload's instruction stream
	// (e.g. from a materialised corpus) instead of the workload's live
	// generator. It runs on the job's worker goroutine.
	NewReader func(workloads.Spec) (trace.Reader, error)
	// Journal, when non-nil, is the crash-safe checkpoint: completed jobs
	// are appended to it, and jobs already journaled (resume) are served
	// from it without simulating.
	Journal *Journal
	// Cache, when non-nil, deduplicates jobs with equal canonical keys —
	// across campaigns when shared — so each distinct (config, workload,
	// scale) triple simulates exactly once.
	Cache *ResultCache
	// Store, when non-nil, is the durable result layer: keyed jobs already
	// present are served without simulating, and completed keyed jobs are
	// persisted so results dedup across runs and across machines (see
	// ResultStore and internal/resultstore).
	Store ResultStore
	// Remote, when non-nil, delegates keyed jobs to remote workers instead
	// of simulating them on this process's worker pool (see RemoteExecutor
	// and internal/fabric). Reuse layers still apply: only jobs missing
	// from the journal, store and cache are delegated.
	Remote RemoteExecutor
	// Profiles, when non-nil, caches sampling profile artifacts on disk
	// (typically <corpus>/profiles) so the functional profiling pass of a
	// sampled job is paid once per workload and window. Without it, Run
	// falls back to an in-memory per-campaign cache with the same sharing:
	// the pass depends only on the workload and window, never the machine,
	// so an N-config sweep pays it once per workload either way.
	Profiles *sampling.ProfileStore
	// memProfiles is the fallback in-memory profile cache, installed by Run
	// when sampled jobs are present and no disk store is attached.
	memProfiles *sampling.MemProfileCache
	// Spans, when non-nil, records a distributed-tracing span for every job
	// lifecycle phase — reuse lookups, cache waits, machine build, corpus
	// ingest, sampled fast-forward/settle, timed simulation, persistence —
	// under a trace id derived from the job's canonical key (internal/spans).
	// Like every observer layer, it is provably inert: nil costs one nil
	// check per phase, and results are bit-identical either way (asserted by
	// the trace-purity test).
	Spans *spans.Recorder
}

// jobTraceID derives the job's trace id: the canonical key when the job has
// one, else a synthetic id from the campaign index and display name (unkeyed
// jobs never leave the process, so the synthetic id needs no cross-machine
// stability).
func jobTraceID(key string, keyed bool, i int, j Job) string {
	if keyed {
		return key
	}
	return fmt.Sprintf("unkeyed/%d/%s", i, j.Name())
}

// Observer receives campaign lifecycle notifications, the attach surface of
// the live observability server (internal/obs). CampaignStarted is called
// once per Run before any job launches; JobStarted and JobFinished are called
// from worker goroutines (concurrently with each other) for every job that
// simulates. Jobs served from the checkpoint journal or the result cache
// never start a simulation, so they receive only JobFinished (with
// Result.Reused set).
//
// The probe passed to JobStarted is owned by the job's simulation goroutine:
// an observer may only use its cross-goroutine surface — Snapshot(), and
// SetSampleListener before the job starts running (i.e. during JobStarted).
type Observer interface {
	CampaignStarted(total int)
	JobStarted(index int, job Job, probe *telemetry.Probe)
	JobFinished(index int, res Result)
}

// workers resolves the pool width for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the campaign and returns one Result per job, in job order.
// Jobs are independent: a failing (or panicking) job does not stop the
// others, and its Result carries the error. The returned error is the
// lowest-indexed job error, if any — deterministic regardless of completion
// order — or the context's error when the campaign was cancelled. A nil ctx
// means context.Background().
func Run(ctx context.Context, jobs []Job, opt Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	if opt.Telemetry != nil {
		if err := os.MkdirAll(opt.Telemetry.Dir, 0o755); err != nil {
			return results, fmt.Errorf("runner: telemetry dir: %w", err)
		}
	}
	if opt.Observer != nil {
		opt.Observer.CampaignStarted(len(jobs))
	}
	if opt.Profiles == nil {
		for i := range jobs {
			if jobs[i].Sampling != nil {
				opt.memProfiles = sampling.NewMemProfileCache()
				break
			}
		}
	}

	var (
		mu      sync.Mutex // guards next and the progress tracker
		next    int
		claimed = make([]bool, len(jobs))
		prog    = newProgressTracker(len(jobs), opt.Progress)
		wg      sync.WaitGroup
	)
	for w := opt.workers(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				claimed[i] = true
				results[i] = executeShared(ctx, i, jobs[i], opt)
				if opt.Observer != nil {
					opt.Observer.JobFinished(i, results[i])
				}
				mu.Lock()
				prog.done(results[i])
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Jobs never claimed (campaign cancelled first) carry the context error.
	for i := range results {
		if !claimed[i] {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			results[i] = Result{Job: jobs[i], Err: fmt.Errorf("runner: %s: %w", jobs[i].Name(), err)}
		}
	}
	return results, firstError(ctx, results)
}

// firstError picks the campaign-level error: the context's error if
// cancelled, else the lowest-indexed job error.
func firstError(ctx context.Context, results []Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// executeShared wraps execute with the key-based reuse layers: the
// checkpoint journal (completed results from a previous, interrupted run),
// the durable result store (completed results from any previous run, on any
// machine sharing the store), and the in-process result cache (duplicate
// jobs within or across the current process's campaigns). Jobs without a
// data-only identity bypass all of them and always execute locally.
func executeShared(ctx context.Context, i int, j Job, opt Options) Result {
	key, keyed := j.Key()
	trace := jobTraceID(key, keyed, i, j)
	if !keyed || (opt.Journal == nil && opt.Cache == nil && opt.Store == nil) {
		return executePersisted(ctx, i, j, opt, key, keyed, trace)
	}
	if opt.Journal != nil {
		sp := opt.Spans.Start(trace, "lookup.journal")
		st, hit := opt.Journal.Lookup(key)
		sp.Attr("hit", fmt.Sprint(hit)).End()
		if hit {
			if opt.Cache != nil {
				opt.Cache.publish(key, st)
			}
			return Result{Job: j, Stats: st.Stats, Sampling: st.Sampling, Reused: ReusedJournal}
		}
	}
	if opt.Store != nil {
		sp := opt.Spans.Start(trace, "lookup.store")
		st, hit := opt.Store.Lookup(key)
		sp.Attr("hit", fmt.Sprint(hit)).End()
		if hit {
			if opt.Cache != nil {
				opt.Cache.publish(key, st)
			}
			return Result{Job: j, Stats: st.Stats, Sampling: st.Sampling, Reused: ReusedStore}
		}
	}
	if opt.Cache == nil {
		return executePersisted(ctx, i, j, opt, key, keyed, trace)
	}
	e, leader := opt.Cache.acquire(key)
	if !leader {
		// Follower: wait for the leader's verdict. A failed leader releases
		// us with ok=false and a vacated entry — run live rather than reuse
		// (or re-elect on) an error.
		sp := opt.Spans.Start(trace, "cache.wait")
		select {
		case <-e.done:
		case <-ctx.Done():
			sp.Attr("hit", "false").End()
			return Result{Job: j, Err: fmt.Errorf("runner: %s: %w", j.Name(), ctx.Err())}
		}
		sp.Attr("hit", fmt.Sprint(e.ok)).End()
		if e.ok {
			opt.Cache.hit()
			return Result{Job: j, Stats: e.stored.Stats, Sampling: e.stored.Sampling, Reused: ReusedCache}
		}
		return executePersisted(ctx, i, j, opt, key, keyed, trace)
	}
	res := executePersisted(ctx, i, j, opt, key, keyed, trace)
	if res.Err == nil {
		opt.Cache.complete(e, Stored{Stats: res.Stats, Sampling: res.Sampling})
	} else {
		opt.Cache.abort(key, e)
	}
	return res
}

// executePersisted runs the job — remotely when a RemoteExecutor is attached
// and the job is keyed, locally otherwise — and, on success, checkpoints the
// result to the journal and persists it to the result store (whichever are
// attached). A journal or store write failure fails the job: a checkpoint
// the caller asked for but silently did not get would defeat resume, and a
// store put that silently vanished would defeat cross-run reuse.
func executePersisted(ctx context.Context, i int, j Job, opt Options, key string, keyed bool, trace string) Result {
	var res Result
	if keyed && opt.Remote != nil {
		sp := opt.Spans.Start(trace, "remote")
		r, err := opt.Remote.ExecuteRemote(ctx, j, key)
		sp.Attr("ok", fmt.Sprint(err == nil)).End()
		if err != nil {
			res = Result{Job: j, Err: fmt.Errorf("runner: %s: %w", j.Name(), err)}
		} else {
			res = r
			res.Job = j
		}
	} else {
		res = execute(ctx, i, j, opt, trace)
	}
	if keyed && res.Err == nil {
		if opt.Journal != nil {
			sp := opt.Spans.Start(trace, "persist.journal")
			err := opt.Journal.Append(res)
			sp.End()
			if err != nil {
				res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
				return res
			}
		}
		if opt.Store != nil {
			sp := opt.Spans.Start(trace, "persist.store")
			err := opt.Store.Put(key, res)
			sp.End()
			if err != nil {
				res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
			}
		}
	}
	return res
}

// buildThreads constructs the job's instruction streams: the NewThreads
// escape hatch verbatim, else one reader per workload spec (via
// Options.NewReader when set), with thread i's address space offset by
// i*SMTVAOffset. On error, already-built readers are closed.
func buildThreads(j Job, opt Options) ([]sim.ThreadSpec, error) {
	if j.NewThreads != nil {
		return j.NewThreads(), nil
	}
	threads := make([]sim.ThreadSpec, 0, len(j.Workloads))
	for i, w := range j.Workloads {
		var r trace.Reader
		var err error
		if opt.NewReader != nil {
			r, err = opt.NewReader(w)
		} else {
			r = w.NewReader()
		}
		if err != nil {
			closeThreadReaders(threads)
			return nil, fmt.Errorf("building %s reader: %w", w.Name, err)
		}
		threads = append(threads, sim.ThreadSpec{Reader: r, VAOffset: arch.VAddr(i) * SMTVAOffset})
	}
	return threads, nil
}

// execute runs job i with panic isolation, the per-job timeout, and an
// optional per-job telemetry probe flushed to its own JSONL file.
func execute(ctx context.Context, i int, j Job, opt Options, trace string) (res Result) {
	res.Job = j
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	execSpan := opt.Spans.Start(trace, "execute")
	start := time.Now()
	startHeap := heapAlloc()
	var probe *telemetry.Probe
	var s *sim.Simulator
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: %s: panic: %v\n%s", j.Name(), r, debug.Stack())
		}
		// Throughput and peak-heap accounting survive failed jobs: a partial
		// instruction count over a partial elapsed time is still a rate.
		if s != nil {
			res.SimInstructions = s.Executed()
		}
		if secs := res.Elapsed.Seconds(); secs > 0 {
			res.InstrPerSec = float64(res.SimInstructions) / secs
		}
		res.PeakHeapBytes = max(startHeap, heapAlloc())
		if probe != nil && opt.Telemetry != nil {
			// Flush whatever was collected — partial telemetry from a
			// failed or cancelled job is still diagnostic data.
			path, werr := opt.Telemetry.writeTelemetry(i, j, probe)
			if werr != nil && res.Err == nil {
				res.Err = werr
			}
			res.TelemetryPath = path
		}
		execSpan.Attr("ok", fmt.Sprint(res.Err == nil))
		if res.Sampling != nil {
			execSpan.AttrInt("sampled_slices", int64(res.Sampling.Slices))
		}
		execSpan.End()
	}()
	buildSpan := opt.Spans.Start(trace, "build")
	cfg, err := j.Machine.Build()
	buildSpan.End()
	if err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	if j.Instrument != nil {
		j.Instrument(&cfg)
	}
	if j.Sampling != nil {
		// Sampled execution gets no telemetry probe and no JobStarted: the
		// run is a sequence of short warmup/measure slices, each of which
		// would finish and reset a probe, so a per-job time series is
		// undefined. The observer still receives JobFinished, exactly as it
		// does for journal-reused jobs.
		st, outcome, serr := executeSampled(ctx, &s, cfg, j, opt, trace)
		if serr != nil {
			res.Err = fmt.Errorf("runner: %s: %w", j.Name(), serr)
			return res
		}
		res.Stats = st
		res.Sampling = outcome
		return res
	}
	switch {
	case opt.Telemetry != nil:
		probe = telemetry.NewProbe(opt.Telemetry.Config)
	case opt.Observer != nil:
		// Observer-only probes exist for live counter scraping; no JSONL is
		// written, and the event ring would go unread, so it is disabled.
		probe = telemetry.NewProbe(telemetry.Config{EventBuffer: -1})
	}
	if probe != nil {
		cfg.Probe = probe
		if opt.Observer != nil {
			// Before the simulation starts: the observer may still touch the
			// probe's single-goroutine surface (e.g. SetSampleListener) here.
			opt.Observer.JobStarted(i, j, probe)
		}
	}
	threadSpan := opt.Spans.Start(trace, "threads")
	threads, err := buildThreads(j, opt)
	threadSpan.End()
	if err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	defer closeThreadReaders(threads)
	s, err = sim.New(cfg, threads)
	if err != nil {
		s = nil
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	simSpan := opt.Spans.Start(trace, "simulate")
	st, err := s.RunContext(ctx, j.Warmup, j.Measure)
	simSpan.End()
	if err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	res.Stats = st
	return res
}

// closeThreadReaders releases job-owned trace readers that hold external
// resources: corpus readers pin decoded chunks in the shared cache until
// closed, so a cancelled or panicked job must still run this or the pinned
// chunks would be unevictable for the rest of the campaign. Close errors are
// ignored — the stream has already been consumed or abandoned.
func closeThreadReaders(threads []sim.ThreadSpec) {
	for _, ts := range threads {
		if c, ok := ts.Reader.(io.Closer); ok {
			c.Close()
		}
	}
}

// heapAlloc samples the process's live heap. ReadMemStats costs a
// stop-the-world pause measured in microseconds — twice per job, against
// jobs that run for seconds, it is free.
func heapAlloc() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
