// Package runner is the simulation-campaign orchestrator: it takes a set of
// independent simulation jobs (workload × sim.Config × warmup/measure),
// schedules them over a bounded worker pool, and returns results in
// deterministic job order, so campaign output is byte-identical regardless of
// how many workers ran it.
//
// The orchestrator provides the campaign-level machinery the experiment
// harness needs but individual simulations do not know about:
//
//   - fan-out over a worker pool sized by Options.Workers (default
//     GOMAXPROCS), with results merged back in submission order;
//   - per-job panic isolation — a crashing simulation fails that job with a
//     captured stack trace instead of tearing down the whole campaign;
//   - context.Context cancellation and optional per-job timeouts, checked
//     inside the simulator's instruction loop;
//   - live progress and ETA reporting through a ProgressFunc;
//   - a typed, schema-versioned result model with JSON and CSV emitters
//     (results.go) suitable for benchmark trajectory tracking.
package runner

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"morrigan/internal/sim"
	"morrigan/internal/telemetry"
)

// Job is one independent simulation in a campaign. The NewConfig and
// NewThreads factories are invoked on the worker goroutine that executes the
// job, so every piece of mutable simulation state (prefetcher tables, trace
// generators, RNGs) is constructed and used by exactly one goroutine.
type Job struct {
	// Experiment, Config and Workload identify the job in results
	// (e.g. "fig15", "Morrigan", "qmm-srv-07"). Config may be empty for
	// baseline runs.
	Experiment, Config, Workload string

	// NewConfig builds the machine configuration, including any stateful
	// prefetcher instances. It must not return state shared with another job.
	NewConfig func() sim.Config
	// NewThreads builds the instruction streams (1 thread, or 2 for SMT).
	NewThreads func() []sim.ThreadSpec

	// Warmup and Measure are instruction counts for sim.Run.
	Warmup, Measure uint64
}

// Name returns the job's "experiment/config/workload" display label, eliding
// empty parts.
func (j Job) Name() string {
	parts := make([]string, 0, 3)
	for _, p := range []string{j.Experiment, j.Config, j.Workload} {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, "/")
}

// Result is the outcome of one job.
type Result struct {
	// Job echoes the job this result belongs to.
	Job Job
	// Stats is the measurement snapshot; zero when Err is non-nil.
	Stats sim.Stats
	// Err reports a failed, panicked, cancelled or timed-out job.
	Err error
	// Elapsed is the job's wall-clock execution time (zero if never started).
	Elapsed time.Duration
	// SimInstructions is the total instructions the job executed, warmup
	// included (partial counts survive failed or cancelled jobs).
	SimInstructions uint64
	// InstrPerSec is the job's simulation throughput: SimInstructions per
	// wall-clock second. It is the machine-comparable performance figure the
	// BENCH_* trajectory tracks.
	InstrPerSec float64
	// PeakHeapBytes is the larger of the process heap (runtime.MemStats
	// HeapAlloc) observed at job start and end. The heap is shared by every
	// concurrent job, so this is an upper bound on the job's own footprint,
	// comparable across runs at a fixed worker count.
	PeakHeapBytes uint64
	// TelemetryPath is the job's JSONL telemetry file, when
	// Options.Telemetry was set and the job ran.
	TelemetryPath string
}

// Options configures a campaign run.
type Options struct {
	// Workers bounds the number of simulations in flight; 0 or negative
	// means GOMAXPROCS. 1 reproduces serial execution exactly.
	Workers int
	// Timeout, when positive, bounds each job's execution time.
	Timeout time.Duration
	// Progress, when non-nil, is called after every job completes (from a
	// single goroutine at a time; it need not be re-entrant).
	Progress ProgressFunc
	// Telemetry, when non-nil, attaches a telemetry probe to every job and
	// writes one JSONL file per job into Telemetry.Dir.
	Telemetry *TelemetryOptions
	// Observer, when non-nil, receives campaign lifecycle callbacks (see
	// Observer); it also forces a telemetry probe onto every job so live
	// counters are scrapeable, even when Telemetry is nil.
	Observer Observer
}

// Observer receives campaign lifecycle notifications, the attach surface of
// the live observability server (internal/obs). CampaignStarted is called
// once per Run before any job launches; JobStarted and JobFinished are called
// from worker goroutines (concurrently with each other) for every job.
//
// The probe passed to JobStarted is owned by the job's simulation goroutine:
// an observer may only use its cross-goroutine surface — Snapshot(), and
// SetSampleListener before the job starts running (i.e. during JobStarted).
type Observer interface {
	CampaignStarted(total int)
	JobStarted(index int, job Job, probe *telemetry.Probe)
	JobFinished(index int, res Result)
}

// workers resolves the pool width for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the campaign and returns one Result per job, in job order.
// Jobs are independent: a failing (or panicking) job does not stop the
// others, and its Result carries the error. The returned error is the
// lowest-indexed job error, if any — deterministic regardless of completion
// order — or the context's error when the campaign was cancelled. A nil ctx
// means context.Background().
func Run(ctx context.Context, jobs []Job, opt Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	if opt.Telemetry != nil {
		if err := os.MkdirAll(opt.Telemetry.Dir, 0o755); err != nil {
			return results, fmt.Errorf("runner: telemetry dir: %w", err)
		}
	}
	if opt.Observer != nil {
		opt.Observer.CampaignStarted(len(jobs))
	}

	var (
		mu      sync.Mutex // guards next and the progress tracker
		next    int
		claimed = make([]bool, len(jobs))
		prog    = newProgressTracker(len(jobs), opt.Progress)
		wg      sync.WaitGroup
	)
	for w := opt.workers(len(jobs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(jobs) {
					return
				}
				claimed[i] = true
				results[i] = execute(ctx, i, jobs[i], opt)
				if opt.Observer != nil {
					opt.Observer.JobFinished(i, results[i])
				}
				mu.Lock()
				prog.done(results[i])
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Jobs never claimed (campaign cancelled first) carry the context error.
	for i := range results {
		if !claimed[i] {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			results[i] = Result{Job: jobs[i], Err: fmt.Errorf("runner: %s: %w", jobs[i].Name(), err)}
		}
	}
	return results, firstError(ctx, results)
}

// firstError picks the campaign-level error: the context's error if
// cancelled, else the lowest-indexed job error.
func firstError(ctx context.Context, results []Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// execute runs job i with panic isolation, the per-job timeout, and an
// optional per-job telemetry probe flushed to its own JSONL file.
func execute(ctx context.Context, i int, j Job, opt Options) (res Result) {
	res.Job = j
	if err := ctx.Err(); err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	start := time.Now()
	startHeap := heapAlloc()
	var probe *telemetry.Probe
	var s *sim.Simulator
	defer func() {
		res.Elapsed = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: %s: panic: %v\n%s", j.Name(), r, debug.Stack())
		}
		// Throughput and peak-heap accounting survive failed jobs: a partial
		// instruction count over a partial elapsed time is still a rate.
		if s != nil {
			res.SimInstructions = s.Executed()
		}
		if secs := res.Elapsed.Seconds(); secs > 0 {
			res.InstrPerSec = float64(res.SimInstructions) / secs
		}
		res.PeakHeapBytes = max(startHeap, heapAlloc())
		if probe != nil && opt.Telemetry != nil {
			// Flush whatever was collected — partial telemetry from a
			// failed or cancelled job is still diagnostic data.
			path, werr := opt.Telemetry.writeTelemetry(i, j, probe)
			if werr != nil && res.Err == nil {
				res.Err = werr
			}
			res.TelemetryPath = path
		}
	}()
	cfg := j.NewConfig()
	switch {
	case opt.Telemetry != nil:
		probe = telemetry.NewProbe(opt.Telemetry.Config)
	case opt.Observer != nil:
		// Observer-only probes exist for live counter scraping; no JSONL is
		// written, and the event ring would go unread, so it is disabled.
		probe = telemetry.NewProbe(telemetry.Config{EventBuffer: -1})
	}
	if probe != nil {
		cfg.Probe = probe
		if opt.Observer != nil {
			// Before the simulation starts: the observer may still touch the
			// probe's single-goroutine surface (e.g. SetSampleListener) here.
			opt.Observer.JobStarted(i, j, probe)
		}
	}
	threads := j.NewThreads()
	defer closeThreadReaders(threads)
	var err error
	s, err = sim.New(cfg, threads)
	if err != nil {
		s = nil
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	st, err := s.RunContext(ctx, j.Warmup, j.Measure)
	if err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", j.Name(), err)
		return res
	}
	res.Stats = st
	return res
}

// closeThreadReaders releases job-owned trace readers that hold external
// resources: corpus readers pin decoded chunks in the shared cache until
// closed, so a cancelled or panicked job must still run this or the pinned
// chunks would be unevictable for the rest of the campaign. Close errors are
// ignored — the stream has already been consumed or abandoned.
func closeThreadReaders(threads []sim.ThreadSpec) {
	for _, ts := range threads {
		if c, ok := ts.Reader.(io.Closer); ok {
			c.Close()
		}
	}
}

// heapAlloc samples the process's live heap. ReadMemStats costs a
// stop-the-world pause measured in microseconds — twice per job, against
// jobs that run for seconds, it is free.
func heapAlloc() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
