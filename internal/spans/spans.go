// Package spans is the distributed-tracing subsystem for simulation
// campaigns: a lightweight span recorder that tags every lifecycle phase of a
// job — lookup, lease, corpus ingest, fast-forward, timed simulation, submit —
// with a monotonic start/duration, the worker that ran it, and a trace id
// derived from the job's canonical key, so one campaign's work across many
// machines assembles into a single timeline.
//
// The design constraints mirror the other observer layers (telemetry, obs):
// recording must be provably inert. A nil *Recorder is fully usable — every
// method is a no-op — so call sites pay exactly one nil check when tracing is
// disabled, and results are bit-identical either way (asserted by tests).
//
// Clocks: spans carry nanoseconds since the recorder's epoch, measured on Go's
// monotonic clock (time.Since of an epoch time.Time), never wall time. Spans
// recorded on remote workers are re-based onto the assembling coordinator's
// epoch via Import, using the clock offset the coordinator estimates from
// heartbeat round-trip times.
package spans

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Span is one traced phase of one job.
type Span struct {
	// TraceID groups the spans of a single job; it is the job's canonical
	// hex key when the job is keyed, or a synthetic "unkeyed/..." id.
	TraceID string `json:"trace_id"`
	// Name is the phase, dot-scoped: "execute", "lookup.store",
	// "sample.fastforward", "lease.wait", ...
	Name string `json:"name"`
	// Worker identifies the process that recorded the span ("local",
	// "coordinator", or a fabric worker's name).
	Worker string `json:"worker,omitempty"`
	// StartNS is nanoseconds since the assembled trace's epoch, monotonic.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs carries phase-specific annotations: reuse source, lease
	// renewals, sampled-slice count, abandon reason.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// End returns the span's end time in nanoseconds since the trace epoch.
func (s Span) End() int64 { return s.StartNS + s.DurNS }

// Recorder collects spans for one process. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so a disabled tracer is
// a nil field and costs a nil check per call site.
type Recorder struct {
	worker string
	epoch  time.Time

	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns a recorder whose clock starts now. worker names the
// recording process in every span it produces.
func NewRecorder(worker string) *Recorder {
	return NewRecorderAt(worker, time.Now())
}

// NewRecorderAt returns a recorder with an explicit epoch. Per-job recorders
// on a fabric worker share the worker process's epoch so their spans are in
// one timebase and ship with a single clock sample.
func NewRecorderAt(worker string, epoch time.Time) *Recorder {
	return &Recorder{worker: worker, epoch: epoch}
}

// Worker returns the recorder's worker name ("" on nil).
func (r *Recorder) Worker() string {
	if r == nil {
		return ""
	}
	return r.worker
}

// Now returns nanoseconds since the recorder's epoch on the monotonic clock
// (0 on nil).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Start opens a span; call End on the returned handle to record it. On a nil
// recorder it returns nil, and every Active method is nil-safe, so
//
//	sp := rec.Start(id, "execute")
//	defer sp.End()
//
// is correct whether or not tracing is enabled.
func (r *Recorder) Start(traceID, name string) *Active {
	if r == nil {
		return nil
	}
	return &Active{r: r, span: Span{
		TraceID: traceID,
		Name:    name,
		Worker:  r.worker,
		StartNS: r.Now(),
	}}
}

// Record appends a fully-formed span, filling Worker if unset.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	if s.Worker == "" {
		s.Worker = r.worker
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Import appends spans recorded on another clock, shifting their start times
// by offsetNS to re-base them onto this recorder's epoch. If the shift would
// push any span before the epoch (offset estimation error), the whole batch
// is slid forward uniformly so its earliest span lands at 0 — a uniform slide
// preserves the batch's internal nesting and ordering exactly, where a
// per-span clamp would not.
func (r *Recorder) Import(ss []Span, offsetNS int64) {
	if r == nil || len(ss) == 0 {
		return
	}
	adj := offsetNS
	min := ss[0].StartNS
	for _, s := range ss[1:] {
		if s.StartNS < min {
			min = s.StartNS
		}
	}
	if min+adj < 0 {
		adj = -min
	}
	r.mu.Lock()
	for _, s := range ss {
		s.StartNS += adj
		if s.Worker == "" {
			s.Worker = r.worker
		}
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of the recorded spans in a deterministic order:
// by start time, then trace id, then name.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		if out[i].TraceID != out[j].TraceID {
			return out[i].TraceID < out[j].TraceID
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Active is an open span returned by Recorder.Start. Nil-safe.
type Active struct {
	r    *Recorder
	span Span
}

// Attr annotates the span; returns the handle for chaining.
func (a *Active) Attr(key, value string) *Active {
	if a == nil {
		return nil
	}
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[key] = value
	return a
}

// AttrInt annotates the span with an integer value.
func (a *Active) AttrInt(key string, value int64) *Active {
	if a == nil {
		return nil
	}
	return a.Attr(key, fmt.Sprintf("%d", value))
}

// End closes and records the span.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.span.DurNS = a.r.Now() - a.span.StartNS
	a.r.Record(a.span)
}

// PhaseTotal is one row of a per-phase time breakdown.
type PhaseTotal struct {
	Phase   string  `json:"phase"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Breakdown aggregates spans into per-phase totals, sorted by descending
// total time then name — the campaign-level answer to "where did the
// wall-clock go".
func Breakdown(ss []Span) []PhaseTotal {
	if len(ss) == 0 {
		return nil
	}
	idx := map[string]int{}
	var out []PhaseTotal
	for _, s := range ss {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, PhaseTotal{Phase: s.Name})
		}
		out[i].Count++
		out[i].TotalMS += float64(s.DurNS) / 1e6
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
