package spans

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 || r.Len() != 0 || r.Worker() != "" {
		t.Fatal("nil recorder leaked state")
	}
	sp := r.Start("t", "execute")
	if sp != nil {
		t.Fatal("nil recorder Start returned non-nil handle")
	}
	// The whole chain must be a no-op, not a panic.
	sp.Attr("k", "v").AttrInt("n", 1).End()
	r.Record(Span{TraceID: "t", Name: "x"})
	r.Import([]Span{{TraceID: "t", Name: "x"}}, 0)
	if got := r.Spans(); got != nil {
		t.Fatalf("nil recorder Spans = %v, want nil", got)
	}
}

func TestRecorderStartEnd(t *testing.T) {
	r := NewRecorder("w1")
	sp := r.Start("trace-a", "execute").Attr("source", "run").AttrInt("slices", 8)
	time.Sleep(time.Millisecond)
	sp.End()
	ss := r.Spans()
	if len(ss) != 1 {
		t.Fatalf("got %d spans, want 1", len(ss))
	}
	s := ss[0]
	if s.TraceID != "trace-a" || s.Name != "execute" || s.Worker != "w1" {
		t.Fatalf("bad span identity: %+v", s)
	}
	if s.StartNS < 0 || s.DurNS <= 0 {
		t.Fatalf("non-monotonic span times: start=%d dur=%d", s.StartNS, s.DurNS)
	}
	if s.Attrs["source"] != "run" || s.Attrs["slices"] != "8" {
		t.Fatalf("attrs not recorded: %v", s.Attrs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := r.Start("t", "phase")
				sp.Attr("k", "v")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("got %d spans, want 800", r.Len())
	}
}

// Clock-skew normalization: worker clocks offset by whole seconds in either
// direction must still assemble into non-negative, correctly nested spans.
func TestImportClockSkewNormalization(t *testing.T) {
	for _, offset := range []int64{0, 3e9, -3e9, -10e9} {
		coord := NewRecorder("coordinator")
		// A worker-local trace: a parent "execute" span containing a
		// nested "simulate" span, timestamps on the worker's own clock.
		worker := []Span{
			{TraceID: "j1", Name: "execute", Worker: "w1", StartNS: 1e9, DurNS: 5e9},
			{TraceID: "j1", Name: "simulate", Worker: "w1", StartNS: 2e9, DurNS: 3e9},
		}
		coord.Import(worker, offset)
		ss := coord.Spans()
		if len(ss) != 2 {
			t.Fatalf("offset %d: got %d spans, want 2", offset, len(ss))
		}
		var parent, child Span
		for _, s := range ss {
			switch s.Name {
			case "execute":
				parent = s
			case "simulate":
				child = s
			}
		}
		for _, s := range ss {
			if s.StartNS < 0 {
				t.Fatalf("offset %d: span %q starts before epoch: %d", offset, s.Name, s.StartNS)
			}
		}
		// Nesting must survive re-basing: child inside parent.
		if child.StartNS < parent.StartNS || child.End() > parent.End() {
			t.Fatalf("offset %d: nesting broken: parent [%d,%d] child [%d,%d]",
				offset, parent.StartNS, parent.End(), child.StartNS, child.End())
		}
		// Relative structure is preserved exactly (uniform shift).
		if child.StartNS-parent.StartNS != 1e9 {
			t.Fatalf("offset %d: relative offsets distorted: %d", offset, child.StartNS-parent.StartNS)
		}
	}
}

func TestImportFillsWorker(t *testing.T) {
	r := NewRecorder("coordinator")
	r.Import([]Span{{TraceID: "t", Name: "x", StartNS: 5}}, 0)
	if got := r.Spans()[0].Worker; got != "coordinator" {
		t.Fatalf("Worker = %q, want coordinator", got)
	}
}

func TestSpansDeterministicOrder(t *testing.T) {
	r := NewRecorder("w")
	r.Record(Span{TraceID: "b", Name: "n", StartNS: 10})
	r.Record(Span{TraceID: "a", Name: "n", StartNS: 10})
	r.Record(Span{TraceID: "c", Name: "n", StartNS: 5})
	got := r.Spans()
	want := []string{"c", "a", "b"}
	for i, s := range got {
		if s.TraceID != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestBreakdown(t *testing.T) {
	ss := []Span{
		{Name: "simulate", DurNS: 4e6},
		{Name: "simulate", DurNS: 6e6},
		{Name: "lookup.store", DurNS: 1e6},
	}
	b := Breakdown(ss)
	if len(b) != 2 {
		t.Fatalf("got %d phases, want 2", len(b))
	}
	if b[0].Phase != "simulate" || b[0].Count != 2 || b[0].TotalMS != 10 {
		t.Fatalf("simulate row = %+v", b[0])
	}
	if b[1].Phase != "lookup.store" || b[1].Count != 1 || b[1].TotalMS != 1 {
		t.Fatalf("lookup.store row = %+v", b[1])
	}
	if Breakdown(nil) != nil {
		t.Fatal("Breakdown(nil) != nil")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Span{
		{TraceID: "t1", Name: "execute", Worker: "w1", StartNS: 1, DurNS: 2, Attrs: map[string]string{"a": "b"}},
		{TraceID: "t2", Name: "lease", Worker: "coordinator", StartNS: 3, DurNS: 4},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

// Golden Chrome trace-event export: a fixed span set must serialize to this
// exact document. Guards the Perfetto-facing contract — event phase codes,
// microsecond timestamps, pid/tid mapping, metadata records.
func TestChromeTraceGolden(t *testing.T) {
	ss := []Span{
		{TraceID: "aabbccddeeff00112233", Name: "execute", Worker: "w1", StartNS: 1_500_000, DurNS: 2_000_000,
			Attrs: map[string]string{"source": "run"}},
		{TraceID: "aabbccddeeff00112233", Name: "sample.fastforward", Worker: "w1", StartNS: 1_600_000, DurNS: 500_000},
		{TraceID: "aabbccddeeff00112233", Name: "lease", Worker: "coordinator", StartNS: 1_000_000, DurNS: 3_000_000},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ss); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"coordinator"}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"w1"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":2,"tid":1,"args":{"name":"job aabbccddeeff"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"job aabbccddeeff"}},` +
		`{"name":"execute","cat":"execute","ph":"X","ts":1500,"dur":2000,"pid":2,"tid":1,"args":{"source":"run","trace_id":"aabbccddeeff00112233"}},` +
		`{"name":"sample.fastforward","cat":"sample","ph":"X","ts":1600,"dur":500,"pid":2,"tid":1,"args":{"trace_id":"aabbccddeeff00112233"}},` +
		`{"name":"lease","cat":"lease","ph":"X","ts":1000,"dur":3000,"pid":1,"tid":1,"args":{"trace_id":"aabbccddeeff00112233"}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", got, want)
	}
	// And it must be valid JSON of the expected shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
}

func TestWriteFileByExtension(t *testing.T) {
	dir := t.TempDir()
	ss := []Span{{TraceID: "t", Name: "execute", Worker: "w", StartNS: 1, DurNS: 2}}

	jp := filepath.Join(dir, "trace.jsonl")
	if err := WriteFile(jp, ss); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), `{"trace_id":"t"`) {
		t.Fatalf(".jsonl output is not JSONL: %q", b)
	}

	cp := filepath.Join(dir, "trace.json")
	if err := WriteFile(cp, ss); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"traceEvents"`) {
		t.Fatalf(".json output is not a Chrome trace: %q", b)
	}
}
