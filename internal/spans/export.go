package spans

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WriteJSONL emits one span per line as JSON, in the order given.
func WriteJSONL(w io.Writer, ss []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range ss {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses spans written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	var out []Span
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			return nil, fmt.Errorf("spans: malformed JSONL line %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
	return out, sc.Err()
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), loadable in Perfetto and chrome://tracing. Timestamps are
// microseconds; "X" is a complete event, "M" is metadata (process/thread
// names).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace emits the spans as a Chrome trace-event JSON document.
// Each worker becomes a process (pid) named after it, each trace id becomes
// a thread (tid) within its worker, and each span an "X" complete event
// carrying its attributes plus the full trace id in args. The mapping is
// deterministic for a given span set: pids by sorted worker name, tids by
// sorted trace id.
func WriteChromeTrace(w io.Writer, ss []Span) error {
	workers := map[string]int{}
	traces := map[string]int{}
	var workerNames, traceIDs []string
	for _, s := range ss {
		if _, ok := workers[s.Worker]; !ok {
			workers[s.Worker] = 0
			workerNames = append(workerNames, s.Worker)
		}
		if _, ok := traces[s.TraceID]; !ok {
			traces[s.TraceID] = 0
			traceIDs = append(traceIDs, s.TraceID)
		}
	}
	sort.Strings(workerNames)
	sort.Strings(traceIDs)
	for i, n := range workerNames {
		workers[n] = i + 1
	}
	for i, id := range traceIDs {
		traces[id] = i + 1
	}

	var ev []chromeEvent
	for _, n := range workerNames {
		name := n
		if name == "" {
			name = "(local)"
		}
		ev = append(ev, chromeEvent{
			Name: "process_name", Ph: "M", PID: workers[n],
			Args: map[string]string{"name": name},
		})
	}
	// Thread-name metadata is emitted per (worker, trace) pair actually
	// present, labelled with a readable prefix of the trace id.
	seen := map[[2]int]bool{}
	for _, s := range ss {
		pt := [2]int{workers[s.Worker], traces[s.TraceID]}
		if seen[pt] {
			continue
		}
		seen[pt] = true
		label := s.TraceID
		if len(label) > 12 {
			label = label[:12]
		}
		ev = append(ev, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pt[0], TID: pt[1],
			Args: map[string]string{"name": "job " + label},
		})
	}
	for _, s := range ss {
		args := map[string]string{"trace_id": s.TraceID}
		for k, v := range s.Attrs {
			args[k] = v
		}
		ev = append(ev, chromeEvent{
			Name: s.Name,
			Cat:  category(s.Name),
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  workers[s.Worker],
			TID:  traces[s.TraceID],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: ev, DisplayTimeUnit: "ms"})
}

// category is the span name's leading dot-scope ("lookup.store" → "lookup"),
// used as the Chrome event category so Perfetto can filter by phase family.
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// WriteFile writes the spans to path, choosing the format by extension:
// ".jsonl" gets one span per line, anything else the Chrome trace-event JSON
// document. The write is atomic (temp file + rename) so a crash mid-export
// never leaves a truncated trace.
func WriteFile(path string, ss []Span) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".trace-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var werr error
	if strings.EqualFold(filepath.Ext(path), ".jsonl") {
		werr = WriteJSONL(tmp, ss)
	} else {
		werr = WriteChromeTrace(tmp, ss)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	return os.Rename(tmp.Name(), path)
}
