package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"morrigan/internal/arch"
)

func TestIntervalSampleDeltas(t *testing.T) {
	p := NewProbe(Config{Interval: 1000})
	p.RecordSample(Sample{Instructions: 1000, Cycles: 2000, ISTLBMisses: 10, PBHits: 4})
	p.RecordSample(Sample{Instructions: 2000, Cycles: 5000, ISTLBMisses: 30, PBHits: 10})
	ss := p.Samples()
	if len(ss) != 2 {
		t.Fatalf("samples = %d, want 2", len(ss))
	}
	s1 := ss[1]
	if s1.DInstructions != 1000 || s1.DCycles != 3000 || s1.DISTLBMisses != 20 || s1.DPBHits != 6 {
		t.Fatalf("bad deltas: %+v", s1)
	}
	if s1.Seq != 1 || s1.Instructions != 2000 {
		t.Fatalf("bad position: %+v", s1)
	}
	if got, want := s1.IPC, 1000.0/3000.0; got != want {
		t.Fatalf("IPC = %v, want %v", got, want)
	}
	if got, want := s1.ISTLBMPKI, 20.0; got != want {
		t.Fatalf("ISTLBMPKI = %v, want %v", got, want)
	}
	if got, want := s1.PBHitRate, 6.0/20.0; got != want {
		t.Fatalf("PBHitRate = %v, want %v", got, want)
	}
}

func TestEmptyIntervalSkipped(t *testing.T) {
	p := NewProbe(Config{})
	p.RecordSample(Sample{Instructions: 500})
	p.RecordSample(Sample{Instructions: 500}) // no progress: skipped
	p.Finish(Sample{Instructions: 500})       // idempotent at the end too
	if n := len(p.Samples()); n != 1 {
		t.Fatalf("samples = %d, want 1", n)
	}
}

func TestPrefetchLifecycleCounters(t *testing.T) {
	p := NewProbe(Config{Interval: 100})
	p.PrefetchInstalled(0, 10, 50, 90)
	p.PrefetchInstalled(0, 11, 60, 95)
	p.PrefetchInstalled(1, 10, 60, 95)
	p.PrefetchUsed(0, 10, 80, false)
	p.PrefetchUsed(0, 11, 70, true)
	p.PrefetchEvicted(1, 10, 95)
	p.RecordSample(Sample{Instructions: 100})
	s := p.Samples()[0]
	if s.DPrefInstalled != 3 || s.DPrefUsed != 2 || s.DPrefLate != 1 || s.DPrefEvicted != 1 {
		t.Fatalf("lifecycle deltas: %+v", s)
	}
	// Use distances: 80-50=30 and 70-60=10 observed.
	h := p.Histograms()[2]
	if h.Name() != "prefetch_to_use_distance" || h.Total() != 2 || h.Max() != 30 {
		t.Fatalf("distance histogram: total=%d max=%d", h.Total(), h.Max())
	}
	if len(p.pending) != 0 {
		t.Fatalf("pending map not drained: %d", len(p.pending))
	}
}

func TestEventRingOverwrite(t *testing.T) {
	p := NewProbe(Config{EventBuffer: 4})
	for i := 0; i < 10; i++ {
		p.PrefetchIssued(0, 100, 0)
	}
	events, overwritten := p.Events()
	if len(events) != 4 || overwritten != 6 {
		t.Fatalf("events=%d overwritten=%d", len(events), overwritten)
	}
	// Ordering: oldest first after wraparound.
	p3 := NewProbe(Config{EventBuffer: 3})
	for c := 1; c <= 5; c++ {
		p3.WalkDropped(0, 0, arch.Cycle(c))
	}
	ev, _ := p3.Events()
	if ev[0].Cycle != 3 || ev[2].Cycle != 5 {
		t.Fatalf("ring order: %+v", ev)
	}
}

func TestEventTracingDisabled(t *testing.T) {
	p := NewProbe(Config{EventBuffer: -1})
	p.PrefetchIssued(0, 1, 2)
	if ev, _ := p.Events(); ev != nil {
		t.Fatalf("events recorded while disabled: %v", ev)
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram("x")
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	b := h.Buckets()
	// 0→bucket0; 1→b1; 2,3→b2; 4,7→b3; 8→b4; 1000→b10.
	want := []uint64{1, 1, 2, 2, 1, 0, 0, 0, 0, 0, 1}
	if len(b) != len(want) {
		t.Fatalf("buckets = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, b[i], want[i], b)
		}
	}
	if h.Total() != 8 || h.Max() != 1000 {
		t.Fatalf("total=%d max=%d", h.Total(), h.Max())
	}
	if got, want := h.Mean(), float64(0+1+2+3+4+7+8+1000)/8; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if q := h.Quantile(0.5); q != 3 { // 4th of 8 obs is the value 3, bucket 2
		t.Fatalf("p50 = %d", q)
	}
	if q := h.Quantile(1); q != BucketUpper(10) {
		t.Fatalf("p100 = %d", q)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := NewProbe(Config{Interval: 10, EventBuffer: 8})
	p.PrefetchInstalled(0, 1, 2, 3)
	p.WalkObserved(0, 1, true, 70, 100)
	p.RecordSample(Sample{Instructions: 10})
	p.Reset()
	if len(p.Samples()) != 0 {
		t.Fatal("samples survived reset")
	}
	if ev, over := p.Events(); len(ev) != 0 || over != 0 {
		t.Fatal("events survived reset")
	}
	for _, h := range p.Histograms() {
		if h.Total() != 0 {
			t.Fatalf("%s survived reset", h.Name())
		}
	}
	if len(p.pending) != 0 {
		t.Fatal("pending survived reset")
	}
}

func TestWriteAndParseJSONL(t *testing.T) {
	p := NewProbe(Config{Interval: 100, EventBuffer: 16})
	p.WalkObserved(0, 5, true, 70, 50)
	p.PrefetchInstalled(0, 6, 60, 100)
	p.PrefetchUsed(0, 6, 120, false)
	p.RecordSample(Sample{Instructions: 100, Cycles: 150, ISTLBMisses: 2, PBHits: 1})
	p.Finish(Sample{Instructions: 130, Cycles: 200, ISTLBMisses: 3, PBHits: 2})

	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, l := range lines {
		counts[l["kind"].(string)]++
	}
	if counts[KindHeader] != 1 || counts[KindSummary] != 1 {
		t.Fatalf("line kinds: %v", counts)
	}
	if counts[KindSample] != 2 {
		t.Fatalf("samples = %d, want 2", counts[KindSample])
	}
	if counts[KindEvent] != 3 {
		t.Fatalf("events = %d, want 3", counts[KindEvent])
	}
	if counts[KindHist] != 3 {
		t.Fatalf("hists = %d, want 3", counts[KindHist])
	}
}

func TestParseJSONLRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"not json":   "hello\n",
		"no header":  `{"kind":"sample","seq":0}` + "\n" + `{"kind":"summary"}` + "\n",
		"bad schema": `{"kind":"header","schema":99}` + "\n" + `{"kind":"summary"}` + "\n",
		"truncated":  `{"kind":"header","schema":1}` + "\n" + `{"kind":"sample","seq":0}` + "\n",
		"no kind":    `{"kind":"header","schema":1}` + "\n" + `{"x":1}` + "\n",
	}
	for name, in := range cases {
		if _, err := ParseJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPendingMapBounded(t *testing.T) {
	p := NewProbe(Config{EventBuffer: -1})
	for i := 0; i < maxPending+100; i++ {
		p.PrefetchInstalled(0, arch.VPN(i+1), 0, 0)
	}
	if len(p.pending) != maxPending {
		t.Fatalf("pending = %d, want %d", len(p.pending), maxPending)
	}
	if p.untracked != 100 {
		t.Fatalf("untracked = %d, want 100", p.untracked)
	}
}
