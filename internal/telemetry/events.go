package telemetry

import "morrigan/internal/arch"

// EventKind classifies one trace event.
type EventKind uint8

// Event kinds: the prefetch lifecycle (issue → install → use/evict, with the
// discard and late variants) and page walks.
const (
	// EvPrefetchIssued: the prefetcher produced a request.
	EvPrefetchIssued EventKind = iota
	// EvPrefetchDiscarded: the request was deduplicated against the PB/STLB.
	EvPrefetchDiscarded
	// EvPrefetchInstalled: the prefetched translation entered the PB; Lat is
	// the walk's remaining latency at install time.
	EvPrefetchInstalled
	// EvPrefetchUsed: a PB entry serviced an iSTLB miss; Lat is the
	// issue-to-use distance in cycles when known.
	EvPrefetchUsed
	// EvPrefetchLate: as EvPrefetchUsed, but the producing walk had not yet
	// completed — the miss waited out the remainder.
	EvPrefetchLate
	// EvPrefetchEvicted: a PB entry was displaced without servicing a miss.
	EvPrefetchEvicted
	// EvWalkDemand: a demand page walk completed; Lat is its latency.
	EvWalkDemand
	// EvWalkPrefetch: a prefetch page walk completed; Lat is its latency.
	EvWalkPrefetch
	// EvWalkDropped: a prefetch walk was dropped for lack of walker MSHRs.
	EvWalkDropped

	numEventKinds
)

// eventKindNames are the JSONL "type" strings, indexed by EventKind.
var eventKindNames = [numEventKinds]string{
	"prefetch_issued",
	"prefetch_discarded",
	"prefetch_installed",
	"prefetch_used",
	"prefetch_late",
	"prefetch_evicted",
	"walk_demand",
	"walk_prefetch",
	"walk_dropped",
}

// String names the kind as it appears in JSONL output.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "invalid"
}

// Event is one traced occurrence, stamped with the simulation cycle.
type Event struct {
	// Cycle is the simulation time of the event.
	Cycle arch.Cycle
	// Kind classifies the event.
	Kind EventKind
	// TID and VPN identify the translation involved.
	TID arch.ThreadID
	VPN arch.VPN
	// Lat carries the kind-specific latency/distance (see the kind docs);
	// zero when not applicable.
	Lat arch.Cycle
}

// eventRing is a fixed-capacity overwrite-oldest buffer. Keeping the trailing
// window bounds probe memory regardless of run length; the overwritten count
// tells the reader how much history was lost.
type eventRing struct {
	buf   []Event
	next  int    // index the next event is written at
	total uint64 // events ever pushed
}

func newEventRing(capacity int) *eventRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &eventRing{buf: make([]Event, 0, capacity)}
}

func (r *eventRing) push(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

func (r *eventRing) reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
}

// overwritten reports how many events were lost to ring wraparound.
func (r *eventRing) overwritten() uint64 {
	return r.total - uint64(len(r.buf))
}

// snapshot returns the buffered events oldest-first.
func (r *eventRing) snapshot() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}
