package telemetry

import "math/bits"

// LogHistogram is a power-of-two-bucketed histogram for wide-range cycle
// counts (walk latencies, prefetch-to-use distances). Bucket 0 holds the
// value 0; bucket i (i ≥ 1) holds values in [2^(i-1), 2^i). Fixed bucket
// boundaries keep the histogram O(1) per observation and mergeable across
// runs.
type LogHistogram struct {
	name   string
	counts [65]uint64 // bits.Len64 of a uint64 is at most 64
	total  uint64
	sum    uint64
	max    uint64
}

// NewLogHistogram returns an empty histogram with the given JSONL name.
func NewLogHistogram(name string) *LogHistogram {
	return &LogHistogram{name: name}
}

// Name returns the histogram's identifier in emitted output.
func (h *LogHistogram) Name() string { return h.name }

// Observe records one value.
func (h *LogHistogram) Observe(v uint64) {
	h.counts[bits.Len64(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Reset clears all counts.
func (h *LogHistogram) Reset() {
	h.counts = [65]uint64{}
	h.total, h.sum, h.max = 0, 0, 0
}

// Total returns the number of observations.
func (h *LogHistogram) Total() uint64 { return h.total }

// Max returns the largest observed value (0 when empty).
func (h *LogHistogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Buckets returns the per-bucket counts with trailing zero buckets trimmed.
func (h *LogHistogram) Buckets() []uint64 {
	last := -1
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	out := make([]uint64, last+1)
	copy(out, h.counts[:last+1])
	return out
}

// BucketUpper returns the inclusive upper bound of bucket i (the largest
// value that lands in it): 0 for bucket 0, 2^i − 1 otherwise.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// observation (0 ≤ q ≤ 1), a conservative (over-)estimate of the true
// quantile given log2 resolution. Returns 0 when empty.
func (h *LogHistogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= target && cum > 0 {
			return BucketUpper(i)
		}
	}
	return h.max
}
