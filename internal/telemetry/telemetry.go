// Package telemetry is the simulator's observability layer: interval
// time-series sampling of live counters, a bounded ring-buffered event trace
// of the prefetch lifecycle and page walks, and log2-bucketed latency
// histograms, all emitted as schema-versioned JSON Lines.
//
// The simulator reports only end-of-run aggregates on its own; a Probe
// attached through sim.Config.Probe additionally records *when* things
// happened — how IPC and MPKI evolve as a prefetcher warms up, why a
// prefetched translation went unused, how page-walk latency is distributed —
// without perturbing the simulation: every hook is observational, so a run
// with a probe attached produces bit-identical Stats to one without.
//
// A Probe is owned by exactly one simulation (one goroutine); it is not safe
// for concurrent use. The campaign orchestrator (internal/runner) creates one
// probe per job and writes one JSONL file per job next to the campaign's
// JSON/CSV results.
package telemetry

import (
	"sync/atomic"

	"morrigan/internal/arch"
)

// DefaultInterval is the sampling period, in retired instructions, used when
// Config.Interval is zero.
const DefaultInterval = 100_000

// DefaultEventBuffer is the event-ring capacity used when Config.EventBuffer
// is zero.
const DefaultEventBuffer = 4096

// Config parameterises a Probe.
type Config struct {
	// Interval is the time-series sampling period in retired instructions;
	// 0 means DefaultInterval.
	Interval uint64
	// EventBuffer is the event-trace ring capacity; 0 means
	// DefaultEventBuffer, negative disables event tracing entirely. When the
	// ring is full the oldest events are overwritten (the emitted trace is
	// the trailing window) and the overwritten count is reported.
	EventBuffer int
}

// DefaultConfig returns the default probe parameters.
func DefaultConfig() Config {
	return Config{Interval: DefaultInterval, EventBuffer: DefaultEventBuffer}
}

// interval resolves the effective sampling period.
func (c Config) interval() uint64 {
	if c.Interval == 0 {
		return DefaultInterval
	}
	return c.Interval
}

// Sample is a snapshot of the simulator's cumulative counters at one point in
// simulated time. The simulator fills one at every sampling boundary; the
// probe differences consecutive snapshots into IntervalSamples, so the
// emitted per-interval deltas sum exactly to the end-of-run aggregates.
type Sample struct {
	Instructions  uint64
	Cycles        arch.Cycle
	L1IMisses     uint64
	ITLBMisses    uint64
	ISTLBAccesses uint64
	ISTLBMisses   uint64
	// DSTLBAccesses and DSTLBMisses are carried for cross-goroutine
	// observers (the observability server's dSTLB MPKI gauge); they are not
	// differenced into IntervalSamples, so the JSONL schema is unchanged.
	DSTLBAccesses uint64
	DSTLBMisses   uint64
	PBHits        uint64
	PrefIssued    uint64
	PrefDiscarded uint64
	PrefWalks     uint64
	DemandIWalks  uint64
	DemandDWalks  uint64
	DroppedWalks  uint64
}

// IntervalSample is one emitted time-series point: the counter deltas over
// one sampling interval plus the rates derived from them. JSON field names
// are the schema; see DESIGN.md "Telemetry".
type IntervalSample struct {
	// Seq numbers samples from 0 within the measurement interval.
	Seq int `json:"seq"`
	// Instructions is the cumulative retired-instruction count at the end of
	// this interval (the sample's position on the time axis).
	Instructions uint64 `json:"instructions"`

	// Deltas over the interval.
	DInstructions  uint64 `json:"d_instructions"`
	DCycles        uint64 `json:"d_cycles"`
	DL1IMisses     uint64 `json:"d_l1i_misses"`
	DITLBMisses    uint64 `json:"d_itlb_misses"`
	DISTLBAccesses uint64 `json:"d_istlb_accesses"`
	DISTLBMisses   uint64 `json:"d_istlb_misses"`
	DPBHits        uint64 `json:"d_pb_hits"`
	DPrefIssued    uint64 `json:"d_prefetch_issued"`
	DPrefDiscarded uint64 `json:"d_prefetch_discarded"`
	DPrefInstalled uint64 `json:"d_prefetch_installed"`
	DPrefUsed      uint64 `json:"d_prefetch_used"`
	DPrefLate      uint64 `json:"d_prefetch_late"`
	DPrefEvicted   uint64 `json:"d_prefetch_evicted"`
	DPrefWalks     uint64 `json:"d_prefetch_walks"`
	DDemandIWalks  uint64 `json:"d_demand_iwalks"`
	DDemandDWalks  uint64 `json:"d_demand_dwalks"`
	DDroppedWalks  uint64 `json:"d_dropped_walks"`

	// Rates derived from the interval's deltas.
	IPC       float64 `json:"ipc"`
	L1IMPKI   float64 `json:"l1i_mpki"`
	ITLBMPKI  float64 `json:"itlb_mpki"`
	ISTLBMPKI float64 `json:"istlb_mpki"`
	// PBHitRate is the fraction of the interval's iSTLB misses served by the
	// prefetch buffer.
	PBHitRate float64 `json:"pb_hit_rate"`
}

// prefCounters are the lifecycle tallies the probe derives from its own
// hooks (the simulator's counters do not distinguish them all).
type prefCounters struct {
	installed, used, late, evicted uint64
}

// pendingKey identifies an in-flight prefetched translation.
type pendingKey struct {
	tid arch.ThreadID
	vpn arch.VPN
}

// maxPending bounds the issue-time map used for the prefetch-to-use distance
// histogram; beyond it new prefetches are not tracked (counted as untracked)
// so a pathological workload cannot grow the probe without bound.
const maxPending = 1 << 14

// Probe collects telemetry for one simulation. The zero value is not usable;
// construct with NewProbe. All methods are single-goroutine.
type Probe struct {
	cfg      Config
	interval uint64

	base    Sample
	prev    prefCounters
	cur     prefCounters
	samples []IntervalSample

	ring *eventRing

	demandWalkLat   *LogHistogram
	prefetchWalkLat *LogHistogram
	useDistance     *LogHistogram

	pending   map[pendingKey]arch.Cycle
	untracked uint64

	// published is the cross-goroutine snapshot cell (see snapshot.go);
	// listener, when set, observes every recorded interval sample.
	published atomic.Pointer[Snapshot]
	listener  func(IntervalSample)
}

// NewProbe builds a probe from cfg.
func NewProbe(cfg Config) *Probe {
	p := &Probe{
		cfg:             cfg,
		interval:        cfg.interval(),
		demandWalkLat:   NewLogHistogram("demand_walk_latency"),
		prefetchWalkLat: NewLogHistogram("prefetch_walk_latency"),
		useDistance:     NewLogHistogram("prefetch_to_use_distance"),
		pending:         make(map[pendingKey]arch.Cycle),
	}
	if cap := cfg.EventBuffer; cap >= 0 {
		if cap == 0 {
			cap = DefaultEventBuffer
		}
		p.ring = newEventRing(cap)
	}
	return p
}

// Interval returns the effective sampling period in instructions.
func (p *Probe) Interval() uint64 { return p.interval }

// Reset clears everything collected so far; the simulator calls it at the
// warmup/measure boundary so the emitted series covers exactly the
// measurement interval.
func (p *Probe) Reset() {
	p.base = Sample{}
	p.prev, p.cur = prefCounters{}, prefCounters{}
	p.samples = p.samples[:0]
	if p.ring != nil {
		p.ring.reset()
	}
	p.demandWalkLat.Reset()
	p.prefetchWalkLat.Reset()
	p.useDistance.Reset()
	for k := range p.pending {
		delete(p.pending, k)
	}
	p.untracked = 0
	p.resetPublished()
}

// RecordSample closes one sampling interval: cum holds the simulator's
// cumulative counters at the boundary. Empty intervals (no instructions
// retired since the previous boundary) are skipped.
func (p *Probe) RecordSample(cum Sample) {
	d := IntervalSample{
		Seq:          len(p.samples),
		Instructions: cum.Instructions,

		DInstructions:  cum.Instructions - p.base.Instructions,
		DCycles:        uint64(cum.Cycles - p.base.Cycles),
		DL1IMisses:     cum.L1IMisses - p.base.L1IMisses,
		DITLBMisses:    cum.ITLBMisses - p.base.ITLBMisses,
		DISTLBAccesses: cum.ISTLBAccesses - p.base.ISTLBAccesses,
		DISTLBMisses:   cum.ISTLBMisses - p.base.ISTLBMisses,
		DPBHits:        cum.PBHits - p.base.PBHits,
		DPrefIssued:    cum.PrefIssued - p.base.PrefIssued,
		DPrefDiscarded: cum.PrefDiscarded - p.base.PrefDiscarded,
		DPrefInstalled: p.cur.installed - p.prev.installed,
		DPrefUsed:      p.cur.used - p.prev.used,
		DPrefLate:      p.cur.late - p.prev.late,
		DPrefEvicted:   p.cur.evicted - p.prev.evicted,
		DPrefWalks:     cum.PrefWalks - p.base.PrefWalks,
		DDemandIWalks:  cum.DemandIWalks - p.base.DemandIWalks,
		DDemandDWalks:  cum.DemandDWalks - p.base.DemandDWalks,
		DDroppedWalks:  cum.DroppedWalks - p.base.DroppedWalks,
	}
	if d.DInstructions == 0 {
		return
	}
	if d.DCycles > 0 {
		d.IPC = float64(d.DInstructions) / float64(d.DCycles)
	}
	ki := float64(d.DInstructions) / 1000
	d.L1IMPKI = float64(d.DL1IMisses) / ki
	d.ITLBMPKI = float64(d.DITLBMisses) / ki
	d.ISTLBMPKI = float64(d.DISTLBMisses) / ki
	if d.DISTLBMisses > 0 {
		d.PBHitRate = float64(d.DPBHits) / float64(d.DISTLBMisses)
	}
	p.samples = append(p.samples, d)
	p.base = cum
	p.prev = p.cur
	p.publish(cum, d)
}

// Finish closes the trailing partial interval at the end of measurement.
func (p *Probe) Finish(cum Sample) { p.RecordSample(cum) }

// Samples returns the recorded interval samples.
func (p *Probe) Samples() []IntervalSample { return p.samples }

// WalkObserved records one completed page walk: its latency histogram bucket
// and, when event tracing is on, a trace event. Called by the page table
// walker for every walk it performs.
func (p *Probe) WalkObserved(tid arch.ThreadID, vpn arch.VPN, demand bool, lat arch.Cycle, now arch.Cycle) {
	kind := EvWalkPrefetch
	if demand {
		kind = EvWalkDemand
		p.demandWalkLat.Observe(uint64(lat))
	} else {
		p.prefetchWalkLat.Observe(uint64(lat))
	}
	p.emit(Event{Cycle: now, Kind: kind, TID: tid, VPN: vpn, Lat: lat})
}

// WalkDropped records a prefetch walk dropped for lack of walker MSHRs.
func (p *Probe) WalkDropped(tid arch.ThreadID, vpn arch.VPN, now arch.Cycle) {
	p.emit(Event{Cycle: now, Kind: EvWalkDropped, TID: tid, VPN: vpn})
}

// PrefetchIssued records one prefetch request leaving the prefetcher.
func (p *Probe) PrefetchIssued(tid arch.ThreadID, vpn arch.VPN, now arch.Cycle) {
	p.emit(Event{Cycle: now, Kind: EvPrefetchIssued, TID: tid, VPN: vpn})
}

// PrefetchDiscarded records a prefetch deduplicated against the PB/STLB.
func (p *Probe) PrefetchDiscarded(tid arch.ThreadID, vpn arch.VPN, now arch.Cycle) {
	p.emit(Event{Cycle: now, Kind: EvPrefetchDiscarded, TID: tid, VPN: vpn})
}

// PrefetchInstalled records a prefetched translation entering the PB (or the
// STLB under P2TLB). issued is the cycle the producing request was issued;
// ready is when its page walk completes.
func (p *Probe) PrefetchInstalled(tid arch.ThreadID, vpn arch.VPN, issued, ready arch.Cycle) {
	p.cur.installed++
	if len(p.pending) < maxPending {
		p.pending[pendingKey{tid, vpn}] = issued
	} else {
		p.untracked++
	}
	p.emit(Event{Cycle: issued, Kind: EvPrefetchInstalled, TID: tid, VPN: vpn, Lat: ready - issued})
}

// PrefetchUsed records a PB entry servicing an iSTLB miss. late reports that
// the producing walk had not yet completed (the miss waited out the
// remainder). The prefetch-to-use distance histogram gets the cycles from
// issue to use when the issue time is known.
func (p *Probe) PrefetchUsed(tid arch.ThreadID, vpn arch.VPN, now arch.Cycle, late bool) {
	p.cur.used++
	kind := EvPrefetchUsed
	if late {
		p.cur.late++
		kind = EvPrefetchLate
	}
	var dist arch.Cycle
	if issued, ok := p.pending[pendingKey{tid, vpn}]; ok {
		dist = now - issued
		p.useDistance.Observe(uint64(dist))
		delete(p.pending, pendingKey{tid, vpn})
	}
	p.emit(Event{Cycle: now, Kind: kind, TID: tid, VPN: vpn, Lat: dist})
}

// PrefetchEvicted records a PB entry displaced without ever servicing a miss
// (a useless prefetch). at is the entry's walk-completion cycle — the PB has
// no clock of its own.
func (p *Probe) PrefetchEvicted(tid arch.ThreadID, vpn arch.VPN, at arch.Cycle) {
	p.cur.evicted++
	delete(p.pending, pendingKey{tid, vpn})
	p.emit(Event{Cycle: at, Kind: EvPrefetchEvicted, TID: tid, VPN: vpn})
}

// emit appends to the event ring when tracing is enabled.
func (p *Probe) emit(e Event) {
	if p.ring != nil {
		p.ring.push(e)
	}
}

// Events returns the traced events, oldest first, and how many older events
// were overwritten once the ring filled.
func (p *Probe) Events() (events []Event, overwritten uint64) {
	if p.ring == nil {
		return nil, 0
	}
	return p.ring.snapshot(), p.ring.overwritten()
}

// Histograms returns the probe's histograms (demand walk latency, prefetch
// walk latency, prefetch-to-use distance).
func (p *Probe) Histograms() []*LogHistogram {
	return []*LogHistogram{p.demandWalkLat, p.prefetchWalkLat, p.useDistance}
}
