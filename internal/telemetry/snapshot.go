package telemetry

// Snapshot is a cross-goroutine view of a live probe, published atomically at
// every closed sampling interval. It is the scrape surface the observability
// server (internal/obs) reads while the simulation keeps running: the probe
// itself is single-goroutine, but a Snapshot, once obtained, is an immutable
// value safe to use from anywhere.
type Snapshot struct {
	// Cum holds the simulator's cumulative counters at the most recently
	// closed interval boundary.
	Cum Sample
	// Seq is the number of interval samples recorded so far.
	Seq int
	// Last is the most recent interval sample (zero when Seq is 0).
	Last IntervalSample
}

// IPC returns cumulative instructions per cycle.
func (s Snapshot) IPC() float64 {
	if s.Cum.Cycles == 0 {
		return 0
	}
	return float64(s.Cum.Instructions) / float64(s.Cum.Cycles)
}

// ISTLBMPKI returns the cumulative iSTLB misses per kilo-instruction.
func (s Snapshot) ISTLBMPKI() float64 { return mpki(s.Cum.ISTLBMisses, s.Cum.Instructions) }

// DSTLBMPKI returns the cumulative dSTLB misses per kilo-instruction.
func (s Snapshot) DSTLBMPKI() float64 { return mpki(s.Cum.DSTLBMisses, s.Cum.Instructions) }

// PBHitRate returns the cumulative fraction of iSTLB misses served by the
// prefetch buffer.
func (s Snapshot) PBHitRate() float64 {
	if s.Cum.ISTLBMisses == 0 {
		return 0
	}
	return float64(s.Cum.PBHits) / float64(s.Cum.ISTLBMisses)
}

// mpki is misses per kilo-instruction, zero-guarded.
func mpki(misses, instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(misses) / (float64(instr) / 1000)
}

// Snapshot returns the most recently published cross-goroutine view, and
// whether any interval has closed yet. Unlike every other Probe method it is
// safe to call from any goroutine.
func (p *Probe) Snapshot() (Snapshot, bool) {
	s := p.published.Load()
	if s == nil {
		return Snapshot{}, false
	}
	return *s, true
}

// SetSampleListener registers fn to be called (on the simulation goroutine)
// after every interval sample is recorded. It must be set before the
// simulation starts and must be fast and non-blocking — it runs on the
// simulator's hot path, once per sampling interval. A nil fn removes the
// listener.
func (p *Probe) SetSampleListener(fn func(IntervalSample)) { p.listener = fn }

// publish refreshes the atomic snapshot and notifies the listener. Called by
// RecordSample with the interval just appended.
func (p *Probe) publish(cum Sample, last IntervalSample) {
	p.published.Store(&Snapshot{Cum: cum, Seq: len(p.samples), Last: last})
	if p.listener != nil {
		p.listener(last)
	}
}

// resetPublished clears the published snapshot (warmup/measure boundary).
func (p *Probe) resetPublished() {
	p.published.Store(nil)
}
