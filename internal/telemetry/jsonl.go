package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the telemetry JSONL schema. Every emitted file
// starts with a header line carrying it; it is bumped on incompatible shape
// changes so trajectory-tracking consumers can detect mismatches.
const SchemaVersion = 1

// Line kinds in emitted JSONL, in file order: one header, then samples,
// events, histograms, and one summary.
const (
	KindHeader  = "header"
	KindSample  = "sample"
	KindEvent   = "event"
	KindHist    = "hist"
	KindSummary = "summary"
)

// headerLine is the first line of every telemetry file.
type headerLine struct {
	Kind     string `json:"kind"`
	Schema   int    `json:"schema"`
	Interval uint64 `json:"interval"`
	// EventCapacity is the event-ring size; -1 when event tracing is off.
	EventCapacity int `json:"event_capacity"`
}

// sampleLine wraps an IntervalSample with its kind tag.
type sampleLine struct {
	Kind string `json:"kind"`
	IntervalSample
}

// eventLine is one trace event in JSONL form.
type eventLine struct {
	Kind  string `json:"kind"`
	Cycle uint64 `json:"cycle"`
	Type  string `json:"type"`
	TID   uint8  `json:"tid"`
	VPN   uint64 `json:"vpn"`
	Lat   uint64 `json:"lat,omitempty"`
}

// histLine is one histogram in JSONL form. Buckets are log2: bucket 0 holds
// the value 0, bucket i holds [2^(i-1), 2^i).
type histLine struct {
	Kind    string   `json:"kind"`
	Name    string   `json:"name"`
	Total   uint64   `json:"total"`
	Mean    float64  `json:"mean"`
	Max     uint64   `json:"max"`
	P50     uint64   `json:"p50"`
	P99     uint64   `json:"p99"`
	Buckets []uint64 `json:"buckets"`
}

// summaryLine closes the file with collection totals.
type summaryLine struct {
	Kind    string `json:"kind"`
	Samples int    `json:"samples"`
	Events  int    `json:"events"`
	// EventsOverwritten counts events lost to ring wraparound (the trace is
	// the trailing window when non-zero).
	EventsOverwritten uint64 `json:"events_overwritten"`
	// UntrackedPrefetches counts prefetches whose issue time was not
	// recorded because the in-flight map was at capacity; their use
	// distances are missing from the prefetch_to_use_distance histogram.
	UntrackedPrefetches uint64 `json:"untracked_prefetches,omitempty"`
}

// WriteJSONL emits everything the probe collected as JSON Lines: a header,
// the interval samples, the traced events (oldest first), the histograms,
// and a summary.
func (p *Probe) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs

	evCap := -1
	if p.ring != nil {
		evCap = cap(p.ring.buf)
	}
	if err := enc.Encode(headerLine{
		Kind: KindHeader, Schema: SchemaVersion,
		Interval: p.interval, EventCapacity: evCap,
	}); err != nil {
		return err
	}
	for i := range p.samples {
		if err := enc.Encode(sampleLine{Kind: KindSample, IntervalSample: p.samples[i]}); err != nil {
			return err
		}
	}
	events, overwritten := p.Events()
	for _, e := range events {
		if err := enc.Encode(eventLine{
			Kind: KindEvent, Cycle: uint64(e.Cycle), Type: e.Kind.String(),
			TID: uint8(e.TID), VPN: uint64(e.VPN), Lat: uint64(e.Lat),
		}); err != nil {
			return err
		}
	}
	for _, h := range p.Histograms() {
		if err := enc.Encode(histLine{
			Kind: KindHist, Name: h.Name(),
			Total: h.Total(), Mean: h.Mean(), Max: h.Max(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
			Buckets: h.Buckets(),
		}); err != nil {
			return err
		}
	}
	if err := enc.Encode(summaryLine{
		Kind: KindSummary, Samples: len(p.samples),
		Events: len(events), EventsOverwritten: overwritten,
		UntrackedPrefetches: p.untracked,
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ParseJSONL decodes and validates a telemetry file: every line must be a
// JSON object with a "kind", the first line must be a header carrying a
// known schema version, and the last a summary. It returns the decoded
// lines for further inspection.
func ParseJSONL(r io.Reader) ([]map[string]any, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var lines []map[string]any
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", len(lines)+1, err)
		}
		kind, _ := m["kind"].(string)
		if kind == "" {
			return nil, fmt.Errorf("telemetry: line %d: missing kind", len(lines)+1)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("telemetry: empty file")
	}
	if lines[0]["kind"] != KindHeader {
		return nil, fmt.Errorf("telemetry: first line is %q, want header", lines[0]["kind"])
	}
	if v, ok := lines[0]["schema"].(float64); !ok || int(v) != SchemaVersion {
		return nil, fmt.Errorf("telemetry: schema %v, want %d", lines[0]["schema"], SchemaVersion)
	}
	if lines[len(lines)-1]["kind"] != KindSummary {
		return nil, fmt.Errorf("telemetry: last line is %q, want summary (truncated file?)", lines[len(lines)-1]["kind"])
	}
	return lines, nil
}
