package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"morrigan/internal/runner"
	"morrigan/internal/sim"
)

// TestFabricDrainWaitsForOutstandingLeases pins the graceful-shutdown
// contract: Drain stops granting leases immediately, but blocks until every
// already-granted lease resolves (by submit or expiry), so no worker's
// in-flight simulation is thrown away.
func TestFabricDrainWaitsForOutstandingLeases(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	defer coord.Close()

	jobs := fabricJobs(2)
	key, ok := jobs[0].Key()
	if !ok {
		t.Fatal("test job has no key")
	}
	resCh := make(chan runner.Result, 1)
	go func() {
		res, err := coord.ExecuteRemote(context.Background(), jobs[0], key)
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()

	// A worker leases the job before the drain begins.
	var l leaseResponse
	for {
		status := postJSON(t, srv.URL+"/fabric/lease", leaseRequest{Worker: "w1", WaitMS: 1000}, &l)
		if status == http.StatusOK {
			break
		}
		if status != http.StatusNoContent {
			t.Fatalf("lease status %d", status)
		}
	}

	// Drain must not return while that lease is outstanding.
	drained := make(chan error, 1)
	go func() { drained <- coord.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("drain returned with a lease outstanding (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	// In-flight submissions are still accepted while draining, but no new
	// lease is granted for them.
	key2, _ := jobs[1].Key()
	go func() {
		_, _ = coord.ExecuteRemote(context.Background(), jobs[1], key2) // unblocked by Close
	}()
	time.Sleep(50 * time.Millisecond) // let the second job enqueue
	var l2 leaseResponse
	if status := postJSON(t, srv.URL+"/fabric/lease", leaseRequest{Worker: "w2", WaitMS: 1}, &l2); status != http.StatusNoContent {
		t.Errorf("lease during drain: status %d, want 204 (no job granted)", status)
	}

	// A bounded Drain gives up with an error rather than hanging forever.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := coord.Drain(expired); err == nil {
		t.Error("drain with an expired context returned nil, want an error naming the outstanding lease")
	}

	// The worker submits its result: the lease resolves and the original
	// drain completes cleanly.
	win := wireResult{Stats: sim.Stats{Instructions: 7}, SimInstructions: 7}
	var sub submitResponse
	if status := postJSON(t, srv.URL+"/fabric/submit", submitRequest{Worker: "w1", LeaseID: l.LeaseID, Key: key, Result: win}, &sub); status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not complete after the last lease resolved")
	}
	res := <-resCh
	if res.Err != nil || res.Stats.Instructions != 7 {
		t.Fatalf("campaign received %+v, want the drained worker's stats", res)
	}
}
