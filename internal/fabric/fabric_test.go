package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"morrigan/internal/machine"
	"morrigan/internal/resultstore"
	"morrigan/internal/runner"
	"morrigan/internal/sim"
	"morrigan/internal/tracestore"
	"morrigan/internal/workloads"
)

// fabricJobs builds n keyed jobs with distinct canonical keys (the measure
// window varies) at a scale small enough for test campaigns.
func fabricJobs(n int) []runner.Job {
	qmm := workloads.QMM()
	jobs := make([]runner.Job, n)
	for i := range jobs {
		spec := qmm[i%len(qmm)]
		jobs[i] = runner.Job{
			Experiment: "fabrictest",
			Config:     fmt.Sprintf("cfg%d", i),
			Workload:   spec.Name,
			Machine:    machine.Default(),
			Workloads:  []workloads.Spec{spec},
			Warmup:     5_000,
			Measure:    uint64(20_000 + 1_000*i),
		}
	}
	return jobs
}

// startFabric mounts a coordinator on an httptest server and launches workers
// against it. The returned stop function cancels the workers and waits for
// their clean exit before the server and coordinator shut down.
func startFabric(t *testing.T, coord *Coordinator, workers ...*Worker) (base string, stop func()) {
	t.Helper()
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, w := range workers {
		w.base = srv.URL
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker run: %v", err)
			}
		}(w)
	}
	return srv.URL, func() {
		cancel()
		wg.Wait()
		srv.Close()
		coord.Close()
	}
}

func newTestWorker(t *testing.T, name string, opt WorkerOptions) *Worker {
	t.Helper()
	opt.Coordinator = "http://placeholder" // overwritten by startFabric
	opt.Name = name
	if opt.PollWait == 0 {
		opt.PollWait = 500 * time.Millisecond
	}
	w, err := NewWorker(opt)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFabricDistributedEquivalence is the core acceptance check: a campaign
// delegated to two fabric workers produces bit-identical stats to the same
// jobs simulated in-process.
func TestFabricDistributedEquivalence(t *testing.T) {
	jobs := fabricJobs(6)
	local, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(CoordinatorOptions{})
	_, stop := startFabric(t, coord,
		newTestWorker(t, "w1", WorkerOptions{}),
		newTestWorker(t, "w2", WorkerOptions{}))
	defer stop()

	remote, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 4, Remote: coord})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if remote[i].Err != nil {
			t.Fatalf("job %d failed over the fabric: %v", i, remote[i].Err)
		}
		if remote[i].Stats != local[i].Stats {
			t.Errorf("job %d: fabric stats differ from the in-process run", i)
		}
	}
	st := coord.Status()
	if st.JobsDone != len(jobs) || st.JobsPending != 0 || st.JobsLeased != 0 {
		t.Errorf("status = %+v, want %d done and nothing outstanding", st, len(jobs))
	}
	if st.Workers != 2 {
		t.Errorf("status counted %d workers, want 2", st.Workers)
	}
}

// TestFabricWorkerKilledMidCampaign kills one of two workers while the
// campaign is in flight. Its leased job expires and is reassigned, and the
// merged results are still bit-identical to an in-process run.
func TestFabricWorkerKilledMidCampaign(t *testing.T) {
	jobs := fabricJobs(8)
	local, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 150 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	defer coord.Close()

	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	victim := newTestWorker(t, "victim", WorkerOptions{})
	victim.base = srv.URL
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		if err := victim.Run(victimCtx); err != nil {
			t.Errorf("victim run: %v", err)
		}
	}()

	campaignDone := make(chan struct{})
	var remote []runner.Result
	var remoteErr error
	go func() {
		defer close(campaignDone)
		remote, remoteErr = runner.Run(context.Background(), jobs, runner.Options{Workers: 4, Remote: coord})
	}()

	// Kill the victim once the campaign is demonstrably in flight: at least
	// one job finished, more still outstanding. If the victim races through
	// everything first the kill degenerates to a no-op, so keep the check
	// tight with a short poll interval.
	killed := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		st := coord.Status()
		if st.JobsDone >= 1 && st.JobsDone < len(jobs) {
			killVictim()
			killed = true
			break
		}
		if st.JobsDone == len(jobs) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	<-victimDone

	// The survivor joins after the kill and must finish the campaign alone,
	// picking up the victim's expired lease.
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	survivor := newTestWorker(t, "survivor", WorkerOptions{})
	survivor.base = srv.URL
	survivorDone := make(chan struct{})
	go func() {
		defer close(survivorDone)
		if err := survivor.Run(survivorCtx); err != nil {
			t.Errorf("survivor run: %v", err)
		}
	}()

	select {
	case <-campaignDone:
	case <-time.After(60 * time.Second):
		t.Fatalf("campaign did not finish after worker kill; status %+v", coord.Status())
	}
	stopSurvivor()
	<-survivorDone

	if remoteErr != nil {
		t.Fatal(remoteErr)
	}
	for i := range jobs {
		if remote[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, remote[i].Err)
		}
		if remote[i].Stats != local[i].Stats {
			t.Errorf("job %d: stats differ from the in-process run after worker kill", i)
		}
	}
	if !killed {
		t.Log("victim finished the campaign before the kill window; reassignment not exercised this run")
	}
}

// TestFabricWarmStoreRerun: a distributed campaign backed by a result store
// populates it; a rerun of the same jobs against a coordinator with NO
// workers completes entirely from the store — zero jobs cross the wire.
func TestFabricWarmStoreRerun(t *testing.T) {
	dir := t.TempDir()
	store, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := fabricJobs(4)

	coord := NewCoordinator(CoordinatorOptions{})
	_, stop := startFabric(t, coord, newTestWorker(t, "w1", WorkerOptions{}))
	first, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2, Remote: coord, Store: store})
	stop()
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != len(jobs) {
		t.Fatalf("store holds %d results after the campaign, want %d", store.Len(), len(jobs))
	}

	// Fresh process: reopen the store, fresh coordinator, no workers at all.
	// If any job reached the fabric the run would stall until the timeout.
	reopened, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idle := NewCoordinator(CoordinatorOptions{})
	defer idle.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	second, err := runner.Run(ctx, jobs, runner.Options{Workers: 2, Remote: idle, Store: reopened})
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if second[i].Reused != runner.ReusedStore {
			t.Errorf("job %d: Reused = %q, want %q", i, second[i].Reused, runner.ReusedStore)
		}
		if second[i].Stats != first[i].Stats {
			t.Errorf("job %d: store-served stats differ from the fabric run", i)
		}
	}
	if st := idle.Status(); st.JobsDone+st.JobsPending+st.JobsLeased != 0 {
		t.Errorf("warm rerun sent jobs to the fabric: %+v", st)
	}
}

// postJSON is a bare HTTP client for driving the protocol directly.
func postJSON(t *testing.T, url string, body any, dst any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestFabricLeaseExpiryAndMismatch drives the protocol over raw HTTP: a
// worker leases a job and goes silent; after the TTL the job is re-leased to
// another worker whose submission wins; the original straggler's differing
// late submission is discarded and flagged as a mismatch.
func TestFabricLeaseExpiryAndMismatch(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 50 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	defer coord.Close()

	job := fabricJobs(1)[0]
	key, ok := job.Key()
	if !ok {
		t.Fatal("test job has no key")
	}
	resCh := make(chan runner.Result, 1)
	go func() {
		res, err := coord.ExecuteRemote(context.Background(), job, key)
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()

	// Worker one leases and never heartbeats.
	var l1 leaseResponse
	for {
		status := postJSON(t, srv.URL+"/fabric/lease", leaseRequest{Worker: "silent", WaitMS: 1000}, &l1)
		if status == http.StatusOK {
			break
		}
		if status != http.StatusNoContent {
			t.Fatalf("lease status %d", status)
		}
	}
	if l1.Key != key {
		t.Fatalf("leased key %.12s, want %.12s", l1.Key, key)
	}

	// After the TTL the lease expires and the job is re-leased.
	time.Sleep(100 * time.Millisecond)
	var l2 leaseResponse
	status := postJSON(t, srv.URL+"/fabric/lease", leaseRequest{Worker: "heir", WaitMS: 2000}, &l2)
	if status != http.StatusOK {
		t.Fatalf("re-lease status %d, want 200", status)
	}
	if l2.Key != key || l2.LeaseID == l1.LeaseID {
		t.Fatalf("re-lease = %+v, want the same key under a new lease", l2)
	}

	// The silent worker's original lease is now Gone.
	if status := postJSON(t, srv.URL+"/fabric/heartbeat", heartbeatRequest{LeaseID: l1.LeaseID}, nil); status != http.StatusGone {
		t.Errorf("stale heartbeat status %d, want 410", status)
	}
	// The heir's lease heartbeats fine.
	if status := postJSON(t, srv.URL+"/fabric/heartbeat", heartbeatRequest{LeaseID: l2.LeaseID}, nil); status != http.StatusOK {
		t.Errorf("live heartbeat status %d, want 200", status)
	}

	// The heir submits; its result wins and unblocks the campaign.
	win := wireResult{Stats: sim.Stats{Instructions: 42}, SimInstructions: 42}
	var sub submitResponse
	if status := postJSON(t, srv.URL+"/fabric/submit", submitRequest{Worker: "heir", LeaseID: l2.LeaseID, Key: key, Result: win}, &sub); status != http.StatusOK {
		t.Fatalf("submit status %d", status)
	}
	if !sub.Accepted || sub.Duplicate {
		t.Fatalf("winning submit response %+v", sub)
	}
	res := <-resCh
	if res.Err != nil || res.Stats.Instructions != 42 {
		t.Fatalf("campaign received %+v, want the heir's stats", res)
	}

	// The straggler reappears with DIFFERENT stats: discarded, flagged.
	lose := wireResult{Stats: sim.Stats{Instructions: 43}, SimInstructions: 43}
	sub = submitResponse{}
	if status := postJSON(t, srv.URL+"/fabric/submit", submitRequest{Worker: "silent", LeaseID: l1.LeaseID, Key: key, Result: lose}, &sub); status != http.StatusOK {
		t.Fatalf("straggler submit status %d", status)
	}
	if sub.Accepted || !sub.Duplicate || !sub.Mismatch {
		t.Errorf("straggler submit response %+v, want duplicate+mismatch", sub)
	}

	st := coord.Status()
	if st.LeaseExpirations < 1 || st.DuplicateSubmits != 1 || st.MismatchSubmits != 1 {
		t.Errorf("status counters %+v, want >=1 expiration, 1 duplicate, 1 mismatch", st)
	}
}

// TestFabricCorpusFetch: a worker with an empty local tracestore fetches the
// coordinator's materialised containers by workload hash, and the resulting
// stats match a live-generated in-process run.
func TestFabricCorpusFetch(t *testing.T) {
	coordStore, err := tracestore.Open(tracestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer coordStore.Close()
	workerStore, err := tracestore.Open(tracestore.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer workerStore.Close()

	jobs := fabricJobs(2)
	local, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator(CoordinatorOptions{Corpus: coordStore})
	_, stop := startFabric(t, coord, newTestWorker(t, "w1", WorkerOptions{Corpus: workerStore}))
	defer stop()

	remote, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2, Remote: coord})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if remote[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, remote[i].Err)
		}
		if remote[i].Stats != local[i].Stats {
			t.Errorf("job %d: corpus-fed stats differ from the live-generated run", i)
		}
	}
	if st := coord.Status(); st.CorpusServed == 0 {
		t.Error("coordinator served no corpus containers")
	}
	// The worker's store now holds every workload the jobs referenced.
	man := workerStore.Manifest()
	for i, j := range jobs {
		for _, spec := range j.Workloads {
			e, ok := man.Entries[spec.Hash()]
			if !ok {
				t.Errorf("job %d: workload %s missing from the worker store after fetch", i, spec.Name)
				continue
			}
			if e.Records < j.Warmup+j.Measure {
				t.Errorf("job %d: fetched container holds %d records, want >= %d", i, e.Records, j.Warmup+j.Measure)
			}
		}
	}
}

// TestFabricCoordinatorCloseUnblocks: closing the coordinator fails every
// unresolved job so campaign goroutines blocked in ExecuteRemote return.
func TestFabricCoordinatorCloseUnblocks(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	job := fabricJobs(1)[0]
	key, _ := job.Key()
	errCh := make(chan error, 1)
	go func() {
		res, err := coord.ExecuteRemote(context.Background(), job, key)
		if err != nil {
			errCh <- err
			return
		}
		errCh <- res.Err
	}()
	// Let the goroutine enqueue before closing.
	for {
		if st := coord.Status(); st.JobsPending == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("pending job resolved without error on coordinator close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecuteRemote still blocked after coordinator close")
	}
	// New work is refused after close.
	if _, err := coord.ExecuteRemote(context.Background(), job, key); err == nil {
		t.Fatal("ExecuteRemote accepted work after close")
	}
}

// TestFabricHealthEndpoints: liveness always answers ok; readiness flips once
// a campaign attaches.
func TestFabricHealthEndpoints(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", got)
	}
	if got := get("/healthz/live"); got != http.StatusOK {
		t.Errorf("/healthz/live = %d, want 200", got)
	}
	if got := get("/healthz/ready"); got != http.StatusServiceUnavailable {
		t.Errorf("/healthz/ready before attach = %d, want 503", got)
	}

	job := fabricJobs(1)[0]
	key, _ := job.Key()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		coord.ExecuteRemote(ctx, job, key)
	}()
	for {
		if st := coord.Status(); st.JobsPending == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := get("/healthz/ready"); got != http.StatusOK {
		t.Errorf("/healthz/ready after attach = %d, want 200", got)
	}
	cancel()
	<-done
}

// TestFabricJobWireRoundTrip: a job survives the wire encoding with its
// canonical key intact — the property the worker's key re-derivation check
// (and the whole content-addressed design) rests on.
func TestFabricJobWireRoundTrip(t *testing.T) {
	for i, j := range fabricJobs(3) {
		key, ok := j.Key()
		if !ok {
			t.Fatalf("job %d has no key", i)
		}
		raw, err := json.Marshal(encodeJob(j))
		if err != nil {
			t.Fatal(err)
		}
		var wj wireJob
		if err := json.Unmarshal(raw, &wj); err != nil {
			t.Fatal(err)
		}
		back := decodeJob(wj)
		got, ok := back.Key()
		if !ok || got != key {
			t.Errorf("job %d: key %.12s after round trip, want %.12s", i, got, key)
		}
		if back.Experiment != j.Experiment || back.Config != j.Config || back.Workload != j.Workload {
			t.Errorf("job %d: display fields lost on the wire", i)
		}
	}
}
