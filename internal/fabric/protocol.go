// Package fabric is the distributed campaign layer: a coordinator that
// enumerates a campaign's jobs (by plugging into the runner as its
// RemoteExecutor) and serves them over a lease/heartbeat/submit HTTP API,
// plus stateless pull-based workers that lease jobs by canonical JobKey,
// simulate them with the existing runner, and stream results back.
//
// The protocol is JSON over HTTP, mounted under /fabric/ with the same mux
// conventions as internal/obs:
//
//   - POST /fabric/lease — long-poll for a job; 200 with a lease (job spec,
//     lease id, TTL) or 204 when nothing is pending within the wait window;
//   - POST /fabric/heartbeat — renew a lease's deadline; 410 Gone when the
//     lease expired and was reassigned (the worker should abandon the job);
//   - POST /fabric/submit — deliver a finished job's result; duplicate
//     submissions for one key resolve first-write-wins with an equality
//     check, so a straggler can never change a merged result;
//   - GET /fabric/corpus/{hash} — stream the MTC1 trace container for a
//     workload parameter hash, materialising it on first use, so workers
//     whose local tracestore misses fetch chunks by hash instead of
//     re-generating them;
//   - GET /fabric/status — coordinator state as JSON;
//   - GET /healthz, /healthz/live, /healthz/ready — liveness, and readiness
//     (readiness requires an attached campaign with enumerated jobs).
//
// Failure model: a worker that dies mid-job simply stops heartbeating; its
// lease expires and the job is reassigned, so a campaign survives any number
// of worker kills as long as one worker remains. Because jobs are identified
// by canonical JobKey and simulation is deterministic, a reassigned job's
// result is bit-identical to what the dead worker would have produced, and
// merged campaign tables are byte-identical to a single-process run at any
// worker count. Durability beyond the coordinator process comes from backing
// the campaign with runner.Options.Store (internal/resultstore) and/or the
// checkpoint journal, exactly as in single-process runs.
package fabric

import (
	"morrigan/internal/machine"
	"morrigan/internal/runner"
	"morrigan/internal/sampling"
	"morrigan/internal/sim"
	"morrigan/internal/spans"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// ProtocolVersion identifies the fabric wire protocol; lease responses carry
// it so a worker built against a different protocol fails loudly instead of
// misreading fields. Version 2 added distributed tracing (trace ids on
// leases, spans and clock samples on heartbeats/submissions).
const ProtocolVersion = 2

// wireWorkload is one workload spec on the wire (the same shape
// workloads.SaveSpec writes).
type wireWorkload struct {
	Name   string             `json:"name"`
	Params trace.ServerParams `json:"params"`
}

// wireJob is one leased job: the full declarative (machine, workloads,
// scale) triple, so a stateless worker can reconstruct — and re-derive the
// key of — the exact simulation the coordinator enumerated.
type wireJob struct {
	Experiment string         `json:"experiment,omitempty"`
	Config     string         `json:"config,omitempty"`
	Workload   string         `json:"workload,omitempty"`
	Machine    machine.Spec   `json:"machine"`
	Workloads  []wireWorkload `json:"workloads"`
	Warmup     uint64         `json:"warmup"`
	Measure    uint64         `json:"measure"`
	// Sampling crosses the wire because it is part of the canonical key:
	// a worker that dropped it would re-derive a different key than the
	// grant's and fail loudly at the key-skew check.
	Sampling *sampling.Policy `json:"sampling,omitempty"`
}

// encodeJob converts a runner job to its wire form (keyed jobs only — the
// Instrument/NewThreads escape hatches cannot cross a process boundary and
// never reach the fabric; see runner.RemoteExecutor).
func encodeJob(j runner.Job) wireJob {
	ws := make([]wireWorkload, len(j.Workloads))
	for i, w := range j.Workloads {
		ws[i] = wireWorkload{Name: w.Name, Params: w.Params}
	}
	return wireJob{
		Experiment: j.Experiment,
		Config:     j.Config,
		Workload:   j.Workload,
		Machine:    j.Machine,
		Workloads:  ws,
		Warmup:     j.Warmup,
		Measure:    j.Measure,
		Sampling:   j.Sampling,
	}
}

// decodeJob reconstructs the runner job a wire job describes.
func decodeJob(wj wireJob) runner.Job {
	ws := make([]workloads.Spec, len(wj.Workloads))
	for i, w := range wj.Workloads {
		ws[i] = workloads.Spec{Name: w.Name, Params: w.Params}
	}
	return runner.Job{
		Experiment: wj.Experiment,
		Config:     wj.Config,
		Workload:   wj.Workload,
		Machine:    wj.Machine,
		Workloads:  ws,
		Warmup:     wj.Warmup,
		Measure:    wj.Measure,
		Sampling:   wj.Sampling,
	}
}

// leaseRequest asks for one job, waiting up to WaitMS for one to appear.
type leaseRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms"`
}

// leaseResponse grants one job under a lease. The worker must heartbeat
// before TTLMS elapses (and keep doing so) or the job is reassigned.
type leaseResponse struct {
	Protocol int     `json:"protocol"`
	LeaseID  string  `json:"lease_id"`
	Key      string  `json:"key"`
	Job      wireJob `json:"job"`
	TTLMS    int64   `json:"ttl_ms"`
	// TraceID is the job's distributed-tracing id (its canonical key);
	// Trace tells the worker the coordinator is assembling a campaign trace
	// and wants the job's spans attached to the submission.
	TraceID string `json:"trace_id,omitempty"`
	Trace   bool   `json:"trace,omitempty"`
}

// heartbeatRequest renews a lease. It doubles as the fleet-telemetry and
// clock-sync channel: each beat carries the worker's monotonic clock, its
// previously measured heartbeat round-trip time (the coordinator halves it to
// estimate one-way latency when computing the worker's clock offset), and the
// worker's live heap.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker,omitempty"`
	// ClockNS is nanoseconds since the worker's trace epoch at send time.
	ClockNS int64 `json:"clock_ns,omitempty"`
	// RTTNS is the worker-measured round-trip time of its previous
	// heartbeat (0 on the first beat).
	RTTNS int64 `json:"rtt_ns,omitempty"`
	// HeapBytes is the worker process's live heap (runtime HeapAlloc).
	HeapBytes uint64 `json:"heap_bytes,omitempty"`
}

// wireResult is a finished job's outcome on the wire.
type wireResult struct {
	Err             string            `json:"err,omitempty"`
	Stats           sim.Stats         `json:"stats"`
	SimInstructions uint64            `json:"sim_instructions"`
	ElapsedMS       float64           `json:"elapsed_ms"`
	InstrPerSec     float64           `json:"instr_per_sec"`
	PeakHeapBytes   uint64            `json:"peak_heap_bytes"`
	Sampling        *sampling.Outcome `json:"sampling,omitempty"`
}

// submitRequest delivers a finished job's result, plus — when the lease asked
// for tracing — the worker's spans for the job, timestamped on the worker's
// own clock. ClockNS samples that clock at send time so the coordinator can
// re-base the spans onto its trace epoch using the heartbeat-estimated
// offset.
type submitRequest struct {
	Worker  string       `json:"worker"`
	LeaseID string       `json:"lease_id"`
	Key     string       `json:"key"`
	Result  wireResult   `json:"result"`
	Spans   []spans.Span `json:"spans,omitempty"`
	ClockNS int64        `json:"clock_ns,omitempty"`
}

// submitResponse reports how the submission resolved. Duplicate is set when
// the key already had an accepted result (the submission was discarded);
// Mismatch additionally marks the discarded result as differing from the
// stored one — a determinism violation worth surfacing.
type submitResponse struct {
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate,omitempty"`
	Mismatch  bool `json:"mismatch,omitempty"`
}
