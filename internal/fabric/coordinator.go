package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"morrigan/internal/obs"
	"morrigan/internal/runner"
	"morrigan/internal/spans"
	"morrigan/internal/tracestore"
	"morrigan/internal/workloads"
)

// DefaultLeaseTTL is the lease deadline granted to workers when
// CoordinatorOptions.LeaseTTL is zero. Workers heartbeat at a third of the
// TTL, so the default tolerates two missed heartbeats before reassignment.
const DefaultLeaseTTL = 30 * time.Second

// defaultLeaseWait bounds a lease long-poll when the request does not say.
const defaultLeaseWait = 25 * time.Second

// pollRecheck bounds how long an idle long-poll sleeps between queue checks
// even without a wake signal, so expired leases are reclaimed promptly.
const pollRecheck = 250 * time.Millisecond

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat before
	// its job is reassigned. Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Corpus, when non-nil, lets the coordinator serve materialised trace
	// containers to workers over /fabric/corpus/{hash}, building them on
	// first request. Without it workers build their own corpora (or step
	// generators live).
	Corpus *tracestore.Store
	// Log, when non-nil, receives one line per notable fabric event (lease
	// expirations, duplicate submissions).
	Log io.Writer
	// Spans, when non-nil, assembles the campaign's distributed trace: the
	// coordinator records lease-wait and lease spans for every job, asks
	// workers to attach their spans to submissions (leaseResponse.Trace),
	// and re-bases worker span timestamps onto its own epoch using the clock
	// offset estimated from heartbeat round-trip times. Share one recorder
	// between runner.Options.Spans and this field to get a single campaign
	// trace covering local and remote phases.
	Spans *spans.Recorder
}

// entry states.
const (
	statePending = iota // enumerated, waiting for a worker
	stateLeased         // handed to a worker, lease live
	stateDone           // result recorded; done channel closed
)

// jobEntry is one enumerated job's coordinator-side state. Entries are
// deduplicated by key: however many campaign goroutines wait on one key, the
// job crosses the wire once.
type jobEntry struct {
	key        string
	job        runner.Job
	state      int
	result     runner.Result // valid once state == stateDone
	done       chan struct{} // closed when state becomes stateDone
	enqueuedNS int64         // trace clock at enumeration (0 without tracing)
}

// lease is one live grant of a job to a worker.
type lease struct {
	id        string
	key       string
	worker    string
	deadline  time.Time
	grantedNS int64 // trace clock at grant (0 without tracing)
	renewals  int   // heartbeats that renewed this lease
}

// workerState is the coordinator's view of one worker, fed by every contact
// (lease polls, heartbeats, submissions). It powers the morrigan_fleet_*
// gauges and the clock-offset estimation that re-bases worker spans onto the
// coordinator's trace epoch.
type workerState struct {
	last         time.Time
	rttNS        int64 // last worker-reported heartbeat round trip
	bestRTTNS    int64 // smallest round trip seen — its offset sample wins
	offsetNS     int64 // worker trace clock + offset ≈ coordinator trace clock
	hasOffset    bool
	heapBytes    uint64 // last worker-reported live heap
	activeLeases int
	jobsDone     int
	instructions uint64  // simulated instructions across accepted submissions
	busySeconds  float64 // sum of accepted submissions' elapsed time
}

// Coordinator owns a campaign's distributed execution: it collects jobs from
// the runner through ExecuteRemote, queues them, and serves the fabric HTTP
// API workers pull from. Construct with NewCoordinator, attach to campaigns
// via runner.Options.Remote, and serve with Start (or mount Handler).
// All methods are safe for concurrent use.
type Coordinator struct {
	opt CoordinatorOptions

	mu       sync.Mutex
	entries  map[string]*jobEntry
	queue    []string // FIFO of keys awaiting lease (may hold stale copies)
	leases   map[string]*lease
	specs    map[string]workloads.Spec // workload hash -> spec, for corpus serving
	workers  map[string]*workerState   // worker name -> fleet state
	wake     chan struct{}             // closed and replaced when the queue gains work
	nextID   uint64
	closed   bool
	draining bool // stop granting leases; in-flight submissions still land

	expirations  uint64 // leases reclaimed after missed heartbeats
	duplicates   uint64 // submissions discarded first-write-wins
	mismatches   uint64 // discarded submissions whose stats differed
	corpusServed uint64

	mux *http.ServeMux

	lis  net.Listener
	srv  *http.Server
	done chan struct{}
}

// NewCoordinator builds a detached coordinator; nothing listens until Start
// (tests mount Handler on an httptest server instead).
func NewCoordinator(opt CoordinatorOptions) *Coordinator {
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = DefaultLeaseTTL
	}
	c := &Coordinator{
		opt:     opt,
		entries: make(map[string]*jobEntry),
		leases:  make(map[string]*lease),
		specs:   make(map[string]workloads.Spec),
		workers: make(map[string]*workerState),
		wake:    make(chan struct{}),
		mux:     http.NewServeMux(),
	}
	c.mux.HandleFunc("/fabric/lease", c.handleLease)
	c.mux.HandleFunc("/fabric/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("/fabric/submit", c.handleSubmit)
	c.mux.HandleFunc("/fabric/corpus/", c.handleCorpus)
	c.mux.HandleFunc("/fabric/status", c.handleStatus)
	c.mux.HandleFunc("/healthz", c.handleHealthz)
	c.mux.HandleFunc("/healthz/live", c.handleHealthz)
	c.mux.HandleFunc("/healthz/ready", c.handleReady)
	return c
}

// Handler returns the coordinator's HTTP handler (for tests and for mounting
// on an existing server).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Start listens on addr (e.g. ":9090", "127.0.0.1:0") and serves in the
// background until Close. It returns the bound address, so ":0" is usable.
func (c *Coordinator) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	c.lis = lis
	c.srv = &http.Server{Handler: c.mux}
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		_ = c.srv.Serve(lis)
	}()
	return lis.Addr(), nil
}

// Close shuts the coordinator down: the listener stops, idle long-polls
// return, and every unresolved job fails with a coordinator-closed error so
// campaign goroutines blocked in ExecuteRemote unblock.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	c.closed = true
	for _, e := range c.entries {
		if e.state != stateDone {
			e.state = stateDone
			e.result = runner.Result{Job: e.job, Err: errors.New("fabric: coordinator closed")}
			close(e.done)
		}
	}
	c.wakeLocked()
	c.mu.Unlock()
	if c.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := c.srv.Shutdown(ctx)
	<-c.done
	return err
}

// Drain gracefully quiesces the coordinator: it stops granting new leases
// (workers' long-polls fall back to 204s) and waits — bounded by ctx — until
// every outstanding lease resolves, either by its worker submitting the
// result or by expiring and being reclaimed. In-flight submissions are
// accepted throughout, so a SIGTERM'd coordinator never discards work a
// worker already finished. Drain does not close the listener; follow with
// Close once the caller has flushed its own state.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.wakeLocked() // unblock long-polls so they observe the drain promptly
	c.mu.Unlock()
	for {
		now := time.Now()
		c.mu.Lock()
		c.reclaimLocked(now)
		outstanding := len(c.leases)
		c.mu.Unlock()
		if outstanding == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: drain interrupted with %d leases outstanding: %w", outstanding, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// Coordinator implements runner.RemoteExecutor.
var _ runner.RemoteExecutor = (*Coordinator)(nil)

// ExecuteRemote enqueues the job for worker execution and blocks until a
// worker submits its result (or ctx ends, or the coordinator closes).
// Concurrent calls with equal keys share one enumeration: the job crosses
// the wire once and every caller receives the same result.
func (c *Coordinator) ExecuteRemote(ctx context.Context, job runner.Job, key string) (runner.Result, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return runner.Result{}, errors.New("fabric: coordinator closed")
	}
	e, ok := c.entries[key]
	if !ok {
		e = &jobEntry{key: key, job: job, state: statePending, done: make(chan struct{}),
			enqueuedNS: c.opt.Spans.Now()}
		c.entries[key] = e
		c.queue = append(c.queue, key)
		for _, w := range job.Workloads {
			c.specs[w.Hash()] = w
		}
		c.wakeLocked()
	}
	c.mu.Unlock()

	select {
	case <-e.done:
	case <-ctx.Done():
		return runner.Result{}, ctx.Err()
	}
	c.mu.Lock()
	res := e.result
	c.mu.Unlock()
	return res, nil
}

// wakeLocked signals every waiting long-poll that the queue may have work.
// Caller holds c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// touchWorkerLocked records contact from a worker, creating its fleet state
// on first sight. Caller holds c.mu.
func (c *Coordinator) touchWorkerLocked(name string, now time.Time) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{}
		c.workers[name] = ws
	}
	ws.last = now
	return ws
}

// reclaimLocked expires overdue leases, requeueing their jobs. Caller holds
// c.mu.
func (c *Coordinator) reclaimLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, id)
		c.expirations++
		if ws := c.workers[l.worker]; ws != nil && ws.activeLeases > 0 {
			ws.activeLeases--
		}
		if e := c.entries[l.key]; e != nil && e.state == stateLeased {
			e.state = statePending
			c.queue = append(c.queue, l.key)
			c.logf("lease %s (worker %s) expired; requeueing %.12s…", id, l.worker, l.key)
		}
	}
}

// popLocked removes and returns the next pending entry, skipping stale queue
// copies of keys that are leased or done. Caller holds c.mu.
// popIfServingLocked pops the next pending job unless the coordinator is
// draining — a draining coordinator grants no new leases, so workers fall
// back to 204 long-poll timeouts while outstanding leases resolve.
func (c *Coordinator) popIfServingLocked() (*jobEntry, bool) {
	if c.draining {
		return nil, false
	}
	return c.popLocked()
}

func (c *Coordinator) popLocked() (*jobEntry, bool) {
	for len(c.queue) > 0 {
		key := c.queue[0]
		c.queue = c.queue[1:]
		if e := c.entries[key]; e != nil && e.state == statePending {
			return e, true
		}
	}
	return nil, false
}

// handleLease is the long-poll job grant: it waits up to the request's
// wait_ms (bounded by defaultLeaseWait) for a pending job, returning 204
// when none appears in the window.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	wait := defaultLeaseWait
	if req.WaitMS > 0 && time.Duration(req.WaitMS)*time.Millisecond < wait {
		wait = time.Duration(req.WaitMS) * time.Millisecond
	}
	deadline := time.Now().Add(wait)

	for {
		now := time.Now()
		c.mu.Lock()
		ws := c.touchWorkerLocked(req.Worker, now)
		c.reclaimLocked(now)
		if e, ok := c.popIfServingLocked(); ok {
			c.nextID++
			l := &lease{
				id:        fmt.Sprintf("l%06d", c.nextID),
				key:       e.key,
				worker:    req.Worker,
				deadline:  now.Add(c.opt.LeaseTTL),
				grantedNS: c.opt.Spans.Now(),
			}
			c.leases[l.id] = l
			e.state = stateLeased
			ws.activeLeases++
			if c.opt.Spans != nil {
				c.opt.Spans.Record(spans.Span{
					TraceID: e.key,
					Name:    "lease.wait",
					Worker:  "coordinator",
					StartNS: e.enqueuedNS,
					DurNS:   l.grantedNS - e.enqueuedNS,
					Attrs:   map[string]string{"worker": req.Worker},
				})
			}
			resp := leaseResponse{
				Protocol: ProtocolVersion,
				LeaseID:  l.id,
				Key:      e.key,
				Job:      encodeJob(e.job),
				TTLMS:    c.opt.LeaseTTL.Milliseconds(),
				TraceID:  e.key,
				Trace:    c.opt.Spans != nil,
			}
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, resp)
			return
		}
		closed := c.closed
		wake := c.wake
		c.mu.Unlock()

		remaining := time.Until(deadline)
		if closed || remaining <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		if remaining > pollRecheck {
			remaining = pollRecheck
		}
		t := time.NewTimer(remaining)
		select {
		case <-wake:
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
		t.Stop()
	}
}

// handleHeartbeat renews a lease; 410 Gone tells the worker its lease
// expired and the job was (or will be) reassigned, so it should abandon it.
// Beats also feed the fleet view and the clock-offset estimator (see
// heartbeatRequest).
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.reclaimLocked(now)
	l, ok := c.leases[req.LeaseID]
	name := req.Worker
	if ok {
		l.deadline = now.Add(c.opt.LeaseTTL)
		l.renewals++
		if name == "" {
			name = l.worker
		}
	}
	if name != "" {
		ws := c.touchWorkerLocked(name, now)
		if req.HeapBytes > 0 {
			ws.heapBytes = req.HeapBytes
		}
		if req.RTTNS > 0 {
			ws.rttNS = req.RTTNS
		}
		c.updateOffsetLocked(ws, req.ClockNS, req.RTTNS)
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, "fabric: unknown or expired lease", http.StatusGone)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// updateOffsetLocked refines a worker's clock-offset estimate from one
// (clock, rtt) sample: the worker's clock reading is assumed to be taken
// rtt/2 before arrival, so offset = coordinatorNow − workerClock − rtt/2.
// The sample with the smallest round trip is the least-skewed estimate and
// wins; samples without a measured round trip only seed a missing estimate.
// Caller holds c.mu.
func (c *Coordinator) updateOffsetLocked(ws *workerState, clockNS, rttNS int64) {
	if c.opt.Spans == nil || clockNS <= 0 {
		return
	}
	better := !ws.hasOffset || (rttNS > 0 && (ws.bestRTTNS == 0 || rttNS <= ws.bestRTTNS))
	if !better {
		return
	}
	ws.offsetNS = c.opt.Spans.Now() - clockNS - rttNS/2
	ws.bestRTTNS = rttNS
	ws.hasOffset = true
}

// handleSubmit records a finished job's result. The first submission for a
// key wins and unblocks every campaign goroutine waiting on it; later ones
// (stragglers whose lease expired and whose job was re-run) are discarded,
// with an equality check so a nondeterministic divergence is surfaced
// instead of silently ignored. A submission under an expired lease is still
// accepted when its job is unresolved — the work is done and valid.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	ws := c.touchWorkerLocked(req.Worker, now)
	l := c.leases[req.LeaseID]
	if l != nil {
		delete(c.leases, req.LeaseID)
		if lws := c.workers[l.worker]; lws != nil && lws.activeLeases > 0 {
			lws.activeLeases--
		}
	}
	c.updateOffsetLocked(ws, req.ClockNS, ws.rttNS)
	e, ok := c.entries[req.Key]
	if !ok {
		http.Error(w, "fabric: unknown job key", http.StatusNotFound)
		return
	}
	if c.opt.Spans != nil {
		// The worker's spans are on its own clock; re-base them with its
		// offset estimate. Import slides the batch forward if the estimate
		// overshoots, so assembled traces never start before the epoch.
		c.opt.Spans.Import(req.Spans, ws.offsetNS)
		if l != nil {
			c.opt.Spans.Record(spans.Span{
				TraceID: req.Key,
				Name:    "lease",
				Worker:  "coordinator",
				StartNS: l.grantedNS,
				DurNS:   c.opt.Spans.Now() - l.grantedNS,
				Attrs: map[string]string{
					"worker":   req.Worker,
					"renewals": fmt.Sprint(l.renewals),
				},
			})
		}
	}
	if e.state == stateDone {
		c.duplicates++
		resp := submitResponse{Duplicate: true}
		if req.Result.Err == "" && e.result.Err == nil && req.Result.Stats != e.result.Stats {
			resp.Mismatch = true
			c.mismatches++
			c.logf("duplicate submission for %.12s… from %s DIFFERS from the accepted result", req.Key, req.Worker)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res := runner.Result{
		Job:             e.job,
		Elapsed:         time.Duration(req.Result.ElapsedMS * float64(time.Millisecond)),
		SimInstructions: req.Result.SimInstructions,
		InstrPerSec:     req.Result.InstrPerSec,
		PeakHeapBytes:   req.Result.PeakHeapBytes,
	}
	if req.Result.Err != "" {
		res.Err = fmt.Errorf("fabric: worker %s: %s", req.Worker, req.Result.Err)
	} else {
		res.Stats = req.Result.Stats
		res.Sampling = req.Result.Sampling
	}
	e.result = res
	e.state = stateDone
	close(e.done)
	ws.jobsDone++
	ws.instructions += req.Result.SimInstructions
	ws.busySeconds += req.Result.ElapsedMS / 1000
	writeJSON(w, http.StatusOK, submitResponse{Accepted: true})
}

// handleCorpus streams the trace container for a workload parameter hash,
// materialising it on first request. Workers call this when their local
// tracestore misses, so one coordinator-side build feeds every worker.
func (c *Coordinator) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if c.opt.Corpus == nil {
		http.Error(w, "fabric: coordinator has no corpus store", http.StatusNotFound)
		return
	}
	hash := strings.TrimPrefix(r.URL.Path, "/fabric/corpus/")
	records, err := strconv.ParseUint(r.URL.Query().Get("records"), 10, 64)
	if err != nil || records == 0 {
		http.Error(w, "fabric: records query parameter is required", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	spec, ok := c.specs[hash]
	c.mu.Unlock()
	if !ok {
		http.Error(w, "fabric: unknown workload hash", http.StatusNotFound)
		return
	}
	if _, err := c.opt.Corpus.Materialize(spec, records); err != nil {
		http.Error(w, fmt.Sprintf("fabric: materialising corpus: %v", err), http.StatusInternalServerError)
		return
	}
	path, ok := c.opt.Corpus.ContainerPath(hash)
	if !ok {
		http.Error(w, "fabric: corpus vanished after materialise", http.StatusInternalServerError)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		http.Error(w, fmt.Sprintf("fabric: %v", err), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	c.mu.Lock()
	c.corpusServed++
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = io.Copy(w, f)
}

// FleetWorker is one worker's row in the coordinator's fleet view, surfaced
// in /fabric/status and as morrigan_fleet_* gauges.
type FleetWorker struct {
	Name                string  `json:"name"`
	ActiveLeases        int     `json:"active_leases"`
	JobsDone            int     `json:"jobs_done"`
	Instructions        uint64  `json:"instructions"`
	InstrPerSec         float64 `json:"instr_per_sec"`
	HeartbeatRTTSeconds float64 `json:"heartbeat_rtt_seconds"`
	HeapBytes           uint64  `json:"heap_bytes"`
	LastContactSeconds  float64 `json:"last_contact_seconds"`
	ClockOffsetSeconds  float64 `json:"clock_offset_seconds"`
}

// CoordinatorStatus is the /fabric/status document.
type CoordinatorStatus struct {
	Protocol         int           `json:"protocol"`
	JobsPending      int           `json:"jobs_pending"`
	JobsLeased       int           `json:"jobs_leased"`
	JobsDone         int           `json:"jobs_done"`
	Leases           int           `json:"leases"`
	Workers          int           `json:"workers"`
	LeaseExpirations uint64        `json:"lease_expirations"`
	DuplicateSubmits uint64        `json:"duplicate_submits"`
	MismatchSubmits  uint64        `json:"mismatch_submits"`
	CorpusServed     uint64        `json:"corpus_served"`
	Fleet            []FleetWorker `json:"fleet,omitempty"`
}

// Status snapshots the coordinator's counters and per-worker fleet view.
func (c *Coordinator) Status() CoordinatorStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CoordinatorStatus{
		Protocol:         ProtocolVersion,
		Leases:           len(c.leases),
		Workers:          len(c.workers),
		LeaseExpirations: c.expirations,
		DuplicateSubmits: c.duplicates,
		MismatchSubmits:  c.mismatches,
		CorpusServed:     c.corpusServed,
	}
	for _, e := range c.entries {
		switch e.state {
		case statePending:
			st.JobsPending++
		case stateLeased:
			st.JobsLeased++
		default:
			st.JobsDone++
		}
	}
	for name, ws := range c.workers {
		fw := FleetWorker{
			Name:                name,
			ActiveLeases:        ws.activeLeases,
			JobsDone:            ws.jobsDone,
			Instructions:        ws.instructions,
			HeartbeatRTTSeconds: float64(ws.rttNS) / 1e9,
			HeapBytes:           ws.heapBytes,
			LastContactSeconds:  now.Sub(ws.last).Seconds(),
			ClockOffsetSeconds:  float64(ws.offsetNS) / 1e9,
		}
		if ws.busySeconds > 0 {
			fw.InstrPerSec = float64(ws.instructions) / ws.busySeconds
		}
		st.Fleet = append(st.Fleet, fw)
	}
	sort.Slice(st.Fleet, func(i, j int) bool { return st.Fleet[i].Name < st.Fleet[j].Name })
	return st
}

// Gauges exposes the coordinator's counters as observability gauges, the
// shape obs.Server.AddGaugeSource consumes, so a campaign served with both
// -serve and -fabric reports fabric state on /metrics.
func (c *Coordinator) Gauges() []obs.Gauge {
	st := c.Status()
	gs := []obs.Gauge{
		{Name: "morrigan_fabric_jobs_pending", Help: "Fabric jobs awaiting a worker lease.", Value: float64(st.JobsPending)},
		{Name: "morrigan_fabric_jobs_leased", Help: "Fabric jobs currently leased to workers.", Value: float64(st.JobsLeased)},
		{Name: "morrigan_fabric_jobs_done", Help: "Fabric jobs with an accepted result.", Value: float64(st.JobsDone)},
		{Name: "morrigan_fabric_workers", Help: "Distinct workers that have contacted the coordinator.", Value: float64(st.Workers)},
		{Name: "morrigan_fabric_lease_expirations", Help: "Leases reclaimed after missed heartbeats.", Value: float64(st.LeaseExpirations)},
		{Name: "morrigan_fabric_duplicate_submits", Help: "Submissions discarded first-write-wins.", Value: float64(st.DuplicateSubmits)},
		{Name: "morrigan_fabric_mismatch_submits", Help: "Discarded submissions whose stats differed from the accepted result.", Value: float64(st.MismatchSubmits)},
	}
	for _, fw := range st.Fleet {
		labels := map[string]string{"worker": fw.Name}
		gs = append(gs,
			obs.Gauge{Name: "morrigan_fleet_worker_instr_per_sec", Help: "Per-worker simulation throughput over accepted submissions.", Labels: labels, Value: fw.InstrPerSec},
			obs.Gauge{Name: "morrigan_fleet_worker_active_leases", Help: "Leases currently held by the worker.", Labels: labels, Value: float64(fw.ActiveLeases)},
			obs.Gauge{Name: "morrigan_fleet_worker_jobs_done", Help: "Jobs the worker has submitted and had accepted.", Labels: labels, Value: float64(fw.JobsDone)},
			obs.Gauge{Name: "morrigan_fleet_worker_heartbeat_rtt_seconds", Help: "Worker-measured round-trip time of its last heartbeat.", Labels: labels, Value: fw.HeartbeatRTTSeconds},
			obs.Gauge{Name: "morrigan_fleet_worker_heap_bytes", Help: "Worker-reported live heap (runtime HeapAlloc).", Labels: labels, Value: float64(fw.HeapBytes)},
			obs.Gauge{Name: "morrigan_fleet_worker_last_contact_seconds", Help: "Seconds since the worker last contacted the coordinator.", Labels: labels, Value: fw.LastContactSeconds},
		)
	}
	return gs
}

// handleStatus serves the status document.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// handleHealthz is the liveness endpoint.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady is the readiness endpoint: ready once a campaign has
// enumerated at least one job (workers polling earlier still get valid 204
// leases; readiness is for orchestration that wants to gate on attachment).
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	attached := len(c.entries) > 0
	closed := c.closed
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if closed || !attached {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no campaign attached")
		return
	}
	fmt.Fprintln(w, "ok")
}

// logf writes one fabric event line when a log sink is configured.
func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Log != nil {
		fmt.Fprintf(c.opt.Log, "fabric: "+format+"\n", args...)
	}
}

// decodeBody parses a JSON request body, rejecting non-POSTs and bad JSON.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, fmt.Sprintf("fabric: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
