package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"time"

	"morrigan/internal/runner"
	"morrigan/internal/spans"
	"morrigan/internal/trace"
	"morrigan/internal/tracestore"
	"morrigan/internal/workloads"
)

// defaultPollWait is the worker-side long-poll window per lease request.
const defaultPollWait = 20 * time.Second

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (e.g. "http://127.0.0.1:9090").
	// Required.
	Coordinator string
	// Name identifies this worker in coordinator logs and status. Empty
	// defaults to "worker".
	Name string
	// Corpus, when non-nil, is the worker's local trace corpus store: jobs
	// read materialised containers from it, and containers the store misses
	// are fetched from the coordinator by workload hash (falling back to a
	// local build when the fetch fails). When nil, jobs step generators live.
	Corpus *tracestore.Store
	// Client is the HTTP client; nil means a fresh http.Client. The client
	// must not set a global timeout shorter than the lease long-poll window.
	Client *http.Client
	// PollWait is the lease long-poll window; zero means defaultPollWait.
	PollWait time.Duration
	// Log, when non-nil, receives one line per job and per notable event.
	Log io.Writer
	// Spans, when non-nil, accumulates this worker's spans locally (for a
	// worker-side -trace-out export) in addition to shipping them to a
	// tracing coordinator with each submission. Spans are recorded per job
	// whenever either side wants them.
	Spans *spans.Recorder
}

// Worker is a stateless fabric worker: it leases jobs from a coordinator,
// simulates them with the runner, and submits results back, repeating until
// its context ends or the coordinator goes away. Any number of workers may
// pull from one coordinator; none holds campaign state, so workers can join,
// leave, or be killed at any point without affecting campaign output.
type Worker struct {
	opt    WorkerOptions
	base   string
	client *http.Client

	// epoch anchors every per-job span recorder on one monotonic clock, so
	// all of this worker's spans share a timebase and one clock sample per
	// submission suffices to re-base them coordinator-side.
	epoch time.Time

	// jobsRun counts jobs this worker executed and submitted (informational).
	jobsRun int
}

// NewWorker builds a worker. Run starts it.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Coordinator == "" {
		return nil, errors.New("fabric: WorkerOptions.Coordinator is required")
	}
	if _, err := url.Parse(opt.Coordinator); err != nil {
		return nil, fmt.Errorf("fabric: coordinator URL: %w", err)
	}
	if opt.Name == "" {
		opt.Name = "worker"
	}
	if opt.PollWait <= 0 {
		opt.PollWait = defaultPollWait
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	epoch := time.Now()
	if opt.Spans != nil {
		// A caller-supplied recorder (worker-local -trace-out) defines the
		// epoch; per-job recorders adopt it so both sets of spans align.
		epoch = epoch.Add(-time.Duration(opt.Spans.Now()))
	}
	return &Worker{
		opt:    opt,
		base:   strings.TrimSuffix(opt.Coordinator, "/"),
		client: client,
		epoch:  epoch,
	}, nil
}

// now is the worker's trace clock: nanoseconds since its epoch.
func (w *Worker) now() int64 { return int64(time.Since(w.epoch)) }

// JobsRun reports how many jobs this worker executed and submitted.
func (w *Worker) JobsRun() int { return w.jobsRun }

// Run is the worker loop: lease, simulate, submit, repeat. It returns nil on
// a clean exit — the context ended, or the coordinator went away after the
// worker had connected at least once (a finished campaign shuts its
// coordinator down; workers drain out rather than erroring). Before first
// contact, connection failures retry with backoff, so a worker may be
// started before its coordinator.
func (w *Worker) Run(ctx context.Context) error {
	connected := false
	backoff := 100 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return nil
		}
		grant, ok, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if connected {
				// The coordinator answered before and is now unreachable:
				// the campaign is over (or the coordinator died — either
				// way there is nothing left to pull).
				w.logf("coordinator gone (%v); exiting", err)
				return nil
			}
			w.logf("waiting for coordinator: %v", err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		connected = true
		backoff = 100 * time.Millisecond
		if !ok {
			continue // idle window; poll again
		}
		w.process(ctx, grant)
	}
}

// lease long-polls for one job. ok is false on an empty (204) window.
func (w *Worker) lease(ctx context.Context) (leaseResponse, bool, error) {
	rctx, cancel := context.WithTimeout(ctx, w.opt.PollWait+10*time.Second)
	defer cancel()
	var resp leaseResponse
	status, err := w.post(rctx, "/fabric/lease", leaseRequest{
		Worker: w.opt.Name,
		WaitMS: w.opt.PollWait.Milliseconds(),
	}, &resp)
	if err != nil {
		return leaseResponse{}, false, err
	}
	switch status {
	case http.StatusOK:
		if resp.Protocol != ProtocolVersion {
			return leaseResponse{}, false, fmt.Errorf("fabric: coordinator speaks protocol %d, worker %d", resp.Protocol, ProtocolVersion)
		}
		return resp, true, nil
	case http.StatusNoContent:
		return leaseResponse{}, false, nil
	default:
		return leaseResponse{}, false, fmt.Errorf("fabric: lease: unexpected status %d", status)
	}
}

// process executes one leased job and submits its result. A lease lost
// mid-job (coordinator reassigned it) cancels the simulation, and nothing is
// submitted for a job that failed because of that cancellation — the
// reassigned run's result stands instead.
func (w *Worker) process(ctx context.Context, grant leaseResponse) {
	job := decodeJob(grant.Job)
	// One recorder per job, on the worker's shared epoch, whenever the
	// coordinator is assembling a trace or the worker exports its own.
	var rec *spans.Recorder
	if grant.Trace || w.opt.Spans != nil {
		rec = spans.NewRecorderAt(w.opt.Name, w.epoch)
	}
	if key, ok := job.Key(); !ok || key != grant.Key {
		// The job does not re-derive the coordinator's key: a hash-version or
		// protocol skew between builds. Fail the job loudly — silently
		// dropping the lease would hang the campaign until reassignment hits
		// the same wall on every worker.
		w.logf("job %s key skew (coordinator %.12s…); failing it", job.Name(), grant.Key)
		w.submit(ctx, grant, runner.Result{Job: job, Err: fmt.Errorf(
			"fabric: worker cannot re-derive job key %.12s… (mixed builds?)", grant.Key)}, nil)
		return
	}

	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hb := &heartbeatState{}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(jctx, cancel, grant, hb)
	}()

	w.logf("running %s (%.12s…)", job.Name(), grant.Key)
	opt := runner.Options{Workers: 1, Spans: rec}
	if w.opt.Corpus != nil {
		opt.NewReader = w.newReader(job, rec, grant.TraceID)
	}
	results, _ := runner.Run(jctx, []runner.Job{job}, opt)
	res := results[0]
	cancel()
	<-hbDone

	if res.Err != nil && jctx.Err() != nil {
		// The failure is (or may be) an artifact of cancellation — a lost
		// lease or worker shutdown, not the job. Submitting it would poison
		// the campaign first-write-wins; let the lease expire and the job be
		// reassigned instead. The abandon span records why the job was
		// cancelled — the heartbeat loop's verdict, or a worker shutdown.
		reason := hb.reason
		if reason == "" {
			reason = "worker shutdown"
		}
		rec.Start(traceIDFor(grant), "abandon").Attr("reason", reason).End()
		w.keepSpans(rec)
		w.logf("abandoning %s after cancellation (%v)", job.Name(), res.Err)
		return
	}
	w.submit(ctx, grant, res, rec)
	w.keepSpans(rec)
}

// traceIDFor is the trace id a grant's spans use: the explicit id when the
// coordinator sent one (protocol ≥ 2 always does), else the job key.
func traceIDFor(grant leaseResponse) string {
	if grant.TraceID != "" {
		return grant.TraceID
	}
	return grant.Key
}

// keepSpans folds a finished job's spans into the worker-local recorder for a
// worker-side export. Offsets are zero — both recorders share one epoch.
func (w *Worker) keepSpans(rec *spans.Recorder) {
	if w.opt.Spans != nil && rec != nil {
		w.opt.Spans.Import(rec.Spans(), 0)
	}
}

// heartbeatState carries the heartbeat loop's verdict back to process: why
// the job was cancelled, for the abandon span. Written before the loop
// returns; process reads it only after the loop's done channel closes.
type heartbeatState struct {
	reason string
}

// heartbeatLoop renews the lease at a third of its TTL until ctx ends,
// cancelling the job when the lease is lost (410) or the coordinator stays
// unreachable. A transient failure gets one in-tick retry after a jittered
// pause, all within the TTL/3 beat budget, so a single dropped packet or
// coordinator GC pause does not throw away a long simulation; only a failed
// retry cancels. Each beat also reports the worker's trace clock, its
// previously measured heartbeat round trip, and its live heap — the
// coordinator's clock-offset and fleet-telemetry feed.
func (w *Worker) heartbeatLoop(ctx context.Context, cancel context.CancelFunc, grant leaseResponse, hb *heartbeatState) {
	interval := time.Duration(grant.TTLMS) * time.Millisecond / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	var lastRTT int64
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		beat := func(timeout time.Duration) (int, error) {
			rctx, rcancel := context.WithTimeout(ctx, timeout)
			defer rcancel()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			var ack map[string]bool
			sent := time.Now()
			status, err := w.post(rctx, "/fabric/heartbeat", heartbeatRequest{
				LeaseID:   grant.LeaseID,
				Worker:    w.opt.Name,
				ClockNS:   w.now(),
				RTTNS:     lastRTT,
				HeapBytes: m.HeapAlloc,
			}, &ack)
			if err == nil {
				lastRTT = int64(time.Since(sent))
			}
			return status, err
		}
		status, err := beat(interval / 2)
		transient := err != nil || (status != http.StatusOK && status != http.StatusGone)
		if transient && ctx.Err() == nil {
			// Jittered retry inside the remaining beat budget: sleep an
			// eighth to a quarter of the interval, then try once more.
			pause := interval/8 + time.Duration(rand.Int63n(int64(interval/8)+1))
			select {
			case <-time.After(pause):
			case <-ctx.Done():
				return
			}
			status, err = beat(interval / 4)
		}
		switch {
		case err == nil && status == http.StatusOK:
		case err == nil && status == http.StatusGone:
			hb.reason = "lease lost"
			w.logf("lease %s lost; cancelling job", grant.LeaseID)
			cancel()
			return
		case ctx.Err() != nil:
			return
		default:
			hb.reason = "heartbeat unreachable"
			if err == nil {
				hb.reason = fmt.Sprintf("heartbeat rejected (status %d)", status)
			}
			w.logf("heartbeat failed twice (%s); cancelling job", hb.reason)
			cancel()
			return
		}
	}
}

// submit delivers one result, retrying transient failures a few times. When
// the lease asked for tracing, the job's spans ride along with a clock sample
// so the coordinator can re-base them.
func (w *Worker) submit(ctx context.Context, grant leaseResponse, res runner.Result, rec *spans.Recorder) {
	req := submitRequest{
		Worker:  w.opt.Name,
		LeaseID: grant.LeaseID,
		Key:     grant.Key,
		Result: wireResult{
			Stats:           res.Stats,
			SimInstructions: res.SimInstructions,
			ElapsedMS:       float64(res.Elapsed.Microseconds()) / 1000,
			InstrPerSec:     res.InstrPerSec,
			PeakHeapBytes:   res.PeakHeapBytes,
			Sampling:        res.Sampling,
		},
	}
	if res.Err != nil {
		req.Result.Err = res.Err.Error()
	}
	if grant.Trace && rec != nil {
		req.Spans = rec.Spans()
		req.ClockNS = w.now()
	}
	for attempt := 0; attempt < 3; attempt++ {
		rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
		var resp submitResponse
		status, err := w.post(rctx, "/fabric/submit", req, &resp)
		rcancel()
		if err == nil {
			switch {
			case status == http.StatusOK && resp.Mismatch:
				w.logf("submitted %.12s…: DISCARDED, stats differ from accepted result", grant.Key)
			case status == http.StatusOK && resp.Duplicate:
				w.logf("submitted %.12s…: duplicate (another worker finished first)", grant.Key)
			case status == http.StatusOK:
				w.jobsRun++
			default:
				w.logf("submit %.12s…: status %d", grant.Key, status)
			}
			return
		}
		if ctx.Err() != nil {
			return
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return
		}
	}
	w.logf("submit %.12s… failed after retries; lease will expire and reassign", grant.Key)
}

// newReader is the corpus hook for one job: containers present locally (and
// long enough) are used as-is; misses are fetched from the coordinator by
// workload hash and ingested, falling back to a local build when the fetch
// fails. Either way the job reads the exact same generator output, so
// results are bit-identical no matter where the container came from.
func (w *Worker) newReader(job runner.Job, rec *spans.Recorder, traceID string) func(workloads.Spec) (trace.Reader, error) {
	records := job.Warmup + job.Measure
	return func(spec workloads.Spec) (trace.Reader, error) {
		hash := spec.Hash()
		if e, ok := w.opt.Corpus.Manifest().Entries[hash]; !ok || e.Records < records {
			sp := rec.Start(traceID, "corpus.fetch")
			err := w.fetchCorpus(spec, hash, records)
			sp.Attr("ok", fmt.Sprint(err == nil)).End()
			if err != nil {
				w.logf("corpus fetch %.12s… failed (%v); building locally", hash, err)
			}
		}
		c, err := w.opt.Corpus.Materialize(spec, records)
		if err != nil {
			return nil, fmt.Errorf("fabric: materialising corpus for %s: %w", spec.Name, err)
		}
		return c.NewReader(), nil
	}
}

// fetchCorpus downloads one container from the coordinator and ingests it
// into the local store (verifying every chunk checksum on the way in).
func (w *Worker) fetchCorpus(spec workloads.Spec, hash string, records uint64) error {
	req, err := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/fabric/corpus/%s?records=%d", w.base, hash, records), nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if _, err := w.opt.Corpus.Ingest(spec, resp.Body); err != nil {
		return err
	}
	w.logf("fetched corpus %.12s… (%s) from coordinator", hash, spec.Name)
	return nil
}

// post sends one JSON request and decodes a JSON response (when the status
// has one). The returned status lets callers branch on 204/410.
func (w *Worker) post(ctx context.Context, path string, body, dst any) (int, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if dst != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric: decoding %s response: %w", path, err)
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// logf writes one worker event line when a log sink is configured.
func (w *Worker) logf(format string, args ...any) {
	if w.opt.Log != nil {
		fmt.Fprintf(w.opt.Log, "%s: "+format+"\n", append([]any{w.opt.Name}, args...)...)
	}
}
