package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"morrigan/internal/runner"
	"morrigan/internal/spans"
)

// TestFabricTraceAssembly runs a traced two-worker campaign and checks the
// assembled trace: every job's spans appear under its canonical key, the
// coordinator contributes lease.wait/lease spans, workers contribute
// execute/simulate spans re-based onto the coordinator's clock, and — the
// inertness half — the merged stats are bit-identical to an untraced
// in-process run.
func TestFabricTraceAssembly(t *testing.T) {
	jobs := fabricJobs(5)
	local, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	rec := spans.NewRecorder("coordinator")
	coord := NewCoordinator(CoordinatorOptions{Spans: rec})
	_, stop := startFabric(t, coord,
		newTestWorker(t, "w1", WorkerOptions{}),
		newTestWorker(t, "w2", WorkerOptions{}))
	defer stop()

	remote, err := runner.Run(context.Background(), jobs,
		runner.Options{Workers: 4, Remote: coord, Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if remote[i].Err != nil {
			t.Fatalf("job %d failed over the fabric: %v", i, remote[i].Err)
		}
		if remote[i].Stats != local[i].Stats {
			t.Errorf("job %d: traced fabric stats differ from the untraced in-process run", i)
		}
	}

	all := rec.Spans()
	if len(all) < len(jobs) {
		t.Fatalf("trace holds %d spans for %d jobs", len(all), len(jobs))
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		k, ok := j.Key()
		if !ok {
			t.Fatal("fabric test job has no key")
		}
		keys[k] = true
	}
	byTrace := map[string]map[string][]spans.Span{}
	for _, sp := range all {
		if !keys[sp.TraceID] {
			t.Errorf("span %s has trace id %.12s… that is no job key", sp.Name, sp.TraceID)
			continue
		}
		if sp.StartNS < 0 || sp.DurNS < 0 {
			t.Errorf("span %s/%.12s… has negative clock after re-basing: start=%d dur=%d",
				sp.Name, sp.TraceID, sp.StartNS, sp.DurNS)
		}
		m := byTrace[sp.TraceID]
		if m == nil {
			m = map[string][]spans.Span{}
			byTrace[sp.TraceID] = m
		}
		m[sp.Name] = append(m[sp.Name], sp)
	}
	for k := range keys {
		phases := byTrace[k]
		if phases == nil {
			t.Errorf("job %.12s… contributed no spans", k)
			continue
		}
		for _, name := range []string{"lease.wait", "lease", "execute", "simulate"} {
			if len(phases[name]) == 0 {
				t.Errorf("job %.12s… missing %q span", k, name)
			}
		}
		for _, sp := range phases["lease.wait"] {
			if sp.Worker != "coordinator" {
				t.Errorf("lease.wait span worker = %q, want coordinator", sp.Worker)
			}
		}
		for _, sp := range phases["execute"] {
			if sp.Worker != "w1" && sp.Worker != "w2" {
				t.Errorf("execute span worker = %q, want a fabric worker", sp.Worker)
			}
		}
		// The worker's execute span must land inside the coordinator's lease
		// span — the whole point of the clock re-basing. The offset estimate
		// is an RTT midpoint, so one-way scheduling delay under load shifts
		// rebased spans by single-digit milliseconds; allow that margin here
		// (gross mis-assembly is off by whole epochs) and leave exactness to
		// the injected-skew normalisation test.
		if len(phases["lease"]) == 1 && len(phases["execute"]) == 1 {
			l, e := phases["lease"][0], phases["execute"][0]
			const slack = int64(25 * time.Millisecond)
			if e.StartNS < l.StartNS-slack || e.End() > l.End()+slack {
				t.Errorf("job %.12s…: execute [%d,%d] escapes lease [%d,%d] by more than %dns after re-basing",
					k, e.StartNS, e.End(), l.StartNS, l.End(), slack)
			}
		}
	}

	// Fleet view: both workers accounted, all leases drained.
	st := coord.Status()
	if len(st.Fleet) != 2 {
		t.Fatalf("fleet has %d workers, want 2", len(st.Fleet))
	}
	done := 0
	for _, fw := range st.Fleet {
		if fw.ActiveLeases != 0 {
			t.Errorf("worker %s still shows %d active leases", fw.Name, fw.ActiveLeases)
		}
		done += fw.JobsDone
	}
	if done != len(jobs) {
		t.Errorf("fleet jobs_done sums to %d, want %d", done, len(jobs))
	}
}

// TestFabricFleetGauges checks the coordinator's gauge source carries the
// per-worker morrigan_fleet_* series with worker labels.
func TestFabricFleetGauges(t *testing.T) {
	jobs := fabricJobs(3)
	coord := NewCoordinator(CoordinatorOptions{})
	_, stop := startFabric(t, coord, newTestWorker(t, "solo", WorkerOptions{}))
	defer stop()
	if _, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2, Remote: coord}); err != nil {
		t.Fatal(err)
	}

	found := map[string]float64{}
	for _, g := range coord.Gauges() {
		if g.Labels["worker"] == "solo" {
			found[g.Name] = g.Value
		}
	}
	if got := found["morrigan_fleet_worker_jobs_done"]; got != float64(len(jobs)) {
		t.Errorf("fleet jobs_done gauge = %v, want %d", got, len(jobs))
	}
	if got := found["morrigan_fleet_worker_instr_per_sec"]; got <= 0 {
		t.Errorf("fleet instr_per_sec gauge = %v, want > 0", got)
	}
	for _, name := range []string{
		"morrigan_fleet_worker_active_leases",
		"morrigan_fleet_worker_heartbeat_rtt_seconds",
		"morrigan_fleet_worker_heap_bytes",
		"morrigan_fleet_worker_last_contact_seconds",
	} {
		if _, ok := found[name]; !ok {
			t.Errorf("gauge %s missing for worker solo", name)
		}
	}
}

// TestFabricAbandonReason drives a worker against a hostile fake coordinator
// that grants one lease then declares it Gone on the first heartbeat. The
// worker must cancel the job, submit nothing, and record an abandon span whose
// reason is the heartbeat verdict.
func TestFabricAbandonReason(t *testing.T) {
	job := fabricJobs(1)[0]
	job.Measure = 3_000_000 // slow enough that the heartbeat fires mid-job
	key, _ := job.Key()

	var mu sync.Mutex
	granted := false
	submitted := false
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/fabric/lease":
			mu.Lock()
			first := !granted
			granted = true
			mu.Unlock()
			if !first {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			writeJSON(w, http.StatusOK, leaseResponse{
				Protocol: ProtocolVersion,
				LeaseID:  "l1",
				Key:      key,
				Job:      encodeJob(job),
				TTLMS:    300, // heartbeat every 100ms, mid-job but not timeout-tight
				TraceID:  key,
			})
		case "/fabric/heartbeat":
			http.Error(w, "gone", http.StatusGone)
		case "/fabric/submit":
			mu.Lock()
			submitted = true
			mu.Unlock()
			writeJSON(w, http.StatusOK, submitResponse{Accepted: true})
		default:
			http.NotFound(w, r)
		}
	}))
	defer fake.Close()

	rec := spans.NewRecorder("w1")
	w, err := NewWorker(WorkerOptions{
		Coordinator: fake.URL,
		Name:        "w1",
		PollWait:    50 * time.Millisecond,
		Spans:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker run: %v", err)
		}
	}()

	var abandon *spans.Span
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		for _, sp := range rec.Spans() {
			if sp.Name == "abandon" {
				abandon = &sp
				break
			}
		}
		if abandon != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	if abandon == nil {
		t.Fatal("worker never recorded an abandon span after losing its lease")
	}
	if abandon.TraceID != key {
		t.Errorf("abandon span trace id %.12s…, want the job key", abandon.TraceID)
	}
	if got := abandon.Attrs["reason"]; got != "lease lost" {
		t.Errorf("abandon reason = %q, want \"lease lost\"", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if submitted {
		t.Error("worker submitted a result for a job it should have abandoned")
	}
}
