package icache

import (
	"testing"

	"morrigan/internal/arch"
)

func TestNextLineStaysInPage(t *testing.T) {
	var nl NextLine
	got := nl.OnFetch(10, true)
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("OnFetch = %v", got)
	}
	// Last line of a page: no prefetch across the boundary.
	last := uint64(linesPerPage - 1)
	if got := nl.OnFetch(last, false); got != nil {
		t.Fatalf("page-crossing prefetch from next-line: %v", got)
	}
	if nl.Name() != "next-line" {
		t.Fatal("name wrong")
	}
	nl.Flush()
}

func TestLinesPerPage(t *testing.T) {
	if linesPerPage != 64 {
		t.Fatalf("linesPerPage = %d, want 64", linesPerPage)
	}
	if !samePage(0, 63) || samePage(63, 64) {
		t.Fatal("samePage wrong")
	}
}

func TestFNLCrossesPages(t *testing.T) {
	f := DefaultFNLMMA()
	last := uint64(linesPerPage - 1)
	got := f.OnFetch(last, false)
	crossed := false
	for _, l := range got {
		if !samePage(l, last) {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("FNL must cross page boundaries")
	}
	if len(got) != f.Degree {
		t.Fatalf("non-miss fetch should produce exactly Degree=%d lines, got %d", f.Degree, len(got))
	}
}

func TestMMALearnsMissChain(t *testing.T) {
	f := NewFNLMMA(64, 8, 1, 2)
	// Miss chain: 100 -> 500 -> 900, repeated.
	for i := 0; i < 3; i++ {
		f.OnFetch(100, true)
		f.OnFetch(500, true)
		f.OnFetch(900, true)
	}
	got := f.OnFetch(100, true)
	has := func(want uint64) bool {
		for _, l := range got {
			if l == want {
				return true
			}
		}
		return false
	}
	if !has(500) {
		t.Fatalf("depth-1 successor 500 not predicted: %v", got)
	}
	if !has(900) {
		t.Fatalf("depth-2 successor 900 not predicted (Ahead=2): %v", got)
	}
}

func TestMMASuccessorSlotLRU(t *testing.T) {
	f := NewFNLMMA(64, 8, 1, 1)
	// 100's successors: 200, then 300, then 400 replaces the LRU (200).
	for _, chain := range [][2]uint64{{100, 200}, {100, 300}, {100, 400}} {
		f.OnFetch(chain[0], true)
		f.OnFetch(chain[1], true)
	}
	got := f.OnFetch(100, true)
	for _, l := range got {
		if l == 200 {
			t.Fatal("LRU successor 200 should have been replaced")
		}
	}
}

func TestMMAEntryEviction(t *testing.T) {
	f := NewFNLMMA(8, 8, 1, 1)
	// Install far more miss lines than the table holds; must not grow.
	for i := uint64(0); i < 100; i++ {
		f.OnFetch(i*1000, true)
	}
	valid := 0
	for _, e := range f.ents {
		if e.valid {
			valid++
		}
	}
	if valid > 8 {
		t.Fatalf("%d valid entries in an 8-entry table", valid)
	}
}

func TestFNLMMAFlush(t *testing.T) {
	f := NewFNLMMA(64, 8, 1, 1)
	f.OnFetch(100, true)
	f.OnFetch(200, true)
	f.Flush()
	got := f.OnFetch(100, true)
	for _, l := range got {
		if l == 200 {
			t.Fatal("learned state survived flush")
		}
	}
}

func TestFNLMMAGeometryPanics(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {8, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v accepted", bad)
				}
			}()
			NewFNLMMA(bad[0], bad[1], 1, 1)
		}()
	}
	// Degenerate degree/ahead are clamped, not rejected.
	f := NewFNLMMA(8, 8, 0, 0)
	if f.Degree != 1 || f.Ahead != 1 {
		t.Fatal("degree/ahead not clamped")
	}
}

func TestFNLMMADeterministicAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		f := NewFNLMMA(64, 8, 2, 2)
		var last []uint64
		for i := 0; i < 50; i++ {
			last = f.OnFetch(uint64(i%7)*100, i%3 == 0)
		}
		return last
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic output length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic output")
		}
	}
}

func TestVirtualLineArithmetic(t *testing.T) {
	// Guard the line/page relationship used by the sim front-end.
	v := arch.VAddr(0x40FFC0)
	if v.Line() != uint64(v)/arch.LineSize {
		t.Fatal("line arithmetic mismatch")
	}
}
