// Package icache implements the instruction-cache prefetchers the paper
// evaluates: the baseline next-line prefetcher that never crosses page
// boundaries (Table 1), and an FNL+MMA-style prefetcher — the IPC-1 winner —
// that does cross page boundaries and therefore implicitly generates
// instruction TLB traffic (Sections 3.5 and 6.5).
//
// FNL+MMA here is a faithful-in-spirit approximation built from its two
// published components: a Footprint Next Line engine that pushes several
// sequential lines ahead of the fetch stream, and a Multiple Miss Ahead
// engine that learns the successors of I-cache miss lines and runs the
// learned miss chain ahead of the demand stream. What the paper's
// experiments need from it — aggressive, reasonably accurate page-crossing
// instruction prefetches whose timeliness depends on address translation —
// is preserved. See DESIGN.md for the substitution note.
package icache

import "morrigan/internal/arch"

// Prefetcher produces instruction prefetch candidates, as virtual line
// numbers, in response to the demand fetch stream.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// OnFetch observes a demand fetch of the given virtual line and
	// whether it missed in the L1I; it returns virtual lines to prefetch.
	// The returned slice is only valid until the next OnFetch call:
	// stateful implementations reuse an internal buffer to keep the fetch
	// path allocation-free.
	OnFetch(line uint64, miss bool) []uint64
	// Flush clears learned state.
	Flush()
}

// linesPerPage is how many cache lines one 4 KB page holds (64).
const linesPerPage = arch.PageSize / arch.LineSize

// samePage reports whether two virtual lines fall in the same page.
func samePage(a, b uint64) bool {
	return a/linesPerPage == b/linesPerPage
}

// NextLine is the baseline next-line prefetcher: on every fetch it prefetches
// the following line unless that would cross a page boundary.
type NextLine struct{}

// Name implements Prefetcher.
func (NextLine) Name() string { return "next-line" }

// OnFetch implements Prefetcher.
func (NextLine) OnFetch(line uint64, miss bool) []uint64 {
	if !samePage(line, line+1) {
		return nil
	}
	return []uint64{line + 1}
}

// Flush implements Prefetcher.
func (NextLine) Flush() {}

var _ Prefetcher = NextLine{}

// mmaEntry holds the learned miss successors of one miss line.
type mmaEntry struct {
	line  uint64
	succ  [2]uint64
	sused [2]uint64
	n     int
	used  uint64
	valid bool
}

// FNLMMA approximates the IPC-1 winner. The FNL component prefetches Degree
// sequential lines ahead of every fetch, crossing page boundaries; the MMA
// component records, per I-cache miss line, the next miss lines and walks
// that chain Ahead steps forward on each miss.
type FNLMMA struct {
	// Degree is the sequential lookahead of the FNL component.
	Degree int
	// Ahead is how many learned miss-successor steps MMA runs forward.
	Ahead int

	ents     []mmaEntry
	ways     int
	sets     int
	tick     uint64
	prevMiss uint64
	seeded   bool

	// Reusable OnFetch buffers (result valid until the next call).
	out      []uint64
	frontier []uint64
	next     []uint64
}

// NewFNLMMA builds the prefetcher with the given miss-table capacity.
func NewFNLMMA(entries, ways, degree, ahead int) *FNLMMA {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("icache: FNL+MMA geometry must be positive with entries a multiple of ways")
	}
	if degree < 1 {
		degree = 1
	}
	if ahead < 1 {
		ahead = 1
	}
	return &FNLMMA{
		Degree: degree,
		Ahead:  ahead,
		ents:   make([]mmaEntry, entries),
		ways:   ways,
		sets:   entries / ways,
	}
}

// DefaultFNLMMA returns a configuration comparable to the IPC-1 submission's
// storage class: a 2K-entry miss table, FNL degree 4, MMA depth 3.
func DefaultFNLMMA() *FNLMMA { return NewFNLMMA(2048, 8, 4, 3) }

// Name implements Prefetcher.
func (f *FNLMMA) Name() string { return "FNL+MMA" }

func (f *FNLMMA) set(line uint64) []mmaEntry {
	s := int(line % uint64(f.sets))
	return f.ents[s*f.ways : (s+1)*f.ways]
}

func (f *FNLMMA) find(line uint64) *mmaEntry {
	set := f.set(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			f.tick++
			set[i].used = f.tick
			return &set[i]
		}
	}
	return nil
}

// record notes that a miss on prev was followed by a miss on cur.
func (f *FNLMMA) record(prev, cur uint64) {
	e := f.find(prev)
	if e == nil {
		set := f.set(prev)
		victim := 0
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
			if set[i].used < set[victim].used {
				victim = i
			}
		}
		f.tick++
		set[victim] = mmaEntry{line: prev, used: f.tick, valid: true}
		e = &set[victim]
	}
	for i := 0; i < e.n; i++ {
		if e.succ[i] == cur {
			e.sused[i] = f.tick
			return
		}
	}
	if e.n < len(e.succ) {
		e.succ[e.n] = cur
		e.sused[e.n] = f.tick
		e.n++
		return
	}
	v := 0
	if e.sused[1] < e.sused[0] {
		v = 1
	}
	e.succ[v] = cur
	e.sused[v] = f.tick
}

// OnFetch implements Prefetcher.
func (f *FNLMMA) OnFetch(line uint64, miss bool) []uint64 {
	out := f.out[:0]
	// FNL: run several lines ahead, across page boundaries.
	for d := 1; d <= f.Degree; d++ {
		out = append(out, line+uint64(d))
	}
	if miss {
		if f.seeded && f.prevMiss != line {
			f.record(f.prevMiss, line)
		}
		f.prevMiss = line
		f.seeded = true
		// MMA: follow the learned miss chain ahead.
		frontier := append(f.frontier[:0], line)
		next := f.next[:0]
		for depth := 0; depth < f.Ahead; depth++ {
			next = next[:0]
			for _, l := range frontier {
				e := f.find(l)
				if e == nil {
					continue
				}
				for i := 0; i < e.n; i++ {
					out = append(out, e.succ[i])
					next = append(next, e.succ[i])
				}
			}
			if len(next) == 0 {
				break
			}
			frontier, next = next, frontier
		}
		f.frontier, f.next = frontier[:0], next[:0]
	}
	f.out = out
	return out
}

// Flush implements Prefetcher.
func (f *FNLMMA) Flush() {
	for i := range f.ents {
		f.ents[i].valid = false
	}
	f.seeded = false
}

var _ Prefetcher = (*FNLMMA)(nil)
