package icache

import "testing"

func has(lines []uint64, want uint64) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}

func TestEPIEntanglesMissChain(t *testing.T) {
	e := NewEPI(64, 8, 4, 4)
	// Head 100 followed by misses 500, 900 within the window.
	e.OnFetch(100, true)
	e.OnFetch(500, true)
	e.OnFetch(900, true)
	// Re-fetching the head (even a hit) prefetches the entangled lines.
	got := e.OnFetch(100, false)
	if !has(got, 500) || !has(got, 900) {
		t.Fatalf("entangled destinations missing: %v", got)
	}
}

func TestEPIWindowBoundsEntangling(t *testing.T) {
	e := NewEPI(64, 8, 8, 2)
	e.OnFetch(100, true)
	e.OnFetch(200, true)
	e.OnFetch(300, true)
	// The window closed after two follow-on misses: 400 starts a new head.
	e.OnFetch(400, true)
	got := e.OnFetch(100, false)
	if has(got, 400) {
		t.Fatalf("miss beyond window entangled: %v", got)
	}
}

func TestEPIDestinationLRU(t *testing.T) {
	e := NewEPI(64, 8, 2, 8)
	// Entangle three destinations with head 100; the first is LRU-evicted.
	for _, chain := range [][]uint64{{100, 11}, {100, 22}, {100, 33}} {
		e.OnFetch(chain[0], true)
		e.OnFetch(chain[1], true)
	}
	got := e.OnFetch(100, false)
	if has(got, 11) {
		t.Fatalf("LRU destination survived: %v", got)
	}
	if !has(got, 33) {
		t.Fatalf("newest destination missing: %v", got)
	}
}

func TestEPIFlushAndGeometry(t *testing.T) {
	e := NewEPI(64, 8, 2, 2)
	e.OnFetch(100, true)
	e.OnFetch(200, true)
	e.Flush()
	if got := e.OnFetch(100, false); len(got) != 0 {
		t.Fatalf("state survived flush: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	NewEPI(10, 4, 1, 1)
}

func TestDJoltSequentialAndJump(t *testing.T) {
	d := NewDJolt(64, 8, 2, 3, 16)
	// Teach a long jump: region of line 100 jumps to 5000.
	d.OnFetch(100, true)
	d.OnFetch(5000, true)
	// Re-fetching the source region prefetches sequential lines plus the
	// jump target footprint.
	got := d.OnFetch(101, false) // same 4-line region as 100
	if !has(got, 102) || !has(got, 103) {
		t.Fatalf("sequential lines missing: %v", got)
	}
	for f := uint64(0); f <= 3; f++ {
		if !has(got, 5000+f) {
			t.Fatalf("jump footprint line %d missing: %v", 5000+f, got)
		}
	}
}

func TestDJoltIgnoresShortJumps(t *testing.T) {
	d := NewDJolt(64, 8, 1, 1, 16)
	d.OnFetch(100, true)
	d.OnFetch(104, true) // below JumpMin
	got := d.OnFetch(100, false)
	if has(got, 104) {
		t.Fatalf("short jump recorded: %v", got)
	}
}

func TestDJoltCrossesPages(t *testing.T) {
	d := DefaultDJolt()
	last := uint64(linesPerPage - 1)
	got := d.OnFetch(last, false)
	crossed := false
	for _, l := range got {
		if !samePage(l, last) {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("D-Jolt must cross page boundaries")
	}
}

func TestDJoltFlush(t *testing.T) {
	d := NewDJolt(64, 8, 1, 1, 16)
	d.OnFetch(100, true)
	d.OnFetch(5000, true)
	d.Flush()
	if got := d.OnFetch(100, false); has(got, 5000) {
		t.Fatalf("jump table survived flush: %v", got)
	}
}

func TestIPC1Defaults(t *testing.T) {
	if DefaultEPI().Name() != "EPI" || DefaultDJolt().Name() != "D-Jolt" {
		t.Fatal("names wrong")
	}
	// Clamped degenerate parameters.
	e := NewEPI(8, 8, 0, 0)
	if e.Destinations != 1 || e.Window != 1 {
		t.Fatal("EPI clamping wrong")
	}
	d := NewDJolt(8, 8, 0, 0, 0)
	if d.Degree != 1 || d.Footprint != 1 || d.JumpMin != 2 {
		t.Fatal("D-Jolt clamping wrong")
	}
}
