package icache

// The paper's Section 3.5 considers the three top performers of the first
// Instruction Prefetching Championship — EPI, FNL+MMA and D-Jolt — extends
// the IPC-1 infrastructure with address translation costs, and selects
// FNL+MMA as the strongest under translation. This file provides
// faithful-in-spirit approximations of the other two finalists so that the
// selection study can be reproduced (see experiments.ICacheSelection):
//
//   - EPI (Entangling Prefetcher): entangles the line that *triggered* a
//     miss chain ("head") with the lines whose misses follow soon after, so
//     that one fetch of the head prefetches all entangled destinations with
//     enough lead time. We model entangling at miss granularity with a
//     bounded number of destinations per head.
//
//   - D-Jolt (short-distance + long-jump prefetcher): a sequential
//     next-lines engine for straight-line fetch plus a "jolt" table that
//     records, per call-like long jump source region, the distant target
//     line and a small footprint after it, prefetched together when the
//     source region is fetched again.
//
// Both cross page boundaries, like the originals.

// EPI approximates the Entangling Instruction Prefetcher.
type EPI struct {
	// Destinations is the maximum entangled destinations per head line.
	Destinations int
	// Window is how many subsequent misses entangle with the current head.
	Window int

	ents []epiEntry
	ways int
	sets int
	tick uint64

	head      uint64 // current entangling head line
	sinceHead int    // misses observed since the head
	haveHead  bool

	out []uint64 // reusable OnFetch buffer (valid until the next call)
}

type epiEntry struct {
	line  uint64
	dst   []uint64
	dused []uint64
	used  uint64
	valid bool
}

// NewEPI builds the prefetcher with the given entangling-table geometry.
func NewEPI(entries, ways, destinations, window int) *EPI {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("icache: EPI geometry must be positive with entries a multiple of ways")
	}
	if destinations < 1 {
		destinations = 1
	}
	if window < 1 {
		window = 1
	}
	return &EPI{
		Destinations: destinations,
		Window:       window,
		ents:         make([]epiEntry, entries),
		ways:         ways,
		sets:         entries / ways,
	}
}

// DefaultEPI sizes the table comparably to the IPC-1 submission's class.
func DefaultEPI() *EPI { return NewEPI(2048, 8, 6, 4) }

// Name implements Prefetcher.
func (e *EPI) Name() string { return "EPI" }

func (e *EPI) set(line uint64) []epiEntry {
	s := int(line % uint64(e.sets))
	return e.ents[s*e.ways : (s+1)*e.ways]
}

func (e *EPI) find(line uint64, insert bool) *epiEntry {
	set := e.set(line)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].line == line {
			e.tick++
			set[i].used = e.tick
			return &set[i]
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].used < set[victim].used {
			victim = i
		}
	}
	if !insert {
		return nil
	}
	e.tick++
	set[victim] = epiEntry{line: line, used: e.tick, valid: true}
	return &set[victim]
}

// entangle records dst as a destination of the current head.
func (e *EPI) entangle(dst uint64) {
	ent := e.find(e.head, true)
	for i, d := range ent.dst {
		if d == dst {
			e.tick++
			ent.dused[i] = e.tick
			return
		}
	}
	e.tick++
	if len(ent.dst) < e.Destinations {
		ent.dst = append(ent.dst, dst)
		ent.dused = append(ent.dused, e.tick)
		return
	}
	v := 0
	for i := range ent.dused {
		if ent.dused[i] < ent.dused[v] {
			v = i
		}
	}
	ent.dst[v] = dst
	ent.dused[v] = e.tick
}

// OnFetch implements Prefetcher.
func (e *EPI) OnFetch(line uint64, miss bool) []uint64 {
	var out []uint64
	// Trigger: any fetch of an entangling head prefetches its
	// destinations ahead of their misses.
	if ent := e.find(line, false); ent != nil {
		e.out = append(e.out[:0], ent.dst...)
		out = e.out
	}
	if miss {
		if e.haveHead && e.sinceHead < e.Window && line != e.head {
			e.entangle(line)
			e.sinceHead++
		} else {
			// This miss starts a new entangling chain.
			e.head = line
			e.sinceHead = 0
			e.haveHead = true
		}
	}
	return out
}

// Flush implements Prefetcher.
func (e *EPI) Flush() {
	for i := range e.ents {
		e.ents[i].valid = false
	}
	e.haveHead = false
}

var _ Prefetcher = (*EPI)(nil)

// DJolt approximates the D-Jolt prefetcher: sequential next-lines for
// short-distance fetch plus a long-jump table that, when a source region is
// re-fetched, "jolts" ahead to the recorded distant target and its
// footprint.
type DJolt struct {
	// Degree is the sequential lookahead.
	Degree int
	// Footprint is how many lines after a jump target are prefetched.
	Footprint int
	// JumpMin is the minimum line distance treated as a long jump.
	JumpMin uint64

	ents     []djoltEntry
	ways     int
	sets     int
	tick     uint64
	lastLine uint64
	seeded   bool

	out []uint64 // reusable OnFetch buffer (valid until the next call)
}

type djoltEntry struct {
	srcRegion uint64
	target    uint64
	used      uint64
	valid     bool
}

// regionShift groups jump sources into 4-line regions, giving the jolt
// table some reach without per-line precision.
const regionShift = 2

// NewDJolt builds the prefetcher with the given jump-table geometry.
func NewDJolt(entries, ways, degree, footprint int, jumpMin uint64) *DJolt {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("icache: D-Jolt geometry must be positive with entries a multiple of ways")
	}
	if degree < 1 {
		degree = 1
	}
	if footprint < 1 {
		footprint = 1
	}
	if jumpMin < 2 {
		jumpMin = 2
	}
	return &DJolt{
		Degree:    degree,
		Footprint: footprint,
		JumpMin:   jumpMin,
		ents:      make([]djoltEntry, entries),
		ways:      ways,
		sets:      entries / ways,
	}
}

// DefaultDJolt sizes the structures comparably to the IPC-1 class.
func DefaultDJolt() *DJolt { return NewDJolt(2048, 8, 3, 4, 16) }

// Name implements Prefetcher.
func (d *DJolt) Name() string { return "D-Jolt" }

func (d *DJolt) set(region uint64) []djoltEntry {
	s := int(region % uint64(d.sets))
	return d.ents[s*d.ways : (s+1)*d.ways]
}

// OnFetch implements Prefetcher.
func (d *DJolt) OnFetch(line uint64, miss bool) []uint64 {
	out := d.out[:0]
	for i := 1; i <= d.Degree; i++ {
		out = append(out, line+uint64(i))
	}
	region := line >> regionShift
	set := d.set(region)
	for i := range set {
		if set[i].valid && set[i].srcRegion == region {
			d.tick++
			set[i].used = d.tick
			for f := uint64(0); f <= uint64(d.Footprint); f++ {
				out = append(out, set[i].target+f)
			}
			break
		}
	}
	// Learn long jumps from the fetch stream.
	if d.seeded {
		delta := line - d.lastLine
		if d.lastLine > line {
			delta = d.lastLine - line
		}
		if delta >= d.JumpMin {
			src := d.lastLine >> regionShift
			set := d.set(src)
			victim := 0
			for i := range set {
				if set[i].valid && set[i].srcRegion == src {
					victim = i
					break
				}
				if !set[i].valid {
					victim = i
				} else if set[victim].valid && set[i].used < set[victim].used {
					victim = i
				}
			}
			d.tick++
			set[victim] = djoltEntry{srcRegion: src, target: line, used: d.tick, valid: true}
		}
	}
	d.lastLine = line
	d.seeded = true
	d.out = out
	return out
}

// Flush implements Prefetcher.
func (d *DJolt) Flush() {
	for i := range d.ents {
		d.ents[i].valid = false
	}
	d.seeded = false
}

var _ Prefetcher = (*DJolt)(nil)
