package pagetable

import (
	"math/rand"

	"morrigan/internal/arch"
)

// Hashed is a clustered hashed page table in the style the paper cites
// (Yaniv & Tsafrir, "Hash, Don't Cache (the Page Table)"; Section 4.3 notes
// Morrigan "would operate the same since hashed page tables preserve page
// table locality").
//
// The table is an open-addressed array of 64-byte buckets in simulated
// physical memory. Each bucket covers one VPN line group — the 8
// consecutive virtual pages whose translations a radix table would also
// pack into one cache line — so page table locality is preserved by
// construction: one bucket read yields up to 8 translations. A walk probes
// the home bucket and continues linearly on tag mismatches; each probe is
// one memory reference. There are no interior levels, so the walker's
// page-structure caches are idle with this table.
type Hashed struct {
	buckets   int // power of two
	basePFN   arch.PFN
	tags      []uint64 // occupied group tag per bucket (+1 so 0 = free)
	groups    map[uint64]*hashedGroup
	rng       *rand.Rand
	nextUser  arch.PFN
	scatter   int
	mappedCnt uint64
	probesSum uint64
	walks     uint64
	epoch     uint64 // structural mutation counter (see Translator.Epoch)
}

// hashedGroup holds the resident PTEs of one VPN line group.
type hashedGroup struct {
	bucket int // index of the bucket the group landed in
	ptes   [arch.PTEsPerLine]PTE
}

var _ Translator = (*Hashed)(nil)

// hashedBasePFN places the hashed table in the kernel region of physical
// memory, above where a radix table would allocate nodes.
const hashedBasePFN arch.PFN = 0x0080_0000 // 32 GB

// NewHashed builds a clustered hashed page table with the given bucket
// count (a power of two; one bucket is one cache line).
func NewHashed(seed int64, buckets int) *Hashed {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("pagetable: hashed buckets must be a positive power of two")
	}
	return &Hashed{
		buckets:  buckets,
		basePFN:  hashedBasePFN,
		tags:     make([]uint64, buckets),
		groups:   make(map[uint64]*hashedGroup),
		rng:      rand.New(rand.NewSource(seed)),
		nextUser: userBasePFN,
		scatter:  8,
	}
}

// DefaultHashedBuckets sizes the table for the simulated workloads: 1 M
// buckets (64 MB of simulated physical memory, 8 M translations).
const DefaultHashedBuckets = 1 << 20

// groupTag returns the hash key of vpn's line group, offset so that zero
// means "free bucket".
func groupTag(vpn arch.VPN) uint64 { return uint64(vpn.LineGroup()) + 1 }

// hash mixes the group tag into a bucket index.
func (h *Hashed) hash(tag uint64) int {
	x := tag * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return int((x >> 32) % uint64(h.buckets))
}

// bucketAddr returns the physical address of bucket i.
func (h *Hashed) bucketAddr(i int) arch.PAddr {
	return h.basePFN.Addr() + arch.PAddr(i*arch.LineSize)
}

// allocUserFrame mirrors the radix table's lightly fragmented allocator.
func (h *Hashed) allocUserFrame() arch.PFN {
	if h.scatter > 0 && h.rng.Intn(4) == 0 {
		h.nextUser += arch.PFN(1 + h.rng.Intn(h.scatter))
	}
	f := h.nextUser
	h.nextUser++
	return f
}

// find returns the group and its probe path. The probe sequence always
// contains at least the home bucket; on collisions it extends linearly.
func (h *Hashed) find(tag uint64) (g *hashedGroup, probes []int, free int) {
	free = -1
	idx := h.hash(tag)
	for step := 0; step < h.buckets; step++ {
		i := (idx + step) % h.buckets
		probes = append(probes, i)
		switch h.tags[i] {
		case tag:
			return h.groups[tag], probes, free
		case 0:
			return nil, probes, i
		}
		if len(probes) >= arch.MaxRadixLevels {
			// Cap the modelled probe chain; a real implementation would
			// rehash long chains. Insertion still finds a free slot below.
			break
		}
	}
	// Continue silently past the modelled cap to find a free bucket.
	for step := len(probes); step < h.buckets; step++ {
		i := (idx + step) % h.buckets
		if h.tags[i] == 0 {
			return nil, probes, i
		}
		if h.tags[i] == tag {
			return h.groups[tag], probes, -1
		}
	}
	return nil, probes, -1
}

// Walk implements Translator: the probe sequence becomes the walk's memory
// references.
func (h *Hashed) Walk(vpn arch.VPN, allocate bool) Path {
	tag := groupTag(vpn)
	g, probes, free := h.find(tag)
	var p Path
	for i, b := range probes {
		if i >= arch.MaxRadixLevels {
			break
		}
		p.Addrs[i] = h.bucketAddr(b)
		p.Depth = i + 1
	}
	h.walks++
	h.probesSum += uint64(p.Depth)
	slot := uint64(vpn) % arch.PTEsPerLine
	if g != nil && g.ptes[slot].Present {
		p.Present = true
		p.Leaf = g.ptes[slot].PFN
		return p
	}
	if !allocate {
		return p
	}
	if g == nil {
		if free < 0 {
			panic("pagetable: hashed table full")
		}
		g = &hashedGroup{bucket: free}
		h.tags[free] = tag
		h.groups[tag] = g
	}
	g.ptes[slot] = PTE{PFN: h.allocUserFrame(), Present: true}
	h.mappedCnt++
	h.epoch++
	p.Present = true
	p.Leaf = g.ptes[slot].PFN
	return p
}

// Lookup implements Translator.
func (h *Hashed) Lookup(vpn arch.VPN) (PTE, bool) {
	g, ok := h.groups[groupTag(vpn)]
	if !ok {
		return PTE{}, false
	}
	pte := g.ptes[uint64(vpn)%arch.PTEsPerLine]
	return pte, pte.Present
}

// EnsureMapped implements Translator.
func (h *Hashed) EnsureMapped(vpn arch.VPN) arch.PFN {
	return h.Walk(vpn, true).Leaf
}

// MarkAccessed implements Translator.
func (h *Hashed) MarkAccessed(vpn arch.VPN) bool {
	g, ok := h.groups[groupTag(vpn)]
	if !ok {
		return false
	}
	pte := &g.ptes[uint64(vpn)%arch.PTEsPerLine]
	if !pte.Present || pte.Accessed {
		return false
	}
	pte.Accessed = true
	return true
}

// ClearAccessed implements Translator.
func (h *Hashed) ClearAccessed(vpn arch.VPN) bool {
	g, ok := h.groups[groupTag(vpn)]
	if !ok {
		return false
	}
	pte := &g.ptes[uint64(vpn)%arch.PTEsPerLine]
	if !pte.Present || !pte.Accessed {
		return false
	}
	pte.Accessed = false
	return true
}

// LineNeighbors implements Translator: the bucket line holds the whole
// group, so spatial prefetching works exactly as with the radix table.
func (h *Hashed) LineNeighbors(vpn arch.VPN) []arch.VPN {
	g, ok := h.groups[groupTag(vpn)]
	if !ok {
		return nil
	}
	base := vpn.LineGroup()
	out := make([]arch.VPN, 0, arch.PTEsPerLine-1)
	for i := arch.VPN(0); i < arch.PTEsPerLine; i++ {
		v := base + i
		if v != vpn && g.ptes[i].Present {
			out = append(out, v)
		}
	}
	return out
}

// InteriorLevels implements Translator: hashed walks have no interior
// levels for a PSC to skip.
func (h *Hashed) InteriorLevels() int { return 0 }

// MappedPages implements Translator.
func (h *Hashed) MappedPages() uint64 { return h.mappedCnt }

// Epoch implements Translator. Installing a PTE covers group creation too:
// a new group's tag can lengthen other groups' probe chains, and every such
// install also bumps the epoch.
func (h *Hashed) Epoch() uint64 { return h.epoch }

// AvgProbes reports mean bucket probes per walk (1.0 = collision-free).
func (h *Hashed) AvgProbes() float64 {
	if h.walks == 0 {
		return 0
	}
	return float64(h.probesSum) / float64(h.walks)
}
