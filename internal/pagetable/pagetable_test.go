package pagetable

import (
	"testing"
	"testing/quick"

	"morrigan/internal/arch"
)

func TestDemandWalkMapsPage(t *testing.T) {
	pt := New(1)
	vpn := arch.VPN(0x400)
	if _, ok := pt.Lookup(vpn); ok {
		t.Fatal("unmapped page present")
	}
	p := pt.Walk(vpn, true)
	if !p.Present || p.Depth != arch.RadixLevels {
		t.Fatalf("demand walk: %+v", p)
	}
	pte, ok := pt.Lookup(vpn)
	if !ok || pte.PFN != p.Leaf {
		t.Fatalf("Lookup after map: %+v ok=%v", pte, ok)
	}
	if pt.MappedPages() != 1 {
		t.Errorf("MappedPages = %d", pt.MappedPages())
	}
	// Root + 3 interior/leaf nodes for a fresh path.
	if pt.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4", pt.Nodes())
	}
}

func TestPrefetchWalkDoesNotMap(t *testing.T) {
	pt := New(1)
	vpn := arch.VPN(0x400)
	p := pt.Walk(vpn, false)
	if p.Present {
		t.Fatal("prefetch walk mapped a page")
	}
	if p.Depth != 1 {
		t.Fatalf("Depth = %d, want 1 (only PML4 exists)", p.Depth)
	}
	if _, ok := pt.Lookup(vpn); ok {
		t.Fatal("prefetch walk had side effects")
	}
	if pt.MappedPages() != 0 {
		t.Errorf("MappedPages = %d, want 0", pt.MappedPages())
	}
}

func TestPrefetchWalkPartialDepth(t *testing.T) {
	pt := New(1)
	// Map a page; a neighbour in the same leaf node should reach depth 4
	// but be absent.
	pt.Walk(arch.VPN(0x400), true)
	p := pt.Walk(arch.VPN(0x401), false)
	if p.Present {
		t.Fatal("unmapped neighbour reported present")
	}
	if p.Depth != arch.RadixLevels {
		t.Fatalf("Depth = %d, want %d", p.Depth, arch.RadixLevels)
	}
	// A page in a different PDP subtree only sees the root.
	far := arch.VPN(1) << 27
	if p := pt.Walk(far, false); p.Depth != 1 {
		t.Fatalf("far page Depth = %d, want 1", p.Depth)
	}
}

func TestWalkDeterministicAndStable(t *testing.T) {
	pt := New(7)
	vpn := arch.VPN(0x12345)
	first := pt.Walk(vpn, true)
	second := pt.Walk(vpn, true)
	if first != second {
		t.Fatalf("remapping changed translation: %+v vs %+v", first, second)
	}
	if pt.MappedPages() != 1 {
		t.Errorf("MappedPages = %d, want 1", pt.MappedPages())
	}
	// Same seed, same mapping order => same frames.
	pt2 := New(7)
	if got := pt2.Walk(vpn, true); got.Leaf != first.Leaf {
		t.Errorf("frame allocation not deterministic: %#x vs %#x", got.Leaf, first.Leaf)
	}
}

func TestDistinctPagesGetDistinctFrames(t *testing.T) {
	pt := New(3)
	seen := map[arch.PFN]arch.VPN{}
	f := func(raw uint32) bool {
		vpn := arch.VPN(raw)
		p := pt.Walk(vpn, true)
		if prev, dup := seen[p.Leaf]; dup && prev != vpn {
			return false
		}
		seen[p.Leaf] = vpn
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLeafPTELineContiguity(t *testing.T) {
	pt := New(1)
	base := arch.VPN(0x4000)
	var addrs [8]arch.PAddr
	for i := arch.VPN(0); i < 8; i++ {
		p := pt.Walk(base+i, true)
		addrs[i] = p.Addrs[arch.RadixLevels-1]
	}
	for i := 1; i < 8; i++ {
		if addrs[i] != addrs[0]+arch.PAddr(i*arch.PTESize) {
			t.Fatalf("leaf PTEs not contiguous: %#x vs %#x", addrs[i], addrs[0])
		}
	}
	if addrs[0].Line() != addrs[7].Line() {
		t.Fatal("8 aligned PTEs should share one cache line")
	}
	// The 9th PTE lands on the next line.
	p9 := pt.Walk(base+8, true)
	if p9.Addrs[3].Line() == addrs[0].Line() {
		t.Fatal("PTE of next group should be on a different line")
	}
}

func TestLineNeighbors(t *testing.T) {
	pt := New(1)
	base := arch.VPN(0x800) // line-group aligned
	pt.Walk(base, true)
	pt.Walk(base+3, true)
	pt.Walk(base+7, true)
	got := pt.LineNeighbors(base + 3)
	want := map[arch.VPN]bool{base: true, base + 7: true}
	if len(got) != 2 {
		t.Fatalf("LineNeighbors = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected neighbor %#x", v)
		}
	}
	// Unmapped neighbours and self never appear.
	for _, v := range got {
		if v == base+3 {
			t.Error("self returned as neighbor")
		}
	}
}

func TestMarkAccessed(t *testing.T) {
	pt := New(1)
	vpn := arch.VPN(0x99)
	if pt.MarkAccessed(vpn) {
		t.Fatal("unmapped page marked accessed")
	}
	pt.Walk(vpn, true)
	if !pt.MarkAccessed(vpn) {
		t.Fatal("first mark should transition the bit")
	}
	if pt.MarkAccessed(vpn) {
		t.Fatal("second mark should be a no-op")
	}
	pte, _ := pt.Lookup(vpn)
	if !pte.Accessed {
		t.Fatal("accessed bit not visible via Lookup")
	}
}

func TestEnsureMapped(t *testing.T) {
	pt := New(1)
	f := pt.EnsureMapped(0x555)
	if f2 := pt.EnsureMapped(0x555); f2 != f {
		t.Fatalf("EnsureMapped not idempotent: %#x vs %#x", f, f2)
	}
	if pte, ok := pt.Lookup(0x555); !ok || pte.PFN != f {
		t.Fatal("EnsureMapped result not visible")
	}
}

func TestWalkPathAddrsWithinNodes(t *testing.T) {
	pt := New(5)
	f := func(raw uint64) bool {
		vpn := arch.VPN(raw & ((1 << arch.VPNBits) - 1))
		p := pt.Walk(vpn, true)
		if p.Depth != arch.RadixLevels || !p.Present {
			return false
		}
		for i := 0; i < p.Depth; i++ {
			// Every PTE address must be 8-byte aligned and within a
			// kernel-region frame.
			if p.Addrs[i]%arch.PTESize != 0 {
				return false
			}
			if p.Addrs[i].Page() < 0x0010_0000 || p.Addrs[i].Page() >= 0x0100_0000 {
				return false
			}
		}
		// Leaf frame must be in the user region.
		return p.Leaf >= 0x0100_0000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
