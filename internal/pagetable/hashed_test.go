package pagetable

import (
	"testing"
	"testing/quick"

	"morrigan/internal/arch"
)

func TestHashedDemandWalkMaps(t *testing.T) {
	h := NewHashed(1, 1<<12)
	p := h.Walk(0x400, true)
	if !p.Present || p.Depth < 1 {
		t.Fatalf("walk: %+v", p)
	}
	pte, ok := h.Lookup(0x400)
	if !ok || pte.PFN != p.Leaf {
		t.Fatal("lookup inconsistent with walk")
	}
	if h.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", h.MappedPages())
	}
	// Collision-free home-bucket hit: one probe.
	if h.AvgProbes() != 1 {
		t.Fatalf("AvgProbes = %v", h.AvgProbes())
	}
}

func TestHashedPrefetchWalkNonFaulting(t *testing.T) {
	h := NewHashed(1, 1<<12)
	p := h.Walk(0x500, false)
	if p.Present {
		t.Fatal("prefetch walk mapped a page")
	}
	if p.Depth < 1 {
		t.Fatal("prefetch walk must still probe the home bucket")
	}
	if _, ok := h.Lookup(0x500); ok {
		t.Fatal("side effects from prefetch walk")
	}
}

func TestHashedGroupSharesBucket(t *testing.T) {
	h := NewHashed(1, 1<<12)
	base := arch.VPN(0x800) // line-group aligned
	var addrs []arch.PAddr
	for i := arch.VPN(0); i < 8; i++ {
		p := h.Walk(base+i, true)
		addrs = append(addrs, p.Addrs[p.Depth-1])
	}
	for _, a := range addrs[1:] {
		if a != addrs[0] {
			t.Fatalf("group PTEs in different buckets: %#x vs %#x", a, addrs[0])
		}
	}
}

func TestHashedLineNeighbors(t *testing.T) {
	h := NewHashed(1, 1<<12)
	base := arch.VPN(0x800)
	h.EnsureMapped(base)
	h.EnsureMapped(base + 3)
	h.EnsureMapped(base + 7)
	got := h.LineNeighbors(base + 3)
	want := map[arch.VPN]bool{base: true, base + 7: true}
	if len(got) != 2 {
		t.Fatalf("LineNeighbors = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected neighbor %#x", v)
		}
	}
	if h.LineNeighbors(0x10000) != nil {
		t.Fatal("neighbors for unmapped group")
	}
}

func TestHashedMarkAccessed(t *testing.T) {
	h := NewHashed(1, 1<<12)
	if h.MarkAccessed(0x99) {
		t.Fatal("unmapped page marked")
	}
	h.EnsureMapped(0x99)
	if !h.MarkAccessed(0x99) {
		t.Fatal("first mark should transition")
	}
	if h.MarkAccessed(0x99) {
		t.Fatal("second mark should be a no-op")
	}
}

func TestHashedCollisionsProbeFurther(t *testing.T) {
	// A 4-bucket table forces collisions quickly.
	h := NewHashed(1, 4)
	for i := 0; i < 4; i++ {
		vpn := arch.VPN(i * 8 * 1024) // distinct groups
		if p := h.Walk(vpn, true); !p.Present {
			t.Fatalf("walk %d failed", i)
		}
	}
	if h.AvgProbes() <= 1 {
		t.Fatalf("AvgProbes = %v, expected collisions in a 4-bucket table", h.AvgProbes())
	}
	// All four groups must still resolve.
	for i := 0; i < 4; i++ {
		vpn := arch.VPN(i * 8 * 1024)
		if _, ok := h.Lookup(vpn); !ok {
			t.Fatalf("group %d lost", i)
		}
	}
}

func TestHashedFullTablePanics(t *testing.T) {
	h := NewHashed(1, 2)
	h.EnsureMapped(0)
	h.EnsureMapped(8 * 100)
	defer func() {
		if recover() == nil {
			t.Fatal("full table should panic")
		}
	}()
	h.EnsureMapped(8 * 200)
}

func TestHashedGeometryValidation(t *testing.T) {
	for _, bad := range []int{0, 3, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("buckets=%d accepted", bad)
				}
			}()
			NewHashed(1, bad)
		}()
	}
}

func TestHashedInterfaceProperties(t *testing.T) {
	h := NewHashed(7, 1<<14)
	if h.InteriorLevels() != 0 {
		t.Fatal("hashed table has no interior levels")
	}
	seen := map[arch.PFN]arch.VPN{}
	f := func(raw uint32) bool {
		vpn := arch.VPN(raw)
		pfn := h.EnsureMapped(vpn)
		if prev, dup := seen[pfn]; dup && prev != vpn {
			return false
		}
		seen[pfn] = vpn
		// Idempotent.
		return h.EnsureMapped(vpn) == pfn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRadix5Levels(t *testing.T) {
	pt := NewWithLevels(1, 5)
	if pt.Levels() != 5 || pt.InteriorLevels() != 4 {
		t.Fatal("level accounting wrong")
	}
	p := pt.Walk(0x12345, true)
	if !p.Present || p.Depth != 5 {
		t.Fatalf("5-level walk: %+v", p)
	}
	// Same page resolves consistently.
	if q := pt.Walk(0x12345, true); q.Leaf != p.Leaf {
		t.Fatal("remapping changed translation")
	}
	// Leaf line grouping still holds.
	base := arch.VPN(0x4000)
	a := pt.Walk(base, true)
	b := pt.Walk(base+7, true)
	if a.Addrs[4].Line() != b.Addrs[4].Line() {
		t.Fatal("5-level leaf PTEs should share a line")
	}
}

func TestRadix5MoreReferencesThanRadix4(t *testing.T) {
	p4 := New(1).Walk(0x777777, true)
	p5 := NewWithLevels(1, 5).Walk(0x777777, true)
	if p5.Depth != p4.Depth+1 {
		t.Fatalf("depths: 4-level %d, 5-level %d", p4.Depth, p5.Depth)
	}
}

func TestLevelsValidation(t *testing.T) {
	for _, bad := range []int{3, 6, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("levels=%d accepted", bad)
				}
			}()
			NewWithLevels(1, bad)
		}()
	}
}

func TestHugeRegionWalks(t *testing.T) {
	pt := New(1)
	pt.AddHugeRegion(0x100000, 0x100000+1<<15)
	vpn := arch.VPN(0x100000 + 777)
	if !pt.IsHuge(vpn) || pt.IsHuge(0x400) {
		t.Fatal("IsHuge wrong")
	}
	p := pt.Walk(vpn, true)
	if !p.Present || !p.Huge {
		t.Fatalf("huge walk: %+v", p)
	}
	// One level shorter than a 4 KB walk.
	if p.Depth != 3 {
		t.Fatalf("huge walk depth = %d, want 3", p.Depth)
	}
	// Pages of the same block translate to contiguous frames.
	q := pt.Walk(vpn+1, true)
	if q.Leaf != p.Leaf+1 {
		t.Fatalf("block not contiguous: %#x then %#x", p.Leaf, q.Leaf)
	}
	// Only one huge mapping was created.
	if pt.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1 (one 2MB block)", pt.MappedPages())
	}
	// Lookup agrees with the walk.
	pte, ok := pt.Lookup(vpn)
	if !ok || pte.PFN != p.Leaf {
		t.Fatalf("Lookup = %+v %v", pte, ok)
	}
}

func TestHugeBlockAlignment(t *testing.T) {
	pt := New(1)
	pt.AddHugeRegion(0x100000, 0x100000+1<<15)
	pt.EnsureMapped(0x3) // unaligned 4K traffic first
	p := pt.Walk(0x100000+5, true)
	base := p.Leaf - 5
	if base%HugePages != 0 {
		t.Fatalf("huge block base %#x not 2MB-aligned", base)
	}
}

func TestHugeAccessedBits(t *testing.T) {
	pt := New(1)
	pt.AddHugeRegion(0x100000, 0x100000+1<<15)
	vpn := arch.VPN(0x100000 + 9)
	if pt.MarkAccessed(vpn) {
		t.Fatal("unmapped block marked")
	}
	pt.EnsureMapped(vpn)
	if !pt.MarkAccessed(vpn) {
		t.Fatal("first mark should transition")
	}
	// The bit is per 2 MB mapping: a sibling page sees it set.
	if pt.MarkAccessed(vpn + 1) {
		t.Fatal("sibling page should share the block's accessed bit")
	}
	if !pt.ClearAccessed(vpn + 2) {
		t.Fatal("clear via sibling should work")
	}
	if pt.ClearAccessed(vpn) {
		t.Fatal("double clear")
	}
}

func TestHugeNoSpatialNeighbors(t *testing.T) {
	pt := New(1)
	pt.AddHugeRegion(0x100000, 0x100000+1<<15)
	pt.EnsureMapped(0x100000 + 1)
	if pt.LineNeighbors(0x100000+1) != nil {
		t.Fatal("huge mappings have no 4KB line neighbors")
	}
}

func TestHugeRegionValidation(t *testing.T) {
	pt := New(1)
	for _, bad := range [][2]arch.VPN{{1, 513}, {0, 0}, {1024, 512}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("region %v accepted", bad)
				}
			}()
			pt.AddHugeRegion(bad[0], bad[1])
		}()
	}
}

func TestHugePrefetchWalkNonFaulting(t *testing.T) {
	pt := New(1)
	pt.AddHugeRegion(0x100000, 0x100000+1<<15)
	p := pt.Walk(0x100000+50, false)
	if p.Present {
		t.Fatal("prefetch walk mapped a huge block")
	}
	if _, ok := pt.Lookup(0x100000 + 50); ok {
		t.Fatal("side effects")
	}
}
