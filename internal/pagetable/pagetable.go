// Package pagetable models an OS-managed x86-64 4-level radix page table
// laid out in simulated physical memory.
//
// Page table nodes occupy real (simulated) physical frames, so the physical
// address of every page table entry is well defined: the PTE for a virtual
// page lives at nodeFrame + 8*index. Because a page table node covers 512
// consecutive virtual pages and PTEs are 8 bytes, the leaf PTEs of 8
// consecutive virtual pages share one 64-byte cache line. This is the "page
// table locality" that Morrigan's spatial prefetching exploits — here it is
// an emergent property of the layout, not a hard-coded rule.
//
// Virtual pages are mapped to physical frames on first touch, mimicking
// demand paging. Prefetch-initiated walks never map new pages (non-faulting
// prefetches, as the paper requires).
package pagetable

import (
	"math/rand"

	"morrigan/internal/arch"
)

// PTE is a decoded leaf page table entry.
type PTE struct {
	// PFN is the physical frame backing the virtual page.
	PFN arch.PFN
	// Present reports whether the translation exists.
	Present bool
	// Accessed mirrors the x86 accessed bit; TLB fills and prefetches set
	// it (the x86 consistency rule the paper discusses in Section 4.3).
	Accessed bool
}

// Path describes one translation walk: the physical addresses the walker
// must read, in order, plus the outcome. For a radix table these are the
// per-level PTE addresses (index 0 = root); for a hashed table they are the
// probed bucket lines.
type Path struct {
	// Addrs[i] is the physical address of the i-th reference. Only the
	// first Depth entries are valid.
	Addrs [arch.MaxRadixLevels]arch.PAddr
	// Depth is the number of references the walk performs. A fully mapped
	// page on a 4-level radix table has Depth == 4; a page whose PD entry
	// is absent has Depth == 3 (the walk reads PML4, PDP, PD and aborts).
	Depth int
	// Present reports whether the leaf translation exists.
	Present bool
	// Leaf is the translation when Present: the frame of the requested
	// 4 KB page (for a huge mapping, the frame inside the 2 MB block).
	Leaf arch.PFN
	// Huge reports that the translation is a 2 MB mapping, resolved one
	// radix level early at a PD-level leaf.
	Huge bool
}

// Translator is the page-table abstraction the walker and simulator consume:
// the default 4-level radix tree, the 5-level variant, or the clustered
// hashed page table (all discussed in Section 4.3 of the paper).
type Translator interface {
	// Walk resolves the reference path for vpn; when allocate is set
	// (demand access), unmapped pages are demand-mapped.
	Walk(vpn arch.VPN, allocate bool) Path
	// Lookup returns the leaf PTE without side effects.
	Lookup(vpn arch.VPN) (PTE, bool)
	// EnsureMapped demand-maps vpn and returns its frame.
	EnsureMapped(vpn arch.VPN) arch.PFN
	// MarkAccessed sets the accessed bit, reporting a clear-to-set
	// transition.
	MarkAccessed(vpn arch.VPN) bool
	// ClearAccessed resets the accessed bit (the paper's correcting page
	// walks for prefetches that never hit, Section 4.3).
	ClearAccessed(vpn arch.VPN) bool
	// LineNeighbors returns the mapped pages whose PTEs share the leaf
	// line fetched for vpn (the free spatial-prefetch candidates).
	LineNeighbors(vpn arch.VPN) []arch.VPN
	// InteriorLevels is the number of radix levels above the leaf that a
	// page-structure cache can skip; 0 for hashed tables.
	InteriorLevels() int
	// MappedPages counts demand-mapped virtual pages.
	MappedPages() uint64
	// Epoch returns a counter that advances on every structural mutation
	// (node allocation, demand-mapping, huge-region registration). Two
	// Walk calls for the same vpn under the same epoch return the same
	// Path, which lets the walker memoize walks safely: accessed-bit
	// changes deliberately do not advance the epoch because they never
	// appear in a Path.
	Epoch() uint64
}

// node is one page table page: 512 entries, each either a pointer to a child
// node (interior levels) or a leaf translation.
type node struct {
	frame    arch.PFN
	children [arch.RadixFanout]*node // interior levels only
	leaves   [arch.RadixFanout]PTE   // leaf level only
	present  [arch.RadixFanout]bool
}

// Table is the per-address-space radix page table plus the OS frame
// allocator. It supports 4-level (default x86-64) and 5-level (PML5) walks.
type Table struct {
	root      *node
	levels    int
	rng       *rand.Rand
	nextKern  arch.PFN // frame allocator for page table nodes
	nextUser  arch.PFN // frame allocator for user pages
	scatter   int      // max random frame skip, models fragmentation
	mappedCnt uint64
	nodeCnt   uint64
	epoch     uint64 // structural mutation counter (see Translator.Epoch)

	// hugeRegions lists VPN ranges mapped with 2 MB pages (PD-level
	// leaves). The paper's Section 5 methodology uses transparent huge
	// pages for data while code stays at 4 KB.
	hugeRegions []vpnRange
	hugeBlocks  map[arch.VPN]hugeBlock // 2MB-aligned base VPN -> block
}

// vpnRange is a half-open [start, end) VPN interval.
type vpnRange struct{ start, end arch.VPN }

// hugeBlock is one mapped 2 MB page: 512 physically contiguous frames.
type hugeBlock struct {
	base     arch.PFN
	accessed bool
}

// HugePages is how many 4 KB pages one 2 MB mapping covers.
const HugePages = arch.RadixFanout

var _ Translator = (*Table)(nil)

// Physical memory layout of the simulated machine: page table nodes are
// allocated from a kernel region, user pages above it.
const (
	kernBasePFN arch.PFN = 0x0010_0000 // 4 GB
	userBasePFN arch.PFN = 0x0100_0000 // 64 GB
)

// New returns an empty 4-level page table. The seed drives the frame
// allocator's fragmentation; identical seeds give identical physical
// layouts.
func New(seed int64) *Table { return NewWithLevels(seed, arch.RadixLevels) }

// NewWithLevels builds a radix table with 4 or 5 levels (Section 4.3 notes
// Morrigan is compatible with 5-level paging, where the extra level can
// lengthen walks).
func NewWithLevels(seed int64, levels int) *Table {
	if levels < arch.RadixLevels || levels > arch.MaxRadixLevels {
		panic("pagetable: levels must be 4 or 5")
	}
	t := &Table{
		levels:   levels,
		rng:      rand.New(rand.NewSource(seed)),
		nextKern: kernBasePFN,
		nextUser: userBasePFN,
		scatter:  8,
	}
	t.root = t.newNode()
	return t
}

// Levels returns the number of radix levels.
func (t *Table) Levels() int { return t.levels }

// AddHugeRegion marks [start, end) as backed by 2 MB pages: first touches
// in the region allocate 512 physically contiguous frames and install a
// PD-level leaf, shortening walks by one level. Panics if the region is not
// 2 MB aligned.
func (t *Table) AddHugeRegion(start, end arch.VPN) {
	if start%HugePages != 0 || end%HugePages != 0 || end <= start {
		panic("pagetable: huge region must be 2MB-aligned and non-empty")
	}
	if t.hugeBlocks == nil {
		t.hugeBlocks = make(map[arch.VPN]hugeBlock)
	}
	t.hugeRegions = append(t.hugeRegions, vpnRange{start, end})
	t.epoch++
}

// IsHuge reports whether vpn falls in a huge-page region.
func (t *Table) IsHuge(vpn arch.VPN) bool {
	for _, r := range t.hugeRegions {
		if vpn >= r.start && vpn < r.end {
			return true
		}
	}
	return false
}

// hugeBase returns the 2 MB-aligned base VPN of vpn's block.
func hugeBase(vpn arch.VPN) arch.VPN { return vpn &^ (HugePages - 1) }

// allocHugeBlock hands out 512 physically contiguous frames, aligned so a
// real 2 MB mapping would be legal.
func (t *Table) allocHugeBlock() arch.PFN {
	t.nextUser = (t.nextUser + HugePages - 1) &^ (HugePages - 1)
	f := t.nextUser
	t.nextUser += HugePages
	return f
}

// walkHuge resolves vpn through a PD-level leaf.
func (t *Table) walkHuge(vpn arch.VPN, allocate bool) Path {
	var p Path
	p.Huge = true
	n := t.root
	leafLevel := t.levels - 2 // the PD level
	for level := 0; level <= leafLevel; level++ {
		idx := t.radixIndex(vpn, level)
		p.Addrs[level] = pteAddr(n, idx)
		p.Depth = level + 1
		if level == leafLevel {
			base := hugeBase(vpn)
			blk, ok := t.hugeBlocks[base]
			if !ok {
				if !allocate {
					return p
				}
				blk = hugeBlock{base: t.allocHugeBlock()}
				t.hugeBlocks[base] = blk
				n.present[idx] = true
				t.mappedCnt++
				t.epoch++
			}
			p.Present = true
			p.Leaf = blk.base + arch.PFN(vpn-base)
			return p
		}
		child := n.children[idx]
		if child == nil {
			if !allocate {
				return p
			}
			child = t.newNode()
			n.children[idx] = child
			n.present[idx] = true
		}
		n = child
	}
	return p
}

// InteriorLevels implements Translator.
func (t *Table) InteriorLevels() int { return t.levels - 1 }

// radixIndex returns the page-table index of vpn at the given level for
// this table's depth; level 0 is the root.
func (t *Table) radixIndex(vpn arch.VPN, level int) uint64 {
	shift := uint((t.levels - 1 - level) * arch.RadixBits)
	return (uint64(vpn) >> shift) & (arch.RadixFanout - 1)
}

func (t *Table) newNode() *node {
	n := &node{frame: t.nextKern}
	t.nextKern++
	t.nodeCnt++
	t.epoch++
	return n
}

// allocUserFrame hands out a physical frame for a user page. Frames are
// mostly sequential with random skips, modelling a lightly fragmented
// physical memory (physical contiguity is deliberately not guaranteed, as
// the paper notes it is not in datacenters).
func (t *Table) allocUserFrame() arch.PFN {
	if t.scatter > 0 && t.rng.Intn(4) == 0 {
		t.nextUser += arch.PFN(1 + t.rng.Intn(t.scatter))
	}
	f := t.nextUser
	t.nextUser++
	return f
}

// pteAddr returns the physical address of entry idx inside node n.
func pteAddr(n *node, idx uint64) arch.PAddr {
	return n.frame.Addr() + arch.PAddr(idx*arch.PTESize)
}

// Walk resolves the radix path for vpn. When allocate is true (a demand
// access) missing interior nodes are created and an absent leaf is mapped to
// a fresh frame; when false (a prefetch walk) the path stops at the first
// absent entry and nothing is modified.
func (t *Table) Walk(vpn arch.VPN, allocate bool) Path {
	if t.IsHuge(vpn) {
		return t.walkHuge(vpn, allocate)
	}
	var p Path
	n := t.root
	for level := 0; level < t.levels; level++ {
		idx := t.radixIndex(vpn, level)
		p.Addrs[level] = pteAddr(n, idx)
		p.Depth = level + 1
		if level == t.levels-1 {
			if !n.present[idx] {
				if !allocate {
					return p
				}
				n.leaves[idx] = PTE{PFN: t.allocUserFrame(), Present: true}
				n.present[idx] = true
				t.mappedCnt++
				t.epoch++
			}
			p.Present = true
			p.Leaf = n.leaves[idx].PFN
			return p
		}
		child := n.children[idx]
		if child == nil {
			if !allocate {
				return p
			}
			child = t.newNode()
			n.children[idx] = child
			n.present[idx] = true
		}
		n = child
	}
	return p
}

// Lookup returns the leaf PTE for vpn without mapping anything.
func (t *Table) Lookup(vpn arch.VPN) (PTE, bool) {
	if t.IsHuge(vpn) {
		blk, ok := t.hugeBlocks[hugeBase(vpn)]
		if !ok {
			return PTE{}, false
		}
		return PTE{
			PFN:      blk.base + arch.PFN(vpn-hugeBase(vpn)),
			Present:  true,
			Accessed: blk.accessed,
		}, true
	}
	n := t.root
	for level := 0; level < t.levels-1; level++ {
		n = n.children[t.radixIndex(vpn, level)]
		if n == nil {
			return PTE{}, false
		}
	}
	idx := t.radixIndex(vpn, t.levels-1)
	if !n.present[idx] {
		return PTE{}, false
	}
	return n.leaves[idx], true
}

// EnsureMapped demand-maps vpn (first touch) and returns its frame.
func (t *Table) EnsureMapped(vpn arch.VPN) arch.PFN {
	p := t.Walk(vpn, true)
	return p.Leaf
}

// MarkAccessed sets the accessed bit of vpn's PTE if it is mapped, returning
// whether the bit transitioned from clear to set.
func (t *Table) MarkAccessed(vpn arch.VPN) bool {
	if t.IsHuge(vpn) {
		blk, ok := t.hugeBlocks[hugeBase(vpn)]
		if !ok || blk.accessed {
			return false
		}
		blk.accessed = true
		t.hugeBlocks[hugeBase(vpn)] = blk
		return true
	}
	n := t.root
	for level := 0; level < t.levels-1; level++ {
		n = n.children[t.radixIndex(vpn, level)]
		if n == nil {
			return false
		}
	}
	idx := t.radixIndex(vpn, t.levels-1)
	if !n.present[idx] || n.leaves[idx].Accessed {
		return false
	}
	n.leaves[idx].Accessed = true
	return true
}

// ClearAccessed resets vpn's accessed bit, reporting whether it was set.
func (t *Table) ClearAccessed(vpn arch.VPN) bool {
	if t.IsHuge(vpn) {
		blk, ok := t.hugeBlocks[hugeBase(vpn)]
		if !ok || !blk.accessed {
			return false
		}
		blk.accessed = false
		t.hugeBlocks[hugeBase(vpn)] = blk
		return true
	}
	n := t.root
	for level := 0; level < t.levels-1; level++ {
		n = n.children[t.radixIndex(vpn, level)]
		if n == nil {
			return false
		}
	}
	idx := t.radixIndex(vpn, t.levels-1)
	if !n.present[idx] || !n.leaves[idx].Accessed {
		return false
	}
	n.leaves[idx].Accessed = false
	return true
}

// LineNeighbors returns the VPNs whose leaf PTEs share a cache line with
// vpn's PTE and are currently mapped, excluding vpn itself. These are the
// translations a walk gets "for free" from the line fill.
func (t *Table) LineNeighbors(vpn arch.VPN) []arch.VPN {
	if t.IsHuge(vpn) {
		// A PD-level leaf line covers neighbouring 2 MB mappings, not 4 KB
		// pages; spatial prefetching of individual translations does not
		// apply.
		return nil
	}
	base := vpn.LineGroup()
	out := make([]arch.VPN, 0, arch.PTEsPerLine-1)
	for i := arch.VPN(0); i < arch.PTEsPerLine; i++ {
		v := base + i
		if v == vpn {
			continue
		}
		if _, ok := t.Lookup(v); ok {
			out = append(out, v)
		}
	}
	return out
}

// MappedPages returns how many virtual pages have been demand-mapped.
func (t *Table) MappedPages() uint64 { return t.mappedCnt }

// Epoch implements Translator.
func (t *Table) Epoch() uint64 { return t.epoch }

// Nodes returns how many page table pages exist (including the root).
func (t *Table) Nodes() uint64 { return t.nodeCnt }
