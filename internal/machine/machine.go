// Package machine defines the declarative, JSON-serializable description of
// one simulated machine: every TLB/PB/cache/walker/core parameter plus the
// iSTLB and I-cache prefetcher *kinds with their parameters* as plain data,
// instead of the live prefetcher instances a sim.Config carries.
//
// A machine.Spec is to configurations what workloads.Spec is to instruction
// streams: a value with a stable content Hash() that names exactly what would
// be simulated. Together they give every campaign job a canonical identity
// (runner.Job.Key), which is what the checkpoint journal and the
// cross-experiment result cache key on. Build() turns a spec back into a
// runnable sim.Config, constructing fresh prefetcher state on every call so
// jobs never share mutable tables.
package machine

import (
	"fmt"
	"strings"

	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/core"
	"morrigan/internal/cpu"
	"morrigan/internal/icache"
	"morrigan/internal/ptw"
	"morrigan/internal/sim"
	"morrigan/internal/tlbprefetch"
)

// Spec describes one simulated machine as data. The zero value is not a
// valid machine; start from Default() and mutate. Every field is
// JSON-serializable and folded into Hash(); the runtime-only sim.Config hooks
// (OnISTLBMiss, Probe) deliberately have no counterpart here — they are
// attached per run, not part of the machine's identity.
type Spec struct {
	// Seed drives the OS frame allocator.
	Seed int64 `json:"seed"`

	// Cache, Walker and Core are the cache-hierarchy, page-walker and
	// timing-model geometries (plain data already).
	Cache  cache.Config `json:"cache"`
	Walker ptw.Config   `json:"walker"`
	Core   cpu.Config   `json:"core"`

	// TLB geometry (entries, ways, latency), per Table 1.
	ITLBEntries int        `json:"itlb_entries"`
	ITLBWays    int        `json:"itlb_ways"`
	ITLBLatency arch.Cycle `json:"itlb_latency"`
	DTLBEntries int        `json:"dtlb_entries"`
	DTLBWays    int        `json:"dtlb_ways"`
	DTLBLatency arch.Cycle `json:"dtlb_latency"`
	STLBEntries int        `json:"stlb_entries"`
	STLBWays    int        `json:"stlb_ways"`
	STLBLatency arch.Cycle `json:"stlb_latency"`

	// PBEntries and PBLatency size the prefetch buffer.
	PBEntries int        `json:"pb_entries"`
	PBLatency arch.Cycle `json:"pb_latency"`

	// Prefetcher selects the iSTLB prefetcher; the zero value (kind "none")
	// is the paper's no-prefetching baseline.
	Prefetcher PrefetcherSpec `json:"prefetcher"`
	// PrefetchIntoSTLB routes prefetches directly into the STLB (P2TLB).
	PrefetchIntoSTLB bool `json:"prefetch_into_stlb,omitempty"`
	// PerfectISTLB makes every iSTLB lookup hit (upper bound).
	PerfectISTLB bool `json:"perfect_istlb,omitempty"`

	// ICachePrefetcher selects the I-cache prefetcher; the zero value (kind
	// "next-line") is the baseline next-line prefetcher.
	ICachePrefetcher ICacheSpec `json:"icache_prefetcher"`
	// ICacheTLBCost charges address translation for page-crossing I-cache
	// prefetches.
	ICacheTLBCost bool `json:"icache_tlb_cost,omitempty"`

	// SMTBlock is the per-thread fetch interleave under SMT.
	SMTBlock int `json:"smt_block"`

	// PageTable selects the page-table organisation: "radix-4" (or empty),
	// "radix-5", "hashed".
	PageTable string `json:"page_table,omitempty"`

	// HugeDataPages maps each thread's data region with 2 MB pages.
	HugeDataPages bool `json:"huge_data_pages,omitempty"`

	// CorrectingWalks enables background accessed-bit correcting walks.
	CorrectingWalks bool `json:"correcting_walks,omitempty"`

	// ContextSwitchInterval, when non-zero, flushes all translation state
	// every N instructions.
	ContextSwitchInterval uint64 `json:"context_switch_interval,omitempty"`
}

// Prefetcher kinds.
const (
	PrefetcherNone        = "none"
	PrefetcherSP          = "sp"
	PrefetcherASP         = "asp"
	PrefetcherDP          = "dp"
	PrefetcherMP          = "mp"
	PrefetcherUnboundedMP = "mp-unbounded"
	PrefetcherMorrigan    = "morrigan"
)

// PrefetcherSpec selects an iSTLB prefetcher by kind and parameters. Fields
// beyond Kind apply only to the kinds that use them: Entries to "asp"/"dp"
// and (with Ways) "mp", MaxSuccessors to "mp-unbounded" (0 = unlimited), and
// Morrigan to "morrigan" (nil = the paper's default configuration).
type PrefetcherSpec struct {
	Kind          string        `json:"kind,omitempty"`
	Entries       int           `json:"entries,omitempty"`
	Ways          int           `json:"ways,omitempty"`
	MaxSuccessors int           `json:"max_successors,omitempty"`
	Morrigan      *MorriganSpec `json:"morrigan,omitempty"`
}

// MorriganSpec is core.Config as data: the IRIP table ensemble, replacement
// policy (by name), and module toggles.
type MorriganSpec struct {
	Tables            []TableSpec `json:"tables"`
	Policy            string      `json:"policy,omitempty"`
	RLFUCandidates    int         `json:"rlfu_candidates"`
	FreqResetInterval uint64      `json:"freq_reset_interval"`
	SDP               bool        `json:"sdp"`
	Spatial           bool        `json:"spatial"`
	Seed              int64       `json:"seed"`
}

// TableSpec sizes one IRIP prediction table.
type TableSpec struct {
	Slots   int `json:"slots"`
	Entries int `json:"entries"`
	Ways    int `json:"ways"`
}

// I-cache prefetcher kinds.
const (
	ICacheNextLine = "next-line"
	ICacheFNLMMA   = "fnl-mma"
	ICacheEPI      = "epi"
	ICacheDJolt    = "d-jolt"
)

// ICacheSpec selects an I-cache prefetcher by kind and parameters. Entries
// and Ways apply to every non-baseline kind; Degree and Ahead to "fnl-mma",
// Destinations and Window to "epi", Degree/Footprint/JumpMin to "d-jolt".
type ICacheSpec struct {
	Kind         string `json:"kind,omitempty"`
	Entries      int    `json:"entries,omitempty"`
	Ways         int    `json:"ways,omitempty"`
	Degree       int    `json:"degree,omitempty"`
	Ahead        int    `json:"ahead,omitempty"`
	Destinations int    `json:"destinations,omitempty"`
	Window       int    `json:"window,omitempty"`
	Footprint    int    `json:"footprint,omitempty"`
	JumpMin      uint64 `json:"jump_min,omitempty"`
}

// Default mirrors sim.DefaultConfig (the paper's Table 1 machine with no
// iSTLB prefetcher and the next-line I-cache baseline). TestBuildDefault
// pins the equivalence.
func Default() Spec {
	return Spec{
		Seed:        1,
		Cache:       cache.DefaultConfig(),
		Walker:      ptw.DefaultConfig(),
		Core:        cpu.DefaultConfig(),
		ITLBEntries: 128, ITLBWays: 8, ITLBLatency: 1,
		DTLBEntries: 64, DTLBWays: 4, DTLBLatency: 1,
		STLBEntries: 1536, STLBWays: 6, STLBLatency: 8,
		PBEntries: 64, PBLatency: 2,
		SMTBlock: 8,
	}
}

// SP returns the sequential-prefetcher spec.
func SP() PrefetcherSpec { return PrefetcherSpec{Kind: PrefetcherSP} }

// ASP returns an arbitrary-stride prefetcher spec with the given table size.
func ASP(entries int) PrefetcherSpec {
	return PrefetcherSpec{Kind: PrefetcherASP, Entries: entries}
}

// DP returns a distance prefetcher spec with the given table size.
func DP(entries int) PrefetcherSpec {
	return PrefetcherSpec{Kind: PrefetcherDP, Entries: entries}
}

// MP returns a Markov prefetcher spec with the given geometry.
func MP(entries, ways int) PrefetcherSpec {
	return PrefetcherSpec{Kind: PrefetcherMP, Entries: entries, Ways: ways}
}

// UnboundedMP returns the idealized unbounded Markov prefetcher spec;
// maxSucc bounds successors per page (0 = unlimited).
func UnboundedMP(maxSucc int) PrefetcherSpec {
	return PrefetcherSpec{Kind: PrefetcherUnboundedMP, MaxSuccessors: maxSucc}
}

// Morrigan returns a Morrigan prefetcher spec carrying the given core
// configuration as data.
func Morrigan(mc core.Config) PrefetcherSpec {
	ms := FromCoreConfig(mc)
	return PrefetcherSpec{Kind: PrefetcherMorrigan, Morrigan: &ms}
}

// FromCoreConfig converts a live core.Config into its data form.
func FromCoreConfig(mc core.Config) MorriganSpec {
	ts := make([]TableSpec, len(mc.Tables))
	for i, t := range mc.Tables {
		ts[i] = TableSpec{Slots: t.Slots, Entries: t.Entries, Ways: t.Ways}
	}
	return MorriganSpec{
		Tables:            ts,
		Policy:            mc.Policy.String(),
		RLFUCandidates:    mc.RLFUCandidates,
		FreqResetInterval: mc.FreqResetInterval,
		SDP:               mc.SDP,
		Spatial:           mc.Spatial,
		Seed:              mc.Seed,
	}
}

// CoreConfig converts the spec back into a live core.Config.
func (m MorriganSpec) CoreConfig() (core.Config, error) {
	pol, err := parsePolicy(m.Policy)
	if err != nil {
		return core.Config{}, err
	}
	ts := make([]core.TableConfig, len(m.Tables))
	for i, t := range m.Tables {
		ts[i] = core.TableConfig{Slots: t.Slots, Entries: t.Entries, Ways: t.Ways}
	}
	return core.Config{
		Tables:            ts,
		Policy:            pol,
		RLFUCandidates:    m.RLFUCandidates,
		FreqResetInterval: m.FreqResetInterval,
		SDP:               m.SDP,
		Spatial:           m.Spatial,
		Seed:              m.Seed,
	}, nil
}

// parsePolicy maps a policy name (case-insensitive; empty means RLFU, the
// zero core.Policy) to the core constant.
func parsePolicy(s string) (core.Policy, error) {
	switch strings.ToLower(s) {
	case "", "rlfu":
		return core.PolicyRLFU, nil
	case "lfu":
		return core.PolicyLFU, nil
	case "lru":
		return core.PolicyLRU, nil
	case "random":
		return core.PolicyRandom, nil
	}
	return 0, fmt.Errorf("machine: unknown replacement policy %q", s)
}

// FNLMMA returns the default FNL+MMA I-cache prefetcher spec.
func FNLMMA() ICacheSpec {
	return ICacheSpec{Kind: ICacheFNLMMA, Entries: 2048, Ways: 8, Degree: 4, Ahead: 3}
}

// EPI returns the default entangling (EPI) I-cache prefetcher spec.
func EPI() ICacheSpec {
	return ICacheSpec{Kind: ICacheEPI, Entries: 2048, Ways: 8, Destinations: 6, Window: 4}
}

// DJolt returns the default D-Jolt I-cache prefetcher spec.
func DJolt() ICacheSpec {
	return ICacheSpec{Kind: ICacheDJolt, Entries: 2048, Ways: 8, Degree: 3, Footprint: 4, JumpMin: 16}
}

// build constructs the live iSTLB prefetcher the spec names; nil for the
// no-prefetching baseline.
func (p PrefetcherSpec) build() (tlbprefetch.Prefetcher, error) {
	switch kind := normKind(p.Kind, PrefetcherNone); kind {
	case PrefetcherNone:
		return nil, nil
	case PrefetcherSP:
		return &tlbprefetch.SP{}, nil
	case PrefetcherASP, PrefetcherDP, PrefetcherMP:
		if p.Entries <= 0 {
			return nil, fmt.Errorf("machine: %s prefetcher needs entries > 0 (got %d)", kind, p.Entries)
		}
		switch kind {
		case PrefetcherASP:
			return tlbprefetch.NewASP(p.Entries), nil
		case PrefetcherDP:
			return tlbprefetch.NewDP(p.Entries), nil
		}
		if p.Ways <= 0 || p.Entries%p.Ways != 0 {
			return nil, fmt.Errorf("machine: mp prefetcher geometry invalid: %d entries, %d ways", p.Entries, p.Ways)
		}
		return tlbprefetch.NewMP(p.Entries, p.Ways), nil
	case PrefetcherUnboundedMP:
		return tlbprefetch.NewUnboundedMP(p.MaxSuccessors), nil
	case PrefetcherMorrigan:
		mc := core.DefaultConfig()
		if p.Morrigan != nil {
			var err error
			mc, err = p.Morrigan.CoreConfig()
			if err != nil {
				return nil, err
			}
		}
		return core.New(mc), nil
	}
	return nil, fmt.Errorf("machine: unknown prefetcher kind %q", p.Kind)
}

// build constructs the live I-cache prefetcher the spec names; nil for the
// next-line baseline (sim substitutes icache.NextLine).
func (p ICacheSpec) build() (icache.Prefetcher, error) {
	kind := normKind(p.Kind, ICacheNextLine)
	if kind != ICacheNextLine && (p.Entries <= 0 || p.Ways <= 0) {
		return nil, fmt.Errorf("machine: %s I-cache prefetcher geometry invalid: %d entries, %d ways", kind, p.Entries, p.Ways)
	}
	switch kind {
	case ICacheNextLine:
		return nil, nil
	case ICacheFNLMMA:
		return icache.NewFNLMMA(p.Entries, p.Ways, p.Degree, p.Ahead), nil
	case ICacheEPI:
		return icache.NewEPI(p.Entries, p.Ways, p.Destinations, p.Window), nil
	case ICacheDJolt:
		return icache.NewDJolt(p.Entries, p.Ways, p.Degree, p.Footprint, p.JumpMin), nil
	}
	return nil, fmt.Errorf("machine: unknown I-cache prefetcher kind %q", p.Kind)
}

// normKind canonicalises a kind string: lowercase, empty means def. Hash and
// Build share it, so "" and the explicit default name are the same machine.
func normKind(s, def string) string {
	if s == "" {
		return def
	}
	return strings.ToLower(s)
}

// Build turns the spec into a runnable sim.Config, constructing fresh
// prefetcher instances — the returned config shares no mutable state with any
// other Build call. The config is validated before it is returned.
func (s Spec) Build() (sim.Config, error) {
	cfg := sim.Config{
		Seed:        s.Seed,
		Cache:       s.Cache,
		Walker:      s.Walker,
		Core:        s.Core,
		ITLBEntries: s.ITLBEntries, ITLBWays: s.ITLBWays, ITLBLatency: s.ITLBLatency,
		DTLBEntries: s.DTLBEntries, DTLBWays: s.DTLBWays, DTLBLatency: s.DTLBLatency,
		STLBEntries: s.STLBEntries, STLBWays: s.STLBWays, STLBLatency: s.STLBLatency,
		PBEntries: s.PBEntries, PBLatency: s.PBLatency,
		PrefetchIntoSTLB:      s.PrefetchIntoSTLB,
		PerfectISTLB:          s.PerfectISTLB,
		ICacheTLBCost:         s.ICacheTLBCost,
		SMTBlock:              s.SMTBlock,
		HugeDataPages:         s.HugeDataPages,
		CorrectingWalks:       s.CorrectingWalks,
		ContextSwitchInterval: s.ContextSwitchInterval,
	}
	kind, err := sim.ParsePageTableKind(s.PageTable)
	if err != nil {
		return sim.Config{}, fmt.Errorf("machine: %w", err)
	}
	cfg.PageTable = kind
	if cfg.Prefetcher, err = s.Prefetcher.build(); err != nil {
		return sim.Config{}, err
	}
	if cfg.ICachePrefetcher, err = s.ICachePrefetcher.build(); err != nil {
		return sim.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}
