package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// Load parses a machine spec from JSON (the format Save writes; see
// README's -config quick-start). Unknown fields are rejected so a typo'd
// parameter cannot silently fall back to a default, and the spec is validated
// by building it once before it is returned.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("machine: parsing spec: %w", err)
	}
	if _, err := s.Build(); err != nil {
		return Spec{}, fmt.Errorf("machine: invalid spec: %w", err)
	}
	return s, nil
}

// Save serialises the spec as indented JSON, the format Load reads. The
// round trip is exact: Load(Save(s)) yields a spec with the same Hash.
func Save(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("machine: writing spec: %w", err)
	}
	return nil
}
