package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// specHashVersion is folded into the hash so a deliberate change to the
// canonical encoding (or to the set of hashed fields) invalidates every
// persisted job key — checkpoint journals re-run instead of silently
// colliding with results from a differently-shaped machine.
const specHashVersion = "morrigan/machine.Spec/v1"

// Hash returns a stable, platform-independent identity for the machine: the
// SHA-256 of a canonical fixed-order encoding of every Spec field, as
// lowercase hex. It mirrors workloads.Spec.Hash and is half of a campaign
// job's canonical identity (runner JobKey).
//
// Kind strings are canonicalised before hashing — an empty prefetcher kind
// and "none", an empty page table and "radix-4", an empty I-cache kind and
// "next-line", an empty policy and "RLFU" each hash identically, matching
// what Build constructs for them. TestSpecHashGolden pins known values;
// when the encoding must change, bump specHashVersion.
func (s Spec) Hash() string {
	h := sha256.New()
	h.Write([]byte(specHashVersion))
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wb := func(v bool) {
		if v {
			wu(1)
		} else {
			wu(0)
		}
	}
	ws := func(v string) {
		wu(uint64(len(v)))
		h.Write([]byte(v))
	}

	wu(uint64(s.Seed))

	// cache.Config
	c := s.Cache
	wi(c.L1ISets)
	wi(c.L1IWays)
	wi(c.L1DSets)
	wi(c.L1DWays)
	wi(c.L2Sets)
	wi(c.L2Ways)
	wi(c.LLCSets)
	wi(c.LLCWays)
	wu(uint64(c.L1Latency))
	wu(uint64(c.L2Latency))
	wu(uint64(c.LLCLatency))
	wu(uint64(c.DRAMLatency))
	wb(c.L2StridePrefetch)

	// ptw.Config (PSC levels, MSHRs, ASAP)
	p := s.Walker
	wi(p.PSC.PML4Entries)
	wi(p.PSC.PML4Ways)
	wi(p.PSC.PDPEntries)
	wi(p.PSC.PDPWays)
	wi(p.PSC.PDEntries)
	wi(p.PSC.PDWays)
	wu(uint64(p.PSC.Latency))
	wi(p.MSHRs)
	wb(p.ASAP)

	// cpu.Config
	wi(s.Core.Width)
	wi(s.Core.ROB)
	wu(uint64(s.Core.HideWindow))
	wu(uint64(s.Core.FetchHide))
	wi(s.Core.FetchWindow)

	// TLBs and PB
	wi(s.ITLBEntries)
	wi(s.ITLBWays)
	wu(uint64(s.ITLBLatency))
	wi(s.DTLBEntries)
	wi(s.DTLBWays)
	wu(uint64(s.DTLBLatency))
	wi(s.STLBEntries)
	wi(s.STLBWays)
	wu(uint64(s.STLBLatency))
	wi(s.PBEntries)
	wu(uint64(s.PBLatency))

	// iSTLB prefetcher
	ws(normKind(s.Prefetcher.Kind, PrefetcherNone))
	wi(s.Prefetcher.Entries)
	wi(s.Prefetcher.Ways)
	wi(s.Prefetcher.MaxSuccessors)
	if m := s.Prefetcher.Morrigan; m != nil {
		wu(1)
		wu(uint64(len(m.Tables)))
		for _, t := range m.Tables {
			wi(t.Slots)
			wi(t.Entries)
			wi(t.Ways)
		}
		ws(normKind(m.Policy, "rlfu"))
		wi(m.RLFUCandidates)
		wu(m.FreqResetInterval)
		wb(m.SDP)
		wb(m.Spatial)
		wu(uint64(m.Seed))
	} else {
		wu(0)
	}
	wb(s.PrefetchIntoSTLB)
	wb(s.PerfectISTLB)

	// I-cache prefetcher
	ic := s.ICachePrefetcher
	ws(normKind(ic.Kind, ICacheNextLine))
	wi(ic.Entries)
	wi(ic.Ways)
	wi(ic.Degree)
	wi(ic.Ahead)
	wi(ic.Destinations)
	wi(ic.Window)
	wi(ic.Footprint)
	wu(ic.JumpMin)
	wb(s.ICacheTLBCost)

	wi(s.SMTBlock)
	ws(normKind(s.PageTable, "radix-4"))
	wb(s.HugeDataPages)
	wb(s.CorrectingWalks)
	wu(s.ContextSwitchInterval)
	return hex.EncodeToString(h.Sum(nil))
}

// Field counts folded into Hash, checked against the structs via reflection
// by TestSpecHashFieldCount so a new field cannot be added without extending
// the canonical encoding (and bumping specHashVersion).
const (
	hashedSpecFieldCount       = 25
	hashedCacheFieldCount      = 13
	hashedWalkerFieldCount     = 3
	hashedPSCFieldCount        = 7
	hashedCoreFieldCount       = 5
	hashedPrefetcherFieldCount = 5
	hashedMorriganFieldCount   = 7
	hashedTableFieldCount      = 3
	hashedICacheFieldCount     = 9
)
