package machine

import (
	"reflect"
	"strings"
	"testing"

	"morrigan/internal/core"
	"morrigan/internal/sim"
)

// TestBuildDefault pins Default().Build() to sim.DefaultConfig(): the
// declarative Table 1 machine constructs exactly the config the simulator's
// own default constructs.
func TestBuildDefault(t *testing.T) {
	got, err := Default().Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.DefaultConfig(); !reflect.DeepEqual(got, want) {
		t.Errorf("Default().Build() =\n%+v\nwant sim.DefaultConfig() =\n%+v", got, want)
	}
}

// TestBuildFreshState: every Build call must construct fresh prefetcher
// instances, or two concurrent jobs sharing one spec would share mutable
// prediction tables.
func TestBuildFreshState(t *testing.T) {
	s := Default()
	s.Prefetcher = Morrigan(core.DefaultConfig())
	s.ICachePrefetcher = FNLMMA()
	a, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Prefetcher == b.Prefetcher {
		t.Error("two Build calls shared one iSTLB prefetcher instance")
	}
	if a.ICachePrefetcher == b.ICachePrefetcher {
		t.Error("two Build calls shared one I-cache prefetcher instance")
	}
}

// TestBuildErrors covers every Build failure path: unknown kinds, invalid
// geometries, unknown page tables and policies, and specs whose built config
// fails sim.Config.Validate.
func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"unknown prefetcher kind", func(s *Spec) {
			s.Prefetcher.Kind = "quantum"
		}, `unknown prefetcher kind "quantum"`},
		{"asp without entries", func(s *Spec) {
			s.Prefetcher = PrefetcherSpec{Kind: PrefetcherASP}
		}, "needs entries > 0"},
		{"dp negative entries", func(s *Spec) {
			s.Prefetcher = PrefetcherSpec{Kind: PrefetcherDP, Entries: -8}
		}, "needs entries > 0"},
		{"mp bad geometry", func(s *Spec) {
			s.Prefetcher = PrefetcherSpec{Kind: PrefetcherMP, Entries: 130, Ways: 4}
		}, "mp prefetcher geometry invalid"},
		{"unknown morrigan policy", func(s *Spec) {
			s.Prefetcher = PrefetcherSpec{Kind: PrefetcherMorrigan, Morrigan: &MorriganSpec{
				Tables: []TableSpec{{Slots: 2, Entries: 64, Ways: 4}},
				Policy: "fifo",
			}}
		}, `unknown replacement policy "fifo"`},
		{"unknown icache kind", func(s *Spec) {
			s.ICachePrefetcher = ICacheSpec{Kind: "oracle", Entries: 2048, Ways: 8}
		}, `unknown I-cache prefetcher kind "oracle"`},
		{"icache missing geometry", func(s *Spec) {
			s.ICachePrefetcher = ICacheSpec{Kind: ICacheEPI}
		}, "I-cache prefetcher geometry invalid"},
		{"unknown page table", func(s *Spec) {
			s.PageTable = "radix-7"
		}, `unknown page table kind "radix-7"`},
		{"perfect istlb with prefetcher", func(s *Spec) {
			s.PerfectISTLB = true
			s.Prefetcher = SP()
		}, "PerfectISTLB excludes"},
		{"invalid stlb geometry", func(s *Spec) {
			s.STLBEntries = 7
		}, "STLB geometry invalid"},
	}
	for _, tc := range cases {
		s := Default()
		tc.mutate(&s)
		_, err := s.Build()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Build() err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}
