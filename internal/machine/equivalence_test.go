package machine

import (
	"reflect"
	"testing"

	"morrigan/internal/core"
	"morrigan/internal/icache"
	"morrigan/internal/sim"
	"morrigan/internal/tlbprefetch"
	"morrigan/internal/workloads"
)

// TestSpecStatsEquivalence is the refactor's safety net: for every machine
// shape the experiment suite uses, a spec-built config must produce
// bit-identical sim.Stats to the config built the pre-refactor way — a
// closure assembling sim.DefaultConfig() plus live prefetcher instances.
// The closures below reproduce exactly what internal/experiments constructed
// before jobs became (machine.Spec, []workloads.Spec) data.
func TestSpecStatsEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		spec    func() Spec
		closure func() sim.Config
	}{
		{
			"baseline",
			func() Spec { return Default() },
			sim.DefaultConfig,
		},
		{
			"sp",
			func() Spec { s := Default(); s.Prefetcher = SP(); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = &tlbprefetch.SP{}
				return c
			},
		},
		{
			"asp-256",
			func() Spec { s := Default(); s.Prefetcher = ASP(256); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = tlbprefetch.NewASP(256)
				return c
			},
		},
		{
			"dp-256",
			func() Spec { s := Default(); s.Prefetcher = DP(256); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = tlbprefetch.NewDP(256)
				return c
			},
		},
		{
			"mp-128x4",
			func() Spec { s := Default(); s.Prefetcher = MP(128, 4); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = tlbprefetch.NewMP(128, 4)
				return c
			},
		},
		{
			"mp-unbounded-2",
			func() Spec { s := Default(); s.Prefetcher = UnboundedMP(2); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = tlbprefetch.NewUnboundedMP(2)
				return c
			},
		},
		{
			"morrigan",
			func() Spec { s := Default(); s.Prefetcher = Morrigan(core.DefaultConfig()); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = core.New(core.DefaultConfig())
				return c
			},
		},
		{
			"morrigan-scaled-2x-p2tlb",
			func() Spec {
				s := Default()
				s.Prefetcher = Morrigan(core.ScaledConfig(2))
				s.PrefetchIntoSTLB = true
				return s
			},
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = core.New(core.ScaledConfig(2))
				c.PrefetchIntoSTLB = true
				return c
			},
		},
		{
			"morrigan-mono-asap",
			func() Spec {
				s := Default()
				s.Prefetcher = Morrigan(core.MonoConfig())
				s.Walker.ASAP = true
				return s
			},
			func() sim.Config {
				c := sim.DefaultConfig()
				c.Prefetcher = core.New(core.MonoConfig())
				c.Walker.ASAP = true
				return c
			},
		},
		{
			"perfect-istlb",
			func() Spec { s := Default(); s.PerfectISTLB = true; return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.PerfectISTLB = true
				return c
			},
		},
		{
			"enlarged-stlb-1920",
			func() Spec { s := Default(); s.STLBEntries = 1920; return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.STLBEntries = 1920
				return c
			},
		},
		{
			"fnlmma-tlb-cost",
			func() Spec {
				s := Default()
				s.ICachePrefetcher = FNLMMA()
				s.ICacheTLBCost = true
				return s
			},
			func() sim.Config {
				c := sim.DefaultConfig()
				c.ICachePrefetcher = icache.DefaultFNLMMA()
				c.ICacheTLBCost = true
				return c
			},
		},
		{
			"epi",
			func() Spec { s := Default(); s.ICachePrefetcher = EPI(); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.ICachePrefetcher = icache.DefaultEPI()
				return c
			},
		},
		{
			"djolt",
			func() Spec { s := Default(); s.ICachePrefetcher = DJolt(); return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.ICachePrefetcher = icache.DefaultDJolt()
				return c
			},
		},
		{
			"radix-5",
			func() Spec { s := Default(); s.PageTable = "radix-5"; return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.PageTable = sim.PageTableRadix5
				return c
			},
		},
		{
			"hashed",
			func() Spec { s := Default(); s.PageTable = "hashed"; return s },
			func() sim.Config {
				c := sim.DefaultConfig()
				c.PageTable = sim.PageTableHashed
				return c
			},
		},
		{
			"huge-data-pages-correcting",
			func() Spec {
				s := Default()
				s.HugeDataPages = true
				s.CorrectingWalks = true
				s.Prefetcher = Morrigan(core.DefaultConfig())
				return s
			},
			func() sim.Config {
				c := sim.DefaultConfig()
				c.HugeDataPages = true
				c.CorrectingWalks = true
				c.Prefetcher = core.New(core.DefaultConfig())
				return c
			},
		},
		{
			"context-switch",
			func() Spec {
				s := Default()
				s.ContextSwitchInterval = 10_000
				s.Prefetcher = Morrigan(core.DefaultConfig())
				return s
			},
			func() sim.Config {
				c := sim.DefaultConfig()
				c.ContextSwitchInterval = 10_000
				c.Prefetcher = core.New(core.DefaultConfig())
				return c
			},
		},
	}

	w := workloads.QMM()[0]
	run := func(t *testing.T, cfg sim.Config) sim.Stats {
		t.Helper()
		s, err := sim.New(cfg, []sim.ThreadSpec{{Reader: w.NewReader()}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Run(2_000, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			built, err := tc.spec().Build()
			if err != nil {
				t.Fatal(err)
			}
			specStats := run(t, built)
			closureStats := run(t, tc.closure())
			if !reflect.DeepEqual(specStats, closureStats) {
				t.Errorf("spec-built stats differ from closure-built stats:\n spec    %+v\n closure %+v",
					specStats, closureStats)
			}
		})
	}
}
