package machine

import (
	"fmt"
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/core"
	"morrigan/internal/sim"
	"morrigan/internal/workloads"
)

// batchedKindMatrix enumerates every prefetcher, I-cache prefetcher and
// page-table kind a Spec can name. The batched-pipeline equivalence suite
// runs the full cross product.
var (
	batchedPFSpecs = []struct {
		name string
		spec func() PrefetcherSpec
	}{
		{"none", func() PrefetcherSpec { return PrefetcherSpec{} }},
		{"sp", SP},
		{"asp", func() PrefetcherSpec { return ASP(256) }},
		{"dp", func() PrefetcherSpec { return DP(256) }},
		{"mp", func() PrefetcherSpec { return MP(128, 4) }},
		{"mp-unbounded", func() PrefetcherSpec { return UnboundedMP(2) }},
		{"morrigan", func() PrefetcherSpec { return Morrigan(core.DefaultConfig()) }},
	}
	batchedICSpecs = []struct {
		name string
		spec func() ICacheSpec
	}{
		{"next-line", func() ICacheSpec { return ICacheSpec{} }},
		{"fnl-mma", FNLMMA},
		{"epi", EPI},
		{"djolt", DJolt},
	}
	batchedPTKinds = []string{"radix-4", "radix-5", "hashed"}
)

// runBatchedPair builds the spec twice (fresh prefetcher instances each
// time) and runs the same workload through the batched and the per-record
// reference loops, returning both snapshots.
func runBatchedPair(t *testing.T, s Spec, warmup, measure uint64) (batched, reference sim.Stats) {
	t.Helper()
	run := func(ref bool) sim.Stats {
		cfg, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg.ReferenceLoop = ref
		m, err := sim.New(cfg, []sim.ThreadSpec{{Reader: workloads.QMM()[3].NewReader()}})
		if err != nil {
			t.Fatal(err)
		}
		if !ref {
			pfOK, icOK := m.Devirtualized()
			if !pfOK || !icOK {
				t.Fatalf("spec-built simulator not devirtualized: pf=%v icache=%v", pfOK, icOK)
			}
		}
		st, err := m.Run(warmup, measure)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	return run(false), run(true)
}

// TestBatchedEquivalenceAcrossKinds asserts the tentpole invariant: for
// every prefetcher × I-cache prefetcher × page-table kind a machine.Spec can
// describe, the batched run loop produces Stats bit-identical to the
// per-record reference loop, with the prefetcher call sites devirtualized.
// Page-crossing I-cache translation cost is enabled so the TokenICache PB
// path is exercised too.
func TestBatchedEquivalenceAcrossKinds(t *testing.T) {
	for _, pf := range batchedPFSpecs {
		for _, ic := range batchedICSpecs {
			for _, pt := range batchedPTKinds {
				name := fmt.Sprintf("%s/%s/%s", pf.name, ic.name, pt)
				t.Run(name, func(t *testing.T) {
					s := Default()
					s.Prefetcher = pf.spec()
					s.ICachePrefetcher = ic.spec()
					s.PageTable = pt
					s.ICacheTLBCost = ic.name != "next-line"
					batched, reference := runBatchedPair(t, s, 2_000, 10_000)
					if batched != reference {
						t.Fatalf("batched loop diverged from reference:\nbatched:   %+v\nreference: %+v", batched, reference)
					}
				})
			}
		}
	}
}

// TestBatchedEquivalenceStressShapes covers the run-loop shapes the kind
// matrix holds fixed: SMT colocation, context switches, correcting walks,
// huge data pages and prefetch-into-STLB, each against the reference loop.
func TestBatchedEquivalenceStressShapes(t *testing.T) {
	shapes := []struct {
		name    string
		spec    func() Spec
		threads int
	}{
		{"smt-morrigan", func() Spec {
			s := Default()
			s.Prefetcher = Morrigan(core.DefaultConfig())
			return s
		}, 2},
		{"context-switches", func() Spec {
			s := Default()
			s.Prefetcher = Morrigan(core.DefaultConfig())
			s.ContextSwitchInterval = 3_000
			return s
		}, 1},
		{"correcting-walks", func() Spec {
			s := Default()
			s.Prefetcher = Morrigan(core.DefaultConfig())
			s.CorrectingWalks = true
			return s
		}, 1},
		{"huge-data-pages", func() Spec {
			s := Default()
			s.Prefetcher = SP()
			s.HugeDataPages = true
			return s
		}, 1},
		{"prefetch-into-stlb", func() Spec {
			s := Default()
			s.Prefetcher = Morrigan(core.DefaultConfig())
			s.PrefetchIntoSTLB = true
			return s
		}, 1},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			run := func(ref bool) sim.Stats {
				cfg, err := sh.spec().Build()
				if err != nil {
					t.Fatal(err)
				}
				cfg.ReferenceLoop = ref
				var threads []sim.ThreadSpec
				for i := 0; i < sh.threads; i++ {
					threads = append(threads, sim.ThreadSpec{
						Reader:   workloads.QMM()[i+1].NewReader(),
						VAOffset: arch.VAddr(i) << 40,
					})
				}
				m, err := sim.New(cfg, threads)
				if err != nil {
					t.Fatal(err)
				}
				st, err := m.Run(3_000, 15_000)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			batched, reference := run(false), run(true)
			if batched != reference {
				t.Fatalf("batched loop diverged from reference:\nbatched:   %+v\nreference: %+v", batched, reference)
			}
		})
	}
}
