package machine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"morrigan/internal/cache"
	"morrigan/internal/core"
	"morrigan/internal/cpu"
	"morrigan/internal/ptw"
)

// goldenSpec pins one fully populated machine for the hash golden: every
// field non-zero, a Morrigan prefetcher with an explicit table ensemble, and
// a parameterised I-cache prefetcher.
func goldenSpec() Spec {
	s := Default()
	s.Seed = 7
	s.Cache.L2StridePrefetch = true
	s.Walker.ASAP = true
	s.Prefetcher = PrefetcherSpec{
		Kind: PrefetcherMorrigan,
		Morrigan: &MorriganSpec{
			Tables: []TableSpec{
				{Slots: 2, Entries: 128, Ways: 4},
				{Slots: 4, Entries: 64, Ways: 4},
			},
			Policy:            "rlfu",
			RLFUCandidates:    4,
			FreqResetInterval: 512,
			SDP:               true,
			Spatial:           true,
			Seed:              3,
		},
	}
	s.PrefetchIntoSTLB = true
	s.ICachePrefetcher = FNLMMA()
	s.ICacheTLBCost = true
	s.PageTable = "radix-5"
	s.CorrectingWalks = true
	s.ContextSwitchInterval = 100_000
	return s
}

// TestSpecHashGolden pins the canonical encoding: these values are part of
// the checkpoint-journal contract (JobKey = H(machine ‖ workloads ‖ scale)).
// If this test fails, either the encoding changed by accident (fix the code)
// or deliberately (bump specHashVersion and update the goldens — persisted
// journals then re-run instead of silently colliding).
func TestSpecHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{
			name: "default",
			spec: Default(),
			want: "bdd4a650c2f0e1543631ab2d27138c1733032d1a8374d34f4293af9f804e8e2b",
		},
		{
			name: "golden-full",
			spec: goldenSpec(),
			want: "623240a067d89edd4863ff0012cf76068581411ac66abe741050068f42127e36",
		},
	}
	for _, tc := range cases {
		if got := tc.spec.Hash(); got != tc.want {
			t.Errorf("%s: Hash() = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestSpecHashKindNormalization checks that the canonical kind spellings and
// the zero values hash identically — an empty prefetcher kind is "none", an
// empty page table is "radix-4", an empty I-cache kind is "next-line", an
// empty Morrigan policy is RLFU, and kind strings are case-insensitive —
// matching exactly what Build constructs for them.
func TestSpecHashKindNormalization(t *testing.T) {
	base := Default()

	named := base
	named.Prefetcher.Kind = PrefetcherNone
	named.ICachePrefetcher.Kind = ICacheNextLine
	named.PageTable = "radix-4"
	if named.Hash() != base.Hash() {
		t.Errorf("explicit default kinds hash differently from zero values")
	}

	upper := base
	upper.Prefetcher.Kind = "NONE"
	upper.ICachePrefetcher.Kind = "Next-Line"
	upper.PageTable = "Radix-4"
	if upper.Hash() != base.Hash() {
		t.Errorf("kind strings are not case-normalised before hashing")
	}

	mor := base
	mor.Prefetcher = Morrigan(core.DefaultConfig())
	morNamed := mor
	named2 := *morNamed.Prefetcher.Morrigan
	named2.Policy = "RLFU"
	morNamed.Prefetcher.Morrigan = &named2
	mor.Prefetcher.Morrigan.Policy = ""
	if mor.Hash() != morNamed.Hash() {
		t.Errorf("empty Morrigan policy should hash as RLFU")
	}
}

// TestSpecHashFieldCount fails when Spec (or any struct folded into it)
// grows a field that Hash does not encode, which would let two different
// machines share a JobKey. Extend Hash, update the counts, and bump
// specHashVersion when this fires.
func TestSpecHashFieldCount(t *testing.T) {
	cases := []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"machine.Spec", reflect.TypeOf(Spec{}), hashedSpecFieldCount},
		{"cache.Config", reflect.TypeOf(cache.Config{}), hashedCacheFieldCount},
		{"ptw.Config", reflect.TypeOf(ptw.Config{}), hashedWalkerFieldCount},
		{"ptw.PSCConfig", reflect.TypeOf(ptw.PSCConfig{}), hashedPSCFieldCount},
		{"cpu.Config", reflect.TypeOf(cpu.Config{}), hashedCoreFieldCount},
		{"machine.PrefetcherSpec", reflect.TypeOf(PrefetcherSpec{}), hashedPrefetcherFieldCount},
		{"machine.MorriganSpec", reflect.TypeOf(MorriganSpec{}), hashedMorriganFieldCount},
		{"machine.TableSpec", reflect.TypeOf(TableSpec{}), hashedTableFieldCount},
		{"machine.ICacheSpec", reflect.TypeOf(ICacheSpec{}), hashedICacheFieldCount},
	}
	for _, tc := range cases {
		if got := tc.typ.NumField(); got != tc.want {
			t.Errorf("%s has %d fields, Hash encodes %d — extend Spec.Hash and bump specHashVersion",
				tc.name, got, tc.want)
		}
	}
}

// flatHashedFields counts how many hashed leaves Spec has: every Spec field
// with nested structs flattened. Spec embeds cache.Config, ptw.Config
// (itself embedding PSCConfig) and cpu.Config as single fields, so the
// flattened count replaces those 3 with their own field counts (the walker
// counts PSC as one field, replaced by the PSC's 7).
const flatHashedFields = hashedSpecFieldCount - 3 +
	hashedCacheFieldCount + (hashedWalkerFieldCount - 1 + hashedPSCFieldCount) + hashedCoreFieldCount

// TestSpecHashSensitivity mutates every hashed parameter — including one
// drawn from each nested struct and each prefetcher-spec field — and checks
// the hash moves.
func TestSpecHashSensitivity(t *testing.T) {
	base := goldenSpec()
	baseHash := base.Hash()

	mutations := map[string]func(*Spec){
		"Seed": func(s *Spec) { s.Seed++ },

		"Cache.L1ISets":          func(s *Spec) { s.Cache.L1ISets *= 2 },
		"Cache.L1IWays":          func(s *Spec) { s.Cache.L1IWays *= 2 },
		"Cache.L1DSets":          func(s *Spec) { s.Cache.L1DSets *= 2 },
		"Cache.L1DWays":          func(s *Spec) { s.Cache.L1DWays *= 2 },
		"Cache.L2Sets":           func(s *Spec) { s.Cache.L2Sets *= 2 },
		"Cache.L2Ways":           func(s *Spec) { s.Cache.L2Ways *= 2 },
		"Cache.LLCSets":          func(s *Spec) { s.Cache.LLCSets *= 2 },
		"Cache.LLCWays":          func(s *Spec) { s.Cache.LLCWays *= 2 },
		"Cache.L1Latency":        func(s *Spec) { s.Cache.L1Latency++ },
		"Cache.L2Latency":        func(s *Spec) { s.Cache.L2Latency++ },
		"Cache.LLCLatency":       func(s *Spec) { s.Cache.LLCLatency++ },
		"Cache.DRAMLatency":      func(s *Spec) { s.Cache.DRAMLatency++ },
		"Cache.L2StridePrefetch": func(s *Spec) { s.Cache.L2StridePrefetch = !s.Cache.L2StridePrefetch },

		"Walker.PSC.PML4Entries": func(s *Spec) { s.Walker.PSC.PML4Entries *= 2 },
		"Walker.PSC.PML4Ways":    func(s *Spec) { s.Walker.PSC.PML4Ways *= 2 },
		"Walker.PSC.PDPEntries":  func(s *Spec) { s.Walker.PSC.PDPEntries *= 2 },
		"Walker.PSC.PDPWays":     func(s *Spec) { s.Walker.PSC.PDPWays *= 2 },
		"Walker.PSC.PDEntries":   func(s *Spec) { s.Walker.PSC.PDEntries *= 2 },
		"Walker.PSC.PDWays":      func(s *Spec) { s.Walker.PSC.PDWays *= 2 },
		"Walker.PSC.Latency":     func(s *Spec) { s.Walker.PSC.Latency++ },
		"Walker.MSHRs":           func(s *Spec) { s.Walker.MSHRs++ },
		"Walker.ASAP":            func(s *Spec) { s.Walker.ASAP = !s.Walker.ASAP },

		"Core.Width":       func(s *Spec) { s.Core.Width++ },
		"Core.ROB":         func(s *Spec) { s.Core.ROB++ },
		"Core.HideWindow":  func(s *Spec) { s.Core.HideWindow++ },
		"Core.FetchHide":   func(s *Spec) { s.Core.FetchHide++ },
		"Core.FetchWindow": func(s *Spec) { s.Core.FetchWindow++ },

		"ITLBEntries": func(s *Spec) { s.ITLBEntries *= 2 },
		"ITLBWays":    func(s *Spec) { s.ITLBWays *= 2 },
		"ITLBLatency": func(s *Spec) { s.ITLBLatency++ },
		"DTLBEntries": func(s *Spec) { s.DTLBEntries *= 2 },
		"DTLBWays":    func(s *Spec) { s.DTLBWays *= 2 },
		"DTLBLatency": func(s *Spec) { s.DTLBLatency++ },
		"STLBEntries": func(s *Spec) { s.STLBEntries *= 2 },
		"STLBWays":    func(s *Spec) { s.STLBWays *= 2 },
		"STLBLatency": func(s *Spec) { s.STLBLatency++ },
		"PBEntries":   func(s *Spec) { s.PBEntries *= 2 },
		"PBLatency":   func(s *Spec) { s.PBLatency++ },

		"Prefetcher.Kind":          func(s *Spec) { s.Prefetcher = SP() },
		"Prefetcher.Entries":       func(s *Spec) { s.Prefetcher.Entries++ },
		"Prefetcher.Ways":          func(s *Spec) { s.Prefetcher.Ways++ },
		"Prefetcher.MaxSuccessors": func(s *Spec) { s.Prefetcher.MaxSuccessors++ },
		"Morrigan.Tables.Slots": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Tables = append([]TableSpec(nil), m.Tables...)
			m.Tables[0].Slots++
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.Tables.Entries": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Tables = append([]TableSpec(nil), m.Tables...)
			m.Tables[1].Entries *= 2
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.Tables.Ways": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Tables = append([]TableSpec(nil), m.Tables...)
			m.Tables[1].Ways *= 2
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.Tables.len": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Tables = m.Tables[:1]
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.Policy": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Policy = "lru"
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.RLFUCandidates": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.RLFUCandidates++
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.FreqResetInterval": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.FreqResetInterval++
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.SDP": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.SDP = !m.SDP
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.Spatial": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Spatial = !m.Spatial
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.Seed": func(s *Spec) {
			m := *s.Prefetcher.Morrigan
			m.Seed++
			s.Prefetcher.Morrigan = &m
		},
		"Morrigan.nil":     func(s *Spec) { s.Prefetcher.Morrigan = nil },
		"PrefetchIntoSTLB": func(s *Spec) { s.PrefetchIntoSTLB = !s.PrefetchIntoSTLB },
		"PerfectISTLB":     func(s *Spec) { s.PerfectISTLB = !s.PerfectISTLB },

		"ICachePrefetcher.Kind":         func(s *Spec) { s.ICachePrefetcher.Kind = ICacheEPI },
		"ICachePrefetcher.Entries":      func(s *Spec) { s.ICachePrefetcher.Entries *= 2 },
		"ICachePrefetcher.Ways":         func(s *Spec) { s.ICachePrefetcher.Ways *= 2 },
		"ICachePrefetcher.Degree":       func(s *Spec) { s.ICachePrefetcher.Degree++ },
		"ICachePrefetcher.Ahead":        func(s *Spec) { s.ICachePrefetcher.Ahead++ },
		"ICachePrefetcher.Destinations": func(s *Spec) { s.ICachePrefetcher.Destinations++ },
		"ICachePrefetcher.Window":       func(s *Spec) { s.ICachePrefetcher.Window++ },
		"ICachePrefetcher.Footprint":    func(s *Spec) { s.ICachePrefetcher.Footprint++ },
		"ICachePrefetcher.JumpMin":      func(s *Spec) { s.ICachePrefetcher.JumpMin++ },
		"ICacheTLBCost":                 func(s *Spec) { s.ICacheTLBCost = !s.ICacheTLBCost },

		"SMTBlock":              func(s *Spec) { s.SMTBlock++ },
		"PageTable":             func(s *Spec) { s.PageTable = "hashed" },
		"HugeDataPages":         func(s *Spec) { s.HugeDataPages = !s.HugeDataPages },
		"CorrectingWalks":       func(s *Spec) { s.CorrectingWalks = !s.CorrectingWalks },
		"ContextSwitchInterval": func(s *Spec) { s.ContextSwitchInterval++ },
	}
	// One mutation per flattened Spec leaf, plus the Morrigan/table-spec
	// internals and two structural cases (table count, nil Morrigan).
	wantMutations := flatHashedFields - 1 /* Prefetcher counted once via Kind */ +
		(hashedPrefetcherFieldCount - 1) /* Entries, Ways, MaxSuccessors, Morrigan via nil */ +
		(hashedMorriganFieldCount - 1) /* Morrigan leaves minus Tables */ +
		hashedTableFieldCount + 1 /* per-table fields + table count */ +
		(hashedICacheFieldCount - 1) /* I-cache leaves minus Kind */ + 1 /* ICache kind */
	if len(mutations) != wantMutations {
		t.Fatalf("sensitivity table covers %d mutations, want %d", len(mutations), wantMutations)
	}
	seen := map[string]string{baseHash: "base"}
	for field, mutate := range mutations {
		s := goldenSpec()
		mutate(&s)
		h := s.Hash()
		if h == baseHash {
			t.Errorf("mutating %s did not change the hash", field)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("mutations %s and %s collide", field, prev)
		}
		seen[h] = field
	}
}

// TestSpecJSONRoundTrip checks Save/Load is exact: the reloaded spec is
// deep-equal to the original and keeps its Hash, for both the default and
// the fully populated golden machine.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range []Spec{Default(), goldenSpec()} {
		var buf bytes.Buffer
		if err := Save(&buf, spec); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load(Save(spec)): %v\nJSON: %s", err, buf.String())
		}
		if !reflect.DeepEqual(got, spec) {
			t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", got, spec)
		}
		if got.Hash() != spec.Hash() {
			t.Errorf("round trip changed the hash: %s -> %s", spec.Hash(), got.Hash())
		}
	}
}

// TestLoadRejectsUnknownFields: a typo'd parameter must fail loudly, not
// fall back to a default.
func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"seed": 1, "slbt_entries": 1536}`))
	if err == nil || !strings.Contains(err.Error(), "slbt_entries") {
		t.Errorf("Load accepted an unknown field: %v", err)
	}
}

// TestLoadRejectsInvalidSpec: Load validates by building once.
func TestLoadRejectsInvalidSpec(t *testing.T) {
	var buf bytes.Buffer
	bad := Default()
	bad.Prefetcher = PrefetcherSpec{Kind: "warp-drive"}
	if err := Save(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Errorf("Load accepted an unbuildable spec: %v", err)
	}
}
