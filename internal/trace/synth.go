package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"morrigan/internal/arch"
)

// Base virtual page numbers for the synthetic address space layout. Code
// lives where an ELF text segment typically starts; data far above it so the
// two never collide and are trivially distinguishable in analysis.
const (
	CodeBaseVPN arch.VPN = 0x0400    // 4 MB
	DataBaseVPN arch.VPN = 0x100000  // 4 GB
	StackVPN    arch.VPN = 0x7FF0000 // stack-ish region for store traffic
)

// ServerParams configures the synthetic server-workload generator.
//
// The generator models server code the way the paper characterises it
// (Section 3.3): the instruction footprint is organised into routines —
// multi-page call chains (request handlers, library paths) whose pages are
// scattered across the binary and executed in a repeatable order whenever
// the routine is invoked. Routine invocation popularity is Zipf-skewed, so a
// modest number of pages produces most of the iSTLB misses (Finding 2);
// cold routines miss in repeatable page sequences, giving each page a small
// set of likely successors (Finding 3); and a configurable fraction of
// intra-routine steps lands near the previous page, producing the limited
// small-delta locality of Finding 1.
type ServerParams struct {
	// Seed makes the workload deterministic.
	Seed int64
	// CodePages is the instruction footprint in 4 KB pages.
	CodePages int
	// DataPages is the data footprint in 4 KB pages.
	DataPages int
	// HotFrac and WarmFrac partition the routines by invocation tier.
	// Hot routines are invoked so often that their pages stay resident in
	// the STLB; the warm band recurs with reuse distances beyond STLB
	// reach, producing the recurring miss skew of Finding 2 (a modest
	// number of pages causes most iSTLB misses); the remaining cold tail
	// is invoked rarely. PHot and PWarm are the probabilities that a
	// routine call targets the hot and warm tiers (cold gets the rest).
	HotFrac, WarmFrac float64
	PHot, PWarm       float64
	// RoutineLenMin and RoutineLenMax bound the number of pages per
	// routine (the depth of a call chain).
	RoutineLenMin, RoutineLenMax int
	// RunLenMin and RunLenMax bound how many sequential instructions
	// execute inside a page per visit before control transfers away.
	RunLenMin, RunLenMax int
	// EntryPoints is the number of distinct function entry offsets per page.
	EntryPoints int
	// SeqFrac is the probability that the next page of a routine is laid
	// out at exactly the previous page + 1 (a sequential fall-through the
	// paper's SP/SDP component captures).
	SeqFrac float64
	// SmallDeltaFrac is the probability that the next page of a routine is
	// laid out within +/-10 pages of the previous one (Finding 1).
	SmallDeltaFrac float64
	// BranchSkipFrac is the probability that a within-routine step skips
	// the next page (a not-taken branch path), giving interior pages more
	// than one dynamic successor (Figure 7's fan-out).
	BranchSkipFrac float64
	// SuccWeights are the relative weights of a routine having exactly 1,
	// exactly 2, 3-4, 5-8, or 9-16 successor routines.
	SuccWeights [5]float64
	// RandomCallFrac is the probability that a routine-end transfer goes
	// to a uniformly random routine instead of a learned successor (the
	// ~17% less-frequent-successor mass of Figure 8).
	RandomCallFrac float64
	// LoadFrac and StoreFrac are the per-instruction probabilities of a
	// memory read and write.
	LoadFrac, StoreFrac float64
	// DataZipfS shapes data-page popularity.
	DataZipfS float64
	// DataStreamFrac is the fraction of loads that stream sequentially
	// (line by line) through the data footprint rather than hitting the
	// hot set.
	DataStreamFrac float64
	// PhaseLen is the number of instructions per execution phase; on each
	// phase boundary part of the routine popularity mapping is reshuffled
	// and the affected routines' successor edges are rebuilt. Zero
	// disables phases.
	PhaseLen uint64
	// PhaseShuffleFrac is the fraction of the popularity permutation
	// reshuffled at each phase boundary.
	PhaseShuffleFrac float64
}

// Validate reports whether the parameters are usable.
func (p *ServerParams) Validate() error {
	if p.CodePages < 4 {
		return fmt.Errorf("trace: CodePages = %d, need >= 4", p.CodePages)
	}
	if p.DataPages < 1 {
		return fmt.Errorf("trace: DataPages = %d, need >= 1", p.DataPages)
	}
	if p.HotFrac <= 0 || p.WarmFrac <= 0 || p.HotFrac+p.WarmFrac >= 1 {
		return fmt.Errorf("trace: tier fractions hot=%v warm=%v invalid", p.HotFrac, p.WarmFrac)
	}
	if p.PHot < 0 || p.PWarm < 0 || p.PHot+p.PWarm > 1 {
		return fmt.Errorf("trace: tier probabilities hot=%v warm=%v invalid", p.PHot, p.PWarm)
	}
	if p.RoutineLenMin < 1 || p.RoutineLenMax < p.RoutineLenMin {
		return fmt.Errorf("trace: routine length bounds [%d,%d] invalid", p.RoutineLenMin, p.RoutineLenMax)
	}
	if p.RoutineLenMin > p.CodePages {
		return fmt.Errorf("trace: RoutineLenMin = %d exceeds CodePages", p.RoutineLenMin)
	}
	if p.RunLenMin < 1 || p.RunLenMax < p.RunLenMin {
		return fmt.Errorf("trace: run length bounds [%d,%d] invalid", p.RunLenMin, p.RunLenMax)
	}
	if p.RunLenMax*4 > arch.PageSize {
		return fmt.Errorf("trace: RunLenMax = %d does not fit in a page", p.RunLenMax)
	}
	if p.EntryPoints < 1 {
		return fmt.Errorf("trace: EntryPoints = %d, need >= 1", p.EntryPoints)
	}
	return nil
}

// edge is a successor of a routine in the call graph.
type edge struct {
	target int     // routine index
	cum    float64 // cumulative probability within the edge list
}

// Generator is an infinite synthetic instruction stream; it implements
// Reader and never returns io.EOF.
type Generator struct {
	p   ServerParams
	rng *rand.Rand
	dz  *rand.Zipf // samples popularity ranks for data pages

	nHot, nWarm int // tier sizes, in routines

	routines [][]int // routine -> ordered page list
	redges   [][]edge
	perm     []int      // popularity rank -> routine index
	entry    [][]uint64 // per page: entry offsets (bytes)

	curR    int // current routine
	curIdx  int // position within the routine's page list
	curPage int
	curOff  uint64
	runLeft int

	dataPtr   int    // streaming data cursor (page index)
	streamOff uint64 // streaming cursor's offset within the page
	emitted   uint64
	nextPhase uint64
}

var _ Reader = (*Generator)(nil)

// NewServerGenerator builds a generator for the given parameters. It panics
// if the parameters are invalid; use Validate to check first.
func NewServerGenerator(p ServerParams) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		p:   p,
		rng: rand.New(rand.NewSource(p.Seed)),
	}
	dzS := p.DataZipfS
	if dzS <= 1 {
		dzS = 1.2
	}
	g.dz = rand.NewZipf(g.rng, dzS, 1, uint64(p.DataPages-1))
	g.buildRoutines()
	g.nHot = int(float64(len(g.routines)) * p.HotFrac)
	g.nWarm = int(float64(len(g.routines)) * p.WarmFrac)
	if g.nHot < 1 {
		g.nHot = 1
	}
	if g.nWarm < 1 {
		g.nWarm = 1
	}
	if g.nHot+g.nWarm >= len(g.routines) {
		g.nWarm = len(g.routines) - g.nHot - 1
		if g.nWarm < 1 {
			g.nHot, g.nWarm = 1, 1
		}
	}
	g.perm = g.rng.Perm(len(g.routines))
	g.redges = make([][]edge, len(g.routines))
	for r := range g.redges {
		g.redges[r] = g.buildEdges(r)
	}
	g.entry = make([][]uint64, p.CodePages)
	for i := range g.entry {
		offs := make([]uint64, p.EntryPoints)
		limit := arch.PageSize - uint64(p.RunLenMax*4)
		for j := range offs {
			if limit > 0 {
				offs[j] = uint64(g.rng.Int63n(int64(limit)+1)) &^ 3
			}
		}
		g.entry[i] = offs
	}
	g.enterRoutine(g.perm[0])
	if p.PhaseLen > 0 {
		g.nextPhase = p.PhaseLen
	}
	return g
}

// buildRoutines partitions the code pages into routines. The first page of
// a routine is placed anywhere in the binary; each subsequent page is laid
// out sequentially (SeqFrac), nearby (SmallDeltaFrac) or anywhere else,
// reproducing the paper's measured delta distribution on the miss stream.
func (g *Generator) buildRoutines() {
	unassigned := g.rng.Perm(g.p.CodePages)
	taken := make([]bool, g.p.CodePages)
	pos := 0
	nextFree := func() int {
		for pos < len(unassigned) && taken[unassigned[pos]] {
			pos++
		}
		if pos >= len(unassigned) {
			return -1
		}
		pg := unassigned[pos]
		return pg
	}
	for {
		first := nextFree()
		if first < 0 {
			break
		}
		taken[first] = true
		want := g.p.RoutineLenMin
		if g.p.RoutineLenMax > g.p.RoutineLenMin {
			want += g.rng.Intn(g.p.RoutineLenMax - g.p.RoutineLenMin + 1)
		}
		pages := []int{first}
		prev := first
		for len(pages) < want {
			var cand int
			x := g.rng.Float64()
			switch {
			case x < g.p.SeqFrac:
				cand = prev + 1
			case x < g.p.SeqFrac+g.p.SmallDeltaFrac:
				d := 2 + g.rng.Intn(9)
				if g.rng.Intn(2) == 0 {
					d = -d
				}
				cand = prev + d
			default:
				cand = g.rng.Intn(g.p.CodePages)
			}
			if cand < 0 || cand >= g.p.CodePages || taken[cand] {
				cand = nextFree()
				if cand < 0 {
					break
				}
			}
			taken[cand] = true
			pages = append(pages, cand)
			prev = cand
		}
		g.routines = append(g.routines, pages)
	}
}

// routineBySample draws a routine index by tier: hot routines with
// probability PHot (STLB-resident working set), the warm band with
// probability PWarm (the recurring-miss band), and the cold tail otherwise.
// Within a tier, members near the front are mildly favoured so the miss
// distribution has the paper's skewed head rather than a flat plateau.
func (g *Generator) routineBySample() int {
	u := g.rng.Float64()
	var lo, n int
	switch {
	case u < g.p.PHot:
		lo, n = 0, g.nHot
	case u < g.p.PHot+g.p.PWarm:
		lo, n = g.nHot, g.nWarm
	default:
		lo, n = g.nHot+g.nWarm, len(g.routines)-g.nHot-g.nWarm
	}
	if n <= 0 {
		return g.perm[0]
	}
	// Power-law bias toward the front of the tier, giving the strongly
	// concave page-frequency curve of Figure 6 (a few tens of pages carry
	// a large share of the misses, a few hundred carry 90%).
	u = g.rng.Float64()
	idx := int(u * u * u * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return g.perm[lo+idx]
}

// succProbWeight returns the relative probability weight of the i-th most
// likely successor, shaped to match Figure 8's measured 51/21/11/17 split.
func succProbWeight(i int) float64 {
	switch i {
	case 0:
		return 0.51
	case 1:
		return 0.21
	case 2:
		return 0.11
	default:
		// Remaining mass decays geometrically across the tail.
		w := 0.085
		for j := 3; j < i; j++ {
			w *= 0.5
		}
		return w
	}
}

// buildEdges constructs the successor edge list of routine r.
func (g *Generator) buildEdges(r int) []edge {
	var totalW float64
	for _, w := range g.p.SuccWeights {
		totalW += w
	}
	x := g.rng.Float64() * totalW
	bucket := 0
	for b, w := range g.p.SuccWeights {
		if x < w {
			bucket = b
			break
		}
		x -= w
	}
	var k int
	switch bucket {
	case 0:
		k = 1
	case 1:
		k = 2
	case 2:
		k = 3 + g.rng.Intn(2) // 3-4
	case 3:
		k = 5 + g.rng.Intn(4) // 5-8
	default:
		k = 9 + g.rng.Intn(8) // 9-16
	}
	if k >= len(g.routines) {
		k = len(g.routines) - 1
	}
	if k < 1 {
		k = 1
	}
	seen := map[int]bool{r: true}
	targets := make([]int, 0, k)
	for len(targets) < k {
		t := g.routineBySample()
		if seen[t] {
			t = g.rng.Intn(len(g.routines))
			if seen[t] {
				continue
			}
		}
		seen[t] = true
		targets = append(targets, t)
	}
	weights := make([]float64, len(targets))
	var sum float64
	for j := range weights {
		weights[j] = succProbWeight(j)
		sum += weights[j]
	}
	edges := make([]edge, len(targets))
	cum := 0.0
	for j, t := range targets {
		cum += weights[j] / sum
		edges[j] = edge{target: t, cum: cum}
	}
	edges[len(edges)-1].cum = 1 // guard against rounding
	return edges
}

// enterRoutine begins executing routine r from its first page.
func (g *Generator) enterRoutine(r int) {
	g.curR = r
	g.curIdx = 0
	g.curPage = g.routines[r][0]
	g.startRun()
}

// startRun begins a new sequential run inside the current page.
func (g *Generator) startRun() {
	offs := g.entry[g.curPage]
	g.curOff = offs[g.rng.Intn(len(offs))]
	g.runLeft = g.p.RunLenMin
	if g.p.RunLenMax > g.p.RunLenMin {
		g.runLeft += g.rng.Intn(g.p.RunLenMax - g.p.RunLenMin + 1)
	}
}

// transition moves control to the next page: the next page of the current
// routine (possibly skipping one on a branch), or — at routine end — the
// first page of a successor routine.
func (g *Generator) transition() {
	pages := g.routines[g.curR]
	next := g.curIdx + 1
	if g.p.BranchSkipFrac > 0 && next+1 < len(pages) && g.rng.Float64() < g.p.BranchSkipFrac {
		next++
	}
	if next < len(pages) {
		g.curIdx = next
		g.curPage = pages[next]
		g.startRun()
		return
	}
	// Routine end: call a successor routine.
	var target int
	if g.rng.Float64() < g.p.RandomCallFrac {
		target = g.rng.Intn(len(g.routines))
	} else {
		es := g.redges[g.curR]
		x := g.rng.Float64()
		target = es[len(es)-1].target
		for _, e := range es {
			if x < e.cum {
				target = e.target
				break
			}
		}
	}
	g.enterRoutine(target)
}

// phaseChange reshuffles part of the routine popularity permutation and
// rebuilds the successor edges of the affected routines, modelling
// application phases.
func (g *Generator) phaseChange() {
	n := int(float64(len(g.routines)) * g.p.PhaseShuffleFrac)
	if n < 2 {
		n = 2
	}
	if n > len(g.routines) {
		n = len(g.routines)
	}
	// Most phase shuffles rotate popularity within the hot+warm region
	// (the same request mix shifting emphasis); a quarter promote a cold
	// routine, slowly renewing the working set. Swapping arbitrary cold
	// routines into the hot ranks every phase would spread the misses
	// uniformly over the whole footprint, which is not what the paper
	// measures (Finding 2).
	active := g.nHot + g.nWarm
	touched := make(map[int]bool, 2*n)
	for r := 0; r < n; r++ {
		pos := g.rng.Intn(active)
		var other int
		if g.rng.Intn(8) == 0 {
			other = g.rng.Intn(len(g.routines))
		} else {
			other = g.rng.Intn(active)
		}
		g.perm[pos], g.perm[other] = g.perm[other], g.perm[pos]
		touched[g.perm[pos]] = true
		touched[g.perm[other]] = true
	}
	// Rebuild in sorted order: map iteration order would consume the RNG
	// nondeterministically and break trace reproducibility.
	order := make([]int, 0, len(touched))
	for r := range touched {
		order = append(order, r)
	}
	sort.Ints(order)
	for _, r := range order {
		g.redges[r] = g.buildEdges(r)
	}
}

// dataAddr produces a data operand address. Streaming accesses advance a
// sequential cursor one cache line at a time (touching each page ~64 times
// before moving on, like a memcpy or scan); the rest hit the Zipf-skewed hot
// set with line-granular offsets.
func (g *Generator) dataAddr() arch.VAddr {
	if g.rng.Float64() < g.p.DataStreamFrac {
		g.streamOff += arch.LineSize
		if g.streamOff >= arch.PageSize {
			g.streamOff = 0
			g.dataPtr = (g.dataPtr + 1) % g.p.DataPages
		}
		return (DataBaseVPN + arch.VPN(g.dataPtr)).Addr() + arch.VAddr(g.streamOff)
	}
	page := int(g.dz.Uint64())
	off := uint64(g.rng.Int63n(arch.PageSize/arch.LineSize)) << arch.LineShift
	return (DataBaseVPN + arch.VPN(page)).Addr() + arch.VAddr(off)
}

// Next implements Reader; it never returns an error.
func (g *Generator) Next(rec *Record) error {
	if g.nextPhase != 0 && g.emitted >= g.nextPhase {
		g.phaseChange()
		g.nextPhase += g.p.PhaseLen
	}
	rec.PC = (CodeBaseVPN + arch.VPN(g.curPage)).Addr() + arch.VAddr(g.curOff)
	rec.Load, rec.Store = 0, 0
	if g.rng.Float64() < g.p.LoadFrac {
		rec.Load = g.dataAddr()
	}
	if g.rng.Float64() < g.p.StoreFrac {
		if g.rng.Float64() < 0.3 {
			// Some stores hit a small stack region.
			rec.Store = StackVPN.Addr() + arch.VAddr(uint64(g.rng.Int63n(8*arch.PageSize))&^7)
		} else {
			rec.Store = g.dataAddr()
		}
	}
	g.emitted++
	g.curOff += 4
	g.runLeft--
	if g.runLeft <= 0 || g.curOff+4 > arch.PageSize {
		g.transition()
	}
	return nil
}

// Emitted returns the number of records produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Params returns the generator's configuration.
func (g *Generator) Params() ServerParams { return g.p }

// Routines returns the number of routines in the synthetic binary.
func (g *Generator) Routines() int { return len(g.routines) }
