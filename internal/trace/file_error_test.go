package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"morrigan/internal/arch"
)

// encodeTrace serialises recs with NewWriter and returns the raw bytes.
func encodeTrace(t *testing.T, recs []Record, compress bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, compress)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFileReaderBadMagic(t *testing.T) {
	cases := [][]byte{
		[]byte("NOPE\x00"),
		[]byte("MGT2\x00"), // wrong version digit
		[]byte("MGT"),      // shorter than the magic itself
	}
	for _, c := range cases {
		_, err := NewFileReader(bytes.NewReader(c))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("header %q: err = %v, want ErrCorrupt", c, err)
		}
	}
}

func TestFileReaderBadFlags(t *testing.T) {
	_, err := NewFileReader(bytes.NewReader([]byte(fileMagic + "\x01")))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("nonzero header flags: err = %v, want ErrCorrupt", err)
	}
}

func TestFileReaderTruncated(t *testing.T) {
	recs := []Record{
		{PC: 0x1000},
		{PC: 0x1004, Load: 0x2000},
		{PC: 0x1008, Store: 0x123456789}, // multi-byte store varint
	}
	raw := encodeTrace(t, recs, false)

	// A truncated header must fail construction; any longer prefix must
	// yield ErrCorrupt (or a clean EOF exactly on a record boundary) from
	// Next, never a wrong record or a hang.
	for cut := 0; cut < len(raw); cut++ {
		r, err := NewFileReader(bytes.NewReader(raw[:cut]))
		if cut < len(fileMagic)+1 {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: header err = %v, want ErrCorrupt", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: NewFileReader: %v", cut, err)
		}
		var rec Record
		for i := 0; ; i++ {
			err := r.Next(&rec)
			if err == nil {
				if i >= len(recs) || rec != recs[i] {
					t.Fatalf("cut=%d: record %d = %+v", cut, i, rec)
				}
				continue
			}
			if err != io.EOF && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut=%d: err = %v, want EOF or ErrCorrupt", cut, err)
			}
			break
		}
	}
}

func TestFileReaderAfterEOF(t *testing.T) {
	raw := encodeTrace(t, []Record{{PC: 0x40_0000}}, false)
	r, err := NewFileReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Next(&rec); err != nil || rec.PC != 0x40_0000 {
		t.Fatalf("Next = %+v, %v", rec, err)
	}
	// The reader must keep reporting io.EOF on every call past the end,
	// without mutating the output record.
	for i := 0; i < 3; i++ {
		saved := rec
		if err := r.Next(&rec); err != io.EOF {
			t.Fatalf("Next after EOF (call %d) = %v, want io.EOF", i, err)
		}
		if rec != saved {
			t.Fatalf("Next after EOF mutated record: %+v", rec)
		}
	}
}

func TestFileReaderBadRecordKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	buf.WriteByte(0)
	buf.WriteByte(recKindMax + 1)
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Next(&rec); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad record kind: err = %v, want ErrCorrupt", err)
	}
}

func TestFileReaderTruncatedGzip(t *testing.T) {
	recs := []Record{{PC: 0x1000, Load: arch.VAddr(1) << 40}}
	raw := encodeTrace(t, recs, true)
	// Cut inside the gzip body (past its 2-byte magic): either construction
	// or the first read must fail, but never succeed silently.
	r, err := NewFileReader(bytes.NewReader(raw[:len(raw)/2]))
	if err != nil {
		return
	}
	var rec Record
	for {
		if err := r.Next(&rec); err != nil {
			if err == io.EOF {
				t.Fatal("truncated gzip stream read to clean EOF")
			}
			return
		}
	}
}
