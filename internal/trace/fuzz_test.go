package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzFileReader holds the trace file decoder's safety property: arbitrary
// bytes must produce an error or a valid record stream, never a panic or a
// hang. Seeds are round-trip traces (plain and gzip) plus header fragments.
func FuzzFileReader(f *testing.F) {
	recs, err := Slice(NewServerGenerator(testParams()), 400)
	if err != nil {
		f.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, compress)
		if err != nil {
			f.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		data := buf.Bytes()
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte("MGT1\x00"))
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for {
			// The stream is finite (every record consumes at least two input
			// bytes), so this loop is bounded by len(data).
			err := r.Next(&rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corrupt record detected: fine
			}
		}
	})
}
