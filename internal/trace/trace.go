// Package trace defines the instruction trace representation consumed by the
// simulator, a compact binary on-disk format with reader/writer support, and
// deterministic synthetic workload generators.
//
// The paper evaluates on proprietary Qualcomm server traces (CVP-1/IPC-1).
// Those are unobtainable, so this package synthesises instruction streams
// whose instruction-TLB miss behaviour matches the properties the paper
// measures in Section 3.3: Zipf-skewed page popularity, a variable number of
// successor pages per instruction page, limited small-delta spatial locality,
// and phase changes. See DESIGN.md for the substitution rationale.
package trace

import (
	"errors"
	"io"

	"morrigan/internal/arch"
)

// Record is one executed instruction. A zero Load/Store address means the
// instruction has no memory operand of that kind (the generators never place
// code or data at virtual address zero).
type Record struct {
	// PC is the instruction's fetch address.
	PC arch.VAddr
	// Load is the address read by the instruction, or zero.
	Load arch.VAddr
	// Store is the address written by the instruction, or zero.
	Store arch.VAddr
}

// HasLoad reports whether the instruction reads memory.
func (r *Record) HasLoad() bool { return r.Load != 0 }

// HasStore reports whether the instruction writes memory.
func (r *Record) HasStore() bool { return r.Store != 0 }

// Reader produces a stream of instruction records. Next fills in rec and
// returns io.EOF when the stream is exhausted; synthetic generators are
// infinite and never return io.EOF.
type Reader interface {
	Next(rec *Record) error
}

// BatchReader is a Reader that can deliver many records per call, letting
// hot consumers (the simulator's instruction loop) amortise the per-record
// interface call. NextBatch copies up to len(dst) records into dst and
// returns how many; it never mixes records with an error — a call returns
// n > 0 with a nil error, or 0 with io.EOF (stream exhausted) or a real
// error. Callers must tolerate short (n < len(dst)) non-final batches.
type BatchReader interface {
	Reader
	NextBatch(dst []Record) (int, error)
}

// ErrCorrupt reports a malformed trace file.
var ErrCorrupt = errors.New("trace: corrupt trace file")

// Fill reads up to len(dst) records from r into dst, using the bulk
// interface when r supports it and a per-record loop otherwise, so batching
// consumers can buffer ahead of any Reader. Unlike NextBatch, Fill may
// return n > 0 together with a non-nil error (a plain reader failing
// mid-fill): callers must consume the n records before acting on the error.
func Fill(r Reader, dst []Record) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.NextBatch(dst)
	}
	for i := range dst {
		if err := r.Next(&dst[i]); err != nil {
			return i, err
		}
	}
	return len(dst), nil
}

// Limit wraps r so that it yields at most n records. When r is a
// BatchReader the returned Reader is one too, so batching survives the wrap.
func Limit(r Reader, n uint64) Reader {
	l := limitReader{r: r, left: n}
	if br, ok := r.(BatchReader); ok {
		return &limitBatchReader{limitReader: l, br: br}
	}
	return &l
}

type limitReader struct {
	r    Reader
	left uint64
}

func (l *limitReader) Next(rec *Record) error {
	if l.left == 0 {
		return io.EOF
	}
	l.left--
	return l.r.Next(rec)
}

type limitBatchReader struct {
	limitReader
	br BatchReader
}

func (l *limitBatchReader) NextBatch(dst []Record) (int, error) {
	if l.left == 0 {
		return 0, io.EOF
	}
	if uint64(len(dst)) > l.left {
		dst = dst[:l.left]
	}
	n, err := l.br.NextBatch(dst)
	l.left -= uint64(n)
	return n, err
}

// Slice materialises up to n records from r, primarily for tests and
// offline analysis. It stops early at io.EOF.
func Slice(r Reader, n int) ([]Record, error) {
	out := make([]Record, 0, n)
	var rec Record
	for len(out) < n {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// SliceReader replays a fixed record slice, for tests.
type SliceReader struct {
	Records []Record
	pos     int
}

// Next implements Reader.
func (s *SliceReader) Next(rec *Record) error {
	if s.pos >= len(s.Records) {
		return io.EOF
	}
	*rec = s.Records[s.pos]
	s.pos++
	return nil
}

// NextBatch implements BatchReader.
func (s *SliceReader) NextBatch(dst []Record) (int, error) {
	if s.pos >= len(s.Records) {
		return 0, io.EOF
	}
	n := copy(dst, s.Records[s.pos:])
	s.pos += n
	return n, nil
}

// Reset rewinds the reader to the beginning of the slice.
func (s *SliceReader) Reset() { s.pos = 0 }
