// Package trace defines the instruction trace representation consumed by the
// simulator, a compact binary on-disk format with reader/writer support, and
// deterministic synthetic workload generators.
//
// The paper evaluates on proprietary Qualcomm server traces (CVP-1/IPC-1).
// Those are unobtainable, so this package synthesises instruction streams
// whose instruction-TLB miss behaviour matches the properties the paper
// measures in Section 3.3: Zipf-skewed page popularity, a variable number of
// successor pages per instruction page, limited small-delta spatial locality,
// and phase changes. See DESIGN.md for the substitution rationale.
package trace

import (
	"errors"
	"io"

	"morrigan/internal/arch"
)

// Record is one executed instruction. A zero Load/Store address means the
// instruction has no memory operand of that kind (the generators never place
// code or data at virtual address zero).
type Record struct {
	// PC is the instruction's fetch address.
	PC arch.VAddr
	// Load is the address read by the instruction, or zero.
	Load arch.VAddr
	// Store is the address written by the instruction, or zero.
	Store arch.VAddr
}

// HasLoad reports whether the instruction reads memory.
func (r *Record) HasLoad() bool { return r.Load != 0 }

// HasStore reports whether the instruction writes memory.
func (r *Record) HasStore() bool { return r.Store != 0 }

// Reader produces a stream of instruction records. Next fills in rec and
// returns io.EOF when the stream is exhausted; synthetic generators are
// infinite and never return io.EOF.
type Reader interface {
	Next(rec *Record) error
}

// ErrCorrupt reports a malformed trace file.
var ErrCorrupt = errors.New("trace: corrupt trace file")

// Limit wraps r so that it yields at most n records.
func Limit(r Reader, n uint64) Reader { return &limitReader{r: r, left: n} }

type limitReader struct {
	r    Reader
	left uint64
}

func (l *limitReader) Next(rec *Record) error {
	if l.left == 0 {
		return io.EOF
	}
	l.left--
	return l.r.Next(rec)
}

// Slice materialises up to n records from r, primarily for tests and
// offline analysis. It stops early at io.EOF.
func Slice(r Reader, n int) ([]Record, error) {
	out := make([]Record, 0, n)
	var rec Record
	for len(out) < n {
		err := r.Next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// SliceReader replays a fixed record slice, for tests.
type SliceReader struct {
	Records []Record
	pos     int
}

// Next implements Reader.
func (s *SliceReader) Next(rec *Record) error {
	if s.pos >= len(s.Records) {
		return io.EOF
	}
	*rec = s.Records[s.pos]
	s.pos++
	return nil
}

// Reset rewinds the reader to the beginning of the slice.
func (s *SliceReader) Reset() { s.pos = 0 }
