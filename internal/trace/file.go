package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"morrigan/internal/arch"
)

// File format
//
// A trace file is a small fixed header followed by a stream of
// variable-length records. PCs are delta-encoded (zig-zag varint relative to
// the previous PC) because instruction addresses are overwhelmingly
// sequential; load/store addresses are absolute varints. The whole stream is
// optionally gzip-compressed (detected on read via the gzip magic).
//
//	header:  magic "MGT1" | uint8 flags (bit0: reserved)
//	record:  uint8 kind   | pcDelta zigzag-varint
//	         [load varint]  if kind bit0
//	         [store varint] if kind bit1

const fileMagic = "MGT1"

const (
	recHasLoad  = 1 << 0
	recHasStore = 1 << 1
	recKindMax  = recHasLoad | recHasStore
)

// Writer serialises records to the on-disk trace format.
type Writer struct {
	w      *bufio.Writer
	gz     *gzip.Writer
	lastPC arch.VAddr
	buf    [3 * binary.MaxVarintLen64]byte
	wrote  bool
}

// NewWriter returns a Writer emitting to w. If compress is true the stream
// is gzip-compressed. Close must be called to flush.
func NewWriter(w io.Writer, compress bool) (*Writer, error) {
	tw := &Writer{}
	if compress {
		tw.gz = gzip.NewWriter(w)
		tw.w = bufio.NewWriter(tw.gz)
	} else {
		tw.w = bufio.NewWriter(w)
	}
	if _, err := tw.w.WriteString(fileMagic); err != nil {
		return nil, err
	}
	if err := tw.w.WriteByte(0); err != nil {
		return nil, err
	}
	return tw, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one record.
func (t *Writer) Write(rec *Record) error {
	var kind byte
	if rec.HasLoad() {
		kind |= recHasLoad
	}
	if rec.HasStore() {
		kind |= recHasStore
	}
	n := 0
	t.buf[n] = kind
	n++
	n += binary.PutUvarint(t.buf[n:], zigzag(int64(rec.PC)-int64(t.lastPC)))
	if rec.HasLoad() {
		n += binary.PutUvarint(t.buf[n:], uint64(rec.Load))
	}
	if rec.HasStore() {
		n += binary.PutUvarint(t.buf[n:], uint64(rec.Store))
	}
	t.lastPC = rec.PC
	t.wrote = true
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Close flushes buffered data and terminates the gzip stream if present.
func (t *Writer) Close() error {
	if err := t.w.Flush(); err != nil {
		return err
	}
	if t.gz != nil {
		return t.gz.Close()
	}
	return nil
}

// FileReader decodes the on-disk trace format; it implements Reader.
type FileReader struct {
	r      *bufio.Reader
	lastPC arch.VAddr
}

// NewFileReader wraps r, transparently decompressing gzip streams, and
// validates the header.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		br = bufio.NewReader(gz)
	}
	head := make([]byte, len(fileMagic)+1)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", ErrCorrupt)
	}
	if string(head[:len(fileMagic)]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q: %w", head[:len(fileMagic)], ErrCorrupt)
	}
	if flags := head[len(fileMagic)]; flags != 0 {
		return nil, fmt.Errorf("trace: unsupported header flags %#x: %w", flags, ErrCorrupt)
	}
	return &FileReader{r: br}, nil
}

// Next implements Reader.
func (f *FileReader) Next(rec *Record) error {
	kind, err := f.r.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return err
	}
	if kind > recKindMax {
		return fmt.Errorf("trace: record kind %#x: %w", kind, ErrCorrupt)
	}
	du, err := binary.ReadUvarint(f.r)
	if err != nil {
		return ErrCorrupt
	}
	f.lastPC = arch.VAddr(int64(f.lastPC) + unzigzag(du))
	rec.PC = f.lastPC
	rec.Load, rec.Store = 0, 0
	if kind&recHasLoad != 0 {
		v, err := binary.ReadUvarint(f.r)
		if err != nil {
			return ErrCorrupt
		}
		rec.Load = arch.VAddr(v)
	}
	if kind&recHasStore != 0 {
		v, err := binary.ReadUvarint(f.r)
		if err != nil {
			return ErrCorrupt
		}
		rec.Store = arch.VAddr(v)
	}
	return nil
}
