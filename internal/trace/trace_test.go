package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"morrigan/internal/arch"
)

func testParams() ServerParams {
	return ServerParams{
		Seed:             1,
		CodePages:        256,
		DataPages:        2048,
		HotFrac:          0.15,
		WarmFrac:         0.35,
		PHot:             0.7,
		PWarm:            0.25,
		RoutineLenMin:    2,
		RoutineLenMax:    10,
		RunLenMin:        8,
		RunLenMax:        48,
		EntryPoints:      4,
		SeqFrac:          0.1,
		SmallDeltaFrac:   0.2,
		BranchSkipFrac:   0.15,
		SuccWeights:      [5]float64{0.35, 0.20, 0.20, 0.18, 0.07},
		RandomCallFrac:   0.15,
		LoadFrac:         0.25,
		StoreFrac:        0.1,
		DataZipfS:        1.3,
		DataStreamFrac:   0.2,
		PhaseLen:         50_000,
		PhaseShuffleFrac: 0.1,
	}
}

func TestSliceAndLimit(t *testing.T) {
	sr := &SliceReader{Records: []Record{
		{PC: 0x1000}, {PC: 0x1004, Load: 0x2000}, {PC: 0x1008, Store: 0x3000},
	}}
	got, err := Slice(Limit(sr, 2), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Load != 0x2000 {
		t.Fatalf("Slice = %+v", got)
	}
	sr.Reset()
	all, err := Slice(sr, 10)
	if err != nil || len(all) != 3 {
		t.Fatalf("Slice after Reset = %+v, err %v", all, err)
	}
	var rec Record
	if err := sr.Next(&rec); err != io.EOF {
		t.Fatalf("exhausted SliceReader err = %v, want EOF", err)
	}
}

func TestRecordHasOps(t *testing.T) {
	r := Record{PC: 1}
	if r.HasLoad() || r.HasStore() {
		t.Error("empty record should have no ops")
	}
	r.Load, r.Store = 5, 6
	if !r.HasLoad() || !r.HasStore() {
		t.Error("record with ops misreported")
	}
}

func TestFileRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		g := NewServerGenerator(testParams())
		recs, err := Slice(g, 5000)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, compress)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewFileReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Slice(r, len(recs)+10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("compress=%v: got %d records, want %d", compress, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("compress=%v: record %d = %+v, want %+v", compress, i, got[i], recs[i])
			}
		}
	}
}

func TestFileRoundTripQuick(t *testing.T) {
	f := func(pcs []uint32, loads []uint32) bool {
		recs := make([]Record, len(pcs))
		for i, pc := range pcs {
			recs[i].PC = arch.VAddr(pc) + 1 // avoid PC 0
			if i < len(loads) && loads[i]%3 == 0 {
				recs[i].Load = arch.VAddr(loads[i]) + 1
			}
			if i < len(loads) && loads[i]%5 == 0 {
				recs[i].Store = arch.VAddr(loads[i]) + 2
			}
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, false)
		if err != nil {
			return false
		}
		for i := range recs {
			if w.Write(&recs[i]) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewFileReader(&buf)
		if err != nil {
			return false
		}
		got, err := Slice(r, len(recs)+1)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFileReaderRejectsGarbage(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("NOPE0"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewFileReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
	// Valid header, corrupt record kind.
	var buf bytes.Buffer
	buf.WriteString(fileMagic)
	buf.WriteByte(0)
	buf.WriteByte(0xFF)
	r, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := r.Next(&rec); err == nil {
		t.Error("corrupt record accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := Slice(NewServerGenerator(testParams()), 10_000)
	b, _ := Slice(NewServerGenerator(testParams()), 10_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	p := testParams()
	p.Seed = 2
	c, _ := Slice(NewServerGenerator(p), 10_000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorAddressRanges(t *testing.T) {
	g := NewServerGenerator(testParams())
	recs, _ := Slice(g, 50_000)
	codeEnd := CodeBaseVPN + arch.VPN(testParams().CodePages)
	dataEnd := DataBaseVPN + arch.VPN(testParams().DataPages)
	loads, stores := 0, 0
	for _, r := range recs {
		vpn := r.PC.Page()
		if vpn < CodeBaseVPN || vpn >= codeEnd {
			t.Fatalf("PC %#x outside code region", r.PC)
		}
		if r.PC%4 != 0 {
			t.Fatalf("PC %#x not 4-byte aligned", r.PC)
		}
		if r.HasLoad() {
			loads++
			v := r.Load.Page()
			if v < DataBaseVPN || v >= dataEnd {
				t.Fatalf("load %#x outside data region", r.Load)
			}
		}
		if r.HasStore() {
			stores++
			v := r.Store.Page()
			inData := v >= DataBaseVPN && v < dataEnd
			inStack := v >= StackVPN && v < StackVPN+8
			if !inData && !inStack {
				t.Fatalf("store %#x outside data/stack regions", r.Store)
			}
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("no memory ops generated: loads=%d stores=%d", loads, stores)
	}
	// Load fraction should be near the configured 25%.
	frac := float64(loads) / float64(len(recs))
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("load fraction = %v, want ~0.25", frac)
	}
	if g.Emitted() != uint64(len(recs)) {
		t.Errorf("Emitted = %d, want %d", g.Emitted(), len(recs))
	}
}

func TestGeneratorPageTransitions(t *testing.T) {
	g := NewServerGenerator(testParams())
	recs, _ := Slice(g, 100_000)
	transitions := 0
	distinct := map[arch.VPN]bool{}
	for i := 1; i < len(recs); i++ {
		distinct[recs[i].PC.Page()] = true
		if recs[i].PC.Page() != recs[i-1].PC.Page() {
			transitions++
		}
	}
	// Mean run length ~28 instructions => roughly 3.5k transitions per 100k.
	if transitions < 1000 {
		t.Errorf("only %d page transitions in 100k instructions", transitions)
	}
	if len(distinct) < 50 {
		t.Errorf("only %d distinct code pages touched", len(distinct))
	}
}

func TestGeneratorPhaseChangesShiftHotSet(t *testing.T) {
	p := testParams()
	p.PhaseLen = 20_000
	p.PhaseShuffleFrac = 0.5
	g := NewServerGenerator(p)
	recs, _ := Slice(g, 200_000)
	counts := func(lo, hi int) map[arch.VPN]int {
		m := map[arch.VPN]int{}
		for _, r := range recs[lo:hi] {
			m[r.PC.Page()]++
		}
		return m
	}
	early := counts(0, 20_000)
	late := counts(180_000, 200_000)
	// The hottest page early should usually not be the hottest page late.
	hottest := func(m map[arch.VPN]int) (best arch.VPN) {
		bc := -1
		for v, c := range m {
			if c > bc || (c == bc && v < best) {
				best, bc = v, c
			}
		}
		return best
	}
	if hottest(early) == hottest(late) {
		t.Log("hot set survived phase changes (possible but unlikely); not failing")
	}
}

func TestValidate(t *testing.T) {
	cases := []func(*ServerParams){
		func(p *ServerParams) { p.CodePages = 2 },
		func(p *ServerParams) { p.DataPages = 0 },
		func(p *ServerParams) { p.HotFrac = 0 },
		func(p *ServerParams) { p.HotFrac = 0.6; p.WarmFrac = 0.5 },
		func(p *ServerParams) { p.PHot = 0.9; p.PWarm = 0.2 },
		func(p *ServerParams) { p.RoutineLenMin = 0 },
		func(p *ServerParams) { p.RoutineLenMax = 1; p.RoutineLenMin = 3 },
		func(p *ServerParams) { p.RoutineLenMin = 10000 },
		func(p *ServerParams) { p.RunLenMin = 0 },
		func(p *ServerParams) { p.RunLenMax = 2; p.RunLenMin = 4 },
		func(p *ServerParams) { p.RunLenMax = 2000 },
		func(p *ServerParams) { p.EntryPoints = 0 },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	p := testParams()
	if err := p.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestZigZag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip of %d = %d", v, got)
		}
	}
}
