package benchdiff

import (
	"fmt"
	"strings"
	"testing"

	"morrigan/internal/runner"
	"morrigan/internal/sim"
)

// campaign builds a current-schema campaign with one record per (workload, ipc).
func campaign(ipcs map[string]float64) runner.Campaign {
	c := runner.Campaign{Schema: runner.SchemaVersion}
	for wl, ipc := range ipcs {
		c.Records = append(c.Records, runner.Record{
			Experiment:      "fig15",
			Config:          "Morrigan",
			Workload:        wl,
			ElapsedMS:       100,
			SimInstructions: 1_000_000,
			InstrPerSec:     10_000_000,
			Stats:           &sim.Stats{IPC: ipc},
		})
	}
	return c
}

func TestLoadRejectsBadSchema(t *testing.T) {
	next := fmt.Sprintf(`{"schema":%d,"records":[]}`, runner.SchemaVersion+1)
	if _, err := Load(strings.NewReader(next)); err == nil {
		t.Errorf("schema %d accepted", runner.SchemaVersion+1)
	}
	if _, err := Load(strings.NewReader(`{"schema":0,"records":[]}`)); err == nil {
		t.Error("schema 0 accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	cur := fmt.Sprintf(`{"schema":%d,"records":[{"workload":"w"}]}`, runner.SchemaVersion)
	c, err := Load(strings.NewReader(cur))
	if err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
	if len(c.Records) != 1 || c.Records[0].Workload != "w" {
		t.Errorf("loaded %+v", c)
	}
}

// TestInjectedRegression is the acceptance property: an IPC drop beyond the
// threshold must flag a regression; a drop within it must not.
func TestInjectedRegression(t *testing.T) {
	old := campaign(map[string]float64{"a": 1.0, "b": 2.0})

	beyond := campaign(map[string]float64{"a": 0.9, "b": 2.0}) // a: -10%
	rep := Compare(old, beyond, Options{IPCThresholdPct: 2})
	if !rep.Regressed() {
		t.Fatal("10% IPC drop with 2% threshold not flagged")
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Key != "fig15/Morrigan/a" {
		t.Fatalf("regressions = %+v", regs)
	}
	if !regs[0].IPCRegressed || regs[0].ElapsedRegressed {
		t.Errorf("verdict flags = %+v", regs[0])
	}

	within := campaign(map[string]float64{"a": 0.99, "b": 2.0}) // a: -1%
	if rep := Compare(old, within, Options{IPCThresholdPct: 2}); rep.Regressed() {
		t.Errorf("1%% IPC drop with 2%% threshold flagged: %+v", rep.Regressions())
	}

	// Zero threshold disables gating entirely.
	if rep := Compare(old, beyond, Options{}); rep.Regressed() {
		t.Errorf("zero threshold flagged a regression: %+v", rep.Regressions())
	}
}

func TestElapsedGateOptIn(t *testing.T) {
	old := campaign(map[string]float64{"a": 1.0})
	slow := campaign(map[string]float64{"a": 1.0})
	slow.Records[0].ElapsedMS = 200 // +100% wall time, IPC unchanged

	if rep := Compare(old, slow, Options{IPCThresholdPct: 2}); rep.Regressed() {
		t.Errorf("elapsed gate fired while disabled: %+v", rep.Regressions())
	}
	rep := Compare(old, slow, Options{IPCThresholdPct: 2, ElapsedThresholdPct: 50})
	if !rep.Regressed() || !rep.Regressions()[0].ElapsedRegressed {
		t.Errorf("100%% elapsed growth with 50%% gate not flagged: %+v", rep.Rows)
	}
}

func TestCompareMismatchedAndFailed(t *testing.T) {
	old := campaign(map[string]float64{"a": 1.0, "gone": 1.0, "broken": 1.0})
	neu := campaign(map[string]float64{"a": 1.0, "new": 1.0, "broken": 1.0})
	for i := range neu.Records {
		if neu.Records[i].Workload == "broken" {
			neu.Records[i].Error = "boom"
			neu.Records[i].Stats = nil
		}
	}
	rep := Compare(old, neu, Options{IPCThresholdPct: 2})
	if len(rep.Rows) != 1 || rep.Rows[0].Key != "fig15/Morrigan/a" {
		t.Errorf("rows = %+v", rep.Rows)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "fig15/Morrigan/gone" {
		t.Errorf("only-old = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "fig15/Morrigan/new" {
		t.Errorf("only-new = %v", rep.OnlyNew)
	}
	if len(rep.SkippedErrors) != 1 || rep.SkippedErrors[0] != "fig15/Morrigan/broken" {
		t.Errorf("skipped = %v", rep.SkippedErrors)
	}
	if rep.Regressed() {
		t.Error("mismatches/failures must not count as regressions")
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	old := campaign(map[string]float64{"a": 1.0, "b": 1.0})
	neu := campaign(map[string]float64{"a": 2.0, "b": 0.5})
	rep := Compare(old, neu, Options{})
	if g := rep.GeoMeanSpeedup; g < 0.999 || g > 1.001 {
		t.Errorf("geomean of 2x and 0.5x = %g, want 1.0", g)
	}
}

func TestReportWrite(t *testing.T) {
	old := campaign(map[string]float64{"a": 1.0})
	neu := campaign(map[string]float64{"a": 0.5})
	rep := Compare(old, neu, Options{IPCThresholdPct: 2})
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig15/Morrigan/a", "IPC REGRESSED", "-50.00%", "geomean speedup 0.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestThroughputGate covers the simulation-throughput floor: a ratio below
// MinThroughputRatio flags the row, files without throughput accounting are
// never flagged, and the geomean ratio is reported.
func TestThroughputGate(t *testing.T) {
	old := campaign(map[string]float64{"a": 1.0, "b": 1.0})
	neu := campaign(map[string]float64{"a": 1.0, "b": 1.0})
	neu.Records[0].InstrPerSec = 40_000_000 // 4x
	neu.Records[1].InstrPerSec = 20_000_000 // 2x

	if rep := Compare(old, neu, Options{}); rep.Regressed() {
		t.Errorf("disabled throughput gate flagged: %+v", rep.Regressions())
	}
	rep := Compare(old, neu, Options{MinThroughputRatio: 3})
	regs := rep.Regressions()
	if len(regs) != 1 || !regs[0].ThroughputRegressed {
		t.Fatalf("2x row with 3x floor: regressions = %+v", regs)
	}
	if g := rep.GeoMeanThroughput; g < 2.82 || g > 2.84 {
		t.Errorf("geomean of 4x and 2x = %g, want ~2.83", g)
	}
	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"THROUGHPUT REGRESSED", "2.00x", "geomean sim throughput 2.83x"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q:\n%s", want, sb.String())
		}
	}

	// Pre-throughput files (instr/sec zero) must pass any floor.
	legacy := campaign(map[string]float64{"a": 1.0})
	for i := range legacy.Records {
		legacy.Records[i].InstrPerSec = 0
	}
	if rep := Compare(legacy, neu, Options{MinThroughputRatio: 3}); rep.Regressed() {
		t.Errorf("legacy file flagged by throughput floor: %+v", rep.Regressions())
	}
}
