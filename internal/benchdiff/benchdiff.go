// Package benchdiff compares two campaign result files (the versioned JSON
// emitted by internal/runner) and reports per-workload performance deltas:
// simulated IPC (did the modelled machine get slower?), speedup (new/old IPC),
// wall-clock elapsed time and simulation throughput (did the simulator get
// slower?). A configurable threshold turns deltas into regression verdicts,
// making performance a machine-checkable property in CI and the BENCH_*
// trajectory: cmd/benchdiff exits non-zero when any metric regresses beyond
// its threshold.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"morrigan/internal/runner"
)

// Row is one matched workload's comparison.
type Row struct {
	// Key is the record identity: "experiment/config/workload".
	Key string
	// OldIPC and NewIPC are the simulated IPCs.
	OldIPC, NewIPC float64
	// Speedup is NewIPC/OldIPC (1.0 = unchanged).
	Speedup float64
	// IPCDeltaPct is the signed IPC change in percent (negative = slower).
	IPCDeltaPct float64
	// OldElapsedMS and NewElapsedMS are wall-clock job times.
	OldElapsedMS, NewElapsedMS float64
	// ElapsedDeltaPct is the signed elapsed change in percent (positive =
	// the simulation got slower to run).
	ElapsedDeltaPct float64
	// OldInstrPerSec and NewInstrPerSec are simulation throughputs (zero in
	// files written before throughput accounting existed).
	OldInstrPerSec, NewInstrPerSec float64
	// ThroughputRatio is NewInstrPerSec/OldInstrPerSec (zero when either
	// file predates throughput accounting).
	ThroughputRatio float64
	// IPCRegressed, ElapsedRegressed and ThroughputRegressed mark threshold
	// violations.
	IPCRegressed, ElapsedRegressed, ThroughputRegressed bool
}

// Report is the full comparison.
type Report struct {
	// Rows compare the workloads present in both files, in key order.
	Rows []Row
	// OnlyOld and OnlyNew list unmatched keys (schema drift, renamed or
	// added workloads) — reported, never a regression.
	OnlyOld, OnlyNew []string
	// SkippedErrors lists keys whose record failed in either file.
	SkippedErrors []string
	// GeoMeanSpeedup is the geometric-mean IPC speedup across Rows.
	GeoMeanSpeedup float64
	// GeoMeanThroughput is the geometric-mean simulation-throughput ratio
	// across rows where both files recorded instr/sec (zero when none did).
	GeoMeanThroughput float64
	// IPCThresholdPct, ElapsedThresholdPct and MinThroughputRatio echo the
	// comparison options.
	IPCThresholdPct, ElapsedThresholdPct, MinThroughputRatio float64
}

// Options configures a comparison.
type Options struct {
	// IPCThresholdPct flags a workload whose IPC dropped by more than this
	// percentage. Zero disables IPC gating (any drop tolerated).
	IPCThresholdPct float64
	// ElapsedThresholdPct flags a workload whose wall-clock time grew by
	// more than this percentage. Zero disables elapsed gating — wall time is
	// machine-noise sensitive, so this gate is opt-in.
	ElapsedThresholdPct float64
	// MinThroughputRatio flags a workload whose simulation throughput
	// (instr/sec) fell below this multiple of the old file's. 1.0 demands
	// no slowdown; values above 1 demand a speedup (the batched-pipeline CI
	// gate uses 3). Zero disables the gate. Rows where either file predates
	// throughput accounting are never flagged.
	MinThroughputRatio float64
}

// Load decodes a campaign results JSON file, rejecting unknown schemas.
func Load(r io.Reader) (runner.Campaign, error) {
	var c runner.Campaign
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		return c, fmt.Errorf("benchdiff: %w", err)
	}
	if c.Schema != runner.SchemaVersion {
		return c, fmt.Errorf("benchdiff: schema %d, want %d", c.Schema, runner.SchemaVersion)
	}
	return c, nil
}

// key is a record's identity.
func key(r runner.Record) string {
	return runner.Job{Experiment: r.Experiment, Config: r.Config, Workload: r.Workload}.Name()
}

// index maps records by key, keeping the first of any duplicates.
func index(c runner.Campaign) (map[string]runner.Record, []string) {
	m := make(map[string]runner.Record, len(c.Records))
	keys := make([]string, 0, len(c.Records))
	for _, r := range c.Records {
		k := key(r)
		if _, dup := m[k]; dup {
			continue
		}
		m[k] = r
		keys = append(keys, k)
	}
	return m, keys
}

// Compare matches the two campaigns' records by identity and derives the
// per-workload deltas and regression verdicts.
func Compare(oldC, newC runner.Campaign, opt Options) Report {
	rep := Report{
		IPCThresholdPct:     opt.IPCThresholdPct,
		ElapsedThresholdPct: opt.ElapsedThresholdPct,
		MinThroughputRatio:  opt.MinThroughputRatio,
	}
	oldIdx, oldKeys := index(oldC)
	newIdx, newKeys := index(newC)

	for _, k := range newKeys {
		if _, ok := oldIdx[k]; !ok {
			rep.OnlyNew = append(rep.OnlyNew, k)
		}
	}
	logSum, logN := 0.0, 0
	tpSum, tpN := 0.0, 0
	for _, k := range oldKeys {
		o := oldIdx[k]
		n, ok := newIdx[k]
		if !ok {
			rep.OnlyOld = append(rep.OnlyOld, k)
			continue
		}
		if o.Error != "" || n.Error != "" || o.Stats == nil || n.Stats == nil {
			rep.SkippedErrors = append(rep.SkippedErrors, k)
			continue
		}
		row := Row{
			Key:            k,
			OldIPC:         o.Stats.IPC,
			NewIPC:         n.Stats.IPC,
			OldElapsedMS:   o.ElapsedMS,
			NewElapsedMS:   n.ElapsedMS,
			OldInstrPerSec: o.InstrPerSec,
			NewInstrPerSec: n.InstrPerSec,
		}
		if row.OldIPC > 0 {
			row.Speedup = row.NewIPC / row.OldIPC
			row.IPCDeltaPct = (row.Speedup - 1) * 100
			logSum += math.Log(row.Speedup)
			logN++
		}
		if row.OldElapsedMS > 0 {
			row.ElapsedDeltaPct = (row.NewElapsedMS/row.OldElapsedMS - 1) * 100
		}
		if row.OldInstrPerSec > 0 && row.NewInstrPerSec > 0 {
			row.ThroughputRatio = row.NewInstrPerSec / row.OldInstrPerSec
			tpSum += math.Log(row.ThroughputRatio)
			tpN++
			if opt.MinThroughputRatio > 0 && row.ThroughputRatio < opt.MinThroughputRatio {
				row.ThroughputRegressed = true
			}
		}
		if opt.IPCThresholdPct > 0 && row.IPCDeltaPct < -opt.IPCThresholdPct {
			row.IPCRegressed = true
		}
		if opt.ElapsedThresholdPct > 0 && row.ElapsedDeltaPct > opt.ElapsedThresholdPct {
			row.ElapsedRegressed = true
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Key < rep.Rows[j].Key })
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	sort.Strings(rep.SkippedErrors)
	if logN > 0 {
		rep.GeoMeanSpeedup = math.Exp(logSum / float64(logN))
	}
	if tpN > 0 {
		rep.GeoMeanThroughput = math.Exp(tpSum / float64(tpN))
	}
	return rep
}

// Regressions returns the keys that violated a threshold, worst IPC first.
func (r Report) Regressions() []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.IPCRegressed || row.ElapsedRegressed || row.ThroughputRegressed {
			out = append(out, row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IPCDeltaPct < out[j].IPCDeltaPct })
	return out
}

// Regressed reports whether any workload violated a threshold.
func (r Report) Regressed() bool { return len(r.Regressions()) > 0 }

// Write renders the report as an aligned text table plus notes.
func (r Report) Write(w io.Writer) error {
	if len(r.Rows) == 0 {
		fmt.Fprintln(w, "benchdiff: no comparable workloads")
	}
	rows := make([][]string, 0, len(r.Rows)+1)
	rows = append(rows, []string{"workload", "ipc old", "ipc new", "delta", "speedup", "elapsed old", "elapsed new", "delta", "thpt", "verdict"})
	for _, row := range r.Rows {
		verdict := "ok"
		if row.IPCRegressed {
			verdict = "IPC REGRESSED"
		}
		if row.ElapsedRegressed {
			if verdict != "ok" {
				verdict += "+ELAPSED"
			} else {
				verdict = "ELAPSED REGRESSED"
			}
		}
		if row.ThroughputRegressed {
			if verdict != "ok" {
				verdict += "+THROUGHPUT"
			} else {
				verdict = "THROUGHPUT REGRESSED"
			}
		}
		thpt := "n/a"
		if row.ThroughputRatio > 0 {
			thpt = fmt.Sprintf("%.2fx", row.ThroughputRatio)
		}
		rows = append(rows, []string{
			row.Key,
			fmt.Sprintf("%.3f", row.OldIPC),
			fmt.Sprintf("%.3f", row.NewIPC),
			fmt.Sprintf("%+.2f%%", row.IPCDeltaPct),
			fmt.Sprintf("%.3f", row.Speedup),
			fmt.Sprintf("%.0fms", row.OldElapsedMS),
			fmt.Sprintf("%.0fms", row.NewElapsedMS),
			fmt.Sprintf("%+.1f%%", row.ElapsedDeltaPct),
			thpt,
			verdict,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(w, "\ngeomean speedup %.4f over %d workloads\n", r.GeoMeanSpeedup, len(r.Rows))
	}
	if r.GeoMeanThroughput > 0 {
		fmt.Fprintf(w, "geomean sim throughput %.2fx\n", r.GeoMeanThroughput)
	}
	for _, k := range r.OnlyOld {
		fmt.Fprintf(w, "note: %s only in old file\n", k)
	}
	for _, k := range r.OnlyNew {
		fmt.Fprintf(w, "note: %s only in new file\n", k)
	}
	for _, k := range r.SkippedErrors {
		fmt.Fprintf(w, "note: %s skipped (failed job)\n", k)
	}
	return nil
}
