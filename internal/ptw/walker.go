package ptw

import (
	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/pagetable"
	"morrigan/internal/telemetry"
)

// WalkResult reports the outcome of one page walk.
type WalkResult struct {
	// Latency is the walk's total latency: PSC lookup plus the (serialized,
	// or parallel under ASAP) memory references.
	Latency arch.Cycle
	// MemRefs is how many page-walk references reached the memory
	// hierarchy.
	MemRefs int
	// Present reports whether a translation was obtained. Prefetch walks
	// for unmapped pages fail here (non-faulting prefetches).
	Present bool
	// PFN is the translation when Present.
	PFN arch.PFN
	// FreeVPNs are the already-mapped virtual pages whose leaf PTEs share
	// the cache line fetched for this walk's leaf access — translations the
	// prefetcher can install "for free" without further memory references.
	// Populated only when the leaf level was reached.
	FreeVPNs []arch.VPN
	// Queued is the extra delay this walk spent waiting for a free walker
	// MSHR (demand walks only; prefetch walks are dropped instead).
	Queued arch.Cycle
}

// Config controls the walker.
type Config struct {
	PSC PSCConfig
	// MSHRs is the number of in-flight walks the walker sustains; Table 1
	// uses 4. Demand walks queue when all are busy; prefetch walks are
	// dropped.
	MSHRs int
	// ASAP, when set, models Prefetched Address Translation (Margaritov et
	// al., MICRO'19): the references below the deepest PSC hit are launched
	// concurrently, so the walk's memory latency is the maximum rather than
	// the sum of the per-level latencies.
	ASAP bool
}

// DefaultConfig mirrors Table 1 with ASAP off.
func DefaultConfig() Config {
	return Config{PSC: DefaultPSCConfig(), MSHRs: 4}
}

// walkMemoSlots sizes the walker's direct-mapped walk memo (a power of two).
const walkMemoSlots = 4096

// walkMemo caches the functional outcome of one table walk: the reference
// path and the leaf line's neighbour translations, both valid as long as the
// table's structural epoch is unchanged. Timing state (PSC probes, memory
// accesses, MSHR occupancy, accessed bits) is never memoized — a memo hit
// replays the identical Path through the full timing model, so statistics
// are bit-identical with and without the memo.
type walkMemo struct {
	vpn           arch.VPN
	epoch         uint64
	path          pagetable.Path
	neighbors     []arch.VPN
	haveNeighbors bool
	valid         bool
}

// Walker performs page walks against a page table (radix or hashed),
// filtered through the PSC when the table has interior levels, with memory
// references served by the cache hierarchy.
type Walker struct {
	table    pagetable.Translator
	psc      *PSC
	interior int
	mem      *cache.Hierarchy
	cfg      Config
	busy     []arch.Cycle // per-MSHR busy-until timestamps
	probe    *telemetry.Probe
	memo     []walkMemo

	demandWalks     uint64
	demandRefs      uint64
	prefetchWalks   uint64
	prefetchRefs    uint64
	droppedWalks    uint64
	accessedMarked  uint64
	correctingWalks uint64
}

// New builds a walker. The page table and hierarchy are shared with the rest
// of the simulated machine.
func New(pt pagetable.Translator, mem *cache.Hierarchy, cfg Config) *Walker {
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 1
	}
	interior := pt.InteriorLevels()
	return &Walker{
		table:    pt,
		interior: interior,
		psc:      NewPSC(cfg.PSC, interior+1),
		mem:      mem,
		cfg:      cfg,
		busy:     make([]arch.Cycle, cfg.MSHRs),
		memo:     make([]walkMemo, walkMemoSlots),
	}
}

// PSC exposes the walker's page-structure cache.
func (w *Walker) PSC() *PSC { return w.psc }

// SetProbe attaches the telemetry probe; every completed walk feeds its
// latency histograms and event trace, and dropped prefetch walks are traced.
// A nil probe (the default) keeps the walk path free of telemetry work.
func (w *Walker) SetProbe(p *telemetry.Probe) { w.probe = p }

// Walk performs a page walk for vpn at time now. Demand walks map unmapped
// pages on first touch (demand paging) and queue for walker MSHRs; prefetch
// walks are non-faulting and are dropped (Present=false, MemRefs=0) when all
// MSHRs are busy, without touching the memory hierarchy.
func (w *Walker) Walk(tid arch.ThreadID, vpn arch.VPN, now arch.Cycle, demand bool) WalkResult {
	// MSHR accounting. Only prefetch walks reserve MSHR slots: a prefetch
	// walk finding every slot busy is dropped, and a demand walk finding
	// every slot busy with prefetch walks waits for the earliest one (the
	// port contention that degrades page-crossing I-cache prefetching,
	// Section 3.5). Demand-demand overlap is handled by the core's MLP
	// model, not here, so demand walks never reserve slots.
	slot := 0
	for i, b := range w.busy {
		if b < w.busy[slot] {
			slot = i
		}
	}
	var queued arch.Cycle
	if w.busy[slot] > now {
		if !demand {
			w.droppedWalks++
			if w.probe != nil {
				w.probe.WalkDropped(tid, vpn, now)
			}
			return WalkResult{}
		}
		queued = w.busy[slot] - now
	}

	// Resolve the reference path, memoizing per (vpn, table epoch):
	// repeated walks of an unchanged page table skip the pointer chase but
	// replay the identical path through the PSC and memory timing below. A
	// memoized non-present path cannot serve a demand walk — the demand
	// walk must reach the table to demand-map the page.
	epoch := w.table.Epoch()
	m := &w.memo[uint64(vpn)&(walkMemoSlots-1)]
	var path pagetable.Path
	if m.valid && m.vpn == vpn && m.epoch == epoch && (m.path.Present || !demand) {
		path = m.path
	} else {
		path = w.table.Walk(vpn, demand)
		// A demand walk may have advanced the epoch by allocating; the
		// fresh path is valid for the post-walk epoch.
		*m = walkMemo{vpn: vpn, epoch: w.table.Epoch(), path: path, valid: true}
	}
	start := 0
	var res WalkResult
	res.Queued = queued
	if w.interior > 0 {
		// Radix walk: consult the page-structure caches.
		start = w.psc.Lookup(tid, vpn)
		res.Latency = w.psc.Latency()
	}

	kind := cache.KindPTWPrefetch
	if demand {
		kind = cache.KindPTWDemand
	}
	var maxRef arch.Cycle
	for level := start; level < path.Depth; level++ {
		r := w.mem.Access(kind, path.Addrs[level])
		res.MemRefs++
		res.Latency += r.Latency
		if r.Latency > maxRef {
			maxRef = r.Latency
		}
	}
	if w.cfg.ASAP && w.interior > 0 && res.MemRefs > 1 {
		// All remaining levels were launched concurrently.
		res.Latency = w.psc.Latency() + maxRef
	}
	if !demand {
		w.busy[slot] = now + res.Latency
	}

	res.Present = path.Present
	res.PFN = path.Leaf
	if path.Present || path.Depth == w.interior+1 {
		// The leaf line was fetched, so its neighbouring translations are
		// available for free. The memo entry is current for this vpn and
		// epoch (refreshed above on any mismatch), so the neighbour list
		// is computed once per epoch and shared; callers consume it before
		// the next walk per the WalkResult contract.
		if !m.haveNeighbors {
			m.neighbors = w.table.LineNeighbors(vpn)
			m.haveNeighbors = true
		}
		res.FreeVPNs = m.neighbors
	}
	if w.interior > 0 {
		// Cache the interior prefixes the walk resolved. resolvedThrough
		// is the deepest interior level whose child exists.
		resolved := path.Depth - 1
		if path.Present {
			resolved = w.interior
		}
		w.psc.Fill(tid, vpn, start, resolved)
	}

	if path.Present {
		// x86 requires even prefetched translations to set the accessed
		// bit (Section 4.3).
		if w.table.MarkAccessed(vpn) {
			w.accessedMarked++
		}
	}
	if demand {
		w.demandWalks++
		w.demandRefs += uint64(res.MemRefs)
	} else {
		w.prefetchWalks++
		w.prefetchRefs += uint64(res.MemRefs)
	}
	if w.probe != nil {
		w.probe.WalkObserved(tid, vpn, demand, res.Latency, now)
	}
	return res
}

// CorrectAccessed issues a correcting page walk that resets the accessed
// bit of a prefetched-but-unused translation (Section 4.3: "these correcting
// page walks could be issued when the TLB MSHR is not full to avoid delaying
// any other page walk"). The walk is skipped when every MSHR is busy. It
// returns whether the correction was performed.
func (w *Walker) CorrectAccessed(tid arch.ThreadID, vpn arch.VPN, now arch.Cycle) bool {
	slot := 0
	for i, b := range w.busy {
		if b < w.busy[slot] {
			slot = i
		}
	}
	if w.busy[slot] > now {
		return false
	}
	if !w.table.ClearAccessed(vpn) {
		return false
	}
	// The correction rewrites the leaf PTE: one background reference to
	// the leaf line (the upper levels are already resolved in the PSC or
	// irrelevant for a hashed table).
	path := w.table.Walk(vpn, false)
	var lat arch.Cycle = 0
	if path.Depth > 0 {
		r := w.mem.Access(cache.KindPTWPrefetch, path.Addrs[path.Depth-1])
		lat = r.Latency
		w.prefetchRefs++
	}
	w.busy[slot] = now + lat
	w.correctingWalks++
	return true
}

// CorrectingWalks returns how many correcting walks were performed.
func (w *Walker) CorrectingWalks() uint64 { return w.correctingWalks }

// Stats snapshot accessors.

// DemandWalks returns the number of demand walks since the last ResetStats.
func (w *Walker) DemandWalks() uint64 { return w.demandWalks }

// DemandRefs returns memory references issued by demand walks.
func (w *Walker) DemandRefs() uint64 { return w.demandRefs }

// PrefetchWalks returns the number of completed prefetch walks.
func (w *Walker) PrefetchWalks() uint64 { return w.prefetchWalks }

// PrefetchRefs returns memory references issued by prefetch walks.
func (w *Walker) PrefetchRefs() uint64 { return w.prefetchRefs }

// DroppedWalks returns prefetch walks dropped for lack of MSHRs.
func (w *Walker) DroppedWalks() uint64 { return w.droppedWalks }

// RefsPerDemandWalk returns the mean memory references per demand walk (the
// paper reports 1.4 on the QMM workloads thanks to high PSC hit rates).
func (w *Walker) RefsPerDemandWalk() float64 {
	if w.demandWalks == 0 {
		return 0
	}
	return float64(w.demandRefs) / float64(w.demandWalks)
}

// ResetStats clears counters, keeping PSC contents and MSHR state.
func (w *Walker) ResetStats() {
	w.demandWalks, w.demandRefs = 0, 0
	w.prefetchWalks, w.prefetchRefs = 0, 0
	w.droppedWalks, w.accessedMarked, w.correctingWalks = 0, 0, 0
}

// Settle frees every MSHR slot. Sampled execution calls it when the
// simulation clock rebases between timed slices: busy-until timestamps from
// the previous slice's clock epoch would read as far-future under the new
// epoch, queueing demand walks behind phantom occupancy and dropping every
// prefetch walk.
func (w *Walker) Settle() {
	for i := range w.busy {
		w.busy[i] = 0
	}
}
