package ptw

import (
	"testing"

	"morrigan/internal/arch"
)

// BenchmarkPSCLookupHit measures the split-PSC probe with a warm region:
// the last-hit slot hint should make repeated same-region lookups a single
// compare per level.
func BenchmarkPSCLookupHit(b *testing.B) {
	p := NewPSC(DefaultPSCConfig(), 4)
	p.Fill(0, 0x1234, 0, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lookup(0, 0x1234)
	}
}

// BenchmarkPSCLookupWandering measures lookups over a rotating set of
// regions, defeating the last-hit hint so the set scans are exercised.
func BenchmarkPSCLookupWandering(b *testing.B) {
	p := NewPSC(DefaultPSCConfig(), 4)
	vpns := make([]arch.VPN, 64)
	for i := range vpns {
		vpns[i] = arch.VPN(i) << (2 * arch.RadixBits)
		p.Fill(0, vpns[i], 0, 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Lookup(0, vpns[i%len(vpns)])
	}
}

// BenchmarkWalkMemoized measures a repeated walk of one mapped page — the
// walk memo's best case: no pointer chase, but the full PSC and memory
// timing path still runs.
func BenchmarkWalkMemoized(b *testing.B) {
	w, _, _ := newTestWalker(false)
	w.Walk(0, 42, 0, true) // map the page and prime the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Walk(0, 42, arch.Cycle(i), true)
	}
}
