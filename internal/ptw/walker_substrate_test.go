package ptw

import (
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/pagetable"
)

func newSubstrateWalker(pt pagetable.Translator) (*Walker, *cache.Hierarchy) {
	cacheCfg := cache.DefaultConfig()
	cacheCfg.L2StridePrefetch = false
	mem := cache.NewHierarchy(cacheCfg)
	return New(pt, mem, DefaultConfig()), mem
}

func TestWalkerOverHashedTable(t *testing.T) {
	pt := pagetable.NewHashed(1, 1<<14)
	w, _ := newSubstrateWalker(pt)
	res := w.Walk(0, 0x400, 0, true)
	if !res.Present {
		t.Fatal("hashed demand walk failed")
	}
	// A collision-free hashed walk is a single bucket reference with no
	// PSC lookup latency.
	if res.MemRefs != 1 {
		t.Fatalf("hashed walk MemRefs = %d, want 1", res.MemRefs)
	}
	// PSC must stay idle.
	if w.PSC().HitRate() != 0 {
		t.Fatal("PSC consulted on a hashed walk")
	}
}

func TestWalkerHashedPreservesPageTableLocality(t *testing.T) {
	pt := pagetable.NewHashed(1, 1<<14)
	w, _ := newSubstrateWalker(pt)
	base := arch.VPN(0x800)
	pt.EnsureMapped(base + 1)
	pt.EnsureMapped(base + 5)
	res := w.Walk(0, base, 0, true)
	if len(res.FreeVPNs) != 2 {
		t.Fatalf("FreeVPNs = %v: hashed tables must preserve page table locality (Section 4.3)", res.FreeVPNs)
	}
}

func TestWalkerOverRadix5(t *testing.T) {
	pt4 := pagetable.New(1)
	pt5 := pagetable.NewWithLevels(1, 5)
	w4, _ := newSubstrateWalker(pt4)
	w5, _ := newSubstrateWalker(pt5)
	r4 := w4.Walk(0, 0x123456, 0, true)
	r5 := w5.Walk(0, 0x123456, 0, true)
	if r5.MemRefs != r4.MemRefs+1 {
		t.Fatalf("cold 5-level walk refs = %d, want %d", r5.MemRefs, r4.MemRefs+1)
	}
	// After warmup the PSC hides the upper levels on both.
	r4b := w4.Walk(0, 0x123457, 100000, true)
	r5b := w5.Walk(0, 0x123457, 100000, true)
	if r4b.MemRefs != 1 || r5b.MemRefs != 1 {
		t.Fatalf("PSC-warm walks: 4-level %d refs, 5-level %d refs, want 1 each", r4b.MemRefs, r5b.MemRefs)
	}
}

func TestWalkerRadix5PSCCoversDeepLevels(t *testing.T) {
	pt := pagetable.NewWithLevels(1, 5)
	w, _ := newSubstrateWalker(pt)
	w.Walk(0, 0x400, 0, true)
	// A far page shares only the (uncached) PML5 level: full walk.
	far := arch.VPN(1) << 35
	res := w.Walk(0, far, 1000, true)
	if res.MemRefs != 5 {
		t.Fatalf("far 5-level walk refs = %d, want 5", res.MemRefs)
	}
}

func TestHashedWalkerFreeVPNsWithoutExtraRefs(t *testing.T) {
	pt := pagetable.NewHashed(1, 1<<14)
	w, mem := newSubstrateWalker(pt)
	base := arch.VPN(0x1000)
	for i := arch.VPN(0); i < 8; i++ {
		pt.EnsureMapped(base + i)
	}
	before := mem.ServedTotal(cache.KindPTWDemand)
	res := w.Walk(0, base, 0, true)
	after := mem.ServedTotal(cache.KindPTWDemand)
	if len(res.FreeVPNs) != 7 {
		t.Fatalf("FreeVPNs = %d, want 7", len(res.FreeVPNs))
	}
	if after-before != uint64(res.MemRefs) {
		t.Fatal("free neighbours must not cost extra memory references")
	}
}

func TestCorrectAccessed(t *testing.T) {
	pt := pagetable.New(1)
	w, _ := newSubstrateWalker(pt)
	pt.EnsureMapped(0x400)
	pt.MarkAccessed(0x400)
	if !w.CorrectAccessed(0, 0x400, 1000) {
		t.Fatal("correction refused with free MSHRs")
	}
	pte, _ := pt.Lookup(0x400)
	if pte.Accessed {
		t.Fatal("accessed bit not cleared")
	}
	if w.CorrectingWalks() != 1 {
		t.Fatalf("CorrectingWalks = %d", w.CorrectingWalks())
	}
	// A second correction is a no-op (bit already clear).
	if w.CorrectAccessed(0, 0x400, 2000) {
		t.Fatal("correction of a clear bit should be refused")
	}
	// Unmapped page: no-op.
	if w.CorrectAccessed(0, 0x999999, 3000) {
		t.Fatal("correction of an unmapped page should be refused")
	}
}

func TestCorrectAccessedRespectsMSHRs(t *testing.T) {
	pt := pagetable.New(1)
	w, _ := newSubstrateWalker(pt)
	for i := arch.VPN(0); i < 8; i++ {
		pt.EnsureMapped(0x3000 + i*512)
	}
	// Saturate all 4 MSHRs with prefetch walks at cycle 0.
	for i := arch.VPN(0); i < 4; i++ {
		w.Walk(0, 0x3000+i*512, 0, false)
	}
	pt.MarkAccessed(0x3000 + 5*512)
	if w.CorrectAccessed(0, 0x3000+5*512, 0) {
		t.Fatal("correction should yield to busy MSHRs")
	}
}
