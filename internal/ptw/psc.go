// Package ptw models the page table walker and its page-structure caches
// (PSCs, Intel's MMU caches), per Table 1 of the paper: a 3-level split PSC
// (PML4 2-entry fully associative, PDP 4-entry fully associative, PD
// 32-entry 4-way) in front of a walker that issues serialized memory
// references through the cache hierarchy, with a 4-entry MSHR shared between
// demand and prefetch walks.
package ptw

import "morrigan/internal/arch"

// pscKey packs a cached partial translation — the VPN prefix consumed
// through a given radix level, plus the owning thread — into one comparable
// word with bit 0 as the valid marker (invalid slots are zero).
func pscKey(tid arch.ThreadID, prefix uint64) uint64 {
	return prefix<<9 | uint64(tid)<<1 | 1
}

// pscLevel is one of the three split PSC structures. Entries live in flat
// parallel key/used arrays (struct-of-arrays); when the set count is a power
// of two the set index uses a mask, computing the same index as the modulo.
// last caches the slot of the most recent hit or insert: page walks for the
// same region repeatedly probe the same prefix, and a verified key match at
// the remembered slot short-circuits the set scan with identical observable
// behaviour (same entry promoted, same hit accounting).
type pscLevel struct {
	sets, ways int
	mask       uint64 // sets-1 when sets is a power of two, else 0
	keys       []uint64
	used       []uint64
	last       int
	tick       uint64
	hits       uint64
	lookups    uint64
}

func newPSCLevel(entries, ways int) *pscLevel {
	p := &pscLevel{
		sets: entries / ways,
		ways: ways,
		keys: make([]uint64, entries),
		used: make([]uint64, entries),
	}
	if p.sets&(p.sets-1) == 0 {
		p.mask = uint64(p.sets - 1)
	}
	return p
}

// base returns the first slot index of the prefix's set.
func (p *pscLevel) base(prefix uint64) int {
	if p.mask != 0 || p.sets == 1 {
		return int(prefix&p.mask) * p.ways
	}
	return int(prefix%uint64(p.sets)) * p.ways
}

func (p *pscLevel) lookup(tid arch.ThreadID, prefix uint64) bool {
	p.tick++
	p.lookups++
	k := pscKey(tid, prefix)
	// A key can live only in its home set, so a full-key match at the
	// remembered slot is exactly the entry a set scan would find.
	if p.keys[p.last] == k {
		p.used[p.last] = p.tick
		p.hits++
		return true
	}
	base := p.base(prefix)
	for i := base; i < base+p.ways; i++ {
		if p.keys[i] == k {
			p.used[i] = p.tick
			p.hits++
			p.last = i
			return true
		}
	}
	return false
}

func (p *pscLevel) insert(tid arch.ThreadID, prefix uint64) {
	p.tick++
	k := pscKey(tid, prefix)
	base := p.base(prefix)
	victim := base
	for i := base; i < base+p.ways; i++ {
		if p.keys[i] == k {
			p.used[i] = p.tick
			p.last = i
			return
		}
		if p.keys[i] == 0 {
			victim = i
			break
		}
		if p.used[i] < p.used[victim] {
			victim = i
		}
	}
	p.keys[victim] = k
	p.used[victim] = p.tick
	p.last = victim
}

// PSCConfig sizes the three split PSC levels. Fields are (entries, ways).
type PSCConfig struct {
	PML4Entries, PML4Ways int
	PDPEntries, PDPWays   int
	PDEntries, PDWays     int
	Latency               arch.Cycle
}

// DefaultPSCConfig mirrors Table 1.
func DefaultPSCConfig() PSCConfig {
	return PSCConfig{
		PML4Entries: 2, PML4Ways: 2, // fully associative
		PDPEntries: 4, PDPWays: 4, // fully associative
		PDEntries: 32, PDWays: 4,
		Latency: 2,
	}
}

// PSC is the 3-level split page-structure cache. Its three structures cache
// the translation prefixes consumed through the three deepest interior radix
// levels (PML4, PDP, PD on a 4-level table; PML4, PDP, PD again on a 5-level
// table, leaving the PML5 level uncached); a hit lets the walker skip every
// level at or above the hit and begin below it.
type PSC struct {
	levels      [3]*pscLevel
	latency     arch.Cycle
	totalLevels int // radix levels of the table the walker traverses
	base        int // radix level cached by structure 0
}

// NewPSC builds the split PSC for a table with the given total radix levels.
func NewPSC(cfg PSCConfig, totalLevels int) *PSC {
	base := totalLevels - 1 - 3
	if base < 0 {
		base = 0
	}
	return &PSC{
		levels: [3]*pscLevel{
			newPSCLevel(cfg.PML4Entries, cfg.PML4Ways),
			newPSCLevel(cfg.PDPEntries, cfg.PDPWays),
			newPSCLevel(cfg.PDEntries, cfg.PDWays),
		},
		latency:     cfg.Latency,
		totalLevels: totalLevels,
		base:        base,
	}
}

// prefix returns the VPN prefix consumed through the given radix level
// (inclusive).
func (p *PSC) prefix(vpn arch.VPN, radixLevel int) uint64 {
	shift := uint((p.totalLevels - 1 - radixLevel) * arch.RadixBits)
	return uint64(vpn) >> shift
}

// structFor maps a radix level to its PSC structure index, or -1.
func (p *PSC) structFor(radixLevel int) int {
	j := radixLevel - p.base
	if j < 0 || j >= len(p.levels) {
		return -1
	}
	return j
}

// Lookup probes all structures in parallel and returns the radix level at
// which the walk may start: 0 means no PSC hit (walk from the root);
// totalLevels-1 means only the leaf access remains.
func (p *PSC) Lookup(tid arch.ThreadID, vpn arch.VPN) int {
	start := 0
	for j := len(p.levels) - 1; j >= 0; j-- {
		radixLevel := p.base + j
		if radixLevel >= p.totalLevels-1 {
			continue
		}
		if p.levels[j].lookup(tid, p.prefix(vpn, radixLevel)) {
			start = radixLevel + 1
			break
		}
	}
	return start
}

// Fill records the prefixes resolved by a walk that consulted radix levels
// [from, resolvedThrough). Only interior levels with a PSC structure and an
// existing child node are cached.
func (p *PSC) Fill(tid arch.ThreadID, vpn arch.VPN, from, resolvedThrough int) {
	for level := from; level < resolvedThrough && level < p.totalLevels-1; level++ {
		if j := p.structFor(level); j >= 0 {
			p.levels[j].insert(tid, p.prefix(vpn, level))
		}
	}
}

// Latency returns the PSC lookup latency.
func (p *PSC) Latency() arch.Cycle { return p.latency }

// HitRate returns aggregate PSC hits/lookups across levels.
func (p *PSC) HitRate() float64 {
	var h, l uint64
	for _, lv := range p.levels {
		h += lv.hits
		l += lv.lookups
	}
	if l == 0 {
		return 0
	}
	return float64(h) / float64(l)
}

// Flush invalidates all PSC entries (context switch).
func (p *PSC) Flush() {
	for _, lv := range p.levels {
		clear(lv.keys)
	}
}
