package ptw

import (
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/pagetable"
)

func newTestWalker(asap bool) (*Walker, *pagetable.Table, *cache.Hierarchy) {
	pt := pagetable.New(1)
	cacheCfg := cache.DefaultConfig()
	cacheCfg.L2StridePrefetch = false
	mem := cache.NewHierarchy(cacheCfg)
	cfg := DefaultConfig()
	cfg.ASAP = asap
	return New(pt, mem, cfg), pt, mem
}

func TestDemandWalkResolves(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	res := w.Walk(0, 0x400, 0, true)
	if !res.Present {
		t.Fatal("demand walk failed")
	}
	if res.MemRefs != arch.RadixLevels {
		t.Fatalf("cold walk MemRefs = %d, want %d", res.MemRefs, arch.RadixLevels)
	}
	if res.Latency <= w.psc.Latency() {
		t.Fatal("walk latency must include memory references")
	}
	pte, ok := pt.Lookup(0x400)
	if !ok || pte.PFN != res.PFN {
		t.Fatal("walk result inconsistent with page table")
	}
	if !pte.Accessed {
		t.Fatal("demand walk must set the accessed bit")
	}
	if w.DemandWalks() != 1 || w.DemandRefs() != uint64(arch.RadixLevels) {
		t.Fatalf("stats: walks=%d refs=%d", w.DemandWalks(), w.DemandRefs())
	}
}

func TestPSCSkipsLevels(t *testing.T) {
	w, _, _ := newTestWalker(false)
	w.Walk(0, 0x400, 0, true)
	// Second walk to an adjacent page: PD-level PSC hit leaves only the
	// leaf reference.
	res := w.Walk(0, 0x401, 1000, true)
	if res.MemRefs != 1 {
		t.Fatalf("PSC-accelerated walk MemRefs = %d, want 1", res.MemRefs)
	}
	if w.RefsPerDemandWalk() != 2.5 {
		t.Fatalf("RefsPerDemandWalk = %v, want 2.5", w.RefsPerDemandWalk())
	}
}

func TestPrefetchWalkNonFaulting(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	w.Walk(0, 0x400, 0, true)
	// Prefetch walk for an unmapped neighbour: must not map it.
	res := w.Walk(0, 0x401, 1000, false)
	if res.Present {
		t.Fatal("prefetch walk resolved an unmapped page")
	}
	if res.MemRefs == 0 {
		t.Fatal("prefetch walk should still read the absent leaf PTE")
	}
	if _, ok := pt.Lookup(0x401); ok {
		t.Fatal("prefetch walk mapped a page")
	}
	if w.PrefetchWalks() != 1 {
		t.Fatalf("PrefetchWalks = %d", w.PrefetchWalks())
	}
}

func TestPrefetchWalkFindsMappedPage(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	pt.EnsureMapped(0x500)
	res := w.Walk(0, 0x500, 0, false)
	if !res.Present {
		t.Fatal("prefetch walk missed a mapped page")
	}
	pte, _ := pt.Lookup(0x500)
	if !pte.Accessed {
		t.Fatal("prefetch walk must set the accessed bit (x86 rule)")
	}
}

func TestFreeVPNsFromLeafLine(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	// Map three pages in one PTE line group.
	base := arch.VPN(0x800)
	pt.EnsureMapped(base)
	pt.EnsureMapped(base + 2)
	pt.EnsureMapped(base + 7)
	res := w.Walk(0, base, 0, true)
	want := map[arch.VPN]bool{base + 2: true, base + 7: true}
	if len(res.FreeVPNs) != 2 {
		t.Fatalf("FreeVPNs = %v", res.FreeVPNs)
	}
	for _, v := range res.FreeVPNs {
		if !want[v] {
			t.Errorf("unexpected free VPN %#x", v)
		}
	}
}

func TestWalkerMSHRDropsPrefetches(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	for i := arch.VPN(0); i < 16; i++ {
		pt.EnsureMapped(0x1000 + i*512) // distinct leaf nodes
	}
	// Saturate the 4 MSHRs with long walks at cycle 0.
	occupied := 0
	for i := arch.VPN(0); i < 8; i++ {
		res := w.Walk(0, 0x1000+i*512, 0, false)
		if res.MemRefs > 0 {
			occupied++
		}
	}
	if occupied != 4 {
		t.Fatalf("completed prefetch walks = %d, want 4 (MSHR limit)", occupied)
	}
	if w.DroppedWalks() != 4 {
		t.Fatalf("DroppedWalks = %d, want 4", w.DroppedWalks())
	}
}

func TestWalkerMSHRQueuesDemand(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	for i := arch.VPN(0); i < 8; i++ {
		pt.EnsureMapped(0x2000 + i*512)
	}
	for i := arch.VPN(0); i < 4; i++ {
		w.Walk(0, 0x2000+i*512, 0, false)
	}
	res := w.Walk(0, 0x2000+4*512, 0, true)
	if res.Queued == 0 {
		t.Fatal("demand walk behind full MSHRs should queue")
	}
	if !res.Present {
		t.Fatal("queued demand walk must still resolve")
	}
}

func TestASAPShortensWalks(t *testing.T) {
	serial, ptS, _ := newTestWalker(false)
	parallel, ptP, _ := newTestWalker(true)
	ptS.EnsureMapped(0x123456)
	ptP.EnsureMapped(0x123456)
	rs := serial.Walk(0, 0x123456, 0, true)
	rp := parallel.Walk(0, 0x123456, 0, true)
	if rp.Latency >= rs.Latency {
		t.Fatalf("ASAP latency %d not better than serial %d", rp.Latency, rs.Latency)
	}
	if rp.MemRefs != rs.MemRefs {
		t.Fatalf("ASAP changed MemRefs: %d vs %d", rp.MemRefs, rs.MemRefs)
	}
}

func TestPSCThreadIsolation(t *testing.T) {
	cfg := DefaultPSCConfig()
	p := NewPSC(cfg, 4)
	p.Fill(0, 0x400, 0, 3)
	if p.Lookup(0, 0x400) != 3 {
		t.Fatal("thread 0 should hit at PD level")
	}
	if p.Lookup(1, 0x400) != 0 {
		t.Fatal("thread 1 should miss")
	}
}

func TestPSCFlush(t *testing.T) {
	p := NewPSC(DefaultPSCConfig(), 4)
	p.Fill(0, 0x400, 0, 3)
	p.Flush()
	if p.Lookup(0, 0x400) != 0 {
		t.Fatal("PSC entries survived flush")
	}
}

func TestPSCPartialHitLevels(t *testing.T) {
	p := NewPSC(DefaultPSCConfig(), 4)
	// Cache only PML4 and PDP levels.
	p.Fill(0, 0x400, 0, 2)
	if got := p.Lookup(0, 0x400); got != 2 {
		t.Fatalf("start level = %d, want 2 (PDP hit)", got)
	}
	// A page sharing the PML4 prefix but differing below starts at 1.
	other := arch.VPN(0x400) ^ (1 << 18) // flip a PDP-index bit
	if got := p.Lookup(0, other); got != 1 {
		t.Fatalf("start level = %d, want 1 (PML4 hit only)", got)
	}
	if p.HitRate() <= 0 {
		t.Fatal("hit rate should be positive")
	}
}

func TestWalkerResetStats(t *testing.T) {
	w, _, _ := newTestWalker(false)
	w.Walk(0, 0x1, 0, true)
	w.ResetStats()
	if w.DemandWalks() != 0 || w.DemandRefs() != 0 || w.RefsPerDemandWalk() != 0 {
		t.Fatal("stats not reset")
	}
}

func TestWalkLatencyVariesWithCacheLocality(t *testing.T) {
	w, pt, _ := newTestWalker(false)
	pt.EnsureMapped(0x400)
	cold := w.Walk(0, 0x400, 0, true)
	warm := w.Walk(0, 0x400, 100000, true)
	if warm.Latency >= cold.Latency {
		t.Fatalf("warm walk (%d) not faster than cold (%d)", warm.Latency, cold.Latency)
	}
}
