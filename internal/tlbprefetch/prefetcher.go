// Package tlbprefetch defines the STLB-prefetching machinery shared by
// Morrigan and the baselines: the prefetcher interface, the Prefetch Buffer
// (PB) that holds prefetched translations, and the four previously proposed
// dSTLB prefetchers the paper compares against (Section 2.1): the Sequential
// Prefetcher (SP), the Arbitrary Stride Prefetcher (ASP), the Distance
// Prefetcher (DP), and the Markov Prefetcher (MP), plus the idealized
// unbounded-MP variants of Section 3.4.
package tlbprefetch

import "morrigan/internal/arch"

// Token is a compact provenance value attached to a prefetch request. When a
// PB entry created from the request later services a miss, the token is
// handed back to the producing prefetcher via OnPrefetchHit so it can update
// confidence. Packing provenance into one machine word (instead of the
// former `any`) keeps the hot path free of per-prefetch boxing allocations.
//
// Layout: bits 0-1 hold the kind, bits 2-16 hold a DistanceBits-wide
// two's-complement inter-page distance, and bits 17+ hold the producing VPN.
// The zero Token (TokenNone) carries no provenance.
type Token uint64

// Token kinds (the low two bits of a Token).
const (
	// TokenNone is the zero token: no provenance.
	TokenNone Token = iota
	// TokenIRIP marks a prefetch produced by a Morrigan IRIP prediction
	// slot; the distance and VPN fields identify the slot to credit.
	TokenIRIP
	// TokenSDP marks a prefetch produced by Morrigan's sampling distance
	// prefetcher.
	TokenSDP
	// TokenICache marks a translation prefetched on behalf of the I-cache
	// prefetcher crossing a page boundary (Section 3.5).
	TokenICache
)

const (
	tokenKindBits = 2
	tokenDistMask = 1<<DistanceBits - 1
	tokenVPNShift = tokenKindBits + DistanceBits
)

// PackToken builds a token from its kind, producing VPN and slot distance.
// The distance is truncated to DistanceBits (its producers already saturate
// within that range).
func PackToken(kind Token, vpn arch.VPN, dist int32) Token {
	return kind&3 |
		Token(uint64(dist)&tokenDistMask)<<tokenKindBits |
		Token(vpn)<<tokenVPNShift
}

// Kind returns the token's kind bits.
func (t Token) Kind() Token { return t & 3 }

// VPN returns the producing virtual page number packed into the token.
func (t Token) VPN() arch.VPN { return arch.VPN(t >> tokenVPNShift) }

// Dist returns the sign-extended inter-page distance packed into the token.
func (t Token) Dist() int32 {
	d := uint32(t>>tokenKindBits) & tokenDistMask
	if d&(1<<(DistanceBits-1)) != 0 {
		d |= ^uint32(tokenDistMask)
	}
	return int32(d)
}

// Request is one prefetch candidate produced by a prefetcher.
type Request struct {
	// VPN is the virtual page whose translation should be prefetched.
	VPN arch.VPN
	// Spatial requests that, at the end of the prefetch page walk, the
	// translations sharing the leaf PTE cache line be installed into the
	// PB for free (page table locality; Section 2 of the paper).
	Spatial bool
	// Token is the provenance handed back on a PB hit.
	Token Token
}

// Prefetcher is an STLB prefetch engine invoked on the instruction STLB miss
// stream.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// StorageBits returns the hardware budget of the prefetcher's state,
	// using the paper's accounting rules.
	StorageBits() int
	// OnMiss is invoked on every iSTLB miss (whether or not the PB served
	// it), with the faulting instruction address and its page. It returns
	// the prefetch candidates to issue and updates internal state.
	// The returned slice is only valid until the next OnMiss call:
	// implementations reuse an internal buffer to keep the miss path
	// allocation-free.
	OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request
	// OnPrefetchHit informs the prefetcher that a PB entry it produced
	// eliminated a demand page walk; token is the Request's Token.
	OnPrefetchHit(token Token)
	// Flush clears all internal state (context switch).
	Flush()
}

// None is the no-prefetching baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// StorageBits implements Prefetcher.
func (None) StorageBits() int { return 0 }

// OnMiss implements Prefetcher.
func (None) OnMiss(arch.ThreadID, arch.VAddr, arch.VPN) []Request { return nil }

// OnPrefetchHit implements Prefetcher.
func (None) OnPrefetchHit(Token) {}

// Flush implements Prefetcher.
func (None) Flush() {}

var _ Prefetcher = None{}

// VPNStorageBits is the paper's cost of storing a full virtual page number
// (Section 4.1.1: "each VPN requires 36 bits of state").
const VPNStorageBits = arch.VPNBits

// TagBits is the partial-tag width used by table-based prefetchers.
const TagBits = 16

// ConfBits is the width of a saturating confidence counter.
const ConfBits = 2

// DistanceBits is the width of a stored inter-page distance in Morrigan's
// prediction slots (Section 6.1).
const DistanceBits = 15
