// Package tlbprefetch defines the STLB-prefetching machinery shared by
// Morrigan and the baselines: the prefetcher interface, the Prefetch Buffer
// (PB) that holds prefetched translations, and the four previously proposed
// dSTLB prefetchers the paper compares against (Section 2.1): the Sequential
// Prefetcher (SP), the Arbitrary Stride Prefetcher (ASP), the Distance
// Prefetcher (DP), and the Markov Prefetcher (MP), plus the idealized
// unbounded-MP variants of Section 3.4.
package tlbprefetch

import "morrigan/internal/arch"

// Request is one prefetch candidate produced by a prefetcher.
type Request struct {
	// VPN is the virtual page whose translation should be prefetched.
	VPN arch.VPN
	// Spatial requests that, at the end of the prefetch page walk, the
	// translations sharing the leaf PTE cache line be installed into the
	// PB for free (page table locality; Section 2 of the paper).
	Spatial bool
	// Token is an opaque provenance value. When a PB entry created from
	// this request later services a miss, the token is handed back to the
	// producing prefetcher via OnPrefetchHit so it can update confidence.
	Token any
}

// Prefetcher is an STLB prefetch engine invoked on the instruction STLB miss
// stream.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// StorageBits returns the hardware budget of the prefetcher's state,
	// using the paper's accounting rules.
	StorageBits() int
	// OnMiss is invoked on every iSTLB miss (whether or not the PB served
	// it), with the faulting instruction address and its page. It returns
	// the prefetch candidates to issue and updates internal state.
	OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request
	// OnPrefetchHit informs the prefetcher that a PB entry it produced
	// eliminated a demand page walk; token is the Request's Token.
	OnPrefetchHit(token any)
	// Flush clears all internal state (context switch).
	Flush()
}

// None is the no-prefetching baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// StorageBits implements Prefetcher.
func (None) StorageBits() int { return 0 }

// OnMiss implements Prefetcher.
func (None) OnMiss(arch.ThreadID, arch.VAddr, arch.VPN) []Request { return nil }

// OnPrefetchHit implements Prefetcher.
func (None) OnPrefetchHit(any) {}

// Flush implements Prefetcher.
func (None) Flush() {}

var _ Prefetcher = None{}

// VPNStorageBits is the paper's cost of storing a full virtual page number
// (Section 4.1.1: "each VPN requires 36 bits of state").
const VPNStorageBits = arch.VPNBits

// TagBits is the partial-tag width used by table-based prefetchers.
const TagBits = 16

// ConfBits is the width of a saturating confidence counter.
const ConfBits = 2

// DistanceBits is the width of a stored inter-page distance in Morrigan's
// prediction slots (Section 6.1).
const DistanceBits = 15
