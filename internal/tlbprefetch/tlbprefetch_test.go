package tlbprefetch

import (
	"testing"

	"morrigan/internal/arch"
)

func TestPBLookupRemovesEntry(t *testing.T) {
	pb := NewPrefetchBuffer(4, 2)
	tok := PackToken(TokenIRIP, 0x42, -3)
	pb.Insert(0, 0x10, 0x99, tok, 77)
	pfn, token, ready, ok := pb.Lookup(0, 0x10)
	if !ok || pfn != 0x99 || token != tok || ready != 77 {
		t.Fatalf("Lookup = %#x %v ready=%d %v", pfn, token, ready, ok)
	}
	if _, _, _, ok := pb.Lookup(0, 0x10); ok {
		t.Fatal("PB hit should move the entry out")
	}
	if pb.Hits() != 1 || pb.Lookups() != 2 || pb.Inserts() != 1 {
		t.Fatalf("stats: hits=%d lookups=%d inserts=%d", pb.Hits(), pb.Lookups(), pb.Inserts())
	}
}

func TestPBLRUAndEvictionAccounting(t *testing.T) {
	pb := NewPrefetchBuffer(2, 2)
	pb.Insert(0, 1, 1, TokenNone, 0)
	pb.Insert(0, 2, 2, TokenNone, 0)
	pb.Insert(0, 3, 3, TokenNone, 0) // evicts vpn 1 (LRU), never hit
	if pb.Contains(0, 1) {
		t.Fatal("vpn 1 should be evicted")
	}
	if pb.Evictions() != 1 {
		t.Fatalf("Evictions = %d", pb.Evictions())
	}
	if !pb.Contains(0, 2) || !pb.Contains(0, 3) {
		t.Fatal("wrong survivors")
	}
}

func TestPBThreadIsolationAndFlush(t *testing.T) {
	pb := NewPrefetchBuffer(4, 2)
	pb.Insert(0, 7, 0xA, TokenNone, 0)
	pb.Insert(1, 7, 0xB, TokenNone, 0)
	if pfn, _, _, ok := pb.Lookup(1, 7); !ok || pfn != 0xB {
		t.Fatalf("thread 1 lookup = %#x %v", pfn, ok)
	}
	if !pb.Contains(0, 7) {
		t.Fatal("thread 0 entry should survive thread 1 hit")
	}
	pb.Flush()
	if pb.Contains(0, 7) {
		t.Fatal("flush did not clear entries")
	}
}

func TestPBInsertRefreshKeepsToken(t *testing.T) {
	pb := NewPrefetchBuffer(2, 2)
	orig := PackToken(TokenIRIP, 5, 1)
	pb.Insert(0, 5, 1, orig, 0)
	pb.Insert(0, 5, 2, PackToken(TokenSDP, 0, 0), 0)
	_, token, _, ok := pb.Lookup(0, 5)
	if !ok || token != orig {
		t.Fatalf("token = %#x, want the original token", uint64(token))
	}
}

func TestPBResetStats(t *testing.T) {
	pb := NewPrefetchBuffer(2, 2)
	pb.Insert(0, 1, 1, TokenNone, 0)
	pb.Lookup(0, 1)
	pb.ResetStats()
	if pb.Hits() != 0 || pb.Lookups() != 0 || pb.Inserts() != 0 || pb.Evictions() != 0 {
		t.Fatal("stats not reset")
	}
	if pb.Capacity() != 2 || pb.Latency() != 2 {
		t.Fatal("config accessors wrong")
	}
}

func TestSPPrefetchesNextPage(t *testing.T) {
	var sp SP
	reqs := sp.OnMiss(0, 0xA7000, 0xA7)
	if len(reqs) != 1 || reqs[0].VPN != 0xA8 {
		t.Fatalf("SP requests = %+v", reqs)
	}
	if sp.StorageBits() != 0 || sp.Name() != "SP" {
		t.Fatal("SP metadata wrong")
	}
}

func TestNonePrefetcher(t *testing.T) {
	var n None
	if reqs := n.OnMiss(0, 1, 1); reqs != nil {
		t.Fatal("None must not prefetch")
	}
	n.OnPrefetchHit(TokenNone)
	n.Flush()
}

func TestASPDetectsStride(t *testing.T) {
	a := NewASP(64)
	pc := arch.VAddr(0x4000)
	var got []Request
	for i := 0; i < 6; i++ {
		got = a.OnMiss(0, pc, arch.VPN(0x100+i*3))
	}
	if len(got) != 1 || got[0].VPN != arch.VPN(0x100+5*3+3) {
		t.Fatalf("ASP requests = %+v", got)
	}
}

func TestASPConflictsAcrossPCs(t *testing.T) {
	a := NewASP(4)
	for i := 0; i < 100; i++ {
		pc := arch.VAddr(0x1000 + i*4096)
		a.OnMiss(0, pc, arch.VPN(i))
	}
	if a.ConflictRate() < 50 {
		t.Fatalf("ConflictRate = %v, expected heavy conflicts", a.ConflictRate())
	}
	a.Flush()
	// After flush entries are invalid; a stride takes warmup again.
	if got := a.OnMiss(0, 0x1000, 0x500); got != nil {
		t.Fatal("prediction right after flush")
	}
}

func TestDPPredictsDistancePattern(t *testing.T) {
	d := NewDP(128)
	// Repeating distance pattern: +2, +5, +2, +5 ... so after seeing
	// distance 2 the predicted next distance is 5 (prefetch vpn+5).
	vpn := arch.VPN(0x1000)
	var reqs []Request
	deltas := []int64{2, 5, 2, 5, 2, 5, 2}
	for _, dl := range deltas {
		vpn = arch.VPN(int64(vpn) + dl)
		reqs = d.OnMiss(0, 0, vpn)
	}
	// Last observed distance 2 -> predicted next distance 5.
	found := false
	for _, r := range reqs {
		if r.VPN == vpn+5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("DP requests = %+v, want vpn+5", reqs)
	}
}

func TestDPConflictRateAndFlush(t *testing.T) {
	d := NewDP(2)
	vpn := arch.VPN(0)
	for i := int64(1); i < 200; i++ {
		vpn = arch.VPN(int64(vpn) + i) // ever-changing distances
		d.OnMiss(0, 0, vpn)
	}
	if d.ConflictRate() <= 0 {
		t.Fatal("expected conflicts in a 2-entry DP")
	}
	d.Flush()
	if got := d.OnMiss(0, 0, 5); got != nil {
		t.Fatal("prediction right after flush")
	}
}

func TestMPLearnsSuccessors(t *testing.T) {
	m := NewMP(128, 128)
	stream := []arch.VPN{1, 2, 1, 3, 1, 2}
	var reqs []Request
	for _, v := range stream {
		reqs = m.OnMiss(0, 0, v)
	}
	// Final miss on 2 after history: entry for 1 has successors {2,3};
	// the miss on 1 (index 4) predicted both.
	_ = reqs
	got := m.OnMiss(0, 0, 1)
	want := map[arch.VPN]bool{2: true, 3: true}
	if len(got) != 2 {
		t.Fatalf("MP predictions = %+v", got)
	}
	for _, r := range got {
		if !want[r.VPN] {
			t.Errorf("unexpected prediction %#x", r.VPN)
		}
	}
}

func TestMPSlotLRUReplacement(t *testing.T) {
	m := NewMP(16, 16)
	// Page 1's successors in order: 2, 3, then 4 -> slot holding 2 (LRU)
	// is replaced.
	for _, v := range []arch.VPN{1, 2, 1, 3, 1, 4} {
		m.OnMiss(0, 0, v)
	}
	got := m.OnMiss(0, 0, 1)
	want := map[arch.VPN]bool{3: true, 4: true}
	for _, r := range got {
		if !want[r.VPN] {
			t.Errorf("unexpected prediction %#x after slot replacement", r.VPN)
		}
	}
}

func TestMPEntryLRUEviction(t *testing.T) {
	m := NewMP(2, 2) // one set of 2 entries
	// Touch three distinct pages so one entry must be evicted.
	for _, v := range []arch.VPN{10, 20, 10, 20, 30} {
		m.OnMiss(0, 0, v)
	}
	// Table can hold only 2 of {10, 20, 30}.
	entries := 0
	for _, e := range m.ents {
		if e.valid {
			entries++
		}
	}
	if entries > 2 {
		t.Fatalf("%d valid entries in a 2-entry MP", entries)
	}
}

func TestMPStorageAccounting(t *testing.T) {
	m := NewMP(128, 2)
	want := 128 * (TagBits + 2*VPNStorageBits)
	if m.StorageBits() != want {
		t.Fatalf("StorageBits = %d, want %d", m.StorageBits(), want)
	}
}

func TestUnboundedMPInfiniteSuccessors(t *testing.T) {
	u := NewUnboundedMP(0)
	// Page 1 gets successors 2..12 — all must be retained.
	for i := arch.VPN(2); i <= 12; i++ {
		u.OnMiss(0, 0, 1)
		u.OnMiss(0, 0, i)
	}
	got := u.OnMiss(0, 0, 1)
	if len(got) != 11 {
		t.Fatalf("predictions = %d, want 11", len(got))
	}
	if u.Name() != "MP-unbounded-inf" {
		t.Errorf("Name = %q", u.Name())
	}
}

func TestUnboundedMPTwoSuccessorLimit(t *testing.T) {
	u := NewUnboundedMP(2)
	for i := arch.VPN(2); i <= 6; i++ {
		u.OnMiss(0, 0, 1)
		u.OnMiss(0, 0, i)
	}
	got := u.OnMiss(0, 0, 1)
	if len(got) != 2 {
		t.Fatalf("predictions = %d, want 2", len(got))
	}
	if u.Name() != "MP-unbounded-2" {
		t.Errorf("Name = %q", u.Name())
	}
	u.Flush()
	if got := u.OnMiss(0, 0, 1); got != nil {
		t.Fatal("prediction right after flush")
	}
}

func TestPrefetcherThreadSeparation(t *testing.T) {
	m := NewMP(128, 128)
	// Interleaved threads must not pollute each other's chains.
	m.OnMiss(0, 0, 1)
	m.OnMiss(1, 0, 100)
	m.OnMiss(0, 0, 2)   // thread 0: 1 -> 2
	m.OnMiss(1, 0, 200) // thread 1: 100 -> 200
	got := m.OnMiss(0, 0, 1)
	if len(got) != 1 || got[0].VPN != 2 {
		t.Fatalf("thread 0 predictions = %+v, want only vpn 2", got)
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	for name, f := range map[string]func(){
		"pb":  func() { NewPrefetchBuffer(0, 1) },
		"asp": func() { NewASP(0) },
		"dp":  func() { NewDP(0) },
		"mp":  func() { NewMP(10, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad geometry accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestPBEvictionHandler(t *testing.T) {
	pb := NewPrefetchBuffer(2, 2)
	var evicted []arch.VPN
	pb.SetEvictionHandler(func(tid arch.ThreadID, vpn arch.VPN) {
		evicted = append(evicted, vpn)
	})
	pb.Insert(0, 1, 1, TokenNone, 0)
	pb.Insert(0, 2, 2, TokenNone, 0)
	pb.Insert(0, 3, 3, TokenNone, 0) // displaces vpn 1, never hit
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
	// An entry that hit is removed by Lookup, not evicted: no callback.
	pb.Lookup(0, 2)
	pb.Insert(0, 4, 4, TokenNone, 0) // fills the freed slot
	if len(evicted) != 1 {
		t.Fatalf("hit-then-remove should not trigger eviction handler: %v", evicted)
	}
}
