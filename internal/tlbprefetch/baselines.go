package tlbprefetch

import "morrigan/internal/arch"

// SP is the Sequential Prefetcher: on a miss for page V it prefetches the
// translation of V+1 (Kandiraju & Sivasubramaniam, ISCA'02).
type SP struct {
	out [1]Request
}

// Name implements Prefetcher.
func (*SP) Name() string { return "SP" }

// StorageBits implements Prefetcher; SP is stateless.
func (*SP) StorageBits() int { return 0 }

// OnMiss implements Prefetcher.
func (s *SP) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request {
	s.out[0] = Request{VPN: vpn + 1}
	return s.out[:]
}

// OnPrefetchHit implements Prefetcher.
func (*SP) OnPrefetchHit(Token) {}

// Flush implements Prefetcher.
func (*SP) Flush() {}

var _ Prefetcher = (*SP)(nil)

// aspEntry is one Arbitrary Stride Prefetcher table entry (Baer-Chen style,
// indexed by the PC of the instruction that triggered the STLB miss).
type aspEntry struct {
	tag     uint64
	lastVPN arch.VPN
	stride  int64
	conf    int
	valid   bool
}

// ASP is the Arbitrary Stride Prefetcher: it correlates strides with the
// faulting PC. On the instruction miss stream the faulting PC is the fetch
// address itself, so the table sees one entry per page-entry instruction and
// suffers massive conflicts — the behaviour Section 3.4 reports (96.3%
// conflicting accesses).
type ASP struct {
	ents      []aspEntry
	lookups   uint64
	conflicts uint64
	out       [1]Request
}

// NewASP builds an ASP with the given direct-mapped table size.
func NewASP(entries int) *ASP {
	if entries <= 0 {
		panic("tlbprefetch: ASP entries must be positive")
	}
	return &ASP{ents: make([]aspEntry, entries)}
}

// Name implements Prefetcher.
func (a *ASP) Name() string { return "ASP" }

// StorageBits implements Prefetcher: tag + last VPN + stride + confidence
// per entry.
func (a *ASP) StorageBits() int {
	return len(a.ents) * (TagBits + VPNStorageBits + 16 + ConfBits)
}

// OnMiss implements Prefetcher.
func (a *ASP) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request {
	a.lookups++
	idx := (uint64(pc) >> 2) % uint64(len(a.ents))
	e := &a.ents[idx]
	tag := uint64(pc) >> 2 / uint64(len(a.ents))
	if !e.valid || e.tag != tag {
		if e.valid {
			a.conflicts++
		}
		*e = aspEntry{tag: tag, lastVPN: vpn, valid: true}
		return nil
	}
	stride := int64(vpn) - int64(e.lastVPN)
	var out []Request
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
		if e.conf >= 2 {
			a.out[0] = Request{VPN: arch.VPN(int64(vpn) + stride)}
			out = a.out[:]
		}
	} else {
		e.conf = 0
		e.stride = stride
	}
	e.lastVPN = vpn
	return out
}

// OnPrefetchHit implements Prefetcher.
func (a *ASP) OnPrefetchHit(Token) {}

// Flush implements Prefetcher.
func (a *ASP) Flush() {
	for i := range a.ents {
		a.ents[i].valid = false
	}
}

// ConflictRate returns the fraction of lookups that evicted a different PC's
// entry, in percent.
func (a *ASP) ConflictRate() float64 {
	if a.lookups == 0 {
		return 0
	}
	return float64(a.conflicts) / float64(a.lookups) * 100
}

var _ Prefetcher = (*ASP)(nil)

// dpEntry is one Distance Prefetcher table entry: two predicted next
// distances for a given observed distance.
type dpEntry struct {
	tag   uint64
	dists [2]int64
	used  [2]uint64
	n     int
	valid bool
}

// DP is the Distance Prefetcher: it indexes its table with the distance
// between the current and previous missing pages and predicts the next
// distances. Like ASP it conflicts heavily on the instruction miss stream.
type DP struct {
	ents      []dpEntry
	prevVPN   [2]arch.VPN // per thread
	prevDist  [2]int64
	seeded    [2]bool
	distSeen  [2]bool
	tick      uint64
	lookups   uint64
	conflicts uint64
	out       []Request
}

// NewDP builds a DP with the given direct-mapped table size.
func NewDP(entries int) *DP {
	if entries <= 0 {
		panic("tlbprefetch: DP entries must be positive")
	}
	return &DP{ents: make([]dpEntry, entries)}
}

// Name implements Prefetcher.
func (d *DP) Name() string { return "DP" }

// StorageBits implements Prefetcher: tag + two 16-bit distances per entry.
func (d *DP) StorageBits() int { return len(d.ents) * (TagBits + 2*16) }

func (d *DP) slot(dist int64) (*dpEntry, uint64) {
	u := uint64(dist)
	idx := (u ^ u>>7) % uint64(len(d.ents))
	return &d.ents[idx], u
}

// OnMiss implements Prefetcher.
func (d *DP) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request {
	t := tid & 1
	if !d.seeded[t] {
		d.seeded[t] = true
		d.prevVPN[t] = vpn
		return nil
	}
	dist := int64(vpn) - int64(d.prevVPN[t])
	d.prevVPN[t] = vpn

	// Update: record dist as a successor distance of the previous distance.
	if d.distSeen[t] {
		e, tag := d.slot(d.prevDist[t])
		d.tick++
		if !e.valid || e.tag != tag {
			if e.valid {
				d.conflicts++
			}
			*e = dpEntry{tag: tag, valid: true}
		}
		found := false
		for i := 0; i < e.n; i++ {
			if e.dists[i] == dist {
				e.used[i] = d.tick
				found = true
				break
			}
		}
		if !found {
			if e.n < len(e.dists) {
				e.dists[e.n] = dist
				e.used[e.n] = d.tick
				e.n++
			} else {
				v := 0
				if e.used[1] < e.used[0] {
					v = 1
				}
				e.dists[v] = dist
				e.used[v] = d.tick
			}
		}
	}
	d.prevDist[t] = dist
	d.distSeen[t] = true

	// Predict: look up the current distance.
	d.lookups++
	e, tag := d.slot(dist)
	if !e.valid || e.tag != tag {
		return nil
	}
	d.out = d.out[:0]
	for i := 0; i < e.n; i++ {
		d.out = append(d.out, Request{VPN: arch.VPN(int64(vpn) + e.dists[i])})
	}
	return d.out
}

// OnPrefetchHit implements Prefetcher.
func (d *DP) OnPrefetchHit(Token) {}

// Flush implements Prefetcher.
func (d *DP) Flush() {
	for i := range d.ents {
		d.ents[i].valid = false
	}
	d.seeded = [2]bool{}
	d.distSeen = [2]bool{}
}

// ConflictRate returns the fraction of lookups finding another distance's
// entry, in percent.
func (d *DP) ConflictRate() float64 {
	if d.lookups == 0 {
		return 0
	}
	return float64(d.conflicts) / float64(d.lookups) * 100
}

var _ Prefetcher = (*DP)(nil)

// mpEntry is one Markov Prefetcher entry: the indexing page plus two
// successor prediction slots holding full VPNs.
type mpEntry struct {
	vpn   arch.VPN
	succ  [2]arch.VPN
	sused [2]uint64
	n     int
	used  uint64
	valid bool
}

// MP is the table-based Markov Prefetcher of Section 2.1: a prediction
// table indexed by virtual page with two full-VPN prediction slots per entry
// and LRU replacement — the design whose shortcomings (recency-based
// replacement, fixed successor count) motivate Morrigan.
type MP struct {
	ents []mpEntry
	ways int
	sets int
	prev [2]arch.VPN
	seen [2]bool
	tick uint64
	out  []Request
}

// NewMP builds an MP with the given geometry. The paper's baseline MP is
// 128 entries; entries must be a multiple of ways.
func NewMP(entries, ways int) *MP {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlbprefetch: MP entries must be a positive multiple of ways")
	}
	return &MP{ents: make([]mpEntry, entries), ways: ways, sets: entries / ways}
}

// Name implements Prefetcher.
func (m *MP) Name() string { return "MP" }

// StorageBits implements Prefetcher: tag plus two full VPNs per entry (the
// costly design Section 4.1.1 contrasts with Morrigan's distances).
func (m *MP) StorageBits() int { return len(m.ents) * (TagBits + 2*VPNStorageBits) }

func (m *MP) set(vpn arch.VPN) []mpEntry {
	s := int(uint64(vpn) % uint64(m.sets))
	return m.ents[s*m.ways : (s+1)*m.ways]
}

func (m *MP) find(vpn arch.VPN) *mpEntry {
	set := m.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return &set[i]
		}
	}
	return nil
}

// OnMiss implements Prefetcher.
func (m *MP) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request {
	t := tid & 1
	m.tick++

	var out []Request
	if e := m.find(vpn); e != nil {
		e.used = m.tick
		m.out = m.out[:0]
		for i := 0; i < e.n; i++ {
			m.out = append(m.out, Request{VPN: e.succ[i]})
		}
		out = m.out
	}

	// Update the previous page's entry with the new successor, LRU both at
	// the entry level and within the two prediction slots.
	if m.seen[t] && m.prev[t] != vpn {
		e := m.find(m.prev[t])
		if e == nil {
			set := m.set(m.prev[t])
			victim := 0
			for i := range set {
				if !set[i].valid {
					victim = i
					break
				}
				if set[i].used < set[victim].used {
					victim = i
				}
			}
			set[victim] = mpEntry{vpn: m.prev[t], used: m.tick, valid: true}
			e = &set[victim]
		}
		found := false
		for i := 0; i < e.n; i++ {
			if e.succ[i] == vpn {
				e.sused[i] = m.tick
				found = true
				break
			}
		}
		if !found {
			if e.n < len(e.succ) {
				e.succ[e.n] = vpn
				e.sused[e.n] = m.tick
				e.n++
			} else {
				v := 0
				if e.sused[1] < e.sused[0] {
					v = 1
				}
				e.succ[v] = vpn
				e.sused[v] = m.tick
			}
		}
	}
	m.prev[t] = vpn
	m.seen[t] = true
	return out
}

// OnPrefetchHit implements Prefetcher.
func (m *MP) OnPrefetchHit(Token) {}

// Flush implements Prefetcher.
func (m *MP) Flush() {
	for i := range m.ents {
		m.ents[i].valid = false
	}
	m.seen = [2]bool{}
}

var _ Prefetcher = (*MP)(nil)

// UnboundedMP is the idealized Markov prefetcher of Section 3.4: an
// unbounded prediction table accommodating every instruction page, with
// either a fixed number of successor slots (2) or unlimited slots.
type UnboundedMP struct {
	maxSucc int // 0 means unlimited
	table   map[arch.VPN][]arch.VPN
	lru     map[arch.VPN][]uint64
	prev    [2]arch.VPN
	seen    [2]bool
	tick    uint64
	out     []Request
}

// NewUnboundedMP builds the idealization; maxSucc <= 0 means unlimited
// successors per entry.
func NewUnboundedMP(maxSucc int) *UnboundedMP {
	return &UnboundedMP{
		maxSucc: maxSucc,
		table:   make(map[arch.VPN][]arch.VPN),
		lru:     make(map[arch.VPN][]uint64),
	}
}

// Name implements Prefetcher.
func (u *UnboundedMP) Name() string {
	if u.maxSucc <= 0 {
		return "MP-unbounded-inf"
	}
	return "MP-unbounded-2"
}

// StorageBits implements Prefetcher; the idealization has no hardware
// budget, so it reports 0 (it is excluded from ISO comparisons).
func (u *UnboundedMP) StorageBits() int { return 0 }

// OnMiss implements Prefetcher.
func (u *UnboundedMP) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []Request {
	t := tid & 1
	u.tick++
	var out []Request
	if succ := u.table[vpn]; len(succ) > 0 {
		u.out = u.out[:0]
		for _, s := range succ {
			u.out = append(u.out, Request{VPN: s})
		}
		out = u.out
	}
	if u.seen[t] && u.prev[t] != vpn {
		succ := u.table[u.prev[t]]
		used := u.lru[u.prev[t]]
		found := false
		for i, s := range succ {
			if s == vpn {
				used[i] = u.tick
				found = true
				break
			}
		}
		if !found {
			if u.maxSucc > 0 && len(succ) >= u.maxSucc {
				v := 0
				for i := range used {
					if used[i] < used[v] {
						v = i
					}
				}
				succ[v] = vpn
				used[v] = u.tick
			} else {
				succ = append(succ, vpn)
				used = append(used, u.tick)
			}
			u.table[u.prev[t]] = succ
			u.lru[u.prev[t]] = used
		}
	}
	u.prev[t] = vpn
	u.seen[t] = true
	return out
}

// OnPrefetchHit implements Prefetcher.
func (u *UnboundedMP) OnPrefetchHit(Token) {}

// Flush implements Prefetcher.
func (u *UnboundedMP) Flush() {
	u.table = make(map[arch.VPN][]arch.VPN)
	u.lru = make(map[arch.VPN][]uint64)
	u.seen = [2]bool{}
}

var _ Prefetcher = (*UnboundedMP)(nil)
