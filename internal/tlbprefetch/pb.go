package tlbprefetch

import (
	"morrigan/internal/arch"
	"morrigan/internal/telemetry"
)

// PrefetchBuffer is the fully associative buffer that holds prefetched
// translations (Table 1: 64-entry, fully associative, 2-cycle). On a hit the
// entry is moved to the STLB, so Lookup removes it. Each entry carries the
// provenance token of the request that produced it so the owning prefetcher
// can be credited (Morrigan's confidence update, step 6 of Figure 12).
//
// Entries are stored struct-of-arrays: a packed key word (VPN, thread id and
// a valid bit) plus parallel pfn/token/ready/used arrays, so the associative
// scans touch one dense uint64 array instead of striding over wide structs.
type PrefetchBuffer struct {
	capacity int
	latency  arch.Cycle

	keys   []uint64 // vpn<<9 | tid<<1 | 1; zero means invalid
	pfns   []arch.PFN
	tokens []Token
	readys []arch.Cycle
	used   []uint64

	tick uint64

	lookups uint64
	hits    uint64
	inserts uint64
	useless uint64 // evicted without ever hitting

	// onEvict, when set, observes entries displaced without having served
	// a miss (the trigger for the paper's correcting page walks).
	onEvict func(tid arch.ThreadID, vpn arch.VPN)

	// probe, when set, traces useless evictions (prefetch-lifecycle
	// telemetry); independent of onEvict so correcting walks and telemetry
	// compose.
	probe *telemetry.Probe
}

// pbKey packs a (thread, page) pair into one comparable word with the low
// bit as a valid marker, so invalid slots are simply zero.
func pbKey(tid arch.ThreadID, vpn arch.VPN) uint64 {
	return uint64(vpn)<<9 | uint64(tid)<<1 | 1
}

func pbKeyTID(key uint64) arch.ThreadID { return arch.ThreadID(key >> 1 & 0xff) }

func pbKeyVPN(key uint64) arch.VPN { return arch.VPN(key >> 9) }

// NewPrefetchBuffer builds a PB with the given capacity and lookup latency.
func NewPrefetchBuffer(capacity int, latency arch.Cycle) *PrefetchBuffer {
	if capacity <= 0 {
		panic("tlbprefetch: PB capacity must be positive")
	}
	return &PrefetchBuffer{
		capacity: capacity,
		latency:  latency,
		keys:     make([]uint64, capacity),
		pfns:     make([]arch.PFN, capacity),
		tokens:   make([]Token, capacity),
		readys:   make([]arch.Cycle, capacity),
		used:     make([]uint64, capacity),
	}
}

// Latency returns the PB lookup latency.
func (b *PrefetchBuffer) Latency() arch.Cycle { return b.latency }

// Capacity returns the PB entry count.
func (b *PrefetchBuffer) Capacity() int { return b.capacity }

// Lookup searches for a translation. On a hit the entry is removed (it moves
// to the STLB) and its provenance token is returned together with the cycle
// at which the prefetch page walk completed — a demand miss arriving before
// that still waits for the remainder (late-prefetch timeliness).
func (b *PrefetchBuffer) Lookup(tid arch.ThreadID, vpn arch.VPN) (pfn arch.PFN, token Token, ready arch.Cycle, ok bool) {
	b.lookups++
	k := pbKey(tid, vpn)
	for i, key := range b.keys {
		if key == k {
			b.hits++
			b.keys[i] = 0
			return b.pfns[i], b.tokens[i], b.readys[i], true
		}
	}
	return 0, TokenNone, 0, false
}

// Contains probes without removal or statistics; prefetch deduplication uses
// this (step 10 of Figure 12 — the PB, not the STLB, is checked so demand
// STLB lookups are not contended).
func (b *PrefetchBuffer) Contains(tid arch.ThreadID, vpn arch.VPN) bool {
	k := pbKey(tid, vpn)
	for _, key := range b.keys {
		if key == k {
			return true
		}
	}
	return false
}

// Peek returns the translation without removing the entry or updating
// statistics; background consumers (I-cache prefetch translation) use it.
func (b *PrefetchBuffer) Peek(tid arch.ThreadID, vpn arch.VPN) (arch.PFN, bool) {
	k := pbKey(tid, vpn)
	for i, key := range b.keys {
		if key == k {
			return b.pfns[i], true
		}
	}
	return 0, false
}

// Insert installs a prefetched translation, evicting the LRU entry when the
// buffer is full. ready is the cycle at which the producing prefetch page
// walk completes.
func (b *PrefetchBuffer) Insert(tid arch.ThreadID, vpn arch.VPN, pfn arch.PFN, token Token, ready arch.Cycle) {
	b.tick++
	b.inserts++
	k := pbKey(tid, vpn)
	victim := 0
	for i, key := range b.keys {
		if key == k {
			// Refresh in place; keep the original provenance and the
			// earlier completion time.
			b.pfns[i] = pfn
			b.used[i] = b.tick
			return
		}
		if key == 0 {
			b.set(i, k, pfn, token, ready)
			return
		}
		if b.used[i] < b.used[victim] {
			victim = i
		}
	}
	b.useless++
	if b.probe != nil {
		b.probe.PrefetchEvicted(pbKeyTID(b.keys[victim]), pbKeyVPN(b.keys[victim]), b.readys[victim])
	}
	if b.onEvict != nil {
		b.onEvict(pbKeyTID(b.keys[victim]), pbKeyVPN(b.keys[victim]))
	}
	b.set(victim, k, pfn, token, ready)
}

func (b *PrefetchBuffer) set(i int, key uint64, pfn arch.PFN, token Token, ready arch.Cycle) {
	b.keys[i] = key
	b.pfns[i] = pfn
	b.tokens[i] = token
	b.readys[i] = ready
	b.used[i] = b.tick
}

// SetEvictionHandler registers fn to be called whenever a valid entry is
// displaced without ever having hit. Section 4.3 uses this event to issue
// correcting page walks that reset the accessed bit of unused prefetches.
func (b *PrefetchBuffer) SetEvictionHandler(fn func(tid arch.ThreadID, vpn arch.VPN)) {
	b.onEvict = fn
}

// SetProbe attaches the telemetry probe; useless evictions are traced as
// prefetch-lifecycle events. A nil probe (the default) costs nothing.
func (b *PrefetchBuffer) SetProbe(p *telemetry.Probe) { b.probe = p }

// Flush drops all entries (context switch).
func (b *PrefetchBuffer) Flush() {
	clear(b.keys)
}

// Lookups returns Lookup calls since the last ResetStats.
func (b *PrefetchBuffer) Lookups() uint64 { return b.lookups }

// Hits returns Lookup hits since the last ResetStats.
func (b *PrefetchBuffer) Hits() uint64 { return b.hits }

// Inserts returns Insert calls since the last ResetStats.
func (b *PrefetchBuffer) Inserts() uint64 { return b.inserts }

// Evictions returns entries evicted without servicing a miss.
func (b *PrefetchBuffer) Evictions() uint64 { return b.useless }

// ResetStats clears counters, keeping contents.
func (b *PrefetchBuffer) ResetStats() { b.lookups, b.hits, b.inserts, b.useless = 0, 0, 0, 0 }

// Settle marks every resident entry's producing walk as complete (ready at
// cycle zero), keeping contents intact. Sampled execution calls it when the
// simulation clock rebases between timed slices: entries inserted under the
// previous slice's clock epoch finished long ago in simulated time, but
// their absolute ready timestamps would read as far-future under the new
// epoch and charge phantom late-prefetch stalls.
func (b *PrefetchBuffer) Settle() {
	clear(b.readys)
}
