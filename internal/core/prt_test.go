package core

import (
	"math/rand"
	"testing"

	"morrigan/internal/arch"
)

func TestFrequencyStack(t *testing.T) {
	f := NewFrequencyStack(0)
	f.Observe(1)
	f.Observe(1)
	f.Observe(2)
	if f.Freq(1) != 2 || f.Freq(2) != 1 || f.Freq(3) != 0 {
		t.Fatalf("freqs: %d %d %d", f.Freq(1), f.Freq(2), f.Freq(3))
	}
	if f.Resets() != 0 {
		t.Fatal("reset with interval 0")
	}
	f.Flush()
	if f.Freq(1) != 0 {
		t.Fatal("flush did not clear counts")
	}
}

func TestFrequencyStackPeriodicReset(t *testing.T) {
	f := NewFrequencyStack(10)
	for i := 0; i < 25; i++ {
		f.Observe(arch.VPN(7))
	}
	if f.Resets() != 2 {
		t.Fatalf("Resets = %d, want 2", f.Resets())
	}
	// The reset fires before recording observation 20, so observations
	// 20 through 25 (six of them) remain.
	if f.Freq(7) != 6 {
		t.Fatalf("Freq = %d, want 6", f.Freq(7))
	}
}

func preparePRT(t *testing.T) (*prt, *FrequencyStack) {
	t.Helper()
	p := newPRT(2, 4, 4) // one fully associative set of 4 entries
	f := NewFrequencyStack(0)
	return p, f
}

func TestPRTVictimPrefersFreeSlot(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(1))
	e, evicted := p.victim(1, PolicyRLFU, f, rng, 2)
	if evicted {
		t.Fatal("eviction reported with free ways")
	}
	p.install(e, 1)
	if p.peek(1) == nil {
		t.Fatal("installed entry not found")
	}
}

func TestPRTPolicyLRU(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(1))
	for v := arch.VPN(1); v <= 4; v++ {
		e, _ := p.victim(v, PolicyLRU, f, rng, 2)
		p.install(e, v)
	}
	p.find(1) // promote 1; entry 2 becomes LRU
	e, evicted := p.victim(9, PolicyLRU, f, rng, 2)
	if !evicted || e.vpn != 2 {
		t.Fatalf("LRU victim = %+v (evicted=%v), want vpn 2", e.vpn, evicted)
	}
}

func TestPRTPolicyLFU(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(1))
	for v := arch.VPN(1); v <= 4; v++ {
		e, _ := p.victim(v, PolicyLFU, f, rng, 2)
		p.install(e, v)
	}
	// Page 3 is the coldest.
	for v := arch.VPN(1); v <= 4; v++ {
		f.Observe(v)
		if v != 3 {
			f.Observe(v)
			f.Observe(v)
		}
	}
	e, _ := p.victim(9, PolicyLFU, f, rng, 2)
	if e.vpn != 3 {
		t.Fatalf("LFU victim = %v, want 3", e.vpn)
	}
}

func TestPRTPolicyRLFUPicksFromLowFrequencyPool(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(7))
	for v := arch.VPN(1); v <= 4; v++ {
		e, _ := p.victim(v, PolicyRLFU, f, rng, 2)
		p.install(e, v)
	}
	// Pages 1 and 2 cold (freq 1); pages 3 and 4 hot.
	for v := arch.VPN(1); v <= 4; v++ {
		f.Observe(v)
	}
	for i := 0; i < 50; i++ {
		f.Observe(3)
		f.Observe(4)
	}
	// With candidate width 2 the victim must always be 1 or 2, and over
	// many trials both must appear (the random second-chance component).
	seen := map[arch.VPN]bool{}
	for i := 0; i < 200; i++ {
		e, _ := p.victim(9, PolicyRLFU, f, rng, 2)
		if e.vpn != 1 && e.vpn != 2 {
			t.Fatalf("RLFU victim = %v, want a low-frequency page", e.vpn)
		}
		seen[e.vpn] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("RLFU never randomized: seen = %v", seen)
	}
}

func TestPRTPolicyRandomCoversSet(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(3))
	for v := arch.VPN(1); v <= 4; v++ {
		e, _ := p.victim(v, PolicyRandom, f, rng, 2)
		p.install(e, v)
	}
	seen := map[arch.VPN]bool{}
	for i := 0; i < 300; i++ {
		e, _ := p.victim(9, PolicyRandom, f, rng, 2)
		seen[e.vpn] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random policy visited %d entries, want 4", len(seen))
	}
}

func TestPRTRLFUWidthClamping(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(3))
	for v := arch.VPN(1); v <= 4; v++ {
		e, _ := p.victim(v, PolicyRLFU, f, rng, 0)
		p.install(e, v)
	}
	// Width larger than the set is clamped; must not panic.
	if e, _ := p.victim(9, PolicyRLFU, f, rng, 100); e == nil {
		t.Fatal("nil victim")
	}
}

func TestPRTRemoveAndValidEntries(t *testing.T) {
	p, f := preparePRT(t)
	rng := rand.New(rand.NewSource(1))
	e, _ := p.victim(5, PolicyRLFU, f, rng, 2)
	p.install(e, 5)
	if p.validEntries() != 1 {
		t.Fatalf("validEntries = %d", p.validEntries())
	}
	p.remove(5)
	if p.peek(5) != nil || p.validEntries() != 0 {
		t.Fatal("remove failed")
	}
	p.remove(99) // removing a missing entry is a no-op
}

func TestPRTEntrySlotHelpers(t *testing.T) {
	e := prtEntry{dists: []int32{4, -2, 7}, confs: []uint8{1, 3, 0}, n: 3}
	if !e.hasDist(-2) || e.hasDist(9) {
		t.Fatal("hasDist wrong")
	}
	if e.maxConfSlot() != 1 {
		t.Fatalf("maxConfSlot = %d", e.maxConfSlot())
	}
	if e.minConfSlot() != 2 {
		t.Fatalf("minConfSlot = %d", e.minConfSlot())
	}
}

func TestPRTGeometryPanics(t *testing.T) {
	for _, bad := range [][3]int{{0, 8, 8}, {1, 0, 1}, {1, 10, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v accepted", bad)
				}
			}()
			newPRT(bad[0], bad[1], bad[2])
		}()
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyRLFU: "RLFU", PolicyLFU: "LFU", PolicyLRU: "LRU",
		PolicyRandom: "Random", Policy(9): "invalid",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Policy(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestPRTStorageBits(t *testing.T) {
	p := newPRT(2, 128, 32)
	if got := p.storageBits(); got != 128*(16+2*17) {
		t.Fatalf("storageBits = %d", got)
	}
}
