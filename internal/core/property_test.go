package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"morrigan/internal/arch"
	"morrigan/internal/tlbprefetch"
)

// driveStream feeds a miss stream into a fresh Morrigan and returns it.
func driveStream(cfg Config, stream []arch.VPN) *Morrigan {
	m := New(cfg)
	for _, vpn := range stream {
		m.OnMiss(0, vpn.Addr(), vpn)
	}
	return m
}

// randomStream builds a miss stream with warm-set structure from raw fuzz
// bytes: small values map to a compact hot set, larger ones spread out.
func randomStream(raw []byte) []arch.VPN {
	out := make([]arch.VPN, 0, len(raw))
	for _, b := range raw {
		out = append(out, arch.VPN(0x400)+arch.VPN(b%97))
	}
	return out
}

// TestPropertyNoDuplicateEntries checks the paper's invariant that a page
// lives in at most one prediction table ("there is no duplication of entries
// in the prediction tables, thus only one hit might occur").
func TestPropertyNoDuplicateEntries(t *testing.T) {
	f := func(raw []byte) bool {
		m := driveStream(DefaultConfig(), randomStream(raw))
		seen := map[arch.VPN]int{}
		for ti, tab := range m.tables {
			for i := range tab.ents {
				e := &tab.ents[i]
				if !e.valid {
					continue
				}
				if prev, dup := seen[e.vpn]; dup {
					t.Logf("vpn %#x in tables %d and %d", e.vpn, prev, ti)
					return false
				}
				seen[e.vpn] = ti
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySlotCountsWithinTableCapacity checks that every entry's slot
// count respects its table's slot capacity and slots hold distinct
// distances.
func TestPropertySlotCountsWithinTableCapacity(t *testing.T) {
	f := func(raw []byte) bool {
		m := driveStream(DefaultConfig(), randomStream(raw))
		for _, tab := range m.tables {
			for i := range tab.ents {
				e := &tab.ents[i]
				if !e.valid {
					continue
				}
				if e.n < 0 || e.n > tab.slots {
					return false
				}
				dists := map[int32]bool{}
				for j := 0; j < e.n; j++ {
					if dists[e.dists[j]] {
						return false // duplicate distance in one entry
					}
					dists[e.dists[j]] = true
					if e.confs[j] > maxConf {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPredictionsMatchObservedSuccessors checks that every
// prediction Morrigan issues was at some point an observed miss-to-miss
// transition target (IRIP only learns from the stream; predictions are
// current page + a learned distance).
func TestPropertyPredictionsMatchObservedSuccessors(t *testing.T) {
	f := func(raw []byte) bool {
		stream := randomStream(raw)
		if len(stream) < 3 {
			return true
		}
		// Collect all observed transitions.
		observed := map[[2]arch.VPN]bool{}
		for i := 1; i < len(stream); i++ {
			observed[[2]arch.VPN{stream[i-1], stream[i]}] = true
		}
		m := New(DefaultConfig())
		for i, vpn := range stream {
			reqs := m.OnMiss(0, vpn.Addr(), vpn)
			if i == 0 {
				continue
			}
			for _, r := range reqs {
				if r.Token.Kind() != tlbprefetch.TokenIRIP {
					continue // SDP's next-page guess is not chain-derived
				}
				// An IRIP prediction from this miss must correspond to a
				// previously observed transition out of vpn.
				if !observed[[2]arch.VPN{vpn, r.VPN}] {
					t.Logf("prediction %#x -> %#x never observed", vpn, r.VPN)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStorageInvariantUnderScaling checks the ISO-storage accounting
// is monotone and proportional under ScaledConfig.
func TestPropertyStorageInvariantUnderScaling(t *testing.T) {
	base := float64(New(DefaultConfig()).StorageBits())
	f := func(raw uint8) bool {
		factor := 0.25 + float64(raw)/64 // 0.25 .. ~4.2
		m := New(ScaledConfig(factor))
		got := float64(m.StorageBits())
		// Rounding to way multiples bounds the deviation.
		return got > base*factor*0.5 && got < base*factor*1.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministicReplay checks that identical miss streams produce
// identical predictions (RLFU randomness comes from the seeded RNG only).
func TestPropertyDeterministicReplay(t *testing.T) {
	f := func(raw []byte) bool {
		stream := randomStream(raw)
		run := func() []arch.VPN {
			m := New(DefaultConfig())
			var out []arch.VPN
			for _, vpn := range stream {
				for _, r := range m.OnMiss(0, vpn.Addr(), vpn) {
					out = append(out, r.VPN)
				}
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTrackedNeverExceedsCapacity fuzzes long adversarial streams
// and checks occupancy bounds.
func TestPropertyTrackedNeverExceedsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := New(DefaultConfig())
	for i := 0; i < 200_000; i++ {
		vpn := arch.VPN(rng.Intn(10_000))
		m.OnMiss(0, vpn.Addr(), vpn)
		if i%50_000 == 0 && m.TrackedEntries() > m.Capacity() {
			t.Fatalf("tracked %d > capacity %d", m.TrackedEntries(), m.Capacity())
		}
	}
	if m.TrackedEntries() > m.Capacity() {
		t.Fatalf("tracked %d > capacity %d", m.TrackedEntries(), m.Capacity())
	}
}
