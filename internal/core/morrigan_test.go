package core

import (
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/tlbprefetch"
)

// miss drives one iSTLB miss using the page's base address as the PC.
func miss(m *Morrigan, vpn arch.VPN) []tlbprefetch.Request {
	return m.OnMiss(0, vpn.Addr(), vpn)
}

// irip packs an IRIP provenance token, as OnMiss would attach it.
func irip(vpn arch.VPN, dist int32) tlbprefetch.Token {
	return tlbprefetch.PackToken(tlbprefetch.TokenIRIP, vpn, dist)
}

func TestDefaultConfigStorageBudget(t *testing.T) {
	m := New(DefaultConfig())
	// 128*(16+17) + 128*(16+34) + 128*(16+68) + 64*(16+136) = 31104 bits.
	if got := m.StorageBits(); got != 31104 {
		t.Fatalf("StorageBits = %d, want 31104", got)
	}
	// ~3.8 KB, the paper's 3.76 KB design point.
	if b := m.StorageBytes(); b < 3700 || b > 3950 {
		t.Fatalf("StorageBytes = %v", b)
	}
	if m.Capacity() != 448 {
		t.Fatalf("Capacity = %d, want 448 (Section 6.3)", m.Capacity())
	}
	if m.Name() != "Morrigan" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestMonoConfigISOStorage(t *testing.T) {
	mono := New(MonoConfig())
	main := New(DefaultConfig())
	if mono.Name() != "Morrigan-mono" {
		t.Fatalf("Name = %q", mono.Name())
	}
	if mono.Capacity() != 203 {
		t.Fatalf("mono capacity = %d, want 203", mono.Capacity())
	}
	// ISO-storage within 1%.
	a, b := float64(mono.StorageBits()), float64(main.StorageBits())
	if a/b < 0.97 || a/b > 1.03 {
		t.Fatalf("mono %v bits vs main %v bits: not ISO-storage", a, b)
	}
}

func TestScaledConfig(t *testing.T) {
	half := New(ScaledConfig(0.5))
	double := New(ScaledConfig(2))
	base := New(DefaultConfig())
	if half.StorageBits() >= base.StorageBits() {
		t.Fatal("0.5x config not smaller")
	}
	if double.StorageBits() <= base.StorageBits() {
		t.Fatal("2x config not larger")
	}
	// Tiny budgets remain valid configurations.
	tiny := ScaledConfig(0.05)
	if err := tiny.Validate(); err != nil {
		t.Fatalf("tiny scaled config invalid: %v", err)
	}
	fa := FullyAssociative(DefaultConfig())
	for _, tc := range fa.Tables {
		if tc.Ways != tc.Entries {
			t.Fatalf("FullyAssociative left table %+v", tc)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Tables: []TableConfig{{Slots: 0, Entries: 8, Ways: 8}}},
		{Tables: []TableConfig{{Slots: 1, Entries: 10, Ways: 4}}},
		{Tables: []TableConfig{{Slots: 2, Entries: 8, Ways: 8}, {Slots: 2, Entries: 8, Ways: 8}}},
		{Tables: []TableConfig{{Slots: 4, Entries: 8, Ways: 8}, {Slots: 2, Entries: 8, Ways: 8}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestFirstMissInstallsInS1(t *testing.T) {
	m := New(DefaultConfig())
	reqs := miss(m, 0xA1)
	// No history: IRIP misses, SDP fires a next-page spatial prefetch.
	if len(reqs) != 1 || reqs[0].VPN != 0xA2 || !reqs[0].Spatial {
		t.Fatalf("reqs = %+v", reqs)
	}
	if reqs[0].Token.Kind() != tlbprefetch.TokenSDP {
		t.Fatal("request not attributed to SDP")
	}
	if m.tables[0].peek(0xA1) == nil {
		t.Fatal("missed page not installed in PRT-S1")
	}
	if m.SDPIssued() != 1 || m.IRIPIssued() != 0 {
		t.Fatalf("attribution: sdp=%d irip=%d", m.SDPIssued(), m.IRIPIssued())
	}
}

func TestLearnsSingleSuccessor(t *testing.T) {
	m := New(DefaultConfig())
	miss(m, 0xA1)
	miss(m, 0xB5) // distance +0x14 recorded in 0xA1's entry
	reqs := miss(m, 0xA1)
	found := false
	for _, r := range reqs {
		if r.VPN == 0xB5 {
			found = true
			if tok := r.Token; tok.Kind() != tlbprefetch.TokenIRIP || tok.VPN() != 0xA1 {
				t.Fatalf("bad token %#x", uint64(tok))
			}
		}
	}
	if !found {
		t.Fatalf("learned successor not predicted: %+v", reqs)
	}
	if m.IRIPIssued() == 0 {
		t.Fatal("IRIP attribution missing")
	}
}

func TestEntryMigrationThroughEnsemble(t *testing.T) {
	m := New(DefaultConfig())
	// Give page 0x100 nine distinct successors; the entry must migrate
	// S1 -> S2 -> S4 -> S8 and then start victimizing slots.
	for i := arch.VPN(1); i <= 9; i++ {
		miss(m, 0x100)
		miss(m, 0x100+i*7)
	}
	if m.tables[0].peek(0x100) != nil || m.tables[1].peek(0x100) != nil ||
		m.tables[2].peek(0x100) != nil {
		t.Fatal("entry left behind in a smaller table")
	}
	e := m.tables[3].peek(0x100)
	if e == nil {
		t.Fatal("entry did not reach PRT-S8")
	}
	if e.n != 8 {
		t.Fatalf("S8 entry has %d slots, want 8", e.n)
	}
	if m.Transfers() != 3 {
		t.Fatalf("Transfers = %d, want 3", m.Transfers())
	}
	// Prediction from S8 produces up to 8 requests.
	reqs := miss(m, 0x100)
	if len(reqs) != 8 {
		t.Fatalf("S8 predictions = %d, want 8", len(reqs))
	}
}

func TestNoDuplicateDistance(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		miss(m, 0xA1)
		miss(m, 0xA5) // same +4 distance every time
	}
	// Entry must still be in PRT-S1 with exactly one slot.
	e := m.tables[0].peek(0xA1)
	if e == nil {
		t.Fatal("entry missing from PRT-S1")
	}
	if e.n != 1 {
		t.Fatalf("slots = %d, want 1 (dedup)", e.n)
	}
}

func TestDistanceOutOfRangeSkipped(t *testing.T) {
	m := New(DefaultConfig())
	far := arch.VPN(0xA1 + MaxDistance + 100)
	miss(m, 0xA1)
	miss(m, far)
	if e := m.tables[0].peek(0xA1); e == nil || e.n != 0 {
		t.Fatalf("out-of-range distance recorded: %+v", e)
	}
	// In-range negative distance works.
	miss(m, far-50)
	if e := m.tables[0].peek(far); e == nil || e.n != 1 || e.dists[0] != -50 {
		t.Fatal("negative distance not recorded")
	}
}

func TestSpatialOnlyForHighestConfidence(t *testing.T) {
	m := New(DefaultConfig())
	// Build two successors for 0xA1: 0xA5 (seen often) and 0xB0.
	miss(m, 0xA1)
	miss(m, 0xA5)
	miss(m, 0xA1)
	miss(m, 0xB0)
	// Bump confidence of the 0xA5 slot via prefetch-hit feedback.
	m.OnPrefetchHit(irip(0xA1, 4))
	m.OnPrefetchHit(irip(0xA1, 4))
	reqs := miss(m, 0xA1)
	if len(reqs) != 2 {
		t.Fatalf("reqs = %+v", reqs)
	}
	spatialCount := 0
	for _, r := range reqs {
		if r.Spatial {
			spatialCount++
			if r.VPN != 0xA5 {
				t.Fatalf("spatial prefetch for %#x, want 0xA5", r.VPN)
			}
		}
	}
	if spatialCount != 1 {
		t.Fatalf("spatial requests = %d, want exactly 1", spatialCount)
	}
}

func TestSpatialDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spatial = false
	m := New(cfg)
	reqs := miss(m, 0xA1)
	for _, r := range reqs {
		if r.Spatial {
			t.Fatal("spatial request with Spatial disabled")
		}
	}
}

func TestSDPDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SDP = false
	m := New(cfg)
	if reqs := miss(m, 0xA1); len(reqs) != 0 {
		t.Fatalf("reqs = %+v with SDP disabled", reqs)
	}
}

func TestConfidenceSaturates(t *testing.T) {
	m := New(DefaultConfig())
	miss(m, 0xA1)
	miss(m, 0xA5)
	for i := 0; i < 10; i++ {
		m.OnPrefetchHit(irip(0xA1, 4))
	}
	e := m.tables[0].peek(0xA1)
	if e.confs[0] != maxConf {
		t.Fatalf("conf = %d, want %d", e.confs[0], maxConf)
	}
	if m.IRIPHits() != 10 {
		t.Fatalf("IRIPHits = %d", m.IRIPHits())
	}
}

func TestPrefetchHitAfterMigration(t *testing.T) {
	m := New(DefaultConfig())
	// Learn one successor, then migrate the entry to S2 with a second.
	miss(m, 0xA1)
	miss(m, 0xA5)
	miss(m, 0xA1)
	miss(m, 0xB0)
	// Token issued when the entry was in S1 must still land.
	m.OnPrefetchHit(irip(0xA1, 4))
	e := m.tables[1].peek(0xA1)
	if e == nil {
		t.Fatal("entry not in S2")
	}
	found := false
	for i := 0; i < e.n; i++ {
		if e.dists[i] == 4 && e.confs[i] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("confidence update lost after migration")
	}
}

func TestPrefetchHitSDPAndForeignTokens(t *testing.T) {
	m := New(DefaultConfig())
	m.OnPrefetchHit(tlbprefetch.TokenSDP)
	if m.SDPHits() != 1 {
		t.Fatalf("SDPHits = %d", m.SDPHits())
	}
	// Foreign token kinds are ignored.
	m.OnPrefetchHit(tlbprefetch.TokenICache)
	m.OnPrefetchHit(tlbprefetch.TokenNone)
	// Token for an evicted entry is harmless.
	m.OnPrefetchHit(irip(0xDEAD, 1))
}

func TestS8LowestConfidenceVictimized(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Fill an S8 entry with 8 distances, raise confidence on all but one.
	for i := arch.VPN(1); i <= 8; i++ {
		miss(m, 0x200)
		miss(m, 0x200+i)
	}
	e := m.tables[3].peek(0x200)
	if e == nil || e.n != 8 {
		t.Fatalf("S8 entry: %+v", e)
	}
	for i := 0; i < 8; i++ {
		if e.dists[i] != 3 { // leave distance 3 at confidence 0
			m.OnPrefetchHit(irip(0x200, e.dists[i]))
		}
	}
	// A ninth distinct distance replaces the lowest-confidence slot (3).
	miss(m, 0x200)
	miss(m, 0x200+100)
	if e.hasDist(3) {
		t.Fatal("lowest-confidence slot not victimized")
	}
	if !e.hasDist(100) {
		t.Fatal("new distance not installed")
	}
}

func TestThreadsKeepSeparateChains(t *testing.T) {
	m := New(DefaultConfig())
	// Interleave two threads; thread 0's chain is A1 -> A9, thread 1's is
	// C1 -> C7. Cross distances must not be recorded.
	m.OnMiss(0, 0, 0xA1)
	m.OnMiss(1, 0, 0xC1)
	m.OnMiss(0, 0, 0xA9)
	m.OnMiss(1, 0, 0xC7)
	eA := m.tables[0].peek(0xA1)
	if eA == nil || eA.n != 1 || eA.dists[0] != 8 {
		t.Fatalf("thread 0 chain: %+v", eA)
	}
	eC := m.tables[0].peek(0xC1)
	if eC == nil || eC.n != 1 || eC.dists[0] != 6 {
		t.Fatalf("thread 1 chain: %+v", eC)
	}
}

func TestFlushClearsState(t *testing.T) {
	m := New(DefaultConfig())
	miss(m, 0xA1)
	miss(m, 0xA5)
	m.Flush()
	if m.TrackedEntries() != 0 {
		t.Fatal("entries survived flush")
	}
	// After a flush the next miss is history-free: no distance recorded.
	miss(m, 0xB0)
	if e := m.tables[0].peek(0xB0); e == nil || e.n != 0 {
		t.Fatal("stale previous-miss register used after flush")
	}
}

func TestSameVPNRepeatNoSelfLoop(t *testing.T) {
	m := New(DefaultConfig())
	miss(m, 0xA1)
	miss(m, 0xA1)
	if e := m.tables[0].peek(0xA1); e == nil || e.n != 0 {
		t.Fatal("self-distance recorded for repeated miss")
	}
}

func TestResetStats(t *testing.T) {
	m := New(DefaultConfig())
	miss(m, 1)
	miss(m, 2)
	m.OnPrefetchHit(tlbprefetch.TokenSDP)
	m.ResetStats()
	if m.IRIPIssued()+m.SDPIssued()+m.IRIPHits()+m.SDPHits()+m.Transfers() != 0 {
		t.Fatal("stats not reset")
	}
}
