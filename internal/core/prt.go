package core

import (
	"math/rand"

	"morrigan/internal/arch"
	"morrigan/internal/tlbprefetch"
)

// Policy selects the prediction tables' replacement policy (Section 6.1.2
// compares RLFU against LRU, Random and LFU).
type Policy int

// Replacement policies for the IRIP prediction tables.
const (
	// PolicyRLFU is Morrigan's Random-Least-Frequently-Used policy: the
	// victim is drawn uniformly at random from the set entries with the
	// lowest miss frequencies, giving recently installed (not yet
	// frequent) entries a second chance.
	PolicyRLFU Policy = iota
	// PolicyLFU evicts the entry whose page has the lowest miss frequency.
	PolicyLFU
	// PolicyLRU evicts the least recently used entry (what the prior MP
	// design uses).
	PolicyLRU
	// PolicyRandom evicts a uniformly random entry.
	PolicyRandom
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRLFU:
		return "RLFU"
	case PolicyLFU:
		return "LFU"
	case PolicyLRU:
		return "LRU"
	case PolicyRandom:
		return "Random"
	}
	return "invalid"
}

// maxRLFUWidth bounds the RLFU victim candidate pool (hardware would use a
// small comparator tree).
const maxRLFUWidth = 8

// prtEntry is one prediction table entry: the missed page for indexing plus
// up to slots (distance, confidence) prediction pairs. The full VPN is kept
// for simulation fidelity; storage is accounted as a 16-bit partial tag per
// the paper (Section 6.1).
type prtEntry struct {
	vpn   arch.VPN
	dists []int32
	confs []uint8
	n     int
	used  uint64
	valid bool
}

// hasDist reports whether the entry already stores the distance.
func (e *prtEntry) hasDist(d int32) bool {
	for i := 0; i < e.n; i++ {
		if e.dists[i] == d {
			return true
		}
	}
	return false
}

// minConfSlot returns the index of the lowest-confidence slot.
func (e *prtEntry) minConfSlot() int {
	v := 0
	for i := 1; i < e.n; i++ {
		if e.confs[i] < e.confs[v] {
			v = i
		}
	}
	return v
}

// maxConfSlot returns the index of the highest-confidence slot.
func (e *prtEntry) maxConfSlot() int {
	v := 0
	for i := 1; i < e.n; i++ {
		if e.confs[i] > e.confs[v] {
			v = i
		}
	}
	return v
}

// prt is one set-associative prediction table of the IRIP ensemble.
type prt struct {
	slots int // prediction slots per entry (1, 2, 4 or 8)
	sets  int
	ways  int
	ents  []prtEntry
	tick  uint64
}

func newPRT(slots, entries, ways int) *prt {
	if slots <= 0 || entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("core: PRT geometry must be positive with entries a multiple of ways")
	}
	t := &prt{slots: slots, sets: entries / ways, ways: ways, ents: make([]prtEntry, entries)}
	for i := range t.ents {
		t.ents[i].dists = make([]int32, slots)
		t.ents[i].confs = make([]uint8, slots)
	}
	return t
}

func (t *prt) set(vpn arch.VPN) []prtEntry {
	s := int(uint64(vpn) % uint64(t.sets))
	return t.ents[s*t.ways : (s+1)*t.ways]
}

// find returns the entry for vpn, promoting it for LRU, or nil.
func (t *prt) find(vpn arch.VPN) *prtEntry {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			t.tick++
			set[i].used = t.tick
			return &set[i]
		}
	}
	return nil
}

// peek returns the entry without LRU promotion.
func (t *prt) peek(vpn arch.VPN) *prtEntry {
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			return &set[i]
		}
	}
	return nil
}

// victim selects a replacement victim in vpn's set according to the policy.
// It returns a free slot if one exists. rlfuWidth bounds the RLFU candidate
// pool. evicted reports whether a valid entry is being displaced.
func (t *prt) victim(vpn arch.VPN, pol Policy, freq *FrequencyStack, rng *rand.Rand, rlfuWidth int) (e *prtEntry, evicted bool) {
	set := t.set(vpn)
	for i := range set {
		if !set[i].valid {
			return &set[i], false
		}
	}
	switch pol {
	case PolicyLRU:
		v := 0
		for i := range set {
			if set[i].used < set[v].used {
				v = i
			}
		}
		return &set[v], true
	case PolicyRandom:
		return &set[rng.Intn(len(set))], true
	case PolicyLFU:
		v := 0
		for i := range set {
			if freq.Freq(set[i].vpn) < freq.Freq(set[v].vpn) {
				v = i
			}
		}
		return &set[v], true
	default: // PolicyRLFU
		// Collect the rlfuWidth least frequently missed entries, then
		// choose uniformly among them: pure LFU would always evict the
		// newest entries (frequency 1), so randomising across the
		// low-frequency pool acts as a second-chance mechanism for
		// recently installed entries (Section 4.1.1).
		if rlfuWidth < 2 {
			rlfuWidth = 2
		}
		if rlfuWidth > maxRLFUWidth {
			rlfuWidth = maxRLFUWidth
		}
		if rlfuWidth > len(set) {
			rlfuWidth = len(set)
		}
		// Single pass keeping the k lowest-frequency candidates, sorted
		// ascending by frequency in fixed-size arrays (no allocation).
		var candIdx [maxRLFUWidth]int
		var candFreq [maxRLFUWidth]uint32
		n := 0
		for i := range set {
			f := freq.Freq(set[i].vpn)
			if n == rlfuWidth && f >= candFreq[n-1] {
				continue
			}
			j := n
			if n < rlfuWidth {
				n++
			} else {
				j = n - 1
			}
			for j > 0 && candFreq[j-1] > f {
				candIdx[j] = candIdx[j-1]
				candFreq[j] = candFreq[j-1]
				j--
			}
			candIdx[j] = i
			candFreq[j] = f
		}
		return &set[candIdx[rng.Intn(n)]], true
	}
}

// install writes a fresh entry for vpn into e.
func (t *prt) install(e *prtEntry, vpn arch.VPN) {
	t.tick++
	e.vpn = vpn
	e.n = 0
	e.used = t.tick
	e.valid = true
}

// remove invalidates vpn's entry if present.
func (t *prt) remove(vpn arch.VPN) {
	if e := t.peek(vpn); e != nil {
		e.valid = false
	}
}

// flush invalidates every entry.
func (t *prt) flush() {
	for i := range t.ents {
		t.ents[i].valid = false
	}
}

// storageBits accounts the table's hardware budget: a 16-bit partial tag
// plus (15-bit distance + 2-bit confidence) per slot, per entry.
func (t *prt) storageBits() int {
	per := tlbprefetch.TagBits + t.slots*(tlbprefetch.DistanceBits+tlbprefetch.ConfBits)
	return len(t.ents) * per
}

// validEntries counts live entries (for tests and ablation reports).
func (t *prt) validEntries() int {
	n := 0
	for i := range t.ents {
		if t.ents[i].valid {
			n++
		}
	}
	return n
}
