package core

import (
	"fmt"
	"math/rand"

	"morrigan/internal/arch"
	"morrigan/internal/tlbprefetch"
)

// Distance bounds for a prediction slot: distances are stored in 15 bits as
// a signed value (Section 6.1); distances that do not fit are not recorded.
const (
	MaxDistance = 1<<(tlbprefetch.DistanceBits-1) - 1
	MinDistance = -(1 << (tlbprefetch.DistanceBits - 1))
)

// maxConf is the saturation value of the 2-bit confidence counters.
const maxConf = (1 << tlbprefetch.ConfBits) - 1

// TableConfig sizes one prediction table of the IRIP ensemble.
type TableConfig struct {
	// Slots is the number of prediction slots per entry.
	Slots int
	// Entries is the table capacity.
	Entries int
	// Ways is the set associativity; Ways == Entries means fully
	// associative.
	Ways int
}

// Config parameterises Morrigan.
type Config struct {
	// Tables lists the IRIP prediction tables in increasing slot order.
	// The default is the paper's empirically selected configuration
	// (Section 6.1.3): PRT-S1/S2/S4 at 128 entries 32-way and PRT-S8 at 64
	// entries 16-way, for a ~3.8 KB budget.
	Tables []TableConfig
	// Policy is the prediction tables' replacement policy.
	Policy Policy
	// RLFUCandidates is the size of RLFU's low-frequency victim pool.
	RLFUCandidates int
	// FreqResetInterval is the number of iSTLB misses between frequency
	// stack resets (phase adaptation); 0 disables resets.
	FreqResetInterval uint64
	// SDP enables the Small Delta Prefetcher module.
	SDP bool
	// Spatial enables page-table-locality spatial prefetching (free
	// line-neighbour PTEs for the highest-confidence IRIP prediction and
	// for SDP prefetches).
	Spatial bool
	// Seed drives RLFU's randomness.
	Seed int64
}

// DefaultConfig returns the paper's 3.76 KB Morrigan configuration.
func DefaultConfig() Config {
	return Config{
		Tables: []TableConfig{
			{Slots: 1, Entries: 128, Ways: 32},
			{Slots: 2, Entries: 128, Ways: 32},
			{Slots: 4, Entries: 128, Ways: 32},
			{Slots: 8, Entries: 64, Ways: 16},
		},
		Policy:            PolicyRLFU,
		RLFUCandidates:    4,
		FreqResetInterval: 8192,
		SDP:               true,
		Spatial:           true,
		Seed:              42,
	}
}

// MonoConfig returns the Morrigan-mono ablation of Section 6.3: a single
// 203-entry prediction table with 8 slots per entry, matching the default
// configuration's storage budget.
func MonoConfig() Config {
	c := DefaultConfig()
	c.Tables = []TableConfig{{Slots: 8, Entries: 203, Ways: 203}}
	return c
}

// ScaledConfig scales the default table sizes by factor (Figures 13/14's
// storage budget sweep), keeping the 2:2:2:1 capacity ratio. Entry counts
// are rounded to multiples of the associativity.
func ScaledConfig(factor float64) Config {
	c := DefaultConfig()
	for i := range c.Tables {
		t := &c.Tables[i]
		e := int(float64(t.Entries)*factor + 0.5)
		if e < t.Ways {
			// Shrink associativity with very small tables.
			t.Ways = e
			if t.Ways < 1 {
				t.Ways = 1
			}
		}
		t.Entries = (e / t.Ways) * t.Ways
		if t.Entries < t.Ways {
			t.Entries = t.Ways
		}
	}
	return c
}

// FullyAssociative converts every table of c to full associativity
// (Sections 6.1.1/6.1.2 sweep fully associative tables).
func FullyAssociative(c Config) Config {
	for i := range c.Tables {
		c.Tables[i].Ways = c.Tables[i].Entries
	}
	return c
}

// Morrigan attaches packed tlbprefetch.Tokens to its prefetch requests: on a
// PB hit the token routes the confidence update to the producing prediction
// slot via its (vpn, dist) fields (step 6 of Figure 12); SDP requests carry
// TokenSDP for attribution only.

// Morrigan is the composite instruction TLB prefetcher. It implements
// tlbprefetch.Prefetcher.
type Morrigan struct {
	cfg    Config
	tables []*prt
	freq   *FrequencyStack
	rng    *rand.Rand

	// Per-thread registers holding the previously missed virtual page and
	// the table that stores it (step 19 of Figure 12 notes a register
	// avoids searching all tables). Sharing the tables while splitting
	// these registers is exactly the paper's SMT provision (Section 4.3).
	prev      [2]arch.VPN
	prevTable [2]int
	prevSeen  [2]bool

	iripIssued uint64
	sdpIssued  uint64
	iripHits   uint64
	sdpHits    uint64
	transfers  uint64

	// out is the reusable OnMiss result buffer (valid until the next
	// OnMiss call, per the Prefetcher contract).
	out []tlbprefetch.Request
}

var _ tlbprefetch.Prefetcher = (*Morrigan)(nil)

// New builds Morrigan from cfg. It panics on invalid table geometry; use
// Validate for a checked construction.
func New(cfg Config) *Morrigan {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Morrigan{
		cfg:  cfg,
		freq: NewFrequencyStack(cfg.FreqResetInterval),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, tc := range cfg.Tables {
		m.tables = append(m.tables, newPRT(tc.Slots, tc.Entries, tc.Ways))
	}
	return m
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Tables) == 0 {
		return fmt.Errorf("core: config needs at least one prediction table")
	}
	prev := 0
	for i, t := range c.Tables {
		if t.Slots <= 0 || t.Entries <= 0 || t.Ways <= 0 || t.Entries%t.Ways != 0 {
			return fmt.Errorf("core: table %d geometry invalid: %+v", i, t)
		}
		if t.Slots <= prev {
			return fmt.Errorf("core: tables must have strictly increasing slot counts")
		}
		prev = t.Slots
	}
	return nil
}

// Name implements tlbprefetch.Prefetcher.
func (m *Morrigan) Name() string {
	if len(m.tables) == 1 {
		return "Morrigan-mono"
	}
	return "Morrigan"
}

// StorageBits implements tlbprefetch.Prefetcher using the paper's
// accounting: 16-bit partial tag plus 15+2 bits per prediction slot.
func (m *Morrigan) StorageBits() int {
	bits := 0
	for _, t := range m.tables {
		bits += t.storageBits()
	}
	return bits
}

// StorageBytes returns the budget in bytes (the unit of Figures 13/14).
func (m *Morrigan) StorageBytes() float64 { return float64(m.StorageBits()) / 8 }

// findEntry locates vpn across the ensemble (entries are never duplicated,
// so at most one table hits).
func (m *Morrigan) findEntry(vpn arch.VPN) (int, *prtEntry) {
	for i, t := range m.tables {
		if e := t.find(vpn); e != nil {
			return i, e
		}
	}
	return -1, nil
}

// OnMiss implements the operation of Figure 12 for one iSTLB miss.
func (m *Morrigan) OnMiss(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) []tlbprefetch.Request {
	t := tid & 1
	m.freq.Observe(vpn)

	// Steps 8-9: look up the ensemble and generate one prefetch per valid
	// prediction slot; the highest-confidence slot gets spatial
	// prefetching (steps 3-5 of Figure 11).
	reqs := m.out[:0]
	ti, e := m.findEntry(vpn)
	if e != nil {
		best := -1
		if e.n > 0 {
			best = e.maxConfSlot()
		}
		for i := 0; i < e.n; i++ {
			target := int64(vpn) + int64(e.dists[i])
			if target < 0 {
				continue
			}
			reqs = append(reqs, tlbprefetch.Request{
				VPN:     arch.VPN(target),
				Spatial: m.cfg.Spatial && i == best,
				Token:   tlbprefetch.PackToken(tlbprefetch.TokenIRIP, vpn, e.dists[i]),
			})
		}
		m.iripIssued += uint64(len(reqs))
	} else {
		// Step 15: a page with no history is always installed in the
		// first (fewest-slots) table.
		tab := m.tables[0]
		victim, _ := tab.victim(vpn, m.cfg.Policy, m.freq, m.rng, m.cfg.RLFUCandidates)
		tab.install(victim, vpn)
		ti = 0
	}

	if len(reqs) == 0 && m.cfg.SDP {
		// Steps 16-17: IRIP produced nothing, so the Small Delta
		// Prefetcher issues a next-page prefetch with page-table-locality
		// spatial prefetching (Section 4.1.2).
		reqs = append(reqs, tlbprefetch.Request{
			VPN:     vpn + 1,
			Spatial: m.cfg.Spatial,
			Token:   tlbprefetch.TokenSDP,
		})
		m.sdpIssued++
	}

	// Step 18: record the new distance in the previous page's entry.
	if m.prevSeen[t] && m.prev[t] != vpn {
		m.recordDistance(t, vpn)
	}

	// Step 9 of Figure 11: remember the current page and its table.
	m.prev[t] = vpn
	m.prevTable[t] = ti
	m.prevSeen[t] = true
	m.out = reqs
	if len(reqs) == 0 {
		return nil
	}
	return reqs
}

// recordDistance implements steps 18-25 of Figure 12: insert the distance
// from the previously missed page to vpn into the previous page's entry,
// migrating the entry to a table with more slots when full.
func (m *Morrigan) recordDistance(t arch.ThreadID, vpn arch.VPN) {
	dist := int64(vpn) - int64(m.prev[t])
	if dist < MinDistance || dist > MaxDistance {
		return // not representable in a 15-bit slot
	}
	d := int32(dist)

	ti := m.prevTable[t]
	if ti < 0 || ti >= len(m.tables) {
		return
	}
	tab := m.tables[ti]
	e := tab.peek(m.prev[t])
	if e == nil {
		// The entry was victimized since the register was set; nothing to
		// update.
		return
	}
	if e.hasDist(d) {
		return
	}
	if e.n < tab.slots {
		e.dists[e.n] = d
		e.confs[e.n] = 0
		e.n++
		return
	}
	if ti == len(m.tables)-1 {
		// Step 25: the largest table victimizes the lowest-confidence
		// slot instead of migrating.
		s := e.minConfSlot()
		e.dists[s] = d
		e.confs[s] = 0
		return
	}
	// Steps 21-23: transfer the entry, together with the new distance,
	// into the next table with more slots, then remove it from this one.
	next := m.tables[ti+1]
	victim, _ := next.victim(m.prev[t], m.cfg.Policy, m.freq, m.rng, m.cfg.RLFUCandidates)
	next.install(victim, m.prev[t])
	for i := 0; i < e.n; i++ {
		victim.dists[i] = e.dists[i]
		victim.confs[i] = e.confs[i]
	}
	victim.n = e.n
	victim.dists[victim.n] = d
	victim.confs[victim.n] = 0
	victim.n++
	tab.remove(m.prev[t])
	m.prevTable[t] = ti + 1
	m.transfers++
}

// OnPrefetchHit implements tlbprefetch.Prefetcher: a PB entry produced by
// Morrigan eliminated a demand page walk, so the producing prediction
// slot's confidence counter is incremented (step 6 of Figure 12).
func (m *Morrigan) OnPrefetchHit(tok tlbprefetch.Token) {
	switch tok.Kind() {
	case tlbprefetch.TokenSDP:
		m.sdpHits++
		return
	case tlbprefetch.TokenIRIP:
	default:
		return // not a Morrigan token
	}
	m.iripHits++
	// The entry may have migrated tables since the prefetch was issued, so
	// search the ensemble.
	_, e := m.findEntry(tok.VPN())
	if e == nil {
		return
	}
	dist := tok.Dist()
	for i := 0; i < e.n; i++ {
		if e.dists[i] == dist {
			if e.confs[i] < maxConf {
				e.confs[i]++
			}
			return
		}
	}
}

// Flush implements tlbprefetch.Prefetcher: prediction tables are flushed on
// context switches (Section 4.3); their small size makes refill quick. SDP
// is stateless.
func (m *Morrigan) Flush() {
	for _, t := range m.tables {
		t.flush()
	}
	m.freq.Flush()
	m.prevSeen = [2]bool{}
}

// IRIPIssued returns prefetch requests produced by the IRIP module.
func (m *Morrigan) IRIPIssued() uint64 { return m.iripIssued }

// SDPIssued returns prefetch requests produced by the SDP module.
func (m *Morrigan) SDPIssued() uint64 { return m.sdpIssued }

// IRIPHits returns PB hits attributed to IRIP prefetches.
func (m *Morrigan) IRIPHits() uint64 { return m.iripHits }

// SDPHits returns PB hits attributed to SDP prefetches.
func (m *Morrigan) SDPHits() uint64 { return m.sdpHits }

// Transfers returns entry migrations between prediction tables.
func (m *Morrigan) Transfers() uint64 { return m.transfers }

// FrequencyResets returns how often the frequency stack was reset.
func (m *Morrigan) FrequencyResets() uint64 { return m.freq.Resets() }

// TrackedEntries returns the live entry count across the ensemble; Section
// 6.3 contrasts Morrigan's 448 effective entries with mono's 203.
func (m *Morrigan) TrackedEntries() int {
	n := 0
	for _, t := range m.tables {
		n += t.validEntries()
	}
	return n
}

// Capacity returns the total entry capacity across the ensemble.
func (m *Morrigan) Capacity() int {
	n := 0
	for _, t := range m.tables {
		n += len(t.ents)
	}
	return n
}

// ResetStats clears attribution counters, keeping predictor state.
func (m *Morrigan) ResetStats() {
	m.iripIssued, m.sdpIssued, m.iripHits, m.sdpHits, m.transfers = 0, 0, 0, 0, 0
}
