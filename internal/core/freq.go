// Package core implements Morrigan, the paper's composite instruction TLB
// prefetcher (Section 4): the Irregular Instruction TLB Prefetcher (IRIP) —
// an ensemble of table-based Markov prefetchers (PRT-S1, PRT-S2, PRT-S4,
// PRT-S8) that build variable-length Markov chains out of the iSTLB miss
// stream, managed by the Random-Least-Frequently-Used (RLFU) replacement
// policy over a periodically reset frequency stack — and the Small Delta
// Prefetcher (SDP), an enhanced sequential prefetcher engaged when IRIP
// cannot produce prefetches. Both modules exploit page table locality for
// spatial prefetching.
package core

import "morrigan/internal/arch"

// FrequencyStack tracks how often each virtual page missed in the
// instruction STLB. It drives RLFU replacement decisions. To adapt to phase
// changes, the stack is reset after every ResetInterval observations
// (Section 4.1.1: "Morrigan periodically resets the frequency stack").
type FrequencyStack struct {
	counts   map[arch.VPN]uint32
	interval uint64
	observed uint64
	resets   uint64
}

// NewFrequencyStack builds a stack that resets every interval observations;
// interval 0 disables resets.
func NewFrequencyStack(interval uint64) *FrequencyStack {
	return &FrequencyStack{counts: make(map[arch.VPN]uint32), interval: interval}
}

// Observe records one iSTLB miss on vpn.
func (f *FrequencyStack) Observe(vpn arch.VPN) {
	f.observed++
	if f.interval > 0 && f.observed%f.interval == 0 {
		f.counts = make(map[arch.VPN]uint32, len(f.counts))
		f.resets++
	}
	f.counts[vpn]++
}

// Freq returns vpn's miss count in the current interval.
func (f *FrequencyStack) Freq(vpn arch.VPN) uint32 { return f.counts[vpn] }

// Resets returns how many times the stack has been cleared.
func (f *FrequencyStack) Resets() uint64 { return f.resets }

// Flush clears the stack (context switch).
func (f *FrequencyStack) Flush() {
	f.counts = make(map[arch.VPN]uint32)
	f.observed = 0
}
