// Package stats provides the measurement helpers shared by the simulator and
// the experiment harness: rate metrics (MPKI, coverage, speedup, geometric
// mean) and the instruction-TLB miss-stream characterisation tools used to
// reproduce the paper's Findings 1-3 (delta distributions, page-frequency
// skew, and successor-page statistics).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// MPKI returns misses per kilo-instruction.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}

// Speedup returns the relative performance improvement, in percent, of a run
// that took cycles over a baseline that took baseCycles executing the same
// instruction count. Positive means faster than baseline.
func Speedup(baseCycles, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return (float64(baseCycles)/float64(cycles) - 1) * 100
}

// Coverage returns the fraction, in percent, of baseline misses eliminated.
func Coverage(baseMisses, misses uint64) float64 {
	if baseMisses == 0 {
		return 0
	}
	if misses > baseMisses {
		return 0
	}
	return float64(baseMisses-misses) / float64(baseMisses) * 100
}

// GeoMeanSpeedup returns the geometric mean of per-workload speedups given in
// percent (e.g. 7.6 means +7.6%). It averages the speedup ratios, not the
// percentages, matching how architecture papers report "geomean speedup".
// An entry at or below -100% (a non-positive ratio, only possible from
// degenerate measurements) clamps the whole mean to -100% rather than
// propagating NaN through the table.
func GeoMeanSpeedup(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pcts {
		r := 1 + p/100
		if r <= 0 {
			return -100
		}
		sum += math.Log(r)
	}
	return (math.Exp(sum/float64(len(pcts))) - 1) * 100
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percent returns part/whole in percent, or 0 when whole is zero.
func Percent(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole) * 100
}

// Ratio returns part/whole, or 0 when whole is zero.
func Ratio(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// DeltaDistribution accumulates the distribution of deltas between pages
// that produce consecutive misses (paper Figure 5). Deltas are recorded by
// absolute value.
type DeltaDistribution struct {
	counts map[uint64]uint64
	total  uint64
	prev   uint64
	seeded bool
}

// NewDeltaDistribution returns an empty distribution.
func NewDeltaDistribution() *DeltaDistribution {
	return &DeltaDistribution{counts: make(map[uint64]uint64)}
}

// Observe records the next page in the miss stream.
func (d *DeltaDistribution) Observe(page uint64) {
	if d.seeded {
		delta := page - d.prev
		if page < d.prev {
			delta = d.prev - page
		}
		d.counts[delta]++
		d.total++
	}
	d.prev = page
	d.seeded = true
}

// Total returns the number of recorded deltas.
func (d *DeltaDistribution) Total() uint64 { return d.total }

// CumulativeUpTo returns the fraction, in percent, of deltas whose absolute
// value is at most limit.
func (d *DeltaDistribution) CumulativeUpTo(limit uint64) float64 {
	if d.total == 0 {
		return 0
	}
	var n uint64
	for delta, c := range d.counts {
		if delta <= limit {
			n += c
		}
	}
	return float64(n) / float64(d.total) * 100
}

// CDF returns the cumulative distribution evaluated at each of the given
// (ascending) delta limits, in percent.
func (d *DeltaDistribution) CDF(limits []uint64) []float64 {
	out := make([]float64, len(limits))
	for i, l := range limits {
		out[i] = d.CumulativeUpTo(l)
	}
	return out
}

// PageFrequency accumulates per-page miss counts (paper Figure 6).
type PageFrequency struct {
	counts map[uint64]uint64
	total  uint64
}

// NewPageFrequency returns an empty frequency tracker.
func NewPageFrequency() *PageFrequency {
	return &PageFrequency{counts: make(map[uint64]uint64)}
}

// Observe records one miss on the given page.
func (p *PageFrequency) Observe(page uint64) {
	p.counts[page]++
	p.total++
}

// Total returns the number of observed misses.
func (p *PageFrequency) Total() uint64 { return p.total }

// Pages returns the number of distinct pages observed.
func (p *PageFrequency) Pages() int { return len(p.counts) }

// sorted returns per-page counts in decreasing order.
func (p *PageFrequency) sorted() []uint64 {
	out := make([]uint64, 0, len(p.counts))
	for _, c := range p.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

// PagesForCoverage returns how many of the hottest pages are needed to cover
// the given percentage of all misses (e.g. 90 for the paper's "400-800 pages
// cause 90% of the iSTLB misses").
func (p *PageFrequency) PagesForCoverage(percent float64) int {
	if p.total == 0 {
		return 0
	}
	target := percent / 100 * float64(p.total)
	var cum uint64
	for i, c := range p.sorted() {
		cum += c
		if float64(cum) >= target {
			return i + 1
		}
	}
	return len(p.counts)
}

// CoverageOfTop returns the percentage of misses covered by the n hottest
// pages.
func (p *PageFrequency) CoverageOfTop(n int) float64 {
	if p.total == 0 {
		return 0
	}
	var cum uint64
	for i, c := range p.sorted() {
		if i >= n {
			break
		}
		cum += c
	}
	return float64(cum) / float64(p.total) * 100
}

// TopPages returns the n hottest pages in decreasing miss-count order.
func (p *PageFrequency) TopPages(n int) []uint64 {
	type pc struct {
		page, count uint64
	}
	all := make([]pc, 0, len(p.counts))
	for pg, c := range p.counts {
		all = append(all, pc{pg, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].page < all[j].page
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].page
	}
	return out
}

// SuccessorStats accumulates the successor-page structure of a miss stream
// (paper Figures 7 and 8). Page Y is a successor of page X when a miss on X
// is immediately followed by a miss on Y.
type SuccessorStats struct {
	succ   map[uint64]map[uint64]uint64
	misses map[uint64]uint64
	prev   uint64
	seeded bool
}

// NewSuccessorStats returns an empty successor tracker.
func NewSuccessorStats() *SuccessorStats {
	return &SuccessorStats{
		succ:   make(map[uint64]map[uint64]uint64),
		misses: make(map[uint64]uint64),
	}
}

// Observe records the next page in the miss stream.
func (s *SuccessorStats) Observe(page uint64) {
	s.misses[page]++
	if s.seeded {
		m := s.succ[s.prev]
		if m == nil {
			m = make(map[uint64]uint64)
			s.succ[s.prev] = m
		}
		m[page]++
	}
	s.prev = page
	s.seeded = true
}

// SuccessorHistogram buckets pages by their number of distinct successors
// using the paper's Figure 7 buckets: exactly 1, exactly 2, 3-4, 5-8, and
// more than 8. Returned values are percentages of pages that have at least
// one successor.
func (s *SuccessorStats) SuccessorHistogram() (one, two, upTo4, upTo8, more float64) {
	var counts [5]int
	total := 0
	for _, m := range s.succ {
		n := len(m)
		if n == 0 {
			continue
		}
		total++
		switch {
		case n == 1:
			counts[0]++
		case n == 2:
			counts[1]++
		case n <= 4:
			counts[2]++
		case n <= 8:
			counts[3]++
		default:
			counts[4]++
		}
	}
	if total == 0 {
		return 0, 0, 0, 0, 0
	}
	f := func(i int) float64 { return float64(counts[i]) / float64(total) * 100 }
	return f(0), f(1), f(2), f(3), f(4)
}

// TopPageSuccessorProbabilities considers the topN pages with the most
// misses and returns the average probability that, after a miss on one of
// those pages, the next miss is on its most frequent, second most frequent,
// and third most frequent successor; rest is the remaining probability mass
// (paper Figure 8 reports roughly 51/21/11/17).
func (s *SuccessorStats) TopPageSuccessorProbabilities(topN int) (first, second, third, rest float64) {
	type pc struct {
		page, count uint64
	}
	pages := make([]pc, 0, len(s.misses))
	for pg, c := range s.misses {
		if len(s.succ[pg]) > 0 {
			pages = append(pages, pc{pg, c})
		}
	}
	sort.Slice(pages, func(i, j int) bool {
		if pages[i].count != pages[j].count {
			return pages[i].count > pages[j].count
		}
		return pages[i].page < pages[j].page
	})
	if topN > len(pages) {
		topN = len(pages)
	}
	if topN == 0 {
		return 0, 0, 0, 0
	}
	var sums [3]float64
	for _, p := range pages[:topN] {
		freqs := make([]uint64, 0, len(s.succ[p.page]))
		var total uint64
		for _, c := range s.succ[p.page] {
			freqs = append(freqs, c)
			total += c
		}
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
		for i := 0; i < 3 && i < len(freqs); i++ {
			sums[i] += float64(freqs[i]) / float64(total)
		}
	}
	n := float64(topN)
	first, second, third = sums[0]/n*100, sums[1]/n*100, sums[2]/n*100
	rest = 100 - first - second - third
	if rest < 0 {
		rest = 0
	}
	return first, second, third, rest
}

// Histogram is a fixed-bucket counter keyed by small integers, used for
// per-level breakdowns and similar small categorical tallies.
type Histogram struct {
	Counts []uint64
}

// NewHistogram returns a histogram with n buckets.
func NewHistogram(n int) *Histogram { return &Histogram{Counts: make([]uint64, n)} }

// Add increments bucket i by n; out-of-range buckets are clamped to the last
// bucket so callers never lose counts.
func (h *Histogram) Add(i int, n uint64) {
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i] += n
}

// Total returns the sum over all buckets.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Percentages returns each bucket as a percentage of the total.
func (h *Histogram) Percentages() []float64 {
	t := h.Total()
	out := make([]float64, len(h.Counts))
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(t) * 100
	}
	return out
}

// FormatPct renders a float percentage with one decimal, for table output.
func FormatPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
