package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 1_000_000); !almost(got, 0.5) {
		t.Errorf("MPKI = %v, want 0.5", got)
	}
	if got := MPKI(10, 0); got != 0 {
		t.Errorf("MPKI with zero instructions = %v, want 0", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(110, 100); !almost(got, 10) {
		t.Errorf("Speedup = %v, want 10", got)
	}
	if got := Speedup(100, 110); got >= 0 {
		t.Errorf("slowdown should be negative, got %v", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup with zero cycles = %v, want 0", got)
	}
}

func TestCoverage(t *testing.T) {
	if got := Coverage(1000, 310); !almost(got, 69) {
		t.Errorf("Coverage = %v, want 69", got)
	}
	if got := Coverage(0, 10); got != 0 {
		t.Errorf("Coverage with zero baseline = %v", got)
	}
	if got := Coverage(10, 20); got != 0 {
		t.Errorf("negative coverage should clamp to 0, got %v", got)
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// Geomean of identical values is that value.
	if got := GeoMeanSpeedup([]float64{7.6, 7.6, 7.6}); !almost(got, 7.6) {
		t.Errorf("GeoMeanSpeedup = %v, want 7.6", got)
	}
	// +100% and -50% cancel: ratios 2.0 and 0.5 have geomean 1.0.
	if got := GeoMeanSpeedup([]float64{100, -50}); !almost(got, 0) {
		t.Errorf("GeoMeanSpeedup = %v, want 0", got)
	}
	if got := GeoMeanSpeedup(nil); got != 0 {
		t.Errorf("GeoMeanSpeedup(nil) = %v, want 0", got)
	}
}

// TestGeoMeanSpeedupDegenerate: an entry at or below -100% used to feed
// log(0) or log(negative) into the mean and turn the whole result into NaN;
// it must instead clamp to -100% and stay finite.
func TestGeoMeanSpeedupDegenerate(t *testing.T) {
	for _, pcts := range [][]float64{
		{-100},
		{-100, 10, 20},
		{-150, 5},
	} {
		got := GeoMeanSpeedup(pcts)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("GeoMeanSpeedup(%v) = %v, want finite", pcts, got)
		}
		if !almost(got, -100) {
			t.Errorf("GeoMeanSpeedup(%v) = %v, want -100", pcts, got)
		}
	}
	// Entries just above -100% still go through the real geomean.
	if got := GeoMeanSpeedup([]float64{-99.9}); !almost(got, -99.9) {
		t.Errorf("GeoMeanSpeedup([-99.9]) = %v, want -99.9", got)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) / 4, float64(b) / 4, float64(c) / 4}
		g := GeoMeanSpeedup(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndPercent(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Percent(25, 100); !almost(got, 25) {
		t.Errorf("Percent = %v", got)
	}
	if got := Percent(1, 0); got != 0 {
		t.Errorf("Percent(1,0) = %v", got)
	}
	if got := Ratio(3, 4); !almost(got, 0.75) {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio(3,0) = %v", got)
	}
}

func TestDeltaDistribution(t *testing.T) {
	d := NewDeltaDistribution()
	for _, p := range []uint64{100, 101, 103, 100, 200} {
		d.Observe(p)
	}
	// Deltas: 1, 2, 3, 100.
	if d.Total() != 4 {
		t.Fatalf("Total = %d, want 4", d.Total())
	}
	if got := d.CumulativeUpTo(2); !almost(got, 50) {
		t.Errorf("CumulativeUpTo(2) = %v, want 50", got)
	}
	if got := d.CumulativeUpTo(10); !almost(got, 75) {
		t.Errorf("CumulativeUpTo(10) = %v, want 75", got)
	}
	cdf := d.CDF([]uint64{1, 3, 1000})
	if !almost(cdf[0], 25) || !almost(cdf[1], 75) || !almost(cdf[2], 100) {
		t.Errorf("CDF = %v", cdf)
	}
}

func TestDeltaDistributionEmpty(t *testing.T) {
	d := NewDeltaDistribution()
	if d.CumulativeUpTo(10) != 0 {
		t.Error("empty distribution should report 0")
	}
	d.Observe(5) // single observation: still no delta
	if d.Total() != 0 {
		t.Error("one observation produces no delta")
	}
}

func TestPageFrequency(t *testing.T) {
	p := NewPageFrequency()
	// Page 1: 90 misses, page 2: 9, page 3: 1.
	for i := 0; i < 90; i++ {
		p.Observe(1)
	}
	for i := 0; i < 9; i++ {
		p.Observe(2)
	}
	p.Observe(3)
	if p.Total() != 100 || p.Pages() != 3 {
		t.Fatalf("Total=%d Pages=%d", p.Total(), p.Pages())
	}
	if got := p.PagesForCoverage(90); got != 1 {
		t.Errorf("PagesForCoverage(90) = %d, want 1", got)
	}
	if got := p.PagesForCoverage(99); got != 2 {
		t.Errorf("PagesForCoverage(99) = %d, want 2", got)
	}
	if got := p.CoverageOfTop(2); !almost(got, 99) {
		t.Errorf("CoverageOfTop(2) = %v, want 99", got)
	}
	top := p.TopPages(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("TopPages = %v", top)
	}
	if got := p.TopPages(10); len(got) != 3 {
		t.Errorf("TopPages(10) = %v, want all 3", got)
	}
}

func TestPageFrequencyEmpty(t *testing.T) {
	p := NewPageFrequency()
	if p.PagesForCoverage(90) != 0 || p.CoverageOfTop(5) != 0 {
		t.Error("empty frequency tracker should report zeros")
	}
}

func TestSuccessorHistogram(t *testing.T) {
	s := NewSuccessorStats()
	// Page 1 -> {2}; page 2 -> {1, 3}; page 3 -> {1}.
	stream := []uint64{1, 2, 1, 2, 3, 1, 2, 3, 1}
	for _, p := range stream {
		s.Observe(p)
	}
	one, two, upTo4, upTo8, more := s.SuccessorHistogram()
	// Pages 1 and 3 have exactly one successor; page 2 has two.
	if !almost(one, 200.0/3) || !almost(two, 100.0/3) {
		t.Errorf("histogram = %v %v %v %v %v", one, two, upTo4, upTo8, more)
	}
	if upTo4 != 0 || upTo8 != 0 || more != 0 {
		t.Errorf("unexpected large-successor buckets: %v %v %v", upTo4, upTo8, more)
	}
}

func TestSuccessorHistogramBuckets(t *testing.T) {
	s := NewSuccessorStats()
	// Give page 100 nine distinct successors -> "more than 8" bucket.
	for i := uint64(0); i < 9; i++ {
		s.Observe(100)
		s.Observe(200 + i)
	}
	_, _, _, _, more := s.SuccessorHistogram()
	if more == 0 {
		t.Error("expected a page in the >8 successors bucket")
	}
}

func TestTopPageSuccessorProbabilities(t *testing.T) {
	s := NewSuccessorStats()
	// Page 1 goes to page 2 with p=0.5, page 3 with p=0.3, page 4 with 0.2.
	stream := []uint64{}
	for i := 0; i < 5; i++ {
		stream = append(stream, 1, 2)
	}
	for i := 0; i < 3; i++ {
		stream = append(stream, 1, 3)
	}
	for i := 0; i < 2; i++ {
		stream = append(stream, 1, 4)
	}
	for _, p := range stream {
		s.Observe(p)
	}
	first, second, third, rest := s.TopPageSuccessorProbabilities(1)
	if !almost(first, 50) || !almost(second, 30) || !almost(third, 20) {
		t.Errorf("probabilities = %v %v %v (rest %v)", first, second, third, rest)
	}
	if rest > 1e-9 {
		t.Errorf("rest = %v, want 0", rest)
	}
}

func TestTopPageSuccessorProbabilitiesEmpty(t *testing.T) {
	s := NewSuccessorStats()
	f, sec, th, rest := s.TopPageSuccessorProbabilities(50)
	if f != 0 || sec != 0 || th != 0 || rest != 0 {
		t.Error("empty stats should report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0, 10)
	h.Add(3, 30)
	h.Add(9, 5)  // clamps to bucket 3
	h.Add(-1, 5) // clamps to bucket 0
	if h.Total() != 50 {
		t.Fatalf("Total = %d", h.Total())
	}
	pct := h.Percentages()
	if !almost(pct[0], 30) || !almost(pct[3], 70) {
		t.Errorf("Percentages = %v", pct)
	}
	empty := NewHistogram(2)
	if p := empty.Percentages(); p[0] != 0 || p[1] != 0 {
		t.Errorf("empty percentages = %v", p)
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(7.61); got != "7.6%" {
		t.Errorf("FormatPct = %q", got)
	}
}
