package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"morrigan/internal/core"
	"morrigan/internal/machine"
	"morrigan/internal/resultstore"
	"morrigan/internal/runner"
	"morrigan/internal/telemetry"
)

// testSubmission is a small two-machine × two-workload sweep every test can
// afford to simulate for real.
func testSubmission(tag string) Submission {
	morr := machine.Default()
	morr.Prefetcher = machine.Morrigan(core.DefaultConfig())
	return Submission{
		Experiment: "svc-test",
		Tag:        tag,
		Machines: []MachineEntry{
			{Config: "baseline", Spec: machine.Default()},
			{Config: "morrigan", Spec: morr},
		},
		Workloads: []string{"qmm-srv-01", "qmm-srv-02"},
		Warmup:    5_000,
		Measure:   20_000,
	}
}

func newTestService(t *testing.T, opt Options) *Service {
	t.Helper()
	if opt.Tenants == nil {
		opt.Tenants = []TenantConfig{{Name: "alice", Token: "tok-alice", MaxQueuedJobs: 64}}
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func waitDone(t *testing.T, s *Service, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, ok := s.Wait(ctx, id)
	if !ok {
		t.Fatalf("campaign %s did not complete: %+v", id, st)
	}
	if st.State != StateDone {
		t.Fatalf("campaign %s state = %s (%s), want done", id, st.State, st.Error)
	}
	return st
}

// TestSubmitProducesCLIIdenticalStats is the service's core parity guarantee:
// a campaign submitted over HTTP yields, job for job, the same statistics as
// running the equivalent jobs directly through the runner (the CLI path).
func TestSubmitProducesCLIIdenticalStats(t *testing.T) {
	s := newTestService(t, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	sub := testSubmission("")
	body, _ := json.Marshal(sub)
	req, _ := http.NewRequest("POST", srv.URL+"/api/v1/campaigns", strings.NewReader(string(body)))
	req.Header.Set("Authorization", "Bearer tok-alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != CampaignID("alice", sub) {
		t.Errorf("campaign id = %s, want the content-derived %s", st.ID, CampaignID("alice", sub))
	}
	if st.JobsTotal != 4 {
		t.Errorf("jobs_total = %d, want 4 (2 machines × 2 workloads)", st.JobsTotal)
	}
	final := waitDone(t, s, st.ID)
	if final.JobsDone != 4 || final.NewlySimulated != 4 {
		t.Errorf("done=%d simulated=%d, want 4/4", final.JobsDone, final.NewlySimulated)
	}

	got, ok := s.Results(st.ID)
	if !ok || len(got) != 4 {
		t.Fatalf("Results: ok=%v n=%d, want 4", ok, len(got))
	}
	jobs, err := s.buildJobs(sub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(context.Background(), jobs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Stats != want[i].Stats {
			t.Errorf("job %d (%s/%s): service stats differ from direct runner stats",
				i, got[i].Job.Config, got[i].Job.Workload)
		}
	}

	// The results endpoint serves the deterministic stats projection.
	req, _ = http.NewRequest("GET", srv.URL+"/api/v1/campaigns/"+st.ID+"/results?format=stats", nil)
	req.Header.Set("Authorization", "Bearer tok-alice")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d, want 200", resp.StatusCode)
	}
	var recs []statsRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("stats records = %d, want 4", len(recs))
	}
}

// TestDuplicateSubmissionReturnsExistingCampaign: identical content from the
// same tenant maps to one campaign — the second submit is a read, not work.
func TestDuplicateSubmissionReturnsExistingCampaign(t *testing.T) {
	s := newTestService(t, Options{})
	sub := testSubmission("")
	st1, created, err := s.Submit("tok-alice", sub)
	if err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	st2, created, err := s.Submit("tok-alice", sub)
	if err != nil || created {
		t.Fatalf("duplicate submit: created=%v err=%v, want existing campaign", created, err)
	}
	if st1.ID != st2.ID {
		t.Errorf("duplicate got id %s, want %s", st2.ID, st1.ID)
	}
	u, _ := s.TenantUsage("tok-alice")
	if u.Campaigns != 1 {
		t.Errorf("campaigns = %d after duplicate submit, want 1", u.Campaigns)
	}
	// A different tag is a different campaign by design.
	st3, created, err := s.Submit("tok-alice", testSubmission("other"))
	if err != nil || !created || st3.ID == st1.ID {
		t.Errorf("tagged submit: id=%s created=%v err=%v, want a fresh campaign", st3.ID, created, err)
	}
	waitDone(t, s, st1.ID)
	waitDone(t, s, st3.ID)
}

// TestZeroQuotaTenantRejected: a tenant with no job quota is turned away at
// admission with 429, before any job enumeration work is wasted.
func TestZeroQuotaTenantRejected(t *testing.T) {
	s := newTestService(t, Options{Tenants: []TenantConfig{
		{Name: "broke", Token: "tok-broke", MaxQueuedJobs: 0},
	}})
	_, _, err := s.Submit("tok-broke", testSubmission(""))
	var adm *AdmissionError
	if !asAdmission(err, &adm) || adm.Code != 429 {
		t.Fatalf("zero-quota submit err = %v, want 429 AdmissionError", err)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	body, _ := json.Marshal(testSubmission(""))
	req, _ := http.NewRequest("POST", srv.URL+"/api/v1/campaigns", strings.NewReader(string(body)))
	req.Header.Set("Authorization", "Bearer tok-broke")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("HTTP status = %d, want 429", resp.StatusCode)
	}
}

// gateObserver signals the first JobStarted and then holds every job until
// released, pinning a campaign in the running state for as long as a test
// needs it there.
type gateObserver struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (o *gateObserver) CampaignStarted(int) {}
func (o *gateObserver) JobStarted(int, runner.Job, *telemetry.Probe) {
	o.once.Do(func() { close(o.started) })
	<-o.release
}
func (o *gateObserver) JobFinished(int, runner.Result) {}

// TestInstructionBudgetExhaustedMidCampaign: once a tenant's budget is fully
// reserved by a running campaign, new admissions stop — but the running
// campaign is never interrupted and completes normally.
func TestInstructionBudgetExhaustedMidCampaign(t *testing.T) {
	gate := &gateObserver{started: make(chan struct{}), release: make(chan struct{})}
	sub := Submission{
		Machines:  []MachineEntry{{Config: "baseline", Spec: machine.Default()}},
		Workloads: []string{"qmm-srv-01"},
		Warmup:    5_000,
		Measure:   20_000,
	}
	cost := sub.Warmup + sub.Measure
	s := newTestService(t, Options{
		Tenants:  []TenantConfig{{Name: "cap", Token: "tok-cap", MaxQueuedJobs: 64, MaxInstructions: cost}},
		Observer: gate,
	})
	st, created, err := s.Submit("tok-cap", sub)
	if err != nil || !created {
		t.Fatalf("submit: created=%v err=%v", created, err)
	}
	<-gate.started // the campaign is now running, its full budget reserved

	over := sub
	over.Tag = "second"
	_, _, err = s.Submit("tok-cap", over)
	var adm *AdmissionError
	if !asAdmission(err, &adm) || adm.Code != 429 || !strings.Contains(adm.Reason, "instruction budget") {
		t.Fatalf("mid-campaign submit err = %v, want 429 instruction-budget rejection", err)
	}

	close(gate.release)
	final := waitDone(t, s, st.ID)
	if final.NewlySimulated != 1 {
		t.Errorf("running campaign simulated %d jobs, want 1 despite the blocked admission", final.NewlySimulated)
	}
	u, _ := s.TenantUsage("tok-cap")
	if u.UsedInstructions == 0 || u.QueuedReservations != 0 {
		t.Errorf("usage after settle: used=%d reserved=%d, want used>0 reserved=0", u.UsedInstructions, u.QueuedReservations)
	}
	// The budget stays spent: later submissions remain rejected.
	over.Tag = "third"
	if _, _, err := s.Submit("tok-cap", over); !asAdmission(err, &adm) || adm.Code != 429 {
		t.Errorf("post-settle submit err = %v, want 429", err)
	}
}

// TestWarmStoreReplaySimulatesNothing: resubmitting the same spec under a new
// tag against a warm result store serves every job from the store — zero new
// simulation, zero instructions charged.
func TestWarmStoreReplaySimulatesNothing(t *testing.T) {
	rs, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Options{Store: rs})
	cold, _, err := s.Submit("tok-alice", testSubmission("cold"))
	if err != nil {
		t.Fatal(err)
	}
	coldSt := waitDone(t, s, cold.ID)
	if coldSt.NewlySimulated != 4 {
		t.Fatalf("cold run simulated %d jobs, want 4", coldSt.NewlySimulated)
	}

	warm, created, err := s.Submit("tok-alice", testSubmission("warm"))
	if err != nil || !created || warm.ID == cold.ID {
		t.Fatalf("warm submit: id=%s created=%v err=%v, want a distinct campaign", warm.ID, created, err)
	}
	warmSt := waitDone(t, s, warm.ID)
	if warmSt.NewlySimulated != 0 || warmSt.ReusedJobs != 4 {
		t.Errorf("warm run: simulated=%d reused=%d, want 0/4", warmSt.NewlySimulated, warmSt.ReusedJobs)
	}
	if warmSt.SimInstructions != 0 {
		t.Errorf("warm run charged %d instructions, want 0", warmSt.SimInstructions)
	}
	// Both campaigns merged identical stats.
	coldRes, _ := s.Results(cold.ID)
	warmRes, _ := s.Results(warm.ID)
	for i := range coldRes {
		if coldRes[i].Stats != warmRes[i].Stats {
			t.Errorf("job %d: warm-store stats differ from the cold run", i)
		}
	}
}

// TestDrainClosesAdmission: draining answers new submissions with 503 while
// reads keep working, and an idle service drains immediately.
func TestDrainClosesAdmission(t *testing.T) {
	s := newTestService(t, Options{})
	st, _, err := s.Submit("tok-alice", testSubmission(""))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var adm *AdmissionError
	if _, _, err := s.Submit("tok-alice", testSubmission("late")); !asAdmission(err, &adm) || adm.Code != 503 {
		t.Errorf("post-drain submit err = %v, want 503", err)
	}
	if _, ok := s.Results(st.ID); !ok {
		t.Error("completed results unavailable after drain")
	}
}

// TestHTTPAuthAndTenantIsolation: no token and bad tokens get 401; one
// tenant's campaign ids do not resolve for another tenant.
func TestHTTPAuthAndTenantIsolation(t *testing.T) {
	s := newTestService(t, Options{Tenants: []TenantConfig{
		{Name: "alice", Token: "tok-alice", MaxQueuedJobs: 64},
		{Name: "bob", Token: "tok-bob", MaxQueuedJobs: 64},
	}})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated list status = %d, want 401", resp.StatusCode)
	}

	st, _, err := s.Submit("tok-alice", testSubmission(""))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	req, _ := http.NewRequest("GET", srv.URL+"/api/v1/campaigns/"+st.ID, nil)
	req.Header.Set("Authorization", "Bearer tok-bob")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant status fetch = %d, want 404", resp.StatusCode)
	}
}

// TestSubmissionValidation rejects malformed submissions with 400-class
// admission errors before anything queues.
func TestSubmissionValidation(t *testing.T) {
	s := newTestService(t, Options{})
	cases := []struct {
		name string
		mut  func(*Submission)
	}{
		{"no machines", func(sub *Submission) { sub.Machines = nil }},
		{"no workloads", func(sub *Submission) { sub.Workloads = nil }},
		{"zero measure", func(sub *Submission) { sub.Measure = 0 }},
		{"unknown workload", func(sub *Submission) { sub.Workloads = []string{"no-such-load"} }},
		{"oversized mix", func(sub *Submission) {
			sub.Workloads = []string{strings.Repeat("qmm-srv-01+", 17) + "qmm-srv-02"}
		}},
	}
	for _, tc := range cases {
		sub := testSubmission("")
		tc.mut(&sub)
		_, _, err := s.Submit("tok-alice", sub)
		var adm *AdmissionError
		if !asAdmission(err, &adm) || adm.Code != 400 {
			t.Errorf("%s: err = %v, want 400 AdmissionError", tc.name, err)
		}
	}
}

// TestGaugesCoverTenants: every tenant appears in the labelled gauge set.
func TestGaugesCoverTenants(t *testing.T) {
	s := newTestService(t, Options{Tenants: []TenantConfig{
		{Name: "alice", Token: "tok-alice", MaxQueuedJobs: 64},
		{Name: "bob", Token: "tok-bob", MaxQueuedJobs: 8, MaxInstructions: 1 << 30},
	}})
	tenants := make(map[string]bool)
	quota := false
	for _, g := range s.Gauges() {
		if tn := g.Labels["tenant"]; tn != "" {
			tenants[tn] = true
		}
		if g.Name == "morrigan_service_tenant_instructions_quota" {
			quota = true
		}
	}
	if !tenants["alice"] || !tenants["bob"] {
		t.Errorf("gauge tenants = %v, want alice and bob", tenants)
	}
	if !quota {
		t.Error("bounded tenant missing the instructions_quota gauge")
	}
}

// asAdmission is errors.As without the import noise in call sites.
func asAdmission(err error, target **AdmissionError) bool {
	if err == nil {
		return false
	}
	if adm, ok := err.(*AdmissionError); ok {
		*target = adm
		return true
	}
	return false
}

// TestCampaignIDStability pins the id derivation: ids are content-derived,
// stable across processes, and sensitive to every identity-bearing field.
func TestCampaignIDStability(t *testing.T) {
	a := CampaignID("alice", testSubmission(""))
	if a != CampaignID("alice", testSubmission("")) {
		t.Error("identical submissions derived different ids")
	}
	if !strings.HasPrefix(a, "c-") || len(a) != 18 {
		t.Errorf("id %q, want c-<16 hex>", a)
	}
	if a == CampaignID("bob", testSubmission("")) {
		t.Error("tenant name does not discriminate campaign ids")
	}
	mut := testSubmission("")
	mut.Measure++
	if a == CampaignID("alice", mut) {
		t.Error("measure does not discriminate campaign ids")
	}
}
