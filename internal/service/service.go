// Package service is the multi-tenant job-serving layer over the campaign
// runner: an HTTP API where a client POSTs a campaign submission (a machine
// spec sweep × a workload set at a warmup/measure scale, with an optional
// sampling policy), gets back a content-derived campaign id, watches progress
// over the observability server's SSE stream, and fetches merged results.
//
// Behind the API sits a bounded fair-share queue (round-robin across
// tenants, FIFO within a tenant), per-tenant token auth with admission
// quotas (max queued jobs and a total simulated-instruction budget) and
// usage accounting, and the shared campaign reuse layers: an in-process
// result cache, the durable content-addressed result store, and optionally
// a fabric coordinator so a worker fleet drains the queue. Submitting a
// campaign whose job keys the store already holds simulates nothing — the
// results are served from the store, and the tenant's budget is charged
// only for instructions actually simulated.
//
// One dispatcher goroutine executes campaigns sequentially; the runner
// fans each campaign's jobs out over its own worker pool, so intra-campaign
// parallelism is preserved while cross-tenant scheduling stays fair and
// predictable. Results are merged in deterministic job order, making the
// service's output for a submission byte-identical (modulo wall-clock
// fields) to the equivalent CLI run.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"morrigan/internal/machine"
	"morrigan/internal/obs"
	"morrigan/internal/runner"
	"morrigan/internal/sampling"
	"morrigan/internal/sim"
	"morrigan/internal/telemetry"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// idVersion tags the campaign-id derivation; bump on incompatible changes to
// the canonical submission encoding.
const idVersion = "morrigan/service.CampaignID/v1"

// TenantConfig declares one tenant: its bearer token and admission quotas.
type TenantConfig struct {
	// Name labels the tenant in gauges, usage accounting and logs.
	Name string `json:"name"`
	// Token is the tenant's bearer token (Authorization: Bearer <token>).
	Token string `json:"token"`
	// MaxQueuedJobs bounds the tenant's jobs sitting in queued or running
	// campaigns. A tenant with zero capacity is rejected at admission.
	MaxQueuedJobs int `json:"max_queued_jobs"`
	// MaxInstructions is the tenant's total simulated-instruction budget
	// across all campaigns (0 = unlimited). Admission reserves each
	// campaign's worst-case cost (every job simulating in full); completion
	// settles the reservation down to what actually simulated, so
	// store-served jobs cost nothing.
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
}

// Options configures a Service.
type Options struct {
	// Tenants declares who may submit. At least one is required.
	Tenants []TenantConfig
	// MaxQueuedCampaigns bounds campaigns waiting for the dispatcher across
	// all tenants (0 = 64). Admission beyond it is rejected with 429.
	MaxQueuedCampaigns int
	// MaxJobsPerCampaign bounds one submission's enumerated jobs (0 = 1024).
	MaxJobsPerCampaign int
	// Workers bounds each campaign's concurrent simulations
	// (0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, deduplicates identical jobs across campaigns
	// in-process.
	Cache *runner.ResultCache
	// Store, when non-nil, is the durable cross-run result layer: repeat
	// submissions of stored job keys are served without simulating.
	Store runner.ResultStore
	// Remote, when non-nil, delegates keyed jobs to fabric workers instead
	// of simulating locally.
	Remote runner.RemoteExecutor
	// Observer, when non-nil, receives every campaign's lifecycle events —
	// attach an obs.Server here and its /events SSE stream carries the
	// service's job progress.
	Observer runner.Observer
	// NewReader, when non-nil, supplies trace readers (e.g. from a corpus
	// store) instead of live generators.
	NewReader func(workloads.Spec) (trace.Reader, error)
	// Log, when non-nil, receives one line per admission and completion.
	Log io.Writer
}

// Submission is the POST /api/v1/campaigns request body: a machine sweep ×
// workload set at one scale. Its canonical JSON (plus the tenant name)
// derives the campaign id, so identical resubmissions map to the existing
// campaign; Tag lets a client force a distinct campaign for an otherwise
// identical spec (e.g. to demonstrate warm-store replays).
type Submission struct {
	// Experiment labels the campaign in results and SSE events (optional).
	Experiment string `json:"experiment,omitempty"`
	// Tag is an opaque client discriminator mixed into the campaign id.
	Tag string `json:"tag,omitempty"`
	// Machines is the spec sweep: every machine runs every workload entry.
	Machines []MachineEntry `json:"machines"`
	// Workloads are built-in workload names; "a+b+c" colocates up to
	// sim.MaxThreads workloads on one simulated machine's threads.
	Workloads []string `json:"workloads"`
	// Warmup and Measure are instructions per simulation.
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
	// Sampling, when non-nil, runs eligible (single-workload) jobs in
	// representative-interval sampling mode.
	Sampling *sampling.Policy `json:"sampling,omitempty"`
}

// MachineEntry is one machine configuration of a submission's sweep.
type MachineEntry struct {
	// Config labels the configuration in results (optional).
	Config string `json:"config,omitempty"`
	// Spec is the declarative machine under test.
	Spec machine.Spec `json:"spec"`
}

// Campaign states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Status is a campaign's externally visible state.
type Status struct {
	ID              string `json:"id"`
	Tenant          string `json:"tenant"`
	Experiment      string `json:"experiment,omitempty"`
	State           string `json:"state"`
	JobsTotal       int    `json:"jobs_total"`
	JobsDone        int    `json:"jobs_done"`
	NewlySimulated  int    `json:"newly_simulated"`
	ReusedJobs      int    `json:"reused_jobs"`
	SimInstructions uint64 `json:"sim_instructions"`
	Error           string `json:"error,omitempty"`
}

// Usage is one tenant's accounting snapshot.
type Usage struct {
	Tenant             string `json:"tenant"`
	Campaigns          int    `json:"campaigns"`
	QueuedJobs         int    `json:"queued_jobs"`
	MaxQueuedJobs      int    `json:"max_queued_jobs"`
	SimulatedJobs      int    `json:"simulated_jobs"`
	ReusedJobs         int    `json:"reused_jobs"`
	UsedInstructions   uint64 `json:"used_instructions"`
	MaxInstructions    uint64 `json:"max_instructions,omitempty"`
	QueuedReservations uint64 `json:"queued_reservations"`
}

// tenant is one tenant's live accounting state.
type tenant struct {
	cfg        TenantConfig
	queuedJobs int    // jobs in queued or running campaigns
	reserved   uint64 // admission reservations not yet settled
	used       uint64 // instructions actually simulated
	campaigns  int
	simulated  int // jobs that simulated (not reused)
	reused     int // jobs served from cache/journal/store
}

// campaignState is one submitted campaign through its lifecycle.
type campaignState struct {
	id      string
	tenant  *tenant
	sub     Submission
	jobs    []runner.Job
	cost    uint64 // admission reservation: Σ(warmup+measure)
	state   string
	errText string

	jobsDone        int
	newlySimulated  int
	reusedJobs      int
	simInstructions uint64

	results []runner.Result // populated when done
	done    chan struct{}   // closed on completion (done or failed)
}

// AdmissionError is a rejected submission with its HTTP status.
type AdmissionError struct {
	Code   int
	Reason string
}

func (e *AdmissionError) Error() string { return e.Reason }

// Service is the job-serving API core. Construct with New, mount Handler on
// an HTTP server (or call Start), and stop with Drain/Close.
type Service struct {
	opt Options

	mu        sync.Mutex
	byToken   map[string]*tenant
	tenants   []*tenant // declaration order, the round-robin ring
	campaigns map[string]*campaignState
	queues    map[string][]*campaignState // per-tenant FIFO, by tenant name
	queuedN   int
	rrNext    int  // ring index the dispatcher scans from
	draining  bool // admission closed
	running   *campaignState

	wake   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	exited chan struct{} // closed when the dispatcher goroutine returns
}

// New validates the tenant set and starts the dispatcher.
func New(opt Options) (*Service, error) {
	if len(opt.Tenants) == 0 {
		return nil, fmt.Errorf("service: at least one tenant is required")
	}
	if opt.MaxQueuedCampaigns <= 0 {
		opt.MaxQueuedCampaigns = 64
	}
	if opt.MaxJobsPerCampaign <= 0 {
		opt.MaxJobsPerCampaign = 1024
	}
	s := &Service{
		opt:       opt,
		byToken:   make(map[string]*tenant, len(opt.Tenants)),
		campaigns: make(map[string]*campaignState),
		queues:    make(map[string][]*campaignState),
		wake:      make(chan struct{}, 1),
		exited:    make(chan struct{}),
	}
	seen := make(map[string]bool, len(opt.Tenants))
	for _, tc := range opt.Tenants {
		if tc.Name == "" || tc.Token == "" {
			return nil, fmt.Errorf("service: tenant name and token are required")
		}
		if seen[tc.Name] {
			return nil, fmt.Errorf("service: duplicate tenant %q", tc.Name)
		}
		if _, dup := s.byToken[tc.Token]; dup {
			return nil, fmt.Errorf("service: duplicate token for tenant %q", tc.Name)
		}
		seen[tc.Name] = true
		t := &tenant{cfg: tc}
		s.byToken[tc.Token] = t
		s.tenants = append(s.tenants, t)
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	go s.dispatch()
	return s, nil
}

// CampaignID derives the canonical campaign id of a submission for a tenant:
// a content hash over the tenant name and the submission's canonical JSON,
// so the same tenant resubmitting the same spec addresses the same campaign.
func CampaignID(tenantName string, sub Submission) string {
	h := sha256.New()
	io.WriteString(h, idVersion)
	h.Write([]byte{0})
	io.WriteString(h, tenantName)
	h.Write([]byte{0})
	raw, _ := json.Marshal(sub) // struct marshal: deterministic field order
	h.Write(raw)
	return "c-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// buildJobs enumerates the submission's jobs machine-major: every machine
// entry runs every workload entry, in declaration order.
func (s *Service) buildJobs(sub Submission) ([]runner.Job, error) {
	if len(sub.Machines) == 0 {
		return nil, fmt.Errorf("at least one machine is required")
	}
	if len(sub.Workloads) == 0 {
		return nil, fmt.Errorf("at least one workload is required")
	}
	if sub.Measure == 0 {
		return nil, fmt.Errorf("measure must be positive")
	}
	specsOf := make([][]workloads.Spec, len(sub.Workloads))
	for i, name := range sub.Workloads {
		specs, err := parseMix(name)
		if err != nil {
			return nil, err
		}
		specsOf[i] = specs
	}
	var jobs []runner.Job
	for _, m := range sub.Machines {
		if _, err := m.Spec.Build(); err != nil {
			return nil, fmt.Errorf("machine %q: %w", m.Config, err)
		}
		for i, name := range sub.Workloads {
			j := runner.Job{
				Experiment: sub.Experiment,
				Config:     m.Config,
				Workload:   name,
				Machine:    m.Spec,
				Workloads:  specsOf[i],
				Warmup:     sub.Warmup,
				Measure:    sub.Measure,
			}
			if sub.Sampling != nil && len(specsOf[i]) == 1 {
				j.Sampling = sub.Sampling
			}
			jobs = append(jobs, j)
		}
	}
	if len(jobs) > s.opt.MaxJobsPerCampaign {
		return nil, fmt.Errorf("%d jobs exceed the per-campaign limit of %d", len(jobs), s.opt.MaxJobsPerCampaign)
	}
	if sub.Sampling != nil {
		if err := sub.Sampling.Validate(sub.Measure); err != nil {
			return nil, err
		}
	}
	return jobs, nil
}

// Submit admits one submission for the tenant owning token. It returns the
// campaign's status and whether this call created it; a duplicate submission
// (same tenant, same canonical content) returns the existing campaign. A
// *AdmissionError carries the HTTP status for rejections.
func (s *Service) Submit(token string, sub Submission) (Status, bool, error) {
	s.mu.Lock()
	t, ok := s.byToken[token]
	s.mu.Unlock()
	if !ok {
		return Status{}, false, &AdmissionError{Code: 401, Reason: "unknown token"}
	}
	jobs, err := s.buildJobs(sub)
	if err != nil {
		return Status{}, false, &AdmissionError{Code: 400, Reason: err.Error()}
	}
	id := CampaignID(t.cfg.Name, sub)
	var cost uint64
	for _, j := range jobs {
		cost += j.Warmup + j.Measure
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if c, dup := s.campaigns[id]; dup {
		return s.statusLocked(c), false, nil
	}
	if s.draining {
		return Status{}, false, &AdmissionError{Code: 503, Reason: "service is draining"}
	}
	if t.cfg.MaxQueuedJobs <= 0 {
		return Status{}, false, &AdmissionError{Code: 429,
			Reason: fmt.Sprintf("tenant %s has no job quota", t.cfg.Name)}
	}
	if t.queuedJobs+len(jobs) > t.cfg.MaxQueuedJobs {
		return Status{}, false, &AdmissionError{Code: 429,
			Reason: fmt.Sprintf("quota exceeded: %d queued + %d submitted > %d allowed",
				t.queuedJobs, len(jobs), t.cfg.MaxQueuedJobs)}
	}
	if t.cfg.MaxInstructions > 0 && t.used+t.reserved+cost > t.cfg.MaxInstructions {
		return Status{}, false, &AdmissionError{Code: 429,
			Reason: fmt.Sprintf("instruction budget exceeded: %d used + %d reserved + %d submitted > %d allowed",
				t.used, t.reserved, cost, t.cfg.MaxInstructions)}
	}
	if s.queuedN >= s.opt.MaxQueuedCampaigns {
		return Status{}, false, &AdmissionError{Code: 429,
			Reason: fmt.Sprintf("queue full (%d campaigns)", s.queuedN)}
	}

	c := &campaignState{
		id: id, tenant: t, sub: sub, jobs: jobs, cost: cost,
		state: StateQueued, done: make(chan struct{}),
	}
	s.campaigns[id] = c
	s.queues[t.cfg.Name] = append(s.queues[t.cfg.Name], c)
	s.queuedN++
	t.queuedJobs += len(jobs)
	t.reserved += cost
	t.campaigns++
	s.logf("service: %s admitted %s (%d jobs, %d instr reserved)", t.cfg.Name, id, len(jobs), cost)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return s.statusLocked(c), true, nil
}

// dispatch is the single dispatcher goroutine: it serves tenants round-robin
// (FIFO within each tenant) and runs one campaign at a time; the runner
// parallelises jobs within the campaign.
func (s *Service) dispatch() {
	defer close(s.exited)
	for {
		c := s.next()
		if c == nil {
			select {
			case <-s.wake:
				continue
			case <-s.ctx.Done():
				return
			}
		}
		s.run(c)
	}
}

// next pops the next campaign in fair-share order, or nil if none is queued.
func (s *Service) next() *campaignState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.tenants); i++ {
		t := s.tenants[(s.rrNext+i)%len(s.tenants)]
		q := s.queues[t.cfg.Name]
		if len(q) == 0 {
			continue
		}
		c := q[0]
		s.queues[t.cfg.Name] = q[1:]
		s.queuedN--
		s.rrNext = (s.rrNext + i + 1) % len(s.tenants)
		c.state = StateRunning
		s.running = c
		return c
	}
	return nil
}

// run executes one campaign through the runner and settles the tenant's
// reservation to what actually simulated.
func (s *Service) run(c *campaignState) {
	ropt := runner.Options{
		Workers:   s.opt.Workers,
		Cache:     s.opt.Cache,
		Store:     s.opt.Store,
		Remote:    s.opt.Remote,
		NewReader: s.opt.NewReader,
		Observer:  &campaignObserver{svc: s, c: c, next: s.opt.Observer},
	}
	results, err := runner.Run(s.ctx, c.jobs, ropt)

	s.mu.Lock()
	defer s.mu.Unlock()
	c.results = results
	if err != nil {
		c.state = StateFailed
		c.errText = err.Error()
	} else {
		c.state = StateDone
	}
	t := c.tenant
	t.queuedJobs -= len(c.jobs)
	t.reserved -= c.cost
	t.used += c.simInstructions
	t.simulated += c.newlySimulated
	t.reused += c.reusedJobs
	s.running = nil
	close(c.done)
	s.logf("service: %s %s %s (%d simulated, %d reused, %d instr)",
		t.cfg.Name, c.id, c.state, c.newlySimulated, c.reusedJobs, c.simInstructions)
}

// parseMix resolves one submission workload entry: a built-in workload name,
// or "a+b+c" colocating up to sim.MaxThreads workloads on one machine.
func parseMix(entry string) ([]workloads.Spec, error) {
	names := strings.Split(entry, "+")
	if len(names) > sim.MaxThreads {
		return nil, fmt.Errorf("workload %q colocates %d threads; the machine supports %d", entry, len(names), sim.MaxThreads)
	}
	specs := make([]workloads.Spec, len(names))
	for i, name := range names {
		w, ok := workloads.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		specs[i] = w
	}
	return specs, nil
}

// campaignObserver tracks one campaign's per-job progress and usage, then
// forwards every event to the attached observer (e.g. the obs SSE server).
type campaignObserver struct {
	svc  *Service
	c    *campaignState
	next runner.Observer
}

var _ runner.Observer = (*campaignObserver)(nil)

func (o *campaignObserver) CampaignStarted(total int) {
	if o.next != nil {
		o.next.CampaignStarted(total)
	}
}

func (o *campaignObserver) JobStarted(index int, job runner.Job, probe *telemetry.Probe) {
	if o.next != nil {
		o.next.JobStarted(index, job, probe)
	}
}

// JobFinished accrues the campaign's accounting under the service lock, then
// forwards.
func (o *campaignObserver) JobFinished(index int, res runner.Result) {
	o.svc.mu.Lock()
	o.c.jobsDone++
	o.c.simInstructions += res.SimInstructions
	if res.Err == nil {
		if res.Reused == "" {
			o.c.newlySimulated++
		} else {
			o.c.reusedJobs++
		}
	}
	o.svc.mu.Unlock()
	if o.next != nil {
		o.next.JobFinished(index, res)
	}
}

// Wait blocks until the campaign completes or ctx is cancelled; it reports
// whether the campaign finished.
func (s *Service) Wait(ctx context.Context, id string) (Status, bool) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, false
	}
	select {
	case <-c.done:
		return s.CampaignStatus(id)
	case <-ctx.Done():
		st, _ := s.CampaignStatus(id)
		return st, false
	}
}

// CampaignStatus returns a campaign's status by id.
func (s *Service) CampaignStatus(id string) (Status, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return Status{}, false
	}
	return s.statusLocked(c), true
}

// statusLocked renders one campaign's status; callers hold s.mu.
func (s *Service) statusLocked(c *campaignState) Status {
	return Status{
		ID:              c.id,
		Tenant:          c.tenant.cfg.Name,
		Experiment:      c.sub.Experiment,
		State:           c.state,
		JobsTotal:       len(c.jobs),
		JobsDone:        c.jobsDone,
		NewlySimulated:  c.newlySimulated,
		ReusedJobs:      c.reusedJobs,
		SimInstructions: c.simInstructions,
		Error:           c.errText,
	}
}

// Results returns a completed campaign's results in deterministic job order.
// ok is false while the campaign is unknown or not yet done.
func (s *Service) Results(id string) ([]runner.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok || (c.state != StateDone && c.state != StateFailed) {
		return nil, false
	}
	return c.results, true
}

// TenantUsage returns the usage snapshot of the tenant owning token.
func (s *Service) TenantUsage(token string) (Usage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byToken[token]
	if !ok {
		return Usage{}, false
	}
	return s.usageLocked(t), true
}

func (s *Service) usageLocked(t *tenant) Usage {
	return Usage{
		Tenant:             t.cfg.Name,
		Campaigns:          t.campaigns,
		QueuedJobs:         t.queuedJobs,
		MaxQueuedJobs:      t.cfg.MaxQueuedJobs,
		SimulatedJobs:      t.simulated,
		ReusedJobs:         t.reused,
		UsedInstructions:   t.used,
		MaxInstructions:    t.cfg.MaxInstructions,
		QueuedReservations: t.reserved,
	}
}

// tenantOf resolves a token to its tenant, for the HTTP layer.
func (s *Service) tenantOf(token string) (*tenant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byToken[token]
	return t, ok
}

// list returns the tenant's campaigns' statuses, by id.
func (s *Service) list(t *tenant) []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Status
	for _, c := range s.campaigns {
		if c.tenant == t {
			out = append(out, s.statusLocked(c))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Gauges publishes per-tenant labelled gauges for the obs /metrics
// exposition (register with obs.Server.AddGaugeSource).
func (s *Service) Gauges() []obs.Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	var gs []obs.Gauge
	for _, t := range s.tenants {
		labels := map[string]string{"tenant": t.cfg.Name}
		gs = append(gs,
			obs.Gauge{Name: "morrigan_service_tenant_queued_jobs",
				Help: "Jobs in queued or running campaigns, by tenant.", Labels: labels, Value: float64(t.queuedJobs)},
			obs.Gauge{Name: "morrigan_service_tenant_campaigns_total",
				Help: "Campaigns admitted since start, by tenant.", Labels: labels, Value: float64(t.campaigns)},
			obs.Gauge{Name: "morrigan_service_tenant_jobs_simulated_total",
				Help: "Jobs that actually simulated, by tenant.", Labels: labels, Value: float64(t.simulated)},
			obs.Gauge{Name: "morrigan_service_tenant_jobs_reused_total",
				Help: "Jobs served from the cache, journal or result store, by tenant.", Labels: labels, Value: float64(t.reused)},
			obs.Gauge{Name: "morrigan_service_tenant_instructions_used",
				Help: "Simulated instructions charged against the tenant's budget.", Labels: labels, Value: float64(t.used)},
		)
		if t.cfg.MaxInstructions > 0 {
			gs = append(gs, obs.Gauge{Name: "morrigan_service_tenant_instructions_quota",
				Help: "The tenant's simulated-instruction budget.", Labels: labels, Value: float64(t.cfg.MaxInstructions)})
		}
	}
	gs = append(gs, obs.Gauge{Name: "morrigan_service_queued_campaigns",
		Help: "Campaigns waiting for the dispatcher.", Value: float64(s.queuedN)})
	return gs
}

// Drain closes admission (new submissions get 503) and waits — bounded by
// ctx — until the in-flight campaign, if any, completes. Queued campaigns
// stay queued; a subsequent Close abandons them.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	c := s.running
	s.mu.Unlock()
	if c == nil {
		return nil
	}
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain interrupted with campaign %s still running: %w", c.id, ctx.Err())
	}
}

// Close cancels the dispatcher (interrupting any in-flight campaign) and
// waits for it to exit. Use Drain first for a graceful stop.
func (s *Service) Close() {
	s.cancel()
	<-s.exited
}

// Draining reports whether admission is closed.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Service) logf(format string, args ...any) {
	if s.opt.Log != nil {
		fmt.Fprintf(s.opt.Log, format+"\n", args...)
	}
}
