package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"morrigan/internal/runner"
)

// Handler returns the service's HTTP API:
//
//	POST /api/v1/campaigns              submit a campaign (202 created, 200 duplicate)
//	GET  /api/v1/campaigns              list the tenant's campaigns
//	GET  /api/v1/campaigns/{id}         one campaign's status
//	GET  /api/v1/campaigns/{id}/results merged results (JSON campaign; ?format=csv|stats)
//	GET  /api/v1/usage                  the tenant's quota and usage accounting
//
// Every route requires "Authorization: Bearer <token>". Mount beside an
// obs.Server handler to add /events (SSE progress), /metrics and /healthz
// on the same listener.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("GET /api/v1/usage", s.handleUsage)
	return mux
}

// httpError is the JSON error body every non-2xx response carries.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// bearer extracts the request's bearer token ("" if absent).
func bearer(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return ""
	}
	return strings.TrimSpace(h[len(prefix):])
}

// authTenant resolves the request's tenant, writing 401 when it cannot.
func (s *Service) authTenant(w http.ResponseWriter, r *http.Request) (*tenant, string, bool) {
	token := bearer(r)
	if token == "" {
		writeError(w, http.StatusUnauthorized, "missing bearer token")
		return nil, "", false
	}
	t, ok := s.tenantOf(token)
	if !ok {
		writeError(w, http.StatusUnauthorized, "unknown token")
		return nil, "", false
	}
	return t, token, true
}

// maxSubmissionBytes bounds a submission body; a machine-spec sweep is a few
// KB — anything near this limit is malformed or hostile.
const maxSubmissionBytes = 1 << 20

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	_, token, ok := s.authTenant(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmissionBytes))
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "decoding submission: %v", err)
		return
	}
	st, created, err := s.Submit(token, sub)
	if err != nil {
		code := http.StatusInternalServerError
		var adm *AdmissionError
		if errors.As(err, &adm) {
			code = adm.Code
		}
		writeError(w, code, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	t, _, ok := s.authTenant(w, r)
	if !ok {
		return
	}
	sts := s.list(t)
	if sts == nil {
		sts = []Status{}
	}
	writeJSON(w, http.StatusOK, sts)
}

// campaignFor resolves {id} to a campaign owned by the request's tenant;
// campaigns of other tenants answer 404, indistinguishable from absent ids.
func (s *Service) campaignFor(w http.ResponseWriter, r *http.Request) (*campaignState, bool) {
	t, _, ok := s.authTenant(w, r)
	if !ok {
		return nil, false
	}
	id := r.PathValue("id")
	s.mu.Lock()
	c, found := s.campaigns[id]
	s.mu.Unlock()
	if !found || c.tenant != t {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return nil, false
	}
	return c, true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	st := s.statusLocked(c)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// statsRecord is the deterministic projection of one result the ?format=stats
// view emits: exactly the fields that are bit-identical across reruns and
// between HTTP and CLI execution of the same jobs.
type statsRecord struct {
	Workload string `json:"workload"`
	Warmup   uint64 `json:"warmup"`
	Measure  uint64 `json:"measure"`
	Stats    any    `json:"stats"`
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaignFor(w, r)
	if !ok {
		return
	}
	results, done := s.Results(c.id)
	if !done {
		writeError(w, http.StatusConflict, "campaign %s is %s; results are available once done", c.id, c.state)
		return
	}
	camp := runner.Campaign{}
	for _, res := range results {
		camp.Records = append(camp.Records, runner.NewRecord(res))
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = camp.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = camp.WriteCSV(w)
	case "stats":
		recs := make([]statsRecord, 0, len(camp.Records))
		for _, rec := range camp.Records {
			recs = append(recs, statsRecord{
				Workload: rec.Workload, Warmup: rec.Warmup, Measure: rec.Measure, Stats: rec.Stats,
			})
		}
		writeJSON(w, http.StatusOK, recs)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (json, csv or stats)", format)
	}
}

func (s *Service) handleUsage(w http.ResponseWriter, r *http.Request) {
	_, token, ok := s.authTenant(w, r)
	if !ok {
		return
	}
	u, _ := s.TenantUsage(token)
	writeJSON(w, http.StatusOK, u)
}
