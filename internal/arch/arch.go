// Package arch defines the architectural primitives shared by every
// component of the simulator: virtual and physical addresses, page and cache
// line geometry, and the x86-64 4-level radix page table index split.
//
// The simulator models a classic x86-64 virtual memory layout: 4 KB base
// pages, 64-byte cache lines, 8-byte page table entries (so one cache line
// holds 8 contiguously-stored PTEs — the "page table locality" the paper's
// spatial prefetching exploits), and a 4-level radix page table whose levels
// are indexed by 9-bit slices of the virtual page number.
package arch

// Address and page geometry constants for x86-64 with 4 KB pages.
const (
	// PageShift is log2 of the base page size.
	PageShift = 12
	// PageSize is the base page size in bytes (4 KB).
	PageSize = 1 << PageShift
	// PageOffsetMask extracts the in-page offset from an address.
	PageOffsetMask = PageSize - 1

	// LineShift is log2 of the cache line size.
	LineShift = 6
	// LineSize is the cache line size in bytes.
	LineSize = 1 << LineShift

	// PTESize is the size of one page table entry in bytes.
	PTESize = 8
	// PTEsPerLine is how many PTEs share one cache line (64/8 = 8).
	PTEsPerLine = LineSize / PTESize
	// PTEsPerPage is how many PTEs one page table page holds (512).
	PTEsPerPage = PageSize / PTESize

	// RadixLevels is the number of page table levels in the default x86-64
	// configuration (PML4, PDP, PD, PT).
	RadixLevels = 4
	// MaxRadixLevels accommodates 5-level paging (PML5).
	MaxRadixLevels = 5
	// RadixBits is the number of VPN bits consumed per radix level.
	RadixBits = 9
	// RadixFanout is the number of entries per page table node (512).
	RadixFanout = 1 << RadixBits

	// VPNBits is the number of significant virtual page number bits
	// (48-bit canonical virtual addresses minus the 12-bit page offset).
	VPNBits = 36
)

// VAddr is a virtual byte address.
type VAddr uint64

// PAddr is a physical byte address.
type PAddr uint64

// VPN is a virtual page number (virtual address >> PageShift).
type VPN uint64

// PFN is a physical frame number (physical address >> PageShift).
type PFN uint64

// Page returns the virtual page number containing v.
func (v VAddr) Page() VPN { return VPN(v >> PageShift) }

// Offset returns the in-page byte offset of v.
func (v VAddr) Offset() uint64 { return uint64(v) & PageOffsetMask }

// Line returns the cache line number containing v (virtual line address).
func (v VAddr) Line() uint64 { return uint64(v) >> LineShift }

// Line returns the cache line number containing p (physical line address).
func (p PAddr) Line() uint64 { return uint64(p) >> LineShift }

// Page returns the physical frame number containing p.
func (p PAddr) Page() PFN { return PFN(p >> PageShift) }

// Addr returns the base virtual address of the page.
func (n VPN) Addr() VAddr { return VAddr(n) << PageShift }

// Addr returns the base physical address of the frame.
func (f PFN) Addr() PAddr { return PAddr(f) << PageShift }

// LineGroup returns the group of PTEsPerLine consecutive VPNs whose leaf
// PTEs share one cache line with n's PTE. The returned value is the first
// VPN of the group; the group spans [base, base+PTEsPerLine).
func (n VPN) LineGroup() VPN { return n &^ (PTEsPerLine - 1) }

// RadixIndex returns the page-table index of the VPN at the given level.
// Level 0 is the root (PML4) and level RadixLevels-1 is the leaf (PT).
func (n VPN) RadixIndex(level int) uint64 {
	shift := uint((RadixLevels - 1 - level) * RadixBits)
	return (uint64(n) >> shift) & (RadixFanout - 1)
}

// Translate combines a physical frame with the page offset of a virtual
// address to produce the physical address of the access.
func Translate(f PFN, v VAddr) PAddr {
	return f.Addr() | PAddr(v.Offset())
}

// Level names the memory hierarchy level that served an access.
type Level int

// Memory hierarchy levels in increasing distance from the core.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelDRAM
	numLevels
)

// NumLevels is the number of distinct memory hierarchy levels.
const NumLevels = int(numLevels)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	}
	return "invalid"
}

// Cycle is a simulation timestamp in core clock cycles.
type Cycle uint64

// ThreadID identifies a hardware thread (SMT context). The simulator
// supports up to two threads per core, per the paper's SMT study.
type ThreadID uint8
