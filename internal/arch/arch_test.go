package arch

import (
	"testing"
	"testing/quick"
)

func TestPageGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if LineSize != 64 {
		t.Fatalf("LineSize = %d, want 64", LineSize)
	}
	if PTEsPerLine != 8 {
		t.Fatalf("PTEsPerLine = %d, want 8", PTEsPerLine)
	}
	if PTEsPerPage != 512 {
		t.Fatalf("PTEsPerPage = %d, want 512", PTEsPerPage)
	}
	if RadixFanout != 512 {
		t.Fatalf("RadixFanout = %d, want 512", RadixFanout)
	}
}

func TestVAddrPageOffset(t *testing.T) {
	v := VAddr(0x7f32_1234_5678)
	if got := v.Page(); got != VPN(0x7f32_1234_5678>>12) {
		t.Errorf("Page() = %#x", got)
	}
	if got := v.Offset(); got != 0x678 {
		t.Errorf("Offset() = %#x, want 0x678", got)
	}
	if got := v.Line(); got != 0x7f32_1234_5678>>6 {
		t.Errorf("Line() = %#x", got)
	}
}

func TestVPNAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		n := VPN(raw & ((1 << VPNBits) - 1))
		return n.Addr().Page() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadixIndexReassembles(t *testing.T) {
	f := func(raw uint64) bool {
		n := VPN(raw & ((1 << VPNBits) - 1))
		var back uint64
		for level := 0; level < RadixLevels; level++ {
			back = back<<RadixBits | n.RadixIndex(level)
		}
		return VPN(back) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadixIndexLevels(t *testing.T) {
	// VPN with a distinct 9-bit value in each level slice.
	n := VPN(1<<27 | 2<<18 | 3<<9 | 4)
	want := []uint64{1, 2, 3, 4}
	for level, w := range want {
		if got := n.RadixIndex(level); got != w {
			t.Errorf("RadixIndex(%d) = %d, want %d", level, got, w)
		}
	}
}

func TestLineGroup(t *testing.T) {
	for _, tc := range []struct {
		vpn, want VPN
	}{
		{0xA7, 0xA0},
		{0xA8, 0xA8},
		{0, 0},
		{7, 0},
		{8, 8},
		{0xFFF, 0xFF8},
	} {
		if got := tc.vpn.LineGroup(); got != tc.want {
			t.Errorf("LineGroup(%#x) = %#x, want %#x", tc.vpn, got, tc.want)
		}
	}
}

func TestLineGroupProperties(t *testing.T) {
	f := func(raw uint64) bool {
		n := VPN(raw & ((1 << VPNBits) - 1))
		g := n.LineGroup()
		// Base is aligned, contains n, and is stable under re-grouping.
		return g%PTEsPerLine == 0 && g <= n && n < g+PTEsPerLine && g.LineGroup() == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslate(t *testing.T) {
	p := Translate(PFN(0x123), VAddr(0xABC_DEF))
	if p != PAddr(0x123<<12|0xDEF) {
		t.Fatalf("Translate = %#x", p)
	}
}

func TestLevelString(t *testing.T) {
	names := map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC", LevelDRAM: "DRAM",
		Level(99): "invalid",
	}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", l, got, want)
		}
	}
	if NumLevels != 4 {
		t.Errorf("NumLevels = %d, want 4", NumLevels)
	}
}
