package experiments

import (
	"strconv"
	"strings"
	"testing"

	"morrigan/internal/runner"
)

// tinyOptions keeps experiment tests fast; experiment correctness at scale
// is exercised by the benchmarks and cmd/experiments.
func tinyOptions() Options {
	return Options{Warmup: 50_000, Measure: 250_000, MaxWorkloads: 3, SMTPairs: 2}
}

func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order has %d entries, Registry %d", len(Order), len(Registry))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestQMMSampling(t *testing.T) {
	o := Options{MaxWorkloads: 5}
	specs := o.qmm()
	if len(specs) != 5 {
		t.Fatalf("sampled %d workloads", len(specs))
	}
	if specs[0].Name == specs[4].Name {
		t.Fatal("sampling did not span the suite")
	}
	o = Options{}
	if len(o.qmm()) != 45 {
		t.Fatal("unlimited sampling should return all 45")
	}
	o = Options{MaxWorkloads: 100}
	if len(o.qmm()) != 45 {
		t.Fatal("oversized limit should clamp to 45")
	}
}

// TestQMMSamplingEveryCount is the regression test for the MaxWorkloads == 1
// panic (step = (len-1)/(max-1) divided by zero): every count from 1 to the
// full suite must sample exactly that many workloads, in suite order, without
// duplicates or out-of-range indices.
func TestQMMSamplingEveryCount(t *testing.T) {
	all := Options{}.qmm()
	for max := 1; max <= len(all); max++ {
		specs := Options{MaxWorkloads: max}.qmm()
		if len(specs) != max {
			t.Fatalf("MaxWorkloads %d sampled %d workloads", max, len(specs))
		}
		seen := make(map[string]bool, max)
		for _, s := range specs {
			if seen[s.Name] {
				t.Fatalf("MaxWorkloads %d sampled %q twice", max, s.Name)
			}
			seen[s.Name] = true
		}
		if specs[0].Name != all[0].Name {
			t.Errorf("MaxWorkloads %d does not start at the suite's first workload", max)
		}
		if max > 1 && specs[max-1].Name != all[len(all)-1].Name {
			t.Errorf("MaxWorkloads %d does not end at the suite's last workload", max)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "test",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: test ==", "a", "bb", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("Table1 rows = %d", len(tab.Rows))
	}
}

// parsePct extracts a float from "12.3%".
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestFig3SuiteContrast(t *testing.T) {
	o := tinyOptions()
	o.MaxWorkloads = 2
	tab, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// QMM-like must have far higher iSTLB MPKI than SPEC-like.
	specMPKI, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	qmmMPKI, _ := strconv.ParseFloat(tab.Rows[1][3], 64)
	if qmmMPKI <= specMPKI*5 {
		t.Fatalf("QMM (%v) should dwarf SPEC (%v) iSTLB MPKI", qmmMPKI, specMPKI)
	}
}

func TestFig9OrderingHolds(t *testing.T) {
	o := tinyOptions()
	tab, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		byName[r[0]] = parsePct(t, r[1])
	}
	// The paper's key orderings on this figure.
	if byName["Perfect iSTLB"] <= byName["MP (orig 128e)"] {
		t.Error("Perfect should dominate bounded MP")
	}
	if byName["MP-unbounded-inf"] <= byName["MP (orig 128e)"] {
		t.Error("unbounded MP should dominate bounded MP")
	}
}

func TestFig15MorriganWins(t *testing.T) {
	// Ordering needs warmed prediction tables: run a larger interval than
	// the other experiment smoke tests.
	o := tinyOptions()
	o.Warmup, o.Measure = 200_000, 1_200_000
	tab, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		byName[r[0]] = parsePct(t, r[1])
	}
	for _, rival := range []string{"SP", "DP (ISO)", "ASP (ISO)", "MP (ISO)"} {
		if byName["Morrigan"] <= byName[rival] {
			t.Errorf("Morrigan (%v%%) should beat %s (%v%%)", byName["Morrigan"], rival, byName[rival])
		}
	}
}

func TestFig13CoverageGrowsWithBudget(t *testing.T) {
	o := tinyOptions()
	o.MaxWorkloads = 2
	tab, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	first := parsePct(t, tab.Rows[0][1])
	last := parsePct(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Fatalf("coverage did not grow with budget: %v .. %v", first, last)
	}
}

func TestFig16DemandRefsCut(t *testing.T) {
	o := tinyOptions()
	o.Warmup, o.Measure = 200_000, 1_200_000
	tab, err := Fig16(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	mor := parsePct(t, byName["Morrigan"][1])
	mp := parsePct(t, byName["MP (ISO)"][1])
	if mor >= mp {
		t.Fatalf("Morrigan demand refs (%v%%) should be below MP's (%v%%)", mor, mp)
	}
	if mor >= 95 {
		t.Fatalf("Morrigan demand refs = %v%%, expected a real cut", mor)
	}
}

func TestFig20SMT(t *testing.T) {
	o := tinyOptions()
	tab, err := Fig20(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byName := map[string]float64{}
	for _, r := range tab.Rows {
		byName[r[0]] = parsePct(t, r[1])
	}
	if byName["Morrigan(2x)+FNL+MMA"] <= 0 {
		t.Error("combined SMT configuration should speed up")
	}
}

// TestParallelCampaignDeterministic is the campaign acceptance check at the
// experiment layer: the rendered table must be byte-identical whether the
// simulations ran serially or over a worker pool, and the recorder must
// collect one record per simulation either way.
func TestParallelCampaignDeterministic(t *testing.T) {
	render := func(jobs int) (string, int) {
		o := tinyOptions()
		o.MaxWorkloads = 2
		o.Jobs = jobs
		var rec runner.Recorder
		o.Record = &rec
		tab, err := Fig4(o)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tab.Render(&sb)
		return sb.String(), rec.Len()
	}
	serial, nSerial := render(1)
	parallel, nParallel := render(3)
	if serial != parallel {
		t.Errorf("rendered table differs between -jobs 1 and -jobs 3:\n%s\n---\n%s", serial, parallel)
	}
	if nSerial != 2 || nParallel != 2 {
		t.Errorf("recorder lengths = %d, %d, want 2 each", nSerial, nParallel)
	}
}

func TestOptionsPresets(t *testing.T) {
	for _, o := range []Options{DefaultOptions(), QuickOptions(), FullOptions()} {
		if o.Measure == 0 || o.Warmup == 0 {
			t.Errorf("preset with zero scale: %+v", o)
		}
	}
	if QuickOptions().Measure >= DefaultOptions().Measure {
		t.Error("quick should be smaller than default")
	}
	if FullOptions().Measure <= DefaultOptions().Measure {
		t.Error("full should be larger than default")
	}
}

func TestSubstrateExperiments(t *testing.T) {
	o := tinyOptions()
	o.MaxWorkloads = 2
	for _, id := range []string{"pagetables", "contextswitch", "hugepages", "icacheselect"} {
		tab, err := Registry[id](o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) < 3 {
			t.Errorf("%s: only %d rows", id, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row %v does not match header %v", id, row, tab.Header)
			}
		}
	}
}

// TestResultReuseTableIdentity is the dedup purity check: a sweep sharing
// one result cache across experiments must serve repeated (machine,
// workloads, scale) triples from the cache — strictly fewer simulations
// than job enumerations — while rendering tables byte-identical to an
// uncached run's.
func TestResultReuseTableIdentity(t *testing.T) {
	render := func(tab *Table) string {
		var sb strings.Builder
		tab.Render(&sb)
		return sb.String()
	}
	o := tinyOptions()
	o.MaxWorkloads = 2
	plain, err := Fig15(o)
	if err != nil {
		t.Fatal(err)
	}

	o.Cache = runner.NewResultCache()
	if _, err := Fig9(o); err != nil { // seeds baseline + SP/ASP/DP/MP triples
		t.Fatal(err)
	}
	hitsAfterFig9 := o.Cache.Hits()
	cached, err := Fig15(o) // shares those columns with fig9
	if err != nil {
		t.Fatal(err)
	}
	if o.Cache.Hits() <= hitsAfterFig9 {
		t.Fatalf("fig15 after fig9 hit the shared cache %d times, want > %d",
			o.Cache.Hits(), hitsAfterFig9)
	}
	if got, want := render(cached), render(plain); got != want {
		t.Errorf("cached sweep renders differently:\n--- uncached ---\n%s--- cached ---\n%s", want, got)
	}
}

func TestAblationsRows(t *testing.T) {
	o := tinyOptions()
	o.MaxWorkloads = 2
	tab, err := Ablations(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("ablation rows = %d, want 7", len(tab.Rows))
	}
}
