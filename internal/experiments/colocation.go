package experiments

import (
	"fmt"
	"math"

	"morrigan/internal/sim"
	"morrigan/internal/stats"
	"morrigan/internal/workloads"
)

// colocationWays are the mix widths of the shared-STLB contention study.
var colocationWays = []int{4, 8, 16}

// Colocation extends the paper's 2-way SMT study (Figure 20) to 4/8/16-way
// shared-STLB workload mixes, reporting contention and prefetcher fairness
// against isolated runs of the same workloads. Per (way, configuration) it
// reports the mean shared-machine IPC and iSTLB MPKI, walk-MPKI inflation
// (shared effective-miss MPKI — misses that paid a demand walk rather than
// being served by the prefetch buffer — over the mean isolated effective
// MPKI of the mix), and a fairness index: the min/max ratio across threads
// of each thread's effective-MPKI inflation over its own isolated run
// (1.0 = contention and prefetch coverage degrade every tenant equally;
// lower = some tenants absorb the contention).
func Colocation(o Options) (*Table, error) {
	nMixes := o.SMTPairs / 2
	if nMixes < 1 {
		nMixes = 1
	}
	configs := []contender{
		{"baseline", baseline()},
		{"Morrigan", morrigan()},
	}

	// Draw the mixes for every way, then collect the distinct workloads
	// involved so each gets exactly one isolated run per configuration
	// (the shared cache/result store dedups across experiments too).
	mixes := make(map[int][][]workloads.Spec, len(colocationWays))
	var isolated []workloads.Spec
	seen := map[string]bool{}
	for _, way := range colocationWays {
		ms := workloads.Mixes(nMixes, way, 2021+int64(way))
		mixes[way] = ms
		for _, mix := range ms {
			for _, w := range mix {
				if !seen[w.Name] {
					seen[w.Name] = true
					isolated = append(isolated, w)
				}
			}
		}
	}

	var jobs []simJob
	for _, c := range configs {
		for _, w := range isolated {
			jobs = append(jobs, job(c.name, w, c.spec))
		}
	}
	for _, way := range colocationWays {
		for _, mix := range mixes[way] {
			for _, c := range configs {
				jobs = append(jobs, mixJob(fmt.Sprintf("%s/%d-way", c.name, way), mix, c.spec))
			}
		}
	}
	sts, err := o.campaign("colocation", jobs)
	if err != nil {
		return nil, err
	}

	iso := make(map[string]map[string]sim.Stats, len(configs))
	k := 0
	for _, c := range configs {
		iso[c.name] = make(map[string]sim.Stats, len(isolated))
		for _, w := range isolated {
			iso[c.name][w.Name] = sts[k]
			k++
		}
	}

	t := &Table{
		ID:    "colocation",
		Title: fmt.Sprintf("shared-STLB contention and fairness over %d mixes per way", nMixes),
		Header: []string{"mix", "configuration", "IPC", "iSTLB MPKI",
			"walk-MPKI inflation", "fairness"},
		Notes: []string{
			"walk MPKI: iSTLB misses that paid a demand page walk (not served by the PB), per kilo-instruction",
			"inflation: shared walk MPKI over the mean isolated walk MPKI of the mix's workloads",
			"fairness: min/max across threads of per-thread walk-MPKI inflation vs. that workload alone (1.0 = even degradation)",
		},
	}
	for _, way := range colocationWays {
		type agg struct{ ipc, mpki, infl, fair []float64 }
		accs := make(map[string]*agg, len(configs))
		for _, mix := range mixes[way] {
			for _, c := range configs {
				st := sts[k]
				k++
				a := accs[c.name]
				if a == nil {
					a = &agg{}
					accs[c.name] = a
				}
				a.ipc = append(a.ipc, st.IPC)
				a.mpki = append(a.mpki, st.ISTLBMPKI)

				minInfl, maxInfl := math.Inf(1), math.Inf(-1)
				isoMean := 0.0
				for i, w := range mix {
					isoSt := iso[c.name][w.Name]
					isoMPKI := stats.MPKI(isoSt.ISTLBMisses-isoSt.PBHits, isoSt.Instructions)
					isoMean += isoMPKI
					if isoMPKI == 0 {
						continue // inflation undefined for a walk-free isolated run
					}
					thrMPKI := stats.MPKI(st.ThreadISTLBMisses[i]-st.ThreadPBHits[i], st.ThreadInstructions[i])
					infl := thrMPKI / isoMPKI
					minInfl = math.Min(minInfl, infl)
					maxInfl = math.Max(maxInfl, infl)
				}
				isoMean /= float64(len(mix))
				if isoMean > 0 {
					a.infl = append(a.infl, stats.MPKI(st.ISTLBMisses-st.PBHits, st.Instructions)/isoMean)
				}
				if maxInfl > 0 && !math.IsInf(maxInfl, 1) {
					a.fair = append(a.fair, minInfl/maxInfl)
				}
			}
		}
		for _, c := range configs {
			a := accs[c.name]
			t.AddRow(fmt.Sprintf("%d-way", way), c.name,
				f2(mean(a.ipc)), f2(mean(a.mpki)), f2(mean(a.infl)), f2(mean(a.fair)))
		}
	}
	return t, nil
}

// mean is the arithmetic mean; 0 for an empty sample.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
