package experiments

import (
	"fmt"

	"morrigan/internal/machine"
	"morrigan/internal/stats"
)

// PageTables evaluates Morrigan over the alternative page-table
// organisations of Section 4.3: 5-level radix paging (the extra level can
// lengthen walks, potentially increasing Morrigan's gains) and a clustered
// hashed page table (which preserves page table locality, so Morrigan
// "operates the same").
func PageTables(o Options) (*Table, error) {
	type variant struct {
		name string
		kind string
	}
	variants := []variant{
		{"radix-4 (default)", "radix-4"},
		{"radix-5 (PML5)", "radix-5"},
		{"hashed (clustered)", "hashed"},
	}
	t := &Table{
		ID:     "pagetables",
		Title:  "Morrigan across page-table organisations (Section 4.3)",
		Header: []string{"page table", "base iWalk lat", "refs/walk", "Morrigan speedup", "coverage"},
		Notes: []string{
			"paper: Morrigan is compatible with 5-level paging (extra level may lengthen walks)",
			"paper: hashed page tables preserve page table locality, so Morrigan operates the same",
		},
	}
	specs := o.qmm()
	var jobs []simJob
	for _, v := range variants {
		base := machine.Default()
		base.PageTable = v.kind
		mor := morrigan()
		mor.PageTable = v.kind
		for _, w := range specs {
			jobs = append(jobs,
				job(v.name+" baseline", w, base),
				job(v.name+" Morrigan", w, mor))
		}
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, v := range variants {
		var speedups, cov, lat, rpw []float64
		for range specs {
			bst, mst := sts[k], sts[k+1]
			k += 2
			speedups = append(speedups, stats.Speedup(uint64(bst.Cycles), uint64(mst.Cycles)))
			cov = append(cov, stats.Percent(mst.PBHits, mst.ISTLBMisses))
			lat = append(lat, bst.AvgIWalkLatency)
			rpw = append(rpw, bst.RefsPerWalk)
		}
		t.AddRow(v.name,
			fmt.Sprintf("%.1f", stats.Mean(lat)),
			fmt.Sprintf("%.2f", stats.Mean(rpw)),
			pct(stats.GeoMeanSpeedup(speedups)),
			pct(stats.Mean(cov)))
	}
	return t, nil
}

// ContextSwitch measures Morrigan under periodic context switches (Section
// 4.3: the prediction tables are flushed on a switch, but their small size
// means they refill quickly).
func ContextSwitch(o Options) (*Table, error) {
	intervals := []uint64{0, 1_000_000, 250_000, 100_000}
	t := &Table{
		ID:     "contextswitch",
		Title:  "Morrigan under periodic context switches (all translation state flushed)",
		Header: []string{"switch interval", "base iSTLB MPKI", "Morrigan speedup", "coverage"},
		Notes: []string{
			"paper: prediction tables are flushed on context switches and refill quickly",
		},
	}
	specs := o.qmm()
	var jobs []simJob
	for _, interval := range intervals {
		label := fmt.Sprintf("cs=%d", interval)
		base := machine.Default()
		base.ContextSwitchInterval = interval
		mor := morrigan()
		mor.ContextSwitchInterval = interval
		for _, w := range specs {
			jobs = append(jobs,
				job(label+" baseline", w, base),
				job(label+" Morrigan", w, mor))
		}
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, interval := range intervals {
		var speedups, cov, mpki []float64
		for range specs {
			bst, mst := sts[k], sts[k+1]
			k += 2
			speedups = append(speedups, stats.Speedup(uint64(bst.Cycles), uint64(mst.Cycles)))
			cov = append(cov, stats.Percent(mst.PBHits, mst.ISTLBMisses))
			mpki = append(mpki, bst.ISTLBMPKI)
		}
		label := "none"
		if interval > 0 {
			label = fmt.Sprintf("every %dk instr", interval/1000)
		}
		t.AddRow(label, f2(stats.Mean(mpki)), pct(stats.GeoMeanSpeedup(speedups)), pct(stats.Mean(cov)))
	}
	return t, nil
}

// HugePages reproduces the paper's Section 5 argument: transparent 2 MB
// pages for data collapse data-side STLB misses, but code stays on 4 KB
// pages (there is no transparent huge page support for code), so the
// instruction-side bottleneck — and Morrigan's opportunity — remains,
// especially under colocation.
func HugePages(o Options) (*Table, error) {
	t := &Table{
		ID:     "hugepages",
		Title:  "Transparent 2MB data pages vs the instruction bottleneck",
		Header: []string{"configuration", "iSTLB MPKI", "dSTLB MPKI", "Morrigan speedup"},
		Notes: []string{
			"paper Figure 2 measures 0.6-2.1 iSTLB MPKI with THP data + libhugetlbfs code;",
			"paper Section 5: huge pages are not a stop-gap for instruction translation",
		},
	}
	type mode struct {
		name string
		huge bool
		smt  bool
	}
	modes := []mode{
		{"4KB data, single thread", false, false},
		{"2MB data, single thread", true, false},
		{"2MB data, SMT colocation", true, true},
	}
	qmm := o.qmm()
	var jobs []simJob
	for _, m := range modes {
		base := machine.Default()
		base.HugeDataPages = m.huge
		mor := morrigan()
		mor.HugeDataPages = m.huge
		for i, w := range qmm {
			if m.smt {
				other := qmm[(i+len(qmm)/2)%len(qmm)]
				jobs = append(jobs,
					pairJob(m.name+" baseline", w, other, base),
					pairJob(m.name+" Morrigan", w, other, mor))
			} else {
				jobs = append(jobs,
					job(m.name+" baseline", w, base),
					job(m.name+" Morrigan", w, mor))
			}
		}
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, m := range modes {
		var imp, dmp, spd []float64
		for range qmm {
			bst, mst := sts[k], sts[k+1]
			k += 2
			imp = append(imp, bst.ISTLBMPKI)
			dmp = append(dmp, bst.DSTLBMPKI)
			spd = append(spd, stats.Speedup(uint64(bst.Cycles), uint64(mst.Cycles)))
		}
		t.AddRow(m.name, f2(stats.Mean(imp)), f2(stats.Mean(dmp)), pct(stats.GeoMeanSpeedup(spd)))
	}
	return t, nil
}

// ICacheSelection reproduces the Section 3.5 selection study: the three
// IPC-1 top performers (EPI, FNL+MMA, D-Jolt) evaluated with instruction
// address translation modelled; the paper finds FNL+MMA strongest under
// translation and carries it forward to Sections 6.5/6.6.
func ICacheSelection(o Options) (*Table, error) {
	prefs := []struct {
		name string
		ic   machine.ICacheSpec
	}{
		{"EPI", machine.EPI()},
		{"FNL+MMA", machine.FNLMMA()},
		{"D-Jolt", machine.DJolt()},
	}
	t := &Table{
		ID:     "icacheselect",
		Title:  "IPC-1 top performers with address translation modelled (geomean speedup vs next-line)",
		Header: []string{"prefetcher", "speedup", "L1I MPKI", "x-page walks"},
		Notes: []string{
			"paper Section 3.5: FNL+MMA outperforms the other IPC-1 prefetchers once translation is considered",
		},
	}
	specs := o.qmm()
	var jobs []simJob
	for _, p := range prefs {
		m := machine.Default()
		m.ICachePrefetcher = p.ic
		m.ICacheTLBCost = true
		for _, w := range specs {
			jobs = append(jobs,
				job(p.name+" baseline", w, baseline()),
				job(p.name, w, m))
		}
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, p := range prefs {
		var spd, mpki []float64
		var xwalks uint64
		for range specs {
			base, st := sts[k], sts[k+1]
			k += 2
			spd = append(spd, stats.Speedup(uint64(base.Cycles), uint64(st.Cycles)))
			mpki = append(mpki, st.L1IMPKI)
			xwalks += st.ICacheXPageWalks
		}
		t.AddRow(p.name, pct(stats.GeoMeanSpeedup(spd)), f2(stats.Mean(mpki)), fmt.Sprintf("%d", xwalks))
	}
	return t, nil
}
