package experiments

import (
	"fmt"

	"morrigan/internal/core"
	"morrigan/internal/machine"
	"morrigan/internal/stats"
	"morrigan/internal/workloads"
)

// fnlmma is the default machine with the FNL+MMA I-cache prefetcher and
// translation costs modelled.
func fnlmma() machine.Spec {
	m := machine.Default()
	m.ICachePrefetcher = machine.FNLMMA()
	m.ICacheTLBCost = true
	return m
}

// Fig10 evaluates the FNL+MMA-style I-cache prefetcher with and without
// address translation costs (paper Figure 10 and Section 3.5).
func Fig10(o Options) (*Table, error) {
	specs := o.qmm()
	var jobs []simJob
	// "FNL+MMA": the IPC-1 infrastructure, where instruction address
	// translation is not modelled (all page-crossing prefetches are
	// translated for free and the iSTLB never misses).
	idealSpec := machine.Default()
	idealSpec.ICachePrefetcher = machine.FNLMMA()
	idealSpec.PerfectISTLB = true
	// "FNL+MMA+TLB": translation is modelled; page-crossing prefetches need
	// page walks and contend for walker MSHRs.
	costedSpec := fnlmma()
	for _, w := range specs {
		jobs = append(jobs,
			job("baseline", w, baseline()),
			job("FNL+MMA", w, idealSpec),
			job("FNL+MMA+TLB", w, costedSpec))
	}
	sts, err := o.campaign("fig10", jobs)
	if err != nil {
		return nil, err
	}
	var ideal, costed, missRed []float64
	for i := range specs {
		base, ist, cst := sts[3*i], sts[3*i+1], sts[3*i+2]
		ideal = append(ideal, stats.Speedup(uint64(base.Cycles), uint64(ist.Cycles)))
		costed = append(costed, stats.Speedup(uint64(base.Cycles), uint64(cst.Cycles)))
		missRed = append(missRed, stats.Coverage(base.DemandIWalks, cst.DemandIWalks))
	}
	t := &Table{
		ID:     "fig10",
		Title:  "FNL+MMA with and without address translation cost (geomean speedup vs next-line baseline)",
		Header: []string{"configuration", "speedup"},
		Notes: []string{
			"paper: translation costs collapse the IPC-1 speedups; demand iSTLB misses drop only ~29.6%",
		},
	}
	t.AddRow("FNL+MMA (translation-free ideal)", pct(stats.GeoMeanSpeedup(ideal)))
	t.AddRow("FNL+MMA+TLB (translation modelled)", pct(stats.GeoMeanSpeedup(costed)))
	t.Notes = append(t.Notes, fmt.Sprintf("measured demand iSTLB walk reduction by FNL+MMA+TLB: %.1f%%", stats.Mean(missRed)))
	return t, nil
}

// Fig18 compares Morrigan with the other TLB-performance approaches of
// Figure 18: an ISO-storage enlarged STLB, prefetching directly into the
// STLB (P2TLB), ASAP, Morrigan+ASAP, and the Perfect iSTLB bound.
func Fig18(o Options) (*Table, error) {
	enlarged := machine.Default()
	enlarged.STLBEntries = 1920
	p2tlb := morrigan()
	p2tlb.PrefetchIntoSTLB = true
	asap := machine.Default()
	asap.Walker.ASAP = true
	morriganASAP := morrigan()
	morriganASAP.Walker.ASAP = true
	contenders := []contender{
		{"Enlarged STLB (+384e, ISO)", enlarged},
		{"P2TLB (prefetch into STLB)", p2tlb},
		{"ASAP", asap},
		{"Morrigan", morrigan()},
		{"Morrigan+ASAP", morriganASAP},
		{"Perfect iSTLB", perfect()},
	}
	agg, err := o.compare("fig18", contenders)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig18",
		Title:  "Comparison with other TLB-performance approaches (geomean speedup)",
		Header: []string{"approach", "speedup"},
		Notes: []string{
			"paper: Morrigan beats enlarged STLB by 4.1% and ASAP by 4.8%; P2TLB degrades 18.9%;",
			"Morrigan+ASAP reaches 10.1%, approaching Perfect's 11.1%",
		},
	}
	for _, c := range contenders {
		t.AddRow(c.name, pct(stats.GeoMeanSpeedup(agg[c.name].speedups)))
	}
	// Refs-per-walk context for ASAP's limited headroom (paper: 1.4).
	var rpw []float64
	for _, st := range agg["Morrigan"].stats {
		rpw = append(rpw, st.RefsPerWalk)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured memory references per demand walk: %.2f (paper: 1.4)", stats.Mean(rpw)))
	return t, nil
}

// Fig19 demonstrates the synergy between Morrigan and page-crossing I-cache
// prefetching (paper Figure 19). All configurations pay translation costs.
func Fig19(o Options) (*Table, error) {
	specs := o.qmm()
	var jobs []simJob
	combined := fnlmma()
	combined.Prefetcher = machine.Morrigan(core.DefaultConfig())
	for _, w := range specs {
		jobs = append(jobs,
			job("baseline", w, baseline()),
			job("FNL+MMA", w, fnlmma()),
			job("Morrigan", w, morrigan()),
			job("Morrigan+FNL+MMA", w, combined))
	}
	sts, err := o.campaign("fig19", jobs)
	if err != nil {
		return nil, err
	}
	var fnl, mor, both []float64
	var pbServed, xWalks uint64
	for i := range specs {
		base, fst, mst, bst := sts[4*i], sts[4*i+1], sts[4*i+2], sts[4*i+3]
		fnl = append(fnl, stats.Speedup(uint64(base.Cycles), uint64(fst.Cycles)))
		mor = append(mor, stats.Speedup(uint64(base.Cycles), uint64(mst.Cycles)))
		both = append(both, stats.Speedup(uint64(base.Cycles), uint64(bst.Cycles)))
		pbServed += bst.ICachePBHits
		xWalks += bst.ICachePBHits + bst.ICacheXPageWalks
	}
	t := &Table{
		ID:     "fig19",
		Title:  "Synergy with I-cache prefetching (geomean speedup vs next-line baseline)",
		Header: []string{"configuration", "speedup"},
		Notes: []string{
			"paper: FNL+MMA 1.2%, Morrigan 7.6%, Morrigan+FNL+MMA 10.9% (super-additive);",
			"paper: 51.7% of page-crossing prefetch translations hit Morrigan's PB",
		},
	}
	t.AddRow("FNL+MMA", pct(stats.GeoMeanSpeedup(fnl)))
	t.AddRow("Morrigan", pct(stats.GeoMeanSpeedup(mor)))
	t.AddRow("Morrigan+FNL+MMA", pct(stats.GeoMeanSpeedup(both)))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"measured page-crossing translations served by Morrigan's PB: %.1f%%", stats.Percent(pbServed, xWalks)))
	return t, nil
}

// Fig20 evaluates SMT colocation (paper Figure 20): pairs of QMM workloads
// on a 2-thread core, with the IRIP tables doubled (the paper's 7.5 KB SMT
// configuration) and also undoubled.
func Fig20(o Options) (*Table, error) {
	pairs := workloads.SMTPairs(o.SMTPairs, 2021)
	scaled2x := withPrefetcher(machine.Morrigan(core.ScaledConfig(2)))
	combined := fnlmma()
	combined.Prefetcher = machine.Morrigan(core.ScaledConfig(2))
	makers := []contender{
		{"FNL+MMA", fnlmma()},
		{"Morrigan (2x tables)", scaled2x},
		{"Morrigan (1x tables)", morrigan()},
		{"Morrigan(2x)+FNL+MMA", combined},
	}
	var jobs []simJob
	for _, p := range pairs {
		jobs = append(jobs, pairJob("baseline", p[0], p[1], baseline()))
		for _, m := range makers {
			jobs = append(jobs, pairJob(m.name, p[0], p[1], m.spec))
		}
	}
	sts, err := o.campaign("fig20", jobs)
	if err != nil {
		return nil, err
	}
	speedups := make(map[string][]float64)
	k := 0
	for range pairs {
		base := sts[k]
		k++
		for _, m := range makers {
			st := sts[k]
			k++
			speedups[m.name] = append(speedups[m.name],
				stats.Speedup(uint64(base.Cycles), uint64(st.Cycles)))
		}
	}
	t := &Table{
		ID:     "fig20",
		Title:  fmt.Sprintf("SMT colocation over %d workload pairs (geomean speedup)", len(pairs)),
		Header: []string{"configuration", "speedup"},
		Notes: []string{
			"paper: FNL+MMA 3.4%, Morrigan 8.9% (doubled tables, 7.5 KB), combined 13.7%;",
			"paper: without doubling, Morrigan 6.4% and combined 11.1%",
		},
	}
	for _, m := range makers {
		t.AddRow(m.name, pct(stats.GeoMeanSpeedup(speedups[m.name])))
	}
	return t, nil
}

// Ablations quantifies Morrigan's individual design choices beyond the
// paper's headline figures: spatial prefetching, the SDP module, the
// frequency-stack reset, the RLFU candidate width, and the storage cost of
// distances versus full VPNs.
func Ablations(o Options) (*Table, error) {
	mkMorrigan := func(mutate func(*core.Config)) machine.Spec {
		mc := core.DefaultConfig()
		mutate(&mc)
		return withPrefetcher(machine.Morrigan(mc))
	}
	// Storing full VPNs instead of distances costs 36+2 bits per slot
	// instead of 15+2, so an ISO-storage full-VPN design tracks roughly
	// half the entries (Section 4.1.1's motivation for distances).
	vpnFactor := float64(tl(17)) / float64(tl(38))
	contenders := []contender{
		{"Morrigan (default)", mkMorrigan(func(c *core.Config) {})},
		{"no spatial prefetch", mkMorrigan(func(c *core.Config) { c.Spatial = false })},
		{"no SDP module", mkMorrigan(func(c *core.Config) { c.SDP = false })},
		{"no frequency reset", mkMorrigan(func(c *core.Config) { c.FreqResetInterval = 0 })},
		{"RLFU pool = 2", mkMorrigan(func(c *core.Config) { c.RLFUCandidates = 2 })},
		{"RLFU pool = 8", mkMorrigan(func(c *core.Config) { c.RLFUCandidates = 8 })},
		{"full-VPN slots (ISO entries)", withPrefetcher(machine.Morrigan(core.ScaledConfig(vpnFactor)))},
	}
	agg, err := o.compare("ablations", contenders)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablations",
		Title:  "Morrigan design-choice ablations (geomean speedup, mean coverage)",
		Header: []string{"variant", "speedup", "coverage"},
		Notes: []string{
			"distance encoding halves per-slot storage vs full VPNs (17 vs 38 bits), doubling tracked entries ISO-storage",
		},
	}
	for _, c := range contenders {
		a := agg[c.name]
		t.AddRow(c.name, pct(stats.GeoMeanSpeedup(a.speedups)), pct(stats.Mean(a.coverage)))
	}
	return t, nil
}

// tl returns the per-slot storage in bits given slot payload width, for the
// average ensemble entry (used by the full-VPN ablation's ISO computation).
func tl(slotBits int) int {
	// Average slots per entry across the default ensemble:
	// (128*1 + 128*2 + 128*4 + 64*8) / 448 = 3.14 slots.
	const tag = 16
	totalSlots := 128*1 + 128*2 + 128*4 + 64*8
	entries := 448
	return tag*entries + slotBits*totalSlots
}
