package experiments

import (
	"fmt"

	"morrigan/internal/core"
	"morrigan/internal/machine"
	"morrigan/internal/stats"
)

// budgetPoints are the storage-budget sweep factors of Figures 13/14,
// relative to the paper's 3.76 KB configuration.
var budgetPoints = []float64{0.25, 0.5, 1, 2, 4}

// coveragePoint is one Morrigan configuration in a coverage sweep.
type coveragePoint struct {
	label     string
	mc        core.Config
	pbEntries int // 0 keeps the default PB size
}

// coverageSweep runs every point over the suite as one campaign and returns
// each point's mean miss coverage (PB hits / iSTLB misses) in percent, in
// point order.
func (o Options) coverageSweep(experiment string, points []coveragePoint) ([]float64, error) {
	specs := o.qmm()
	jobs := make([]simJob, 0, len(points)*len(specs))
	for _, p := range points {
		m := withPrefetcher(machine.Morrigan(p.mc))
		if p.pbEntries > 0 {
			m.PBEntries = p.pbEntries
		}
		for _, w := range specs {
			jobs = append(jobs, job(p.label, w, m))
		}
	}
	sts, err := o.campaign(experiment, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(points))
	k := 0
	for i := range points {
		var cov []float64
		for range specs {
			cov = append(cov, stats.Percent(sts[k].PBHits, sts[k].ISTLBMisses))
			k++
		}
		out[i] = stats.Mean(cov)
	}
	return out, nil
}

// Fig13 sweeps Morrigan's miss coverage against the IRIP storage budget with
// fully associative prediction tables (paper Figure 13: coverage rises
// steeply then plateaus past ~5 KB).
func Fig13(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Morrigan miss coverage vs storage budget (fully associative tables)",
		Header: []string{"budget", "coverage"},
		Notes:  []string{"paper: steep rise at small budgets, plateau beyond ~5-7.5 KB; 81% at 3.76 KB"},
	}
	points := make([]coveragePoint, len(budgetPoints))
	bytes := make([]float64, len(budgetPoints))
	for i, f := range budgetPoints {
		mc := core.FullyAssociative(core.ScaledConfig(f))
		bytes[i] = core.New(mc).StorageBytes()
		points[i] = coveragePoint{label: fmt.Sprintf("%.2f KB", bytes[i]/1024), mc: mc}
	}
	cov, err := o.coverageSweep(t.ID, points)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		t.AddRow(p.label, pct(cov[i]))
	}
	return t, nil
}

// Fig14 compares the prediction tables' replacement policies across storage
// budgets (paper Figure 14: RLFU > LFU > LRU ~ Random at small budgets, gap
// shrinking as tables grow).
func Fig14(o Options) (*Table, error) {
	policies := []core.Policy{core.PolicyRLFU, core.PolicyLFU, core.PolicyLRU, core.PolicyRandom}
	t := &Table{
		ID:     "fig14",
		Title:  "Miss coverage by replacement policy and storage budget (fully associative)",
		Header: []string{"budget", "RLFU", "LFU", "LRU", "Random"},
		Notes: []string{
			"paper: frequency-based policies dominate recency at small budgets; RLFU adds a second-chance bonus over LFU",
		},
	}
	var points []coveragePoint
	var labels []string
	for _, f := range budgetPoints {
		mc := core.FullyAssociative(core.ScaledConfig(f))
		bytes := core.New(mc).StorageBytes()
		labels = append(labels, fmt.Sprintf("%.2f KB", bytes/1024))
		for _, p := range policies {
			pmc := mc
			pmc.Policy = p
			points = append(points, coveragePoint{
				label: fmt.Sprintf("%.2f KB %s", bytes/1024, p), mc: pmc,
			})
		}
	}
	cov, err := o.coverageSweep(t.ID, points)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, label := range labels {
		row := []string{label}
		for range policies {
			row = append(row, pct(cov[k]))
			k++
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Sec613 reproduces the configuration study of Section 6.1.3: the selected
// set-associative configuration against fully associative tables, and the
// prefetch buffer size sensitivity.
func Sec613(o Options) (*Table, error) {
	t := &Table{
		ID:     "sec613",
		Title:  "Configuring IRIP: associativity and PB size",
		Header: []string{"configuration", "coverage"},
		Notes: []string{
			"paper: set-assoc config (128/128/128/64 at 32/32/32/16 ways) gives 76%, 5% below fully assoc",
			"paper PB sweep: 16/32 entries lose 4-12%, 128 entries gain ~2% over 64",
		},
	}
	points := []coveragePoint{
		{label: "set-associative (selected)", mc: core.DefaultConfig()},
		{label: "fully associative", mc: core.FullyAssociative(core.DefaultConfig())},
	}
	for _, pb := range []int{16, 32, 64, 128} {
		points = append(points, coveragePoint{
			label: fmt.Sprintf("PB %d entries", pb), mc: core.DefaultConfig(), pbEntries: pb,
		})
	}
	cov, err := o.coverageSweep(t.ID, points)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		t.AddRow(p.label, pct(cov[i]))
	}
	return t, nil
}
