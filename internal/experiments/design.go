package experiments

import (
	"fmt"

	"morrigan/internal/core"
	"morrigan/internal/sim"
	"morrigan/internal/stats"
)

// budgetPoints are the storage-budget sweep factors of Figures 13/14,
// relative to the paper's 3.76 KB configuration.
var budgetPoints = []float64{0.25, 0.5, 1, 2, 4}

// coverageAt runs Morrigan with the given core config over the suite and
// returns the mean miss coverage (PB hits / iSTLB misses) in percent.
func (o Options) coverageAt(mc core.Config, pbEntries int) (float64, error) {
	var cov []float64
	for _, w := range o.qmm() {
		cfg := sim.DefaultConfig()
		if pbEntries > 0 {
			cfg.PBEntries = pbEntries
		}
		cfg.Prefetcher = core.New(mc)
		st, err := o.run(cfg, w)
		if err != nil {
			return 0, err
		}
		cov = append(cov, stats.Percent(st.PBHits, st.ISTLBMisses))
	}
	return stats.Mean(cov), nil
}

// Fig13 sweeps Morrigan's miss coverage against the IRIP storage budget with
// fully associative prediction tables (paper Figure 13: coverage rises
// steeply then plateaus past ~5 KB).
func Fig13(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Morrigan miss coverage vs storage budget (fully associative tables)",
		Header: []string{"budget", "coverage"},
		Notes:  []string{"paper: steep rise at small budgets, plateau beyond ~5-7.5 KB; 81% at 3.76 KB"},
	}
	for _, f := range budgetPoints {
		mc := core.FullyAssociative(core.ScaledConfig(f))
		bytes := core.New(mc).StorageBytes()
		cov, err := o.coverageAt(mc, 0)
		if err != nil {
			return nil, err
		}
		o.progress("fig13 %.2fKB: %.1f%%", bytes/1024, cov)
		t.AddRow(fmt.Sprintf("%.2f KB", bytes/1024), pct(cov))
	}
	return t, nil
}

// Fig14 compares the prediction tables' replacement policies across storage
// budgets (paper Figure 14: RLFU > LFU > LRU ~ Random at small budgets, gap
// shrinking as tables grow).
func Fig14(o Options) (*Table, error) {
	policies := []core.Policy{core.PolicyRLFU, core.PolicyLFU, core.PolicyLRU, core.PolicyRandom}
	t := &Table{
		ID:     "fig14",
		Title:  "Miss coverage by replacement policy and storage budget (fully associative)",
		Header: []string{"budget", "RLFU", "LFU", "LRU", "Random"},
		Notes: []string{
			"paper: frequency-based policies dominate recency at small budgets; RLFU adds a second-chance bonus over LFU",
		},
	}
	for _, f := range budgetPoints {
		mc := core.FullyAssociative(core.ScaledConfig(f))
		bytes := core.New(mc).StorageBytes()
		row := []string{fmt.Sprintf("%.2f KB", bytes/1024)}
		for _, p := range policies {
			pmc := mc
			pmc.Policy = p
			cov, err := o.coverageAt(pmc, 0)
			if err != nil {
				return nil, err
			}
			o.progress("fig14 %.2fKB %s: %.1f%%", bytes/1024, p, cov)
			row = append(row, pct(cov))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Sec613 reproduces the configuration study of Section 6.1.3: the selected
// set-associative configuration against fully associative tables, and the
// prefetch buffer size sensitivity.
func Sec613(o Options) (*Table, error) {
	t := &Table{
		ID:     "sec613",
		Title:  "Configuring IRIP: associativity and PB size",
		Header: []string{"configuration", "coverage"},
		Notes: []string{
			"paper: set-assoc config (128/128/128/64 at 32/32/32/16 ways) gives 76%, 5% below fully assoc",
			"paper PB sweep: 16/32 entries lose 4-12%, 128 entries gain ~2% over 64",
		},
	}
	// Associativity study.
	saCov, err := o.coverageAt(core.DefaultConfig(), 0)
	if err != nil {
		return nil, err
	}
	faCov, err := o.coverageAt(core.FullyAssociative(core.DefaultConfig()), 0)
	if err != nil {
		return nil, err
	}
	t.AddRow("set-associative (selected)", pct(saCov))
	t.AddRow("fully associative", pct(faCov))
	// PB size study.
	for _, pb := range []int{16, 32, 64, 128} {
		cov, err := o.coverageAt(core.DefaultConfig(), pb)
		if err != nil {
			return nil, err
		}
		o.progress("sec613 pb=%d: %.1f%%", pb, cov)
		t.AddRow(fmt.Sprintf("PB %d entries", pb), pct(cov))
	}
	return t, nil
}
