// Package experiments reproduces every table and figure of the paper's
// evaluation on the synthetic QMM-like workload suite. Each experiment
// returns a Table that cmd/experiments renders and EXPERIMENTS.md records;
// bench_test.go wraps each one in a testing.B benchmark.
//
// Every experiment enumerates its simulations as independent jobs and hands
// them to the internal/runner campaign orchestrator, which fans them out
// over a worker pool (Options.Jobs) and returns results in job order —
// aggregation therefore sees exactly the sequence a serial run would, and
// table output is byte-identical at any worker count.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator and synthetic traces, not ChampSim on the Qualcomm
// traces — but each experiment preserves the paper's comparison structure:
// who is compared against whom, at what storage budget, and which metric is
// reported. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"morrigan/internal/arch"
	"morrigan/internal/runner"
	"morrigan/internal/sim"
	"morrigan/internal/trace"
	"morrigan/internal/tracestore"
	"morrigan/internal/workloads"
)

// Options scales an experiment run.
type Options struct {
	// Warmup and Measure are instructions per simulation, mirroring the
	// paper's 50M/100M methodology at a laptop-friendly scale.
	Warmup, Measure uint64
	// MaxWorkloads limits how many QMM workloads run (0 = all 45).
	MaxWorkloads int
	// SMTPairs is the number of colocation pairs for Figure 20.
	SMTPairs int
	// Jobs bounds how many simulations run concurrently (0 = GOMAXPROCS;
	// 1 reproduces serial execution exactly). Results are merged in
	// deterministic job order either way, so rendered tables are identical
	// at any setting.
	Jobs int
	// Progress, when non-nil, receives one line per completed simulation
	// with campaign progress and an ETA.
	Progress io.Writer
	// Context, when non-nil, cancels in-flight campaigns early.
	Context context.Context
	// Record, when non-nil, collects every simulation result for
	// machine-readable JSON/CSV emission (see internal/runner).
	Record *runner.Recorder
	// Telemetry, when non-nil, attaches a telemetry probe to every
	// simulation and writes one JSONL file per job into Telemetry.Dir
	// (see internal/telemetry). Rendered tables are unaffected.
	Telemetry *runner.TelemetryOptions
	// Observer, when non-nil, receives campaign lifecycle notifications for
	// every campaign an experiment launches (see internal/obs for the HTTP
	// observability server built on it). Rendered tables are unaffected.
	Observer runner.Observer
	// Corpus, when non-nil, feeds simulations from materialised trace
	// containers instead of stepping generators live: each workload is built
	// once (on first use), and concurrent jobs on the same workload share
	// decoded chunks through the store's cache. Stats are bit-identical to
	// generator-backed runs — the container stores the exact generator
	// output — so rendered tables do not change.
	Corpus *tracestore.Store
}

// DefaultOptions runs every workload at a scale that finishes in minutes on
// one core.
func DefaultOptions() Options {
	return Options{Warmup: 500_000, Measure: 2_000_000, SMTPairs: 20}
}

// QuickOptions is a reduced scale for benchmarks and smoke tests.
func QuickOptions() Options {
	return Options{Warmup: 100_000, Measure: 500_000, MaxWorkloads: 6, SMTPairs: 4}
}

// FullOptions approaches the paper's methodology (slow on one core).
func FullOptions() Options {
	return Options{Warmup: 2_000_000, Measure: 10_000_000, SMTPairs: 50}
}

// qmm returns the (possibly truncated) QMM workload list. When truncating,
// it samples across the suite so footprints still span the full range.
func (o Options) qmm() []workloads.Spec {
	all := workloads.QMM()
	if o.MaxWorkloads <= 0 || o.MaxWorkloads >= len(all) {
		return all
	}
	out := make([]workloads.Spec, 0, o.MaxWorkloads)
	step := float64(len(all)-1) / float64(o.MaxWorkloads-1)
	for i := 0; i < o.MaxWorkloads; i++ {
		out = append(out, all[int(float64(i)*step+0.5)])
	}
	return out
}

// simJob is one enumerated simulation of an experiment campaign.
type simJob struct {
	// config labels the machine configuration under test ("baseline",
	// a contender name, ...).
	config string
	// specs holds one workload, or two for an SMT colocation pair.
	specs []workloads.Spec
	// mk builds the machine configuration; it runs on the worker goroutine
	// and must return freshly constructed state on every call.
	mk func() sim.Config
}

// job enumerates a single-threaded simulation.
func job(config string, w workloads.Spec, mk func() sim.Config) simJob {
	return simJob{config: config, specs: []workloads.Spec{w}, mk: mk}
}

// pairJob enumerates an SMT colocation simulation. The second workload's
// address space is offset so the two behave as distinct processes.
func pairJob(config string, a, b workloads.Spec, mk func() sim.Config) simJob {
	return simJob{config: config, specs: []workloads.Spec{a, b}, mk: mk}
}

// baseline builds the no-prefetching Table 1 configuration.
func baseline() sim.Config { return sim.DefaultConfig() }

// campaign runs the jobs through the campaign orchestrator and returns their
// stats in job order. Aggregation code consuming the returned slice in
// enumeration order therefore produces output identical to a serial run.
func (o Options) campaign(experiment string, jobs []simJob) ([]sim.Stats, error) {
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		j := j
		name := j.specs[0].Name
		if len(j.specs) == 2 {
			name += "+" + j.specs[1].Name
		}
		rjobs[i] = runner.Job{
			Experiment: experiment,
			Config:     j.config,
			Workload:   name,
			Warmup:     o.Warmup,
			Measure:    o.Measure,
			NewConfig:  j.mk,
			NewThreads: func() []sim.ThreadSpec {
				threads := []sim.ThreadSpec{{Reader: o.reader(j.specs[0])}}
				if len(j.specs) == 2 {
					threads = append(threads, sim.ThreadSpec{
						Reader: o.reader(j.specs[1]), VAOffset: 1 << 40,
					})
				}
				return threads
			},
		}
	}
	results, err := runner.Run(o.Context, rjobs, runner.Options{
		Workers:   o.Jobs,
		Progress:  runner.WriterProgress(o.Progress),
		Telemetry: o.Telemetry,
		Observer:  o.Observer,
	})
	if o.Record != nil {
		o.Record.Add(results)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sts := make([]sim.Stats, len(results))
	for i := range results {
		sts[i] = results[i].Stats
	}
	return sts, nil
}

// reader builds one workload's instruction stream: a pipelined corpus reader
// when Options.Corpus is set, else the live generator. It runs inside
// NewThreads on the runner's worker goroutine, where a panic is isolated
// into that job's Result instead of aborting the campaign — so a failed
// materialisation fails the job, matching how every other per-job setup
// error is reported.
func (o Options) reader(w workloads.Spec) trace.Reader {
	if o.Corpus == nil {
		return w.NewReader()
	}
	c, err := o.Corpus.Materialize(w, o.Warmup+o.Measure)
	if err != nil {
		panic(fmt.Sprintf("experiments: materialising corpus for %s: %v", w.Name, err))
	}
	return c.NewReader()
}

// missStreams runs one baseline simulation per spec, capturing each run's
// iSTLB miss stream; streams and stats are returned in spec order. Each
// stream slice is written only by its own job's worker and read only after
// the campaign completes.
func (o Options) missStreams(experiment string, specs []workloads.Spec) ([][]uint64, []sim.Stats, error) {
	streams := make([][]uint64, len(specs))
	jobs := make([]simJob, len(specs))
	for i, w := range specs {
		i := i
		jobs[i] = job("baseline", w, func() sim.Config {
			cfg := sim.DefaultConfig()
			cfg.OnISTLBMiss = func(_ arch.ThreadID, vpn arch.VPN) {
				streams[i] = append(streams[i], uint64(vpn))
			}
			return cfg
		})
	}
	sts, err := o.campaign(experiment, jobs)
	if err != nil {
		return nil, nil, err
	}
	return streams, sts, nil
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig15").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the measurements.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Registry maps experiment IDs to their implementations.
var Registry = map[string]func(Options) (*Table, error){
	"table1":        Table1,
	"fig2":          Fig2,
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig10":         Fig10,
	"fig13":         Fig13,
	"fig14":         Fig14,
	"sec613":        Sec613,
	"fig15":         Fig15,
	"fig16":         Fig16,
	"fig17":         Fig17,
	"fig18":         Fig18,
	"fig19":         Fig19,
	"fig20":         Fig20,
	"ablations":     Ablations,
	"pagetables":    PageTables,
	"contextswitch": ContextSwitch,
	"hugepages":     HugePages,
	"icacheselect":  ICacheSelection,
}

// Order lists the experiments in paper order.
var Order = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig13", "fig14", "sec613", "fig15", "fig16",
	"fig17", "fig18", "fig19", "fig20", "ablations", "pagetables",
	"contextswitch", "hugepages", "icacheselect",
}
