// Package experiments reproduces every table and figure of the paper's
// evaluation on the synthetic QMM-like workload suite. Each experiment
// returns a Table that cmd/experiments renders and EXPERIMENTS.md records;
// bench_test.go wraps each one in a testing.B benchmark.
//
// Every experiment enumerates its simulations as independent jobs and hands
// them to the internal/runner campaign orchestrator, which fans them out
// over a worker pool (Options.Jobs) and returns results in job order —
// aggregation therefore sees exactly the sequence a serial run would, and
// table output is byte-identical at any worker count.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator and synthetic traces, not ChampSim on the Qualcomm
// traces — but each experiment preserves the paper's comparison structure:
// who is compared against whom, at what storage budget, and which metric is
// reported. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"morrigan/internal/arch"
	"morrigan/internal/machine"
	"morrigan/internal/runner"
	"morrigan/internal/sampling"
	"morrigan/internal/sim"
	"morrigan/internal/spans"
	"morrigan/internal/trace"
	"morrigan/internal/tracestore"
	"morrigan/internal/workloads"
)

// Options scales an experiment run.
type Options struct {
	// Warmup and Measure are instructions per simulation, mirroring the
	// paper's 50M/100M methodology at a laptop-friendly scale.
	Warmup, Measure uint64
	// MaxWorkloads limits how many QMM workloads run (0 = all 45).
	MaxWorkloads int
	// SMTPairs is the number of colocation pairs for Figure 20.
	SMTPairs int
	// Jobs bounds how many simulations run concurrently (0 = GOMAXPROCS;
	// 1 reproduces serial execution exactly). Results are merged in
	// deterministic job order either way, so rendered tables are identical
	// at any setting.
	Jobs int
	// Progress, when non-nil, receives one line per completed simulation
	// with campaign progress and an ETA.
	Progress io.Writer
	// Context, when non-nil, cancels in-flight campaigns early.
	Context context.Context
	// Record, when non-nil, collects every simulation result for
	// machine-readable JSON/CSV emission (see internal/runner).
	Record *runner.Recorder
	// Telemetry, when non-nil, attaches a telemetry probe to every
	// simulation and writes one JSONL file per job into Telemetry.Dir
	// (see internal/telemetry). Rendered tables are unaffected.
	Telemetry *runner.TelemetryOptions
	// Observer, when non-nil, receives campaign lifecycle notifications for
	// every campaign an experiment launches (see internal/obs for the HTTP
	// observability server built on it). Rendered tables are unaffected.
	Observer runner.Observer
	// Corpus, when non-nil, feeds simulations from materialised trace
	// containers instead of stepping generators live: each workload is built
	// once (on first use), and concurrent jobs on the same workload share
	// decoded chunks through the store's cache. Stats are bit-identical to
	// generator-backed runs — the container stores the exact generator
	// output — so rendered tables do not change.
	Corpus *tracestore.Store
	// Journal, when non-nil, checkpoints every completed simulation so an
	// interrupted campaign can resume (see runner.Journal). Rendered tables
	// are unaffected — journaled stats are the original run's, bit for bit.
	Journal *runner.Journal
	// Cache, when non-nil, is shared across every campaign the experiments
	// launch, so jobs with identical (machine, workloads, scale) identities
	// — e.g. the baseline column repeated by many figures at the same
	// Options scale — simulate exactly once. Rendered tables are unaffected.
	Cache *runner.ResultCache
	// Store, when non-nil, is the durable cross-run result layer: jobs whose
	// keys it already holds are served without simulating, and completed
	// jobs are persisted into it (see runner.ResultStore and
	// internal/resultstore). Rendered tables are unaffected — stored stats
	// are the original run's, bit for bit.
	Store runner.ResultStore
	// Remote, when non-nil, delegates keyed jobs to fabric workers instead
	// of simulating them locally (see runner.RemoteExecutor and
	// internal/fabric). Rendered tables are byte-identical to local runs at
	// any worker count — jobs are merged in deterministic order and
	// simulation is deterministic.
	Remote runner.RemoteExecutor
	// DryRun, when non-nil, prints each campaign's enumerated jobs (one
	// runner.Job.Describe line each) to it instead of simulating. Every
	// result is zero-valued, so rendered tables are meaningless — dry runs
	// are for inspecting what a campaign would simulate (keys, spec hashes,
	// scale) and what a warm journal, store or fabric would be asked for.
	DryRun io.Writer
	// Sampling, when non-nil, runs eligible jobs — single-workload,
	// non-instrumented — in representative-interval sampling mode (see
	// internal/sampling): profile, cluster, simulate only representative
	// slices, and extrapolate. Rendered tables then carry estimates with
	// 95% confidence intervals rather than exact measurements; SMT pairs
	// and instrumented jobs always simulate in full. Sampled jobs key
	// differently from full runs, so a store or journal never serves one
	// mode's results for the other.
	Sampling *sampling.Policy
	// Profiles, when non-nil, caches sampling profile artifacts on disk so
	// repeated sampled campaigns skip the functional profiling pass (see
	// sampling.ProfileStore). Only consulted when Sampling is set.
	Profiles *sampling.ProfileStore
	// Spans, when non-nil, records every job's lifecycle phases as trace
	// spans (see internal/spans and runner.Options.Spans). Purely
	// observational: rendered tables are bit-identical with or without it.
	Spans *spans.Recorder
}

// DefaultOptions runs every workload at a scale that finishes in minutes on
// one core.
func DefaultOptions() Options {
	return Options{Warmup: 500_000, Measure: 2_000_000, SMTPairs: 20}
}

// QuickOptions is a reduced scale for benchmarks and smoke tests.
func QuickOptions() Options {
	return Options{Warmup: 100_000, Measure: 500_000, MaxWorkloads: 6, SMTPairs: 4}
}

// FullOptions approaches the paper's methodology (slow on one core).
func FullOptions() Options {
	return Options{Warmup: 2_000_000, Measure: 10_000_000, SMTPairs: 50}
}

// qmm returns the (possibly truncated) QMM workload list. When truncating,
// it samples across the suite so footprints still span the full range.
func (o Options) qmm() []workloads.Spec {
	all := workloads.QMM()
	if o.MaxWorkloads <= 0 || o.MaxWorkloads >= len(all) {
		return all
	}
	if o.MaxWorkloads == 1 {
		// One workload: take the first. The sampling formula below would
		// divide by zero (step = +Inf, 0*Inf = NaN, int(NaN) out of range).
		return all[:1]
	}
	out := make([]workloads.Spec, 0, o.MaxWorkloads)
	step := float64(len(all)-1) / float64(o.MaxWorkloads-1)
	for i := 0; i < o.MaxWorkloads; i++ {
		out = append(out, all[int(float64(i)*step+0.5)])
	}
	return out
}

// simJob is one enumerated simulation of an experiment campaign.
type simJob struct {
	// config labels the machine configuration under test ("baseline",
	// a contender name, ...).
	config string
	// specs holds one workload, or two for an SMT colocation pair.
	specs []workloads.Spec
	// machine describes the configuration under test as data; the runner
	// builds it (fresh prefetcher state and all) on the worker goroutine.
	machine machine.Spec
	// instrument, when set, mutates the built config before the run — used
	// by the miss-stream characterisation figures. Instrumented jobs are
	// excluded from checkpoint/reuse identity (see runner.Job.Key).
	instrument func(*sim.Config)
}

// job enumerates a single-threaded simulation.
func job(config string, w workloads.Spec, m machine.Spec) simJob {
	return simJob{config: config, specs: []workloads.Spec{w}, machine: m}
}

// pairJob enumerates an SMT colocation simulation. The second workload's
// address space is offset so the two behave as distinct processes.
func pairJob(config string, a, b workloads.Spec, m machine.Spec) simJob {
	return simJob{config: config, specs: []workloads.Spec{a, b}, machine: m}
}

// mixJob enumerates an N-way colocation simulation: every workload in the
// mix runs as its own hardware thread with a distinct address-space offset.
func mixJob(config string, mix []workloads.Spec, m machine.Spec) simJob {
	return simJob{config: config, specs: mix, machine: m}
}

// baseline is the no-prefetching Table 1 configuration.
func baseline() machine.Spec { return machine.Default() }

// campaign runs the jobs through the campaign orchestrator and returns their
// stats in job order. Aggregation code consuming the returned slice in
// enumeration order therefore produces output identical to a serial run.
func (o Options) campaign(experiment string, jobs []simJob) ([]sim.Stats, error) {
	rjobs := make([]runner.Job, len(jobs))
	for i, j := range jobs {
		name := j.specs[0].Name
		for _, s := range j.specs[1:] {
			name += "+" + s.Name
		}
		rjobs[i] = runner.Job{
			Experiment: experiment,
			Config:     j.config,
			Workload:   name,
			Machine:    j.machine,
			Workloads:  j.specs,
			Warmup:     o.Warmup,
			Measure:    o.Measure,
			Instrument: j.instrument,
		}
		// Sampling applies only to jobs the runner can sample: one
		// workload-described instruction stream with no instrumentation
		// hook (a reused slice would have silently skipped the hook's
		// side effects, and SMT pairs need both streams timed).
		if o.Sampling != nil && len(j.specs) == 1 && j.instrument == nil {
			rjobs[i].Sampling = o.Sampling
		}
	}
	if o.DryRun != nil {
		for _, rj := range rjobs {
			fmt.Fprintln(o.DryRun, rj.Describe())
		}
		return make([]sim.Stats, len(rjobs)), nil
	}
	ropt := runner.Options{
		Workers:   o.Jobs,
		Progress:  runner.WriterProgress(o.Progress),
		Telemetry: o.Telemetry,
		Observer:  o.Observer,
		Journal:   o.Journal,
		Cache:     o.Cache,
		Store:     o.Store,
		Remote:    o.Remote,
		Profiles:  o.Profiles,
		Spans:     o.Spans,
	}
	if o.Corpus != nil {
		ropt.NewReader = func(w workloads.Spec) (trace.Reader, error) {
			c, err := o.Corpus.Materialize(w, o.Warmup+o.Measure)
			if err != nil {
				return nil, fmt.Errorf("experiments: materialising corpus for %s: %w", w.Name, err)
			}
			return c.NewReader(), nil
		}
	}
	results, err := runner.Run(o.Context, rjobs, ropt)
	if o.Record != nil {
		o.Record.Add(results)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sts := make([]sim.Stats, len(results))
	for i := range results {
		sts[i] = results[i].Stats
	}
	return sts, nil
}

// missStreams runs one baseline simulation per spec, capturing each run's
// iSTLB miss stream; streams and stats are returned in spec order. Each
// stream slice is written only by its own job's worker and read only after
// the campaign completes. The capture hook rides the runner's Instrument
// escape hatch, which also excludes these jobs from checkpoint/reuse — a
// reused result would have silently skipped the capture.
func (o Options) missStreams(experiment string, specs []workloads.Spec) ([][]uint64, []sim.Stats, error) {
	streams := make([][]uint64, len(specs))
	jobs := make([]simJob, len(specs))
	for i, w := range specs {
		i := i
		jobs[i] = job("baseline", w, baseline())
		jobs[i].instrument = func(cfg *sim.Config) {
			cfg.OnISTLBMiss = func(_ arch.ThreadID, vpn arch.VPN) {
				streams[i] = append(streams[i], uint64(vpn))
			}
		}
	}
	sts, err := o.campaign(experiment, jobs)
	if err != nil {
		return nil, nil, err
	}
	return streams, sts, nil
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig15").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the measurements.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Registry maps experiment IDs to their implementations.
var Registry = map[string]func(Options) (*Table, error){
	"table1":        Table1,
	"fig2":          Fig2,
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig10":         Fig10,
	"fig13":         Fig13,
	"fig14":         Fig14,
	"sec613":        Sec613,
	"fig15":         Fig15,
	"fig16":         Fig16,
	"fig17":         Fig17,
	"fig18":         Fig18,
	"fig19":         Fig19,
	"fig20":         Fig20,
	"ablations":     Ablations,
	"pagetables":    PageTables,
	"contextswitch": ContextSwitch,
	"hugepages":     HugePages,
	"icacheselect":  ICacheSelection,
	"colocation":    Colocation,
}

// Order lists the experiments in paper order.
var Order = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig13", "fig14", "sec613", "fig15", "fig16",
	"fig17", "fig18", "fig19", "fig20", "ablations", "pagetables",
	"contextswitch", "hugepages", "icacheselect", "colocation",
}
