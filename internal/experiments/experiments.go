// Package experiments reproduces every table and figure of the paper's
// evaluation on the synthetic QMM-like workload suite. Each experiment
// returns a Table that cmd/experiments renders and EXPERIMENTS.md records;
// bench_test.go wraps each one in a testing.B benchmark.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator and synthetic traces, not ChampSim on the Qualcomm
// traces — but each experiment preserves the paper's comparison structure:
// who is compared against whom, at what storage budget, and which metric is
// reported. See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"morrigan/internal/sim"
	"morrigan/internal/workloads"
)

// Options scales an experiment run.
type Options struct {
	// Warmup and Measure are instructions per simulation, mirroring the
	// paper's 50M/100M methodology at a laptop-friendly scale.
	Warmup, Measure uint64
	// MaxWorkloads limits how many QMM workloads run (0 = all 45).
	MaxWorkloads int
	// SMTPairs is the number of colocation pairs for Figure 20.
	SMTPairs int
	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
}

// DefaultOptions runs every workload at a scale that finishes in minutes on
// one core.
func DefaultOptions() Options {
	return Options{Warmup: 500_000, Measure: 2_000_000, SMTPairs: 20}
}

// QuickOptions is a reduced scale for benchmarks and smoke tests.
func QuickOptions() Options {
	return Options{Warmup: 100_000, Measure: 500_000, MaxWorkloads: 6, SMTPairs: 4}
}

// FullOptions approaches the paper's methodology (slow on one core).
func FullOptions() Options {
	return Options{Warmup: 2_000_000, Measure: 10_000_000, SMTPairs: 50}
}

// qmm returns the (possibly truncated) QMM workload list. When truncating,
// it samples across the suite so footprints still span the full range.
func (o Options) qmm() []workloads.Spec {
	all := workloads.QMM()
	if o.MaxWorkloads <= 0 || o.MaxWorkloads >= len(all) {
		return all
	}
	out := make([]workloads.Spec, 0, o.MaxWorkloads)
	step := float64(len(all)-1) / float64(o.MaxWorkloads-1)
	for i := 0; i < o.MaxWorkloads; i++ {
		out = append(out, all[int(float64(i)*step+0.5)])
	}
	return out
}

// progress reports one finished simulation.
func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "fig15").
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the measurements.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// run executes one single-threaded simulation of spec under cfg.
func (o Options) run(cfg sim.Config, spec workloads.Spec) (sim.Stats, error) {
	s, err := sim.New(cfg, []sim.ThreadSpec{{Reader: spec.NewReader()}})
	if err != nil {
		return sim.Stats{}, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	st, err := s.Run(o.Warmup, o.Measure)
	if err != nil {
		return sim.Stats{}, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	return st, nil
}

// runPair executes one SMT colocation simulation. The second workload's
// address space is offset so the two behave as distinct processes.
func (o Options) runPair(cfg sim.Config, a, b workloads.Spec) (sim.Stats, error) {
	s, err := sim.New(cfg, []sim.ThreadSpec{
		{Reader: a.NewReader()},
		{Reader: b.NewReader(), VAOffset: 1 << 40},
	})
	if err != nil {
		return sim.Stats{}, fmt.Errorf("experiments: %s+%s: %w", a.Name, b.Name, err)
	}
	st, err := s.Run(o.Warmup, o.Measure)
	if err != nil {
		return sim.Stats{}, fmt.Errorf("experiments: %s+%s: %w", a.Name, b.Name, err)
	}
	return st, nil
}

// pct formats a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Registry maps experiment IDs to their implementations.
var Registry = map[string]func(Options) (*Table, error){
	"table1":        Table1,
	"fig2":          Fig2,
	"fig3":          Fig3,
	"fig4":          Fig4,
	"fig5":          Fig5,
	"fig6":          Fig6,
	"fig7":          Fig7,
	"fig8":          Fig8,
	"fig9":          Fig9,
	"fig10":         Fig10,
	"fig13":         Fig13,
	"fig14":         Fig14,
	"sec613":        Sec613,
	"fig15":         Fig15,
	"fig16":         Fig16,
	"fig17":         Fig17,
	"fig18":         Fig18,
	"fig19":         Fig19,
	"fig20":         Fig20,
	"ablations":     Ablations,
	"pagetables":    PageTables,
	"contextswitch": ContextSwitch,
	"hugepages":     HugePages,
	"icacheselect":  ICacheSelection,
}

// Order lists the experiments in paper order.
var Order = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig13", "fig14", "sec613", "fig15", "fig16",
	"fig17", "fig18", "fig19", "fig20", "ablations", "pagetables",
	"contextswitch", "hugepages", "icacheselect",
}
