package experiments

import (
	"fmt"

	"morrigan/internal/arch"
	"morrigan/internal/core"
	"morrigan/internal/machine"
	"morrigan/internal/sim"
	"morrigan/internal/stats"
	"morrigan/internal/tlbprefetch"
)

// MorriganStorageBits is the default configuration's budget, the ISO point
// of Sections 6.2-6.4 (the paper's 3.76 KB).
var MorriganStorageBits = core.New(core.DefaultConfig()).StorageBits()

// ISO-storage baseline prefetcher specs (Section 6.2: "configuration
// parameters ... match the storage budget of Morrigan").
func isoASP() machine.PrefetcherSpec {
	per := tlbprefetch.TagBits + tlbprefetch.VPNStorageBits + 16 + tlbprefetch.ConfBits
	return machine.ASP(MorriganStorageBits / per)
}

func isoDP() machine.PrefetcherSpec {
	per := tlbprefetch.TagBits + 2*16
	return machine.DP(MorriganStorageBits / per)
}

func isoMP() machine.PrefetcherSpec {
	per := tlbprefetch.TagBits + 2*tlbprefetch.VPNStorageBits
	n := MorriganStorageBits / per
	n -= n % 4
	return machine.MP(n, 4)
}

// withPrefetcher is the default machine with the given iSTLB prefetcher.
func withPrefetcher(p machine.PrefetcherSpec) machine.Spec {
	m := machine.Default()
	m.Prefetcher = p
	return m
}

// morrigan is the default machine running the paper's Morrigan configuration.
func morrigan() machine.Spec {
	return withPrefetcher(machine.Morrigan(core.DefaultConfig()))
}

// perfect is the default machine with a perfect iSTLB (upper bound).
func perfect() machine.Spec {
	m := machine.Default()
	m.PerfectISTLB = true
	return m
}

// contender is one configuration in a comparison experiment.
type contender struct {
	name string
	spec machine.Spec
}

// aggregate accumulates per-workload results for one contender.
type aggregate struct {
	speedups []float64 // percent vs baseline
	coverage []float64 // PB hits / iSTLB misses, percent
	demand   []float64 // demand instruction walk refs, % of baseline
	prefetch []float64 // prefetch walk refs, % of baseline demand refs
	iripHits uint64
	sdpHits  uint64
	levels   [arch.NumLevels]uint64 // prefetch walk refs by serving level
	stats    []sim.Stats
}

// compare runs every contender against the no-prefetching baseline over the
// QMM suite, as one campaign: per workload, one baseline job followed by one
// job per contender.
func (o Options) compare(experiment string, contenders []contender) (map[string]*aggregate, error) {
	out := make(map[string]*aggregate, len(contenders))
	for _, c := range contenders {
		out[c.name] = &aggregate{}
	}
	specs := o.qmm()
	jobs := make([]simJob, 0, len(specs)*(1+len(contenders)))
	for _, w := range specs {
		jobs = append(jobs, job("baseline", w, baseline()))
		for _, c := range contenders {
			jobs = append(jobs, job(c.name, w, c.spec))
		}
	}
	sts, err := o.campaign(experiment, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for range specs {
		base := sts[k]
		k++
		for _, c := range contenders {
			st := sts[k]
			k++
			a := out[c.name]
			a.speedups = append(a.speedups, stats.Speedup(uint64(base.Cycles), uint64(st.Cycles)))
			a.coverage = append(a.coverage, stats.Percent(st.PBHits, st.ISTLBMisses))
			a.demand = append(a.demand, 100*stats.Ratio(st.DemandIWalkRefs, base.DemandIWalkRefs))
			a.prefetch = append(a.prefetch, 100*stats.Ratio(st.PrefetchRefs, base.DemandIWalkRefs))
			a.iripHits += st.IRIPHits
			a.sdpHits += st.SDPHits
			for l := 0; l < arch.NumLevels; l++ {
				a.levels[l] += st.PrefetchRefsByLevel[l]
			}
			a.stats = append(a.stats, st)
		}
	}
	return out, nil
}

// Fig9 compares the prior dSTLB prefetchers (original configurations), the
// idealized unbounded Markov prefetchers, and the Perfect iSTLB upper bound
// (paper Figure 9 plus the Section 3.4 idealizations).
func Fig9(o Options) (*Table, error) {
	contenders := []contender{
		{"SP", withPrefetcher(machine.SP())},
		{"ASP (orig 256e)", withPrefetcher(machine.ASP(256))},
		{"DP (orig 256e)", withPrefetcher(machine.DP(256))},
		{"MP (orig 128e)", withPrefetcher(machine.MP(128, 4))},
		{"MP-unbounded-2", withPrefetcher(machine.UnboundedMP(2))},
		{"MP-unbounded-inf", withPrefetcher(machine.UnboundedMP(0))},
		{"Perfect iSTLB", perfect()},
	}
	agg, err := o.compare("fig9", contenders)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9",
		Title:  "dSTLB prefetchers on the iSTLB miss stream vs Perfect iSTLB (geomean speedup)",
		Header: []string{"prefetcher", "speedup", "coverage"},
		Notes: []string{
			"paper: SP 1.6%, ASP ~0.4%, DP ~0.1%, MP 0.2%, MP-unb-2 7.9%, MP-unb-inf 10.3%, Perfect 11.1%",
			"ordering preserved: sequential/stride/distance fail, unbounded Markov approaches Perfect",
		},
	}
	for _, c := range contenders {
		a := agg[c.name]
		t.AddRow(c.name, pct(stats.GeoMeanSpeedup(a.speedups)), pct(stats.Mean(a.coverage)))
	}
	return t, nil
}

// Fig15 is the ISO-storage comparison between Morrigan and the dSTLB
// prefetchers (paper Figure 15), including the IRIP/SDP PB-hit split.
func Fig15(o Options) (*Table, error) {
	contenders := []contender{
		{"SP", withPrefetcher(machine.SP())},
		{"DP (ISO)", withPrefetcher(isoDP())},
		{"ASP (ISO)", withPrefetcher(isoASP())},
		{"MP (ISO)", withPrefetcher(isoMP())},
		{"Morrigan", morrigan()},
	}
	agg, err := o.compare("fig15", contenders)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig15",
		Title:  fmt.Sprintf("ISO-storage comparison at %.2f KB (geomean speedup)", float64(MorriganStorageBits)/8192),
		Header: []string{"prefetcher", "speedup", "coverage"},
		Notes:  []string{"paper: SP 1.6%, DP 0.1%, ASP 0.4%, MP 0.7%, Morrigan 7.6%; 93%/7% IRIP/SDP hit split"},
	}
	for _, c := range contenders {
		a := agg[c.name]
		t.AddRow(c.name, pct(stats.GeoMeanSpeedup(a.speedups)), pct(stats.Mean(a.coverage)))
	}
	m := agg["Morrigan"]
	if hits := m.iripHits + m.sdpHits; hits > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured PB-hit split: IRIP %.0f%%, SDP %.0f%%",
			stats.Percent(m.iripHits, hits), stats.Percent(m.sdpHits, hits)))
	}
	return t, nil
}

// Fig16 reports page-walk memory references, normalized to the baseline's
// demand references (paper Figure 16), plus the serving-level split of
// Morrigan's prefetch references.
func Fig16(o Options) (*Table, error) {
	contenders := []contender{
		{"SP", withPrefetcher(machine.SP())},
		{"ASP (ISO)", withPrefetcher(isoASP())},
		{"DP (ISO)", withPrefetcher(isoDP())},
		{"MP (ISO)", withPrefetcher(isoMP())},
		{"Morrigan", morrigan()},
	}
	agg, err := o.compare("fig16", contenders)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig16",
		Title:  "Page-walk memory references, normalized to baseline demand references",
		Header: []string{"prefetcher", "demand refs", "prefetch refs"},
		Notes: []string{
			"paper: demand refs 89/99/98/92/31%; prefetch refs +20/+1/+6/+7/+117%",
			"paper level split of Morrigan's prefetch refs: L1 20%, L2 25%, LLC 45%, DRAM 10%",
		},
	}
	for _, c := range contenders {
		a := agg[c.name]
		t.AddRow(c.name, pct(stats.Mean(a.demand)), pct(stats.Mean(a.prefetch)))
	}
	m := agg["Morrigan"]
	var total uint64
	for _, v := range m.levels {
		total += v
	}
	if total > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"measured Morrigan prefetch-ref levels: L1 %.0f%%, L2 %.0f%%, LLC %.0f%%, DRAM %.0f%%",
			stats.Percent(m.levels[arch.LevelL1], total),
			stats.Percent(m.levels[arch.LevelL2], total),
			stats.Percent(m.levels[arch.LevelLLC], total),
			stats.Percent(m.levels[arch.LevelDRAM], total)))
	}
	return t, nil
}

// Fig17 compares Morrigan against the ISO-storage single-table
// Morrigan-mono ablation (paper Figure 17).
func Fig17(o Options) (*Table, error) {
	contenders := []contender{
		{"Morrigan", morrigan()},
		{"Morrigan-mono", withPrefetcher(machine.Morrigan(core.MonoConfig()))},
	}
	agg, err := o.compare("fig17", contenders)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig17",
		Title:  "Ensemble (448 effective entries) vs single 203-entry 8-slot table, ISO-storage",
		Header: []string{"design", "speedup", "coverage"},
		Notes:  []string{"paper: Morrigan outperforms mono by 1.9% on average"},
	}
	for _, c := range contenders {
		a := agg[c.name]
		t.AddRow(c.name, pct(stats.GeoMeanSpeedup(a.speedups)), pct(stats.Mean(a.coverage)))
	}
	mor := stats.GeoMeanSpeedup(agg["Morrigan"].speedups)
	mono := stats.GeoMeanSpeedup(agg["Morrigan-mono"].speedups)
	t.Notes = append(t.Notes, fmt.Sprintf("measured gap: %.2f%%", mor-mono))
	return t, nil
}
