package experiments

import (
	"fmt"

	"morrigan/internal/arch"
	"morrigan/internal/sim"
	"morrigan/internal/stats"
	"morrigan/internal/workloads"
)

// Table1 reports the simulated system configuration (the paper's Table 1).
func Table1(o Options) (*Table, error) {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "table1",
		Title:  "System configuration",
		Header: []string{"component", "description"},
	}
	t.AddRow("Core", fmt.Sprintf("%d-wide interval model, ROB %d", cfg.Core.Width, cfg.Core.ROB))
	t.AddRow("L1 I-TLB", fmt.Sprintf("%d-entry, %d-way, %d-cycle", cfg.ITLBEntries, cfg.ITLBWays, cfg.ITLBLatency))
	t.AddRow("L1 D-TLB", fmt.Sprintf("%d-entry, %d-way, %d-cycle", cfg.DTLBEntries, cfg.DTLBWays, cfg.DTLBLatency))
	t.AddRow("L2 TLB (STLB)", fmt.Sprintf("%d-entry, %d-way, %d-cycle", cfg.STLBEntries, cfg.STLBWays, cfg.STLBLatency))
	t.AddRow("PSC", fmt.Sprintf("3-level split, %d-cycle: PML4 %d-entry, PDP %d-entry, PD %d-entry %d-way",
		cfg.Walker.PSC.Latency, cfg.Walker.PSC.PML4Entries, cfg.Walker.PSC.PDPEntries, cfg.Walker.PSC.PDEntries, cfg.Walker.PSC.PDWays))
	t.AddRow("Page walker", fmt.Sprintf("4-level radix, %d MSHRs", cfg.Walker.MSHRs))
	t.AddRow("Prefetch Buffer", fmt.Sprintf("%d-entry, fully assoc, %d-cycle", cfg.PBEntries, cfg.PBLatency))
	t.AddRow("L1I", fmt.Sprintf("%d KB, %d-way, %d-cycle, next-line prefetcher",
		cfg.Cache.L1ISets*cfg.Cache.L1IWays*arch.LineSize/1024, cfg.Cache.L1IWays, cfg.Cache.L1Latency))
	t.AddRow("L1D", fmt.Sprintf("%d KB, %d-way, %d-cycle",
		cfg.Cache.L1DSets*cfg.Cache.L1DWays*arch.LineSize/1024, cfg.Cache.L1DWays, cfg.Cache.L1Latency))
	t.AddRow("L2", fmt.Sprintf("%d KB, %d-way, %d-cycle, stride prefetcher (SPP stand-in)",
		cfg.Cache.L2Sets*cfg.Cache.L2Ways*arch.LineSize/1024, cfg.Cache.L2Ways, cfg.Cache.L2Latency))
	t.AddRow("LLC", fmt.Sprintf("%d MB, %d-way, %d-cycle",
		cfg.Cache.LLCSets*cfg.Cache.LLCWays*arch.LineSize/1024/1024, cfg.Cache.LLCWays, cfg.Cache.LLCLatency))
	t.AddRow("DRAM", fmt.Sprintf("%d-cycle fixed latency", cfg.Cache.DRAMLatency))
	return t, nil
}

// Fig2 measures the iSTLB MPKI of the Java-server-like workloads (paper
// Figure 2: 0.6-2.1 MPKI on a 1536-entry STLB).
func Fig2(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig2",
		Title:  "iSTLB MPKI of Java server workloads",
		Header: []string{"workload", "iSTLB MPKI"},
		Notes:  []string{"paper: 0.6-2.1 MPKI across DaCapo/Renaissance on Skylake"},
	}
	java := workloads.Java()
	jobs := make([]simJob, len(java))
	for i, w := range java {
		jobs[i] = job("baseline", w, baseline())
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	for i, w := range java {
		t.AddRow(w.Name, f2(sts[i].ISTLBMPKI))
	}
	return t, nil
}

// Fig3 contrasts front-end MPKI (L1I, I-TLB, iSTLB) between the SPEC-like
// and QMM-like suites (paper Figure 3: an order-of-magnitude gap).
func Fig3(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Instruction MPKI for front-end structures (suite averages)",
		Header: []string{"suite", "L1I MPKI", "I-TLB MPKI", "iSTLB MPKI"},
		Notes:  []string{"paper: QMM an order of magnitude above SPEC on all three"},
	}
	suites := []struct {
		name  string
		specs []workloads.Spec
	}{
		{"SPEC-like", workloads.SPEC()},
		{"QMM-like", o.qmm()},
	}
	var jobs []simJob
	for _, suite := range suites {
		for _, w := range suite.specs {
			jobs = append(jobs, job(suite.name, w, baseline()))
		}
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, suite := range suites {
		var l1i, itlb, istlb []float64
		for range suite.specs {
			st := sts[k]
			k++
			l1i = append(l1i, st.L1IMPKI)
			itlb = append(itlb, st.ITLBMPKI)
			istlb = append(istlb, st.ISTLBMPKI)
		}
		t.AddRow(suite.name, f2(stats.Mean(l1i)), f2(stats.Mean(itlb)), f2(stats.Mean(istlb)))
	}
	return t, nil
}

// Fig4 reports the share of execution cycles spent serving iSTLB accesses
// (paper Figure 4: 6.6-11.7%, all above VTune's 5% bottleneck threshold).
func Fig4(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Cycles serving iSTLB accesses (% of total execution cycles)",
		Header: []string{"workload", "translation cycles"},
		Notes:  []string{"paper: 6.6%-11.7%; VTune flags >5% as a bottleneck"},
	}
	qmm := o.qmm()
	jobs := make([]simJob, len(qmm))
	for i, w := range qmm {
		jobs[i] = job("baseline", w, baseline())
	}
	sts, err := o.campaign(t.ID, jobs)
	if err != nil {
		return nil, err
	}
	var all []float64
	for i, w := range qmm {
		all = append(all, sts[i].TranslationCyclePct)
		t.AddRow(w.Name, pct(sts[i].TranslationCyclePct))
	}
	t.AddRow("mean", pct(stats.Mean(all)))
	return t, nil
}

// Fig5 builds the cumulative distribution of deltas between consecutive
// iSTLB misses (paper Figure 5: deltas 1-10 cover ~19%).
func Fig5(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Cumulative distribution of |delta| between consecutive iSTLB misses",
		Header: []string{"|delta| <=", "cumulative"},
		Notes:  []string{"paper: |delta| in [1,10] accounts for ~19% of deltas"},
	}
	streams, _, err := o.missStreams(t.ID, o.qmm())
	if err != nil {
		return nil, err
	}
	agg := stats.NewDeltaDistribution()
	for _, stream := range streams {
		for _, p := range stream {
			agg.Observe(p)
		}
	}
	for _, lim := range []uint64{1, 2, 5, 10, 50, 100, 1000, 10000, 1 << 30} {
		label := fmt.Sprintf("%d", lim)
		if lim == 1<<30 {
			label = "all"
		}
		t.AddRow(label, pct(agg.CumulativeUpTo(lim)))
	}
	return t, nil
}

// Fig6 reports how many of the hottest instruction pages cover 50/80/90% of
// iSTLB misses (paper Figure 6: 400-800 pages for 90%).
func Fig6(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Instruction pages sorted by STLB miss frequency",
		Header: []string{"workload", "misses", "distinct pages", "pages@50%", "pages@80%", "pages@90%"},
		Notes:  []string{"paper: 400-800 pages cause 90% of iSTLB misses"},
	}
	qmm := o.qmm()
	// Representative sample across footprints, as the paper plots.
	idx := []int{0, len(qmm) / 4, len(qmm) / 2, 3 * len(qmm) / 4, len(qmm) - 1}
	specs := make([]workloads.Spec, len(idx))
	for i, j := range idx {
		specs[i] = qmm[j]
	}
	streams, _, err := o.missStreams(t.ID, specs)
	if err != nil {
		return nil, err
	}
	for i, w := range specs {
		pf := stats.NewPageFrequency()
		for _, p := range streams[i] {
			pf.Observe(p)
		}
		t.AddRow(w.Name,
			fmt.Sprintf("%d", pf.Total()),
			fmt.Sprintf("%d", pf.Pages()),
			fmt.Sprintf("%d", pf.PagesForCoverage(50)),
			fmt.Sprintf("%d", pf.PagesForCoverage(80)),
			fmt.Sprintf("%d", pf.PagesForCoverage(90)))
	}
	return t, nil
}

// Fig7 buckets instruction pages by how many distinct successor pages they
// have in the miss stream (paper Figure 7).
func Fig7(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Successors per instruction page in the iSTLB miss stream (% of pages)",
		Header: []string{"workload", "=1", "=2", "3-4", "5-8", ">8"},
		Notes:  []string{"paper: large fractions at 1-2, sizable up to 8, few beyond"},
	}
	streams, _, err := o.missStreams(t.ID, o.qmm())
	if err != nil {
		return nil, err
	}
	var a1, a2, a4, a8, am []float64
	for _, stream := range streams {
		ss := stats.NewSuccessorStats()
		for _, p := range stream {
			ss.Observe(p)
		}
		one, two, four, eight, more := ss.SuccessorHistogram()
		a1, a2, a4 = append(a1, one), append(a2, two), append(a4, four)
		a8, am = append(a8, eight), append(am, more)
	}
	t.AddRow("mean over suite",
		pct(stats.Mean(a1)), pct(stats.Mean(a2)), pct(stats.Mean(a4)),
		pct(stats.Mean(a8)), pct(stats.Mean(am)))
	return t, nil
}

// Fig8 measures the probability of the most likely successors for the top
// 50 missing pages (paper Figure 8: 51/21/11/17).
func Fig8(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Probability of accessing the same successor after an iSTLB miss (top-50 pages)",
		Header: []string{"suite", "1st", "2nd", "3rd", "rest"},
		Notes:  []string{"paper: 51% / 21% / 11% / 17%"},
	}
	streams, _, err := o.missStreams(t.ID, o.qmm())
	if err != nil {
		return nil, err
	}
	var f, s2, s3, r []float64
	for _, stream := range streams {
		ss := stats.NewSuccessorStats()
		for _, p := range stream {
			ss.Observe(p)
		}
		first, second, third, rest := ss.TopPageSuccessorProbabilities(50)
		f, s2 = append(f, first), append(s2, second)
		s3, r = append(s3, third), append(r, rest)
	}
	t.AddRow("mean over suite", pct(stats.Mean(f)), pct(stats.Mean(s2)), pct(stats.Mean(s3)), pct(stats.Mean(r)))
	return t, nil
}
