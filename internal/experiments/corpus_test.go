package experiments

import (
	"testing"

	"morrigan/internal/tracestore"
	"morrigan/internal/workloads"
)

// TestCorpusStatsEquivalence runs one campaign twice — trace supply from
// live generators, then from a materialised corpus store — and requires
// bit-identical Stats for every job, single-threaded and SMT alike. The
// corpus is purely a faster way to deliver the same record stream; any
// divergence here means the container or the batch path altered the
// simulation.
func TestCorpusStatsEquivalence(t *testing.T) {
	o := Options{Warmup: 10_000, Measure: 40_000, Jobs: 2}
	ws := workloads.QMM()
	jobs := []simJob{
		job("baseline", ws[0], baseline()),
		job("baseline", ws[1], baseline()),
		pairJob("baseline", ws[0], ws[2], baseline()),
	}
	gen, err := o.campaign("equiv", jobs)
	if err != nil {
		t.Fatalf("generator campaign: %v", err)
	}

	store, err := tracestore.Open(tracestore.Options{Dir: t.TempDir(), ChunkRecords: 4096})
	if err != nil {
		t.Fatalf("tracestore.Open: %v", err)
	}
	defer store.Close()
	oc := o
	oc.Corpus = store
	cor, err := oc.campaign("equiv", jobs)
	if err != nil {
		t.Fatalf("corpus campaign: %v", err)
	}

	if len(gen) != len(cor) {
		t.Fatalf("campaign sizes differ: %d vs %d", len(gen), len(cor))
	}
	for i := range gen {
		if gen[i] != cor[i] {
			t.Errorf("job %d stats diverge:\ngenerator: %+v\ncorpus:    %+v", i, gen[i], cor[i])
		}
	}

	// The store decoded each chunk at most once per residency; with the
	// default budget nothing is evicted at this scale, so cross-job sharing
	// must show up as hits.
	cs := store.CacheStats()
	if cs.Gets != cs.Hits+cs.Misses || cs.Decodes != cs.Misses {
		t.Fatalf("cache accounting inconsistent: %+v", cs)
	}
	if cs.Hits == 0 {
		t.Fatalf("campaign with a shared workload produced no cache hits: %+v", cs)
	}

	// Rerunning against the already-materialised store must also match.
	again, err := oc.campaign("equiv", jobs)
	if err != nil {
		t.Fatalf("second corpus campaign: %v", err)
	}
	for i := range gen {
		if gen[i] != again[i] {
			t.Errorf("job %d stats diverge on corpus reuse", i)
		}
	}
}
