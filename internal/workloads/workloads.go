// Package workloads defines the benchmark suite of the reproduction: 45
// synthetic "QMM-like" server workloads standing in for the Qualcomm
// CVP-1/IPC-1 traces the paper evaluates on, a SPEC-CPU-like suite of small
// instruction-footprint workloads for the Figure 3 contrast, and a
// Java-server-like set for the Figure 2 motivation. SMT pairs for the
// Section 6.6 colocation study are drawn from the QMM set.
//
// Parameters are scheduled deterministically per workload index so that the
// suite spans the behaviour the paper reports: instruction footprints of
// several hundred to a few thousand 4 KB pages, Zipf-skewed page popularity
// (a few hundred pages produce 90% of iSTLB misses), successor fan-outs per
// Figure 7, limited small-delta locality per Figure 5, and phase changes.
package workloads

import (
	"fmt"
	"math/rand"

	"morrigan/internal/trace"
)

// Spec names one workload and its generator parameters.
type Spec struct {
	// Name identifies the workload in reports (e.g. "qmm-srv-07").
	Name string
	// Params configures the synthetic trace generator.
	Params trace.ServerParams
}

// NewReader returns a fresh, deterministic instruction stream for the
// workload. Each call restarts the stream from the beginning.
func (s Spec) NewReader() trace.Reader {
	return trace.NewServerGenerator(s.Params)
}

// QMMCount is the size of the server suite, matching the paper's 45
// instruction-TLB-intensive QMM workloads.
const QMMCount = 45

// lerp interpolates a..b by t in [0,1).
func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// QMM returns the 45 QMM-like server workload specs.
func QMM() []Spec {
	specs := make([]Spec, 0, QMMCount)
	for i := 0; i < QMMCount; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		t := float64(i) / float64(QMMCount-1)
		// Spread instruction footprints from ~1000 to ~2750 pages with
		// per-workload jitter, far beyond the 128-entry I-TLB reach and
		// around the shared STLB's capacity. The warm band is an absolute
		// ~520-760 pages so that, as the paper measures, a modest number
		// of pages produces ~90% of the iSTLB misses.
		codePages := int(lerp(1200, 2800, t)) + rng.Intn(150)
		dataPages := 4096 + rng.Intn(8000)
		pWarm := lerp(0.10, 0.24, t) + rng.Float64()*0.02
		specs = append(specs, Spec{
			Name: fmt.Sprintf("qmm-srv-%02d", i+1),
			Params: trace.ServerParams{
				Seed:             int64(7000 + i*13),
				CodePages:        codePages,
				DataPages:        dataPages,
				HotFrac:          (480 + 160*t + 40*rng.Float64()) / float64(codePages),
				WarmFrac:         (300 + 170*t + 40*rng.Float64()) / float64(codePages),
				PHot:             1 - pWarm - 0.008,
				PWarm:            pWarm,
				RoutineLenMin:    2,
				RoutineLenMax:    10 + rng.Intn(8),
				RunLenMin:        6,
				RunLenMax:        28 + rng.Intn(24),
				EntryPoints:      4,
				SeqFrac:          0.16 + rng.Float64()*0.06,
				SmallDeltaFrac:   0.18 + rng.Float64()*0.08,
				BranchSkipFrac:   0.12 + rng.Float64()*0.08,
				SuccWeights:      [5]float64{0.33, 0.20, 0.22, 0.18, 0.07},
				RandomCallFrac:   0.002 + rng.Float64()*0.003,
				LoadFrac:         0.24 + rng.Float64()*0.06,
				StoreFrac:        0.09 + rng.Float64()*0.03,
				DataZipfS:        1.5 + rng.Float64()*0.2,
				DataStreamFrac:   0.12 + rng.Float64()*0.08,
				PhaseLen:         600_000 + uint64(rng.Intn(400_000)),
				PhaseShuffleFrac: 0.04 + rng.Float64()*0.05,
			},
		})
	}
	return specs
}

// SPEC returns SPEC-CPU-like workload specs: small, loopy instruction
// footprints whose iSTLB MPKI is negligible (which is why the paper excludes
// them from the evaluation and uses them only for the Figure 3 contrast).
func SPEC() []Spec {
	names := []string{
		"spec-perlish", "spec-gccish", "spec-mcfish", "spec-omnetish",
		"spec-xalanish", "spec-x264ish", "spec-deepsjengish",
		"spec-leelaish", "spec-exchangeish", "spec-xzish",
	}
	specs := make([]Spec, 0, len(names))
	for i, n := range names {
		rng := rand.New(rand.NewSource(int64(2000 + i)))
		specs = append(specs, Spec{
			Name: n,
			Params: trace.ServerParams{
				Seed:             int64(9000 + i*17),
				CodePages:        24 + rng.Intn(72),
				DataPages:        2048 + rng.Intn(14000),
				HotFrac:          0.5, // tight hot loops: nearly everything resident
				WarmFrac:         0.3,
				PHot:             0.9,
				PWarm:            0.08,
				RoutineLenMin:    1,
				RoutineLenMax:    4,
				RunLenMin:        24,
				RunLenMax:        120,
				EntryPoints:      2,
				SeqFrac:          0.4,
				SmallDeltaFrac:   0.3,
				BranchSkipFrac:   0.05,
				SuccWeights:      [5]float64{0.6, 0.25, 0.1, 0.05, 0},
				RandomCallFrac:   0.05,
				LoadFrac:         0.28,
				StoreFrac:        0.1,
				DataZipfS:        1.3,
				DataStreamFrac:   0.4,
				PhaseLen:         2_000_000,
				PhaseShuffleFrac: 0.05,
			},
		})
	}
	return specs
}

// Java returns Java-server-like specs named after the DaCapo and Renaissance
// applications of Figure 2.
func Java() []Spec {
	names := []string{
		"cassandra", "tomcat", "avrora", "tradesoap", "xalan",
		"http", "chirper",
	}
	specs := make([]Spec, 0, len(names))
	for i, n := range names {
		rng := rand.New(rand.NewSource(int64(3000 + i)))
		codePages := 1100 + rng.Intn(1600)
		pWarm := 0.08 + rng.Float64()*0.12
		specs = append(specs, Spec{
			Name: n,
			Params: trace.ServerParams{
				Seed:             int64(5000 + i*29),
				CodePages:        codePages,
				DataPages:        6144 + rng.Intn(8192),
				HotFrac:          (460 + 140*rng.Float64()) / float64(codePages),
				WarmFrac:         (320 + 160*rng.Float64()) / float64(codePages),
				PHot:             1 - pWarm - 0.008,
				PWarm:            pWarm,
				RoutineLenMin:    2,
				RoutineLenMax:    12,
				RunLenMin:        6,
				RunLenMax:        32,
				EntryPoints:      4,
				SeqFrac:          0.16,
				SmallDeltaFrac:   0.2,
				BranchSkipFrac:   0.15,
				SuccWeights:      [5]float64{0.33, 0.2, 0.22, 0.18, 0.07},
				RandomCallFrac:   0.004,
				LoadFrac:         0.26,
				StoreFrac:        0.1,
				DataZipfS:        1.6,
				DataStreamFrac:   0.18,
				PhaseLen:         700_000,
				PhaseShuffleFrac: 0.06,
			},
		})
	}
	return specs
}

// SMTPairs draws n deterministic random pairs of distinct QMM workloads for
// the Section 6.6 colocation study (the paper uses 50 randomly chosen
// pairs).
func SMTPairs(n int, seed int64) [][2]Spec {
	qmm := QMM()
	rng := rand.New(rand.NewSource(seed))
	pairs := make([][2]Spec, 0, n)
	for len(pairs) < n {
		a, b := rng.Intn(len(qmm)), rng.Intn(len(qmm))
		if a == b {
			continue
		}
		pairs = append(pairs, [2]Spec{qmm[a], qmm[b]})
	}
	return pairs
}

// Mixes draws n deterministic colocation mixes of `way` distinct QMM
// workloads each, generalising SMTPairs to the N-way shared-STLB studies.
// The same (n, way, seed) always yields the same mixes.
func Mixes(n, way int, seed int64) [][]Spec {
	qmm := QMM()
	rng := rand.New(rand.NewSource(seed))
	mixes := make([][]Spec, 0, n)
	for len(mixes) < n {
		picked := make(map[int]bool, way)
		mix := make([]Spec, 0, way)
		for len(mix) < way {
			i := rng.Intn(len(qmm))
			if picked[i] {
				continue
			}
			picked[i] = true
			mix = append(mix, qmm[i])
		}
		mixes = append(mixes, mix)
	}
	return mixes
}

// ByName returns the workload with the given name from any built-in suite.
func ByName(name string) (Spec, bool) {
	for _, suite := range [][]Spec{QMM(), SPEC(), Java()} {
		for _, s := range suite {
			if s.Name == name {
				return s, true
			}
		}
	}
	return Spec{}, false
}

// All returns every built-in workload.
func All() []Spec {
	var out []Spec
	out = append(out, QMM()...)
	out = append(out, SPEC()...)
	out = append(out, Java()...)
	return out
}
