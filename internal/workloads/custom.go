package workloads

import (
	"encoding/json"
	"fmt"
	"io"

	"morrigan/internal/trace"
)

// customSpec is the JSON shape of a user-defined workload.
type customSpec struct {
	Name   string             `json:"name"`
	Params trace.ServerParams `json:"params"`
}

// LoadSpec parses a user-defined workload from JSON:
//
//	{
//	  "name": "my-service",
//	  "params": {
//	    "Seed": 1, "CodePages": 1500, "DataPages": 8192,
//	    "HotFrac": 0.3, "WarmFrac": 0.3, "PHot": 0.8, "PWarm": 0.18,
//	    "RoutineLenMin": 2, "RoutineLenMax": 10,
//	    "RunLenMin": 6, "RunLenMax": 40, "EntryPoints": 4,
//	    "SeqFrac": 0.15, "SmallDeltaFrac": 0.2, "BranchSkipFrac": 0.1,
//	    "SuccWeights": [0.33, 0.2, 0.22, 0.18, 0.07],
//	    "RandomCallFrac": 0.005,
//	    "LoadFrac": 0.25, "StoreFrac": 0.1,
//	    "DataZipfS": 1.6, "DataStreamFrac": 0.15,
//	    "PhaseLen": 700000, "PhaseShuffleFrac": 0.06
//	  }
//	}
//
// The parameters are validated before the spec is returned.
func LoadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c customSpec
	if err := dec.Decode(&c); err != nil {
		return Spec{}, fmt.Errorf("workloads: parsing custom spec: %w", err)
	}
	if c.Name == "" {
		return Spec{}, fmt.Errorf("workloads: custom spec needs a name")
	}
	if err := c.Params.Validate(); err != nil {
		return Spec{}, fmt.Errorf("workloads: custom spec %q: %w", c.Name, err)
	}
	return Spec{Name: c.Name, Params: c.Params}, nil
}

// SaveSpec serialises a workload spec as indented JSON, the format LoadSpec
// reads.
func SaveSpec(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(customSpec{Name: s.Name, Params: s.Params}); err != nil {
		return fmt.Errorf("workloads: writing custom spec: %w", err)
	}
	return nil
}
