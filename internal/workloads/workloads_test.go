package workloads

import (
	"bytes"
	"strings"
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/stats"
	"morrigan/internal/trace"
)

func TestSuiteSizes(t *testing.T) {
	if got := len(QMM()); got != QMMCount {
		t.Fatalf("QMM suite = %d workloads, want %d", got, QMMCount)
	}
	if got := len(SPEC()); got != 10 {
		t.Fatalf("SPEC suite = %d workloads, want 10", got)
	}
	if got := len(Java()); got != 7 {
		t.Fatalf("Java suite = %d workloads, want 7", got)
	}
	if got := len(All()); got != QMMCount+17 {
		t.Fatalf("All = %d", got)
	}
}

func TestAllParamsValid(t *testing.T) {
	for _, s := range All() {
		if err := s.Params.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Name == "" {
			t.Error("unnamed workload")
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("qmm-srv-07"); !ok || s.Name != "qmm-srv-07" {
		t.Fatalf("ByName(qmm-srv-07) = %v %v", s.Name, ok)
	}
	if _, ok := ByName("cassandra"); !ok {
		t.Fatal("ByName(cassandra) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) found something")
	}
}

func TestReadersDeterministicAndFresh(t *testing.T) {
	w := QMM()[0]
	a, _ := trace.Slice(w.NewReader(), 5000)
	b, _ := trace.Slice(w.NewReader(), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between fresh readers", i)
		}
	}
}

func TestQMMWorkloadsDiffer(t *testing.T) {
	qmm := QMM()
	a, _ := trace.Slice(qmm[0].NewReader(), 2000)
	b, _ := trace.Slice(qmm[1].NewReader(), 2000)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two QMM workloads produced identical traces")
	}
}

func TestSMTPairs(t *testing.T) {
	pairs := SMTPairs(50, 99)
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for i, p := range pairs {
		if p[0].Name == p[1].Name {
			t.Errorf("pair %d colocates a workload with itself", i)
		}
	}
	// Deterministic for a fixed seed.
	again := SMTPairs(50, 99)
	for i := range pairs {
		if pairs[i][0].Name != again[i][0].Name || pairs[i][1].Name != again[i][1].Name {
			t.Fatal("SMTPairs not deterministic")
		}
	}
	// Different seed, different draw.
	other := SMTPairs(50, 100)
	diff := false
	for i := range pairs {
		if pairs[i][0].Name != other[i][0].Name {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical pair lists")
	}
}

func TestMixes(t *testing.T) {
	for _, way := range []int{4, 8, 16} {
		mixes := Mixes(5, way, 7)
		if len(mixes) != 5 {
			t.Fatalf("%d-way: mixes = %d, want 5", way, len(mixes))
		}
		for i, mix := range mixes {
			if len(mix) != way {
				t.Fatalf("%d-way mix %d has %d workloads", way, i, len(mix))
			}
			seen := make(map[string]bool, way)
			for _, w := range mix {
				if seen[w.Name] {
					t.Errorf("%d-way mix %d colocates %s with itself", way, i, w.Name)
				}
				seen[w.Name] = true
				if _, ok := ByName(w.Name); !ok {
					t.Errorf("%d-way mix %d drew unknown workload %s", way, i, w.Name)
				}
			}
		}
		// Deterministic for a fixed seed.
		again := Mixes(5, way, 7)
		for i := range mixes {
			for j := range mixes[i] {
				if mixes[i][j].Name != again[i][j].Name {
					t.Fatalf("%d-way Mixes not deterministic", way)
				}
			}
		}
	}
	// Different seed, different draw.
	a, b := Mixes(5, 4, 7), Mixes(5, 4, 8)
	diff := false
	for i := range a {
		for j := range a[i] {
			if a[i][j].Name != b[i][j].Name {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical mix lists")
	}
}

func TestQMMFootprintsSpanRange(t *testing.T) {
	qmm := QMM()
	small := qmm[0].Params.CodePages
	large := qmm[QMMCount-1].Params.CodePages
	if small >= large {
		t.Fatalf("footprints not increasing: %d .. %d", small, large)
	}
	if small < 800 || large > 3500 {
		t.Fatalf("footprint range [%d, %d] outside server band", small, large)
	}
}

// TestMissStreamShape verifies the paper's Section 3.3 characterisation on a
// sample workload's raw page-transition stream: skewed page popularity and
// bounded successor fan-out.
func TestMissStreamShape(t *testing.T) {
	w := QMM()[20]
	r := w.NewReader()
	succ := stats.NewSuccessorStats()
	freq := stats.NewPageFrequency()
	var rec trace.Record
	var prev arch.VPN
	for i := 0; i < 2_000_000; i++ {
		if err := r.Next(&rec); err != nil {
			t.Fatal(err)
		}
		vpn := rec.PC.Page()
		if vpn != prev {
			succ.Observe(uint64(vpn))
			freq.Observe(uint64(vpn))
			prev = vpn
		}
	}
	// Successor fan-out is bounded: most pages have few successors.
	one, two, four, eight, more := succ.SuccessorHistogram()
	if one+two+four+eight < 50 {
		t.Errorf("successor histogram too flat: %v %v %v %v %v", one, two, four, eight, more)
	}
	// Popularity is skewed: far fewer than half the pages carry 90% of
	// the transitions.
	if n := freq.PagesForCoverage(90); n > freq.Pages()*3/4 {
		t.Errorf("PagesForCoverage(90) = %d of %d pages: not skewed", n, freq.Pages())
	}
	// Top pages have predictable successors (Finding 3 direction).
	first, second, third, rest := succ.TopPageSuccessorProbabilities(50)
	if first < 30 {
		t.Errorf("top successor probability = %v, want dominant", first)
	}
	if first+second+third+rest < 99.9 {
		t.Errorf("probabilities do not sum: %v %v %v %v", first, second, third, rest)
	}
}

func TestSPECSmallFootprint(t *testing.T) {
	for _, s := range SPEC() {
		if s.Params.CodePages >= 200 {
			t.Errorf("%s: CodePages = %d, SPEC-like should be small", s.Name, s.Params.CodePages)
		}
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := QMM()[12]
	var buf bytes.Buffer
	if err := SaveSpec(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Params != orig.Params {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, orig)
	}
}

func TestLoadSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"missing name":   `{"params":{}}`,
		"invalid params": `{"name":"x","params":{"CodePages":1}}`,
		"unknown field":  `{"name":"x","nope":1,"params":{}}`,
	}
	for label, in := range cases {
		if _, err := LoadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestLoadSpecValid(t *testing.T) {
	in := `{
	  "name": "my-service",
	  "params": {
	    "Seed": 1, "CodePages": 1500, "DataPages": 8192,
	    "HotFrac": 0.3, "WarmFrac": 0.3, "PHot": 0.8, "PWarm": 0.18,
	    "RoutineLenMin": 2, "RoutineLenMax": 10,
	    "RunLenMin": 6, "RunLenMax": 40, "EntryPoints": 4,
	    "SeqFrac": 0.15, "SmallDeltaFrac": 0.2, "BranchSkipFrac": 0.1,
	    "SuccWeights": [0.33, 0.2, 0.22, 0.18, 0.07],
	    "RandomCallFrac": 0.005,
	    "LoadFrac": 0.25, "StoreFrac": 0.1,
	    "DataZipfS": 1.6, "DataStreamFrac": 0.15,
	    "PhaseLen": 700000, "PhaseShuffleFrac": 0.06
	  }
	}`
	spec, err := LoadSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "my-service" || spec.Params.CodePages != 1500 {
		t.Fatalf("spec = %+v", spec)
	}
	// The spec must produce a working generator.
	r := spec.NewReader()
	var rec trace.Record
	if err := r.Next(&rec); err != nil || rec.PC == 0 {
		t.Fatalf("generator: rec=%+v err=%v", rec, err)
	}
}
