package workloads

import (
	"reflect"
	"testing"

	"morrigan/internal/trace"
)

// goldenParams pins one fully populated parameter set for the hash golden.
func goldenParams() trace.ServerParams {
	return trace.ServerParams{
		Seed:             42,
		CodePages:        256,
		DataPages:        2048,
		HotFrac:          0.15,
		WarmFrac:         0.35,
		PHot:             0.7,
		PWarm:            0.25,
		RoutineLenMin:    2,
		RoutineLenMax:    10,
		RunLenMin:        8,
		RunLenMax:        48,
		EntryPoints:      4,
		SeqFrac:          0.1,
		SmallDeltaFrac:   0.2,
		BranchSkipFrac:   0.15,
		SuccWeights:      [5]float64{0.35, 0.20, 0.20, 0.18, 0.07},
		RandomCallFrac:   0.15,
		LoadFrac:         0.25,
		StoreFrac:        0.1,
		DataZipfS:        1.3,
		DataStreamFrac:   0.2,
		PhaseLen:         50_000,
		PhaseShuffleFrac: 0.1,
	}
}

// TestSpecHashGolden pins the canonical encoding: these values are part of
// the corpus on-disk contract. If this test fails, either the encoding
// changed by accident (fix the code) or deliberately (bump
// paramsHashVersion and update the goldens — existing corpora rebuild).
func TestSpecHashGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{
			name: "golden-params",
			spec: Spec{Name: "golden", Params: goldenParams()},
			want: "04ff6d969039a2d791d9685063d55a482b25c652b631059424c948f10d3070cf",
		},
		{
			name: "zero-params",
			spec: Spec{Name: "zero"},
			want: "61f1cd87d4075de7bcb6c8d60d745b22c84bc366187e0c7fcbee024e9c0adfa0",
		},
	}
	for _, tc := range cases {
		if got := tc.spec.Hash(); got != tc.want {
			t.Errorf("%s: Hash() = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestSpecHashFieldCount fails when trace.ServerParams grows a field that
// Hash does not fold in, which would let two different workloads share a
// corpus.
func TestSpecHashFieldCount(t *testing.T) {
	got := reflect.TypeOf(trace.ServerParams{}).NumField()
	if got != hashedParamsFieldCount {
		t.Fatalf("trace.ServerParams has %d fields, Hash encodes %d — extend Spec.Hash and bump paramsHashVersion",
			got, hashedParamsFieldCount)
	}
}

// TestSpecHashSensitivity checks every parameter influences the hash and the
// display name does not.
func TestSpecHashSensitivity(t *testing.T) {
	base := Spec{Name: "base", Params: goldenParams()}
	renamed := base
	renamed.Name = "other"
	if renamed.Hash() != base.Hash() {
		t.Fatalf("name change altered the hash")
	}
	mutations := map[string]func(*trace.ServerParams){
		"Seed":             func(p *trace.ServerParams) { p.Seed++ },
		"CodePages":        func(p *trace.ServerParams) { p.CodePages++ },
		"DataPages":        func(p *trace.ServerParams) { p.DataPages++ },
		"HotFrac":          func(p *trace.ServerParams) { p.HotFrac += 0.01 },
		"WarmFrac":         func(p *trace.ServerParams) { p.WarmFrac += 0.01 },
		"PHot":             func(p *trace.ServerParams) { p.PHot += 0.01 },
		"PWarm":            func(p *trace.ServerParams) { p.PWarm += 0.01 },
		"RoutineLenMin":    func(p *trace.ServerParams) { p.RoutineLenMin++ },
		"RoutineLenMax":    func(p *trace.ServerParams) { p.RoutineLenMax++ },
		"RunLenMin":        func(p *trace.ServerParams) { p.RunLenMin++ },
		"RunLenMax":        func(p *trace.ServerParams) { p.RunLenMax++ },
		"EntryPoints":      func(p *trace.ServerParams) { p.EntryPoints++ },
		"SeqFrac":          func(p *trace.ServerParams) { p.SeqFrac += 0.01 },
		"SmallDeltaFrac":   func(p *trace.ServerParams) { p.SmallDeltaFrac += 0.01 },
		"BranchSkipFrac":   func(p *trace.ServerParams) { p.BranchSkipFrac += 0.01 },
		"SuccWeights":      func(p *trace.ServerParams) { p.SuccWeights[4] += 0.01 },
		"RandomCallFrac":   func(p *trace.ServerParams) { p.RandomCallFrac += 0.01 },
		"LoadFrac":         func(p *trace.ServerParams) { p.LoadFrac += 0.01 },
		"StoreFrac":        func(p *trace.ServerParams) { p.StoreFrac += 0.01 },
		"DataZipfS":        func(p *trace.ServerParams) { p.DataZipfS += 0.01 },
		"DataStreamFrac":   func(p *trace.ServerParams) { p.DataStreamFrac += 0.01 },
		"PhaseLen":         func(p *trace.ServerParams) { p.PhaseLen++ },
		"PhaseShuffleFrac": func(p *trace.ServerParams) { p.PhaseShuffleFrac += 0.01 },
	}
	if len(mutations) != hashedParamsFieldCount {
		t.Fatalf("sensitivity table covers %d fields, want %d", len(mutations), hashedParamsFieldCount)
	}
	for field, mutate := range mutations {
		s := base
		mutate(&s.Params)
		if s.Hash() == base.Hash() {
			t.Errorf("mutating %s did not change the hash", field)
		}
	}
}
