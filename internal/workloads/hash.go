package workloads

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// paramsHashVersion is folded into the hash so a deliberate change to the
// canonical encoding (or to the set of hashed fields) invalidates every
// existing corpus instead of silently colliding with stale ones.
const paramsHashVersion = "morrigan/trace.ServerParams/v1"

// Hash returns a stable, platform-independent identity for the workload's
// generator parameters: the SHA-256 of a canonical fixed-order encoding of
// every trace.ServerParams field, as lowercase hex.
//
// It is the corpus-invalidation key of internal/tracestore: two specs with
// identical parameters (names aside — the name does not influence the
// instruction stream) share a materialised corpus, and any parameter change
// produces a new key, orphaning the stale container. The encoding is part of
// the on-disk contract — TestSpecHashGolden pins known values so an
// accidental change to this function (or a field addition that forgets to
// extend it) is caught in review. When the encoding must change, bump
// paramsHashVersion.
func (s Spec) Hash() string {
	p := s.Params
	h := sha256.New()
	h.Write([]byte(paramsHashVersion))
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }

	wu(uint64(p.Seed))
	wi(p.CodePages)
	wi(p.DataPages)
	wf(p.HotFrac)
	wf(p.WarmFrac)
	wf(p.PHot)
	wf(p.PWarm)
	wi(p.RoutineLenMin)
	wi(p.RoutineLenMax)
	wi(p.RunLenMin)
	wi(p.RunLenMax)
	wi(p.EntryPoints)
	wf(p.SeqFrac)
	wf(p.SmallDeltaFrac)
	wf(p.BranchSkipFrac)
	for _, w := range p.SuccWeights {
		wf(w)
	}
	wf(p.RandomCallFrac)
	wf(p.LoadFrac)
	wf(p.StoreFrac)
	wf(p.DataZipfS)
	wf(p.DataStreamFrac)
	wu(p.PhaseLen)
	wf(p.PhaseShuffleFrac)
	return hex.EncodeToString(h.Sum(nil))
}

// hashedParamsFieldCount is the number of trace.ServerParams fields folded
// into Hash (SuccWeights counts once); the golden test checks it against the
// struct via reflection so a new field cannot be added without extending the
// canonical encoding.
const hashedParamsFieldCount = 23
