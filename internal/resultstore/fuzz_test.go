package resultstore

import (
	"encoding/json"
	"hash/crc32"
	"testing"

	"morrigan/internal/runner"
)

// validEnvelope marshals one verifiable stored file for the seed corpus.
func validEnvelope(t testing.TB) []byte {
	t.Helper()
	key, res := testResult(t, 0)
	j := res.Job
	hashes := make([]string, len(j.Workloads))
	for i, w := range j.Workloads {
		hashes[i] = w.Hash()
	}
	raw, err := json.Marshal(Record{
		Key:        key,
		Machine:    j.Machine.Hash(),
		Workloads:  hashes,
		Warmup:     j.Warmup,
		Measure:    j.Measure,
		Experiment: j.Experiment,
		Config:     j.Config,
		Workload:   j.Workload,
		Stats:      res.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(envelope{
		Schema: SchemaVersion,
		CRC32C: crc32.Checksum(raw, castagnoli),
		Record: raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// FuzzEnvelope hammers decodeRecord — the store's entire untrusted-input
// surface — with arbitrary bytes: whatever the corruption (bit flips,
// truncation, hostile JSON, forged checksums), decoding must return an error
// or a fully verified record, and never panic.
func FuzzEnvelope(f *testing.F) {
	valid := validEnvelope(f)
	f.Add(valid)
	f.Add([]byte(``))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":1,"crc32c":0,"record":{}}`))
	f.Add([]byte(`{"schema":1,"crc32c":12345,"record":{"key":"ab","stats":{}}}`))
	// Truncations and a flipped byte of the valid envelope.
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, raw []byte) {
		rec, err := decodeRecord(raw)
		if err != nil {
			return
		}
		// A decode that succeeds must have fully verified the record: the
		// stored key re-derives from the stored components.
		derived := runner.DeriveSampledJobKey(rec.Machine, rec.Workloads, rec.Warmup, rec.Measure, rec.policy())
		if derived != rec.Key {
			t.Fatalf("decodeRecord accepted a record whose key %q does not derive from its components (%q)", rec.Key, derived)
		}
	})
}
