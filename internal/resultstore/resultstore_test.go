package resultstore

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"morrigan/internal/machine"
	"morrigan/internal/runner"
	"morrigan/internal/sim"
	"morrigan/internal/workloads"
)

// testResult fabricates a completed keyed result without simulating.
func testResult(t testing.TB, i int) (string, runner.Result) {
	t.Helper()
	qmm := workloads.QMM()
	j := runner.Job{
		Experiment: "test",
		Config:     "cfg",
		Workload:   qmm[i%len(qmm)].Name,
		Machine:    machine.Default(),
		Workloads:  []workloads.Spec{qmm[i%len(qmm)]},
		Warmup:     1_000,
		Measure:    uint64(10_000 + i),
	}
	key, ok := j.Key()
	if !ok {
		t.Fatal("test job has no key")
	}
	return key, runner.Result{Job: j, Stats: sim.Stats{Instructions: uint64(i + 1), ISTLBMisses: uint64(i + 2)}}
}

func TestStorePutLookupReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		key, res := testResult(t, i)
		keys[i] = key
		if err := s.Put(key, res); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}

	// A fresh open must verify and index everything from disk alone.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != n || re.Skipped() != 0 {
		t.Fatalf("reopened Len = %d Skipped = %d, want %d/0", re.Len(), re.Skipped(), n)
	}
	for i, key := range keys {
		st, ok := re.Lookup(key)
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		_, want := testResult(t, i)
		if !reflect.DeepEqual(st.Stats, want.Stats) {
			t.Errorf("key %d: stats differ after reopen", i)
		}
		rec, ok := re.Get(key)
		if !ok || rec.Key != key || rec.Experiment != "test" {
			t.Errorf("key %d: Get returned %+v", i, rec)
		}
	}
}

func TestStoreRejectsFailedAndUnkeyed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := testResult(t, 0)
	res.Err = context.Canceled
	if err := s.Put(key, res); err == nil {
		t.Fatal("Put accepted a failed result")
	}
	if s.Len() != 0 {
		t.Fatal("failed result was stored")
	}
	// A key that does not derive from the result's components must be
	// rejected — it would be unverifiable on the next open.
	_, other := testResult(t, 1)
	if err := s.Put(key, other); err == nil {
		t.Fatal("Put accepted a key that does not derive from the result")
	}
	if s.Len() != 0 {
		t.Fatal("mismatched-key result was stored")
	}
}

func TestStoreFirstWriteWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := testResult(t, 0)
	if err := s.Put(key, res); err != nil {
		t.Fatal(err)
	}
	// Equal duplicate: a no-op.
	if err := s.Put(key, res); err != nil {
		t.Fatalf("equal duplicate put: %v", err)
	}
	// Differing duplicate: an error, and the stored stats must not change.
	diff := res
	diff.Stats.Instructions += 99
	if err := s.Put(key, diff); err == nil {
		t.Fatal("differing duplicate put succeeded")
	}
	st, _ := s.Lookup(key)
	if !reflect.DeepEqual(st.Stats, res.Stats) {
		t.Fatal("stored stats changed under a rejected duplicate")
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, res := testResult(t, 0)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := range errs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = s.Put(key, res)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", g, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestStoreSkipsDamagedRecords: corrupted files are skipped on open (counted
// in Skipped) and removed by Compact, and a hand-edited record whose stats
// were tampered with fails its checksum rather than serving wrong results.
func TestStoreSkipsDamagedRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for i := 0; i < 3; i++ {
		key, res := testResult(t, i)
		if err := s.Put(key, res); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			victim = filepath.Join(dir, key[:2], key+".json")
		}
	}
	// Tamper: flip a byte inside the record payload.
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"experiment":"test"`, `"experiment":"best"`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found")
	}
	if err := os.WriteFile(victim, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	// Add a stray temp file from a hypothetical interrupted put.
	stray := filepath.Join(filepath.Dir(victim), ".put-stray")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 || re.Skipped() != 1 {
		t.Fatalf("Len = %d Skipped = %d, want 2/1", re.Len(), re.Skipped())
	}
	removed, err := re.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // the tampered record and the stray temp file
		t.Fatalf("Compact removed %d files, want 2", removed)
	}
	if re.Len() != 2 || re.Skipped() != 0 {
		t.Fatalf("after Compact: Len = %d Skipped = %d, want 2/0", re.Len(), re.Skipped())
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("Compact left the stray temp file")
	}
}

// TestStoreReclaimable: the dry-run view of Compact reports exactly the
// files Compact would remove — and removes nothing itself.
func TestStoreReclaimable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for i := 0; i < 3; i++ {
		key, res := testResult(t, i)
		if err := s.Put(key, res); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			victim = filepath.Join(dir, key[:2], key+".json")
		}
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), `"experiment":"test"`, `"experiment":"best"`, 1)
	if err := os.WriteFile(victim, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(filepath.Dir(victim), ".put-stray")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := re.Reclaimable()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 { // the tampered record and the stray temp file
		t.Fatalf("Reclaimable reported %d files (%v), want 2", len(paths), paths)
	}
	for _, p := range paths {
		if _, err := os.Stat(filepath.Join(dir, p)); err != nil {
			t.Errorf("Reclaimable removed or misreported %s: %v", p, err)
		}
	}
	if re.Len() != 2 {
		t.Fatalf("Len = %d after dry run, want 2 untouched", re.Len())
	}
	removed, err := re.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(paths) {
		t.Errorf("Compact removed %d files, want the %d Reclaimable reported", removed, len(paths))
	}
}

// TestStoreServesCampaign is the runner integration: a campaign backed by a
// store simulates once; a second campaign over the same jobs (fresh process
// simulated by reopening the store) reuses everything with Reused == "store"
// and bit-identical stats.
func TestStoreServesCampaign(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	qmm := workloads.QMM()
	jobs := make([]runner.Job, 3)
	for i := range jobs {
		jobs[i] = runner.Job{
			Experiment: "itest",
			Workload:   qmm[i].Name,
			Machine:    machine.Default(),
			Workloads:  []workloads.Spec{qmm[i]},
			Warmup:     2_000,
			Measure:    10_000,
		}
	}
	first, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Reused != "" {
			t.Fatalf("job %d reused on a cold store", i)
		}
	}
	if s.Len() != len(jobs) {
		t.Fatalf("store holds %d results, want %d", s.Len(), len(jobs))
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := runner.Run(context.Background(), jobs, runner.Options{Workers: 2, Store: re})
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if second[i].Reused != runner.ReusedStore {
			t.Errorf("job %d: Reused = %q, want %q", i, second[i].Reused, runner.ReusedStore)
		}
		if !reflect.DeepEqual(first[i].Stats, second[i].Stats) {
			t.Errorf("job %d: store-served stats differ from the original run", i)
		}
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
