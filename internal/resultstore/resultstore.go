// Package resultstore is the durable half of campaign result reuse: an
// on-disk content-addressed store of completed simulation results keyed by
// the canonical job key (runner.Job.Key). Where the in-process
// runner.ResultCache deduplicates identical jobs within one process, the
// result store persists them — results survive process exits and are shared
// across runs and across machines (every fabric coordinator backs its
// campaigns with one; see internal/fabric), so a re-run of a campaign whose
// results are already stored simulates zero jobs.
//
// Layout: one file per result at <dir>/<key[:2]>/<key>.json — 256 shard
// directories keep any single directory small at campaign-corpus scale. Each
// file is a CRC-guarded envelope around the record, written to a temp file,
// fsynced and atomically renamed into place, so a crash can never leave a
// half-written record under a valid key; a torn temp file is invisible to
// lookups and swept by Compact. On open, the store scans every shard,
// verifies each record's checksum and re-derives its key from the stored
// components (machine hash, workload hashes, scale) — a record that fails
// either check is skipped (and removable with Compact), so hash-version
// bumps or hand-edited files degrade to re-simulation, never to wrong
// results.
//
// Duplicate puts resolve first-write-wins with an equality check: a put
// whose stats match the stored record is a no-op, and one whose stats differ
// fails, so a straggling worker can never change a result another consumer
// already merged.
package resultstore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"morrigan/internal/runner"
	"morrigan/internal/sampling"
	"morrigan/internal/sim"
)

// SchemaVersion identifies the stored-record format.
const SchemaVersion = 1

// castagnoli is the CRC-32C table, matching the corpus container checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is the stored form of one completed job. The key's components are
// stored alongside the stats so the scan can verify the key still derives
// from them; the display fields are informational.
type Record struct {
	Key        string    `json:"key"`
	Machine    string    `json:"machine"`
	Workloads  []string  `json:"workloads"`
	Warmup     uint64    `json:"warmup"`
	Measure    uint64    `json:"measure"`
	Experiment string    `json:"experiment,omitempty"`
	Config     string    `json:"config,omitempty"`
	Workload   string    `json:"workload,omitempty"`
	Stats      sim.Stats `json:"stats"`
	// Sampling marks sampled results; its policy participates in key
	// re-derivation, so a sampled record can never be served to a full-run
	// job or vice versa.
	Sampling *sampling.Outcome `json:"sampling,omitempty"`
}

// policy extracts the record's sampling policy for key re-derivation,
// nil-safe.
func (r *Record) policy() *sampling.Policy {
	if r.Sampling == nil {
		return nil
	}
	return &r.Sampling.Policy
}

// envelope is the on-disk file shape: the record's compact JSON bytes plus a
// CRC-32C over exactly those bytes. RawMessage preserves the bytes verbatim
// through a decode, so verification checksums what was actually read.
type envelope struct {
	Schema int             `json:"schema"`
	CRC32C uint32          `json:"crc32c"`
	Record json.RawMessage `json:"record"`
}

// Store is the on-disk result store. All methods are safe for concurrent
// use; the in-memory index mirrors the verified on-disk records.
type Store struct {
	dir string

	mu      sync.Mutex
	records map[string]Record
	skipped int // damaged or unverifiable files seen by the last scan
}

// Open opens (creating if necessary) the store directory and scans every
// shard, indexing verified records and counting damaged ones (see Skipped).
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	s := &Store{dir: dir, records: make(map[string]Record)}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len reports how many verified results the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Skipped reports how many files the opening scan could not verify (bad
// JSON, checksum mismatch, key that no longer derives from its components).
// Compact removes them.
func (s *Store) Skipped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.skipped
}

// Lookup returns the stored payload for key, if present.
func (s *Store) Lookup(key string) (runner.Stored, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[key]
	return runner.Stored{Stats: r.Stats, Sampling: r.Sampling}, ok
}

// Get returns the full stored record for key, if present.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[key]
	return r, ok
}

// Records returns every stored record, in unspecified order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.records))
	for _, r := range s.records {
		out = append(out, r)
	}
	return out
}

// Put persists one completed result under key (which must be the result
// job's canonical key). First-write-wins: if the key is already stored with
// equal stats the put is a no-op; differing stats are an error, because a
// stored result must never change underneath consumers that merged it.
// Failed results are rejected — the store only ever holds reusable stats.
//
// Store implements runner.ResultStore.
func (s *Store) Put(key string, res runner.Result) error {
	if res.Err != nil {
		return fmt.Errorf("resultstore: refusing to store failed result for %s", res.Job.Name())
	}
	hashes := make([]string, len(res.Job.Workloads))
	for i, w := range res.Job.Workloads {
		hashes[i] = w.Hash()
	}
	rec := Record{
		Key:        key,
		Machine:    res.Job.Machine.Hash(),
		Workloads:  hashes,
		Warmup:     res.Job.Warmup,
		Measure:    res.Job.Measure,
		Experiment: res.Job.Experiment,
		Config:     res.Job.Config,
		Workload:   res.Job.Workload,
		Stats:      res.Stats,
		Sampling:   res.Sampling,
	}
	if derived := runner.DeriveSampledJobKey(rec.Machine, rec.Workloads, rec.Warmup, rec.Measure, rec.policy()); derived != key {
		return fmt.Errorf("resultstore: key %.12s… does not derive from the result's components", key)
	}

	s.mu.Lock()
	prev, dup := s.records[key]
	if !dup {
		// Claim the key before the disk write so concurrent puts of the same
		// key resolve in-process: the first writes, later ones equality-check.
		s.records[key] = rec
	}
	s.mu.Unlock()
	if dup {
		if prev.Stats == rec.Stats && sameOutcome(prev.Sampling, rec.Sampling) {
			return nil
		}
		return fmt.Errorf("resultstore: %.12s…: stats differ from the stored record (first write wins)", key)
	}

	if err := s.write(rec); err != nil {
		s.mu.Lock()
		delete(s.records, key)
		s.mu.Unlock()
		return err
	}
	return nil
}

// write persists one verified record: marshal, checksum, temp-file write,
// fsync, atomic rename into the key's shard.
func (s *Store) write(rec Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	env, err := json.Marshal(envelope{
		Schema: SchemaVersion,
		CRC32C: crc32.Checksum(raw, castagnoli),
		Record: raw,
	})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	shard := filepath.Join(s.dir, rec.Key[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(shard, ".put-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	_, err = tmp.Write(append(env, '\n'))
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("resultstore: writing %.12s…: %w", rec.Key, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(shard, rec.Key+".json")); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// scan walks every shard directory, loading verified records into the index.
func (s *Store) scan() error {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	records := make(map[string]Record)
	skipped := 0
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		shard := filepath.Join(s.dir, sh.Name())
		files, err := os.ReadDir(shard)
		if err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
				continue
			}
			rec, err := readRecord(filepath.Join(shard, name))
			if err != nil || rec.Key != strings.TrimSuffix(name, ".json") || !strings.HasPrefix(rec.Key, sh.Name()) {
				skipped++
				continue
			}
			records[rec.Key] = rec
		}
	}
	s.mu.Lock()
	s.records = records
	s.skipped = skipped
	s.mu.Unlock()
	return nil
}

// sameOutcome reports whether two sampling outcomes are equal (both nil, or
// equal by value).
func sameOutcome(a, b *sampling.Outcome) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// readRecord loads and verifies one stored file: envelope schema, CRC over
// the record bytes, and key re-derivation from the stored components.
func readRecord(path string) (Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	rec, err := decodeRecord(raw)
	if err != nil {
		return Record{}, fmt.Errorf("resultstore: %s: %w", path, err)
	}
	return rec, nil
}

// decodeRecord verifies and decodes one stored file's bytes: envelope shape,
// schema, CRC over the record bytes, and key re-derivation from the stored
// components (including the sampling policy for sampled records). It is the
// store's entire untrusted-input surface — corrupt bytes of any shape must
// come back as an error, never a panic or a silently wrong record (see
// FuzzEnvelope).
func decodeRecord(raw []byte) (Record, error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Record{}, err
	}
	if env.Schema != SchemaVersion {
		return Record{}, fmt.Errorf("schema %d, want %d", env.Schema, SchemaVersion)
	}
	if got := crc32.Checksum(env.Record, castagnoli); got != env.CRC32C {
		return Record{}, fmt.Errorf("checksum %#08x, envelope says %#08x", got, env.CRC32C)
	}
	var rec Record
	if err := json.Unmarshal(env.Record, &rec); err != nil {
		return Record{}, err
	}
	if derived := runner.DeriveSampledJobKey(rec.Machine, rec.Workloads, rec.Warmup, rec.Measure, rec.policy()); derived != rec.Key {
		return Record{}, fmt.Errorf("key does not derive from stored components")
	}
	return rec, nil
}

// sweep walks every shard collecting the files the store cannot verify —
// damaged records, stale temp files from interrupted puts, and records whose
// keys no longer derive from their components — removing them when remove is
// set. Paths are returned store-relative.
func (s *Store) sweep(remove bool) ([]string, error) {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var paths []string
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		shard := filepath.Join(s.dir, sh.Name())
		files, err := os.ReadDir(shard)
		if err != nil {
			return paths, fmt.Errorf("resultstore: %w", err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(shard, f.Name())
			ok := false
			if strings.HasSuffix(f.Name(), ".json") && !strings.HasPrefix(f.Name(), ".") {
				rec, rerr := readRecord(path)
				ok = rerr == nil && rec.Key == strings.TrimSuffix(f.Name(), ".json") && strings.HasPrefix(rec.Key, sh.Name())
			}
			if !ok {
				if remove {
					if rerr := os.Remove(path); rerr != nil {
						return paths, fmt.Errorf("resultstore: %w", rerr)
					}
				}
				paths = append(paths, filepath.Join(sh.Name(), f.Name()))
			}
		}
	}
	return paths, nil
}

// Reclaimable reports — without removing anything — the store-relative paths
// of every file Compact would delete. The dry-run half of `fabric gc`.
func (s *Store) Reclaimable() ([]string, error) {
	return s.sweep(false)
}

// Compact removes every file the store cannot verify — damaged records,
// stale temp files from interrupted puts, and records whose keys no longer
// derive from their components — and re-scans. It returns how many files it
// removed.
func (s *Store) Compact() (removed int, err error) {
	paths, err := s.sweep(true)
	if err != nil {
		return len(paths), err
	}
	return len(paths), s.scan()
}

// Store implements runner.ResultStore.
var _ runner.ResultStore = (*Store)(nil)
