package profile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// stop must be idempotent — callers both defer it and run it before exits.
	if err := stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
}

func TestStartNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Error(err)
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}
