// Package profile backs the -cpuprofile/-memprofile flags of the
// command-line tools: it starts CPU profiling at process start and writes a
// heap profile when the run finishes, so hot-path work on the simulator
// (`go tool pprof morrigansim cpu.pprof`) doesn't need a bespoke harness.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for a
// heap profile to be written to memPath (when non-empty) by the returned
// stop function. Callers must run stop before exiting or the CPU profile is
// truncated and the heap profile never written; stop is idempotent, so both
// deferring it and calling it explicitly before an os.Exit is safe. With
// both paths empty Start is a no-op and stop does nothing.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			if err := writeHeap(memPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeap forces a GC (so the profile reflects live objects, not garbage)
// and writes the heap profile to path.
func writeHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
