package tlb

import (
	"testing"

	"morrigan/internal/arch"
)

// BenchmarkLookupHit measures the set-scan fast path over a resident
// working set (the common case on the fetch path).
func BenchmarkLookupHit(b *testing.B) {
	t := New("STLB", 1536, 6, 8)
	const pages = 1024
	for v := arch.VPN(0); v < pages; v++ {
		t.Insert(0, v, arch.PFN(v))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(0, arch.VPN(i)%pages)
	}
}

// BenchmarkLookupMiss measures a guaranteed-miss probe stream.
func BenchmarkLookupMiss(b *testing.B) {
	t := New("STLB", 1536, 6, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(0, arch.VPN(1<<30)+arch.VPN(i))
	}
}

// BenchmarkInsert measures steady-state inserts with LRU eviction.
func BenchmarkInsert(b *testing.B) {
	t := New("STLB", 1536, 6, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := arch.VPN(uint64(i) * 2654435761 % (1 << 16))
		t.Insert(0, v, arch.PFN(v))
	}
}

// BenchmarkLookupNonPow2Sets exercises the modulo fallback taken when the
// set count is not a power of two (the iso-storage STLB of Figure 18).
func BenchmarkLookupNonPow2Sets(b *testing.B) {
	t := New("STLB", 4608, 6, 8) // 768 sets: not a power of two
	const pages = 1024
	for v := arch.VPN(0); v < pages; v++ {
		t.Insert(0, v, arch.PFN(v))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(0, arch.VPN(i)%pages)
	}
}
