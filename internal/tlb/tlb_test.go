package tlb

import (
	"testing"
	"testing/quick"

	"morrigan/internal/arch"
)

func TestLookupAfterInsert(t *testing.T) {
	tl := New("stlb", 1536, 6, 8)
	if _, ok := tl.Lookup(0, 0x400); ok {
		t.Fatal("cold TLB hit")
	}
	tl.Insert(0, 0x400, 0x999)
	pfn, ok := tl.Lookup(0, 0x400)
	if !ok || pfn != 0x999 {
		t.Fatalf("Lookup = %#x, %v", pfn, ok)
	}
	if tl.Accesses() != 2 || tl.Misses() != 1 {
		t.Fatalf("accesses=%d misses=%d", tl.Accesses(), tl.Misses())
	}
	if tl.Entries() != 1536 || tl.Latency() != 8 || tl.Name() != "stlb" {
		t.Fatal("config accessors wrong")
	}
}

func TestThreadIsolation(t *testing.T) {
	tl := New("stlb", 64, 4, 8)
	tl.Insert(0, 0x10, 0xA)
	tl.Insert(1, 0x10, 0xB)
	if pfn, ok := tl.Lookup(0, 0x10); !ok || pfn != 0xA {
		t.Fatalf("thread 0: %#x %v", pfn, ok)
	}
	if pfn, ok := tl.Lookup(1, 0x10); !ok || pfn != 0xB {
		t.Fatalf("thread 1: %#x %v", pfn, ok)
	}
	if _, ok := tl.Lookup(2, 0x10); ok {
		t.Fatal("thread 2 should miss")
	}
}

func TestLRUWithinSet(t *testing.T) {
	tl := New("tiny", 2, 2, 1) // 1 set of 2 ways after vpn%1... sets=1
	tl.Insert(0, 1, 1)
	tl.Insert(0, 3, 3)
	tl.Lookup(0, 1) // promote vpn 1
	tl.Insert(0, 5, 5)
	if tl.Contains(0, 3) {
		t.Fatal("vpn 3 should be the LRU victim")
	}
	if !tl.Contains(0, 1) || !tl.Contains(0, 5) {
		t.Fatal("wrong survivors")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tl := New("t", 4, 2, 1)
	tl.Insert(0, 8, 0x1)
	tl.Insert(0, 8, 0x2)
	pfn, ok := tl.Lookup(0, 8)
	if !ok || pfn != 0x2 {
		t.Fatalf("updated entry: %#x %v", pfn, ok)
	}
}

func TestFlush(t *testing.T) {
	tl := New("t", 16, 4, 1)
	for v := arch.VPN(0); v < 10; v++ {
		tl.Insert(0, v, arch.PFN(v))
	}
	tl.Flush()
	for v := arch.VPN(0); v < 10; v++ {
		if tl.Contains(0, v) {
			t.Fatalf("vpn %d survived flush", v)
		}
	}
}

func TestNonPowerOfTwoSets(t *testing.T) {
	// Figure 18's enlarged STLB: 1536+384 entries, 6-way -> 320 sets.
	tl := New("stlb+", 1920, 6, 8)
	f := func(raw uint32, tid uint8) bool {
		vpn := arch.VPN(raw)
		tl.Insert(arch.ThreadID(tid%2), vpn, arch.PFN(raw)+1)
		pfn, ok := tl.Lookup(arch.ThreadID(tid%2), vpn)
		return ok && pfn == arch.PFN(raw)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {8, 0}, {10, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v accepted", bad)
				}
			}()
			New("bad", bad[0], bad[1], 1)
		}()
	}
}

func TestResetStats(t *testing.T) {
	tl := New("t", 8, 2, 1)
	tl.Lookup(0, 1)
	tl.Insert(0, 1, 2)
	tl.ResetStats()
	if tl.Accesses() != 0 || tl.Misses() != 0 {
		t.Fatal("stats not reset")
	}
	if !tl.Contains(0, 1) {
		t.Fatal("contents lost on ResetStats")
	}
}

func TestCapacityBound(t *testing.T) {
	tl := New("t", 32, 4, 1)
	for v := arch.VPN(0); v < 1000; v++ {
		tl.Insert(0, v, arch.PFN(v))
	}
	resident := 0
	for v := arch.VPN(0); v < 1000; v++ {
		if tl.Contains(0, v) {
			resident++
		}
	}
	if resident > 32 {
		t.Fatalf("%d resident entries exceed capacity 32", resident)
	}
	if resident == 0 {
		t.Fatal("nothing resident")
	}
}
