// Package tlb models the translation lookaside buffers of Table 1: the
// first-level instruction and data TLBs and the shared second-level TLB
// (STLB), all set-associative with LRU replacement.
//
// Entries are tagged with a thread ID so the SMT experiments can share one
// physical STLB between two colocated workloads without mixing their
// translations, mirroring ASID tagging in real parts.
package tlb

import (
	"morrigan/internal/arch"
)

type entry struct {
	vpn   arch.VPN
	tid   arch.ThreadID
	pfn   arch.PFN
	used  uint64
	valid bool
}

// TLB is one set-associative translation buffer.
type TLB struct {
	name    string
	sets    int
	ways    int
	latency arch.Cycle
	ents    []entry
	tick    uint64

	accesses uint64
	misses   uint64
}

// New builds a TLB with the given total entry count and associativity. The
// set count is entries/ways; it need not be a power of two (the enlarged
// iso-storage STLB of Figure 18 is not).
func New(name string, entries, ways int, latency arch.Cycle) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	return &TLB{
		name:    name,
		sets:    entries / ways,
		ways:    ways,
		latency: latency,
		ents:    make([]entry, entries),
	}
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() arch.Cycle { return t.latency }

// Name returns the TLB's configured name.
func (t *TLB) Name() string { return t.name }

func (t *TLB) set(vpn arch.VPN) []entry {
	s := int(uint64(vpn) % uint64(t.sets))
	return t.ents[s*t.ways : (s+1)*t.ways]
}

// Lookup probes for the translation, promoting it on hit.
func (t *TLB) Lookup(tid arch.ThreadID, vpn arch.VPN) (arch.PFN, bool) {
	t.tick++
	t.accesses++
	set := t.set(vpn)
	for i := range set {
		if set[i].valid && set[i].vpn == vpn && set[i].tid == tid {
			set[i].used = t.tick
			return set[i].pfn, true
		}
	}
	t.misses++
	return 0, false
}

// Peek returns the translation without updating replacement or statistics;
// background prefetch paths use it so they never contend with demand
// lookups.
func (t *TLB) Peek(tid arch.ThreadID, vpn arch.VPN) (arch.PFN, bool) {
	for _, e := range t.set(vpn) {
		if e.valid && e.vpn == vpn && e.tid == tid {
			return e.pfn, true
		}
	}
	return 0, false
}

// Contains probes without updating replacement or statistics.
func (t *TLB) Contains(tid arch.ThreadID, vpn arch.VPN) bool {
	for _, e := range t.set(vpn) {
		if e.valid && e.vpn == vpn && e.tid == tid {
			return true
		}
	}
	return false
}

// Insert fills the translation, evicting the set's LRU entry if needed.
func (t *TLB) Insert(tid arch.ThreadID, vpn arch.VPN, pfn arch.PFN) {
	t.tick++
	set := t.set(vpn)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn && set[i].tid == tid {
			set[i].pfn = pfn
			set[i].used = t.tick
			return
		}
		if !set[i].valid {
			victim = i
			set[victim] = entry{vpn: vpn, tid: tid, pfn: pfn, used: t.tick, valid: true}
			return
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = entry{vpn: vpn, tid: tid, pfn: pfn, used: t.tick, valid: true}
}

// Flush invalidates every entry (context switch).
func (t *TLB) Flush() {
	for i := range t.ents {
		t.ents[i].valid = false
	}
}

// Accesses returns lookup count since the last ResetStats.
func (t *TLB) Accesses() uint64 { return t.accesses }

// Misses returns lookup misses since the last ResetStats.
func (t *TLB) Misses() uint64 { return t.misses }

// ResetStats clears counters, keeping contents (warmup boundary).
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }
