// Package tlb models the translation lookaside buffers of Table 1: the
// first-level instruction and data TLBs and the shared second-level TLB
// (STLB), all set-associative with LRU replacement.
//
// Entries are tagged with a thread ID so the SMT experiments can share one
// physical STLB between two colocated workloads without mixing their
// translations, mirroring ASID tagging in real parts.
//
// Storage is struct-of-arrays: each entry is a packed key word (VPN, thread
// id, valid bit) in a flat keys array with parallel pfn/used arrays, so the
// set scans in the simulator's hottest loop stream one dense uint64 array.
// When the set count is a power of two the set index is a mask instead of a
// modulo; both forms compute the identical index, keeping Figure 18's
// non-power-of-two iso-storage STLB bit-identical.
package tlb

import (
	"morrigan/internal/arch"
)

// key packs a (thread, page) pair into one comparable word. Bit 0 is the
// valid marker (an invalid slot is simply zero), bits 1-8 hold the thread id
// and bits 9+ hold the VPN.
func key(tid arch.ThreadID, vpn arch.VPN) uint64 {
	return uint64(vpn)<<9 | uint64(tid)<<1 | 1
}

// TLB is one set-associative translation buffer.
type TLB struct {
	name    string
	sets    int
	ways    int
	mask    uint64 // sets-1 when sets is a power of two, else 0
	latency arch.Cycle

	keys []uint64
	pfns []arch.PFN
	used []uint64
	tick uint64

	accesses uint64
	misses   uint64
}

// New builds a TLB with the given total entry count and associativity. The
// set count is entries/ways; it need not be a power of two (the enlarged
// iso-storage STLB of Figure 18 is not).
func New(name string, entries, ways int, latency arch.Cycle) *TLB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tlb: entries must be a positive multiple of ways")
	}
	sets := entries / ways
	t := &TLB{
		name:    name,
		sets:    sets,
		ways:    ways,
		latency: latency,
		keys:    make([]uint64, entries),
		pfns:    make([]arch.PFN, entries),
		used:    make([]uint64, entries),
	}
	if sets&(sets-1) == 0 {
		t.mask = uint64(sets - 1)
	}
	return t
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() arch.Cycle { return t.latency }

// Name returns the TLB's configured name.
func (t *TLB) Name() string { return t.name }

// base returns the first slot index of vpn's set.
func (t *TLB) base(vpn arch.VPN) int {
	if t.mask != 0 || t.sets == 1 {
		return int(uint64(vpn)&t.mask) * t.ways
	}
	return int(uint64(vpn)%uint64(t.sets)) * t.ways
}

// Lookup probes for the translation, promoting it on hit.
func (t *TLB) Lookup(tid arch.ThreadID, vpn arch.VPN) (arch.PFN, bool) {
	t.tick++
	t.accesses++
	k := key(tid, vpn)
	base := t.base(vpn)
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == k {
			t.used[i] = t.tick
			return t.pfns[i], true
		}
	}
	t.misses++
	return 0, false
}

// Peek returns the translation without updating replacement or statistics;
// background prefetch paths use it so they never contend with demand
// lookups.
func (t *TLB) Peek(tid arch.ThreadID, vpn arch.VPN) (arch.PFN, bool) {
	k := key(tid, vpn)
	base := t.base(vpn)
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == k {
			return t.pfns[i], true
		}
	}
	return 0, false
}

// Contains probes without updating replacement or statistics.
func (t *TLB) Contains(tid arch.ThreadID, vpn arch.VPN) bool {
	k := key(tid, vpn)
	base := t.base(vpn)
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == k {
			return true
		}
	}
	return false
}

// Insert fills the translation, evicting the set's LRU entry if needed.
func (t *TLB) Insert(tid arch.ThreadID, vpn arch.VPN, pfn arch.PFN) {
	t.tick++
	k := key(tid, vpn)
	base := t.base(vpn)
	victim := base
	for i := base; i < base+t.ways; i++ {
		if t.keys[i] == k {
			t.pfns[i] = pfn
			t.used[i] = t.tick
			return
		}
		if t.keys[i] == 0 {
			victim = i
			break
		}
		if t.used[i] < t.used[victim] {
			victim = i
		}
	}
	t.keys[victim] = k
	t.pfns[victim] = pfn
	t.used[victim] = t.tick
}

// Flush invalidates every entry (context switch).
func (t *TLB) Flush() {
	clear(t.keys)
}

// Accesses returns lookup count since the last ResetStats.
func (t *TLB) Accesses() uint64 { return t.accesses }

// Misses returns lookup misses since the last ResetStats.
func (t *TLB) Misses() uint64 { return t.misses }

// ResetStats clears counters, keeping contents (warmup boundary).
func (t *TLB) ResetStats() { t.accesses, t.misses = 0, 0 }
