package cache

import (
	"testing"
	"testing/quick"

	"morrigan/internal/arch"
)

func TestCacheHitAfterInsert(t *testing.T) {
	c := NewCache("t", 4, 2)
	if c.Lookup(0x100) {
		t.Fatal("cold cache hit")
	}
	c.Insert(0x100)
	if !c.Lookup(0x100) {
		t.Fatal("miss after insert")
	}
	if c.Accesses() != 2 || c.Misses() != 1 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("t", 1, 2) // one set, two ways
	c.Insert(1)
	c.Insert(2)
	c.Lookup(1) // promote 1; 2 becomes LRU
	evicted, was := c.Insert(3)
	if !was || evicted != 2 {
		t.Fatalf("evicted %d (eviction=%v), want 2", evicted, was)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Fatal("wrong contents after eviction")
	}
}

func TestCacheInsertExistingRefreshes(t *testing.T) {
	c := NewCache("t", 1, 2)
	c.Insert(1)
	c.Insert(2)
	c.Insert(1) // refresh, not duplicate
	if _, was := c.Insert(3); !was {
		t.Fatal("expected eviction")
	}
	if c.Contains(2) {
		t.Fatal("2 should have been the LRU victim after 1 was refreshed")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := NewCache("t", 4, 1)
	// Addresses differing in set bits don't evict each other.
	c.Insert(0)
	c.Insert(1)
	c.Insert(2)
	c.Insert(3)
	for i := uint64(0); i < 4; i++ {
		if !c.Contains(i) {
			t.Fatalf("line %d missing", i)
		}
	}
	// Same set (stride 4) does evict.
	c.Insert(4)
	if c.Contains(0) {
		t.Fatal("line 0 should be evicted by line 4")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {3, 2}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %v accepted", bad)
				}
			}()
			NewCache("bad", bad[0], bad[1])
		}()
	}
}

func TestCacheContentsNeverExceedCapacity(t *testing.T) {
	c := NewCache("t", 2, 2)
	f := func(addrs []uint16) bool {
		for _, a := range addrs {
			c.Insert(uint64(a))
		}
		// Count resident lines by probing everything inserted.
		resident := 0
		seen := map[uint64]bool{}
		for _, a := range addrs {
			la := uint64(a)
			if !seen[la] && c.Contains(la) {
				resident++
			}
			seen[la] = true
		}
		return resident <= c.Entries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatenciesAndLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2StridePrefetch = false
	h := NewHierarchy(cfg)
	addr := arch.PAddr(0x10000)

	r := h.Access(KindLoad, addr)
	if r.Level != arch.LevelDRAM {
		t.Fatalf("cold access level = %v", r.Level)
	}
	wantDRAM := cfg.L1Latency + cfg.L2Latency + cfg.LLCLatency + cfg.DRAMLatency
	if r.Latency != wantDRAM {
		t.Fatalf("DRAM latency = %d, want %d", r.Latency, wantDRAM)
	}

	r = h.Access(KindLoad, addr)
	if r.Level != arch.LevelL1 || r.Latency != cfg.L1Latency {
		t.Fatalf("second access: %+v", r)
	}
	if h.Served(KindLoad, arch.LevelDRAM) != 1 || h.Served(KindLoad, arch.LevelL1) != 1 {
		t.Fatal("served counters wrong")
	}
	if h.ServedTotal(KindLoad) != 2 {
		t.Fatalf("ServedTotal = %d", h.ServedTotal(KindLoad))
	}
}

func TestHierarchyFetchUsesL1I(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2StridePrefetch = false
	h := NewHierarchy(cfg)
	addr := arch.PAddr(0x40000)
	h.Access(KindFetch, addr)
	if !h.L1I.Contains(addr.Line()) {
		t.Fatal("fetch did not fill L1I")
	}
	if h.L1D.Contains(addr.Line()) {
		t.Fatal("fetch filled L1D")
	}
	// A data access to the same line finds it in L2 (shared), not L1D.
	r := h.Access(KindLoad, addr)
	if r.Level != arch.LevelL2 {
		t.Fatalf("load after fetch served by %v, want L2", r.Level)
	}
}

func TestHierarchyPTWPathAndStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2StridePrefetch = false
	h := NewHierarchy(cfg)
	addr := arch.PAddr(0x99000)
	h.Access(KindPTWDemand, addr)
	if h.Served(KindPTWDemand, arch.LevelDRAM) != 1 {
		t.Fatal("demand walk ref not counted")
	}
	r := h.Access(KindPTWPrefetch, addr)
	if r.Level != arch.LevelL1 {
		t.Fatalf("walker should reuse L1D-cached PTE line, got %v", r.Level)
	}
	if h.Served(KindPTWPrefetch, arch.LevelL1) != 1 {
		t.Fatal("prefetch walk ref not counted")
	}
}

func TestPrefetchInto(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2StridePrefetch = false
	h := NewHierarchy(cfg)
	addr := arch.PAddr(0x123440)
	h.PrefetchInto(arch.LevelL2, addr)
	if !h.L2.Contains(addr.Line()) || !h.LLC.Contains(addr.Line()) {
		t.Fatal("prefetch did not fill L2+LLC")
	}
	if h.L1I.Contains(addr.Line()) {
		t.Fatal("L2 prefetch must not fill L1I")
	}
	h.PrefetchInto(arch.LevelL1, arch.PAddr(0x555000))
	if !h.L1I.Contains(arch.PAddr(0x555000).Line()) {
		t.Fatal("L1 prefetch did not fill L1I")
	}
	if !h.ContainsLine(addr) {
		t.Fatal("ContainsLine should see the prefetched line")
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	h.Access(KindLoad, 0x1000)
	h.ResetStats()
	if h.ServedTotal(KindLoad) != 0 || h.L1D.Accesses() != 0 {
		t.Fatal("stats not cleared")
	}
	// Contents survive the reset.
	if r := h.Access(KindLoad, 0x1000); r.Level != arch.LevelL1 {
		t.Fatalf("contents lost on ResetStats: %v", r.Level)
	}
}

func TestStridePrefetcherDetectsStride(t *testing.T) {
	p := newStridePrefetcher(16)
	base := arch.PAddr(0x7000_0000)
	var fired bool
	for i := 0; i < 6; i++ {
		addr := base + arch.PAddr(i*arch.LineSize)
		if next, ok := p.observe(addr); ok {
			fired = true
			want := addr + arch.LineSize
			if next.Line() != want.Line() {
				t.Fatalf("prefetch %#x, want %#x", next, want)
			}
		}
	}
	if !fired {
		t.Fatal("stride never detected")
	}
	// Random pattern should not fire.
	p2 := newStridePrefetcher(16)
	addrs := []arch.PAddr{0x1000, 0x9000, 0x2000, 0xF000, 0x3000}
	for _, a := range addrs {
		if _, ok := p2.observe(a); ok {
			t.Fatal("prefetch fired on random pattern")
		}
	}
}

func TestStridePrefetcherCapacityReset(t *testing.T) {
	p := newStridePrefetcher(4)
	for i := 0; i < 100; i++ {
		p.observe(arch.PAddr(i) << arch.PageShift << 4) // distinct pages
	}
	if p.n > 4 {
		t.Fatalf("live entries = %d, cap 4", p.n)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindFetch: "fetch", KindLoad: "load", KindStore: "store",
		KindPTWDemand: "ptw-demand", KindPTWPrefetch: "ptw-prefetch",
		KindPrefetch: "prefetch", Kind(99): "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
