// Package cache models the processor's cache hierarchy: set-associative
// L1I/L1D/L2/LLC caches with LRU replacement and a fixed-latency DRAM behind
// them, per Table 1 of the paper.
//
// The model is functional-plus-latency: an access updates cache state (fills
// on miss at every level, LRU promotion on hit) and returns the total
// latency and the level that served the request. There is no bandwidth or
// MSHR-contention model; page-walker concurrency is modelled in the ptw
// package and core-visible overlap in the cpu package. What matters for the
// paper's results — where page-walk references are served, and how prefetch
// walks perturb cache contents — is captured.
package cache

// Cache is one set-associative cache with LRU replacement, addressed by
// physical line number.
type Cache struct {
	name     string
	sets     int
	ways     int
	lines    []line // sets*ways, row-major by set
	tick     uint64
	accesses uint64
	misses   uint64
}

type line struct {
	tag   uint64
	used  uint64
	valid bool
}

// NewCache constructs a cache of the given geometry. Sets must be a power of
// two.
func NewCache(name string, sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("cache: geometry must be positive with power-of-two sets")
	}
	return &Cache{
		name:  name,
		sets:  sets,
		ways:  ways,
		lines: make([]line, sets*ways),
	}
}

// Entries returns the cache's capacity in lines.
func (c *Cache) Entries() int { return c.sets * c.ways }

func (c *Cache) set(lineAddr uint64) []line {
	s := int(lineAddr) & (c.sets - 1)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup probes for the line, promoting it on hit, and reports the result.
func (c *Cache) Lookup(lineAddr uint64) bool {
	c.tick++
	c.accesses++
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.tick
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without updating replacement or statistics.
func (c *Cache) Contains(lineAddr uint64) bool {
	for _, l := range c.set(lineAddr) {
		if l.valid && l.tag == lineAddr {
			return true
		}
	}
	return false
}

// Insert fills the line, evicting the LRU victim if the set is full. It
// returns the evicted line address and whether an eviction happened.
func (c *Cache) Insert(lineAddr uint64) (evicted uint64, wasEviction bool) {
	c.tick++
	set := c.set(lineAddr)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].used = c.tick // already present; refresh
			return 0, false
		}
		if !set[i].valid {
			victim = i
			set[victim] = line{tag: lineAddr, used: c.tick, valid: true}
			return 0, false
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	old := set[victim].tag
	set[victim] = line{tag: lineAddr, used: c.tick, valid: true}
	return old, true
}

// Accesses returns the number of Lookup calls since the last ResetStats.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of Lookup misses since the last ResetStats.
func (c *Cache) Misses() uint64 { return c.misses }

// ResetStats clears the access counters without touching contents (used at
// the warmup/measurement boundary).
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }
