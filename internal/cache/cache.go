// Package cache models the processor's cache hierarchy: set-associative
// L1I/L1D/L2/LLC caches with LRU replacement and a fixed-latency DRAM behind
// them, per Table 1 of the paper.
//
// The model is functional-plus-latency: an access updates cache state (fills
// on miss at every level, LRU promotion on hit) and returns the total
// latency and the level that served the request. There is no bandwidth or
// MSHR-contention model; page-walker concurrency is modelled in the ptw
// package and core-visible overlap in the cpu package. What matters for the
// paper's results — where page-walk references are served, and how prefetch
// walks perturb cache contents — is captured.
package cache

// Cache is one set-associative cache with LRU replacement, addressed by
// physical line number.
//
// Storage is struct-of-arrays: a set's keys pack into one or two cache
// lines, so the tag scan on the hot fetch/data path touches the used
// timestamps only on a hit or an eviction decision. A key is the line
// address plus one, with zero marking an invalid way — line addresses are
// physical-address bits above LineShift, so the +1 cannot wrap.
type Cache struct {
	name     string
	sets     int
	ways     int
	mask     uint64   // sets-1; sets is always a power of two
	keys     []uint64 // sets*ways, row-major by set; lineAddr+1, 0 = invalid
	used     []uint64 // LRU timestamps, parallel to keys
	tick     uint64
	accesses uint64
	misses   uint64
}

// NewCache constructs a cache of the given geometry. Sets must be a power of
// two.
func NewCache(name string, sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("cache: geometry must be positive with power-of-two sets")
	}
	return &Cache{
		name: name,
		sets: sets,
		ways: ways,
		mask: uint64(sets - 1),
		keys: make([]uint64, sets*ways),
		used: make([]uint64, sets*ways),
	}
}

// Entries returns the cache's capacity in lines.
func (c *Cache) Entries() int { return c.sets * c.ways }

// base returns the index of the first way of the line's set.
func (c *Cache) base(lineAddr uint64) uint64 {
	return (lineAddr & c.mask) * uint64(c.ways)
}

// Lookup probes for the line, promoting it on hit, and reports the result.
func (c *Cache) Lookup(lineAddr uint64) bool {
	c.tick++
	c.accesses++
	base := c.base(lineAddr)
	keys := c.keys[base : base+uint64(c.ways)]
	k := lineAddr + 1
	for i := range keys {
		if keys[i] == k {
			c.used[base+uint64(i)] = c.tick
			return true
		}
	}
	c.misses++
	return false
}

// Contains probes without updating replacement or statistics.
func (c *Cache) Contains(lineAddr uint64) bool {
	base := c.base(lineAddr)
	keys := c.keys[base : base+uint64(c.ways)]
	k := lineAddr + 1
	for i := range keys {
		if keys[i] == k {
			return true
		}
	}
	return false
}

// Insert fills the line, evicting the LRU victim if the set is full. It
// returns the evicted line address and whether an eviction happened.
//
// The single pass mirrors Lookup's scan order: a matching way refreshes in
// place, the first invalid way fills immediately (valid ways always form a
// prefix of the set, so no later way can match), and otherwise the
// lowest-timestamp way — earliest index on ties — is the victim.
func (c *Cache) Insert(lineAddr uint64) (evicted uint64, wasEviction bool) {
	c.tick++
	base := c.base(lineAddr)
	keys := c.keys[base : base+uint64(c.ways)]
	used := c.used[base : base+uint64(c.ways) : base+uint64(c.ways)]
	k := lineAddr + 1
	victim := 0
	for i := range keys {
		if keys[i] == k {
			used[i] = c.tick // already present; refresh
			return 0, false
		}
		if keys[i] == 0 {
			keys[i] = k
			used[i] = c.tick
			return 0, false
		}
		if used[i] < used[victim] {
			victim = i
		}
	}
	old := keys[victim] - 1
	keys[victim] = k
	used[victim] = c.tick
	return old, true
}

// Accesses returns the number of Lookup calls since the last ResetStats.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of Lookup misses since the last ResetStats.
func (c *Cache) Misses() uint64 { return c.misses }

// ResetStats clears the access counters without touching contents (used at
// the warmup/measurement boundary).
func (c *Cache) ResetStats() { c.accesses, c.misses = 0, 0 }

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }
