package cache

import "morrigan/internal/arch"

// Kind distinguishes the request streams through the hierarchy, for
// statistics and routing.
type Kind int

// Request streams.
const (
	KindFetch       Kind = iota // demand instruction fetch (L1I path)
	KindLoad                    // demand data read (L1D path)
	KindStore                   // demand data write (L1D path)
	KindPTWDemand               // page-walk reference of a demand walk
	KindPTWPrefetch             // page-walk reference of a prefetch walk
	KindPrefetch                // cache prefetch fill traffic
	numKinds
)

// NumKinds is the number of request streams.
const NumKinds = int(numKinds)

// String names the request stream.
func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindPTWDemand:
		return "ptw-demand"
	case KindPTWPrefetch:
		return "ptw-prefetch"
	case KindPrefetch:
		return "prefetch"
	}
	return "invalid"
}

// Result reports how an access was served.
type Result struct {
	// Latency is the total round-trip latency in cycles.
	Latency arch.Cycle
	// Level is the hierarchy level that supplied the data.
	Level arch.Level
}

// Config sets the hierarchy geometry and latencies. Defaults mirror Table 1.
type Config struct {
	L1ISets, L1IWays int
	L1DSets, L1DWays int
	L2Sets, L2Ways   int
	LLCSets, LLCWays int

	L1Latency   arch.Cycle
	L2Latency   arch.Cycle
	LLCLatency  arch.Cycle
	DRAMLatency arch.Cycle

	// L2StridePrefetch enables the simple per-page stride prefetcher at L2
	// standing in for the paper's SPP configuration.
	L2StridePrefetch bool
}

// DefaultConfig mirrors Table 1: 32 KB 8-way L1s, 512 KB 8-way L2, 2 MB
// 16-way LLC; 4/8/10-cycle latencies; DRAM latency representative of the
// paper's DDR settings at a 4 GHz core.
func DefaultConfig() Config {
	return Config{
		L1ISets: 64, L1IWays: 8, // 32 KB
		L1DSets: 64, L1DWays: 8, // 32 KB
		L2Sets: 1024, L2Ways: 8, // 512 KB
		LLCSets: 2048, LLCWays: 16, // 2 MB
		L1Latency:        4,
		L2Latency:        8,
		LLCLatency:       10,
		DRAMLatency:      170,
		L2StridePrefetch: true,
	}
}

// Hierarchy is the full cache hierarchy plus DRAM.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
	cfg               Config

	l2pf *stridePrefetcher

	// served[kind][level] counts accesses per stream per serving level.
	served [numKinds][arch.NumLevels]uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		L1I: NewCache("L1I", cfg.L1ISets, cfg.L1IWays),
		L1D: NewCache("L1D", cfg.L1DSets, cfg.L1DWays),
		L2:  NewCache("L2", cfg.L2Sets, cfg.L2Ways),
		LLC: NewCache("LLC", cfg.LLCSets, cfg.LLCWays),
		cfg: cfg,
	}
	if cfg.L2StridePrefetch {
		h.l2pf = newStridePrefetcher(256)
	}
	return h
}

// l1For returns the first-level cache for a request stream. Page-walk
// references go through the data path, as on real x86 walkers.
func (h *Hierarchy) l1For(kind Kind) *Cache {
	if kind == KindFetch {
		return h.L1I
	}
	return h.L1D
}

// Access performs one demand access at the physical address, updating cache
// state and statistics, and returns where and how fast it was served.
func (h *Hierarchy) Access(kind Kind, addr arch.PAddr) Result {
	lineAddr := addr.Line()
	l1 := h.l1For(kind)

	res := Result{Latency: h.cfg.L1Latency, Level: arch.LevelL1}
	switch {
	case l1.Lookup(lineAddr):
		// Served by L1.
	case h.L2.Lookup(lineAddr):
		res = Result{Latency: h.cfg.L1Latency + h.cfg.L2Latency, Level: arch.LevelL2}
		l1.Insert(lineAddr)
	case h.LLC.Lookup(lineAddr):
		res = Result{
			Latency: h.cfg.L1Latency + h.cfg.L2Latency + h.cfg.LLCLatency,
			Level:   arch.LevelLLC,
		}
		h.L2.Insert(lineAddr)
		l1.Insert(lineAddr)
	default:
		res = Result{
			Latency: h.cfg.L1Latency + h.cfg.L2Latency + h.cfg.LLCLatency + h.cfg.DRAMLatency,
			Level:   arch.LevelDRAM,
		}
		h.LLC.Insert(lineAddr)
		h.L2.Insert(lineAddr)
		l1.Insert(lineAddr)
	}
	h.served[kind][res.Level]++

	if h.l2pf != nil && (kind == KindLoad || kind == KindStore) {
		if next, ok := h.l2pf.observe(addr); ok {
			h.PrefetchInto(arch.LevelL2, next)
		}
	}
	return res
}

// PrefetchInto fills a line into the given level (and below it, down to the
// LLC) without charging demand latency; used by cache prefetchers. It
// returns the level that supplied the data, from which callers can derive
// the fill's completion time.
func (h *Hierarchy) PrefetchInto(level arch.Level, addr arch.PAddr) arch.Level {
	lineAddr := addr.Line()
	served := arch.LevelDRAM
	if h.L2.Contains(lineAddr) {
		served = arch.LevelL2
	} else if h.LLC.Contains(lineAddr) {
		served = arch.LevelLLC
	}
	if served == arch.LevelL2 && level >= arch.LevelL2 {
		return served
	}
	h.served[KindPrefetch][served]++
	switch level {
	case arch.LevelL1:
		h.L1I.Insert(lineAddr)
		fallthrough
	case arch.LevelL2:
		h.L2.Insert(lineAddr)
		fallthrough
	default:
		h.LLC.Insert(lineAddr)
	}
	return served
}

// FillLatency returns the round-trip latency of a fill served by the given
// level.
func (h *Hierarchy) FillLatency(level arch.Level) arch.Cycle {
	switch level {
	case arch.LevelL1:
		return h.cfg.L1Latency
	case arch.LevelL2:
		return h.cfg.L1Latency + h.cfg.L2Latency
	case arch.LevelLLC:
		return h.cfg.L1Latency + h.cfg.L2Latency + h.cfg.LLCLatency
	default:
		return h.cfg.L1Latency + h.cfg.L2Latency + h.cfg.LLCLatency + h.cfg.DRAMLatency
	}
}

// ContainsLine reports whether any level below the L1s holds the line; used
// by prefetchers to estimate timeliness.
func (h *Hierarchy) ContainsLine(addr arch.PAddr) bool {
	lineAddr := addr.Line()
	return h.L2.Contains(lineAddr) || h.LLC.Contains(lineAddr)
}

// Served returns how many accesses of the given stream were served by the
// given level since the last ResetStats.
func (h *Hierarchy) Served(kind Kind, level arch.Level) uint64 {
	return h.served[kind][level]
}

// ServedTotal returns the total accesses of the stream.
func (h *Hierarchy) ServedTotal(kind Kind) uint64 {
	var t uint64
	for _, c := range h.served[kind] {
		t += c
	}
	return t
}

// ResetStats clears all statistics, keeping contents (warmup boundary).
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
	h.LLC.ResetStats()
	h.served = [numKinds][arch.NumLevels]uint64{}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// stridePrefetcher is a minimal per-page stride prefetcher standing in for
// the paper's SPP at L2: it tracks the last offset and delta per data page
// and prefetches the next line when a stride repeats.
//
// The table is open-addressed with linear probing instead of a Go map — it
// sits on the data-access hot path, and its only delete is the wholesale
// reset at capacity, so no tombstone or backward-shift machinery is needed.
// Keys are the page number plus one; zero marks an empty slot.
type stridePrefetcher struct {
	keys    []uint64 // page+1, 0 = empty; len is a power of two
	entries []strideEntry
	mask    uint64
	n       int // live entries
	cap     int
}

type strideEntry struct {
	lastLine int64
	delta    int64
	conf     int
}

func newStridePrefetcher(capacity int) *stridePrefetcher {
	slots := 1
	for slots < 2*capacity {
		slots <<= 1
	}
	return &stridePrefetcher{
		keys:    make([]uint64, slots),
		entries: make([]strideEntry, slots),
		mask:    uint64(slots - 1),
		cap:     capacity,
	}
}

// slot returns the index holding page, or the first empty slot of its probe
// sequence if the page is untracked.
func (p *stridePrefetcher) slot(page uint64) uint64 {
	h := page * 0x9E3779B97F4A7C15
	i := (h ^ h>>32) & p.mask
	k := page + 1
	for p.keys[i] != 0 && p.keys[i] != k {
		i = (i + 1) & p.mask
	}
	return i
}

// observe records a demand access and returns a prefetch address when the
// stride is confident.
func (p *stridePrefetcher) observe(addr arch.PAddr) (arch.PAddr, bool) {
	page := uint64(addr.Page()) // physical page used as the tracking key
	lineInPage := int64(addr.Line())
	i := p.slot(page)
	if p.keys[i] == 0 {
		if p.n >= p.cap {
			// Cheap wholesale reset; a real SPP ages entries, but the
			// steady-state behaviour (recent pages tracked) is similar.
			clear(p.keys)
			p.n = 0
			i = p.slot(page)
		}
		p.keys[i] = page + 1
		p.entries[i] = strideEntry{lastLine: lineInPage}
		p.n++
		return 0, false
	}
	e := &p.entries[i]
	d := lineInPage - e.lastLine
	if d == e.delta && d != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.delta = d
	}
	e.lastLine = lineInPage
	if e.conf >= 2 {
		// A negative target can wrap on a descending stride; the resulting
		// fill is junk but harmless and deterministic, like a real
		// prefetcher running off the start of a buffer.
		return arch.PAddr(uint64(lineInPage+e.delta) << arch.LineShift), true
	}
	return 0, false
}
