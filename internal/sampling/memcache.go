package sampling

import (
	"sync"
	"sync/atomic"

	"morrigan/internal/trace"
)

// MemProfileCache caches profile artifacts in memory for the lifetime of a
// campaign. The functional profiling pass depends only on the workload and
// the sampling window — not on the machine under test — so a sweep that runs
// N configurations over the same workload pays the pass once instead of N
// times even when no disk-backed ProfileStore is attached. Builds are
// single-flighted per key, mirroring ProfileStore; the cached *Profile is
// shared, so callers must not mutate it (Cluster copies before normalising).
type MemProfileCache struct {
	mu    sync.Mutex
	calls map[string]*profileCall

	built  atomic.Uint64
	reused atomic.Uint64
}

// NewMemProfileCache returns an empty cache.
func NewMemProfileCache() *MemProfileCache {
	return &MemProfileCache{calls: make(map[string]*profileCall)}
}

// Profile returns the cached artifact for the window, building it with a
// functional pass over a fresh reader from newReader on the first request.
// Unlike ProfileStore, completed entries stay resident: a campaign's
// distinct (workload, window) set is small and each profile is a few KB.
func (mc *MemProfileCache) Profile(workloadHash string, skip, measure, interval uint64, newReader func() (trace.Reader, error)) (*Profile, error) {
	key := ProfileKey(workloadHash, skip, measure, interval)

	mc.mu.Lock()
	if call, ok := mc.calls[key]; ok {
		mc.mu.Unlock()
		<-call.done
		if call.err == nil {
			mc.reused.Add(1)
		}
		return call.prof, call.err
	}
	call := &profileCall{done: make(chan struct{})}
	mc.calls[key] = call
	mc.mu.Unlock()

	call.prof, call.err = buildFresh(workloadHash, skip, measure, interval, newReader)
	if call.err == nil {
		mc.built.Add(1)
	}
	close(call.done)

	if call.err != nil {
		// Drop failed builds so a transient reader error doesn't poison the
		// key for the rest of the campaign.
		mc.mu.Lock()
		delete(mc.calls, key)
		mc.mu.Unlock()
	}
	return call.prof, call.err
}

// buildFresh runs the functional profiling pass over a fresh reader.
func buildFresh(workloadHash string, skip, measure, interval uint64, newReader func() (trace.Reader, error)) (*Profile, error) {
	r, err := newReader()
	if err != nil {
		return nil, err
	}
	defer closeReader(r)
	return BuildProfile(r, workloadHash, skip, measure, interval)
}

// Built returns how many profiles were computed from scratch.
func (mc *MemProfileCache) Built() uint64 { return mc.built.Load() }

// Reused returns how many requests were served from cache or in flight.
func (mc *MemProfileCache) Reused() uint64 { return mc.reused.Load() }
