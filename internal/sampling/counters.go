package sampling

import "sync/atomic"

// Process-wide sampling-phase counters, fed by the runner after each sampled
// execution and surfaced as observability gauges by the CLIs. Plain atomics
// (rather than per-store state) because a campaign may run sampled jobs
// through several runner invocations sharing one process.
var (
	sampledRuns atomic.Uint64
	timedInstr  atomic.Uint64
	ffInstr     atomic.Uint64
)

// RecordOutcome folds one sampled execution into the process totals.
func RecordOutcome(o *Outcome) {
	if o == nil {
		return
	}
	sampledRuns.Add(1)
	timedInstr.Add(o.TimedInstructions)
	ffInstr.Add(o.FastForwarded)
}

// RunTotals is a snapshot of the process-wide sampling counters.
type RunTotals struct {
	SampledRuns       uint64
	TimedInstructions uint64
	FastForwarded     uint64
}

// Totals snapshots the process-wide sampling counters.
func Totals() RunTotals {
	return RunTotals{
		SampledRuns:       sampledRuns.Load(),
		TimedInstructions: timedInstr.Load(),
		FastForwarded:     ffInstr.Load(),
	}
}
