package sampling

import (
	"fmt"
	"math"
	"sort"
)

// Rep is one representative interval chosen by the clusterer.
type Rep struct {
	// Index is the interval's position in the measurement window (interval
	// Index covers instructions [Index*Interval, (Index+1)*Interval)).
	Index int `json:"index"`
	// Weight is the fraction of the window the representative stands for:
	// its cluster's population over the interval count. Weights sum to 1.
	Weight float64 `json:"weight"`
}

// Plan is the clusterer's output: which intervals to simulate in timing
// detail and how to weight them during extrapolation.
type Plan struct {
	Interval  uint64 `json:"interval"`
	Intervals int    `json:"intervals"` // total intervals in the window
	Reps      []Rep  `json:"reps"`      // sorted by Index ascending
}

// featureDims is the dimensionality of the clustering space.
const featureDims = 6

// vector derives the normalised clustering vector from raw interval features:
// per-kilo-instruction miss and transition rates plus the two dimensionless
// summaries.
func vector(f *Features) [featureDims]float64 {
	ki := float64(f.Instructions) / 1000
	if ki == 0 {
		return [featureDims]float64{}
	}
	return [featureDims]float64{
		float64(f.ITLBMisses) / ki,
		float64(f.ISTLBMisses) / ki,
		float64(f.DSTLBMisses) / ki,
		float64(f.PageTransitions) / ki,
		f.MissPCSkew,
		f.ReuseLog2Mean,
	}
}

// splitmix64 is the deterministic PRNG behind k-means++ seeding — tiny,
// well-distributed, and stable across Go releases (unlike math/rand's
// global source).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64n returns a uniform float in [0, 1).
func (s *splitmix64) float64n() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

const maxKMeansIters = 50

// Cluster partitions the profile's intervals into at most pol.Clusters
// groups with a seeded k-means over z-score-normalised feature vectors and
// returns the representative plan. Everything is deterministic: fixed
// iteration order, seeded k-means++ initialisation, ties broken toward the
// lowest index.
func Cluster(prof *Profile, pol Policy) (*Plan, error) {
	m := len(prof.Intervals)
	if m == 0 {
		return nil, fmt.Errorf("sampling: profile has no intervals")
	}
	k := pol.Clusters
	if k > m {
		k = m
	}

	// Z-score normalise each dimension so high-magnitude rates (misses/KI)
	// don't drown the dimensionless features.
	pts := make([][featureDims]float64, m)
	for i := range prof.Intervals {
		pts[i] = vector(&prof.Intervals[i])
	}
	var mean, std [featureDims]float64
	for d := 0; d < featureDims; d++ {
		for i := range pts {
			mean[d] += pts[i][d]
		}
		mean[d] /= float64(m)
		for i := range pts {
			diff := pts[i][d] - mean[d]
			std[d] += diff * diff
		}
		std[d] = math.Sqrt(std[d] / float64(m))
		for i := range pts {
			if std[d] > 0 {
				pts[i][d] = (pts[i][d] - mean[d]) / std[d]
			} else {
				pts[i][d] = 0
			}
		}
	}

	centroids := initCentroids(pts, k, pol.Seed)
	assign := make([]int, m)
	for iter := 0; iter < maxKMeansIters; iter++ {
		changed := false
		for i := range pts {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(pts[i], centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; an emptied cluster keeps its old centroid so
		// k stays fixed and the loop stays deterministic.
		var sums [][featureDims]float64 = make([][featureDims]float64, len(centroids))
		counts := make([]int, len(centroids))
		for i := range pts {
			c := assign[i]
			counts[c]++
			for d := 0; d < featureDims; d++ {
				sums[c][d] += pts[i][d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < featureDims; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}

	// Representative per cluster: the member nearest its centroid, lowest
	// index on ties. Weight is the cluster's population share.
	repIdx := make([]int, len(centroids))
	repDist := make([]float64, len(centroids))
	counts := make([]int, len(centroids))
	for c := range repIdx {
		repIdx[c] = -1
		repDist[c] = math.Inf(1)
	}
	for i := range pts {
		c := assign[i]
		counts[c]++
		if d := dist2(pts[i], centroids[c]); d < repDist[c] {
			repIdx[c], repDist[c] = i, d
		}
	}

	plan := &Plan{Interval: prof.Interval, Intervals: m}
	for c := range repIdx {
		if repIdx[c] < 0 {
			continue // cluster emptied during iteration
		}
		plan.Reps = append(plan.Reps, Rep{
			Index:  repIdx[c],
			Weight: float64(counts[c]) / float64(m),
		})
	}
	sort.Slice(plan.Reps, func(i, j int) bool { return plan.Reps[i].Index < plan.Reps[j].Index })
	return plan, nil
}

// initCentroids seeds k centroids k-means++-style: the first uniformly, each
// later one with probability proportional to squared distance from the
// nearest already-chosen centroid.
func initCentroids(pts [][featureDims]float64, k int, seed uint64) [][featureDims]float64 {
	rng := splitmix64(seed ^ 0x6d6f72726967616e) // "morrigan"
	centroids := make([][featureDims]float64, 0, k)
	first := int(rng.next() % uint64(len(pts)))
	centroids = append(centroids, pts[first])

	d2 := make([]float64, len(pts))
	for len(centroids) < k {
		var total float64
		for i := range pts {
			d2[i] = math.Inf(1)
			for c := range centroids {
				if d := dist2(pts[i], centroids[c]); d < d2[i] {
					d2[i] = d
				}
			}
			total += d2[i]
		}
		pick := 0
		if total > 0 {
			target := rng.float64n() * total
			var acc float64
			for i := range d2 {
				acc += d2[i]
				if acc >= target {
					pick = i
					break
				}
			}
		} else {
			// All points coincide with a centroid; spread deterministically.
			pick = int(rng.next() % uint64(len(pts)))
		}
		centroids = append(centroids, pts[pick])
	}
	return centroids
}

func dist2(a, b [featureDims]float64) float64 {
	var s float64
	for d := 0; d < featureDims; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}
