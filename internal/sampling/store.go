package sampling

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"morrigan/internal/trace"
)

// profileKeyVersion is the domain-separation prefix of profile artifact keys.
// Bump it together with ProfileSchemaVersion/FeatureVersion changes that
// alter artifact meaning.
const profileKeyVersion = "morrigan/sampling.ProfileKey/v1"

// ProfileKey derives the content address of a profile artifact: the hash of
// everything that determines its bytes — format versions, the workload's
// own hash, and the profiling window geometry.
func ProfileKey(workloadHash string, skip, measure, interval uint64) string {
	h := sha256.New()
	var buf [8]byte
	ws := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws(profileKeyVersion)
	wu(uint64(ProfileSchemaVersion))
	wu(uint64(FeatureVersion))
	ws(workloadHash)
	wu(skip)
	wu(measure)
	wu(interval)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ProfileStore caches profile artifacts on disk, one JSON file per key,
// typically in a profiles/ directory beside the trace corpus. Builds are
// single-flighted per key, so concurrent jobs over the same workload pay the
// functional pass once.
type ProfileStore struct {
	dir string

	mu       sync.Mutex
	inflight map[string]*profileCall

	built  atomic.Uint64
	reused atomic.Uint64
}

type profileCall struct {
	done chan struct{}
	prof *Profile
	err  error
}

// OpenProfileStore creates (if needed) and opens the artifact directory.
func OpenProfileStore(dir string) (*ProfileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	return &ProfileStore{dir: dir, inflight: make(map[string]*profileCall)}, nil
}

// Dir returns the store's directory.
func (ps *ProfileStore) Dir() string { return ps.dir }

func (ps *ProfileStore) path(key string) string {
	return filepath.Join(ps.dir, key+".json")
}

// Profile returns the cached artifact for the window, building it with a
// functional pass over a fresh reader from newReader when absent. The
// returned profile is shared; callers must not mutate it.
func (ps *ProfileStore) Profile(workloadHash string, skip, measure, interval uint64, newReader func() (trace.Reader, error)) (*Profile, error) {
	key := ProfileKey(workloadHash, skip, measure, interval)

	ps.mu.Lock()
	if call, ok := ps.inflight[key]; ok {
		ps.mu.Unlock()
		<-call.done
		if call.err == nil {
			ps.reused.Add(1)
		}
		return call.prof, call.err
	}
	call := &profileCall{done: make(chan struct{})}
	ps.inflight[key] = call
	ps.mu.Unlock()

	call.prof, call.err = ps.load(key, workloadHash, skip, measure, interval)
	if call.err == nil && call.prof != nil {
		ps.reused.Add(1)
	}
	if call.err == nil && call.prof == nil {
		call.prof, call.err = ps.build(key, workloadHash, skip, measure, interval, newReader)
		if call.err == nil {
			ps.built.Add(1)
		}
	}
	close(call.done)

	ps.mu.Lock()
	delete(ps.inflight, key)
	ps.mu.Unlock()
	return call.prof, call.err
}

// load reads and validates a cached artifact; (nil, nil) means absent. A
// corrupt or mismatched artifact is treated as absent rather than fatal —
// the build path overwrites it.
func (ps *ProfileStore) load(key, workloadHash string, skip, measure, interval uint64) (*Profile, error) {
	raw, err := os.ReadFile(ps.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	var prof Profile
	if err := json.Unmarshal(raw, &prof); err != nil {
		return nil, nil
	}
	if prof.Schema != ProfileSchemaVersion || prof.Feature != FeatureVersion ||
		prof.Workload != workloadHash || prof.Skip != skip ||
		prof.Measure != measure || prof.Interval != interval ||
		len(prof.Intervals) == 0 {
		return nil, nil
	}
	return &prof, nil
}

func (ps *ProfileStore) build(key, workloadHash string, skip, measure, interval uint64, newReader func() (trace.Reader, error)) (*Profile, error) {
	r, err := newReader()
	if err != nil {
		return nil, fmt.Errorf("sampling: opening reader for profiling: %w", err)
	}
	defer closeReader(r)
	prof, err := BuildProfile(r, workloadHash, skip, measure, interval)
	if err != nil {
		return nil, err
	}

	raw, err := json.Marshal(prof)
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(ps.dir, ".profile-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	if err := os.Rename(tmp.Name(), ps.path(key)); err != nil {
		return nil, fmt.Errorf("sampling: profile store: %w", err)
	}
	return prof, nil
}

func closeReader(r trace.Reader) {
	if c, ok := r.(interface{ Close() error }); ok {
		c.Close()
	}
}

// Built returns how many profiles this store instance computed from scratch.
func (ps *ProfileStore) Built() uint64 { return ps.built.Load() }

// Reused returns how many profile requests were served from cache (on disk
// or in flight).
func (ps *ProfileStore) Reused() uint64 { return ps.reused.Load() }
