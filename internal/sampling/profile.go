package sampling

import (
	"fmt"
	"io"
	"math"
	"sort"

	"morrigan/internal/arch"
	"morrigan/internal/tlb"
	"morrigan/internal/trace"
)

// Features is one interval's memory-behaviour feature vector, produced by the
// functional profiling pass. The fields are raw counts and summaries; the
// clusterer derives normalised per-kilo-instruction rates from them, so the
// artifact stays interval-length-agnostic.
type Features struct {
	// Instructions actually profiled in the interval (equals the policy
	// interval except for a truncated final interval, which the profiler
	// drops).
	Instructions uint64 `json:"instructions"`
	// ITLBMisses counts first-level instruction-TLB misses.
	ITLBMisses uint64 `json:"itlb_misses"`
	// ISTLBMisses counts instruction-side misses that also missed the STLB.
	ISTLBMisses uint64 `json:"istlb_misses"`
	// DSTLBMisses counts data-side misses that also missed the STLB.
	DSTLBMisses uint64 `json:"dstlb_misses"`
	// PageTransitions counts changes of the executing instruction page —
	// the routine-transition mix that drives Morrigan's markov prefetcher.
	PageTransitions uint64 `json:"page_transitions"`
	// MissPCSkew is the share of the interval's ITLB misses attributable to
	// its four most-missed instruction pages: near 1.0 for tight loops over
	// few hot pages, near 0 for flat sprawling code footprints.
	MissPCSkew float64 `json:"miss_pc_skew"`
	// ReuseLog2Mean is the mean log2 reuse distance of instruction-page
	// transitions, measured in transitions since the page was last entered.
	// Zero when no page in the interval had been entered before.
	ReuseLog2Mean float64 `json:"reuse_log2_mean"`
}

// Profile is the versioned per-workload profiling artifact: one feature
// vector per fixed-length interval of the measurement window.
type Profile struct {
	Schema   int    `json:"schema"`
	Feature  int    `json:"feature"`
	Workload string `json:"workload"` // workload spec hash, informational
	Skip     uint64 `json:"skip"`     // instructions skipped (job warmup)
	Measure  uint64 `json:"measure"`
	Interval uint64 `json:"interval"`
	// Intervals holds one entry per full interval, in stream order.
	Intervals []Features `json:"intervals"`
}

// The functional profiler runs fixed TLB geometries regardless of the
// machine under study (the paper's Table 1 baseline: 64-entry L1 TLBs,
// 1536-entry 6-way STLB). Profiles characterise the workload, not the
// machine, so one artifact serves every configuration swept over a workload.
const (
	profITLBEntries = 64
	profITLBWays    = 4
	profDTLBEntries = 64
	profDTLBWays    = 4
	profSTLBEntries = 1536
	profSTLBWays    = 6
)

// skewTopPages is how many hot miss pages the skew feature aggregates.
const skewTopPages = 4

// profiler is the functional state streamed over the trace. It models TLB
// presence only — no latencies, no context switches, no prefetchers — which
// is what makes the pass cheap enough to run over the full window.
type profiler struct {
	itlb, dtlb, stlb *tlb.TLB

	curVPN  arch.VPN
	haveVPN bool

	// Reuse-distance tracking in transition-sequence space, global across
	// intervals so distances spanning interval boundaries are preserved.
	lastSeen map[arch.VPN]uint64
	seq      uint64

	// Per-interval accumulators, cleared at each boundary.
	cur       Features
	missPages map[arch.VPN]uint64
	reuseSum  float64
	reuseN    uint64
}

func newProfiler() *profiler {
	return &profiler{
		itlb:      tlb.New("prof-itlb", profITLBEntries, profITLBWays, 0),
		dtlb:      tlb.New("prof-dtlb", profDTLBEntries, profDTLBWays, 0),
		stlb:      tlb.New("prof-stlb", profSTLBEntries, profSTLBWays, 0),
		lastSeen:  make(map[arch.VPN]uint64),
		missPages: make(map[arch.VPN]uint64),
	}
}

// step feeds one instruction through the functional model. record selects
// whether counters accumulate (false during the skip phase, which only warms
// state).
func (p *profiler) step(rec *trace.Record, record bool) {
	const tid = arch.ThreadID(0)

	vpn := rec.PC.Page()
	if !p.haveVPN || vpn != p.curVPN {
		if record {
			p.cur.PageTransitions++
			if prev, ok := p.lastSeen[vpn]; ok {
				p.reuseSum += math.Log2(float64(p.seq - prev))
				p.reuseN++
			}
		}
		p.lastSeen[vpn] = p.seq
		p.seq++
		p.curVPN = vpn
		p.haveVPN = true

		if _, hit := p.itlb.Lookup(tid, vpn); !hit {
			if record {
				p.cur.ITLBMisses++
				p.missPages[vpn]++
			}
			if _, hit := p.stlb.Lookup(tid, vpn); !hit {
				if record {
					p.cur.ISTLBMisses++
				}
				p.stlb.Insert(tid, vpn, arch.PFN(vpn))
			}
			p.itlb.Insert(tid, vpn, arch.PFN(vpn))
		}
	}

	if rec.HasLoad() {
		p.data(rec.Load.Page(), record)
	}
	if rec.HasStore() {
		p.data(rec.Store.Page(), record)
	}
	if record {
		p.cur.Instructions++
	}
}

func (p *profiler) data(vpn arch.VPN, record bool) {
	const tid = arch.ThreadID(0)
	if _, hit := p.dtlb.Lookup(tid, vpn); hit {
		return
	}
	if _, hit := p.stlb.Lookup(tid, vpn); !hit {
		if record {
			p.cur.DSTLBMisses++
		}
		p.stlb.Insert(tid, vpn, arch.PFN(vpn))
	}
	p.dtlb.Insert(tid, vpn, arch.PFN(vpn))
}

// finish closes the current interval and returns its feature vector.
func (p *profiler) finish() Features {
	f := p.cur
	f.MissPCSkew = topShare(p.missPages, f.ITLBMisses)
	if p.reuseN > 0 {
		f.ReuseLog2Mean = p.reuseSum / float64(p.reuseN)
	}
	p.cur = Features{}
	clear(p.missPages)
	p.reuseSum, p.reuseN = 0, 0
	return f
}

// topShare returns the fraction of total held by the skewTopPages largest
// counts in m.
func topShare(m map[arch.VPN]uint64, total uint64) float64 {
	if total == 0 || len(m) == 0 {
		return 0
	}
	counts := make([]uint64, 0, len(m))
	for _, c := range m {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	if len(counts) > skewTopPages {
		counts = counts[:skewTopPages]
	}
	var top uint64
	for _, c := range counts {
		top += c
	}
	return float64(top) / float64(total)
}

// BuildProfile streams skip+measure instructions from r through the
// functional model and returns the per-interval profile. The skip phase warms
// the functional TLBs and the reuse tracker without recording, mirroring the
// job's timing warmup. A truncated final interval (stream ended early) is
// dropped; at least one full interval must survive.
func BuildProfile(r trace.Reader, workloadHash string, skip, measure, interval uint64) (*Profile, error) {
	if interval == 0 || measure < interval {
		return nil, fmt.Errorf("sampling: invalid profile window measure=%d interval=%d", measure, interval)
	}
	p := newProfiler()
	prof := &Profile{
		Schema:   ProfileSchemaVersion,
		Feature:  FeatureVersion,
		Workload: workloadHash,
		Skip:     skip,
		Measure:  measure,
		Interval: interval,
	}

	batch := make([]trace.Record, 512)
	br, batched := r.(trace.BatchReader)

	var done uint64
	total := skip + measure
	buf := batch[:0]
	bpos := 0
	next := func(rec *trace.Record) error {
		if batched {
			if bpos >= len(buf) {
				n, err := br.NextBatch(batch)
				if err != nil {
					return err
				}
				buf, bpos = batch[:n], 0
			}
			*rec = buf[bpos]
			bpos++
			return nil
		}
		return r.Next(rec)
	}

	var rec trace.Record
	for done < total {
		if err := next(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("sampling: profiling pass: %w", err)
		}
		recording := done >= skip
		p.step(&rec, recording)
		done++
		if recording && (done-skip)%interval == 0 {
			prof.Intervals = append(prof.Intervals, p.finish())
		}
	}
	if len(prof.Intervals) == 0 {
		return nil, fmt.Errorf("sampling: stream ended before one full interval (%d instructions) was profiled", interval)
	}
	return prof, nil
}
