// Package sampling is the representative-interval sampling subsystem: the
// entry point to workloads orders of magnitude longer than end-to-end
// simulation can reach. Instead of simulating every instruction of a
// measurement window in timing detail, a sampled run
//
//  1. profiles the window through a cheap functional pass (profile.go),
//     emitting one memory-behaviour feature vector per fixed-length interval
//     — ITLB/STLB miss densities, miss-PC skew, the routine-transition mix
//     and a page-reuse-distance summary;
//  2. clusters the interval vectors with a deterministic seeded k-means
//     (kmeans.go) and picks one representative interval per cluster,
//     weighted by cluster population;
//  3. fast-forwards the simulator to each representative with functional
//     TLB/page-table warmup only (sim.FastForward), simulates the measured
//     slice in full timing detail, and extrapolates the weighted Stats with
//     per-metric 95% confidence intervals (execute.go, estimate.go).
//
// Profiles are versioned, hash-keyed artifacts cached on disk beside the
// trace corpus (store.go), so the functional pass is paid once per
// (workload, scale, interval) and every later sampled run goes straight to
// clustering. The methodology follows the SimPoint/interval-clustering line
// of work the paper's evaluation scale implicitly assumes.
package sampling

import "fmt"

// ProfileSchemaVersion identifies the on-disk profile artifact format.
const ProfileSchemaVersion = 1

// FeatureVersion identifies the per-interval feature vector definition. It is
// folded into profile artifact keys, so changing what the profiler measures
// invalidates cached profiles instead of silently clustering on stale
// features.
const FeatureVersion = 1

// Policy describes how one job is sampled. It is part of the job's canonical
// identity: two jobs with equal (machine, workloads, scale) but different
// policies measure different instruction slices, so their keys must differ
// (see runner.Job.Key). All fields are required except SliceWarmup, which may
// be zero (no timed warmup before each measured slice).
type Policy struct {
	// Interval is the fixed interval length in instructions. The measured
	// window is split into Measure/Interval intervals; Measure must be an
	// exact multiple so the extrapolated instruction count equals the full
	// run's.
	Interval uint64 `json:"interval"`
	// Clusters is the k of the k-means clusterer — the maximum number of
	// representative intervals simulated in timing detail. Clamped to the
	// interval count when the window is short.
	Clusters int `json:"clusters"`
	// SliceWarmup is how many instructions are simulated in full timing
	// detail (but not measured) immediately before each representative
	// slice, on top of the functional TLB/page-table warmup of the
	// fast-forward, so cache and core state are partially warm at the
	// measurement boundary.
	SliceWarmup uint64 `json:"slice_warmup"`
	// Seed seeds the k-means initialisation; fixed iteration order plus a
	// fixed seed makes the cluster choice — and therefore the sampled
	// result — fully deterministic.
	Seed uint64 `json:"seed"`
}

// DefaultPolicy returns the sampling policy the CLIs default to: 100k-
// instruction intervals, 8 clusters, a quarter-interval timed slice warmup.
func DefaultPolicy() Policy {
	return Policy{Interval: 100_000, Clusters: 8, SliceWarmup: 25_000, Seed: 1}
}

// Validate checks the policy against a job's measurement window.
func (p Policy) Validate(measure uint64) error {
	if p.Interval == 0 {
		return fmt.Errorf("sampling: interval must be positive")
	}
	if p.Clusters <= 0 {
		return fmt.Errorf("sampling: clusters must be positive")
	}
	if measure < p.Interval {
		return fmt.Errorf("sampling: measure %d is shorter than one interval (%d)", measure, p.Interval)
	}
	if measure%p.Interval != 0 {
		return fmt.Errorf("sampling: measure %d is not a multiple of the interval %d", measure, p.Interval)
	}
	if p.SliceWarmup > p.Interval*4 {
		return fmt.Errorf("sampling: slice warmup %d exceeds 4 intervals — the speedup would vanish", p.SliceWarmup)
	}
	return nil
}
