package sampling

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/sim"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

func TestPolicyValidate(t *testing.T) {
	base := Policy{Interval: 1000, Clusters: 4, SliceWarmup: 500, Seed: 1}
	cases := []struct {
		name    string
		mutate  func(*Policy)
		measure uint64
		wantErr bool
	}{
		{"ok", func(*Policy) {}, 10_000, false},
		{"zero interval", func(p *Policy) { p.Interval = 0 }, 10_000, true},
		{"zero clusters", func(p *Policy) { p.Clusters = 0 }, 10_000, true},
		{"measure shorter than interval", func(*Policy) {}, 500, true},
		{"measure not a multiple", func(*Policy) {}, 10_500, true},
		{"warmup too long", func(p *Policy) { p.SliceWarmup = 4001 }, 10_000, true},
		{"warmup at the limit", func(p *Policy) { p.SliceWarmup = 4000 }, 10_000, false},
		{"zero warmup", func(p *Policy) { p.SliceWarmup = 0 }, 10_000, false},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		err := p.Validate(tc.measure)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate(%d) = %v, wantErr=%v", tc.name, tc.measure, err, tc.wantErr)
		}
	}
}

func TestDefaultPolicyValidates(t *testing.T) {
	if err := DefaultPolicy().Validate(10_000_000); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
}

// sliceReader is a finite trace for truncation tests.
type sliceReader struct {
	recs []trace.Record
	pos  int
}

func (r *sliceReader) Next(rec *trace.Record) error {
	if r.pos >= len(r.recs) {
		return io.EOF
	}
	*rec = r.recs[r.pos]
	r.pos++
	return nil
}

// loopTrace builds n instructions striding through `pages` instruction pages.
func loopTrace(n, pages int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		page := uint64(i%pages + 1)
		recs[i].PC = arch.VAddr(page*arch.PageSize + uint64(i%64)*8)
	}
	return recs
}

func TestBuildProfileDeterministic(t *testing.T) {
	w := workloads.QMM()[0]
	const skip, measure, interval = 2_000, 20_000, 2_000
	a, err := BuildProfile(w.NewReader(), w.Hash(), skip, measure, interval)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildProfile(w.NewReader(), w.Hash(), skip, measure, interval)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two profiling passes over the same stream differ")
	}
	if len(a.Intervals) != measure/interval {
		t.Fatalf("intervals = %d, want %d", len(a.Intervals), measure/interval)
	}
	var transitions uint64
	for i, f := range a.Intervals {
		if f.Instructions != interval {
			t.Errorf("interval %d profiled %d instructions, want %d", i, f.Instructions, interval)
		}
		if f.MissPCSkew < 0 || f.MissPCSkew > 1 {
			t.Errorf("interval %d skew %g out of [0,1]", i, f.MissPCSkew)
		}
		if f.ISTLBMisses > f.ITLBMisses {
			t.Errorf("interval %d: STLB misses %d exceed ITLB misses %d", i, f.ISTLBMisses, f.ITLBMisses)
		}
		transitions += f.PageTransitions
	}
	if transitions == 0 {
		t.Error("no page transitions recorded over the whole window")
	}
}

func TestBuildProfileDropsTruncatedInterval(t *testing.T) {
	// 2.5 intervals of records: the truncated final interval is dropped.
	r := &sliceReader{recs: loopTrace(2_500, 8)}
	prof, err := BuildProfile(r, "w", 0, 10_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Intervals) != 2 {
		t.Fatalf("intervals = %d, want 2 (truncated third dropped)", len(prof.Intervals))
	}
}

func TestBuildProfileErrors(t *testing.T) {
	if _, err := BuildProfile(&sliceReader{recs: loopTrace(500, 8)}, "w", 0, 10_000, 1_000); err == nil {
		t.Error("stream shorter than one interval accepted")
	}
	if _, err := BuildProfile(&sliceReader{}, "w", 0, 10_000, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := BuildProfile(&sliceReader{}, "w", 0, 500, 1_000); err == nil {
		t.Error("measure shorter than interval accepted")
	}
}

func TestClusterDeterministicWeightsAndOrder(t *testing.T) {
	w := workloads.QMM()[1]
	prof, err := BuildProfile(w.NewReader(), w.Hash(), 0, 40_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{Interval: 2_000, Clusters: 4, Seed: 7}
	a, err := Cluster(prof, pol)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(prof, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("clustering the same profile twice differs")
	}
	if a.Intervals != len(prof.Intervals) || a.Interval != prof.Interval {
		t.Errorf("plan window = (%d, %d), want (%d, %d)", a.Intervals, a.Interval, len(prof.Intervals), prof.Interval)
	}
	if len(a.Reps) == 0 || len(a.Reps) > pol.Clusters {
		t.Fatalf("reps = %d, want 1..%d", len(a.Reps), pol.Clusters)
	}
	var sum float64
	for i, rep := range a.Reps {
		if rep.Index < 0 || rep.Index >= a.Intervals {
			t.Errorf("rep %d index %d out of window", i, rep.Index)
		}
		if i > 0 && rep.Index <= a.Reps[i-1].Index {
			t.Errorf("reps not strictly ascending: %d then %d", a.Reps[i-1].Index, rep.Index)
		}
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
}

func TestClusterClampsToIntervalCount(t *testing.T) {
	r := &sliceReader{recs: loopTrace(5_000, 8)}
	prof, err := BuildProfile(r, "w", 0, 5_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Cluster(prof, Policy{Interval: 1_000, Clusters: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reps) > len(prof.Intervals) {
		t.Errorf("reps = %d exceed the %d intervals", len(plan.Reps), len(prof.Intervals))
	}
	var sum float64
	for _, rep := range plan.Reps {
		sum += rep.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	if _, err := Cluster(&Profile{}, Policy{Interval: 1_000, Clusters: 4, Seed: 1}); err == nil {
		t.Error("empty profile accepted")
	}
}

func TestExtrapolateScalesAndRecomputesRatios(t *testing.T) {
	a := sim.Stats{Instructions: 1_000, Cycles: 2_000, IPC: 0.5, ITLBMisses: 10, ITLBMPKI: 10, ISTLBMisses: 4, DemandIWalks: 4, DemandIWalkRefs: 8}
	b := sim.Stats{Instructions: 1_000, Cycles: 1_000, IPC: 1.0, ITLBMisses: 30, ITLBMPKI: 30, ISTLBMisses: 8, DemandIWalks: 2, DemandIWalkRefs: 2}
	a.PrefetchRefsByLevel[0], b.PrefetchRefsByLevel[0] = 100, 200

	est, ci := Extrapolate([]sim.Stats{a, b}, []float64{0.5, 0.5}, 10)
	if est.Instructions != 10_000 {
		t.Errorf("Instructions = %d, want 10000", est.Instructions)
	}
	if est.Cycles != 15_000 {
		t.Errorf("Cycles = %d, want 15000", est.Cycles)
	}
	// IPC is recomputed from the extrapolated counters, not averaged
	// (weighted-mean IPC would be 0.75; the counter ratio is 2/3).
	if want := 10_000.0 / 15_000.0; math.Abs(est.IPC-want) > 1e-9 {
		t.Errorf("IPC = %g, want %g", est.IPC, want)
	}
	if est.ITLBMisses != 200 {
		t.Errorf("ITLBMisses = %d, want 200", est.ITLBMisses)
	}
	if math.Abs(est.ITLBMPKI-20) > 1e-9 {
		t.Errorf("ITLBMPKI = %g, want 20", est.ITLBMPKI)
	}
	if est.PrefetchRefsByLevel[0] != 1_500 {
		t.Errorf("PrefetchRefsByLevel[0] = %d, want 1500", est.PrefetchRefsByLevel[0])
	}
	if want := 10.0 / 6.0; math.Abs(est.RefsPerWalk-want) > 1e-9 {
		t.Errorf("RefsPerWalk = %g, want %g", est.RefsPerWalk, want)
	}
	if ci.IPC <= 0 || ci.ITLBMPKI <= 0 {
		t.Errorf("CI half-widths must be positive with differing slices: %+v", ci)
	}
	// The weighted-mean IPC (0.75) must fall inside the recomputed value's
	// sampling spread: the half-width covers between-slice variance.
	if math.Abs(est.IPC-0.75) > ci.IPC {
		t.Errorf("weighted mean 0.75 outside IPC CI %g ± %g", est.IPC, ci.IPC)
	}
}

func TestExtrapolateIdenticalSlicesBiasGuardOnly(t *testing.T) {
	s := sim.Stats{Instructions: 1_000, Cycles: 2_000, IPC: 0.5}
	_, ci := Extrapolate([]sim.Stats{s, s, s}, []float64{0.5, 0.25, 0.25}, 12)
	// Zero between-slice variance leaves exactly the systematic bias guard.
	if want := biasGuardPct * 0.5; math.Abs(ci.IPC-want) > 1e-12 {
		t.Errorf("identical-slice IPC half-width = %g, want bias guard %g", ci.IPC, want)
	}
}

func TestProfileKeySensitivity(t *testing.T) {
	base := ProfileKey("w", 1, 100, 10)
	keys := map[string]string{
		"workload": ProfileKey("w2", 1, 100, 10),
		"skip":     ProfileKey("w", 2, 100, 10),
		"measure":  ProfileKey("w", 1, 200, 10),
		"interval": ProfileKey("w", 1, 100, 20),
	}
	for dim, k := range keys {
		if k == base {
			t.Errorf("changing %s did not change the profile key", dim)
		}
	}
	if ProfileKey("w", 1, 100, 10) != base {
		t.Error("profile key not deterministic")
	}
}

func TestProfileStoreBuildReuseAndCorruption(t *testing.T) {
	dir := t.TempDir()
	ps, err := OpenProfileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	builds := 0
	newReader := func() (trace.Reader, error) {
		builds++
		return &sliceReader{recs: loopTrace(5_000, 8)}, nil
	}

	a, err := ps.Profile("w", 0, 5_000, 1_000, newReader)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ps.Profile("w", 0, 5_000, 1_000, newReader)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("functional pass ran %d times, want 1", builds)
	}
	if ps.Built() != 1 || ps.Reused() != 1 {
		t.Errorf("built=%d reused=%d, want 1/1", ps.Built(), ps.Reused())
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("cached profile differs from built profile")
	}

	// A second store instance over the same directory reuses the artifact.
	ps2, err := OpenProfileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps2.Profile("w", 0, 5_000, 1_000, newReader); err != nil {
		t.Fatal(err)
	}
	if builds != 1 || ps2.Built() != 0 || ps2.Reused() != 1 {
		t.Errorf("disk reuse: builds=%d built=%d reused=%d, want 1/0/1", builds, ps2.Built(), ps2.Reused())
	}

	// Corrupting the artifact triggers a silent rebuild, not an error.
	key := ProfileKey("w", 0, 5_000, 1_000)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ps3, err := OpenProfileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ps3.Profile("w", 0, 5_000, 1_000, newReader)
	if err != nil {
		t.Fatal(err)
	}
	if ps3.Built() != 1 {
		t.Errorf("corrupt artifact not rebuilt: built=%d", ps3.Built())
	}
	if !reflect.DeepEqual(a, c) {
		t.Error("rebuilt profile differs from original")
	}

	// A mismatched window must never serve another window's artifact.
	if _, err := ps3.Profile("w", 0, 4_000, 1_000, newReader); err != nil {
		t.Fatal(err)
	}
	if ps3.Built() != 2 {
		t.Errorf("distinct window served from cache: built=%d, want 2", ps3.Built())
	}
}

func TestRecordOutcomeTotals(t *testing.T) {
	before := Totals()
	RecordOutcome(nil) // no-op
	RecordOutcome(&Outcome{TimedInstructions: 100, FastForwarded: 900})
	after := Totals()
	if d := after.SampledRuns - before.SampledRuns; d != 1 {
		t.Errorf("sampled runs advanced by %d, want 1", d)
	}
	if d := after.TimedInstructions - before.TimedInstructions; d != 100 {
		t.Errorf("timed instructions advanced by %d, want 100", d)
	}
	if d := after.FastForwarded - before.FastForwarded; d != 900 {
		t.Errorf("fast-forwarded advanced by %d, want 900", d)
	}
}

func TestMemProfileCacheSharesAcrossConfigs(t *testing.T) {
	mc := NewMemProfileCache()
	builds := 0
	newReader := func() (trace.Reader, error) {
		builds++
		return &sliceReader{recs: loopTrace(5_000, 8)}, nil
	}

	// Six "configs" of the same workload and window — the fig15 shape.
	var first *Profile
	for i := 0; i < 6; i++ {
		p, err := mc.Profile("w", 0, 5_000, 1_000, newReader)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = p
		} else if p != first {
			t.Error("cache returned a different profile instance")
		}
	}
	if builds != 1 {
		t.Errorf("functional pass ran %d times, want 1", builds)
	}
	if mc.Built() != 1 || mc.Reused() != 5 {
		t.Errorf("built=%d reused=%d, want 1/5", mc.Built(), mc.Reused())
	}

	// A different window is a different key.
	if _, err := mc.Profile("w", 0, 5_000, 500, newReader); err != nil {
		t.Fatal(err)
	}
	if mc.Built() != 2 {
		t.Errorf("built=%d after new window, want 2", mc.Built())
	}

	// The cached profile matches a direct build bit for bit.
	direct, err := BuildProfile(&sliceReader{recs: loopTrace(5_000, 8)}, "w", 0, 5_000, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, direct) {
		t.Error("cached profile differs from a direct build")
	}
}

func TestMemProfileCacheErrorNotCached(t *testing.T) {
	mc := NewMemProfileCache()
	fail := true
	newReader := func() (trace.Reader, error) {
		if fail {
			return nil, errors.New("transient")
		}
		return &sliceReader{recs: loopTrace(5_000, 8)}, nil
	}
	if _, err := mc.Profile("w", 0, 5_000, 1_000, newReader); err == nil {
		t.Fatal("reader error not surfaced")
	}
	fail = false
	if _, err := mc.Profile("w", 0, 5_000, 1_000, newReader); err != nil {
		t.Fatalf("failed build poisoned the key: %v", err)
	}
	if mc.Built() != 1 {
		t.Errorf("built=%d, want 1", mc.Built())
	}
}
