package sampling

import (
	"context"
	"fmt"

	"morrigan/internal/sim"
)

// Outcome summarises how a sampled run was produced. It travels with the
// extrapolated Stats through the runner's result schema, the journal, the
// result store and the fabric wire format, so a sampled result is never
// mistaken for a full one.
type Outcome struct {
	// Policy is the sampling policy the run used.
	Policy Policy `json:"policy"`
	// Intervals is how many fixed-length intervals the measurement window
	// was split into.
	Intervals int `json:"intervals"`
	// Slices is how many representative intervals were simulated in timing
	// detail (≤ Policy.Clusters).
	Slices int `json:"slices"`
	// TimedInstructions counts instructions simulated in full timing detail,
	// slice warmups included — the cost figure the ≥10x speedup criterion
	// is measured against.
	TimedInstructions uint64 `json:"timed_instructions"`
	// FastForwarded counts instructions consumed by functional warmup only.
	FastForwarded uint64 `json:"fast_forwarded"`
	// CI95 holds the per-metric 95% confidence half-widths of the
	// extrapolated Stats.
	CI95 CI `json:"ci95"`
}

// SpanHook observes sampled-execution phases for distributed tracing: it is
// called at the start of each phase — "fastforward", "settle", "slicewarmup",
// "measure" — and returns a func ending that phase. A nil hook is ignored, so
// the untraced path pays one nil check per phase and nothing else; the hook
// must not perturb execution (asserted by the runner's trace-purity test).
type SpanHook func(phase string) func()

// Execute runs the sampled-execution mode over a freshly constructed
// simulator: for each representative in the plan it fast-forwards with
// functional TLB/page-table warmup, optionally simulates a timed slice
// warmup, simulates the representative interval in full timing detail, and
// finally extrapolates the weighted full-window Stats with confidence
// intervals.
//
// warmup is the job's (functional, under sampling) warmup prefix; the plan's
// interval indices are relative to the measurement window that follows it.
// The simulator must be fresh — its trace readers positioned at the stream
// start — and is consumed by the call.
func Execute(ctx context.Context, s *sim.Simulator, warmup uint64, plan *Plan, pol Policy) (sim.Stats, *Outcome, error) {
	return ExecuteTraced(ctx, s, warmup, plan, pol, nil)
}

// ExecuteTraced is Execute with a per-phase tracing hook; see SpanHook.
func ExecuteTraced(ctx context.Context, s *sim.Simulator, warmup uint64, plan *Plan, pol Policy, hook SpanHook) (sim.Stats, *Outcome, error) {
	if len(plan.Reps) == 0 {
		return sim.Stats{}, nil, fmt.Errorf("sampling: plan has no representatives")
	}
	slices := make([]sim.Stats, 0, len(plan.Reps))
	weights := make([]float64, 0, len(plan.Reps))

	var pos uint64 // stream position in instructions
	for _, rep := range plan.Reps {
		start := warmup + uint64(rep.Index)*plan.Interval
		if start < pos {
			return sim.Stats{}, nil, fmt.Errorf("sampling: representative %d overlaps the previous slice", rep.Index)
		}
		// Timed slice warmup eats into the fast-forward gap; when the gap is
		// shorter than the configured warmup (adjacent representatives), the
		// warmup shrinks to the gap.
		ffTarget := start
		if gap := start - pos; gap > pol.SliceWarmup {
			ffTarget = start - pol.SliceWarmup
		} else {
			ffTarget = pos
		}
		if ffTarget > pos {
			end := phase(hook, "fastforward")
			err := s.FastForward(ctx, ffTarget-pos)
			end()
			if err != nil {
				return sim.Stats{}, nil, err
			}
		}
		// Every RunContext call rebases the core clock; in-flight activity
		// carrying absolute timestamps from an earlier clock epoch completed
		// long ago in simulated time and must settle, or it would charge
		// phantom stalls. Settle once before the timed slice warmup (previous
		// slice's epoch) and again at the warmup/measure boundary (the slice
		// warmup's own epoch) by running warmup and measurement as separate
		// clock epochs.
		end := phase(hook, "settle")
		s.SettleTiming()
		end()
		if start > ffTarget {
			end = phase(hook, "slicewarmup")
			_, err := s.RunContext(ctx, 0, start-ffTarget)
			end()
			if err != nil {
				return sim.Stats{}, nil, err
			}
			end = phase(hook, "settle")
			s.SettleTiming()
			end()
		}
		end = phase(hook, "measure")
		st, err := s.RunContext(ctx, 0, plan.Interval)
		end()
		if err != nil {
			return sim.Stats{}, nil, err
		}
		if st.Instructions < plan.Interval {
			return sim.Stats{}, nil, fmt.Errorf("sampling: representative %d got %d of %d instructions — trace ended early",
				rep.Index, st.Instructions, plan.Interval)
		}
		slices = append(slices, st)
		weights = append(weights, rep.Weight)
		pos = start + plan.Interval
	}

	est, ci := Extrapolate(slices, weights, plan.Intervals)
	out := &Outcome{
		Policy:            pol,
		Intervals:         plan.Intervals,
		Slices:            len(slices),
		TimedInstructions: s.Executed(),
		FastForwarded:     s.FastForwarded(),
		CI95:              ci,
	}
	return est, out, nil
}

// phase invokes the hook for one phase, returning the closer; on a nil hook
// both halves are no-ops.
func phase(hook SpanHook, name string) func() {
	if hook == nil {
		return func() {}
	}
	return hook(name)
}
