package sampling

import (
	"math"
	"reflect"

	"morrigan/internal/sim"
)

// CI holds the 95% confidence half-widths for the headline metrics of a
// sampled run: the reported value ± the half-width is the interval the
// accuracy harness asserts full-run values fall inside.
type CI struct {
	IPC       float64 `json:"ipc"`
	L1IMPKI   float64 `json:"l1i_mpki"`
	ITLBMPKI  float64 `json:"itlb_mpki"`
	ISTLBMPKI float64 `json:"istlb_mpki"`
	DSTLBMPKI float64 `json:"dstlb_mpki"`
}

// biasGuardPct is a systematic-error floor added to every half-width: the
// weighted-cluster estimator's sampling variance goes to zero as clusters
// tighten, but warmup truncation bias does not, so a pure variance CI would
// be overconfident on near-uniform workloads.
const biasGuardPct = 0.02

// Extrapolate combines per-representative slice Stats into a full-window
// estimate. Counters (uint64 fields, including cycle counts and per-level
// arrays) scale as weighted per-interval mean times the interval count;
// ratio metrics are recomputed from the extrapolated counters so the
// reported Stats stay internally consistent; remaining float summaries take
// the weighted mean. The returned CI carries per-metric 95% half-widths from
// the weighted between-slice variance.
func Extrapolate(slices []sim.Stats, weights []float64, intervals int) (sim.Stats, CI) {
	var out sim.Stats
	ov := reflect.ValueOf(&out).Elem()
	t := ov.Type()
	n := float64(intervals)

	for f := 0; f < t.NumField(); f++ {
		of := ov.Field(f)
		switch of.Kind() {
		case reflect.Uint64:
			var mean float64
			for i := range slices {
				mean += weights[i] * float64(reflect.ValueOf(slices[i]).Field(f).Uint())
			}
			of.SetUint(uint64(math.Round(mean * n)))
		case reflect.Float64:
			var mean float64
			for i := range slices {
				mean += weights[i] * reflect.ValueOf(slices[i]).Field(f).Float()
			}
			of.SetFloat(mean)
		case reflect.Array:
			for e := 0; e < of.Len(); e++ {
				var mean float64
				for i := range slices {
					mean += weights[i] * float64(reflect.ValueOf(slices[i]).Field(f).Index(e).Uint())
				}
				of.Index(e).SetUint(uint64(math.Round(mean * n)))
			}
		}
	}

	// Recompute the ratio metrics from the extrapolated counters.
	if out.Cycles > 0 {
		out.IPC = float64(out.Instructions) / float64(out.Cycles)
	}
	out.L1IMPKI = mpki(out.L1IMisses, out.Instructions)
	out.ITLBMPKI = mpki(out.ITLBMisses, out.Instructions)
	out.ISTLBMPKI = mpki(out.ISTLBMisses, out.Instructions)
	out.DSTLBMPKI = mpki(out.DSTLBMisses, out.Instructions)
	if walks := out.DemandIWalks + out.DemandDWalks; walks > 0 {
		out.RefsPerWalk = float64(out.DemandIWalkRefs+out.DemandDWalkRefs) / float64(walks)
	}

	ci := CI{
		IPC:       halfWidth(slices, weights, func(s *sim.Stats) float64 { return s.IPC }),
		L1IMPKI:   halfWidth(slices, weights, func(s *sim.Stats) float64 { return s.L1IMPKI }),
		ITLBMPKI:  halfWidth(slices, weights, func(s *sim.Stats) float64 { return s.ITLBMPKI }),
		ISTLBMPKI: halfWidth(slices, weights, func(s *sim.Stats) float64 { return s.ISTLBMPKI }),
		DSTLBMPKI: halfWidth(slices, weights, func(s *sim.Stats) float64 { return s.DSTLBMPKI }),
	}
	return out, ci
}

func mpki(misses, instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(misses) / float64(instr) * 1000
}

// halfWidth computes the 95% half-width of the weighted estimator for one
// per-slice metric: 1.96 times the standard error of the weighted mean (with
// weights treated as sampling fractions, SE² = Var_w · Σw²), plus the
// systematic bias guard.
func halfWidth(slices []sim.Stats, weights []float64, metric func(*sim.Stats) float64) float64 {
	var mu float64
	for i := range slices {
		mu += weights[i] * metric(&slices[i])
	}
	var varw, w2 float64
	for i := range slices {
		d := metric(&slices[i]) - mu
		varw += weights[i] * d * d
		w2 += weights[i] * weights[i]
	}
	return 1.96*math.Sqrt(varw*w2) + biasGuardPct*math.Abs(mu)
}
