package sim

import "morrigan/internal/arch"

// pendingTable tracks in-flight instruction-line prefetches — physical line
// number to fill-completion cycle — replacing a Go map on the fetch hot path
// with an open-addressed table (linear probing, backward-shift deletion).
// Completed fills are retired by a bounded sweep amortized over inserts, so
// the table tracks the true in-flight population instead of accumulating
// stale entries between the former threshold-triggered full-map prunes.
//
// Retiring a completed entry early cannot change simulation results: a
// demand fetch hitting an entry whose ready time has passed waits zero
// cycles and removes it, which is indistinguishable from the entry being
// absent.
type pendingTable struct {
	keys   []uint64 // line+1 so a zero slot means empty
	readys []arch.Cycle
	mask   uint64
	n      int
	sweep  uint64 // next slot the amortized expiry sweep visits
}

// pendingMinSlots is the initial table size (a power of two).
const pendingMinSlots = 256

func newPendingTable() pendingTable {
	return pendingTable{
		keys:   make([]uint64, pendingMinSlots),
		readys: make([]arch.Cycle, pendingMinSlots),
		mask:   pendingMinSlots - 1,
	}
}

// home is the key's preferred slot (Fibonacci hashing, folded so sequential
// line numbers still scatter).
func (p *pendingTable) home(key uint64) uint64 {
	h := key * 0x9E3779B97F4A7C15
	return (h ^ h>>32) & p.mask
}

// take looks up line and, when present, removes its entry and returns the
// recorded ready cycle — the combined lookup-plus-delete the demand-fetch
// path performs.
func (p *pendingTable) take(line uint64) (arch.Cycle, bool) {
	k := line + 1
	i := p.home(k)
	for p.keys[i] != 0 {
		if p.keys[i] == k {
			r := p.readys[i]
			p.remove(i)
			return r, true
		}
		i = (i + 1) & p.mask
	}
	return 0, false
}

// remove empties slot i and backward-shifts any displaced entries so every
// remaining key stays reachable from its home slot.
func (p *pendingTable) remove(i uint64) {
	p.n--
	j := i
	for {
		p.keys[i] = 0
		for {
			j = (j + 1) & p.mask
			if p.keys[j] == 0 {
				return
			}
			// The entry at j can fill the hole at i only if i lies on its
			// probe path, i.e. cyclically between its home slot and j.
			h := p.home(p.keys[j])
			if (i-h)&p.mask <= (j-h)&p.mask {
				break
			}
		}
		p.keys[i], p.readys[i] = p.keys[j], p.readys[j]
		i = j
	}
}

// insert records (or refreshes) line's fill-completion cycle, first sweeping
// a couple of slots for entries that completed before now.
func (p *pendingTable) insert(line uint64, ready, now arch.Cycle) {
	p.expire(now, 2)
	if uint64(p.n+1)*4 > uint64(len(p.keys))*3 {
		p.grow()
	}
	k := line + 1
	i := p.home(k)
	for p.keys[i] != 0 {
		if p.keys[i] == k {
			p.readys[i] = ready
			return
		}
		i = (i + 1) & p.mask
	}
	p.keys[i] = k
	p.readys[i] = ready
	p.n++
}

// expire retires up to slots entries whose fills completed at or before now.
// Backward-shift removal may pull a live entry into the just-visited slot;
// it is simply picked up on a later pass.
func (p *pendingTable) expire(now arch.Cycle, slots int) {
	for s := 0; s < slots && p.n > 0; s++ {
		i := p.sweep & p.mask
		p.sweep++
		if p.keys[i] != 0 && p.readys[i] <= now {
			p.remove(i)
		}
	}
}

// grow doubles the table and rehashes the live entries.
func (p *pendingTable) grow() {
	oldKeys, oldReadys := p.keys, p.readys
	p.keys = make([]uint64, len(oldKeys)*2)
	p.readys = make([]arch.Cycle, len(oldReadys)*2)
	p.mask = uint64(len(p.keys) - 1)
	p.n = 0
	for idx, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := p.home(k)
		for p.keys[i] != 0 {
			i = (i + 1) & p.mask
		}
		p.keys[i], p.readys[i] = k, oldReadys[idx]
		p.n++
	}
}

// reset drops every entry, keeping the allocation.
func (p *pendingTable) reset() {
	clear(p.keys)
	p.n = 0
}
