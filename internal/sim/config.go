// Package sim wires the simulated machine together — core timing model,
// TLB hierarchy, prefetch buffer, STLB prefetcher, page table walker, page
// table, cache hierarchy and I-cache prefetcher — and drives instruction
// traces through it, collecting the statistics every experiment in the paper
// is built from.
package sim

import (
	"fmt"
	"strings"

	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/cpu"
	"morrigan/internal/icache"
	"morrigan/internal/ptw"
	"morrigan/internal/telemetry"
	"morrigan/internal/tlb"
	"morrigan/internal/tlbprefetch"
	"morrigan/internal/trace"
)

// PageTableKind selects the page-table organisation (Section 4.3).
type PageTableKind int

// Page table organisations.
const (
	// PageTableRadix4 is the default x86-64 4-level radix tree.
	PageTableRadix4 PageTableKind = iota
	// PageTableRadix5 adds the PML5 level (5-level paging).
	PageTableRadix5
	// PageTableHashed is a clustered hashed page table; walks hash
	// directly to the bucket holding the translation and its 7 line
	// neighbours, so there are no interior levels and the PSCs are idle.
	PageTableHashed
)

// ParsePageTableKind maps a page-table name (as produced by
// PageTableKind.String, case-insensitive) back to the constant. The empty
// string means the default radix-4 organisation, so a zero-valued
// machine-spec field round-trips to the zero PageTableKind.
func ParsePageTableKind(s string) (PageTableKind, error) {
	switch strings.ToLower(s) {
	case "", "radix-4":
		return PageTableRadix4, nil
	case "radix-5":
		return PageTableRadix5, nil
	case "hashed":
		return PageTableHashed, nil
	}
	return 0, fmt.Errorf("sim: unknown page table kind %q", s)
}

// String names the page table kind.
func (k PageTableKind) String() string {
	switch k {
	case PageTableRadix4:
		return "radix-4"
	case PageTableRadix5:
		return "radix-5"
	case PageTableHashed:
		return "hashed"
	}
	return "invalid"
}

// ThreadSpec binds one hardware thread to an instruction stream. VAOffset
// shifts the stream's entire virtual address space, giving colocated SMT
// workloads distinct address spaces as separate processes would have.
type ThreadSpec struct {
	Reader   trace.Reader
	VAOffset arch.VAddr
}

// Config describes one simulated machine (Table 1 defaults).
type Config struct {
	// Seed drives the OS frame allocator.
	Seed int64

	// Cache is the cache hierarchy configuration.
	Cache cache.Config
	// Walker is the page table walker and PSC configuration.
	Walker ptw.Config
	// Core is the timing model configuration.
	Core cpu.Config

	// TLB geometry (entries, ways, latency), per Table 1.
	ITLBEntries, ITLBWays int
	ITLBLatency           arch.Cycle
	DTLBEntries, DTLBWays int
	DTLBLatency           arch.Cycle
	STLBEntries, STLBWays int
	STLBLatency           arch.Cycle

	// PBEntries and PBLatency size the prefetch buffer.
	PBEntries int
	PBLatency arch.Cycle

	// Prefetcher is the iSTLB prefetcher under test; nil means no STLB
	// prefetching (the paper's baseline).
	Prefetcher tlbprefetch.Prefetcher
	// PrefetchIntoSTLB routes prefetches directly into the STLB instead of
	// the PB (the P2TLB configuration of Figure 18).
	PrefetchIntoSTLB bool
	// PerfectISTLB makes every iSTLB lookup hit (the Perfect iSTLB upper
	// bound of Figures 9 and 18).
	PerfectISTLB bool

	// ICachePrefetcher is the instruction cache prefetcher; nil means the
	// baseline next-line prefetcher that does not cross page boundaries.
	ICachePrefetcher icache.Prefetcher
	// ICacheTLBCost charges address translation for page-crossing I-cache
	// prefetches (the FNL+MMA+TLB configuration of Figure 10). When false,
	// page-crossing prefetches are translated for free as in the IPC-1
	// infrastructure.
	ICacheTLBCost bool

	// SMTBlock is the number of instructions fetched from one thread
	// before switching under SMT (the paper's "one basic block per
	// cycle per thread" interleave).
	SMTBlock int

	// PageTable selects the page-table organisation.
	PageTable PageTableKind

	// HugeDataPages maps each thread's data region with 2 MB pages (the
	// paper's Section 5 methodology: transparent huge pages for data while
	// code pages stay at 4 KB — there is no transparent huge page support
	// for code). Requires a radix page table and the built-in synthetic
	// workload address layout.
	HugeDataPages bool

	// CorrectingWalks enables the Section 4.3 refinement: when a
	// prefetched translation is evicted from the PB without having served
	// a miss, a background correcting walk resets its accessed bit so the
	// OS page replacement policy is not misled. Corrections are issued
	// only when a walker MSHR is free.
	CorrectingWalks bool

	// ContextSwitchInterval, when non-zero, models periodic context
	// switches: every N instructions the TLBs, PSCs, prefetch buffer and
	// prefetcher state are flushed (Section 4.3 — Morrigan's small tables
	// refill quickly; SDP is stateless and unaffected).
	ContextSwitchInterval uint64

	// OnISTLBMiss, when set, observes the instruction STLB miss stream
	// (used by the Section 3.3 characterisation figures).
	OnISTLBMiss func(tid arch.ThreadID, vpn arch.VPN)

	// ReferenceLoop selects the per-record reference run loop instead of the
	// default batched loop that steps whole record-buffer slices. The two
	// consume identical record sequences and produce bit-identical Stats
	// (asserted by the equivalence suite); the reference loop exists as the
	// simple implementation the batched one is checked against.
	ReferenceLoop bool

	// Probe, when non-nil, attaches the telemetry observability layer:
	// interval time-series samples, a prefetch-lifecycle/page-walk event
	// trace and latency histograms (see internal/telemetry). Probes observe
	// only — a run with a probe produces bit-identical Stats to one without.
	// A probe belongs to exactly one simulator.
	Probe *telemetry.Probe
}

// DefaultConfig mirrors Table 1: 128-entry 8-way I-TLB, 64-entry 4-way
// D-TLB, 1536-entry 6-way 8-cycle STLB, 64-entry 2-cycle PB, the paper's
// cache hierarchy and walker, and a next-line I-cache prefetcher.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Cache:       cache.DefaultConfig(),
		Walker:      ptw.DefaultConfig(),
		Core:        cpu.DefaultConfig(),
		ITLBEntries: 128, ITLBWays: 8, ITLBLatency: 1,
		DTLBEntries: 64, DTLBWays: 4, DTLBLatency: 1,
		STLBEntries: 1536, STLBWays: 6, STLBLatency: 8,
		PBEntries: 64, PBLatency: 2,
		SMTBlock: 8,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	check := func(name string, entries, ways int) error {
		if entries <= 0 || ways <= 0 || entries%ways != 0 {
			return fmt.Errorf("sim: %s geometry invalid: %d entries, %d ways", name, entries, ways)
		}
		return nil
	}
	if err := check("ITLB", c.ITLBEntries, c.ITLBWays); err != nil {
		return err
	}
	if err := check("DTLB", c.DTLBEntries, c.DTLBWays); err != nil {
		return err
	}
	if err := check("STLB", c.STLBEntries, c.STLBWays); err != nil {
		return err
	}
	if c.PBEntries <= 0 {
		return fmt.Errorf("sim: PBEntries = %d", c.PBEntries)
	}
	if c.SMTBlock <= 0 {
		return fmt.Errorf("sim: SMTBlock = %d", c.SMTBlock)
	}
	if c.PerfectISTLB && c.Prefetcher != nil {
		return fmt.Errorf("sim: PerfectISTLB excludes an iSTLB prefetcher")
	}
	if c.PageTable < PageTableRadix4 || c.PageTable > PageTableHashed {
		return fmt.Errorf("sim: unknown page table kind %d", c.PageTable)
	}
	if c.HugeDataPages && c.PageTable == PageTableHashed {
		return fmt.Errorf("sim: HugeDataPages requires a radix page table")
	}
	return nil
}

// tlbs builds the three TLBs from the configuration.
func (c *Config) tlbs() (itlb, dtlb, stlb *tlb.TLB) {
	itlb = tlb.New("ITLB", c.ITLBEntries, c.ITLBWays, c.ITLBLatency)
	dtlb = tlb.New("DTLB", c.DTLBEntries, c.DTLBWays, c.DTLBLatency)
	stlb = tlb.New("STLB", c.STLBEntries, c.STLBWays, c.STLBLatency)
	return itlb, dtlb, stlb
}
