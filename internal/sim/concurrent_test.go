package sim

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"morrigan/internal/core"
	"morrigan/internal/workloads"
)

// TestConcurrentSimulationsIndependent proves the concurrency-safety
// contract the campaign runner relies on: two simulations whose state was
// constructed independently (each with its own deterministically seeded
// RNGs) can run on concurrent goroutines — exercised under -race — and
// still produce exactly the stats of a serial run.
func TestConcurrentSimulationsIndependent(t *testing.T) {
	qmm := workloads.QMM()
	specs := []workloads.Spec{qmm[0], qmm[1]}
	const warmup, measure = 5_000, 20_000

	run := func(w workloads.Spec) Stats {
		cfg := DefaultConfig()
		cfg.Prefetcher = core.New(core.DefaultConfig())
		s, err := New(cfg, []ThreadSpec{{Reader: w.NewReader()}})
		if err != nil {
			t.Error(err)
			return Stats{}
		}
		st, err := s.RunContext(context.Background(), warmup, measure)
		if err != nil {
			t.Error(err)
		}
		return st
	}

	var serial [2]Stats
	for i, w := range specs {
		serial[i] = run(w)
	}

	var concurrent [2]Stats
	var wg sync.WaitGroup
	for i, w := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			concurrent[i] = run(w)
		}()
	}
	wg.Wait()

	for i := range specs {
		if !reflect.DeepEqual(serial[i], concurrent[i]) {
			t.Errorf("workload %s: concurrent run diverged from serial run", specs[i].Name)
		}
	}
}
