package sim

import (
	"context"
	"fmt"
	"io"

	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/cpu"
	"morrigan/internal/pagetable"
	"morrigan/internal/ptw"
	"morrigan/internal/telemetry"
	"morrigan/internal/tlb"
	"morrigan/internal/tlbprefetch"
	"morrigan/internal/trace"
)

// batchSize is the per-thread record buffer refilled from the trace reader:
// one refill supplies this many instructions to the hot loop, which the
// batched run path consumes as contiguous slices.
const batchSize = 512

// thread is the per-hardware-thread front-end state.
type thread struct {
	reader trace.Reader
	off    arch.VAddr

	// buf[bpos:blen] holds fetched-ahead records; every reader is consumed
	// through it (trace.Fill uses the reader's bulk interface when it has
	// one). The consumed record sequence is identical to calling reader.Next
	// per instruction, so batched and reference runs produce bit-identical
	// stats. pendingErr defers a mid-fill error from a plain reader until
	// its preceding records have been consumed.
	buf        []trace.Record
	bpos       int
	blen       int
	pendingErr error

	curLine uint64 // virtual line last fetched
	curVPN  arch.VPN
	curPFN  arch.PFN
	haveVPN bool
	done    bool
}

// refill replenishes the thread's record buffer. It returns a non-nil error
// (io.EOF at end of stream) only when no records are available.
func (th *thread) refill() error {
	if th.pendingErr != nil {
		err := th.pendingErr
		th.pendingErr = nil
		return err
	}
	n, err := trace.Fill(th.reader, th.buf)
	if n == 0 {
		if err == nil {
			err = io.EOF // a conforming BatchReader never does this
		}
		return err
	}
	th.blen, th.bpos = n, 0
	th.pendingErr = err
	return nil
}

// next fetches the thread's next record through the batch buffer.
func (th *thread) next(rec *trace.Record) error {
	if th.bpos >= th.blen {
		if err := th.refill(); err != nil {
			return err
		}
	}
	*rec = th.buf[th.bpos]
	th.bpos++
	return nil
}

// MaxThreads is the most hardware threads one simulated machine can run.
// The bound keeps per-thread statistics in fixed-size (comparable) arrays;
// colocation experiments use up to 16-way shared-STLB mixes.
const MaxThreads = 16

// Simulator is one simulated machine executing 1..MaxThreads threads.
type Simulator struct {
	cfg Config

	pt     pagetable.Translator
	ptHuge *pagetable.Table // non-nil when HugeDataPages is enabled
	mem    *cache.Hierarchy
	walker *ptw.Walker
	itlb   *tlb.TLB
	dtlb   *tlb.TLB
	stlb   *tlb.TLB
	pb     *tlbprefetch.PrefetchBuffer
	pf     pfDispatch
	icpf   icDispatch
	core   *cpu.Core

	threads []*thread

	// pending records in-flight instruction line prefetches: physical
	// line -> completion cycle. A demand fetch arriving earlier pays the
	// remainder (late-prefetch timeliness).
	pending pendingTable

	// nextSwitch is the instruction count of the next context switch.
	nextSwitch uint64

	// executed counts every instruction stepped since construction, warmup
	// included and never reset — the denominator-free numerator for
	// simulation-throughput (simulated instructions per wall second)
	// accounting in the campaign runner.
	executed uint64

	// fastForwarded counts instructions consumed functionally by FastForward
	// (sampled-execution mode). Kept apart from executed so a sampled job's
	// simulated-instruction figure reflects only timing-simulated work.
	fastForwarded uint64

	// probe is the optional telemetry collector; nil (the default) keeps
	// every hook on the hot path a single predictable branch. probeNext is
	// the retired-instruction count of the next time-series sample.
	probe     *telemetry.Probe
	probeNext uint64

	c counters
}

// counters are the raw event tallies the Stats snapshot is derived from.
type counters struct {
	istlbAccesses   uint64
	istlbMisses     uint64
	contextSwitches uint64
	dstlbAccesses   uint64
	dstlbMisses     uint64
	pbHits          uint64
	pbLateCycles    arch.Cycle

	demandIWalks    uint64
	demandIWalkRefs uint64
	iWalkLatSum     arch.Cycle
	demandDWalks    uint64
	demandDWalkRefs uint64
	dWalkLatSum     arch.Cycle

	prefIssued    uint64
	prefDiscarded uint64
	prefWalks     uint64
	prefFreePTEs  uint64

	icachePBHits    uint64
	icacheXWalks    uint64
	icachePBServed  uint64
	icacheXPrefetch uint64

	correctingWalks uint64

	// Per-thread tallies for colocation fairness analysis: retired
	// instructions, iSTLB misses, and PB hits by hardware thread. Fixed-size
	// arrays so Stats (and everything embedding it) stays comparable.
	threadInstr       [MaxThreads]uint64
	threadISTLBMisses [MaxThreads]uint64
	threadPBHits      [MaxThreads]uint64
}

// New builds a simulator over the given threads (1 for single-threaded runs,
// more for the SMT/colocation experiments, up to MaxThreads).
func New(cfg Config, threads []ThreadSpec) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(threads) < 1 || len(threads) > MaxThreads {
		return nil, fmt.Errorf("sim: %d threads; supported: 1..%d", len(threads), MaxThreads)
	}
	var pt pagetable.Translator
	switch cfg.PageTable {
	case PageTableRadix5:
		pt = pagetable.NewWithLevels(cfg.Seed, 5)
	case PageTableHashed:
		pt = pagetable.NewHashed(cfg.Seed, pagetable.DefaultHashedBuckets)
	default:
		pt = pagetable.New(cfg.Seed)
	}
	s := &Simulator{
		cfg:     cfg,
		pt:      pt,
		mem:     cache.NewHierarchy(cfg.Cache),
		core:    cpu.New(cfg.Core),
		pb:      tlbprefetch.NewPrefetchBuffer(cfg.PBEntries, cfg.PBLatency),
		pending: newPendingTable(),
	}
	s.itlb, s.dtlb, s.stlb = cfg.tlbs()
	s.walker = ptw.New(s.pt, s.mem, cfg.Walker)
	s.pf = newPFDispatch(cfg.Prefetcher)
	s.icpf = newICDispatch(cfg.ICachePrefetcher)
	for _, ts := range threads {
		if ts.Reader == nil {
			return nil, fmt.Errorf("sim: thread with nil reader")
		}
		s.threads = append(s.threads, &thread{
			reader: ts.Reader,
			off:    ts.VAOffset,
			buf:    make([]trace.Record, batchSize),
		})
	}
	if cfg.HugeDataPages {
		// Map each thread's synthetic data region with 2 MB pages. Code
		// regions stay at 4 KB, as on real systems (Section 5).
		rt, err := hugeRegionTable(pt)
		if err != nil {
			return nil, err
		}
		s.ptHuge = rt
		for _, th := range s.threads {
			off := arch.VPN(th.off >> arch.PageShift)
			rt.AddHugeRegion(trace.DataBaseVPN+off, trace.DataBaseVPN+off+1<<15)
		}
	}
	s.nextSwitch = cfg.ContextSwitchInterval
	if cfg.Probe != nil {
		s.probe = cfg.Probe
		s.probeNext = s.probe.Interval()
		s.walker.SetProbe(s.probe)
		s.pb.SetProbe(s.probe)
	}
	if cfg.CorrectingWalks {
		s.pb.SetEvictionHandler(func(tid arch.ThreadID, vpn arch.VPN) {
			if s.walker.CorrectAccessed(tid, vpn, s.now()) {
				s.c.correctingWalks++
			}
		})
	}
	return s, nil
}

// hugeRegionTable resolves the page-table implementation that can host 2 MB
// regions. Validate already rejects HugeDataPages on hashed tables, but a
// future radix translator that is not backed by *pagetable.Table must fail
// cleanly here rather than panicking on the assertion.
func hugeRegionTable(pt pagetable.Translator) (*pagetable.Table, error) {
	rt, ok := pt.(*pagetable.Table)
	if !ok {
		return nil, fmt.Errorf("sim: HugeDataPages requires the radix page-table implementation, got %T", pt)
	}
	return rt, nil
}

// now returns the current simulation time. The interval core model advances
// time by instruction dispatch plus charged stalls; the walker and PB use
// this clock for occupancy and timeliness.
func (s *Simulator) now() arch.Cycle { return s.core.Cycles() }

// Run executes warmup instructions, resets all statistics, then executes
// measure instructions and returns the snapshot, mirroring the paper's
// 50M-warmup/100M-measure methodology at whatever scale the caller picks.
func (s *Simulator) Run(warmup, measure uint64) (Stats, error) {
	return s.RunContext(context.Background(), warmup, measure)
}

// cancelCheckInterval is how many instructions execute between context
// checks in RunContext — frequent enough that cancellation and per-job
// timeouts bite within milliseconds, rare enough to cost nothing.
const cancelCheckInterval = 1 << 16

// RunContext is Run with cancellation: ctx is polled every
// cancelCheckInterval instructions, so campaign-level cancellation and
// per-job timeouts take effect mid-simulation instead of only between runs.
func (s *Simulator) RunContext(ctx context.Context, warmup, measure uint64) (Stats, error) {
	if warmup > 0 {
		if err := s.run(ctx, warmup); err != nil {
			return Stats{}, err
		}
	}
	s.resetStats()
	if err := s.run(ctx, measure); err != nil {
		return Stats{}, err
	}
	if s.probe != nil {
		// Close the trailing partial interval so the emitted time series
		// sums exactly to the aggregate snapshot.
		s.probe.Finish(s.telemetrySample())
	}
	return s.Snapshot(), nil
}

// run executes n instructions, interleaving threads in SMTBlock-sized
// groups. It stops early (without error) when every thread's trace ends.
// The batched path is the default; Config.ReferenceLoop selects the
// per-record reference loop the equivalence suite compares it against.
func (s *Simulator) run(ctx context.Context, n uint64) error {
	if s.cfg.ReferenceLoop {
		return s.runReference(ctx, n)
	}
	return s.runBatched(ctx, n)
}

// runReference is the per-record reference implementation of the run loop:
// one th.next call and one step per instruction.
func (s *Simulator) runReference(ctx context.Context, n uint64) error {
	var rec trace.Record
	executed := uint64(0)
	nextCheck := uint64(cancelCheckInterval)
	ti := 0
	for executed < n {
		if executed >= nextCheck {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: run interrupted: %w", err)
			}
			nextCheck += cancelCheckInterval
		}
		th := s.threads[ti]
		if th.done {
			ti = (ti + 1) % len(s.threads)
			if s.allDone() {
				return nil
			}
			continue
		}
		for b := 0; b < s.cfg.SMTBlock && executed < n; b++ {
			err := th.next(&rec)
			if err == io.EOF {
				th.done = true
				break
			}
			if err != nil {
				return fmt.Errorf("sim: reading trace: %w", err)
			}
			s.step(arch.ThreadID(ti), th, &rec)
			executed++
			s.executed++
		}
		ti = (ti + 1) % len(s.threads)
	}
	return nil
}

// runBatched is the production run loop: it consumes each thread's record
// buffer as contiguous slices, stepping whole sub-blocks without the
// per-instruction record copy and buffer bookkeeping of the reference loop.
// Records are consumed in exactly the order runReference consumes them — the
// same buffer, the same SMT rotation, the same end-of-trace handling — so
// both paths produce bit-identical Stats (asserted by the equivalence
// suite).
func (s *Simulator) runBatched(ctx context.Context, n uint64) error {
	executed := uint64(0)
	nextCheck := uint64(cancelCheckInterval)
	ti := 0
	for executed < n {
		if executed >= nextCheck {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: run interrupted: %w", err)
			}
			nextCheck += cancelCheckInterval
		}
		th := s.threads[ti]
		if th.done {
			ti = (ti + 1) % len(s.threads)
			if s.allDone() {
				return nil
			}
			continue
		}
		block := uint64(s.cfg.SMTBlock)
		if left := n - executed; left < block {
			block = left
		}
		for block > 0 {
			if th.bpos >= th.blen {
				err := th.refill()
				if err == io.EOF {
					th.done = true
					break
				}
				if err != nil {
					return fmt.Errorf("sim: reading trace: %w", err)
				}
			}
			take := uint64(th.blen - th.bpos)
			if take > block {
				take = block
			}
			recs := th.buf[th.bpos : th.bpos+int(take)]
			th.bpos += int(take)
			s.stepBlock(arch.ThreadID(ti), th, recs)
			executed += take
			s.executed += take
			block -= take
		}
		ti = (ti + 1) % len(s.threads)
	}
	return nil
}

// stepBlock executes a contiguous slice of one thread's records.
func (s *Simulator) stepBlock(tid arch.ThreadID, th *thread, recs []trace.Record) {
	for i := range recs {
		s.step(tid, th, &recs[i])
	}
}

func (s *Simulator) allDone() bool {
	for _, th := range s.threads {
		if !th.done {
			return false
		}
	}
	return true
}

// step executes one instruction.
func (s *Simulator) step(tid arch.ThreadID, th *thread, rec *trace.Record) {
	if s.cfg.ContextSwitchInterval > 0 && s.core.Retired() >= s.nextSwitch {
		s.contextSwitch()
		s.nextSwitch = s.core.Retired() + s.cfg.ContextSwitchInterval
	}
	pc := rec.PC + th.off
	if line := pc.Line(); line != th.curLine || !th.haveVPN {
		s.fetch(tid, th, pc)
		th.curLine = line
	}
	s.core.Retire(1)
	s.c.threadInstr[tid]++
	if rec.Load != 0 {
		s.data(tid, rec.Load+th.off, false)
	}
	if rec.Store != 0 {
		s.data(tid, rec.Store+th.off, true)
	}
	if s.probe != nil && s.core.Retired() >= s.probeNext {
		s.probe.RecordSample(s.telemetrySample())
		s.probeNext += s.probe.Interval()
	}
}

// fetch performs the front-end work for a new instruction line: address
// translation through the TLB hierarchy (with PB and demand walks on iSTLB
// misses, engaging the prefetcher), the L1I access, and I-cache prefetching.
func (s *Simulator) fetch(tid arch.ThreadID, th *thread, pc arch.VAddr) {
	vpn := pc.Page()
	if !th.haveVPN || vpn != th.curVPN {
		th.curPFN = s.translateInstr(tid, pc, vpn)
		th.curVPN = vpn
		th.haveVPN = true
	}
	paddr := arch.Translate(th.curPFN, pc)
	res := s.mem.Access(cache.KindFetch, paddr)
	miss := res.Level != arch.LevelL1
	if miss {
		s.core.FetchMiss(res.Latency - s.mem.FillLatency(arch.LevelL1))
	} else if ready, ok := s.pending.take(paddr.Line()); ok {
		// The line was prefetched but the fill has not completed yet; the
		// fetch waits out the remainder (late prefetch).
		if now := s.now(); ready > now {
			s.core.FetchMiss(ready - now)
		}
	}
	for _, vline := range s.icpf.OnFetch(pc.Line(), miss) {
		s.prefetchInstrLine(tid, th, vline)
	}
}

// translateInstr resolves the instruction-side translation of vpn, charging
// front-end stalls per the paper's translation flow (Figure 1).
func (s *Simulator) translateInstr(tid arch.ThreadID, pc arch.VAddr, vpn arch.VPN) arch.PFN {
	if pfn, ok := s.itlb.Lookup(tid, vpn); ok {
		return pfn
	}
	// I-TLB miss: the STLB is probed (an iSTLB access).
	s.c.istlbAccesses++
	s.core.FrontEndStall(cpu.StallITLB, s.stlb.Latency())
	if s.cfg.PerfectISTLB {
		pfn := s.pt.EnsureMapped(vpn)
		s.stlb.Insert(tid, vpn, pfn)
		s.itlb.Insert(tid, vpn, pfn)
		return pfn
	}
	if pfn, ok := s.stlb.Lookup(tid, vpn); ok {
		s.itlb.Insert(tid, vpn, pfn)
		return pfn
	}

	// iSTLB miss.
	s.c.istlbMisses++
	s.c.threadISTLBMisses[tid]++
	if s.cfg.OnISTLBMiss != nil {
		s.cfg.OnISTLBMiss(tid, vpn)
	}
	missTime := s.now()

	var pfn arch.PFN
	pbHit := false
	if !s.cfg.PrefetchIntoSTLB {
		s.core.FrontEndStall(cpu.StallITLB, s.pb.Latency())
		if hit, token, ready, ok := s.pb.Lookup(tid, vpn); ok {
			pbHit = true
			pfn = hit
			s.c.pbHits++
			s.c.threadPBHits[tid]++
			if s.probe != nil {
				now := s.now()
				s.probe.PrefetchUsed(tid, vpn, now, ready > now)
			}
			if now := s.now(); ready > now {
				// Late prefetch: wait for the in-flight walk's remainder.
				s.c.pbLateCycles += ready - now
				s.core.FrontEndStall(cpu.StallIWalk, ready-now)
			}
			if token.Kind() == tlbprefetch.TokenICache {
				s.c.icachePBServed++
			}
			s.pf.OnPrefetchHit(token)
		}
	}
	if !pbHit {
		walk := s.walker.Walk(tid, vpn, s.now(), true)
		s.core.FrontEndStall(cpu.StallIWalk, walk.Latency+walk.Queued)
		s.c.demandIWalks++
		s.c.demandIWalkRefs += uint64(walk.MemRefs)
		s.c.iWalkLatSum += walk.Latency
		pfn = walk.PFN
	}
	s.stlb.Insert(tid, vpn, pfn)
	s.itlb.Insert(tid, vpn, pfn)

	// Engage the prefetcher on every iSTLB miss, PB hit or not (Figure 12
	// step 7). Prefetch walks start at miss time, concurrently with the
	// demand walk (they use separate walker ports; Section 2.1 notes
	// prefetch walks are triggered in the background).
	s.issuePrefetches(tid, missTime, s.pf.OnMiss(tid, pc, vpn))
	return pfn
}

// issuePrefetches processes the prefetcher's requests: dedup against the PB,
// run prefetch page walks in the background, install results into the PB (or
// the STLB under P2TLB), and exploit page table locality for spatial
// requests.
func (s *Simulator) issuePrefetches(tid arch.ThreadID, at arch.Cycle, reqs []tlbprefetch.Request) {
	for _, r := range reqs {
		s.c.prefIssued++
		if s.probe != nil {
			s.probe.PrefetchIssued(tid, r.VPN, at)
		}
		if s.cfg.PrefetchIntoSTLB {
			if s.stlb.Contains(tid, r.VPN) {
				s.c.prefDiscarded++
				if s.probe != nil {
					s.probe.PrefetchDiscarded(tid, r.VPN, at)
				}
				continue
			}
		} else if s.pb.Contains(tid, r.VPN) {
			s.c.prefDiscarded++
			if s.probe != nil {
				s.probe.PrefetchDiscarded(tid, r.VPN, at)
			}
			continue
		}
		walk := s.walker.Walk(tid, r.VPN, at, false)
		if walk.MemRefs == 0 && !walk.Present {
			continue // dropped for lack of walker MSHRs
		}
		s.c.prefWalks++
		if !walk.Present {
			continue // non-faulting prefetch to an unmapped page
		}
		ready := at + walk.Latency
		s.installPrefetch(tid, r.VPN, walk.PFN, r.Token, at, ready)
		if r.Spatial {
			// The leaf line just fetched carries up to 7 neighbouring
			// PTEs; install them for free (steps 14/17 of Figure 12).
			for _, v := range walk.FreeVPNs {
				if pte, ok := s.pt.Lookup(v); ok {
					s.installPrefetch(tid, v, pte.PFN, r.Token, at, ready)
					s.c.prefFreePTEs++
				}
			}
		}
	}
}

// installPrefetch places a prefetched translation in the PB, or directly in
// the STLB under the P2TLB configuration. at is the cycle the producing
// request was issued; ready is when its page walk completes.
func (s *Simulator) installPrefetch(tid arch.ThreadID, vpn arch.VPN, pfn arch.PFN, token tlbprefetch.Token, at, ready arch.Cycle) {
	if s.cfg.PrefetchIntoSTLB {
		s.stlb.Insert(tid, vpn, pfn)
		if s.probe != nil {
			s.probe.PrefetchInstalled(tid, vpn, at, ready)
		}
		return
	}
	if !s.pb.Contains(tid, vpn) {
		s.pb.Insert(tid, vpn, pfn, token, ready)
		if s.probe != nil {
			s.probe.PrefetchInstalled(tid, vpn, at, ready)
		}
	}
}

// prefetchInstrLine services one I-cache prefetch candidate (a virtual line
// number). Lines whose page translation is not at hand either get it for
// free (IPC-1 style) or pay for a prefetch page walk, depending on
// Config.ICacheTLBCost.
func (s *Simulator) prefetchInstrLine(tid arch.ThreadID, th *thread, vline uint64) {
	vpn := arch.VPN(vline / linesPerPage)
	var pfn arch.PFN
	var extra arch.Cycle

	switch {
	case th.haveVPN && vpn == th.curVPN:
		pfn = th.curPFN
	default:
		if p, ok := s.itlb.Peek(tid, vpn); ok {
			pfn = p
			break
		}
		if p, ok := s.stlb.Peek(tid, vpn); ok {
			pfn = p
			break
		}
		if !s.cfg.ICacheTLBCost {
			// IPC-1 infrastructure: page-crossing prefetches are
			// translated at zero cost; unmapped pages are skipped.
			pte, ok := s.pt.Lookup(vpn)
			if !ok {
				return
			}
			pfn = pte.PFN
			break
		}
		s.c.icacheXPrefetch++
		if p, ok := s.pb.Peek(tid, vpn); ok {
			// An iSTLB prefetcher already fetched this translation —
			// the synergy of Section 6.5.
			s.c.icachePBHits++
			pfn = p
			break
		}
		// The prefetch needs its own page walk, occupying walker MSHRs
		// (the mechanism behind FNL+MMA+TLB's degradation, Section 3.5).
		s.c.icacheXWalks++
		walk := s.walker.Walk(tid, vpn, s.now(), false)
		if !walk.Present {
			return
		}
		s.installPrefetch(tid, vpn, walk.PFN, tlbprefetch.TokenICache, s.now(), s.now()+walk.Latency)
		pfn = walk.PFN
		extra = walk.Latency
	}

	paddr := arch.Translate(pfn, arch.VAddr(vline*arch.LineSize))
	level := s.mem.PrefetchInto(arch.LevelL1, paddr)
	now := s.now()
	ready := now + extra + s.mem.FillLatency(level)
	if ready > now+s.mem.FillLatency(arch.LevelL1) {
		s.pending.insert(paddr.Line(), ready, now)
	}
}

// contextSwitch flushes the architecturally-tagged translation state, as an
// OS context switch would: TLBs, PSCs, the prefetch buffer and the
// prefetcher's prediction tables (Section 4.3). Cache contents survive (they
// are physically tagged), as does the page table itself.
func (s *Simulator) contextSwitch() {
	s.c.contextSwitches++
	s.itlb.Flush()
	s.dtlb.Flush()
	s.stlb.Flush()
	s.pb.Flush()
	s.walker.PSC().Flush()
	s.pf.Flush()
	s.icpf.Flush()
	for _, th := range s.threads {
		th.haveVPN = false
	}
}

// hugeKey maps a 2 MB-mapped page to the synthetic TLB key of its block, so
// one TLB entry covers all 512 pages of the mapping (huge-page TLB reach).
func hugeKey(vpn arch.VPN) arch.VPN {
	return arch.VPN(1)<<40 | vpn>>9
}

// data performs a load or store: translation through the data TLB path
// (with demand walks on dSTLB misses) and the cache access. Load latency is
// charged through the core's overlap-aware back-end model; stores are
// functional only (drained from the store buffer off the critical path).
func (s *Simulator) data(tid arch.ThreadID, va arch.VAddr, store bool) {
	vpn := va.Page()
	key := vpn
	var blockOff arch.PFN
	if s.ptHuge != nil && s.ptHuge.IsHuge(vpn) {
		// One TLB entry per 2 MB mapping: translate through the block.
		key = hugeKey(vpn)
		blockOff = arch.PFN(vpn & (pagetable.HugePages - 1))
	}
	var extra arch.Cycle
	pfn, ok := s.dtlb.Lookup(tid, key)
	if ok {
		pfn += blockOff
	}
	if !ok {
		s.c.dstlbAccesses++
		extra += s.stlb.Latency()
		pfn, ok = s.stlb.Lookup(tid, key)
		if ok {
			pfn += blockOff
		} else {
			s.c.dstlbMisses++
			walk := s.walker.Walk(tid, vpn, s.now(), true)
			extra += walk.Latency + walk.Queued
			s.c.demandDWalks++
			s.c.demandDWalkRefs += uint64(walk.MemRefs)
			s.c.dWalkLatSum += walk.Latency
			pfn = walk.PFN
			// For a huge mapping, cache the block base under the block key.
			s.stlb.Insert(tid, key, pfn-blockOff)
		}
		s.dtlb.Insert(tid, key, pfn-blockOff)
	}
	paddr := arch.Translate(pfn, va)
	kind := cache.KindLoad
	if store {
		kind = cache.KindStore
	}
	res := s.mem.Access(kind, paddr)
	if !store {
		s.core.DataStall(extra + res.Latency)
	}
}

// resetStats clears every component's counters at the warmup/measure
// boundary, keeping all microarchitectural state warm.
func (s *Simulator) resetStats() {
	s.core.ResetStats()
	s.mem.ResetStats()
	s.itlb.ResetStats()
	s.dtlb.ResetStats()
	s.stlb.ResetStats()
	s.pb.ResetStats()
	s.walker.ResetStats()
	s.c = counters{}
	// The retired-instruction clock restarts with the measurement interval.
	s.nextSwitch = s.cfg.ContextSwitchInterval
	if s.probe != nil {
		s.probe.Reset()
		s.probeNext = s.probe.Interval()
	}
	s.pf.ResetStats()
}

// telemetrySample snapshots the cumulative counters the telemetry probe
// differences into interval samples. It reads the same sources as Snapshot,
// so the probe's per-interval deltas sum exactly to the aggregate Stats.
func (s *Simulator) telemetrySample() telemetry.Sample {
	return telemetry.Sample{
		Instructions:  s.core.Retired(),
		Cycles:        s.core.Cycles(),
		L1IMisses:     s.mem.L1I.Misses(),
		ITLBMisses:    s.itlb.Misses(),
		ISTLBAccesses: s.c.istlbAccesses,
		ISTLBMisses:   s.c.istlbMisses,
		DSTLBAccesses: s.c.dstlbAccesses,
		DSTLBMisses:   s.c.dstlbMisses,
		PBHits:        s.c.pbHits,
		PrefIssued:    s.c.prefIssued,
		PrefDiscarded: s.c.prefDiscarded,
		PrefWalks:     s.walker.PrefetchWalks(),
		DemandIWalks:  s.c.demandIWalks,
		DemandDWalks:  s.c.demandDWalks,
		DroppedWalks:  s.walker.DroppedWalks(),
	}
}

// Probe exposes the attached telemetry probe (nil when telemetry is off).
func (s *Simulator) Probe() *telemetry.Probe { return s.probe }

// Executed returns the total instructions stepped since construction, warmup
// included; unlike Stats.Instructions it is never reset, so it divides by
// wall-clock time into an honest simulation-throughput figure.
func (s *Simulator) Executed() uint64 { return s.executed }

// Walker exposes the page walker (tests and experiments read its PSC).
func (s *Simulator) Walker() *ptw.Walker { return s.walker }

// Core exposes the timing model.
func (s *Simulator) Core() *cpu.Core { return s.core }

// Hierarchy exposes the cache hierarchy.
func (s *Simulator) Hierarchy() *cache.Hierarchy { return s.mem }

// PageTable exposes the simulated page table.
func (s *Simulator) PageTable() pagetable.Translator { return s.pt }
