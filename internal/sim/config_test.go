package sim

import (
	"strings"
	"testing"

	"morrigan/internal/pagetable"
	"morrigan/internal/tlbprefetch"
)

// TestConfigValidateErrors covers every Validate rejection path; the valid
// default passing is pinned alongside so a new check cannot silently reject
// the Table 1 machine.
func TestConfigValidateErrors(t *testing.T) {
	if c := DefaultConfig(); c.Validate() != nil {
		t.Fatalf("DefaultConfig does not validate: %v", c.Validate())
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"itlb zero entries", func(c *Config) { c.ITLBEntries = 0 }, "ITLB geometry invalid"},
		{"itlb zero ways", func(c *Config) { c.ITLBWays = 0 }, "ITLB geometry invalid"},
		{"dtlb entries not multiple of ways", func(c *Config) { c.DTLBEntries = 63 }, "DTLB geometry invalid"},
		{"stlb negative ways", func(c *Config) { c.STLBWays = -6 }, "STLB geometry invalid"},
		{"stlb entries not multiple of ways", func(c *Config) { c.STLBEntries = 7 }, "STLB geometry invalid"},
		{"pb empty", func(c *Config) { c.PBEntries = 0 }, "PBEntries"},
		{"smt block zero", func(c *Config) { c.SMTBlock = 0 }, "SMTBlock"},
		{"perfect istlb with prefetcher", func(c *Config) {
			c.PerfectISTLB = true
			c.Prefetcher = &tlbprefetch.SP{}
		}, "PerfectISTLB excludes"},
		{"page table kind out of range", func(c *Config) { c.PageTable = PageTableHashed + 1 }, "unknown page table kind"},
		{"page table kind negative", func(c *Config) { c.PageTable = -1 }, "unknown page table kind"},
		{"huge pages on hashed table", func(c *Config) {
			c.HugeDataPages = true
			c.PageTable = PageTableHashed
		}, "HugeDataPages requires a radix page table"},
	}
	for _, tc := range cases {
		c := DefaultConfig()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate() = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestParsePageTableKind pins the name ↔ kind mapping both ways, including
// the empty string meaning the default radix-4 (so a zero-valued machine-spec
// field round-trips) and case insensitivity.
func TestParsePageTableKind(t *testing.T) {
	for name, want := range map[string]PageTableKind{
		"":        PageTableRadix4,
		"radix-4": PageTableRadix4,
		"Radix-4": PageTableRadix4,
		"radix-5": PageTableRadix5,
		"hashed":  PageTableHashed,
		"HASHED":  PageTableHashed,
	} {
		got, err := ParsePageTableKind(name)
		if err != nil || got != want {
			t.Errorf("ParsePageTableKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePageTableKind("radix-7"); err == nil || !strings.Contains(err.Error(), `"radix-7"`) {
		t.Errorf("ParsePageTableKind(radix-7) err = %v, want unknown-kind error", err)
	}
	for _, k := range []PageTableKind{PageTableRadix4, PageTableRadix5, PageTableHashed} {
		back, err := ParsePageTableKind(k.String())
		if err != nil || back != k {
			t.Errorf("round trip %v → %q → %v, %v", k, k.String(), back, err)
		}
	}
	if got := (PageTableHashed + 1).String(); got != "invalid" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// TestHugeRegionTable: the HugeDataPages path must reject a translator not
// backed by the radix *pagetable.Table with a clear error, not a type
// assertion panic.
func TestHugeRegionTable(t *testing.T) {
	if _, err := hugeRegionTable(pagetable.New(1)); err != nil {
		t.Errorf("radix table rejected: %v", err)
	}
	_, err := hugeRegionTable(pagetable.NewHashed(1, 64))
	if err == nil || !strings.Contains(err.Error(), "HugeDataPages requires the radix page-table implementation") {
		t.Errorf("hashed table err = %v, want the validated implementation error", err)
	}
}
