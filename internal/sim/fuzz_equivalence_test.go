package sim

import (
	"testing"

	"morrigan/internal/core"
	"morrigan/internal/icache"
	"morrigan/internal/tlbprefetch"
	"morrigan/internal/workloads"
)

// fuzzPrefetcher constructs a fresh iSTLB prefetcher for kind index k.
func fuzzPrefetcher(k uint8) tlbprefetch.Prefetcher {
	switch k % 7 {
	case 1:
		return &tlbprefetch.SP{}
	case 2:
		return tlbprefetch.NewASP(128)
	case 3:
		return tlbprefetch.NewDP(128)
	case 4:
		return tlbprefetch.NewMP(64, 4)
	case 5:
		return tlbprefetch.NewUnboundedMP(2)
	case 6:
		return core.New(core.DefaultConfig())
	}
	return nil
}

// fuzzICache constructs a fresh I-cache prefetcher for kind index k.
func fuzzICache(k uint8) icache.Prefetcher {
	switch k % 4 {
	case 1:
		return icache.DefaultFNLMMA()
	case 2:
		return icache.DefaultEPI()
	case 3:
		return icache.DefaultDJolt()
	}
	return nil
}

// FuzzBatchedLoopEquivalence drives randomly shaped workloads and machine
// configurations through the batched and per-record reference run loops and
// requires bit-identical Stats. The seed corpus covers every prefetcher,
// I-cache prefetcher and page-table kind, SMT, context switches and the
// page-crossing I-cache translation path, so a plain `go test` run already
// sweeps the batched pipeline's interesting shapes.
func FuzzBatchedLoopEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint16(8_000), false, uint32(0))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(2), uint16(12_000), true, uint32(0))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(4), uint16(10_000), false, uint32(5_000))
	f.Add(uint8(3), uint8(3), uint8(0), uint8(6), uint16(9_000), true, uint32(0))
	f.Add(uint8(4), uint8(1), uint8(2), uint8(8), uint16(11_000), true, uint32(3_000))
	f.Add(uint8(5), uint8(2), uint8(1), uint8(10), uint16(7_000), false, uint32(0))
	f.Add(uint8(6), uint8(3), uint8(0), uint8(1), uint16(15_000), true, uint32(7_000))
	f.Add(uint8(6), uint8(0), uint8(0), uint8(3), uint16(20_000), false, uint32(0))
	f.Fuzz(func(t *testing.T, pfK, icK, ptK, wlK uint8, measure uint16, smt bool, ctxSwitch uint32) {
		n := uint64(measure)
		if n < 1_000 {
			n = 1_000
		}
		qmm := workloads.QMM()
		run := func(ref bool) Stats {
			cfg := DefaultConfig()
			cfg.Prefetcher = fuzzPrefetcher(pfK)
			cfg.ICachePrefetcher = fuzzICache(icK)
			cfg.ICacheTLBCost = icK%4 != 0
			cfg.PageTable = PageTableKind(ptK % 3)
			cfg.ContextSwitchInterval = uint64(ctxSwitch)
			cfg.ReferenceLoop = ref
			threads := []ThreadSpec{{Reader: qmm[int(wlK)%len(qmm)].NewReader()}}
			if smt {
				threads = append(threads, ThreadSpec{
					Reader:   qmm[(int(wlK)+1)%len(qmm)].NewReader(),
					VAOffset: 1 << 40,
				})
			}
			s := mustNew(t, cfg, threads)
			st, err := s.Run(n/4, n)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		batched, reference := run(false), run(true)
		if batched != reference {
			t.Fatalf("batched loop diverged from reference:\nbatched:   %+v\nreference: %+v", batched, reference)
		}
	})
}
