package sim

import (
	"context"
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/core"
)

// BenchmarkTranslateInstr measures the instruction-side translation path —
// ITLB/STLB probes, PB lookups, demand walks and prefetcher engagement —
// over a wandering page working set large enough to keep missing.
func BenchmarkTranslateInstr(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s, err := New(cfg, []ThreadSpec{{Reader: testWorkload()}})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-map a page pool so the benchmark measures translation, not
	// first-touch demand paging.
	const pages = 1 << 14
	for v := arch.VPN(0); v < pages; v++ {
		s.pt.EnsureMapped(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vpn := arch.VPN(uint64(i)*2654435761) % pages
		pc := arch.VAddr(vpn) << arch.PageShift
		s.translateInstr(0, pc, vpn)
		s.core.Retire(1)
	}
}

// BenchmarkRunMorrigan measures the full batched pipeline end to end: the
// per-instruction cost of run/step/fetch/data over the synthetic server
// workload with the Morrigan prefetcher, the configuration the campaign
// throughput gate tracks.
func BenchmarkRunMorrigan(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s, err := New(cfg, []ThreadSpec{{Reader: testWorkload()}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.run(context.Background(), uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunReferenceMorrigan is the per-record reference loop under the
// same configuration, for comparing against BenchmarkRunMorrigan.
func BenchmarkRunReferenceMorrigan(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	cfg.ReferenceLoop = true
	s, err := New(cfg, []ThreadSpec{{Reader: testWorkload()}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.run(context.Background(), uint64(b.N)); err != nil {
		b.Fatal(err)
	}
}
