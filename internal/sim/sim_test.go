package sim

import (
	"strings"
	"testing"

	"morrigan/internal/arch"
	"morrigan/internal/core"
	"morrigan/internal/icache"
	"morrigan/internal/tlbprefetch"
	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// testWorkload returns a small deterministic server workload.
func testWorkload() trace.Reader {
	return workloads.QMM()[5].NewReader()
}

func mustNew(t *testing.T, cfg Config, threads []ThreadSpec) *Simulator {
	t.Helper()
	s, err := New(cfg, threads)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunBasicInvariants(t *testing.T) {
	s := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(50_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 200_000 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	if st.Cycles == 0 || st.IPC <= 0 || st.IPC > 4 {
		t.Fatalf("Cycles=%d IPC=%v", st.Cycles, st.IPC)
	}
	if st.ISTLBMisses == 0 || st.DSTLBMisses == 0 {
		t.Fatalf("no STLB misses: i=%d d=%d", st.ISTLBMisses, st.DSTLBMisses)
	}
	if st.ISTLBMisses > st.ISTLBAccesses {
		t.Fatal("iSTLB misses exceed accesses")
	}
	// Without a prefetcher every iSTLB miss demand-walks.
	if st.DemandIWalks != st.ISTLBMisses {
		t.Fatalf("DemandIWalks=%d != ISTLBMisses=%d", st.DemandIWalks, st.ISTLBMisses)
	}
	if st.PBHits != 0 || st.PrefetchWalks != 0 {
		t.Fatal("prefetch activity without a prefetcher")
	}
	if st.AvgIWalkLatency <= 0 || st.RefsPerWalk < 1 {
		t.Fatalf("walk stats: lat=%v refs=%v", st.AvgIWalkLatency, st.RefsPerWalk)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		s := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(20_000, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic simulation:\n%+v\n%+v", a, b)
	}
}

func TestPerfectISTLBEliminatesWalks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerfectISTLB = true
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(20_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.ISTLBMisses != 0 || st.DemandIWalks != 0 {
		t.Fatalf("perfect iSTLB still missed: %d misses, %d walks", st.ISTLBMisses, st.DemandIWalks)
	}
	// Data walks still happen.
	if st.DemandDWalks == 0 {
		t.Fatal("data walks should be unaffected")
	}
}

func TestPerfectISTLBIsFaster(t *testing.T) {
	base := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	bst, _ := base.Run(100_000, 400_000)
	cfg := DefaultConfig()
	cfg.PerfectISTLB = true
	perfect := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	pst, _ := perfect.Run(100_000, 400_000)
	if pst.Cycles >= bst.Cycles {
		t.Fatalf("perfect iSTLB not faster: %d vs %d", pst.Cycles, bst.Cycles)
	}
}

func TestMorriganCoversMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(200_000, 800_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.PBHits == 0 {
		t.Fatal("Morrigan produced no PB hits")
	}
	if st.DemandIWalks >= st.ISTLBMisses {
		t.Fatal("PB hits should eliminate some demand walks")
	}
	if st.IRIPHits == 0 || st.SDPHits == 0 {
		t.Fatalf("module attribution: irip=%d sdp=%d", st.IRIPHits, st.SDPHits)
	}
	if st.IRIPHits <= st.SDPHits {
		t.Fatalf("IRIP should dominate PB hits (Section 6.2): irip=%d sdp=%d", st.IRIPHits, st.SDPHits)
	}
	if st.PrefetchWalks == 0 || st.PrefetchRefs == 0 {
		t.Fatal("prefetch walks missing")
	}
	if st.FreePTEsInstalled == 0 {
		t.Fatal("spatial prefetching installed no free PTEs")
	}
}

func TestMorriganBeatsBaselineAndMP(t *testing.T) {
	run := func(pf tlbprefetch.Prefetcher) Stats {
		cfg := DefaultConfig()
		cfg.Prefetcher = pf
		s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(300_000, 1_500_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run(nil)
	mp := run(tlbprefetch.NewMP(128, 4))
	mor := run(core.New(core.DefaultConfig()))
	if mor.Cycles >= base.Cycles {
		t.Fatalf("Morrigan slower than baseline: %d vs %d", mor.Cycles, base.Cycles)
	}
	if mor.DemandIWalkRefs >= base.DemandIWalkRefs {
		t.Fatal("Morrigan did not cut demand walk references")
	}
	if mor.PBHits <= mp.PBHits {
		t.Fatalf("Morrigan (%d hits) should out-cover MP (%d hits)", mor.PBHits, mp.PBHits)
	}
}

func TestPrefetchIntoSTLBMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	cfg.PrefetchIntoSTLB = true
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(50_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	// P2TLB bypasses the PB entirely.
	if st.PBHits != 0 {
		t.Fatalf("PB hits under P2TLB: %d", st.PBHits)
	}
	if st.PrefetchWalks == 0 {
		t.Fatal("no prefetch walks under P2TLB")
	}
}

func TestSMTTwoThreads(t *testing.T) {
	qmm := workloads.QMM()
	cfg := DefaultConfig()
	s := mustNew(t, cfg, []ThreadSpec{
		{Reader: qmm[3].NewReader()},
		{Reader: qmm[7].NewReader(), VAOffset: 1 << 40},
	})
	st, err := s.Run(100_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 400_000 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	if st.ISTLBMisses == 0 {
		t.Fatal("no iSTLB misses under SMT")
	}
}

func TestSMTColocationIncreasesPressure(t *testing.T) {
	qmm := workloads.QMM()
	solo := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: qmm[3].NewReader()}})
	sst, _ := solo.Run(100_000, 400_000)
	pair := mustNew(t, DefaultConfig(), []ThreadSpec{
		{Reader: qmm[3].NewReader()},
		{Reader: qmm[7].NewReader(), VAOffset: 1 << 40},
	})
	pst, _ := pair.Run(100_000, 400_000)
	if pst.ISTLBMPKI <= sst.ISTLBMPKI {
		t.Fatalf("colocation should increase iSTLB MPKI: %.3f vs %.3f", pst.ISTLBMPKI, sst.ISTLBMPKI)
	}
}

func TestFNLMMAWithTLBCost(t *testing.T) {
	mk := func(tlbCost bool) Stats {
		cfg := DefaultConfig()
		cfg.ICachePrefetcher = icache.DefaultFNLMMA()
		cfg.ICacheTLBCost = tlbCost
		s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(100_000, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	free := mk(false)
	costed := mk(true)
	if costed.ICacheXPageWalks == 0 {
		t.Fatal("page-crossing prefetches did not trigger walks")
	}
	if free.ICacheXPageWalks != 0 {
		t.Fatal("free-translation mode should not issue prefetch walks")
	}
	// The paper's "FNL+MMA" line is the IPC-1 infrastructure, where
	// instruction address translation is not modelled at all; that ideal
	// must upper-bound the realistic FNL+MMA+TLB configuration.
	ideal := func() Stats {
		cfg := DefaultConfig()
		cfg.ICachePrefetcher = icache.DefaultFNLMMA()
		cfg.PerfectISTLB = true
		s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(100_000, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	if costed.Cycles < ideal.Cycles {
		t.Fatalf("FNL+MMA+TLB (%d) faster than translation-free ideal (%d)", costed.Cycles, ideal.Cycles)
	}
}

func TestMorriganHelpsFNLMMA(t *testing.T) {
	mk := func(withMorrigan bool) Stats {
		cfg := DefaultConfig()
		cfg.ICachePrefetcher = icache.DefaultFNLMMA()
		cfg.ICacheTLBCost = true
		if withMorrigan {
			cfg.Prefetcher = core.New(core.DefaultConfig())
		}
		s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(200_000, 800_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	alone := mk(false)
	combined := mk(true)
	// Section 6.5's synergy: page-crossing prefetches find translations in
	// Morrigan's PB.
	if combined.ICachePBHits == 0 {
		t.Fatal("no page-crossing prefetch hit Morrigan's PB")
	}
	if combined.Cycles >= alone.Cycles {
		t.Fatalf("Morrigan+FNL+MMA (%d) not faster than FNL+MMA (%d)", combined.Cycles, alone.Cycles)
	}
	_ = alone
}

func TestEnlargedSTLB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.STLBEntries = 1920 // +384 entries, ISO-storage-ish with Morrigan
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(100_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	base := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	bst, _ := base.Run(100_000, 400_000)
	if st.ISTLBMisses >= bst.ISTLBMisses {
		t.Fatalf("larger STLB should miss less: %d vs %d", st.ISTLBMisses, bst.ISTLBMisses)
	}
}

func TestASAPReducesWalkLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Walker.ASAP = true
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	ast, _ := s.Run(100_000, 400_000)
	base := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	bst, _ := base.Run(100_000, 400_000)
	if ast.AvgIWalkLatency > bst.AvgIWalkLatency {
		t.Fatalf("ASAP walk latency %v > baseline %v", ast.AvgIWalkLatency, bst.AvgIWalkLatency)
	}
}

func TestOnISTLBMissHook(t *testing.T) {
	var seen []arch.VPN
	cfg := DefaultConfig()
	cfg.OnISTLBMiss = func(tid arch.ThreadID, vpn arch.VPN) { seen = append(seen, vpn) }
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(0, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(seen)) != st.ISTLBMisses {
		t.Fatalf("hook saw %d misses, stats say %d", len(seen), st.ISTLBMisses)
	}
}

func TestFiniteTraceEndsRun(t *testing.T) {
	recs := make([]trace.Record, 1000)
	for i := range recs {
		recs[i].PC = arch.VAddr(0x400000 + i*4)
	}
	s := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: &trace.SliceReader{Records: recs}}})
	st, err := s.Run(0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 1000 {
		t.Fatalf("Instructions = %d, want 1000 (trace length)", st.Instructions)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.ITLBEntries = 0 },
		func(c *Config) { c.DTLBEntries = 10; c.DTLBWays = 4 },
		func(c *Config) { c.STLBWays = 0 },
		func(c *Config) { c.PBEntries = 0 },
		func(c *Config) { c.SMTBlock = 0 },
		func(c *Config) { c.PerfectISTLB = true; c.Prefetcher = &tlbprefetch.SP{} },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, []ThreadSpec{{Reader: testWorkload()}}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := New(DefaultConfig(), []ThreadSpec{{Reader: nil}}); err == nil {
		t.Error("nil reader accepted")
	}
	over := make([]ThreadSpec, MaxThreads+1)
	for i := range over {
		over[i] = ThreadSpec{Reader: testWorkload()}
	}
	if _, err := New(DefaultConfig(), over); err == nil {
		t.Errorf("%d threads accepted, want cap at %d", len(over), MaxThreads)
	}
}

// TestNWayColocationPerThreadStats: a 4-way colocated run retires the asked
// instruction count, attributes work to every thread, and the per-thread
// arrays sum exactly to the machine-wide counters they decompose.
func TestNWayColocationPerThreadStats(t *testing.T) {
	qmm := workloads.QMM()
	const ways = 4
	threads := make([]ThreadSpec, ways)
	for i := range threads {
		threads[i] = ThreadSpec{
			Reader:   qmm[i].NewReader(),
			VAOffset: arch.VAddr(i) * (1 << 40),
		}
	}
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s := mustNew(t, cfg, threads)
	st, err := s.Run(20_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 200_000 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	var instr, misses, pbHits uint64
	for i := 0; i < ways; i++ {
		if st.ThreadInstructions[i] == 0 {
			t.Errorf("thread %d retired nothing", i)
		}
		instr += st.ThreadInstructions[i]
		misses += st.ThreadISTLBMisses[i]
		pbHits += st.ThreadPBHits[i]
	}
	for i := ways; i < MaxThreads; i++ {
		if st.ThreadInstructions[i]+st.ThreadISTLBMisses[i]+st.ThreadPBHits[i] != 0 {
			t.Errorf("unpopulated thread %d has nonzero stats", i)
		}
	}
	if instr != st.Instructions {
		t.Errorf("per-thread instructions sum %d != total %d", instr, st.Instructions)
	}
	if misses != st.ISTLBMisses {
		t.Errorf("per-thread iSTLB misses sum %d != total %d", misses, st.ISTLBMisses)
	}
	if pbHits != st.PBHits {
		t.Errorf("per-thread PB hits sum %d != total %d", pbHits, st.PBHits)
	}
	if st.PBHits == 0 {
		t.Error("no PB hits under Morrigan at 4-way pressure")
	}
}

func TestStallBreakdownKeys(t *testing.T) {
	s := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	if _, err := s.Run(0, 50_000); err != nil {
		t.Fatal(err)
	}
	bd := s.StallBreakdown()
	for _, k := range []string{"icache", "itlb-lookup", "iwalk", "data"} {
		if _, ok := bd[k]; !ok {
			t.Errorf("missing stall class %q (have %s)", k, strings.Join(keys(bd), ","))
		}
	}
}

func keys(m map[string]arch.Cycle) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestWarmupResetsStats(t *testing.T) {
	s := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(100_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// Measured instructions must exclude warmup.
	if st.Instructions != 100_000 {
		t.Fatalf("Instructions = %d", st.Instructions)
	}
	// Warmed caches: the measured interval should miss less than a cold run
	// of the same length.
	cold := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	cst, _ := cold.Run(0, 100_000)
	if st.ISTLBMisses >= cst.ISTLBMisses {
		t.Fatalf("warmup did not reduce misses: %d vs %d", st.ISTLBMisses, cst.ISTLBMisses)
	}
}

func TestPageTableKinds(t *testing.T) {
	for _, kind := range []PageTableKind{PageTableRadix4, PageTableRadix5, PageTableHashed} {
		cfg := DefaultConfig()
		cfg.PageTable = kind
		s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(50_000, 200_000)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if st.DemandIWalks == 0 || st.Instructions != 200_000 {
			t.Fatalf("%v: %+v", kind, st)
		}
	}
}

func TestRadix5WalksCostMore(t *testing.T) {
	run := func(kind PageTableKind) Stats {
		cfg := DefaultConfig()
		cfg.PageTable = kind
		s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(100_000, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	r4 := run(PageTableRadix4)
	r5 := run(PageTableRadix5)
	// The PML5 level is not PSC-cached, so 5-level walks reference memory
	// at least as often (Section 4.3: the extra level can lengthen walks).
	if r5.RefsPerWalk < r4.RefsPerWalk {
		t.Fatalf("refs/walk: 5-level %.2f < 4-level %.2f", r5.RefsPerWalk, r4.RefsPerWalk)
	}
}

func TestHashedTableSingleRefWalks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageTable = PageTableHashed
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(100_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	// Collision-light hashed walks average close to one reference.
	if st.RefsPerWalk > 1.5 {
		t.Fatalf("hashed RefsPerWalk = %.2f", st.RefsPerWalk)
	}
	if st.PSCHitRate != 0 {
		t.Fatal("PSC should be idle with a hashed table")
	}
}

func TestMorriganWorksOverHashedTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PageTable = PageTableHashed
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(200_000, 800_000)
	if err != nil {
		t.Fatal(err)
	}
	// Section 4.3: Morrigan operates the same over hashed page tables
	// because they preserve page table locality.
	if st.PBHits == 0 || st.FreePTEsInstalled == 0 {
		t.Fatalf("Morrigan inactive over hashed table: %+v", st)
	}
}

func TestContextSwitchesFlushState(t *testing.T) {
	base := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	bst, _ := base.Run(100_000, 400_000)

	cfg := DefaultConfig()
	cfg.ContextSwitchInterval = 50_000
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(100_000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	// Switches fire at 50k, 100k, ..., 350k retired instructions; the
	// boundary at 400k has no following instruction in the interval.
	if st.ContextSwitches != 7 {
		t.Fatalf("ContextSwitches = %d, want 7", st.ContextSwitches)
	}
	if st.ISTLBMisses <= bst.ISTLBMisses {
		t.Fatal("context switches should add TLB misses")
	}
}

func TestMorriganRecoversAfterContextSwitches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContextSwitchInterval = 100_000
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(200_000, 800_000)
	if err != nil {
		t.Fatal(err)
	}
	// Section 4.3: the small tables refill quickly after a flush, so
	// coverage survives periodic context switches.
	if st.PBHits == 0 {
		t.Fatal("no PB hits with context switching")
	}
	if st.ContextSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestCorrectingWalksResetAccessedBits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CorrectingWalks = true
	cfg.Prefetcher = core.New(core.DefaultConfig())
	s := mustNew(t, cfg, []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(200_000, 800_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.CorrectingWalks == 0 {
		t.Fatal("no correcting walks despite PB evictions")
	}
	// Corrections never exceed useless evictions.
	if st.CorrectingWalks > st.PrefetchesIssued {
		t.Fatalf("correcting walks %d exceed prefetches %d", st.CorrectingWalks, st.PrefetchesIssued)
	}
	// The feature is off by default.
	off := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: testWorkload()}})
	ost, _ := off.Run(100_000, 400_000)
	if ost.CorrectingWalks != 0 {
		t.Fatal("correcting walks enabled by default")
	}
}

func TestHugeDataPagesReduceDataMisses(t *testing.T) {
	// A large-footprint workload: the code working set alone exceeds the
	// STLB, which is the regime the paper's Figure 2 measures (iSTLB MPKI
	// stays high even with transparent huge pages for data).
	big := func() trace.Reader { return workloads.QMM()[40].NewReader() }
	base := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: big()}})
	bst, _ := base.Run(150_000, 600_000)

	cfg := DefaultConfig()
	cfg.HugeDataPages = true
	s := mustNew(t, cfg, []ThreadSpec{{Reader: big()}})
	st, err := s.Run(150_000, 600_000)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section 5 argument: huge pages collapse the data side...
	if st.DSTLBMisses*4 >= bst.DSTLBMisses {
		t.Fatalf("huge data pages should collapse dSTLB misses: %d vs %d",
			st.DSTLBMisses, bst.DSTLBMisses)
	}
	// ...but the instruction side (4 KB code) remains a bottleneck.
	if st.ISTLBMPKI < 0.2 {
		t.Fatalf("iSTLB MPKI = %.3f: instruction bottleneck vanished", st.ISTLBMPKI)
	}
}

func TestHugeDataPagesRejectHashedTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HugeDataPages = true
	cfg.PageTable = PageTableHashed
	if _, err := New(cfg, []ThreadSpec{{Reader: testWorkload()}}); err == nil {
		t.Fatal("huge pages over a hashed table accepted")
	}
}

func TestHugeDataPagesWithMorrigan(t *testing.T) {
	// With huge data pages a single workload's code can become
	// STLB-resident; colocate two large workloads (the datacenter norm,
	// Section 5) so instruction pressure persists and Morrigan has misses
	// to cover.
	qmm := workloads.QMM()
	cfg := DefaultConfig()
	cfg.HugeDataPages = true
	cfg.Prefetcher = core.New(core.ScaledConfig(2))
	s := mustNew(t, cfg, []ThreadSpec{
		{Reader: qmm[40].NewReader()},
		{Reader: qmm[43].NewReader(), VAOffset: 1 << 40},
	})
	st, err := s.Run(300_000, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.PBHits == 0 {
		t.Fatal("Morrigan inactive with huge data pages under colocation")
	}
	if st.DemandIWalks+st.PBHits != st.ISTLBMisses {
		t.Fatal("accounting identity broken")
	}
}
