package sim

import (
	"context"
	"fmt"
	"io"

	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/pagetable"
	"morrigan/internal/trace"
)

// FastForward consumes n instructions functionally: translations stream
// through the TLB hierarchy, the page table is populated, and the cache
// hierarchy is kept warm (contents and replacement state advance; the
// returned latencies are discarded), but no cycles are charged and no
// prefetchers run. This is the warmup vehicle of sampled execution — it
// positions the trace at a representative interval with the TLBs, page table
// and caches in a state close to what full simulation would have left, at a
// fraction of the cost.
//
// Instructions consumed here count into FastForwarded, never into Executed,
// so throughput accounting for sampled jobs reflects only timed work. TLB
// and cache hit/miss counters do get polluted by the functional accesses;
// callers are expected to follow FastForward with RunContext, whose
// warmup/measure boundary resets all statistics.
//
// Context switches keep firing at the configured cadence (flushing the
// architecturally-tagged state exactly as timed execution would), clocked by
// retired-plus-fast-forwarded instructions.
func (s *Simulator) FastForward(ctx context.Context, n uint64) error {
	var rec trace.Record
	done := uint64(0)
	nextCheck := uint64(cancelCheckInterval)
	ti := 0
	for done < n {
		if done >= nextCheck {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: fast-forward interrupted: %w", err)
			}
			nextCheck += cancelCheckInterval
		}
		th := s.threads[ti]
		if th.done {
			ti = (ti + 1) % len(s.threads)
			if s.allDone() {
				return fmt.Errorf("sim: trace ended %d instructions short of the fast-forward target %d", n-done, n)
			}
			continue
		}
		for b := 0; b < s.cfg.SMTBlock && done < n; b++ {
			err := th.next(&rec)
			if err == io.EOF {
				th.done = true
				break
			}
			if err != nil {
				return fmt.Errorf("sim: reading trace during fast-forward: %w", err)
			}
			s.ffStep(arch.ThreadID(ti), th, &rec)
			done++
			s.fastForwarded++
		}
		ti = (ti + 1) % len(s.threads)
	}
	return nil
}

// ffStep warms one instruction's translations and cache lines without timing.
func (s *Simulator) ffStep(tid arch.ThreadID, th *thread, rec *trace.Record) {
	if s.cfg.ContextSwitchInterval > 0 && s.core.Retired()+s.fastForwarded >= s.nextSwitch {
		s.contextSwitch()
		s.nextSwitch = s.core.Retired() + s.fastForwarded + s.cfg.ContextSwitchInterval
	}
	pc := rec.PC + th.off
	vpn := pc.Page()
	newLine := pc.Line() != th.curLine || !th.haveVPN
	if !th.haveVPN || vpn != th.curVPN {
		pfn, ok := s.itlb.Lookup(tid, vpn)
		if !ok {
			if pfn, ok = s.stlb.Lookup(tid, vpn); !ok {
				// A real (zero-time) walk rather than a bare page-table
				// probe: it maps the page, warms the PSC and touches the
				// PTE cache lines, so a following timed slice sees walk
				// latencies close to full simulation's.
				pfn = s.walker.Walk(tid, vpn, 0, true).PFN
			}
			s.stlb.Insert(tid, vpn, pfn)
			s.itlb.Insert(tid, vpn, pfn)
		}
		th.curPFN = pfn
		th.curVPN = vpn
		th.haveVPN = true
	}
	if newLine {
		res := s.mem.Access(cache.KindFetch, arch.Translate(th.curPFN, pc))
		th.curLine = pc.Line()
		// Keep the I-cache prefetcher's predictor state and its fill
		// traffic's cache footprint warm: timed execution continuously
		// re-installs upcoming lines into L1I/L2, and slices started
		// without that pressure see far deeper instruction fetches.
		for _, vline := range s.icpf.OnFetch(pc.Line(), res.Level != arch.LevelL1) {
			s.ffPrefetchLine(tid, th, vline)
		}
	}
	if rec.Load != 0 {
		s.ffData(tid, rec.Load+th.off, false)
	}
	if rec.Store != 0 {
		s.ffData(tid, rec.Store+th.off, true)
	}
}

// ffPrefetchLine applies one I-cache prefetch candidate functionally: the
// translation is resolved at zero cost (ICacheTLBCost timing does not exist
// here) and the line is filled like prefetchInstrLine would, without
// touching pendingLines or the walker.
func (s *Simulator) ffPrefetchLine(tid arch.ThreadID, th *thread, vline uint64) {
	vpn := arch.VPN(vline / linesPerPage)
	var pfn arch.PFN
	switch {
	case th.haveVPN && vpn == th.curVPN:
		pfn = th.curPFN
	default:
		if p, ok := s.itlb.Peek(tid, vpn); ok {
			pfn = p
		} else if p, ok := s.stlb.Peek(tid, vpn); ok {
			pfn = p
		} else if pte, ok := s.pt.Lookup(vpn); ok {
			pfn = pte.PFN
		} else {
			return // unmapped page: a timed prefetch would be skipped too
		}
	}
	s.mem.PrefetchInto(arch.LevelL1, arch.Translate(pfn, arch.VAddr(vline*arch.LineSize)))
}

// ffData warms one data translation and its cache line, mirroring data()'s
// huge-page block keying so the warmed TLB contents match what timed
// execution would insert.
func (s *Simulator) ffData(tid arch.ThreadID, va arch.VAddr, store bool) {
	vpn := va.Page()
	key := vpn
	var blockOff arch.PFN
	if s.ptHuge != nil && s.ptHuge.IsHuge(vpn) {
		key = hugeKey(vpn)
		blockOff = arch.PFN(vpn & (pagetable.HugePages - 1))
	}
	pfn, ok := s.dtlb.Lookup(tid, key)
	if ok {
		pfn += blockOff
	} else {
		base, ok := s.stlb.Lookup(tid, key)
		if !ok {
			// Zero-time demand walk: maps the page and warms PSC and PTE
			// lines, mirroring data()'s miss path without the latency.
			base = s.walker.Walk(tid, vpn, 0, true).PFN - blockOff
			s.stlb.Insert(tid, key, base)
		}
		s.dtlb.Insert(tid, key, base)
		pfn = base + blockOff
	}
	kind := cache.KindLoad
	if store {
		kind = cache.KindStore
	}
	s.mem.Access(kind, arch.Translate(pfn, va))
}

// FastForwarded returns the total instructions consumed functionally by
// FastForward since construction. Never reset.
func (s *Simulator) FastForwarded() uint64 { return s.fastForwarded }

// SettleTiming declares all in-flight timed activity complete: pending
// instruction-line fills are dropped, prefetch-buffer ready times settle to
// zero, and walker MSHRs are freed. Cache, TLB, PB and predictor contents
// are untouched. Sampled execution calls this before each timed slice:
// RunContext's stats reset rebases the core clock to zero, and absolute
// ready/busy timestamps left by the previous slice's clock epoch would
// otherwise read as far-future and charge phantom stalls.
func (s *Simulator) SettleTiming() {
	s.pending.reset()
	s.pb.Settle()
	s.walker.Settle()
}
