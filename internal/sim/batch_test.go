package sim

import (
	"testing"

	"morrigan/internal/trace"
	"morrigan/internal/workloads"
)

// plainReader hides a reader's NextBatch so the simulator takes the
// record-at-a-time path.
type plainReader struct{ r trace.Reader }

func (p plainReader) Next(rec *trace.Record) error { return p.r.Next(rec) }

// TestBatchPathMatchesPlain runs the same record stream through the batch
// and per-record supply paths and requires bit-identical Stats: the batch
// wiring is a pure throughput optimisation.
func TestBatchPathMatchesPlain(t *testing.T) {
	const warmup, measure = 20_000, 80_000
	recs, err := trace.Slice(testWorkload(), warmup+measure)
	if err != nil {
		t.Fatal(err)
	}
	run := func(r trace.Reader) Stats {
		s := mustNew(t, DefaultConfig(), []ThreadSpec{{Reader: r}})
		st, err := s.Run(warmup, measure)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	batch := run(&trace.SliceReader{Records: recs})
	plain := run(plainReader{&trace.SliceReader{Records: recs}})
	if batch != plain {
		t.Fatalf("batch path diverged from plain path:\nbatch: %+v\nplain: %+v", batch, plain)
	}
}

// TestBatchPathSMT is the two-thread variant: both threads on the batch
// path must equal both on the plain path.
func TestBatchPathSMT(t *testing.T) {
	const warmup, measure = 10_000, 40_000
	a, err := trace.Slice(workloads.QMM()[1].NewReader(), warmup+measure)
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Slice(workloads.QMM()[2].NewReader(), warmup+measure)
	if err != nil {
		t.Fatal(err)
	}
	run := func(wrap func(trace.Reader) trace.Reader) Stats {
		s := mustNew(t, DefaultConfig(), []ThreadSpec{
			{Reader: wrap(&trace.SliceReader{Records: a})},
			{Reader: wrap(&trace.SliceReader{Records: b}), VAOffset: 1 << 40},
		})
		st, err := s.Run(warmup, measure)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	batch := run(func(r trace.Reader) trace.Reader { return r })
	plain := run(func(r trace.Reader) trace.Reader { return plainReader{r} })
	if batch != plain {
		t.Fatalf("SMT batch path diverged from plain path:\nbatch: %+v\nplain: %+v", batch, plain)
	}
}
