package sim

import (
	"morrigan/internal/arch"
	"morrigan/internal/cache"
	"morrigan/internal/cpu"
	"morrigan/internal/stats"
)

// Stats is the snapshot of one measured simulation interval. Field names
// follow the paper's metrics.
type Stats struct {
	// Instructions retired in the interval.
	Instructions uint64
	// Cycles of execution time.
	Cycles arch.Cycle
	// IPC is instructions per cycle.
	IPC float64

	// Front-end structure behaviour (Figure 3).
	L1IAccesses uint64
	L1IMisses   uint64
	L1IMPKI     float64
	ITLBMisses  uint64
	ITLBMPKI    float64

	// Instruction STLB behaviour.
	ISTLBAccesses uint64
	ISTLBMisses   uint64
	ISTLBMPKI     float64
	// DSTLB behaviour (the data share of STLB misses).
	DSTLBAccesses uint64
	DSTLBMisses   uint64
	DSTLBMPKI     float64

	// TranslationCyclePct is the share of cycles serving iSTLB accesses
	// (Figure 4).
	TranslationCyclePct float64

	// PB behaviour.
	PBHits       uint64
	PBLateCycles arch.Cycle

	// Page walk behaviour (Figure 16 and Section 6.4).
	DemandIWalks    uint64
	DemandIWalkRefs uint64
	DemandDWalks    uint64
	DemandDWalkRefs uint64
	PrefetchWalks   uint64
	PrefetchRefs    uint64
	DroppedWalks    uint64
	// AvgIWalkLatency and AvgDWalkLatency are mean demand walk latencies
	// (the paper reports 69 and 112 cycles).
	AvgIWalkLatency float64
	AvgDWalkLatency float64
	// RefsPerWalk is mean memory references per demand walk (paper: 1.4).
	RefsPerWalk float64
	// PrefetchRefsByLevel is where prefetch walk references were served
	// (paper: 20/25/45/10% across L1/L2/LLC/DRAM).
	PrefetchRefsByLevel [arch.NumLevels]uint64

	// Prefetch issue accounting.
	PrefetchesIssued    uint64
	PrefetchesDiscarded uint64
	FreePTEsInstalled   uint64

	// Morrigan module attribution (Section 6.2: 93% IRIP / 7% SDP).
	IRIPHits uint64
	SDPHits  uint64

	// I-cache prefetcher translation interplay (Sections 3.5, 6.5).
	ICacheXPagePrefetches uint64
	ICacheXPageWalks      uint64
	ICachePBHits          uint64
	ICachePBServed        uint64

	// PSCHitRate is the aggregate page-structure-cache hit rate.
	PSCHitRate float64

	// ContextSwitches counts the context switches in the interval.
	ContextSwitches uint64

	// CorrectingWalks counts accessed-bit corrections for unused
	// prefetches (Section 4.3; requires Config.CorrectingWalks).
	CorrectingWalks uint64

	// Per-thread colocation accounting (index = hardware thread id;
	// single-threaded runs populate index 0 only). Fixed-size arrays keep
	// Stats comparable for the result store and fabric equality checks.
	ThreadInstructions [MaxThreads]uint64
	ThreadISTLBMisses  [MaxThreads]uint64
	ThreadPBHits       [MaxThreads]uint64
}

// Snapshot assembles the current statistics.
func (s *Simulator) Snapshot() Stats {
	instr := s.core.Retired()
	st := Stats{
		Instructions: instr,
		Cycles:       s.core.Cycles(),
		IPC:          s.core.IPC(),

		L1IAccesses: s.mem.L1I.Accesses(),
		L1IMisses:   s.mem.L1I.Misses(),
		L1IMPKI:     stats.MPKI(s.mem.L1I.Misses(), instr),
		ITLBMisses:  s.itlb.Misses(),
		ITLBMPKI:    stats.MPKI(s.itlb.Misses(), instr),

		ISTLBAccesses: s.c.istlbAccesses,
		ISTLBMisses:   s.c.istlbMisses,
		ISTLBMPKI:     stats.MPKI(s.c.istlbMisses, instr),
		DSTLBAccesses: s.c.dstlbAccesses,
		DSTLBMisses:   s.c.dstlbMisses,
		DSTLBMPKI:     stats.MPKI(s.c.dstlbMisses, instr),

		TranslationCyclePct: s.core.TranslationCyclePct(),

		PBHits:       s.c.pbHits,
		PBLateCycles: s.c.pbLateCycles,

		DemandIWalks:    s.c.demandIWalks,
		DemandIWalkRefs: s.c.demandIWalkRefs,
		DemandDWalks:    s.c.demandDWalks,
		DemandDWalkRefs: s.c.demandDWalkRefs,
		PrefetchWalks:   s.walker.PrefetchWalks(),
		PrefetchRefs:    s.walker.PrefetchRefs(),
		DroppedWalks:    s.walker.DroppedWalks(),
		RefsPerWalk:     s.walker.RefsPerDemandWalk(),

		PrefetchesIssued:    s.c.prefIssued,
		PrefetchesDiscarded: s.c.prefDiscarded,
		FreePTEsInstalled:   s.c.prefFreePTEs,

		ICacheXPagePrefetches: s.c.icacheXPrefetch,
		ICacheXPageWalks:      s.c.icacheXWalks,
		ICachePBHits:          s.c.icachePBHits,
		ICachePBServed:        s.c.icachePBServed,

		PSCHitRate: s.walker.PSC().HitRate(),

		ContextSwitches: s.c.contextSwitches,
		CorrectingWalks: s.c.correctingWalks,

		ThreadInstructions: s.c.threadInstr,
		ThreadISTLBMisses:  s.c.threadISTLBMisses,
		ThreadPBHits:       s.c.threadPBHits,
	}
	if s.c.demandIWalks > 0 {
		st.AvgIWalkLatency = float64(s.c.iWalkLatSum) / float64(s.c.demandIWalks)
	}
	if s.c.demandDWalks > 0 {
		st.AvgDWalkLatency = float64(s.c.dWalkLatSum) / float64(s.c.demandDWalks)
	}
	for l := 0; l < arch.NumLevels; l++ {
		st.PrefetchRefsByLevel[l] = s.mem.Served(cache.KindPTWPrefetch, arch.Level(l))
	}
	if irip, sdp, ok := s.pf.moduleHits(); ok {
		st.IRIPHits = irip
		st.SDPHits = sdp
	}
	return st
}

// StallBreakdown returns the charged stall cycles by class, for diagnostics.
func (s *Simulator) StallBreakdown() map[string]arch.Cycle {
	out := make(map[string]arch.Cycle, cpu.NumStallKinds)
	for k := 0; k < cpu.NumStallKinds; k++ {
		kind := cpu.StallKind(k)
		out[kind.String()] = s.core.StallCycles(kind)
	}
	return out
}
