package sim

import (
	"bytes"
	"reflect"
	"testing"

	"morrigan/internal/core"
	"morrigan/internal/telemetry"
)

// telemetryConfig is the default machine with Morrigan attached and a probe.
func telemetryConfig(probe *telemetry.Probe) Config {
	cfg := DefaultConfig()
	cfg.Prefetcher = core.New(core.DefaultConfig())
	cfg.Probe = probe
	return cfg
}

// TestTelemetrySamplesSumToAggregate is the tentpole invariant: the emitted
// interval deltas (instructions, misses, walks, prefetch counts) must sum
// exactly to the end-of-run aggregate Stats.
func TestTelemetrySamplesSumToAggregate(t *testing.T) {
	probe := telemetry.NewProbe(telemetry.Config{Interval: 25_000})
	s := mustNew(t, telemetryConfig(probe), []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(50_000, 230_000) // not a multiple of the interval
	if err != nil {
		t.Fatal(err)
	}

	samples := probe.Samples()
	if len(samples) < 9 {
		t.Fatalf("samples = %d, want >= 9 for 230k instructions at 25k interval", len(samples))
	}
	var sum telemetry.IntervalSample
	for _, d := range samples {
		sum.DInstructions += d.DInstructions
		sum.DCycles += d.DCycles
		sum.DL1IMisses += d.DL1IMisses
		sum.DITLBMisses += d.DITLBMisses
		sum.DISTLBAccesses += d.DISTLBAccesses
		sum.DISTLBMisses += d.DISTLBMisses
		sum.DPBHits += d.DPBHits
		sum.DPrefIssued += d.DPrefIssued
		sum.DPrefDiscarded += d.DPrefDiscarded
		sum.DPrefWalks += d.DPrefWalks
		sum.DDemandIWalks += d.DDemandIWalks
		sum.DDemandDWalks += d.DDemandDWalks
		sum.DDroppedWalks += d.DDroppedWalks
	}
	check := func(name string, got, want uint64) {
		t.Helper()
		if got != want {
			t.Errorf("%s: interval sum %d != aggregate %d", name, got, want)
		}
	}
	check("instructions", sum.DInstructions, st.Instructions)
	check("cycles", sum.DCycles, uint64(st.Cycles))
	check("l1i misses", sum.DL1IMisses, st.L1IMisses)
	check("itlb misses", sum.DITLBMisses, st.ITLBMisses)
	check("istlb accesses", sum.DISTLBAccesses, st.ISTLBAccesses)
	check("istlb misses", sum.DISTLBMisses, st.ISTLBMisses)
	check("pb hits", sum.DPBHits, st.PBHits)
	check("prefetch issued", sum.DPrefIssued, st.PrefetchesIssued)
	check("prefetch discarded", sum.DPrefDiscarded, st.PrefetchesDiscarded)
	check("prefetch walks", sum.DPrefWalks, st.PrefetchWalks)
	check("demand iwalks", sum.DDemandIWalks, st.DemandIWalks)
	check("demand dwalks", sum.DDemandDWalks, st.DemandDWalks)
	check("dropped walks", sum.DDroppedWalks, st.DroppedWalks)

	// The time axis is exact: the last sample sits at the final instruction.
	if last := samples[len(samples)-1]; last.Instructions != st.Instructions {
		t.Errorf("last sample at %d, aggregate %d", last.Instructions, st.Instructions)
	}
}

// TestTelemetryDisabledBitIdentical verifies the overhead contract: a probe
// observes without perturbing, so Stats with and without one are identical.
func TestTelemetryDisabledBitIdentical(t *testing.T) {
	run := func(probe *telemetry.Probe) Stats {
		s := mustNew(t, telemetryConfig(probe), []ThreadSpec{{Reader: testWorkload()}})
		st, err := s.Run(50_000, 150_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := run(nil)
	probed := run(telemetry.NewProbe(telemetry.Config{Interval: 10_000}))
	if !reflect.DeepEqual(plain, probed) {
		t.Fatalf("stats diverge with a probe attached:\nplain:  %+v\nprobed: %+v", plain, probed)
	}
}

// TestTelemetryLifecycleAndWalks exercises the event trace and histograms
// through a real simulation.
func TestTelemetryLifecycleAndWalks(t *testing.T) {
	probe := telemetry.NewProbe(telemetry.Config{Interval: 20_000, EventBuffer: 1 << 16})
	s := mustNew(t, telemetryConfig(probe), []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(50_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}

	events, _ := probe.Events()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	byKind := map[telemetry.EventKind]int{}
	for _, e := range events {
		byKind[e.Kind]++
	}
	if byKind[telemetry.EvWalkDemand] == 0 || byKind[telemetry.EvPrefetchIssued] == 0 {
		t.Fatalf("missing expected kinds: %v", byKind)
	}
	if st.PBHits > 0 && byKind[telemetry.EvPrefetchUsed]+byKind[telemetry.EvPrefetchLate] == 0 {
		t.Fatal("PB hits but no use events")
	}

	hists := probe.Histograms()
	if hists[0].Total() != st.DemandIWalks+st.DemandDWalks {
		t.Errorf("demand walk histogram %d entries, stats %d",
			hists[0].Total(), st.DemandIWalks+st.DemandDWalks)
	}
	if hists[1].Total() != st.PrefetchWalks {
		t.Errorf("prefetch walk histogram %d entries, stats %d", hists[1].Total(), st.PrefetchWalks)
	}
	if hists[0].Mean() <= 0 {
		t.Error("zero mean demand walk latency")
	}

	// The whole collection round-trips through JSONL.
	var buf bytes.Buffer
	if err := probe.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ParseJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryResetAtMeasureBoundary: warmup activity must not leak into
// the emitted series.
func TestTelemetryResetAtMeasureBoundary(t *testing.T) {
	probe := telemetry.NewProbe(telemetry.Config{Interval: 10_000})
	s := mustNew(t, telemetryConfig(probe), []ThreadSpec{{Reader: testWorkload()}})
	st, err := s.Run(100_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	var instr uint64
	for _, d := range probe.Samples() {
		instr += d.DInstructions
	}
	if instr != st.Instructions {
		t.Fatalf("series covers %d instructions, measured %d (warmup leaked?)", instr, st.Instructions)
	}
}
